// Resource governance primitives: cancellation tokens, statement deadlines,
// and memory budgets.
//
// The engine executes queries cooperatively — there is no thread to kill —
// so every long loop (morsel bodies, serial row scans, batched evaluation,
// UDF invocations, and the typed core kernels) periodically asks its
// CancelSource whether it should stop. A cancelled query unwinds through
// the ordinary Status machinery (kCancelled / kDeadlineExceeded), which
// releases page pins and worker slots by plain RAII and lets the session's
// autocommit wrapper roll back the open WAL transaction.
//
// Three actors can fire a source:
//   * the session itself, when the per-statement deadline it armed expires
//     (self-checked every kDeadlineStride probes, so an idle-looking loop
//     still notices without a syscall per row);
//   * the server's slow-query watchdog, which probes every active session's
//     source on a short interval (the backstop for code between checks);
//   * a user kill (ArrayServer::KillQuery), which cancels immediately.
// The first Cancel() wins; later calls are no-ops. A consumed cancellation
// is Reset() by the session after the failing statement returns, so one
// kill aborts exactly one statement and the session stays usable.
//
// MemoryBudget is per-statement accounting, charged at the points where
// query-private memory actually grows (hash-aggregate groups, row-mode
// output buffers, evaluation batches). It is shared by all morsel workers
// of the statement, hence the atomics. Exceeding the budget aborts the
// query with kResourceExhausted — never the process.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"

namespace sqlarray::gov {

/// Why a source was cancelled (drives the gov.* kill counters).
enum class KillReason {
  kNone = 0,
  kUser,      ///< explicit kill (KILL / session close)
  kDeadline,  ///< statement timeout expired
  kShutdown,  ///< server shutting down
};

const char* KillReasonName(KillReason reason);

/// Shared cancellation state for one session. Cheap to probe from many
/// threads; Cancel/Arm/Reset are rare control-plane operations.
class CancelSource {
 public:
  /// How many Check() probes elapse between wall-clock deadline reads.
  /// The flag itself is read on every probe (one relaxed atomic load).
  static constexpr uint64_t kDeadlineStride = 128;

  /// Fires the source. First transition wins and bumps the matching gov.*
  /// counter; later calls are no-ops. Safe from any thread.
  void Cancel(KillReason reason, std::string detail = "");

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Arms a wall-clock deadline for the statement about to run. Replaces
  /// any previous deadline. Call from the session thread before execution.
  void ArmDeadline(std::chrono::steady_clock::time_point deadline);
  /// Disarms the statement deadline (statement finished in time).
  void DisarmDeadline();
  bool deadline_armed() const {
    return deadline_armed_.load(std::memory_order_acquire);
  }

  /// The cooperative probe: returns the cancellation status if fired, and
  /// every kDeadlineStride calls (plus the very first) compares the armed
  /// deadline against the clock, firing kDeadline on expiry.
  Status Check();

  /// Forces a full deadline comparison regardless of the probe stride —
  /// what the watchdog calls on its scan interval. Returns true when this
  /// call fired the deadline.
  bool ProbeDeadline();

  /// The current state as a Status without touching the clock (kOk when
  /// not cancelled).
  Status StatusNow() const;

  /// Clears a consumed cancellation so the next statement runs normally.
  /// Call only from the owning session, between statements.
  void Reset();

 private:
  void CancelLocked(KillReason reason, std::string detail);

  std::atomic<bool> cancelled_{false};
  std::atomic<bool> deadline_armed_{false};
  std::atomic<uint64_t> probe_count_{0};
  mutable std::mutex mu_;  ///< guards deadline_, reason_, detail_
  std::chrono::steady_clock::time_point deadline_{};
  KillReason reason_ = KillReason::kNone;
  std::string detail_;
};

/// Per-statement memory accounting shared by all workers of the statement.
/// limit 0 means unlimited (accounting still runs, for peak reporting).
class MemoryBudget {
 public:
  /// Re-arms the budget for a new statement: clears usage and peak.
  void Reset(int64_t limit_bytes);

  /// Charges `bytes` of query-private memory. On crossing the limit the
  /// first caller bumps gov.budget_kills and every caller (including
  /// later ones — the overrun is sticky until Reset) gets
  /// kResourceExhausted, so all workers of the statement unwind.
  Status Charge(int64_t bytes);

  /// Returns previously charged bytes (optional; Reset clears everything).
  void Release(int64_t bytes);

  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  int64_t limit() const { return limit_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> used_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<int64_t> limit_{0};
  std::atomic<bool> exceeded_{false};
};

/// The per-query governance bundle the executor threads through its loops.
/// Both members may be null/empty — an ungoverned query (engine tests,
/// internal subqueries without a session) probes nothing.
struct QueryLimits {
  std::shared_ptr<CancelSource> cancel;
  MemoryBudget* budget = nullptr;

  Status Check() const {
    return cancel != nullptr ? cancel->Check() : Status::OK();
  }
  Status Charge(int64_t bytes) const {
    return budget != nullptr ? budget->Charge(bytes) : Status::OK();
  }
  bool governed() const { return cancel != nullptr || budget != nullptr; }
};

/// Thread-local plumbing for code too deep to take a QueryLimits parameter
/// (the typed core kernels, standalone expression evaluation). The session
/// installs its limits for the statement's serial thread; RunMorselScan
/// installs them on each pool worker for the duration of the scan.
class ScopedThreadLimits {
 public:
  explicit ScopedThreadLimits(const QueryLimits* limits);
  ~ScopedThreadLimits();
  ScopedThreadLimits(const ScopedThreadLimits&) = delete;
  ScopedThreadLimits& operator=(const ScopedThreadLimits&) = delete;

 private:
  const QueryLimits* prev_;
};

/// The limits installed on this thread, or null.
const QueryLimits* ThreadLimits();

/// Probes the thread-installed cancellation token (kOk when none). Long
/// kernels call this every few thousand elements.
Status CheckThreadCancel();

}  // namespace sqlarray::gov
