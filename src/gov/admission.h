// Admission control: a bounded FIFO wait queue in front of a fixed number
// of concurrent execution slots.
//
// The server front-end pushes every statement through Admit() before it
// touches the engine. Up to `max_concurrent` statements run at once; up to
// `max_queue` more wait in ticket order (strict FIFO — no query starves
// behind later arrivals). A statement arriving with the queue full is
// rejected immediately with kResourceExhausted carrying a retry-after
// hint — backpressure instead of an unbounded pileup, the workload-
// management behavior shared science servers live or die on.
//
// Waiting is cancellable: a waiter whose CancelSource fires (user kill,
// watchdog deadline) leaves the queue with that status instead of
// eventually running a statement nobody wants.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>

#include "common/status.h"
#include "gov/gov.h"

namespace sqlarray::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace sqlarray::obs

namespace sqlarray::gov {

struct AdmissionConfig {
  /// Master switch (the bench's A/B flag): disabled, Admit() returns an
  /// immediately-granted slot and only counts traffic.
  bool enabled = true;
  /// Statements executing concurrently.
  int max_concurrent = 4;
  /// Statements allowed to wait beyond that; the next arrival is rejected.
  int max_queue = 16;
  /// Retry hint carried in the rejection message.
  int64_t retry_after_ms = 10;
};

class AdmissionController;

/// RAII execution slot: releasing it (destruction) wakes the next waiter.
class AdmissionSlot {
 public:
  AdmissionSlot() = default;
  AdmissionSlot(AdmissionSlot&& o) noexcept { *this = std::move(o); }
  AdmissionSlot& operator=(AdmissionSlot&& o) noexcept;
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;
  ~AdmissionSlot() { Release(); }

  void Release();
  /// How long Admit() waited in the queue for this slot.
  double wait_seconds() const { return wait_seconds_; }

 private:
  friend class AdmissionController;
  AdmissionSlot(AdmissionController* controller, double wait_seconds)
      : controller_(controller), wait_seconds_(wait_seconds) {}

  AdmissionController* controller_ = nullptr;
  double wait_seconds_ = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  const AdmissionConfig& config() const { return config_; }

  /// Blocks until an execution slot is free (FIFO), the queue is full
  /// (immediate kResourceExhausted rejection with a retry-after hint), or
  /// `cancel` fires (its cancellation status). `cancel` may be null.
  Result<AdmissionSlot> Admit(CancelSource* cancel);

  /// Point-in-time accounting (cumulative counters live in the
  /// MetricsRegistry under gov.*).
  struct Stats {
    int64_t admitted = 0;   ///< granted a slot (queued or not)
    int64_t queued = 0;     ///< of those, how many had to wait
    int64_t rejected = 0;   ///< turned away with queue full
    int64_t peak_queue_depth = 0;
    int running = 0;        ///< slots held right now
    int queue_depth = 0;    ///< waiters right now
  };
  Stats stats() const;

 private:
  friend class AdmissionSlot;
  void Release();
  /// Skips serving_ past tickets whose waiters cancelled out of the queue.
  void AdvanceServingLocked();

  const AdmissionConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  int running_ = 0;
  int waiting_ = 0;
  uint64_t next_ticket_ = 0;   ///< handed to each waiter on arrival
  uint64_t serving_ = 0;       ///< lowest ticket allowed to take a slot
  std::set<uint64_t> abandoned_;  ///< tickets of cancelled waiters
  int64_t admitted_ = 0;
  int64_t queued_ = 0;
  int64_t rejected_ = 0;
  int64_t peak_queue_ = 0;

  obs::Counter* reg_admitted_;
  obs::Counter* reg_queued_;
  obs::Counter* reg_rejected_;
  obs::Gauge* reg_peak_queue_;
  obs::Histogram* reg_wait_us_;
};

}  // namespace sqlarray::gov
