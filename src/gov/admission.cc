#include "gov/admission.h"

#include <chrono>

#include "obs/metrics.h"

namespace sqlarray::gov {

AdmissionSlot& AdmissionSlot::operator=(AdmissionSlot&& o) noexcept {
  if (this != &o) {
    Release();
    controller_ = o.controller_;
    wait_seconds_ = o.wait_seconds_;
    o.controller_ = nullptr;
    o.wait_seconds_ = 0;
  }
  return *this;
}

void AdmissionSlot::Release() {
  if (controller_ != nullptr) {
    controller_->Release();
    controller_ = nullptr;
  }
}

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {
  auto& reg = obs::MetricsRegistry::Global();
  reg_admitted_ = reg.GetCounter("gov.admitted");
  reg_queued_ = reg.GetCounter("gov.queued");
  reg_rejected_ = reg.GetCounter("gov.rejected");
  reg_peak_queue_ = reg.GetGauge("gov.peak_queue_depth");
  reg_wait_us_ = reg.GetHistogram("gov.admission_wait_us");
}

Result<AdmissionSlot> AdmissionController::Admit(CancelSource* cancel) {
  if (cancel != nullptr) {
    SQLARRAY_RETURN_IF_ERROR(cancel->StatusNow());
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (!config_.enabled) {
    ++admitted_;
    reg_admitted_->Add(1);
    return AdmissionSlot(this, 0.0);
  }
  if (running_ < config_.max_concurrent && waiting_ == 0) {
    // Fast path: a free slot and nobody queued ahead of us.
    ++running_;
    ++admitted_;
    reg_admitted_->Add(1);
    reg_wait_us_->Observe(0);
    return AdmissionSlot(this, 0.0);
  }
  if (waiting_ >= config_.max_queue) {
    ++rejected_;
    reg_rejected_->Add(1);
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(waiting_) +
        " waiting); retry after " + std::to_string(config_.retry_after_ms) +
        "ms",
        config_.retry_after_ms);
  }
  const uint64_t ticket = next_ticket_++;
  ++waiting_;
  if (waiting_ > peak_queue_) {
    peak_queue_ = waiting_;
    reg_peak_queue_->Set(peak_queue_);
  }
  ++queued_;
  reg_queued_->Add(1);
  const auto enqueued = std::chrono::steady_clock::now();
  // Strict FIFO: only the ticket at the head of the line may take a freed
  // slot. The short timed wait doubles as the cancellation poll, so a kill
  // fired while we sleep is noticed within ~1ms without a per-waiter hook.
  while (ticket != serving_ || running_ >= config_.max_concurrent) {
    if (cancel != nullptr && cancel->cancelled()) {
      --waiting_;
      // Mark our ticket abandoned so serving_ skips it; a cancelled waiter
      // mid-queue must not stall everyone behind it.
      abandoned_.insert(ticket);
      AdvanceServingLocked();
      cv_.notify_all();
      return cancel->StatusNow();
    }
    cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
  ++serving_;
  AdvanceServingLocked();
  --waiting_;
  ++running_;
  ++admitted_;
  reg_admitted_->Add(1);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    enqueued)
          .count();
  reg_wait_us_->Observe(static_cast<int64_t>(waited * 1e6));
  cv_.notify_all();  // the next ticket may now be at the head
  return AdmissionSlot(this, waited);
}

void AdmissionController::AdvanceServingLocked() {
  auto it = abandoned_.find(serving_);
  while (it != abandoned_.end()) {
    abandoned_.erase(it);
    ++serving_;
    it = abandoned_.find(serving_);
  }
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.enabled && running_ > 0) --running_;
  cv_.notify_all();
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.admitted = admitted_;
  s.queued = queued_;
  s.rejected = rejected_;
  s.peak_queue_depth = peak_queue_;
  s.running = running_;
  s.queue_depth = waiting_;
  return s;
}

}  // namespace sqlarray::gov
