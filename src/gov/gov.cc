#include "gov/gov.h"

#include "obs/metrics.h"

namespace sqlarray::gov {

namespace {

obs::Counter* CancelCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("gov.cancelled");
  return c;
}

obs::Counter* DeadlineCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("gov.deadline_kills");
  return c;
}

obs::Counter* BudgetCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("gov.budget_kills");
  return c;
}

thread_local const QueryLimits* t_limits = nullptr;

}  // namespace

const char* KillReasonName(KillReason reason) {
  switch (reason) {
    case KillReason::kNone:
      return "none";
    case KillReason::kUser:
      return "user";
    case KillReason::kDeadline:
      return "deadline";
    case KillReason::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

void CancelSource::CancelLocked(KillReason reason, std::string detail) {
  // First transition wins: the store below publishes reason_/detail_.
  if (cancelled_.load(std::memory_order_relaxed)) return;
  reason_ = reason;
  detail_ = std::move(detail);
  cancelled_.store(true, std::memory_order_release);
  if (reason == KillReason::kDeadline) {
    DeadlineCounter()->Add(1);
  } else {
    CancelCounter()->Add(1);
  }
}

void CancelSource::Cancel(KillReason reason, std::string detail) {
  std::lock_guard<std::mutex> lock(mu_);
  CancelLocked(reason, std::move(detail));
}

void CancelSource::ArmDeadline(std::chrono::steady_clock::time_point deadline) {
  std::lock_guard<std::mutex> lock(mu_);
  deadline_ = deadline;
  deadline_armed_.store(true, std::memory_order_release);
}

void CancelSource::DisarmDeadline() {
  std::lock_guard<std::mutex> lock(mu_);
  deadline_armed_.store(false, std::memory_order_release);
}

Status CancelSource::StatusNow() const {
  if (!cancelled_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  std::string msg = detail_.empty()
                        ? std::string("query cancelled (") +
                              KillReasonName(reason_) + ")"
                        : detail_;
  if (reason_ == KillReason::kDeadline) {
    return Status::DeadlineExceeded(std::move(msg));
  }
  return Status::Cancelled(std::move(msg));
}

Status CancelSource::Check() {
  if (cancelled_.load(std::memory_order_acquire)) return StatusNow();
  if (deadline_armed_.load(std::memory_order_acquire)) {
    uint64_t n = probe_count_.fetch_add(1, std::memory_order_relaxed);
    if (n % kDeadlineStride == 0) ProbeDeadline();
    if (cancelled_.load(std::memory_order_acquire)) return StatusNow();
  }
  return Status::OK();
}

bool CancelSource::ProbeDeadline() {
  if (!deadline_armed_.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (!deadline_armed_.load(std::memory_order_relaxed)) return false;
  if (std::chrono::steady_clock::now() < deadline_) return false;
  bool was_cancelled = cancelled_.load(std::memory_order_relaxed);
  CancelLocked(KillReason::kDeadline, "statement timeout exceeded");
  return !was_cancelled;
}

void CancelSource::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  cancelled_.store(false, std::memory_order_release);
  deadline_armed_.store(false, std::memory_order_release);
  reason_ = KillReason::kNone;
  detail_.clear();
}

void MemoryBudget::Reset(int64_t limit_bytes) {
  used_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
  limit_.store(limit_bytes, std::memory_order_relaxed);
  exceeded_.store(false, std::memory_order_relaxed);
}

Status MemoryBudget::Charge(int64_t bytes) {
  int64_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  // Peak tracking: lock-free max fold.
  int64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  int64_t limit = limit_.load(std::memory_order_relaxed);
  if (limit <= 0) return Status::OK();
  if (exceeded_.load(std::memory_order_relaxed) || now > limit) {
    if (!exceeded_.exchange(true, std::memory_order_relaxed)) {
      BudgetCounter()->Add(1);
    }
    return Status::ResourceExhausted(
        "memory budget exceeded: " + std::to_string(now) + " bytes used, " +
        std::to_string(limit) + " byte limit");
  }
  return Status::OK();
}

void MemoryBudget::Release(int64_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

ScopedThreadLimits::ScopedThreadLimits(const QueryLimits* limits)
    : prev_(t_limits) {
  t_limits = limits;
}

ScopedThreadLimits::~ScopedThreadLimits() { t_limits = prev_; }

const QueryLimits* ThreadLimits() { return t_limits; }

Status CheckThreadCancel() {
  const QueryLimits* l = t_limits;
  if (l == nullptr || l->cancel == nullptr) return Status::OK();
  return l->cancel->Check();
}

}  // namespace sqlarray::gov
