// Write-ahead-log record types and their codec.
//
// The log is a stream of redo-only records in the ARIES tradition: page
// writes are logged as full-page images (physical redo, idempotent under
// replay), and transaction boundaries plus catalog changes are logged
// logically. Each record's serialized payload starts with a one-byte type
// tag and the owning transaction id; framing (length + CRC32C) is the log
// writer's job, not the codec's.
//
// Record payloads (little-endian throughout):
//   common header : [0] type u8, [1..8] txn u64
//   kBegin/kAbort : header only
//   kPageWrite    : u32 page_id, then the full kPageSize image
//   kCreateTable  : catalog entry (name, schema, root page)
//   kCommit       : u16 n x {u16 name_len, name, u32 root} — the roots the
//                   txn's tables ended at — then u8 has_free_list and, when
//                   set, the ABSOLUTE blob free-list (u32 n x u32 page).
//   kCheckpoint   : u16 n x full catalog entry, then the blob free-list.
//
// The free-list is always logged as absolute state, never as deltas:
// replaying "the list was exactly X" twice is idempotent, whereas replaying
// individual free/reuse operations would not be.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"
#include "storage/schema.h"

namespace sqlarray::wal {

/// Transaction id 0 marks writes made outside any transaction (bulk loads
/// and direct storage-API callers). Redo always replays them.
inline constexpr uint64_t kSystemTxn = 0;

enum class RecordType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  kPageWrite = 4,
  kCreateTable = 5,
  kCheckpoint = 6,
};

/// One table's catalog state as carried in the log. kCommit entries carry
/// only (name, root); kCreateTable and kCheckpoint entries carry the schema
/// too, because recovery may have no other source for it.
struct CatalogEntry {
  std::string name;
  std::vector<storage::ColumnDef> columns;  ///< empty in kCommit entries
  storage::PageId root = storage::kNullPage;
};

/// A decoded log record. Encode reads only the fields its type uses.
struct WalRecord {
  RecordType type = RecordType::kBegin;
  uint64_t txn = kSystemTxn;

  // kPageWrite
  storage::PageId page_id = storage::kNullPage;
  storage::Page page_image;

  // kCommit (name+root), kCreateTable (one entry), kCheckpoint (full catalog)
  std::vector<CatalogEntry> catalog;

  // kCommit (optional) and kCheckpoint (always)
  bool has_free_list = false;
  std::vector<storage::PageId> free_list;

  // Filled by the log reader: byte positions of this record's payload frame
  // in the log's LSN space.
  uint64_t lsn = 0;
  uint64_t end_lsn = 0;
};

/// Serializes a record payload (no frame).
std::vector<uint8_t> EncodeRecord(const WalRecord& record);

/// Parses a record payload. Fails with kCorruption on a malformed payload.
Result<WalRecord> DecodeRecord(std::span<const uint8_t> payload);

const char* RecordTypeName(RecordType type);

}  // namespace sqlarray::wal
