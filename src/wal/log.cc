#include "wal/log.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/bytes.h"
#include "common/crc32c.h"

namespace sqlarray::wal {

namespace {

/// Sanity cap on one record's framed payload (a checkpoint record carrying
/// a very large catalog or free-list still fits comfortably).
constexpr uint64_t kMaxRecordBytes = 16u << 20;

constexpr storage::PageId kHeaderDiskPage = 1;

}  // namespace

LogDevice::LogDevice(storage::DiskConfig config) : disk_(config) {
  // Reserve the header page so it always exists (zeroed => "no checkpoint").
  disk_.EnsureAllocated(kHeaderDiskPage);
}

Status LogDevice::ReadPageWithRetry(storage::PageId id,
                                    storage::Page* image) {
  Status st = disk_.ReadPage(id, image);
  int attempt = 1;
  while (!st.ok() && st.code() != StatusCode::kInvalidArgument &&
         attempt < max_read_attempts_) {
    ++attempt;
    disk_.NoteReadRetry(attempt);
    st = disk_.ReadPage(id, image);
    if (st.ok()) disk_.NoteFaultHealed();
  }
  if (!st.ok()) {
    if (st.code() == StatusCode::kInvalidArgument) return st;
    return Status::Corruption("log disk page " + std::to_string(id) +
                              " unreadable after " + std::to_string(attempt) +
                              " attempt(s): " + st.message());
  }
  return Status::OK();
}

Result<LogHeader> LogDevice::ReadHeader() {
  storage::Page page;
  Status s = ReadPageWithRetry(kHeaderDiskPage, &page);
  // An unreadable or torn header is survivable: recovery falls back to
  // scanning the whole log from page 0.
  if (!s.ok()) return LogHeader{};
  if (DecodeLE<uint32_t>(page.data()) != kLogHeaderMagic) return LogHeader{};
  LogHeader header;
  uint32_t ckpt_plus1 = DecodeLE<uint32_t>(page.data() + 4);
  header.has_checkpoint = ckpt_plus1 != 0;
  header.checkpoint_page = static_cast<int64_t>(ckpt_plus1) - 1;
  header.checkpoint_lsn = DecodeLE<uint64_t>(page.data() + 8);
  return header;
}

Status LogDevice::WriteHeader(const LogHeader& header) {
  storage::Page page;
  EncodeLE<uint32_t>(page.data(), kLogHeaderMagic);
  EncodeLE<uint32_t>(page.data() + 4,
                     header.has_checkpoint
                         ? static_cast<uint32_t>(header.checkpoint_page + 1)
                         : 0);
  EncodeLE<uint64_t>(page.data() + 8, header.checkpoint_lsn);
  disk_.EnsureAllocated(kHeaderDiskPage);
  return disk_.WritePage(kHeaderDiskPage, page);
}

Result<LogDevice::LogPage> LogDevice::ReadLogPage(int64_t index) {
  storage::PageId disk_page =
      static_cast<storage::PageId>(index + kFirstLogDiskPage);
  LogPage out;
  // Retried read: recovery walks the page chain through this call, and a
  // transient injected fault must heal rather than truncate the chain.
  SQLARRAY_RETURN_IF_ERROR(ReadPageWithRetry(disk_page, &out.raw));
  if (DecodeLE<uint32_t>(out.raw.data()) != kLogPageMagic) {
    return Status::Corruption("log page " + std::to_string(index) +
                              " has no valid header");
  }
  out.used = DecodeLE<uint32_t>(out.raw.data() + 4);
  out.start_lsn = DecodeLE<uint64_t>(out.raw.data() + 8);
  out.epoch = DecodeLE<uint32_t>(out.raw.data() + 16);
  if (out.used == 0 || out.used > kLogPageCapacity) {
    return Status::Corruption("log page " + std::to_string(index) +
                              " has invalid payload length");
  }
  return out;
}

Status LogDevice::WriteLogPage(int64_t index, uint32_t used, Lsn start_lsn,
                               uint32_t epoch, const uint8_t* payload) {
  storage::Page page;
  EncodeLE<uint32_t>(page.data(), kLogPageMagic);
  EncodeLE<uint32_t>(page.data() + 4, used);
  EncodeLE<uint64_t>(page.data() + 8, start_lsn);
  EncodeLE<uint32_t>(page.data() + 16, epoch);
  std::memcpy(page.data() + kLogPageHeaderBytes, payload, used);
  storage::PageId disk_page =
      static_cast<storage::PageId>(index + kFirstLogDiskPage);
  disk_.EnsureAllocated(disk_page);
  return disk_.WritePage(disk_page, page);
}

LogWriter::LogWriter(LogDevice* device, int64_t group_commit_window_us)
    : device_(device),
      window_us_(group_commit_window_us),
      reg_records_(obs::MetricsRegistry::Global().GetCounter("wal.records")),
      reg_bytes_(obs::MetricsRegistry::Global().GetCounter("wal.bytes")),
      reg_flushes_(obs::MetricsRegistry::Global().GetCounter("wal.flushes")),
      reg_batch_(obs::MetricsRegistry::Global().GetHistogram(
          "wal.group_commit.batch")) {
  buffer_.reserve(static_cast<size_t>(kLogPageCapacity));
}

void LogWriter::SealBufferLocked() {
  sealed_.push_back(SealedPage{buffer_page_,
                               static_cast<uint32_t>(buffer_.size()),
                               buffer_start_lsn_, std::move(buffer_)});
  buffer_.clear();
  buffer_.reserve(static_cast<size_t>(kLogPageCapacity));
  ++buffer_page_;
  buffer_start_lsn_ = next_lsn_;
}

Lsn LogWriter::AppendLocked(std::span<const uint8_t> payload, Lsn* end_lsn) {
  Lsn start = next_lsn_;
  uint8_t frame[8];
  EncodeLE<uint32_t>(frame, static_cast<uint32_t>(payload.size()));
  EncodeLE<uint32_t>(frame + 4, Crc32c(payload.data(), payload.size()));
  auto append_bytes = [this](const uint8_t* p, size_t n) {
    while (n > 0) {
      size_t space = static_cast<size_t>(kLogPageCapacity) - buffer_.size();
      if (space == 0) {
        SealBufferLocked();
        space = static_cast<size_t>(kLogPageCapacity);
      }
      size_t take = std::min(space, n);
      buffer_.insert(buffer_.end(), p, p + take);
      next_lsn_ += take;
      p += take;
      n -= take;
    }
  };
  append_bytes(frame, sizeof(frame));
  append_bytes(payload.data(), payload.size());
  if (end_lsn != nullptr) *end_lsn = next_lsn_;
  reg_records_->Add(1);
  reg_bytes_->Add(static_cast<int64_t>(payload.size()) + 8);
  return start;
}

Result<Lsn> LogWriter::Append(std::span<const uint8_t> payload,
                              Lsn* end_lsn) {
  if (payload.size() + 8 > kMaxRecordBytes) {
    return Status::InvalidArgument("wal record exceeds the size cap");
  }
  std::lock_guard<std::mutex> lock(mu_);
  return AppendLocked(payload, end_lsn);
}

Status LogWriter::FlushPendingLocked() {
  if (!buffer_.empty()) SealBufferLocked();
  if (sealed_.empty()) return Status::OK();
  for (const SealedPage& page : sealed_) {
    SQLARRAY_RETURN_IF_ERROR(device_->WriteLogPage(
        page.index, page.used, page.start_lsn, epoch_, page.payload.data()));
  }
  sealed_.clear();
  durable_lsn_ = next_lsn_;
  reg_flushes_->Add(1);
  return Status::OK();
}

Status LogWriter::FlushTo(Lsn target, bool gather) {
  std::unique_lock<std::mutex> lock(mu_);
  if (durable_lsn_ >= target) return Status::OK();
  ++waiting_committers_;
  Status result;
  for (;;) {
    if (durable_lsn_ >= target) break;
    if (!flush_in_progress_) {
      // Leader: linger for the group-commit window so concurrent
      // committers can pile their records into this one flush.
      flush_in_progress_ = true;
      if (gather && window_us_ > 0) {
        cv_.wait_for(lock, std::chrono::microseconds(window_us_));
      }
      int64_t batch = waiting_committers_;
      result = FlushPendingLocked();
      flush_in_progress_ = false;
      gc_stats_.flushes++;
      gc_stats_.committers += batch;
      gc_stats_.max_batch = std::max(gc_stats_.max_batch, batch);
      reg_batch_->Observe(batch);
      cv_.notify_all();
      break;
    }
    cv_.wait(lock,
             [&] { return durable_lsn_ >= target || !flush_in_progress_; });
  }
  --waiting_committers_;
  if (result.ok() && durable_lsn_ < target) {
    return Status::Internal("log flush did not reach the requested lsn");
  }
  return result;
}

Status LogWriter::FlushAll() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !flush_in_progress_; });
  return FlushPendingLocked();
}

Result<LogWriter::AlignedAppend> LogWriter::AppendAligned(
    std::span<const uint8_t> payload) {
  if (payload.size() + 8 > kMaxRecordBytes) {
    return Status::InvalidArgument("wal record exceeds the size cap");
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !flush_in_progress_; });
  if (!buffer_.empty()) SealBufferLocked();
  AlignedAppend out{buffer_page_, next_lsn_};
  AppendLocked(payload, nullptr);
  SQLARRAY_RETURN_IF_ERROR(FlushPendingLocked());
  return out;
}

void LogWriter::DiscardPending() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!sealed_.empty()) buffer_page_ = sealed_.front().index;
  sealed_.clear();
  buffer_.clear();
  next_lsn_ = durable_lsn_;
  buffer_start_lsn_ = durable_lsn_;
}

void LogWriter::Reset(int64_t next_page, Lsn next_lsn, uint32_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  sealed_.clear();
  buffer_.clear();
  buffer_page_ = next_page;
  buffer_start_lsn_ = next_lsn;
  next_lsn_ = next_lsn;
  durable_lsn_ = next_lsn;
  epoch_ = epoch;
}

Lsn LogWriter::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

Lsn LogWriter::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

uint32_t LogWriter::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

GroupCommitStats LogWriter::group_commit_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gc_stats_;
}

Result<LogScan> ScanLog(LogDevice* device, int64_t start_page) {
  LogScan scan;
  scan.resume_page = start_page;

  // Phase 1: read the valid page chain. A page extends the chain only when
  // it is readable, carries the log-page magic, continues the LSN stream
  // exactly, and does not step its epoch backwards.
  std::vector<LogDevice::LogPage> pages;
  for (int64_t index = start_page;; ++index) {
    Result<LogDevice::LogPage> r = device->ReadLogPage(index);
    if (!r.ok()) break;
    if (!pages.empty()) {
      const LogDevice::LogPage& prev = pages.back();
      if (r->start_lsn != prev.start_lsn + prev.used) break;
      if (r->epoch < prev.epoch) break;
    }
    pages.push_back(std::move(*r));
  }
  if (pages.empty()) return scan;

  // Phase 2: concatenate payloads and parse records, resyncing over dead
  // regions at epoch increases.
  struct Span {
    size_t begin;
    size_t end;
    uint32_t epoch;
  };
  std::vector<uint8_t> stream;
  std::vector<Span> spans;
  uint32_t max_epoch = 1;
  for (const LogDevice::LogPage& page : pages) {
    spans.push_back(Span{stream.size(), stream.size() + page.used,
                         page.epoch});
    stream.insert(stream.end(), page.payload(), page.payload() + page.used);
    max_epoch = std::max(max_epoch, page.epoch);
  }
  const Lsn base = pages.front().start_lsn;
  scan.resume_page = start_page + static_cast<int64_t>(pages.size());
  scan.resume_lsn = base + stream.size();
  scan.resume_epoch = max_epoch + 1;

  size_t pos = 0;
  size_t span_idx = 0;
  auto epoch_at = [&](size_t p) {
    while (span_idx + 1 < spans.size() && p >= spans[span_idx].end) {
      ++span_idx;
    }
    return spans[span_idx].epoch;
  };
  while (pos < stream.size()) {
    bool valid = false;
    uint64_t len = 0;
    if (pos + 8 <= stream.size()) {
      len = DecodeLE<uint32_t>(stream.data() + pos);
      uint32_t crc = DecodeLE<uint32_t>(stream.data() + pos + 4);
      if (len <= kMaxRecordBytes && pos + 8 + len <= stream.size() &&
          Crc32c(stream.data() + pos + 8, static_cast<size_t>(len)) == crc) {
        Result<WalRecord> rec = DecodeRecord(std::span<const uint8_t>(
            stream.data() + pos + 8, static_cast<size_t>(len)));
        if (rec.ok()) {
          rec->lsn = base + pos;
          rec->end_lsn = base + pos + 8 + len;
          scan.records.push_back(std::move(*rec));
          pos += 8 + static_cast<size_t>(len);
          valid = true;
        }
      }
    }
    if (valid) continue;
    // The frame at `pos` is torn or corrupt. If a later page carries a
    // HIGHER epoch, `pos` starts a dead region a crashed writer stranded;
    // the stream realigns at that page's first byte. Otherwise this is the
    // genuine end of the log.
    uint32_t failed_epoch = epoch_at(pos);
    size_t resync = stream.size();
    bool found = false;
    for (size_t j = span_idx; j < spans.size(); ++j) {
      if (spans[j].begin > pos && spans[j].epoch > failed_epoch) {
        resync = spans[j].begin;
        found = true;
        break;
      }
    }
    if (!found) {
      scan.truncated = true;
      scan.truncated_at_lsn = base + pos;
      break;
    }
    scan.dead_bytes_skipped += static_cast<int64_t>(resync - pos);
    pos = resync;
  }
  return scan;
}

}  // namespace sqlarray::wal
