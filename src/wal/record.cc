#include "wal/record.h"

#include <cstring>

#include "common/bytes.h"

namespace sqlarray::wal {

namespace {

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  size_t at = out->size();
  out->resize(at + 2);
  EncodeLE<uint16_t>(out->data() + at, v);
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  size_t at = out->size();
  out->resize(at + 4);
  EncodeLE<uint32_t>(out->data() + at, v);
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  size_t at = out->size();
  out->resize(at + 8);
  EncodeLE<uint64_t>(out->data() + at, v);
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU16(out, static_cast<uint16_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

void PutSchema(std::vector<uint8_t>* out,
               const std::vector<storage::ColumnDef>& columns) {
  PutU16(out, static_cast<uint16_t>(columns.size()));
  for (const auto& col : columns) {
    PutString(out, col.name);
    PutU8(out, static_cast<uint8_t>(col.type));
    PutU32(out, static_cast<uint32_t>(col.capacity));
  }
}

void PutFreeList(std::vector<uint8_t>* out,
                 const std::vector<storage::PageId>& pages) {
  PutU32(out, static_cast<uint32_t>(pages.size()));
  for (storage::PageId id : pages) PutU32(out, id);
}

/// Bounds-checked sequential reader over a record payload.
class Cursor {
 public:
  explicit Cursor(std::span<const uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  uint8_t U8() { return Fixed<uint8_t>(); }
  uint16_t U16() { return Fixed<uint16_t>(); }
  uint32_t U32() { return Fixed<uint32_t>(); }
  uint64_t U64() { return Fixed<uint64_t>(); }

  std::string String() {
    uint16_t len = U16();
    if (!Need(len)) return {};
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  void Bytes(uint8_t* dst, size_t n) {
    if (!Need(n)) return;
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
  }

 private:
  template <typename T>
  T Fixed() {
    if (!Need(sizeof(T))) return T{};
    T v = DecodeLE<T>(data_.data() + pos_);
    pos_ += sizeof(T);
    return v;
  }

  bool Need(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

Result<std::vector<storage::ColumnDef>> ReadSchema(Cursor* cur) {
  uint16_t n = cur->U16();
  std::vector<storage::ColumnDef> columns;
  columns.reserve(n);
  for (uint16_t i = 0; i < n && cur->ok(); ++i) {
    storage::ColumnDef col;
    col.name = cur->String();
    uint8_t type = cur->U8();
    if (type > static_cast<uint8_t>(storage::ColumnType::kVarBinaryMax)) {
      return Status::Corruption("wal record carries unknown column type");
    }
    col.type = static_cast<storage::ColumnType>(type);
    col.capacity = static_cast<int32_t>(cur->U32());
    columns.push_back(std::move(col));
  }
  return columns;
}

std::vector<storage::PageId> ReadFreeList(Cursor* cur) {
  uint32_t n = cur->U32();
  std::vector<storage::PageId> pages;
  if (cur->ok()) pages.reserve(n);
  for (uint32_t i = 0; i < n && cur->ok(); ++i) pages.push_back(cur->U32());
  return pages;
}

}  // namespace

std::vector<uint8_t> EncodeRecord(const WalRecord& record) {
  std::vector<uint8_t> out;
  PutU8(&out, static_cast<uint8_t>(record.type));
  PutU64(&out, record.txn);
  switch (record.type) {
    case RecordType::kBegin:
    case RecordType::kAbort:
      break;
    case RecordType::kPageWrite:
      PutU32(&out, record.page_id);
      out.insert(out.end(), record.page_image.bytes.begin(),
                 record.page_image.bytes.end());
      break;
    case RecordType::kCreateTable:
      PutString(&out, record.catalog.at(0).name);
      PutSchema(&out, record.catalog.at(0).columns);
      PutU32(&out, record.catalog.at(0).root);
      break;
    case RecordType::kCommit:
      PutU16(&out, static_cast<uint16_t>(record.catalog.size()));
      for (const auto& entry : record.catalog) {
        PutString(&out, entry.name);
        PutU32(&out, entry.root);
      }
      PutU8(&out, record.has_free_list ? 1 : 0);
      if (record.has_free_list) PutFreeList(&out, record.free_list);
      break;
    case RecordType::kCheckpoint:
      PutU16(&out, static_cast<uint16_t>(record.catalog.size()));
      for (const auto& entry : record.catalog) {
        PutString(&out, entry.name);
        PutSchema(&out, entry.columns);
        PutU32(&out, entry.root);
      }
      PutFreeList(&out, record.free_list);
      break;
  }
  return out;
}

Result<WalRecord> DecodeRecord(std::span<const uint8_t> payload) {
  Cursor cur(payload);
  WalRecord rec;
  uint8_t type = cur.U8();
  if (type < static_cast<uint8_t>(RecordType::kBegin) ||
      type > static_cast<uint8_t>(RecordType::kCheckpoint)) {
    return Status::Corruption("wal record has unknown type tag");
  }
  rec.type = static_cast<RecordType>(type);
  rec.txn = cur.U64();
  switch (rec.type) {
    case RecordType::kBegin:
    case RecordType::kAbort:
      break;
    case RecordType::kPageWrite:
      rec.page_id = cur.U32();
      cur.Bytes(rec.page_image.data(), static_cast<size_t>(storage::kPageSize));
      break;
    case RecordType::kCreateTable: {
      CatalogEntry entry;
      entry.name = cur.String();
      SQLARRAY_ASSIGN_OR_RETURN(entry.columns, ReadSchema(&cur));
      entry.root = cur.U32();
      rec.catalog.push_back(std::move(entry));
      break;
    }
    case RecordType::kCommit: {
      uint16_t n = cur.U16();
      for (uint16_t i = 0; i < n && cur.ok(); ++i) {
        CatalogEntry entry;
        entry.name = cur.String();
        entry.root = cur.U32();
        rec.catalog.push_back(std::move(entry));
      }
      rec.has_free_list = cur.U8() != 0;
      if (rec.has_free_list) rec.free_list = ReadFreeList(&cur);
      break;
    }
    case RecordType::kCheckpoint: {
      uint16_t n = cur.U16();
      for (uint16_t i = 0; i < n && cur.ok(); ++i) {
        CatalogEntry entry;
        entry.name = cur.String();
        SQLARRAY_ASSIGN_OR_RETURN(entry.columns, ReadSchema(&cur));
        entry.root = cur.U32();
        rec.catalog.push_back(std::move(entry));
      }
      rec.has_free_list = true;
      rec.free_list = ReadFreeList(&cur);
      break;
    }
  }
  if (!cur.ok() || !cur.AtEnd()) {
    return Status::Corruption("wal record payload is malformed");
  }
  return rec;
}

const char* RecordTypeName(RecordType type) {
  switch (type) {
    case RecordType::kBegin: return "BEGIN";
    case RecordType::kCommit: return "COMMIT";
    case RecordType::kAbort: return "ABORT";
    case RecordType::kPageWrite: return "PAGE_WRITE";
    case RecordType::kCreateTable: return "CREATE_TABLE";
    case RecordType::kCheckpoint: return "CHECKPOINT";
  }
  return "UNKNOWN";
}

}  // namespace sqlarray::wal
