// The append-only log device: sealed write-once pages on a SimulatedDisk.
//
// The log lives on its OWN simulated disk (its own cost model and fault
// injector), separate from the data disk — crashes can tear the log tail
// independently of data pages, exactly the failure recovery must survive.
//
// Layout. Disk page 1 is the log header; log page k (0-based) maps to disk
// page k + 2. Each log page is:
//   [0..3]  magic 'WALP'
//   [4..7]  used payload bytes
//   [8..15] start LSN of the first payload byte
//   [16..19] writer epoch
//   [20..23] reserved
//   [24..]  payload (kLogPageCapacity bytes)
// An LSN is a byte offset into the concatenation of all page payloads.
// Records are framed inside the payload stream as
//   [u32 payload_len][u32 crc32c(payload)][payload]
// and may span pages.
//
// Write-once sealing. Every flush SEALS the current partial page: the page
// is written to disk exactly once and later appends go to the next page.
// No disk page is ever rewritten, so a torn flush can only damage records
// that were never acknowledged — acknowledged bytes are physically immutable.
// The cost is internal fragmentation per flush, which group commit amortizes.
//
// Epochs and dead regions. After a crash the writer resumes at the page
// AFTER the last fully valid one, with epoch = (max epoch seen) + 1. Bytes
// of a half-written record stranded at the end of the old tail stay in LSN
// space as a dead region. The reader detects them: when record parsing fails
// inside page q but page q+1 carries a HIGHER epoch, the stream resyncs at
// q+1's first byte (records always realign at page starts after a reset).
// A parse failure with no higher-epoch successor is the genuine torn tail,
// and the log logically ends at the failed record's start.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "storage/disk.h"
#include "wal/record.h"

namespace sqlarray::wal {

using Lsn = uint64_t;

inline constexpr uint32_t kLogHeaderMagic = 0x57414C48;  // 'HLAW' LE = "WALH"
inline constexpr uint32_t kLogPageMagic = 0x57414C50;    // "WALP"
inline constexpr int64_t kLogPageHeaderBytes = 24;
inline constexpr int64_t kLogPageCapacity =
    storage::kPageSize - kLogPageHeaderBytes;
/// First disk page backing log page 0 (disk page 1 is the header).
inline constexpr storage::PageId kFirstLogDiskPage = 2;

/// The durable log header: where the last checkpoint record starts.
struct LogHeader {
  bool has_checkpoint = false;
  int64_t checkpoint_page = 0;  ///< log page index of the checkpoint record
  Lsn checkpoint_lsn = 0;
};

/// Owns the log's disk and the header page.
class LogDevice {
 public:
  explicit LogDevice(storage::DiskConfig config = {});

  Result<LogHeader> ReadHeader();
  Status WriteHeader(const LogHeader& header);

  /// Reads log page `index`; fails if the disk page is unreadable or does
  /// not carry a valid log-page header.
  struct LogPage {
    uint32_t used = 0;
    Lsn start_lsn = 0;
    uint32_t epoch = 0;
    storage::Page raw;
    const uint8_t* payload() const { return raw.data() + kLogPageHeaderBytes; }
  };
  Result<LogPage> ReadLogPage(int64_t index);

  /// Writes log page `index` (allocating through it as needed).
  Status WriteLogPage(int64_t index, uint32_t used, Lsn start_lsn,
                      uint32_t epoch, const uint8_t* payload);

  storage::SimulatedDisk* disk() { return &disk_; }

  /// Transient log-read failures (the disk's fault injector) are retried up
  /// to this many attempts with modeled backoff before escalating — a
  /// recovery scan must not mistake a transient fault for the end of the
  /// log chain.
  void set_max_read_attempts(int attempts) {
    max_read_attempts_ = attempts < 1 ? 1 : attempts;
  }
  int max_read_attempts() const { return max_read_attempts_; }

 private:
  /// ReadPage with the bounded-retry policy (mirrors the buffer pool's):
  /// retry transient errors, never retry kInvalidArgument (structural), and
  /// escalate an exhausted budget to kCorruption naming the page.
  Status ReadPageWithRetry(storage::PageId id, storage::Page* image);

  storage::SimulatedDisk disk_;
  int max_read_attempts_ = 3;
};

/// Group-commit accounting.
struct GroupCommitStats {
  int64_t flushes = 0;       ///< physical flushes (pages written batches)
  int64_t committers = 0;    ///< FlushTo callers served
  int64_t max_batch = 0;     ///< most committers served by one flush
};

/// The appender. Thread-safe; one writer object per log.
class LogWriter {
 public:
  /// `group_commit_window_us` > 0 makes the flush leader linger that long
  /// collecting followers before issuing the physical flush.
  LogWriter(LogDevice* device, int64_t group_commit_window_us = 0);

  /// Frames and buffers a record payload. Returns the record's start LSN;
  /// `end_lsn` (if non-null) receives the LSN one past the record. Not
  /// durable until a flush covers end_lsn.
  Result<Lsn> Append(std::span<const uint8_t> payload, Lsn* end_lsn = nullptr);

  /// Makes the log durable through at least `target`. Concurrent callers
  /// group-commit: one leader flushes for everyone whose target is covered.
  /// `gather` false skips the commit window — the buffer pool's
  /// WAL-before-data fence uses it, since an eviction has no reason to
  /// linger for company.
  Status FlushTo(Lsn target, bool gather = true);

  /// Flushes everything appended so far.
  Status FlushAll();

  /// Appends `payload` as the FIRST record of a fresh page (sealing the
  /// current one), then flushes. Returns the record's page index and LSN —
  /// what the header needs to point at a checkpoint.
  struct AlignedAppend {
    int64_t page = 0;
    Lsn lsn = 0;
  };
  Result<AlignedAppend> AppendAligned(std::span<const uint8_t> payload);

  /// Drops all buffered-but-unflushed bytes (crash simulation: they were
  /// only in memory).
  void DiscardPending();

  /// Re-bases the writer after recovery: next append goes to `next_page`
  /// at LSN `next_lsn` under `epoch`.
  void Reset(int64_t next_page, Lsn next_lsn, uint32_t epoch);

  Lsn next_lsn() const;
  Lsn durable_lsn() const;
  uint32_t epoch() const;
  GroupCommitStats group_commit_stats() const;

 private:
  /// Frames and buffers a payload. Caller holds mu_.
  Lsn AppendLocked(std::span<const uint8_t> payload, Lsn* end_lsn);
  /// Seals the open tail page onto the sealed queue. Caller holds mu_.
  void SealBufferLocked();
  /// Seals the buffered page (if it holds any bytes) and writes every
  /// sealed-but-unwritten page to the device. Caller holds mu_.
  Status FlushPendingLocked();

  LogDevice* device_;
  int64_t window_us_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool flush_in_progress_ = false;
  int64_t waiting_committers_ = 0;

  /// Sealed pages not yet on disk (index, used, start_lsn, payload).
  struct SealedPage {
    int64_t index;
    uint32_t used;
    Lsn start_lsn;
    std::vector<uint8_t> payload;
  };
  std::vector<SealedPage> sealed_;

  /// The open tail page being appended into.
  std::vector<uint8_t> buffer_;
  int64_t buffer_page_ = 0;
  Lsn buffer_start_lsn_ = 0;

  Lsn next_lsn_ = 0;
  Lsn durable_lsn_ = 0;
  uint32_t epoch_ = 1;

  GroupCommitStats gc_stats_;
  obs::Counter* reg_records_;
  obs::Counter* reg_bytes_;
  obs::Counter* reg_flushes_;
  obs::Histogram* reg_batch_;
};

/// Result of scanning the log from a page boundary.
struct LogScan {
  std::vector<WalRecord> records;  ///< valid records, in LSN order
  /// Where a post-recovery writer must resume.
  int64_t resume_page = 0;
  Lsn resume_lsn = 0;
  uint32_t resume_epoch = 1;  ///< max epoch seen + 1
  /// True when the scan ended at a torn/invalid suffix (truncated bytes
  /// follow `truncated_at_lsn`).
  bool truncated = false;
  Lsn truncated_at_lsn = 0;
  int64_t dead_bytes_skipped = 0;  ///< bytes skipped via epoch resync
};

/// Scans the log starting at log page `start_page` (which must be a record
/// boundary — page 0 or a checkpoint page). Stops at the first torn or
/// invalid suffix; never fails on one.
Result<LogScan> ScanLog(LogDevice* device, int64_t start_page);

}  // namespace sqlarray::wal
