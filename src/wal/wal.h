// The write-ahead-log manager: transactions, checkpoints, crash recovery.
//
// WalManager ties the log device to a storage::Database. On construction it
// switches the buffer pool into write-back mode and installs the WAL hooks,
// so from then on every page write is logged as a full-page image BEFORE it
// can reach the data disk (the WAL-before-data invariant; the pool enforces
// it at eviction and flush).
//
// Transaction model — redo-only ARIES, simplified by two invariants:
//   * single writer: Begin() takes the manager's DML lock and Commit/
//     Rollback (from the same thread) release it, so write transactions are
//     serialized. Readers are unaffected.
//   * no-steal: every page a transaction touches stays PINNED (the manager
//     holds the pin with the page's before-image), so uncommitted data can
//     never be evicted to the data disk. Recovery therefore never needs
//     undo — replaying committed transactions' page images is enough.
// Rollback of a live transaction is pure in-memory undo: restore the
// byte-exact before-images, the B-tree metadata snapshots, the blob
// free-list snapshot, and drop tables the transaction created.
//
// Writes made OUTSIDE any transaction (bulk loads, direct storage calls)
// are logged under txn id 0 and always replayed: they stay durable once
// flushed, but a crash in the middle of a multi-page txn-0 operation can
// leave a torn structure — the documented cost of skipping Begin.
//
// Checkpoints are fuzzy-free here thanks to the single-writer lock: with no
// transaction open, flush the log, flush every dirty page (one by one, in
// sorted order — each step is a crash site the torture tests hit), append a
// checkpoint record carrying the full catalog and blob free-list to a fresh
// log page, and finally point the log header at it. A crash between any two
// steps leaves the PREVIOUS checkpoint valid; replay is just longer.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"
#include "wal/log.h"

namespace sqlarray::wal {

struct WalConfig {
  /// Cost model for the log's own disk.
  storage::DiskConfig log_disk;
  /// Group-commit window: how long a flush leader lingers collecting
  /// concurrent committers before issuing the physical flush. 0 = flush
  /// immediately (every commit pays its own flush).
  int64_t group_commit_window_us = 0;
};

/// Callbacks an upper layer (MVCC) installs to track crash simulation and
/// recovery. The dependency points upward — wal never links mvcc — so the
/// observer is how version state learns it must be discarded (crash) or
/// re-seeded (recovery, with the log's resume LSN).
struct WalObserver {
  std::function<void()> on_crash;
  std::function<void(Lsn resume_lsn)> on_recovered;
};

/// What one Recover() run did.
struct RecoveryStats {
  int64_t records_scanned = 0;
  int64_t pages_redone = 0;
  int64_t txns_committed = 0;
  /// Transactions with log records but no commit record (in-flight at the
  /// crash, or rolled back) — their writes were NOT replayed.
  int64_t txns_lost = 0;
  int64_t tables_attached = 0;
  int64_t dead_bytes_skipped = 0;
  bool truncated_tail = false;
  bool used_checkpoint = false;
};

class WalManager {
 public:
  /// Attaches to `db`: installs the pool hooks, enables write-back, and
  /// registers itself via Database::AttachWal.
  explicit WalManager(storage::Database* db, WalConfig config = {});
  /// Clean shutdown: flushes the log and all dirty pages, then detaches.
  ~WalManager();

  WalManager(const WalManager&) = delete;
  WalManager& operator=(const WalManager&) = delete;

  /// Starts a transaction, taking the DML lock until Commit/Rollback (which
  /// must run on this thread). Returns the transaction id.
  Result<uint64_t> Begin();

  /// Allocates a transaction id and logs its kBegin WITHOUT taking the DML
  /// lock or making it the active transaction. MVCC transactions use this:
  /// their writes live in private shadow state while other transactions
  /// commit freely; at commit, AcquireApply() turns the id into the active
  /// (applying) transaction. A deferred id that never reaches AcquireApply
  /// simply counts as one lost transaction at recovery, exactly like a
  /// Begin() with no Commit.
  Result<uint64_t> BeginDeferred();

  /// Takes the DML lock and installs `txn` (allocated by BeginDeferred) as
  /// the active transaction — no kBegin is appended (it already was). From
  /// here the transaction is indistinguishable from one opened by Begin():
  /// page writes are captured/pinned under its id and Commit/Rollback on
  /// this thread resolve it.
  Status AcquireApply(uint64_t txn);

  /// Logs the commit record, releases the transaction's pins and the DML
  /// lock, then forces the log (the group-commit point). The transaction is
  /// durable when this returns OK. `commit_lsn`, when non-null, receives
  /// the commit record's end LSN — the point in log order at which the
  /// transaction's effects become visible (MVCC stamps versions with it).
  Status Commit(uint64_t txn, Lsn* commit_lsn = nullptr);

  /// In-memory undo: restores before-images, index metadata, the blob
  /// free-list, and drops created tables; releases the DML lock. Nothing
  /// needs to be flushed — an unflushed transaction simply vanishes.
  Status Rollback(uint64_t txn);

  bool in_txn() const;

  /// True while `txn` is the open transaction. Turns false at Commit/
  /// Rollback and at SimulateCrash — sessions use it to notice that a
  /// crash killed the transaction they thought was open.
  bool TxnActive(uint64_t txn) const;

  /// Must be called before a transaction first mutates `table`: snapshots
  /// the index metadata for rollback. No-op outside a transaction and on
  /// repeat calls.
  Status NoteTableTouched(uint64_t txn, storage::Table* table);

  /// Logs a CREATE TABLE (schema + root) so recovery can re-attach it.
  /// Call right after Database::CreateTable, inside or outside a txn.
  Status NoteTableCreated(uint64_t txn, storage::Table* table);

  /// Takes a checkpoint (see file comment). Must not be called with a
  /// transaction open on this thread (the DML lock would deadlock).
  Status Checkpoint();

  /// Crash recovery: rebuilds the database from the data disk + log.
  /// Idempotent — running it twice yields byte-identical data pages.
  Result<RecoveryStats> Recover();

  /// Simulates the process dying: drops every volatile structure (cache,
  /// catalog, free-list, unflushed log bytes) while both disks survive.
  /// Call Recover() afterwards. Any open transaction must belong to the
  /// calling thread (its DML lock is released here).
  void SimulateCrash();

  /// Arms a simulated crash inside the NEXT Checkpoint() call, which then
  /// returns kInternal after the given step:
  ///   1 = log flushed   2 = first dirty page flushed (mid data flush)
  ///   3 = all dirty pages flushed   4 = checkpoint record appended,
  ///       header not yet updated
  /// 0 disarms. The caller then drives SimulateCrash()/Recover().
  void set_checkpoint_crash_step(int step) { checkpoint_crash_step_ = step; }

  /// Arms a simulated crash inside the NEXT Commit() call:
  ///   1 = before the commit record is appended
  ///   2 = commit record appended, log not yet force-flushed
  /// The failed Commit returns kInternal and leaves the transaction OPEN
  /// (before-images pinned, DML lock held) so the caller can drive
  /// SimulateCrash()/Recover() from the same thread. 0 disarms.
  void set_commit_crash_step(int step) { commit_crash_step_ = step; }

  /// Runs `fn` holding the DML lock with NO transaction active: its page
  /// writes are logged under txn 0 (always replayed) and cannot interleave
  /// with a transaction's apply. MVCC DDL and bulk maintenance use this.
  Status WithDmlLock(const std::function<Status()>& fn);

  /// A barrier LSN: briefly takes the DML lock and returns the writer's
  /// next LSN. Every transaction that committed before the call sits
  /// strictly below it — MVCC advances its visibility horizon to this
  /// after non-transactional work (DDL, bulk loads).
  Result<Lsn> QuiescentLsn();

  /// Installs (or clears, with `{}`) the crash/recovery observer.
  void SetObserver(WalObserver obs) { observer_ = std::move(obs); }

  const RecoveryStats& last_recovery() const { return last_recovery_; }
  LogDevice* log_device() { return &device_; }
  LogWriter* log_writer() { return &writer_; }
  storage::Database* db() { return db_; }

 private:
  struct ActiveTxn {
    uint64_t id = 0;
    struct BeforeImage {
      storage::Page image;
      storage::BufferPool::PageState state;
      storage::PinnedPage pin;  ///< no-steal: blocks eviction until resolve
    };
    std::map<storage::PageId, BeforeImage> before;
    std::map<std::string, storage::BTree::Meta> touched;
    std::vector<std::string> created;
    std::vector<storage::PageId> free_list_snapshot;
  };

  /// The buffer-pool hook: captures the before-image on first touch and
  /// appends the full-page-image record. Returns the record's end LSN.
  Result<Lsn> LogPageWrite(storage::PageId id, const storage::Page& page);

  /// Releases the current transaction's state and the DML lock.
  void FinishTxnLocked();

  storage::Database* db_;
  storage::BufferPool* pool_;
  LogDevice device_;
  LogWriter writer_;

  /// Serializes write transactions; held from Begin to Commit/Rollback.
  std::mutex dml_mu_;
  /// Guards current_txn_/active_ against the page-write hook, which can
  /// fire from any thread doing txn-0 writes.
  mutable std::mutex txn_mu_;
  std::unique_ptr<ActiveTxn> active_;
  uint64_t next_txn_id_ = 1;

  int checkpoint_crash_step_ = 0;
  int commit_crash_step_ = 0;
  RecoveryStats last_recovery_;
  WalObserver observer_;

  obs::Counter* reg_commits_;
  obs::Counter* reg_aborts_;
  obs::Counter* reg_checkpoints_;
  obs::Counter* reg_recoveries_;
  obs::Counter* reg_recovery_pages_;
  obs::Counter* reg_recovery_records_;
};

}  // namespace sqlarray::wal
