#include "wal/wal.h"

#include <algorithm>
#include <set>
#include <utility>

namespace sqlarray::wal {

WalManager::WalManager(storage::Database* db, WalConfig config)
    : db_(db),
      pool_(db->buffer_pool()),
      device_(config.log_disk),
      writer_(&device_, config.group_commit_window_us),
      reg_commits_(obs::MetricsRegistry::Global().GetCounter("wal.commits")),
      reg_aborts_(obs::MetricsRegistry::Global().GetCounter("wal.aborts")),
      reg_checkpoints_(
          obs::MetricsRegistry::Global().GetCounter("wal.checkpoints")),
      reg_recoveries_(
          obs::MetricsRegistry::Global().GetCounter("wal.recoveries")),
      reg_recovery_pages_(obs::MetricsRegistry::Global().GetCounter(
          "wal.recovery.pages_redone")),
      reg_recovery_records_(obs::MetricsRegistry::Global().GetCounter(
          "wal.recovery.records_scanned")) {
  storage::WalPageHook hook;
  hook.log_page_write = [this](storage::PageId id, const storage::Page& page) {
    return LogPageWrite(id, page);
  };
  hook.flush_log_to = [this](storage::Lsn lsn) {
    return writer_.FlushTo(lsn, /*gather=*/false);
  };
  pool_->SetWalHook(std::move(hook));
  pool_->SetWriteBack(true);
  db_->AttachWal(this);
}

WalManager::~WalManager() {
  // Clean shutdown: everything logged and every dirty page on the data
  // disk, so the database is whole even without replaying this log.
  (void)writer_.FlushAll();
  (void)pool_->FlushAllDirty();
  pool_->SetWalHook(storage::WalPageHook{});
  pool_->SetWriteBack(false);
  db_->AttachWal(nullptr);
}

Result<Lsn> WalManager::LogPageWrite(storage::PageId id,
                                     const storage::Page& page) {
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    if (active_ != nullptr && active_->before.count(id) == 0) {
      // First touch inside a transaction: capture the byte-exact previous
      // image (and dirty state) for rollback, and keep the pin so the
      // uncommitted replacement can never be evicted to the data disk.
      ActiveTxn::BeforeImage bi;
      bi.state = pool_->GetPageState(id);
      SQLARRAY_ASSIGN_OR_RETURN(storage::PinnedPage pin, pool_->GetPage(id));
      bi.image = *pin;
      bi.pin = std::move(pin);
      active_->before.emplace(id, std::move(bi));
    }
  }
  WalRecord rec;
  rec.type = RecordType::kPageWrite;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    rec.txn = active_ != nullptr ? active_->id : kSystemTxn;
  }
  rec.page_id = id;
  rec.page_image = page;
  Lsn end = 0;
  SQLARRAY_ASSIGN_OR_RETURN(Lsn start, writer_.Append(EncodeRecord(rec), &end));
  (void)start;
  return end;
}

Result<uint64_t> WalManager::Begin() {
  dml_mu_.lock();
  auto txn = std::make_unique<ActiveTxn>();
  {
    // txn_mu_ also guards id allocation: BeginDeferred hands out ids from
    // any thread without the DML lock.
    std::lock_guard<std::mutex> lock(txn_mu_);
    txn->id = next_txn_id_++;
  }
  txn->free_list_snapshot = db_->blob_store()->free_pages();
  WalRecord rec;
  rec.type = RecordType::kBegin;
  rec.txn = txn->id;
  Result<Lsn> appended = writer_.Append(EncodeRecord(rec));
  if (!appended.ok()) {
    dml_mu_.unlock();
    return appended.status();
  }
  uint64_t id = txn->id;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    active_ = std::move(txn);
  }
  return id;
}

Result<uint64_t> WalManager::BeginDeferred() {
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    id = next_txn_id_++;
  }
  // The kBegin is logged eagerly, same as Begin(): a crash before commit
  // leaves records under an uncommitted id and recovery counts one lost
  // transaction. The log writer serializes concurrent appends itself.
  WalRecord rec;
  rec.type = RecordType::kBegin;
  rec.txn = id;
  SQLARRAY_RETURN_IF_ERROR(writer_.Append(EncodeRecord(rec)).status());
  return id;
}

Status WalManager::AcquireApply(uint64_t txn) {
  dml_mu_.lock();
  auto t = std::make_unique<ActiveTxn>();
  t->id = txn;
  t->free_list_snapshot = db_->blob_store()->free_pages();
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    active_ = std::move(t);
  }
  return Status::OK();
}

Result<Lsn> WalManager::QuiescentLsn() {
  std::lock_guard<std::mutex> dml(dml_mu_);
  return writer_.next_lsn();
}

Status WalManager::WithDmlLock(const std::function<Status()>& fn) {
  std::lock_guard<std::mutex> dml(dml_mu_);
  return fn();
}

bool WalManager::in_txn() const {
  std::lock_guard<std::mutex> lock(txn_mu_);
  return active_ != nullptr;
}

bool WalManager::TxnActive(uint64_t txn) const {
  std::lock_guard<std::mutex> lock(txn_mu_);
  return active_ != nullptr && active_->id == txn;
}

void WalManager::FinishTxnLocked() {
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    active_.reset();  // releases the no-steal pins
  }
  dml_mu_.unlock();
}

Status WalManager::Commit(uint64_t txn, Lsn* commit_lsn) {
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    if (active_ == nullptr || active_->id != txn) {
      return Status::InvalidArgument("no such open transaction");
    }
  }
  int crash_step = commit_crash_step_;
  commit_crash_step_ = 0;
  if (crash_step == 1) {
    // The transaction stays open (pins held, DML lock held) so the caller
    // can SimulateCrash() from this thread — nothing of it is durable.
    return Status::Internal("simulated crash: before commit record");
  }
  WalRecord rec;
  rec.type = RecordType::kCommit;
  rec.txn = txn;
  std::set<std::string> names;
  for (const auto& [name, meta] : active_->touched) names.insert(name);
  for (const std::string& name : active_->created) names.insert(name);
  for (const std::string& name : names) {
    Result<storage::Table*> table = db_->GetTable(name);
    if (!table.ok()) continue;  // dropped mid-txn: nothing to re-root
    CatalogEntry entry;
    entry.name = name;
    entry.root = (*table)->clustered_index().root_page();
    rec.catalog.push_back(std::move(entry));
  }
  if (db_->blob_store()->free_pages() != active_->free_list_snapshot) {
    rec.has_free_list = true;
    rec.free_list = db_->blob_store()->free_pages();
  }
  Lsn end = 0;
  Result<Lsn> appended = writer_.Append(EncodeRecord(rec), &end);
  if (crash_step == 2) {
    // Commit record appended but not force-flushed: whether it survives the
    // crash depends on page-boundary spills, and recovery resolves either
    // way to a consistent state (fully applied or fully absent).
    return Status::Internal("simulated crash: commit record unflushed");
  }
  FinishTxnLocked();
  SQLARRAY_RETURN_IF_ERROR(appended.status());
  SQLARRAY_RETURN_IF_ERROR(writer_.FlushTo(end));
  if (commit_lsn != nullptr) *commit_lsn = end;
  reg_commits_->Add(1);
  return Status::OK();
}

Status WalManager::Rollback(uint64_t txn) {
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    if (active_ == nullptr || active_->id != txn) {
      return Status::InvalidArgument("no such open transaction");
    }
  }
  ActiveTxn* t = active_.get();
  // Restore every touched page's byte-exact before-image and dirty state.
  for (auto& [page_id, bi] : t->before) {
    pool_->RestorePage(page_id, bi.image, bi.state);
  }
  // Restore index metadata for touched (pre-existing) tables; drop tables
  // the transaction created.
  for (auto& [name, meta] : t->touched) {
    if (std::find(t->created.begin(), t->created.end(), name) !=
        t->created.end()) {
      continue;
    }
    Result<storage::Table*> table = db_->GetTable(name);
    if (table.ok()) (*table)->RestoreIndexMeta(std::move(meta));
  }
  for (const std::string& name : t->created) (void)db_->DropTable(name);
  db_->blob_store()->RestoreFreeList(std::move(t->free_list_snapshot));
  WalRecord rec;
  rec.type = RecordType::kAbort;
  rec.txn = txn;
  (void)writer_.Append(EncodeRecord(rec));  // advisory; replay ignores txn
  FinishTxnLocked();
  reg_aborts_->Add(1);
  return Status::OK();
}

Status WalManager::NoteTableTouched(uint64_t txn, storage::Table* table) {
  std::lock_guard<std::mutex> lock(txn_mu_);
  if (active_ == nullptr) return Status::OK();  // txn-0 write
  if (active_->id != txn) {
    return Status::InvalidArgument("no such open transaction");
  }
  const std::string& name = table->name();
  if (active_->touched.count(name) == 0) {
    active_->touched.emplace(name, table->SnapshotIndexMeta());
  }
  return Status::OK();
}

Status WalManager::NoteTableCreated(uint64_t txn, storage::Table* table) {
  WalRecord rec;
  rec.type = RecordType::kCreateTable;
  rec.txn = txn;
  CatalogEntry entry;
  entry.name = table->name();
  entry.columns = table->schema().columns();
  entry.root = table->clustered_index().root_page();
  rec.catalog.push_back(std::move(entry));
  SQLARRAY_RETURN_IF_ERROR(writer_.Append(EncodeRecord(rec)).status());
  std::lock_guard<std::mutex> lock(txn_mu_);
  if (active_ != nullptr && active_->id == txn) {
    active_->created.push_back(table->name());
  }
  return Status::OK();
}

Status WalManager::Checkpoint() {
  std::lock_guard<std::mutex> dml(dml_mu_);
  int crash_step = checkpoint_crash_step_;
  checkpoint_crash_step_ = 0;

  // Step 1: the log must cover everything the data flush is about to
  // persist (WAL before data, wholesale).
  SQLARRAY_RETURN_IF_ERROR(writer_.FlushAll());
  if (crash_step == 1) {
    return Status::Internal("simulated crash: checkpoint after log flush");
  }

  // Step 2: flush dirty pages one by one in sorted order (each write is a
  // crash site the torture tests exercise).
  std::vector<storage::PageId> dirty = pool_->CollectDirtyPageIds();
  bool first = true;
  for (storage::PageId id : dirty) {
    SQLARRAY_RETURN_IF_ERROR(pool_->FlushPage(id));
    if (first && crash_step == 2) {
      return Status::Internal(
          "simulated crash: checkpoint mid dirty-page flush");
    }
    first = false;
  }
  if (crash_step == 3) {
    return Status::Internal("simulated crash: checkpoint after data flush");
  }

  // Step 3: the checkpoint record — full catalog + blob free-list — on a
  // fresh log page so the header can point straight at it.
  WalRecord rec;
  rec.type = RecordType::kCheckpoint;
  rec.txn = kSystemTxn;
  for (const std::string& name : db_->TableNames()) {
    Result<storage::Table*> table = db_->GetTable(name);
    if (!table.ok()) continue;
    CatalogEntry entry;
    entry.name = name;
    entry.columns = (*table)->schema().columns();
    entry.root = (*table)->clustered_index().root_page();
    rec.catalog.push_back(std::move(entry));
  }
  rec.has_free_list = true;
  rec.free_list = db_->blob_store()->free_pages();
  SQLARRAY_ASSIGN_OR_RETURN(LogWriter::AlignedAppend aligned,
                            writer_.AppendAligned(EncodeRecord(rec)));
  if (crash_step == 4) {
    return Status::Internal("simulated crash: checkpoint before header write");
  }

  // Step 4: flip the header. Until this lands, the previous checkpoint
  // stays authoritative and replay is simply longer.
  LogHeader header;
  header.has_checkpoint = true;
  header.checkpoint_page = aligned.page;
  header.checkpoint_lsn = aligned.lsn;
  SQLARRAY_RETURN_IF_ERROR(device_.WriteHeader(header));
  reg_checkpoints_->Add(1);
  return Status::OK();
}

void WalManager::SimulateCrash() {
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    if (active_ != nullptr) {
      active_.reset();  // pins die with the "process"
      dml_mu_.unlock();
    }
  }
  pool_->DropCacheNoFlush();
  db_->ClearCatalog();
  db_->blob_store()->RestoreFreeList({});
  writer_.DiscardPending();
  if (observer_.on_crash) observer_.on_crash();
}

Result<RecoveryStats> WalManager::Recover() {
  std::lock_guard<std::mutex> dml(dml_mu_);
  // Start from bare disks: recovery must be a function of (data disk, log)
  // only, which also makes a second Recover() run byte-identical.
  pool_->DropCacheNoFlush();
  db_->ClearCatalog();
  db_->blob_store()->RestoreFreeList({});

  SQLARRAY_ASSIGN_OR_RETURN(LogHeader header, device_.ReadHeader());
  SQLARRAY_ASSIGN_OR_RETURN(
      LogScan scan,
      ScanLog(&device_, header.has_checkpoint ? header.checkpoint_page : 0));
  bool used_checkpoint = header.has_checkpoint;
  if (header.has_checkpoint) {
    bool valid = !scan.records.empty() &&
                 scan.records.front().type == RecordType::kCheckpoint &&
                 scan.records.front().lsn == header.checkpoint_lsn;
    if (!valid) {
      // Stale or damaged checkpoint pointer: fall back to a full scan.
      SQLARRAY_ASSIGN_OR_RETURN(scan, ScanLog(&device_, 0));
      used_checkpoint = false;
    }
  }

  RecoveryStats stats;
  stats.records_scanned = static_cast<int64_t>(scan.records.size());
  stats.truncated_tail = scan.truncated;
  stats.dead_bytes_skipped = scan.dead_bytes_skipped;
  stats.used_checkpoint = used_checkpoint;

  // Pass 1: which transactions committed, and the highest txn id ever used
  // (new ids must not collide with logged ones, or replay would resurrect
  // a dead transaction under a committed id).
  std::set<uint64_t> committed;
  std::set<uint64_t> seen;
  uint64_t max_txn = 0;
  for (const WalRecord& rec : scan.records) {
    max_txn = std::max(max_txn, rec.txn);
    if (rec.txn == kSystemTxn) continue;
    seen.insert(rec.txn);
    if (rec.type == RecordType::kCommit) committed.insert(rec.txn);
  }
  stats.txns_committed = static_cast<int64_t>(committed.size());
  stats.txns_lost = static_cast<int64_t>(seen.size() - committed.size());

  // Pass 2: replay in LSN order. Full-page images make redo idempotent.
  std::map<std::string, CatalogEntry> catalog;
  std::vector<storage::PageId> free_list;
  auto replayable = [&](const WalRecord& rec) {
    return rec.txn == kSystemTxn || committed.count(rec.txn) != 0;
  };
  for (const WalRecord& rec : scan.records) {
    switch (rec.type) {
      case RecordType::kCheckpoint:
        catalog.clear();
        for (const CatalogEntry& entry : rec.catalog) {
          catalog[entry.name] = entry;
        }
        free_list = rec.free_list;
        break;
      case RecordType::kPageWrite: {
        if (!replayable(rec)) break;
        storage::SimulatedDisk* disk = db_->disk();
        disk->EnsureAllocated(rec.page_id);
        SQLARRAY_RETURN_IF_ERROR(disk->WritePage(rec.page_id, rec.page_image));
        ++stats.pages_redone;
        break;
      }
      case RecordType::kCreateTable:
        if (!replayable(rec)) break;
        catalog[rec.catalog.front().name] = rec.catalog.front();
        break;
      case RecordType::kCommit:
        for (const CatalogEntry& entry : rec.catalog) {
          auto it = catalog.find(entry.name);
          if (it != catalog.end()) it->second.root = entry.root;
        }
        if (rec.has_free_list) free_list = rec.free_list;
        break;
      case RecordType::kBegin:
      case RecordType::kAbort:
        break;
    }
  }

  // Rebuild the catalog by walking each table from its last committed root.
  for (const auto& [name, entry] : catalog) {
    SQLARRAY_ASSIGN_OR_RETURN(storage::Schema schema,
                              storage::Schema::Create(entry.columns));
    SQLARRAY_ASSIGN_OR_RETURN(
        std::unique_ptr<storage::Table> table,
        storage::Table::Attach(name, std::move(schema), entry.root, pool_,
                               db_->blob_store()));
    SQLARRAY_RETURN_IF_ERROR(db_->AdoptTable(std::move(table)));
    ++stats.tables_attached;
  }
  db_->blob_store()->RestoreFreeList(std::move(free_list));

  // Future appends resume past the valid log, in a fresh epoch, so the
  // reader can tell live records from any dead bytes we just skipped over.
  writer_.Reset(scan.resume_page, scan.resume_lsn, scan.resume_epoch);
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    next_txn_id_ = max_txn + 1;
  }
  if (observer_.on_recovered) observer_.on_recovered(scan.resume_lsn);

  reg_recoveries_->Add(1);
  reg_recovery_pages_->Add(stats.pages_redone);
  reg_recovery_records_->Add(stats.records_scanned);
  last_recovery_ = stats;
  return stats;
}

}  // namespace sqlarray::wal
