#include "obs/metrics.h"

namespace sqlarray::obs {

int Histogram::BucketOf(int64_t sample) {
  if (sample <= 1) return 0;
  int b = 64 - __builtin_clzll(static_cast<uint64_t>(sample));
  return b < kBuckets ? b : kBuckets - 1;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.values_[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.values_[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.values_[name + ".count"] = h->count();
    snap.values_[name + ".sum"] = h->sum();
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Intentionally leaked: instrument handles cached in other translation
  // units (function-local statics, member pointers) must stay valid through
  // static destruction.
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

}  // namespace sqlarray::obs
