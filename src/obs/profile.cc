#include "obs/profile.h"

namespace sqlarray::obs {

ProfileNode* ProfileNode::AddChild(std::string child_op,
                                   std::string child_detail) {
  ProfileNode node;
  node.op = std::move(child_op);
  node.detail = std::move(child_detail);
  children.push_back(std::move(node));
  return &children.back();
}

namespace {

void FlattenInto(const ProfileNode& node, int depth,
                 std::vector<ProfileRow>* out) {
  ProfileRow row;
  row.op = std::string(static_cast<size_t>(depth) * 2, ' ') + node.op;
  row.detail = node.detail;
  row.counters = node.counters;
  out->push_back(std::move(row));
  for (const ProfileNode& child : node.children) {
    FlattenInto(child, depth + 1, out);
  }
}

}  // namespace

std::vector<ProfileRow> FlattenProfile(const QueryProfile& profile) {
  std::vector<ProfileRow> rows;
  if (!profile.empty()) FlattenInto(profile.root(), 0, &rows);
  return rows;
}

const std::vector<std::string>& ProfileColumns() {
  static const std::vector<std::string> kColumns = {
      "operator",    "detail",       "rows_in",      "rows_out",
      "pages_read",  "cache_hits",   "cache_misses", "udf_calls",
      "udf_bytes",   "kernel_calls", "boxed_calls",  "modeled_ms",
      "wall_ms"};
  return kColumns;
}

}  // namespace sqlarray::obs
