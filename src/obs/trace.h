// RAII trace spans with deterministic stitching across parallel workers.
//
// SQLARRAY_SPAN("exec.scan") opens a span on the thread's currently bound
// trace lane; the guard records the span's name, lane, per-lane sequence
// number, and nesting depth at open, and its wall time at close. Binding is
// thread-local and scoped (ScopedTrace), so instrumented code needs no
// plumbing — and costs one thread-local load plus a branch when tracing is
// off (no sink bound).
//
// Determinism contract: a span's (lane, seq, depth, name) is a pure
// function of the WORK, never of the schedule. Serial execution runs in
// lane kSerialLane; the executor binds each morsel's work to
// lane == morsel index, and every morsel is processed by exactly one worker
// (the work-stealing queue hands each index out once), so per-lane
// sequences are well defined no matter which thread ran the morsel or how
// many workers exist. Stitched() orders spans by (lane, seq) — byte-
// identical at any worker count; only wall_ns varies between runs and is
// excluded from the contract.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sqlarray::obs {

/// Lane id of work not attributed to a morsel (the query's serial spine).
inline constexpr int64_t kSerialLane = -1;

/// One closed (or still-open) span.
struct TraceSpan {
  std::string name;
  int64_t lane = kSerialLane;  ///< morsel index, or kSerialLane
  int64_t seq = 0;             ///< open order within the lane
  int depth = 0;               ///< nesting depth within the lane
  double wall_ns = 0;          ///< measured; excluded from determinism
};

/// Collects spans for one query. Each ScopedTrace binding gets a private
/// buffer (no contention between workers beyond one registration lock per
/// morsel); Stitched() merges them deterministically. Call Stitched() only
/// after parallel work has joined.
class TraceSink {
 public:
  struct Buffer {
    int64_t lane = kSerialLane;
    int64_t next_seq = 0;
    int depth = 0;
    std::vector<TraceSpan> spans;
  };

  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Registers a fresh buffer for one binding (stable address).
  Buffer* OpenBuffer(int64_t lane);

  /// All spans ordered by (lane, seq); buffers sharing a lane keep their
  /// registration order (only the serial lane is ever bound twice, and its
  /// bindings are made serially, so this order is deterministic too).
  std::vector<TraceSpan> Stitched() const;

  /// Sum of wall_ns over spans with exactly this name.
  double TotalWallNs(const std::string& name) const;

  int64_t span_count() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

/// Binds `sink`/`lane` to the calling thread for the scope's lifetime
/// (restoring the previous binding on destruction). A null sink makes every
/// SQLARRAY_SPAN in scope a no-op.
class ScopedTrace {
 public:
  ScopedTrace(TraceSink* sink, int64_t lane);
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceSink::Buffer* prev_;
};

/// Opens a span on the bound lane for the enclosing scope. Prefer the
/// SQLARRAY_SPAN macro.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name);
  ~SpanGuard();
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  TraceSink::Buffer* buf_;  ///< null when no sink is bound
  size_t slot_ = 0;
  std::chrono::steady_clock::time_point start_;
};

#define SQLARRAY_SPAN_CONCAT2(a, b) a##b
#define SQLARRAY_SPAN_CONCAT(a, b) SQLARRAY_SPAN_CONCAT2(a, b)
#define SQLARRAY_SPAN(name)                                       \
  ::sqlarray::obs::SpanGuard SQLARRAY_SPAN_CONCAT(sqlarray_span_, \
                                                  __LINE__)(name)

}  // namespace sqlarray::obs
