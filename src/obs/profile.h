// Per-query operator profile tree — the data behind EXPLAIN ANALYZE.
//
// Each node is one operator of the executed plan (scan, filter, aggregate,
// per-function UDF attribution) carrying the counters the paper's
// evaluation reasons about: rows in/out, pages read, cache hits/misses, UDF
// boundary crossings and marshaled bytes, kernel-vs-boxed dispatch counts,
// and per-operator modeled and measured time. Everything except the wall
// times is deterministic — a pure function of the query and the data, never
// of the worker count (ISSUE 4's determinism contract; tests/test_obs.cc
// enforces it byte for byte across worker counts).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sqlarray::obs {

/// Counters of one profile node. Zero-valued fields are still rendered so
/// EXPLAIN ANALYZE output keeps a stable shape.
struct OpCounters {
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  int64_t pages_read = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t udf_calls = 0;
  int64_t udf_bytes = 0;
  int64_t kernel_dispatches = 0;
  int64_t boxed_dispatches = 0;
  /// Modeled time. Deterministic for pure-CPU operators; the root's value
  /// includes the simulated disk's virtual read clock, which is stateful
  /// across queries (distance-dependent seeks), so the timing suffix as a
  /// whole is excluded from golden comparisons.
  double modeled_seconds = 0;
  /// Measured; always nondeterministic.
  double wall_seconds = 0;
};

/// One operator in the profile tree.
struct ProfileNode {
  std::string op;      ///< operator kind, e.g. "scan", "group-by", "udf"
  std::string detail;  ///< operator argument, e.g. table or function name
  OpCounters counters;
  std::vector<ProfileNode> children;

  ProfileNode* AddChild(std::string child_op, std::string child_detail = "");
};

/// The profile of one executed statement (root = the statement itself).
class QueryProfile {
 public:
  ProfileNode* mutable_root() { return &root_; }
  const ProfileNode& root() const { return root_; }
  bool empty() const { return root_.op.empty() && root_.children.empty(); }

 private:
  ProfileNode root_;
};

/// One flattened row of the tree: preorder, op indented two spaces per
/// depth level — the EXPLAIN ANALYZE output shape.
struct ProfileRow {
  std::string op;
  std::string detail;
  OpCounters counters;
};

std::vector<ProfileRow> FlattenProfile(const QueryProfile& profile);

/// The stable EXPLAIN ANALYZE column keys, in output order. The timing
/// suffix (modeled_ms, wall_ms) comes last so "all columns before the last
/// two" is the deterministic prefix: wall_ms is measured, and modeled_ms
/// folds in the simulated disk's virtual clock, whose distance-dependent
/// seek model is stateful across queries.
const std::vector<std::string>& ProfileColumns();

}  // namespace sqlarray::obs
