// Process-wide metrics registry: named counters, gauges, and histograms
// with relaxed-order hot-path updates and a consistent snapshot.
//
// The paper's evaluation (Sec. 7) is built on knowing where time and bytes
// go — UDF boundary crossings, marshaled bytes, cache behaviour. Graywulf
// (arXiv:1308.1440) grows the same array stack into a platform that depends
// on built-in monitoring. This registry is that layer's foundation: every
// subsystem registers named instruments once and bumps them on the hot path
// with a single relaxed atomic RMW; readers take one coherent Snapshot().
//
// Usage:
//   obs::Counter* c =
//       obs::MetricsRegistry::Global().GetCounter("storage.disk.pages_read");
//   c->Add();  // lock-free
//   obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
//   ... work ...
//   int64_t delta = obs::MetricsRegistry::Global().Snapshot().Delta(
//       before, "storage.disk.pages_read");
//
// Hot-path contract: resolve the instrument handle ONCE (constructor or
// function-local static) — GetCounter takes the registry mutex and must
// never sit on a per-row path. Add()/Set()/Observe() are wait-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace sqlarray::obs {

/// Monotonic event count. Add() is a single relaxed fetch_add; value() is a
/// relaxed load (exact totals are observed via MetricsRegistry::Snapshot()
/// after the writers quiesce, or monotonically while they run).
class Counter {
 public:
  void Add(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// A point-in-time level (e.g. resident pages). Set/Add are relaxed.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Power-of-two bucketed histogram of non-negative samples (latencies,
/// sizes). Observe() is three relaxed RMWs; negative samples clamp to
/// bucket 0. A snapshot expands to "<name>.count" and "<name>.sum" keys.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(int64_t sample) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
    buckets_[BucketOf(sample)].fetch_add(1, std::memory_order_relaxed);
  }
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Bucket b holds samples in [2^(b-1), 2^b); bucket 0 holds <= 0 and 1.
  static int BucketOf(int64_t sample);

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> buckets_[kBuckets] = {};
};

/// One coherent read of every registered instrument: counter and gauge
/// values by name, histograms expanded to "<name>.count"/"<name>.sum".
class MetricsSnapshot {
 public:
  /// The value under `name`, or 0 when the instrument does not exist.
  int64_t ValueOr(const std::string& name, int64_t fallback = 0) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  /// this[name] - before[name], treating missing instruments as 0 — the
  /// per-query attribution primitive (counters only grow, so instruments
  /// registered mid-interval still difference correctly).
  int64_t Delta(const MetricsSnapshot& before, const std::string& name) const {
    return ValueOr(name) - before.ValueOr(name);
  }

  const std::map<std::string, int64_t>& values() const { return values_; }

 private:
  friend class MetricsRegistry;
  std::map<std::string, int64_t> values_;
};

/// The named-instrument registry. Get* calls are get-or-create and return
/// stable pointers (instruments are never destroyed while the registry
/// lives); names must be unique across instrument kinds.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Reads every instrument under the registry lock. Values from writers
  /// still running are monotone lower bounds; after writers quiesce the
  /// snapshot is exact.
  MetricsSnapshot Snapshot() const;

  /// The process-wide registry every subsystem registers into.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace sqlarray::obs
