#include "obs/trace.h"

#include <algorithm>

namespace sqlarray::obs {

namespace {

thread_local TraceSink::Buffer* tls_buffer = nullptr;

}  // namespace

TraceSink::Buffer* TraceSink::OpenBuffer(int64_t lane) {
  auto buf = std::make_unique<Buffer>();
  buf->lane = lane;
  Buffer* raw = buf.get();
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::move(buf));
  return raw;
}

std::vector<TraceSpan> TraceSink::Stitched() const {
  std::vector<TraceSpan> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::unique_ptr<Buffer>& buf : buffers_) {
      out.insert(out.end(), buf->spans.begin(), buf->spans.end());
    }
  }
  // Stable: spans within one lane keep buffer-registration + open order.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     return a.lane < b.lane;
                   });
  return out;
}

double TraceSink::TotalWallNs(const std::string& name) const {
  double total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Buffer>& buf : buffers_) {
    for (const TraceSpan& span : buf->spans) {
      if (span.name == name) total += span.wall_ns;
    }
  }
  return total;
}

int64_t TraceSink::span_count() const {
  int64_t n = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Buffer>& buf : buffers_) {
    n += static_cast<int64_t>(buf->spans.size());
  }
  return n;
}

ScopedTrace::ScopedTrace(TraceSink* sink, int64_t lane) : prev_(tls_buffer) {
  tls_buffer = sink != nullptr ? sink->OpenBuffer(lane) : nullptr;
}

ScopedTrace::~ScopedTrace() { tls_buffer = prev_; }

SpanGuard::SpanGuard(const char* name) : buf_(tls_buffer) {
  if (buf_ == nullptr) return;
  TraceSpan span;
  span.name = name;
  span.lane = buf_->lane;
  span.seq = buf_->next_seq++;
  span.depth = buf_->depth++;
  slot_ = buf_->spans.size();
  buf_->spans.push_back(std::move(span));
  start_ = std::chrono::steady_clock::now();
}

SpanGuard::~SpanGuard() {
  if (buf_ == nullptr) return;
  buf_->depth--;
  buf_->spans[slot_].wall_ns =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - start_)
          .count();
}

}  // namespace sqlarray::obs
