// Dense column-major matrix kernels (the BLAS-level substrate).
//
// All matrices are COLUMN-MAJOR with an explicit leading dimension, matching
// LAPACK conventions and the array library's element order, so array blobs
// marshal into these routines without any transposition (Sec. 5.3).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace sqlarray::math {

/// A mutable view of a column-major matrix: element (i, j) lives at
/// data[i + j * ld].
struct MatrixView {
  double* data = nullptr;
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t ld = 0;  ///< leading dimension (>= rows)

  double& at(int64_t i, int64_t j) const { return data[i + j * ld]; }
};

/// A read-only column-major matrix view.
struct ConstMatrixView {
  const double* data = nullptr;
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t ld = 0;

  ConstMatrixView() = default;
  ConstMatrixView(const double* d, int64_t r, int64_t c, int64_t l)
      : data(d), rows(r), cols(c), ld(l) {}
  /*implicit*/ ConstMatrixView(const MatrixView& m)  // NOLINT
      : data(m.data), rows(m.rows), cols(m.cols), ld(m.ld) {}

  double at(int64_t i, int64_t j) const { return data[i + j * ld]; }
};

/// An owning column-major matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  static Matrix Identity(int64_t n) {
    Matrix m(n, n);
    for (int64_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
    return m;
  }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  double& at(int64_t i, int64_t j) { return data_[i + j * rows_]; }
  double at(int64_t i, int64_t j) const { return data_[i + j * rows_]; }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::span<double> span() { return data_; }
  std::span<const double> span() const { return data_; }

  MatrixView view() { return {data_.data(), rows_, cols_, rows_}; }
  ConstMatrixView view() const {
    return {data_.data(), rows_, cols_, rows_};
  }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<double> data_;
};

/// y = alpha * op(A) * x + beta * y; op is A or A^T.
void Gemv(bool transpose, double alpha, ConstMatrixView a,
          std::span<const double> x, double beta, std::span<double> y);

/// C = alpha * op(A) * op(B) + beta * C.
void Gemm(bool trans_a, bool trans_b, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c);

/// Dot product of two equal-length vectors.
double Dot(std::span<const double> x, std::span<const double> y);

/// Euclidean norm, computed with scaling to avoid overflow.
double Nrm2(std::span<const double> x);

/// y += alpha * x.
void Axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void Scal(double alpha, std::span<double> x);

/// Returns B = A^T as a new owning matrix.
Matrix Transpose(ConstMatrixView a);

/// Max-abs element difference between two matrices (test helper).
double MaxAbsDiff(ConstMatrixView a, ConstMatrixView b);

}  // namespace sqlarray::math
