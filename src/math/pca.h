// Principal component analysis over sample sets (Sec. 2.2).
//
// The spectrum pipeline resamples and normalizes data vectors, computes the
// correlation matrix, runs SVD over it, and expands samples on the derived
// basis. PcaFit implements exactly that; expansion with masked bins is done
// via WeightedLeastSquares.
#pragma once

#include <span>
#include <vector>

#include "common/status.h"
#include "math/dense.h"

namespace sqlarray::math {

/// A fitted PCA basis.
struct PcaModel {
  std::vector<double> mean;     ///< per-feature mean (length d)
  Matrix components;            ///< d x k basis, columns are components
  std::vector<double> explained_variance;  ///< length k, descending
};

/// Fits a PCA basis with `k` components from `samples` (each row of the
/// n x d column-major matrix is one sample). k <= min(n, d).
Result<PcaModel> PcaFit(ConstMatrixView samples, int64_t k);

/// Projects one sample (length d) onto the basis: coefficients of length k.
std::vector<double> PcaProject(const PcaModel& model,
                               std::span<const double> sample);

/// Projects a sample with a per-feature weight/mask vector via weighted
/// least squares: flagged-out features get weight 0 (Sec. 2.2's "dot product
/// cannot be used ... least squares fitting is necessary").
Result<std::vector<double>> PcaProjectMasked(const PcaModel& model,
                                             std::span<const double> sample,
                                             std::span<const double> weights);

/// Reconstructs a sample (length d) from coefficients (length k).
std::vector<double> PcaReconstruct(const PcaModel& model,
                                   std::span<const double> coeffs);

}  // namespace sqlarray::math
