// Singular value decomposition — the *gesvd substitute (Sec. 3.6).
//
// One-sided Jacobi SVD: numerically robust, needs no bidiagonalization, and
// computes small singular values to high relative accuracy. Complexity is
// O(m n^2) per sweep with a handful of sweeps in practice; fine for the
// matrix sizes a database UDF sees.
#pragma once

#include <span>

#include "common/status.h"
#include "math/dense.h"

namespace sqlarray::math {

/// Result of a thin SVD: A (m x n) = U (m x k) * diag(s) (k) * VT (k x n)
/// with k = min(m, n) and singular values sorted descending.
struct SvdResult {
  Matrix u;
  std::vector<double> s;
  Matrix vt;
};

/// Computes the thin SVD of `a` (m x n, column-major). Mirrors LAPACK
/// *gesvd's contract apart from taking a const input (an internal copy is
/// made; LAPACK destroys A).
Result<SvdResult> Gesvd(ConstMatrixView a);

/// Reconstructs U * diag(s) * VT (test helper).
Matrix SvdReconstruct(const SvdResult& svd);

}  // namespace sqlarray::math
