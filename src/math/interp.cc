#include "math/interp.h"

#include <algorithm>
#include <cmath>

namespace sqlarray::math {

int StencilWidth(InterpScheme scheme) {
  switch (scheme) {
    case InterpScheme::kNearest:
      return 1;
    case InterpScheme::kLinear:
      return 2;
    case InterpScheme::kLagrange4:
      return 4;
    case InterpScheme::kLagrange6:
      return 6;
    case InterpScheme::kLagrange8:
      return 8;
    case InterpScheme::kPchip:
      return 4;  // local cubic; four points influence a cell
  }
  return 1;
}

Status LagrangeWeights(int n, double t, std::span<double> w) {
  if (n < 2 || n % 2 != 0) {
    return Status::InvalidArgument(
        "Lagrange stencil width must be an even number >= 2");
  }
  if (static_cast<int>(w.size()) < n) {
    return Status::InvalidArgument("weight buffer too small");
  }
  // Nodes at integer offsets lo .. lo + n - 1 with lo = -(n/2 - 1); the
  // evaluation point is at offset t in [0, 1).
  const int lo = -(n / 2 - 1);
  for (int i = 0; i < n; ++i) {
    double xi = lo + i;
    double num = 1.0, den = 1.0;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      double xj = lo + j;
      num *= (t - xj);
      den *= (xi - xj);
    }
    w[i] = num / den;
  }
  return Status::OK();
}

namespace {

int64_t WrapIndex(int64_t i, int64_t n) {
  int64_t m = i % n;
  return m < 0 ? m + n : m;
}

}  // namespace

Result<double> Interp1DPeriodic(InterpScheme scheme,
                                std::span<const double> y, double x) {
  const int64_t n = static_cast<int64_t>(y.size());
  if (n == 0) return Status::InvalidArgument("empty signal");

  switch (scheme) {
    case InterpScheme::kNearest: {
      int64_t i = WrapIndex(static_cast<int64_t>(std::llround(x)), n);
      return y[i];
    }
    case InterpScheme::kLinear: {
      double f = std::floor(x);
      double t = x - f;
      int64_t i0 = WrapIndex(static_cast<int64_t>(f), n);
      int64_t i1 = WrapIndex(i0 + 1, n);
      return y[i0] * (1 - t) + y[i1] * t;
    }
    case InterpScheme::kLagrange4:
    case InterpScheme::kLagrange6:
    case InterpScheme::kLagrange8: {
      int width = StencilWidth(scheme);
      double f = std::floor(x);
      double t = x - f;
      double w[8];
      SQLARRAY_RETURN_IF_ERROR(
          LagrangeWeights(width, t, std::span<double>(w, 8)));
      const int lo = -(width / 2 - 1);
      double sum = 0;
      for (int i = 0; i < width; ++i) {
        int64_t idx = WrapIndex(static_cast<int64_t>(f) + lo + i, n);
        sum += w[i] * y[idx];
      }
      return sum;
    }
    case InterpScheme::kPchip: {
      // PCHIP on a periodic uniform grid: build over one period with a
      // wrap-around pad. For the common database path use PchipInterpolator
      // directly; this branch exists for interface completeness.
      std::vector<double> xs(n + 1), ys(n + 1);
      for (int64_t i = 0; i <= n; ++i) {
        xs[i] = static_cast<double>(i);
        ys[i] = y[WrapIndex(i, n)];
      }
      SQLARRAY_ASSIGN_OR_RETURN(
          PchipInterpolator p,
          PchipInterpolator::Create(std::move(xs), std::move(ys)));
      double xp = x - std::floor(x / static_cast<double>(n)) *
                          static_cast<double>(n);
      return p.Eval(xp);
    }
  }
  return Status::Internal("unreachable scheme");
}

Result<double> Interp3DPeriodic(
    InterpScheme scheme, int64_t n,
    const std::function<double(int64_t, int64_t, int64_t)>& fetch, double x,
    double y, double z) {
  if (scheme == InterpScheme::kPchip) {
    return Status::InvalidArgument(
        "PCHIP is not separable; use per-axis PchipInterpolator");
  }
  if (scheme == InterpScheme::kNearest) {
    return fetch(WrapIndex(static_cast<int64_t>(std::llround(x)), n),
                 WrapIndex(static_cast<int64_t>(std::llround(y)), n),
                 WrapIndex(static_cast<int64_t>(std::llround(z)), n));
  }

  int width = StencilWidth(scheme);
  double wx[8], wy[8], wz[8];
  const double fx = std::floor(x), fy = std::floor(y), fz = std::floor(z);
  if (scheme == InterpScheme::kLinear) {
    wx[0] = 1 - (x - fx);
    wx[1] = x - fx;
    wy[0] = 1 - (y - fy);
    wy[1] = y - fy;
    wz[0] = 1 - (z - fz);
    wz[1] = z - fz;
  } else {
    SQLARRAY_RETURN_IF_ERROR(
        LagrangeWeights(width, x - fx, std::span<double>(wx, 8)));
    SQLARRAY_RETURN_IF_ERROR(
        LagrangeWeights(width, y - fy, std::span<double>(wy, 8)));
    SQLARRAY_RETURN_IF_ERROR(
        LagrangeWeights(width, z - fz, std::span<double>(wz, 8)));
  }
  const int lo = scheme == InterpScheme::kLinear ? 0 : -(width / 2 - 1);

  double sum = 0;
  for (int k = 0; k < width; ++k) {
    int64_t zk = WrapIndex(static_cast<int64_t>(fz) + lo + k, n);
    for (int j = 0; j < width; ++j) {
      int64_t yj = WrapIndex(static_cast<int64_t>(fy) + lo + j, n);
      double wyz = wy[j] * wz[k];
      for (int i = 0; i < width; ++i) {
        int64_t xi = WrapIndex(static_cast<int64_t>(fx) + lo + i, n);
        sum += wx[i] * wyz * fetch(xi, yj, zk);
      }
    }
  }
  return sum;
}

Result<PchipInterpolator> PchipInterpolator::Create(std::vector<double> x,
                                                    std::vector<double> y) {
  const size_t n = x.size();
  if (n < 2 || y.size() != n) {
    return Status::InvalidArgument(
        "PCHIP needs >= 2 knots with matching x/y lengths");
  }
  for (size_t i = 1; i < n; ++i) {
    if (!(x[i] > x[i - 1])) {
      return Status::InvalidArgument(
          "PCHIP knot abscissae must be strictly increasing");
    }
  }

  // Fritsch–Carlson monotone derivative estimates.
  std::vector<double> h(n - 1), delta(n - 1), d(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    h[i] = x[i + 1] - x[i];
    delta[i] = (y[i + 1] - y[i]) / h[i];
  }
  if (n == 2) {
    d[0] = d[1] = delta[0];
  } else {
    for (size_t i = 1; i + 1 < n; ++i) {
      if (delta[i - 1] * delta[i] <= 0) {
        d[i] = 0;
      } else {
        // Weighted harmonic mean preserving monotonicity.
        double w1 = 2 * h[i] + h[i - 1];
        double w2 = h[i] + 2 * h[i - 1];
        d[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i]);
      }
    }
    // One-sided boundary derivative with monotonicity limiting.
    auto edge = [](double h0, double h1, double d0, double d1) {
      double der = ((2 * h0 + h1) * d0 - h0 * d1) / (h0 + h1);
      if (der * d0 <= 0) return 0.0;
      if (d0 * d1 <= 0 && std::fabs(der) > 3 * std::fabs(d0)) return 3 * d0;
      return der;
    };
    d[0] = edge(h[0], h[1], delta[0], delta[1]);
    d[n - 1] = edge(h[n - 2], h[n - 3], delta[n - 2], delta[n - 3]);
  }
  return PchipInterpolator(std::move(x), std::move(y), std::move(d));
}

double PchipInterpolator::Eval(double x) const {
  if (x <= x_.front()) return y_.front();
  if (x >= x_.back()) return y_.back();
  // Binary search for the containing interval.
  size_t hi = std::upper_bound(x_.begin(), x_.end(), x) - x_.begin();
  size_t i = hi - 1;
  double h = x_[i + 1] - x_[i];
  double t = (x - x_[i]) / h;
  double t2 = t * t, t3 = t2 * t;
  double h00 = 2 * t3 - 3 * t2 + 1;
  double h10 = t3 - 2 * t2 + t;
  double h01 = -2 * t3 + 3 * t2;
  double h11 = t3 - t2;
  return h00 * y_[i] + h10 * h * d_[i] + h01 * y_[i + 1] + h11 * h * d_[i + 1];
}

}  // namespace sqlarray::math
