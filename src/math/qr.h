// Householder QR factorization and least-squares solvers.
//
// The spectrum use case (Sec. 2.2) fits masked spectra on an orthogonal
// basis with (weighted) least squares instead of plain dot products; these
// are the kernels behind that UDF surface.
#pragma once

#include <span>
#include <vector>

#include "common/status.h"
#include "math/dense.h"

namespace sqlarray::math {

/// Compact QR factorization state: R in the upper triangle, Householder
/// vectors below the diagonal, scalar factors in tau.
struct QrFactorization {
  Matrix qr;                ///< m x n packed factors
  std::vector<double> tau;  ///< n Householder scalars

  int64_t rows() const { return qr.rows(); }
  int64_t cols() const { return qr.cols(); }
};

/// Factorizes `a` (m x n, m >= n) as Q * R.
Result<QrFactorization> QrFactor(ConstMatrixView a);

/// Applies Q^T (from the factorization) to `x` in place (length m).
void ApplyQTranspose(const QrFactorization& f, std::span<double> x);

/// Solves R y = x[0..n) by back substitution; fails on a (numerically)
/// singular R.
Result<std::vector<double>> SolveUpper(const QrFactorization& f,
                                       std::span<const double> x);

/// Solves min ||A x - b||_2 for full-column-rank A (m >= n).
Result<std::vector<double>> LeastSquares(ConstMatrixView a,
                                         std::span<const double> b);

/// Weighted least squares: min || diag(w) (A x - b) ||_2. Weights of zero
/// drop rows entirely (the spectrum-mask use: flagged bins get weight 0).
Result<std::vector<double>> WeightedLeastSquares(ConstMatrixView a,
                                                 std::span<const double> b,
                                                 std::span<const double> w);

}  // namespace sqlarray::math
