#include "math/nnls.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "math/qr.h"

namespace sqlarray::math {

namespace {

/// Solves unconstrained least squares restricted to the passive column set.
Result<std::vector<double>> SolvePassive(ConstMatrixView a,
                                         std::span<const double> b,
                                         const std::vector<bool>& passive) {
  int64_t np = 0;
  for (bool p : passive) np += p;
  Matrix ap(a.rows, np);
  std::vector<int64_t> cols;
  cols.reserve(np);
  for (int64_t j = 0; j < a.cols; ++j) {
    if (!passive[j]) continue;
    for (int64_t i = 0; i < a.rows; ++i) ap.at(i, cols.size()) = a.at(i, j);
    cols.push_back(j);
  }
  SQLARRAY_ASSIGN_OR_RETURN(std::vector<double> zp,
                            LeastSquares(ap.view(), b));
  std::vector<double> z(a.cols, 0.0);
  for (size_t k = 0; k < cols.size(); ++k) z[cols[k]] = zp[k];
  return z;
}

}  // namespace

Result<std::vector<double>> Nnls(ConstMatrixView a, std::span<const double> b,
                                 int max_iter) {
  if (static_cast<int64_t>(b.size()) != a.rows) {
    return Status::InvalidArgument("rhs length must equal the row count");
  }
  const int64_t n = a.cols;
  if (max_iter <= 0) max_iter = static_cast<int>(3 * n) + 10;

  std::vector<double> x(n, 0.0);
  std::vector<bool> passive(n, false);
  std::vector<double> resid(b.begin(), b.end());  // b - A x (x = 0 initially)
  const double tol = 1e-10 * Nrm2(b) + 1e-300;

  for (int iter = 0; iter < max_iter; ++iter) {
    // Gradient of 1/2 ||Ax-b||^2 is -A^T resid; pick the most promising
    // active (zero) coordinate.
    std::vector<double> grad(n, 0.0);
    Gemv(true, 1.0, a, resid, 0.0, grad);

    int64_t best = -1;
    double best_val = tol;
    for (int64_t j = 0; j < n; ++j) {
      if (!passive[j] && grad[j] > best_val) {
        best_val = grad[j];
        best = j;
      }
    }
    if (best < 0) break;  // KKT conditions satisfied
    passive[best] = true;

    // Inner loop: solve on the passive set; walk back along the segment to
    // keep feasibility, demoting variables that hit zero.
    while (true) {
      auto z_or = SolvePassive(a, b, passive);
      if (!z_or.ok()) {
        // Singular passive set; demote the variable we just added.
        passive[best] = false;
        break;
      }
      std::vector<double> z = std::move(z_or).value();

      bool feasible = true;
      double alpha = 1.0;
      for (int64_t j = 0; j < n; ++j) {
        if (passive[j] && z[j] <= 0) {
          feasible = false;
          double step = x[j] / (x[j] - z[j]);
          alpha = std::min(alpha, step);
        }
      }
      if (feasible) {
        x = std::move(z);
        break;
      }
      for (int64_t j = 0; j < n; ++j) {
        if (passive[j]) {
          x[j] += alpha * (z[j] - x[j]);
          if (x[j] <= 1e-14) {
            x[j] = 0.0;
            passive[j] = false;
          }
        }
      }
    }

    // Refresh the residual.
    resid.assign(b.begin(), b.end());
    Gemv(false, -1.0, a, x, 1.0, resid);
  }
  return x;
}

}  // namespace sqlarray::math
