// Interpolation kernels for the turbulence service (Sec. 2.1).
//
// The paper's public service offers nearest-point, PCHIP, and 4/6/8-point
// Lagrangian interpolation of velocity fields sampled on regular grids.
// These kernels are the in-database equivalents: 1-D building blocks plus a
// separable 3-D tensor-product evaluator.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/status.h"

namespace sqlarray::math {

/// Interpolation scheme identifiers matching the turbulence service menu.
enum class InterpScheme {
  kNearest,
  kLinear,
  kLagrange4,
  kLagrange6,
  kLagrange8,
  kPchip,
};

/// Number of grid points a scheme's stencil touches along one axis.
int StencilWidth(InterpScheme scheme);

/// Computes the N Lagrange basis weights for a uniform grid. The stencil
/// covers integer offsets [-(n/2 - 1), n/2] around the cell containing the
/// evaluation point; `t` in [0, 1) is the fractional position within that
/// cell. `w` must have room for n weights, which sum to 1.
Status LagrangeWeights(int n, double t, std::span<double> w);

/// Interpolates a 1-D periodic uniformly sampled signal at position `x`
/// (in sample units; may be any real, wrapped periodically).
Result<double> Interp1DPeriodic(InterpScheme scheme,
                                std::span<const double> y, double x);

/// Separable 3-D interpolation over a periodic field accessed through
/// `fetch(i, j, k)`. `n` is the per-axis grid size; `x/y/z` are positions in
/// voxel units. PCHIP is not separable and is rejected here.
Result<double> Interp3DPeriodic(
    InterpScheme scheme, int64_t n,
    const std::function<double(int64_t, int64_t, int64_t)>& fetch, double x,
    double y, double z);

/// Monotone cubic (Fritsch–Carlson) interpolator over a non-uniform grid —
/// the PCHIP scheme. Knot abscissae must be strictly increasing.
class PchipInterpolator {
 public:
  static Result<PchipInterpolator> Create(std::vector<double> x,
                                          std::vector<double> y);

  /// Evaluates at `x`, clamping outside the knot range.
  double Eval(double x) const;

  /// Derivatives at the knots (test access; monotonicity-limited).
  std::span<const double> derivatives() const { return d_; }

 private:
  PchipInterpolator(std::vector<double> x, std::vector<double> y,
                    std::vector<double> d)
      : x_(std::move(x)), y_(std::move(y)), d_(std::move(d)) {}

  std::vector<double> x_, y_, d_;
};

}  // namespace sqlarray::math
