#include "math/dense.h"

#include <cmath>

namespace sqlarray::math {

void Gemv(bool transpose, double alpha, ConstMatrixView a,
          std::span<const double> x, double beta, std::span<double> y) {
  if (!transpose) {
    // y_i = alpha * sum_j A(i,j) x_j + beta * y_i — march down columns so the
    // inner loop is stride-1.
    for (int64_t i = 0; i < a.rows; ++i) y[i] *= beta;
    for (int64_t j = 0; j < a.cols; ++j) {
      const double xj = alpha * x[j];
      const double* col = a.data + j * a.ld;
      for (int64_t i = 0; i < a.rows; ++i) y[i] += col[i] * xj;
    }
  } else {
    for (int64_t j = 0; j < a.cols; ++j) {
      const double* col = a.data + j * a.ld;
      double sum = 0;
      for (int64_t i = 0; i < a.rows; ++i) sum += col[i] * x[i];
      y[j] = alpha * sum + beta * y[j];
    }
  }
}

void Gemm(bool trans_a, bool trans_b, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c) {
  const int64_t m = c.rows;
  const int64_t n = c.cols;
  const int64_t kk = trans_a ? a.rows : a.cols;

  for (int64_t j = 0; j < n; ++j) {
    double* cj = c.data + j * c.ld;
    for (int64_t i = 0; i < m; ++i) cj[i] *= beta;
  }
  // Loop order j-k-i keeps the innermost loop stride-1 over C and A columns.
  for (int64_t j = 0; j < n; ++j) {
    double* cj = c.data + j * c.ld;
    for (int64_t k = 0; k < kk; ++k) {
      const double bkj = trans_b ? b.at(j, k) : b.at(k, j);
      if (bkj == 0.0) continue;
      const double f = alpha * bkj;
      if (!trans_a) {
        const double* ak = a.data + k * a.ld;
        for (int64_t i = 0; i < m; ++i) cj[i] += ak[i] * f;
      } else {
        for (int64_t i = 0; i < m; ++i) cj[i] += a.at(k, i) * f;
      }
    }
  }
}

double Dot(std::span<const double> x, std::span<const double> y) {
  double sum = 0;
  for (size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

double Nrm2(std::span<const double> x) {
  // Two-pass scaled norm: robust against overflow for large magnitudes.
  double maxabs = 0;
  for (double v : x) maxabs = std::max(maxabs, std::fabs(v));
  if (maxabs == 0.0) return 0.0;
  double sum = 0;
  for (double v : x) {
    double s = v / maxabs;
    sum += s * s;
  }
  return maxabs * std::sqrt(sum);
}

void Axpy(double alpha, std::span<const double> x, std::span<double> y) {
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scal(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

Matrix Transpose(ConstMatrixView a) {
  Matrix t(a.cols, a.rows);
  for (int64_t j = 0; j < a.cols; ++j) {
    for (int64_t i = 0; i < a.rows; ++i) t.at(j, i) = a.at(i, j);
  }
  return t;
}

double MaxAbsDiff(ConstMatrixView a, ConstMatrixView b) {
  double mx = 0;
  for (int64_t j = 0; j < a.cols; ++j) {
    for (int64_t i = 0; i < a.rows; ++i) {
      mx = std::max(mx, std::fabs(a.at(i, j) - b.at(i, j)));
    }
  }
  return mx;
}

}  // namespace sqlarray::math
