#include "math/pca.h"

#include <cmath>

#include "math/qr.h"
#include "math/svd.h"

namespace sqlarray::math {

Result<PcaModel> PcaFit(ConstMatrixView samples, int64_t k) {
  const int64_t n = samples.rows;
  const int64_t d = samples.cols;
  if (n < 2) {
    return Status::InvalidArgument("PCA needs at least two samples");
  }
  if (k < 1 || k > std::min(n, d)) {
    return Status::InvalidArgument("component count out of range");
  }

  PcaModel model;
  model.mean.assign(d, 0.0);
  for (int64_t j = 0; j < d; ++j) {
    double sum = 0;
    for (int64_t i = 0; i < n; ++i) sum += samples.at(i, j);
    model.mean[j] = sum / static_cast<double>(n);
  }

  // SVD of the centered data matrix: X = U S V^T; principal axes are V's
  // columns and explained variances are s^2 / (n - 1). This avoids forming
  // the d x d covariance explicitly (better conditioned, same result).
  Matrix centered(n, d);
  for (int64_t j = 0; j < d; ++j) {
    for (int64_t i = 0; i < n; ++i) {
      centered.at(i, j) = samples.at(i, j) - model.mean[j];
    }
  }
  SQLARRAY_ASSIGN_OR_RETURN(SvdResult svd, Gesvd(centered.view()));

  model.components = Matrix(d, k);
  model.explained_variance.assign(k, 0.0);
  for (int64_t c = 0; c < k; ++c) {
    for (int64_t j = 0; j < d; ++j) {
      model.components.at(j, c) = svd.vt.at(c, j);
    }
    model.explained_variance[c] =
        svd.s[c] * svd.s[c] / static_cast<double>(n - 1);
  }
  return model;
}

std::vector<double> PcaProject(const PcaModel& model,
                               std::span<const double> sample) {
  const int64_t d = model.components.rows();
  const int64_t k = model.components.cols();
  std::vector<double> centered(d);
  for (int64_t j = 0; j < d; ++j) centered[j] = sample[j] - model.mean[j];
  std::vector<double> coeffs(k, 0.0);
  Gemv(true, 1.0, model.components.view(), centered, 0.0, coeffs);
  return coeffs;
}

Result<std::vector<double>> PcaProjectMasked(const PcaModel& model,
                                             std::span<const double> sample,
                                             std::span<const double> weights) {
  const int64_t d = model.components.rows();
  if (static_cast<int64_t>(sample.size()) != d ||
      static_cast<int64_t>(weights.size()) != d) {
    return Status::InvalidArgument(
        "sample and weight lengths must match the feature count");
  }
  std::vector<double> centered(d);
  for (int64_t j = 0; j < d; ++j) centered[j] = sample[j] - model.mean[j];
  return WeightedLeastSquares(model.components.view(), centered, weights);
}

std::vector<double> PcaReconstruct(const PcaModel& model,
                                   std::span<const double> coeffs) {
  const int64_t d = model.components.rows();
  std::vector<double> out(model.mean.begin(), model.mean.end());
  Gemv(false, 1.0, model.components.view(), coeffs, 1.0, out);
  (void)d;
  return out;
}

}  // namespace sqlarray::math
