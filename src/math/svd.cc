#include "math/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sqlarray::math {

namespace {

/// One-sided Jacobi on the columns of `w` (m x n, m >= n is not required but
/// convergence is fastest for tall matrices). Rotations are accumulated into
/// `v` (n x n, starts as identity).
void JacobiSweeps(Matrix* w, Matrix* v) {
  const int64_t m = w->rows();
  const int64_t n = w->cols();
  const double eps = 1e-15;
  const int max_sweeps = 60;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        double* cp = w->data() + p * m;
        double* cq = w->data() + q * m;
        double alpha = 0, beta = 0, gamma = 0;
        for (int64_t i = 0; i < m; ++i) {
          alpha += cp[i] * cp[i];
          beta += cq[i] * cq[i];
          gamma += cp[i] * cq[i];
        }
        if (std::fabs(gamma) <= eps * std::sqrt(alpha * beta)) continue;
        rotated = true;

        // Jacobi rotation zeroing the off-diagonal of the 2x2 Gram block.
        double zeta = (beta - alpha) / (2.0 * gamma);
        double t = std::copysign(
            1.0 / (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta)), zeta);
        double c = 1.0 / std::sqrt(1.0 + t * t);
        double s = c * t;

        for (int64_t i = 0; i < m; ++i) {
          double wp = cp[i];
          double wq = cq[i];
          cp[i] = c * wp - s * wq;
          cq[i] = s * wp + c * wq;
        }
        double* vp = v->data() + p * n;
        double* vq = v->data() + q * n;
        for (int64_t i = 0; i < n; ++i) {
          double xp = vp[i];
          double xq = vq[i];
          vp[i] = c * xp - s * xq;
          vq[i] = s * xp + c * xq;
        }
      }
    }
    if (!rotated) break;
  }
}

}  // namespace

Result<SvdResult> Gesvd(ConstMatrixView a) {
  if (a.rows <= 0 || a.cols <= 0) {
    return Status::InvalidArgument("SVD input must be non-empty");
  }

  // Work on A when m >= n, on A^T otherwise; swap U/V at the end.
  const bool transposed = a.rows < a.cols;
  Matrix w = transposed ? Transpose(a) : Matrix(a.rows, a.cols);
  if (!transposed) {
    for (int64_t j = 0; j < a.cols; ++j) {
      for (int64_t i = 0; i < a.rows; ++i) w.at(i, j) = a.at(i, j);
    }
  }
  const int64_t m = w.rows();
  const int64_t n = w.cols();

  Matrix v = Matrix::Identity(n);
  JacobiSweeps(&w, &v);

  // Column norms are the singular values; normalized columns are U.
  std::vector<double> s(n);
  for (int64_t j = 0; j < n; ++j) {
    s[j] = Nrm2(std::span<const double>(w.data() + j * m,
                                        static_cast<size_t>(m)));
  }

  // Sort singular values descending, permuting U and V columns alongside.
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int64_t x, int64_t y) { return s[x] > s[y]; });

  Matrix u_sorted(m, n);
  Matrix v_sorted(n, n);
  std::vector<double> s_sorted(n);
  for (int64_t j = 0; j < n; ++j) {
    int64_t src = order[j];
    s_sorted[j] = s[src];
    double inv = s[src] > 0 ? 1.0 / s[src] : 0.0;
    for (int64_t i = 0; i < m; ++i) u_sorted.at(i, j) = w.at(i, src) * inv;
    for (int64_t i = 0; i < n; ++i) v_sorted.at(i, j) = v.at(i, src);
  }
  // Zero singular values leave zero U columns; orthogonality of U is only
  // guaranteed on the numerical range, which matches *gesvd's thin output.

  SvdResult out;
  if (!transposed) {
    out.u = std::move(u_sorted);
    out.vt = Transpose(v_sorted.view());
  } else {
    // A^T = W = U' S V'^T  =>  A = V' S U'^T.
    out.u = std::move(v_sorted);
    out.vt = Transpose(u_sorted.view());
  }
  out.s = std::move(s_sorted);
  return out;
}

Matrix SvdReconstruct(const SvdResult& svd) {
  const int64_t m = svd.u.rows();
  const int64_t k = svd.u.cols();
  const int64_t n = svd.vt.cols();
  Matrix us(m, k);
  for (int64_t j = 0; j < k; ++j) {
    for (int64_t i = 0; i < m; ++i) us.at(i, j) = svd.u.at(i, j) * svd.s[j];
  }
  Matrix out(m, n);
  Gemm(false, false, 1.0, us.view(), svd.vt.view(), 0.0, out.view());
  return out;
}

}  // namespace sqlarray::math
