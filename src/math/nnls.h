// Non-negative least squares (Lawson–Hanson active set method).
//
// Sec. 2.2: "Certain spectrum processing operations also require non-negative
// least squares fitting."
#pragma once

#include <span>
#include <vector>

#include "common/status.h"
#include "math/dense.h"

namespace sqlarray::math {

/// Solves min ||A x - b||_2 subject to x >= 0.
///
/// Returns the solution vector (length n). `max_iter` bounds the active-set
/// iterations (default 3 * n, the customary Lawson–Hanson bound).
Result<std::vector<double>> Nnls(ConstMatrixView a, std::span<const double> b,
                                 int max_iter = 0);

}  // namespace sqlarray::math
