#include "math/qr.h"

#include <cmath>

namespace sqlarray::math {

Result<QrFactorization> QrFactor(ConstMatrixView a) {
  if (a.rows < a.cols || a.cols == 0) {
    return Status::InvalidArgument(
        "QR requires a tall (m >= n), non-empty matrix");
  }
  const int64_t m = a.rows;
  const int64_t n = a.cols;
  QrFactorization f;
  f.qr = Matrix(m, n);
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t i = 0; i < m; ++i) f.qr.at(i, j) = a.at(i, j);
  }
  f.tau.assign(n, 0.0);

  for (int64_t k = 0; k < n; ++k) {
    // Build the Householder reflector for column k below the diagonal.
    double* col = f.qr.data() + k * m;
    double norm = Nrm2(std::span<const double>(col + k,
                                               static_cast<size_t>(m - k)));
    if (norm == 0.0) {
      f.tau[k] = 0.0;
      continue;
    }
    double alpha = col[k];
    double beta = -std::copysign(norm, alpha);
    double v0 = alpha - beta;
    // v = [1, col[k+1..m)/v0]; tau = (beta - alpha) / beta.
    f.tau[k] = (beta - alpha) / beta;
    for (int64_t i = k + 1; i < m; ++i) col[i] /= v0;
    col[k] = beta;

    // Apply (I - tau v v^T) to the trailing columns.
    for (int64_t j = k + 1; j < n; ++j) {
      double* cj = f.qr.data() + j * m;
      double dot = cj[k];
      for (int64_t i = k + 1; i < m; ++i) dot += col[i] * cj[i];
      double t = f.tau[k] * dot;
      cj[k] -= t;
      for (int64_t i = k + 1; i < m; ++i) cj[i] -= t * col[i];
    }
  }
  return f;
}

void ApplyQTranspose(const QrFactorization& f, std::span<double> x) {
  const int64_t m = f.rows();
  const int64_t n = f.cols();
  for (int64_t k = 0; k < n; ++k) {
    if (f.tau[k] == 0.0) continue;
    const double* col = f.qr.data() + k * m;
    double dot = x[k];
    for (int64_t i = k + 1; i < m; ++i) dot += col[i] * x[i];
    double t = f.tau[k] * dot;
    x[k] -= t;
    for (int64_t i = k + 1; i < m; ++i) x[i] -= t * col[i];
  }
}

Result<std::vector<double>> SolveUpper(const QrFactorization& f,
                                       std::span<const double> x) {
  const int64_t m = f.rows();
  const int64_t n = f.cols();
  std::vector<double> y(x.begin(), x.begin() + n);
  for (int64_t i = n - 1; i >= 0; --i) {
    double diag = f.qr.at(i, i);
    if (std::fabs(diag) < 1e-300) {
      return Status::InvalidArgument(
          "matrix is singular to working precision");
    }
    double sum = y[i];
    for (int64_t j = i + 1; j < n; ++j) sum -= f.qr.at(i, j) * y[j];
    y[i] = sum / diag;
  }
  (void)m;
  return y;
}

Result<std::vector<double>> LeastSquares(ConstMatrixView a,
                                         std::span<const double> b) {
  if (static_cast<int64_t>(b.size()) != a.rows) {
    return Status::InvalidArgument("rhs length must equal the row count");
  }
  SQLARRAY_ASSIGN_OR_RETURN(QrFactorization f, QrFactor(a));
  std::vector<double> x(b.begin(), b.end());
  ApplyQTranspose(f, x);
  return SolveUpper(f, x);
}

Result<std::vector<double>> WeightedLeastSquares(ConstMatrixView a,
                                                 std::span<const double> b,
                                                 std::span<const double> w) {
  if (static_cast<int64_t>(b.size()) != a.rows ||
      static_cast<int64_t>(w.size()) != a.rows) {
    return Status::InvalidArgument(
        "rhs and weight lengths must equal the row count");
  }
  for (double wi : w) {
    if (wi < 0) {
      return Status::InvalidArgument("weights must be non-negative");
    }
  }
  // Scale rows by the weights (zero weight rows contribute nothing but are
  // kept to preserve the shape; QR handles them as zero rows).
  Matrix wa(a.rows, a.cols);
  std::vector<double> wb(a.rows);
  for (int64_t i = 0; i < a.rows; ++i) {
    for (int64_t j = 0; j < a.cols; ++j) wa.at(i, j) = a.at(i, j) * w[i];
    wb[i] = b[i] * w[i];
  }
  return LeastSquares(wa.view(), wb);
}

}  // namespace sqlarray::math
