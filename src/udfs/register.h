// Registration entry points for the full T-SQL function surface.
//
// RegisterAllUdfs wires up, for every element type and storage class, the
// paper's schema-per-type function families (IntArray.*, FloatArrayMax.*,
// ...), the generic header-dispatched Array.* schema used by the subscript
// sugar, the complex scalar UDT helpers, the math-library bindings
// (LAPACK/FFTW substitutes), the Concat aggregate + reader-style
// counterpart, and dbo.EmptyFunction for the overhead benchmarks.
#pragma once

#include "common/status.h"
#include "engine/udf.h"

namespace sqlarray::udfs {

/// Registers the per-dtype, per-storage-class array schemas (Sec. 5.1).
Status RegisterArraySchemas(engine::FunctionRegistry* registry);

/// Registers the generic "Array" schema that dispatches on the blob header
/// (backs the Sec. 8 subscript sugar), plus dbo.EmptyFunction.
Status RegisterGenericUdfs(engine::FunctionRegistry* registry);

/// Registers LAPACK/FFTW-substitute bindings (Sec. 3.6 / 5.3):
/// FFTForward/FFTInverse, SVD_U/SVD_S/SVD_VT, Solve, Nnls.
Status RegisterMathUdfs(engine::FunctionRegistry* registry);

/// Registers the Concat UDA, the reader-style ConcatQuery UDF, and the
/// vector-averaging UDA used for composite spectra (Sec. 2.2 / 4.2).
Status RegisterAggregateUdfs(engine::FunctionRegistry* registry);

/// Registers the ToTable / MatrixToTable / CubeToTable table-valued
/// functions for every real element type and storage class (Sec. 5.1).
Status RegisterTableValuedUdfs(engine::FunctionRegistry* registry);

/// Registers the DateTime.* calendar helpers (the datetime base type of
/// Sec. 3.4 made usable from T-SQL).
Status RegisterDateTimeUdfs(engine::FunctionRegistry* registry);

/// All of the above.
Status RegisterAllUdfs(engine::FunctionRegistry* registry);

}  // namespace sqlarray::udfs
