// Table -> array assembly: the Concat UDA, its reader-style replacement, and
// the vector-averaging UDA for composite spectra.
//
// Sec. 4.2: the UDA contract forces the accumulator state through a
// serialization boundary on every row, which made the elegant UDA
// "prohibitive"; the paper replaced it with a plain scalar UDF that takes a
// SQL query string and reads rows itself. Both paths are implemented here so
// the A3 experiment can reproduce the comparison.
#include "common/bytes.h"
#include "core/concat.h"
#include "core/ops.h"
#include "udfs/helpers.h"
#include "udfs/register.h"

namespace sqlarray::udfs {

namespace {

using engine::Boundary;
using engine::FunctionRegistry;
using engine::ScalarFunction;
using engine::Uda;
using engine::UdfContext;
using engine::Value;

/// Parses a row's index argument: either an integer (linear offset) or an
/// integer-vector array blob (multi-index).
Result<int64_t> LinearIndexFromValue(const Value& v, const ArrayHeader& h,
                                     UdfContext& ctx) {
  if (v.kind() == Value::Kind::kInt64 || v.kind() == Value::Kind::kFloat64) {
    return v.AsInt();
  }
  SQLARRAY_ASSIGN_OR_RETURN(Dims idx, DimsFromValue(v, ctx));
  return LinearIndex(h.dims, idx);
}

/// The Concat user-defined aggregate for one element type.
class ConcatUda : public Uda {
 public:
  explicit ConcatUda(DType dtype) : dtype_(dtype) {}

  Result<std::vector<uint8_t>> Init(std::span<const Value> args,
                                    UdfContext& ctx) override {
    if (args.empty()) {
      return Status::InvalidArgument(
          "Concat needs (dims, index, value) arguments");
    }
    SQLARRAY_ASSIGN_OR_RETURN(Dims dims, DimsFromValue(args[0], ctx));
    SQLARRAY_ASSIGN_OR_RETURN(ConcatBuilder builder,
                              ConcatBuilder::Create(dtype_, std::move(dims)));
    return builder.SerializeState();
  }

  Result<std::vector<uint8_t>> Accumulate(std::span<const uint8_t> state,
                                          std::span<const Value> args,
                                          UdfContext& ctx) override {
    if (args.size() != 3) {
      return Status::InvalidArgument(
          "Concat needs (dims, index, value) arguments");
    }
    // The hosting contract: state comes in serialized and must go back out
    // serialized — this is the per-row cost Sec. 4.2 measures.
    SQLARRAY_ASSIGN_OR_RETURN(ConcatBuilder builder,
                              ConcatBuilder::DeserializeState(state));
    SQLARRAY_ASSIGN_OR_RETURN(
        int64_t linear, LinearIndexFromValue(args[1], builder.header(), ctx));
    SQLARRAY_ASSIGN_OR_RETURN(double v, args[2].AsDouble());
    SQLARRAY_RETURN_IF_ERROR(builder.AddLinear(linear, v));
    return builder.SerializeState();
  }

  Result<Value> Terminate(std::span<const uint8_t> state,
                          UdfContext&) override {
    SQLARRAY_ASSIGN_OR_RETURN(ConcatBuilder builder,
                              ConcatBuilder::DeserializeState(state));
    SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out, std::move(builder).Finish());
    return ValueFromArray(std::move(out));
  }

 private:
  DType dtype_;
};

/// Element-wise averaging of equal-length float vectors — the composite
/// spectrum aggregate of Sec. 2.2. State: int64 count + float64 sum array.
class AvgVectorUda : public Uda {
 public:
  Result<std::vector<uint8_t>> Init(std::span<const Value>,
                                    UdfContext&) override {
    // Length is learned from the first row.
    std::vector<uint8_t> state;
    AppendLE<int64_t>(&state, 0);
    return state;
  }

  Result<std::vector<uint8_t>> Accumulate(std::span<const uint8_t> state,
                                          std::span<const Value> args,
                                          UdfContext& ctx) override {
    if (args.size() != 1) {
      return Status::InvalidArgument("AvgVector takes one vector argument");
    }
    SQLARRAY_ASSIGN_OR_RETURN(OwnedArray v, ArrayFromValue(args[0], ctx));
    if (v.rank() != 1) {
      return Status::InvalidArgument("AvgVector input must be rank 1");
    }
    int64_t count = DecodeLE<int64_t>(state.data());

    OwnedArray sums;
    if (count == 0) {
      SQLARRAY_ASSIGN_OR_RETURN(
          sums, OwnedArray::Zeros(DType::kFloat64, v.dims(),
                                  StorageClass::kMax));
    } else {
      SQLARRAY_ASSIGN_OR_RETURN(
          sums, OwnedArray::FromBlob(std::vector<uint8_t>(
                    state.begin() + 8, state.end())));
      if (sums.dims() != v.dims()) {
        return Status::InvalidArgument(
            "AvgVector inputs must share one length");
      }
    }
    auto acc = sums.MutableData<double>().value();
    ArrayRef ref = v.ref();
    for (int64_t i = 0; i < ref.num_elements(); ++i) {
      SQLARRAY_ASSIGN_OR_RETURN(double x, ref.GetDouble(i));
      acc[i] += x;
    }

    std::vector<uint8_t> out;
    AppendLE<int64_t>(&out, count + 1);
    auto blob = sums.blob();
    out.insert(out.end(), blob.begin(), blob.end());
    return out;
  }

  Result<Value> Terminate(std::span<const uint8_t> state,
                          UdfContext&) override {
    int64_t count = DecodeLE<int64_t>(state.data());
    if (count == 0) return Value::Null();
    SQLARRAY_ASSIGN_OR_RETURN(
        OwnedArray sums,
        OwnedArray::FromBlob(std::vector<uint8_t>(state.begin() + 8,
                                                  state.end())));
    auto acc = sums.MutableData<double>().value();
    for (double& x : acc) x /= static_cast<double>(count);
    return ValueFromArray(std::move(sums));
  }
};

}  // namespace

Status RegisterAggregateUdfs(FunctionRegistry* registry) {
  for (int d = 0; d < kNumDTypes; ++d) {
    DType dtype = static_cast<DType>(d);
    if (IsComplexDType(dtype)) continue;  // Concat assembles scalar rows
    std::string schema = std::string(DTypeSchemaPrefix(dtype)) + "ArrayMax";

    SQLARRAY_RETURN_IF_ERROR(registry->RegisterUda(
        schema, "Concat",
        [dtype]() { return std::make_unique<ConcatUda>(dtype); }));

    // Reader-style replacement (Sec. 4.2): a scalar UDF that takes the
    // dims vector and a SQL query returning (index, value) rows, reads the
    // rows itself, and assembles the array in one call.
    ScalarFunction f;
    f.schema = schema;
    f.name = "ConcatQuery";
    f.arity = 2;
    f.boundary = Boundary::kClr;
    f.managed_work_ns = 2000;
    f.needs_subquery = true;
    f.fn = [dtype](std::span<const Value> args,
                   UdfContext& ctx) -> Result<Value> {
      if (ctx.subquery == nullptr || !*ctx.subquery) {
        return Status::InvalidArgument(
            "ConcatQuery requires a session with subquery support");
      }
      SQLARRAY_ASSIGN_OR_RETURN(Dims dims, DimsFromValue(args[0], ctx));
      SQLARRAY_ASSIGN_OR_RETURN(std::string sqltext, args[1].AsString());
      SQLARRAY_ASSIGN_OR_RETURN(ConcatBuilder builder,
                                ConcatBuilder::Create(dtype, dims));
      ArrayHeader h{dtype, ChooseStorageClass(dtype, dims), dims};

      SQLARRAY_ASSIGN_OR_RETURN(engine::SubqueryResult sub,
                                (*ctx.subquery)(sqltext));
      // The nested scan's I/O and CPU belong to this query.
      if (ctx.stats != nullptr) {
        ctx.stats->rows_scanned += sub.stats.rows_scanned;
        ctx.stats->udf_calls += sub.stats.udf_calls;
        ctx.stats->cpu_core_seconds += sub.stats.cpu_core_seconds;
      }
      for (const std::vector<Value>& row : sub.rows) {
        if (row.size() != 2) {
          return Status::InvalidArgument(
              "ConcatQuery subquery must return (index, value) rows");
        }
        SQLARRAY_ASSIGN_OR_RETURN(int64_t linear,
                                  LinearIndexFromValue(row[0], h, ctx));
        SQLARRAY_ASSIGN_OR_RETURN(double v, row[1].AsDouble());
        SQLARRAY_RETURN_IF_ERROR(builder.AddLinear(linear, v));
      }
      SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out, std::move(builder).Finish());
      return ValueFromArray(std::move(out));
    };
    SQLARRAY_RETURN_IF_ERROR(registry->RegisterScalar(std::move(f)));
  }

  SQLARRAY_RETURN_IF_ERROR(registry->RegisterUda(
      "FloatArrayMax", "AvgVector",
      []() { return std::make_unique<AvgVectorUda>(); }));
  return Status::OK();
}

Status RegisterAllUdfs(FunctionRegistry* registry) {
  SQLARRAY_RETURN_IF_ERROR(RegisterArraySchemas(registry));
  SQLARRAY_RETURN_IF_ERROR(RegisterGenericUdfs(registry));
  SQLARRAY_RETURN_IF_ERROR(RegisterMathUdfs(registry));
  SQLARRAY_RETURN_IF_ERROR(RegisterAggregateUdfs(registry));
  SQLARRAY_RETURN_IF_ERROR(RegisterTableValuedUdfs(registry));
  SQLARRAY_RETURN_IF_ERROR(RegisterDateTimeUdfs(registry));
  return Status::OK();
}

}  // namespace sqlarray::udfs
