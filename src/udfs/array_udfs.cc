#include <string>

#include "core/build.h"
#include "core/ops.h"
#include "udfs/helpers.h"
#include "udfs/register.h"

namespace sqlarray::udfs {

namespace {

using engine::Boundary;
using engine::FunctionRegistry;
using engine::ScalarFunction;
using engine::UdfContext;
using engine::Value;

/// Rough managed-work cost constants (ns/call) for the modeled CLR host,
/// scaled around the paper's measured Item cost.
constexpr double kWorkItem = 500;
constexpr double kWorkUpdate = 800;
constexpr double kWorkBuild = 400;
constexpr double kWorkSubarray = 1200;
constexpr double kWorkConvert = 1500;
constexpr double kWorkAggregate = 1000;

/// Checks an argument array against the schema's dtype and storage class
/// ("we can detect type mismatches at runtime when the blobs are passed to
/// the wrong functions", Sec. 3.5).
Status CheckSchemaMatch(const ArrayHeader& h, DType dtype, StorageClass sc) {
  if (h.dtype != dtype) {
    return Status::TypeMismatch(
        "array of type " + std::string(DTypeName(h.dtype)) +
        " passed to a " + std::string(DTypeName(dtype)) + " schema function");
  }
  if (h.storage != sc) {
    return Status::TypeMismatch(
        "array storage class does not match the schema (short vs max)");
  }
  return Status::OK();
}

Status Reg(FunctionRegistry* reg, std::string schema, std::string name,
           int arity, double work, engine::ScalarFn fn) {
  ScalarFunction f;
  f.schema = std::move(schema);
  f.name = std::move(name);
  f.arity = arity;
  f.boundary = Boundary::kClr;
  f.managed_work_ns = work;
  f.fn = std::move(fn);
  return reg->RegisterScalar(std::move(f));
}

/// Registers every function family for one (dtype, storage class) schema.
Status RegisterSchema(FunctionRegistry* reg, DType dtype, StorageClass sc) {
  const std::string schema = std::string(DTypeSchemaPrefix(dtype)) + "Array" +
                             (sc == StorageClass::kMax ? "Max" : "");
  const bool cpx = IsComplexDType(dtype);
  const bool single = dtype == DType::kComplex64;

  // --- builders ----------------------------------------------------------
  // Vector_N: N elements (complex schemas take re/im pairs, arity 2N).
  for (int n = 1; n <= 8; ++n) {
    int arity = cpx ? 2 * n + 0 : n;
    SQLARRAY_RETURN_IF_ERROR(Reg(
        reg, schema, "Vector_" + std::to_string(n), arity,
        kWorkBuild + 40.0 * n,
        [dtype, sc, n, cpx](std::span<const Value> args,
                            UdfContext&) -> Result<Value> {
          SQLARRAY_ASSIGN_OR_RETURN(
              OwnedArray a, OwnedArray::Zeros(dtype, {n}, sc));
          for (int i = 0; i < n; ++i) {
            if (cpx) {
              SQLARRAY_ASSIGN_OR_RETURN(double re, args[2 * i].AsDouble());
              SQLARRAY_ASSIGN_OR_RETURN(double im, args[2 * i + 1].AsDouble());
              SQLARRAY_RETURN_IF_ERROR(a.SetComplex(i, {re, im}));
            } else {
              SQLARRAY_ASSIGN_OR_RETURN(double v, args[i].AsDouble());
              SQLARRAY_RETURN_IF_ERROR(a.SetDouble(i, v));
            }
          }
          return ValueFromArray(std::move(a));
        }));
  }

  // Matrix_N: an N-by-N matrix from N^2 values in column-major order.
  for (int n = 2; n <= 3; ++n) {
    int elems = n * n;
    int arity = cpx ? 2 * elems : elems;
    SQLARRAY_RETURN_IF_ERROR(Reg(
        reg, schema, "Matrix_" + std::to_string(n), arity,
        kWorkBuild + 40.0 * elems,
        [dtype, sc, n, elems, cpx](std::span<const Value> args,
                                   UdfContext&) -> Result<Value> {
          SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a,
                                    OwnedArray::Zeros(dtype, {n, n}, sc));
          for (int i = 0; i < elems; ++i) {
            if (cpx) {
              SQLARRAY_ASSIGN_OR_RETURN(double re, args[2 * i].AsDouble());
              SQLARRAY_ASSIGN_OR_RETURN(double im, args[2 * i + 1].AsDouble());
              SQLARRAY_RETURN_IF_ERROR(a.SetComplex(i, {re, im}));
            } else {
              SQLARRAY_ASSIGN_OR_RETURN(double v, args[i].AsDouble());
              SQLARRAY_RETURN_IF_ERROR(a.SetDouble(i, v));
            }
          }
          return ValueFromArray(std::move(a));
        }));
  }

  // Create: zero-filled array of the given dimension sizes (variadic).
  SQLARRAY_RETURN_IF_ERROR(Reg(
      reg, schema, "Create", -1, kWorkBuild,
      [dtype, sc](std::span<const Value> args,
                  UdfContext&) -> Result<Value> {
        if (args.empty()) {
          return Status::InvalidArgument("Create needs dimension sizes");
        }
        SQLARRAY_ASSIGN_OR_RETURN(Dims dims, IndexArgs(args, 0, args.size()));
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a,
                                  OwnedArray::Zeros(dtype, dims, sc));
        return ValueFromArray(std::move(a));
      }));

  // --- element access ----------------------------------------------------
  for (int n = 1; n <= 6; ++n) {
    // Item_N: real schemas return FLOAT; complex schemas return the complex
    // UDT as its native serialization.
    SQLARRAY_RETURN_IF_ERROR(Reg(
        reg, schema, "Item_" + std::to_string(n), n + 1, kWorkItem,
        [dtype, sc, n, cpx, single](std::span<const Value> args,
                                    UdfContext& ctx) -> Result<Value> {
          SQLARRAY_ASSIGN_OR_RETURN(ArrayHeader h,
                                    HeaderFromValue(args[0], ctx));
          SQLARRAY_RETURN_IF_ERROR(CheckSchemaMatch(h, dtype, sc));
          SQLARRAY_ASSIGN_OR_RETURN(Dims idx, IndexArgs(args, 1, n));
          if (!cpx) {
            SQLARRAY_ASSIGN_OR_RETURN(double v,
                                      ItemFromValue(args[0], idx, ctx));
            return Value::Double(v);
          }
          SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a,
                                    ArrayFromValue(args[0], ctx));
          SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> v,
                                    ItemComplex(a.ref(), idx));
          return Value::Bytes(EncodeComplexUdt(v, single));
        }));

    // UpdateItem_N: returns a copy with one element replaced.
    SQLARRAY_RETURN_IF_ERROR(Reg(
        reg, schema, "UpdateItem_" + std::to_string(n), n + 2, kWorkUpdate,
        [dtype, sc, n, cpx](std::span<const Value> args,
                            UdfContext& ctx) -> Result<Value> {
          SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a, ArrayFromValue(args[0], ctx));
          SQLARRAY_RETURN_IF_ERROR(CheckSchemaMatch(a.header(), dtype, sc));
          SQLARRAY_ASSIGN_OR_RETURN(Dims idx, IndexArgs(args, 1, n));
          const Value& val = args[n + 1];
          if (cpx && val.kind() == Value::Kind::kBytes) {
            SQLARRAY_ASSIGN_OR_RETURN(const std::vector<uint8_t>* b,
                                      val.AsBytes());
            SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> c,
                                      DecodeComplexUdt(*b));
            SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                                      UpdateItemComplex(a.ref(), idx, c));
            return ValueFromArray(std::move(out));
          }
          SQLARRAY_ASSIGN_OR_RETURN(double v, val.AsDouble());
          SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                                    UpdateItem(a.ref(), idx, v));
          return ValueFromArray(std::move(out));
        }));

    if (cpx) {
      // ItemRe_N / ItemIm_N scalar accessors for complex arrays.
      for (bool re : {true, false}) {
        SQLARRAY_RETURN_IF_ERROR(Reg(
            reg, schema, std::string(re ? "ItemRe_" : "ItemIm_") +
                             std::to_string(n),
            n + 1, kWorkItem,
            [dtype, sc, n, re](std::span<const Value> args,
                               UdfContext& ctx) -> Result<Value> {
              SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a,
                                        ArrayFromValue(args[0], ctx));
              SQLARRAY_RETURN_IF_ERROR(
                  CheckSchemaMatch(a.header(), dtype, sc));
              SQLARRAY_ASSIGN_OR_RETURN(Dims idx, IndexArgs(args, 1, n));
              SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> v,
                                        ItemComplex(a.ref(), idx));
              return Value::Double(re ? v.real() : v.imag());
            }));
      }
    }
  }

  // --- shape -------------------------------------------------------------
  SQLARRAY_RETURN_IF_ERROR(Reg(
      reg, schema, "Rank", 1, kWorkItem,
      [dtype, sc](std::span<const Value> args,
                  UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(ArrayHeader h, HeaderFromValue(args[0], ctx));
        SQLARRAY_RETURN_IF_ERROR(CheckSchemaMatch(h, dtype, sc));
        return Value::Int(h.rank());
      }));
  SQLARRAY_RETURN_IF_ERROR(Reg(
      reg, schema, "Length", 1, kWorkItem,
      [dtype, sc](std::span<const Value> args,
                  UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(ArrayHeader h, HeaderFromValue(args[0], ctx));
        SQLARRAY_RETURN_IF_ERROR(CheckSchemaMatch(h, dtype, sc));
        return Value::Int(h.num_elements());
      }));
  SQLARRAY_RETURN_IF_ERROR(Reg(
      reg, schema, "DimSize", 2, kWorkItem,
      [dtype, sc](std::span<const Value> args,
                  UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(ArrayHeader h, HeaderFromValue(args[0], ctx));
        SQLARRAY_RETURN_IF_ERROR(CheckSchemaMatch(h, dtype, sc));
        SQLARRAY_ASSIGN_OR_RETURN(int64_t k, args[1].AsInt());
        if (k < 0 || k >= h.rank()) {
          return Status::OutOfRange("dimension index out of range");
        }
        return Value::Int(h.dims[k]);
      }));
  SQLARRAY_RETURN_IF_ERROR(Reg(
      reg, schema, "Dims", 1, kWorkItem,
      [dtype, sc](std::span<const Value> args,
                  UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(ArrayHeader h, HeaderFromValue(args[0], ctx));
        SQLARRAY_RETURN_IF_ERROR(CheckSchemaMatch(h, dtype, sc));
        SQLARRAY_ASSIGN_OR_RETURN(
            OwnedArray dims,
            OwnedArray::Zeros(DType::kInt32,
                              {static_cast<int64_t>(h.dims.size())}));
        for (size_t i = 0; i < h.dims.size(); ++i) {
          SQLARRAY_RETURN_IF_ERROR(dims.SetDouble(
              static_cast<int64_t>(i), static_cast<double>(h.dims[i])));
        }
        return ValueFromArray(std::move(dims));
      }));

  // --- subsetting / reshaping -------------------------------------------
  SQLARRAY_RETURN_IF_ERROR(Reg(
      reg, schema, "Subarray", 4, kWorkSubarray,
      [dtype, sc](std::span<const Value> args,
                  UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(ArrayHeader h, HeaderFromValue(args[0], ctx));
        SQLARRAY_RETURN_IF_ERROR(CheckSchemaMatch(h, dtype, sc));
        SQLARRAY_ASSIGN_OR_RETURN(Dims offset, DimsFromValue(args[1], ctx));
        SQLARRAY_ASSIGN_OR_RETURN(Dims sizes, DimsFromValue(args[2], ctx));
        SQLARRAY_ASSIGN_OR_RETURN(int64_t collapse, args[3].AsInt());
        SQLARRAY_ASSIGN_OR_RETURN(
            OwnedArray out,
            SubarrayFromValue(args[0], offset, sizes, collapse != 0, ctx));
        return ValueFromArray(std::move(out));
      }));

  SQLARRAY_RETURN_IF_ERROR(Reg(
      reg, schema, "Reshape", 2, kWorkSubarray,
      [dtype, sc](std::span<const Value> args,
                  UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a, ArrayFromValue(args[0], ctx));
        SQLARRAY_RETURN_IF_ERROR(CheckSchemaMatch(a.header(), dtype, sc));
        SQLARRAY_ASSIGN_OR_RETURN(Dims dims, DimsFromValue(args[1], ctx));
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                                  Reshape(a.ref(), std::move(dims)));
        return ValueFromArray(std::move(out));
      }));

  // --- transforms ----------------------------------------------------------
  SQLARRAY_RETURN_IF_ERROR(Reg(
      reg, schema, "Transpose", 1, kWorkSubarray,
      [dtype, sc](std::span<const Value> args,
                  UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a, ArrayFromValue(args[0], ctx));
        SQLARRAY_RETURN_IF_ERROR(CheckSchemaMatch(a.header(), dtype, sc));
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out, Transpose(a.ref()));
        return ValueFromArray(std::move(out));
      }));
  SQLARRAY_RETURN_IF_ERROR(Reg(
      reg, schema, "Permute", 2, kWorkSubarray,
      [dtype, sc](std::span<const Value> args,
                  UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a, ArrayFromValue(args[0], ctx));
        SQLARRAY_RETURN_IF_ERROR(CheckSchemaMatch(a.header(), dtype, sc));
        SQLARRAY_ASSIGN_OR_RETURN(Dims perm64, DimsFromValue(args[1], ctx));
        std::vector<int> perm(perm64.begin(), perm64.end());
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                                  PermuteAxes(a.ref(), perm));
        return ValueFromArray(std::move(out));
      }));
  SQLARRAY_RETURN_IF_ERROR(Reg(
      reg, schema, "ConcatAxis", 3, kWorkSubarray,
      [dtype, sc](std::span<const Value> args,
                  UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a, ArrayFromValue(args[0], ctx));
        SQLARRAY_RETURN_IF_ERROR(CheckSchemaMatch(a.header(), dtype, sc));
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray b, ArrayFromValue(args[1], ctx));
        SQLARRAY_ASSIGN_OR_RETURN(int64_t axis, args[2].AsInt());
        SQLARRAY_ASSIGN_OR_RETURN(
            OwnedArray out,
            ConcatAxis(a.ref(), b.ref(), static_cast<int>(axis)));
        return ValueFromArray(std::move(out));
      }));

  // --- raw bridging ------------------------------------------------------
  SQLARRAY_RETURN_IF_ERROR(Reg(
      reg, schema, "Cast", 2, kWorkConvert,
      [dtype](std::span<const Value> args, UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                                  args[0].MaterializeBytes());
        SQLARRAY_ASSIGN_OR_RETURN(Dims dims, DimsFromValue(args[1], ctx));
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                                  CastFromRaw(dtype, std::move(dims), raw));
        return ValueFromArray(std::move(out));
      }));
  SQLARRAY_RETURN_IF_ERROR(Reg(
      reg, schema, "Raw", 1, kWorkConvert,
      [dtype, sc](std::span<const Value> args,
                  UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a, ArrayFromValue(args[0], ctx));
        SQLARRAY_RETURN_IF_ERROR(CheckSchemaMatch(a.header(), dtype, sc));
        SQLARRAY_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, Raw(a.ref()));
        return Value::Bytes(std::move(raw));
      }));

  // --- conversions -------------------------------------------------------
  // From: converts any array (any dtype, any class) into this schema's
  // dtype and storage class.
  SQLARRAY_RETURN_IF_ERROR(Reg(
      reg, schema, "From", 1, kWorkConvert,
      [dtype, sc](std::span<const Value> args,
                  UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a, ArrayFromValue(args[0], ctx));
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray conv,
                                  ConvertDType(a.ref(), dtype));
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                                  ConvertStorage(conv.ref(), sc));
        return ValueFromArray(std::move(out));
      }));

  SQLARRAY_RETURN_IF_ERROR(Reg(
      reg, schema, "ToString", 1, kWorkConvert,
      [dtype, sc](std::span<const Value> args,
                  UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a, ArrayFromValue(args[0], ctx));
        SQLARRAY_RETURN_IF_ERROR(CheckSchemaMatch(a.header(), dtype, sc));
        return Value::Str(ToArrayString(a.ref()));
      }));
  SQLARRAY_RETURN_IF_ERROR(Reg(
      reg, schema, "FromString", 1, kWorkConvert,
      [dtype, sc](std::span<const Value> args,
                  UdfContext& ctx) -> Result<Value> {
        (void)ctx;
        SQLARRAY_ASSIGN_OR_RETURN(std::string text, args[0].AsString());
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray parsed, FromArrayString(text));
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray conv,
                                  ConvertDType(parsed.ref(), dtype));
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                                  ConvertStorage(conv.ref(), sc));
        return ValueFromArray(std::move(out));
      }));

  // --- aggregates over the array ----------------------------------------
  struct AggDef {
    const char* name;
    AggKind kind;
  };
  for (const AggDef& def :
       {AggDef{"SumAll", AggKind::kSum}, AggDef{"MinAll", AggKind::kMin},
        AggDef{"MaxAll", AggKind::kMax}, AggDef{"MeanAll", AggKind::kMean},
        AggDef{"StdAll", AggKind::kStd}}) {
    AggKind kind = def.kind;
    SQLARRAY_RETURN_IF_ERROR(Reg(
        reg, schema, def.name, 1, kWorkAggregate,
        [dtype, sc, kind, cpx, single](std::span<const Value> args,
                                       UdfContext& ctx) -> Result<Value> {
          SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a,
                                    ArrayFromValue(args[0], ctx));
          SQLARRAY_RETURN_IF_ERROR(CheckSchemaMatch(a.header(), dtype, sc));
          if (cpx) {
            SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> v,
                                      AggregateAllComplex(a.ref(), kind));
            return Value::Bytes(EncodeComplexUdt(v, single));
          }
          SQLARRAY_ASSIGN_OR_RETURN(double v, AggregateAll(a.ref(), kind));
          return Value::Double(v);
        }));
  }
  for (const AggDef& def :
       {AggDef{"SumAxis", AggKind::kSum}, AggDef{"MeanAxis", AggKind::kMean},
        AggDef{"MinAxis", AggKind::kMin}, AggDef{"MaxAxis", AggKind::kMax}}) {
    AggKind kind = def.kind;
    SQLARRAY_RETURN_IF_ERROR(Reg(
        reg, schema, def.name, 2, kWorkAggregate,
        [dtype, sc, kind](std::span<const Value> args,
                          UdfContext& ctx) -> Result<Value> {
          SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a,
                                    ArrayFromValue(args[0], ctx));
          SQLARRAY_RETURN_IF_ERROR(CheckSchemaMatch(a.header(), dtype, sc));
          SQLARRAY_ASSIGN_OR_RETURN(int64_t axis, args[1].AsInt());
          SQLARRAY_ASSIGN_OR_RETURN(
              OwnedArray out,
              AggregateAxis(a.ref(), static_cast<int>(axis), kind));
          return ValueFromArray(std::move(out));
        }));
  }

  // --- element-wise arithmetic ------------------------------------------
  struct BinDef {
    const char* name;
    BinOp op;
  };
  for (const BinDef& def : {BinDef{"Add", BinOp::kAdd},
                            BinDef{"Sub", BinOp::kSub},
                            BinDef{"Mul", BinOp::kMul},
                            BinDef{"Div", BinOp::kDiv}}) {
    BinOp op = def.op;
    SQLARRAY_RETURN_IF_ERROR(Reg(
        reg, schema, def.name, 2, kWorkAggregate,
        [dtype, sc, op](std::span<const Value> args,
                        UdfContext& ctx) -> Result<Value> {
          SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a, ArrayFromValue(args[0], ctx));
          SQLARRAY_RETURN_IF_ERROR(CheckSchemaMatch(a.header(), dtype, sc));
          SQLARRAY_ASSIGN_OR_RETURN(OwnedArray b, ArrayFromValue(args[1], ctx));
          SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                                    ElementwiseBinary(a.ref(), b.ref(), op));
          return ValueFromArray(std::move(out));
        }));
  }
  SQLARRAY_RETURN_IF_ERROR(Reg(
      reg, schema, "Scale", 2, kWorkAggregate,
      [dtype, sc](std::span<const Value> args,
                  UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a, ArrayFromValue(args[0], ctx));
        SQLARRAY_RETURN_IF_ERROR(CheckSchemaMatch(a.header(), dtype, sc));
        SQLARRAY_ASSIGN_OR_RETURN(double s, args[1].AsDouble());
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                                  ElementwiseScalar(a.ref(), s, BinOp::kMul));
        return ValueFromArray(std::move(out));
      }));
  if (!cpx) {
    SQLARRAY_RETURN_IF_ERROR(Reg(
        reg, schema, "Dot", 2, kWorkAggregate,
        [dtype, sc](std::span<const Value> args,
                    UdfContext& ctx) -> Result<Value> {
          SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a, ArrayFromValue(args[0], ctx));
          SQLARRAY_RETURN_IF_ERROR(CheckSchemaMatch(a.header(), dtype, sc));
          SQLARRAY_ASSIGN_OR_RETURN(OwnedArray b, ArrayFromValue(args[1], ctx));
          SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> v,
                                    Dot(a.ref(), b.ref()));
          return Value::Double(v.real());
        }));
  }
  SQLARRAY_RETURN_IF_ERROR(Reg(
      reg, schema, "Norm", 1, kWorkAggregate,
      [dtype, sc](std::span<const Value> args,
                  UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a, ArrayFromValue(args[0], ctx));
        SQLARRAY_RETURN_IF_ERROR(CheckSchemaMatch(a.header(), dtype, sc));
        SQLARRAY_ASSIGN_OR_RETURN(double v, Norm2(a.ref()));
        return Value::Double(v);
      }));

  return Status::OK();
}

/// Scalar complex UDT helpers under "Complex"/"DoubleComplex" schemas.
Status RegisterComplexUdt(FunctionRegistry* reg, bool single) {
  const std::string schema = single ? "Complex" : "DoubleComplex";
  SQLARRAY_RETURN_IF_ERROR(Reg(
      reg, schema, "Make", 2, kWorkItem,
      [single](std::span<const Value> args, UdfContext&) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(double re, args[0].AsDouble());
        SQLARRAY_ASSIGN_OR_RETURN(double im, args[1].AsDouble());
        return Value::Bytes(EncodeComplexUdt({re, im}, single));
      }));
  for (bool re : {true, false}) {
    SQLARRAY_RETURN_IF_ERROR(Reg(
        reg, schema, re ? "Re" : "Im", 1, kWorkItem,
        [re](std::span<const Value> args, UdfContext&) -> Result<Value> {
          SQLARRAY_ASSIGN_OR_RETURN(const std::vector<uint8_t>* b,
                                    args[0].AsBytes());
          SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> v,
                                    DecodeComplexUdt(*b));
          return Value::Double(re ? v.real() : v.imag());
        }));
  }
  SQLARRAY_RETURN_IF_ERROR(Reg(
      reg, schema, "Abs", 1, kWorkItem,
      [](std::span<const Value> args, UdfContext&) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(const std::vector<uint8_t>* b,
                                  args[0].AsBytes());
        SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> v,
                                  DecodeComplexUdt(*b));
        return Value::Double(std::abs(v));
      }));
  return Status::OK();
}

}  // namespace

Status RegisterArraySchemas(FunctionRegistry* registry) {
  for (int d = 0; d < kNumDTypes; ++d) {
    DType dtype = static_cast<DType>(d);
    SQLARRAY_RETURN_IF_ERROR(
        RegisterSchema(registry, dtype, StorageClass::kShort));
    SQLARRAY_RETURN_IF_ERROR(
        RegisterSchema(registry, dtype, StorageClass::kMax));
  }
  SQLARRAY_RETURN_IF_ERROR(RegisterComplexUdt(registry, true));
  SQLARRAY_RETURN_IF_ERROR(RegisterComplexUdt(registry, false));
  return Status::OK();
}

}  // namespace sqlarray::udfs
