#include "udfs/helpers.h"

#include "common/bytes.h"
#include "core/ops.h"
#include "storage/blob.h"

namespace sqlarray::udfs {

using engine::Value;

Result<OwnedArray> ArrayFromValue(const Value& v, engine::UdfContext& ctx) {
  (void)ctx;
  if (v.kind() == Value::Kind::kBytes) {
    SQLARRAY_ASSIGN_OR_RETURN(const std::vector<uint8_t>* bytes, v.AsBytes());
    return OwnedArray::FromBlob(*bytes);
  }
  if (v.kind() == Value::Kind::kBlob) {
    SQLARRAY_ASSIGN_OR_RETURN(engine::BlobRef ref, v.AsBlob());
    SQLARRAY_ASSIGN_OR_RETURN(storage::BlobStream stream,
                              storage::BlobStream::Open(ref.pool, ref.id));
    return StreamReadAll(&stream);
  }
  return Status::TypeMismatch("argument is not an array blob");
}

Result<ArrayHeader> HeaderFromValue(const Value& v, engine::UdfContext& ctx) {
  (void)ctx;
  if (v.kind() == Value::Kind::kBytes) {
    SQLARRAY_ASSIGN_OR_RETURN(const std::vector<uint8_t>* bytes, v.AsBytes());
    return DecodeHeader(*bytes);
  }
  if (v.kind() == Value::Kind::kBlob) {
    SQLARRAY_ASSIGN_OR_RETURN(engine::BlobRef ref, v.AsBlob());
    SQLARRAY_ASSIGN_OR_RETURN(storage::BlobStream stream,
                              storage::BlobStream::Open(ref.pool, ref.id));
    return ReadHeaderFromSource(&stream);
  }
  return Status::TypeMismatch("argument is not an array blob");
}

Result<Dims> DimsFromValue(const Value& v, engine::UdfContext& ctx) {
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a, ArrayFromValue(v, ctx));
  ArrayRef ref = a.ref();
  if (ref.rank() != 1) {
    return Status::InvalidArgument("index vector must be one-dimensional");
  }
  if (!IsIntegerDType(ref.dtype())) {
    return Status::TypeMismatch("index vector must hold integers");
  }
  Dims out(static_cast<size_t>(ref.num_elements()));
  for (int64_t i = 0; i < ref.num_elements(); ++i) {
    SQLARRAY_ASSIGN_OR_RETURN(double d, ref.GetDouble(i));
    out[i] = static_cast<int64_t>(d);
  }
  return out;
}

Value ValueFromArray(OwnedArray array) {
  return Value::Bytes(std::move(array).TakeBlob());
}

Result<double> ItemFromValue(const Value& v, std::span<const int64_t> index,
                             engine::UdfContext& ctx) {
  (void)ctx;
  if (v.kind() == Value::Kind::kBlob) {
    // Out-of-page argument: read the header plus exactly one element.
    SQLARRAY_ASSIGN_OR_RETURN(engine::BlobRef ref, v.AsBlob());
    SQLARRAY_ASSIGN_OR_RETURN(storage::BlobStream stream,
                              storage::BlobStream::Open(ref.pool, ref.id));
    return StreamItem(&stream, index);
  }
  SQLARRAY_ASSIGN_OR_RETURN(const std::vector<uint8_t>* bytes, v.AsBytes());
  SQLARRAY_ASSIGN_OR_RETURN(ArrayRef ref, ArrayRef::Parse(*bytes));
  return Item(ref, index);
}

Result<OwnedArray> SubarrayFromValue(const Value& v,
                                     std::span<const int64_t> offset,
                                     std::span<const int64_t> sizes,
                                     bool collapse, engine::UdfContext& ctx) {
  (void)ctx;
  if (v.kind() == Value::Kind::kBlob) {
    SQLARRAY_ASSIGN_OR_RETURN(engine::BlobRef ref, v.AsBlob());
    SQLARRAY_ASSIGN_OR_RETURN(storage::BlobStream stream,
                              storage::BlobStream::Open(ref.pool, ref.id));
    return StreamSubarray(&stream, offset, sizes, collapse);
  }
  SQLARRAY_ASSIGN_OR_RETURN(const std::vector<uint8_t>* bytes, v.AsBytes());
  SQLARRAY_ASSIGN_OR_RETURN(ArrayRef ref, ArrayRef::Parse(*bytes));
  return Subarray(ref, offset, sizes, collapse);
}

std::vector<uint8_t> EncodeComplexUdt(std::complex<double> v, bool single) {
  std::vector<uint8_t> out;
  if (single) {
    AppendLE<float>(&out, static_cast<float>(v.real()));
    AppendLE<float>(&out, static_cast<float>(v.imag()));
  } else {
    AppendLE<double>(&out, v.real());
    AppendLE<double>(&out, v.imag());
  }
  return out;
}

Result<std::complex<double>> DecodeComplexUdt(std::span<const uint8_t> bytes) {
  if (bytes.size() == 8) {
    return std::complex<double>(DecodeLE<float>(bytes.data()),
                                DecodeLE<float>(bytes.data() + 4));
  }
  if (bytes.size() == 16) {
    return std::complex<double>(DecodeLE<double>(bytes.data()),
                                DecodeLE<double>(bytes.data() + 8));
  }
  return Status::InvalidArgument("complex UDT must be 8 or 16 bytes");
}

Result<Dims> IndexArgs(std::span<const engine::Value> args, size_t first,
                       size_t count) {
  Dims out(count);
  for (size_t k = 0; k < count; ++k) {
    SQLARRAY_ASSIGN_OR_RETURN(int64_t v, args[first + k].AsInt());
    out[k] = v;
  }
  return out;
}

}  // namespace sqlarray::udfs
