#include "core/ops.h"
#include "fft/fft.h"
#include "math/nnls.h"
#include "math/qr.h"
#include "math/svd.h"
#include "udfs/helpers.h"
#include "udfs/register.h"

namespace sqlarray::udfs {

namespace {

using engine::Boundary;
using engine::FunctionRegistry;
using engine::ScalarFunction;
using engine::UdfContext;
using engine::Value;

Status Reg(FunctionRegistry* reg, std::string schema, std::string name,
           int arity, double work, engine::ScalarFn fn) {
  ScalarFunction f;
  f.schema = std::move(schema);
  f.name = std::move(name);
  f.arity = arity;
  f.boundary = Boundary::kClr;
  f.managed_work_ns = work;
  f.fn = std::move(fn);
  return reg->RegisterScalar(std::move(f));
}

/// Loads any real/complex array argument into a complex128 buffer.
Result<std::pair<Dims, std::vector<fft::Complex>>> LoadComplex(
    const Value& v, UdfContext& ctx) {
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a, ArrayFromValue(v, ctx));
  ArrayRef ref = a.ref();
  std::vector<fft::Complex> data(static_cast<size_t>(ref.num_elements()));
  for (int64_t i = 0; i < ref.num_elements(); ++i) {
    SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> c, ref.GetComplex(i));
    data[i] = c;
  }
  return std::make_pair(ref.dims(), std::move(data));
}

/// Stores a complex buffer as a complex128 max array.
Result<Value> StoreComplex(const Dims& dims,
                           std::span<const fft::Complex> data) {
  SQLARRAY_ASSIGN_OR_RETURN(
      OwnedArray out,
      OwnedArray::Zeros(DType::kComplex128, dims, StorageClass::kMax));
  auto dst = out.MutableData<std::complex<double>>();
  std::copy(data.begin(), data.end(), dst.value().begin());
  return ValueFromArray(std::move(out));
}

/// Loads a rank-2 float64 array into a math::Matrix (both column-major, so
/// this is a straight copy — the zero-transform LAPACK marshaling the paper
/// gets from its column-major element order).
Result<math::Matrix> LoadMatrix(const Value& v, UdfContext& ctx) {
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a, ArrayFromValue(v, ctx));
  ArrayRef ref = a.ref();
  if (ref.rank() != 2) {
    return Status::InvalidArgument("matrix argument must have rank 2");
  }
  math::Matrix m(ref.dims()[0], ref.dims()[1]);
  for (int64_t i = 0; i < ref.num_elements(); ++i) {
    SQLARRAY_ASSIGN_OR_RETURN(double d, ref.GetDouble(i));
    m.data()[i] = d;
  }
  return m;
}

Result<std::vector<double>> LoadVector(const Value& v, UdfContext& ctx) {
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a, ArrayFromValue(v, ctx));
  ArrayRef ref = a.ref();
  if (ref.rank() != 1) {
    return Status::InvalidArgument("vector argument must have rank 1");
  }
  std::vector<double> out(static_cast<size_t>(ref.num_elements()));
  for (int64_t i = 0; i < ref.num_elements(); ++i) {
    SQLARRAY_ASSIGN_OR_RETURN(out[i], ref.GetDouble(i));
  }
  return out;
}

Result<Value> StoreMatrix(const math::Matrix& m) {
  SQLARRAY_ASSIGN_OR_RETURN(
      OwnedArray out,
      OwnedArray::Zeros(DType::kFloat64, {m.rows(), m.cols()},
                        StorageClass::kMax));
  auto dst = out.MutableData<double>();
  std::copy(m.data(), m.data() + m.rows() * m.cols(), dst.value().begin());
  return ValueFromArray(std::move(out));
}

Result<Value> StoreVector(std::span<const double> v) {
  SQLARRAY_ASSIGN_OR_RETURN(
      OwnedArray out,
      OwnedArray::Zeros(DType::kFloat64,
                        {static_cast<int64_t>(v.size())}, StorageClass::kMax));
  auto dst = out.MutableData<double>();
  std::copy(v.begin(), v.end(), dst.value().begin());
  return ValueFromArray(std::move(out));
}

/// FFT through a plan with FFTW-style aligned buffers (Sec. 5.3: "a memory
/// copy into a pre-aligned buffer is necessary but the performance gain is
/// usually worth the otherwise expensive operation").
Result<Value> FftImpl(const Value& arg, fft::Direction dir,
                      UdfContext& ctx) {
  SQLARRAY_ASSIGN_OR_RETURN(auto loaded, LoadComplex(arg, ctx));
  auto& [dims, data] = loaded;
  SQLARRAY_ASSIGN_OR_RETURN(std::unique_ptr<fft::Plan> plan,
                            fft::Plan::Create(dims));
  std::vector<fft::Complex> out(data.size());
  SQLARRAY_RETURN_IF_ERROR(plan->Execute(data, out, dir));
  return StoreComplex(dims, out);
}

/// Registers the FFT entry points for one schema.
Status RegisterFftFor(FunctionRegistry* reg, const std::string& schema) {
  SQLARRAY_RETURN_IF_ERROR(Reg(
      reg, schema, "FFTForward", 1, 3000,
      [](std::span<const Value> args, UdfContext& ctx) -> Result<Value> {
        return FftImpl(args[0], fft::Direction::kForward, ctx);
      }));
  SQLARRAY_RETURN_IF_ERROR(Reg(
      reg, schema, "FFTInverse", 1, 3000,
      [](std::span<const Value> args, UdfContext& ctx) -> Result<Value> {
        return FftImpl(args[0], fft::Direction::kInverse, ctx);
      }));
  return Status::OK();
}

}  // namespace

Status RegisterMathUdfs(FunctionRegistry* registry) {
  // FFT for the float and complex max schemas (real input produces the
  // complex transform of the same shape).
  for (const char* schema :
       {"FloatArrayMax", "ComplexArrayMax", "DoubleComplexArrayMax",
        "RealArrayMax"}) {
    SQLARRAY_RETURN_IF_ERROR(RegisterFftFor(registry, schema));
  }

  // SVD: the *gesvd contract split over three UDFs so each factor is a
  // separate array value (T-SQL scalar functions return one value).
  struct SvdPart {
    const char* name;
    int part;  // 0 = U, 1 = S, 2 = VT
  };
  for (const SvdPart& part :
       {SvdPart{"SVD_U", 0}, SvdPart{"SVD_S", 1}, SvdPart{"SVD_VT", 2}}) {
    int which = part.part;
    SQLARRAY_RETURN_IF_ERROR(Reg(
        registry, "FloatArrayMax", part.name, 1, 20000,
        [which](std::span<const Value> args, UdfContext& ctx) -> Result<Value> {
          SQLARRAY_ASSIGN_OR_RETURN(math::Matrix m, LoadMatrix(args[0], ctx));
          SQLARRAY_ASSIGN_OR_RETURN(math::SvdResult svd,
                                    math::Gesvd(m.view()));
          if (which == 0) return StoreMatrix(svd.u);
          if (which == 2) return StoreMatrix(svd.vt);
          return StoreVector(svd.s);
        }));
  }

  // Least squares solve: min ||A x - b||.
  SQLARRAY_RETURN_IF_ERROR(Reg(
      registry, "FloatArrayMax", "Solve", 2, 10000,
      [](std::span<const Value> args, UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(math::Matrix a, LoadMatrix(args[0], ctx));
        SQLARRAY_ASSIGN_OR_RETURN(std::vector<double> b,
                                  LoadVector(args[1], ctx));
        SQLARRAY_ASSIGN_OR_RETURN(std::vector<double> x,
                                  math::LeastSquares(a.view(), b));
        return StoreVector(x);
      }));

  // Weighted least squares (mask-aware spectrum expansion, Sec. 2.2).
  SQLARRAY_RETURN_IF_ERROR(Reg(
      registry, "FloatArrayMax", "SolveWeighted", 3, 12000,
      [](std::span<const Value> args, UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(math::Matrix a, LoadMatrix(args[0], ctx));
        SQLARRAY_ASSIGN_OR_RETURN(std::vector<double> b,
                                  LoadVector(args[1], ctx));
        SQLARRAY_ASSIGN_OR_RETURN(std::vector<double> w,
                                  LoadVector(args[2], ctx));
        SQLARRAY_ASSIGN_OR_RETURN(std::vector<double> x,
                                  math::WeightedLeastSquares(a.view(), b, w));
        return StoreVector(x);
      }));

  // Non-negative least squares (Sec. 2.2).
  SQLARRAY_RETURN_IF_ERROR(Reg(
      registry, "FloatArrayMax", "Nnls", 2, 15000,
      [](std::span<const Value> args, UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(math::Matrix a, LoadMatrix(args[0], ctx));
        SQLARRAY_ASSIGN_OR_RETURN(std::vector<double> b,
                                  LoadVector(args[1], ctx));
        SQLARRAY_ASSIGN_OR_RETURN(std::vector<double> x,
                                  math::Nnls(a.view(), b));
        return StoreVector(x);
      }));

  // Matrix multiply, for pipelines that expand spectra on a basis.
  SQLARRAY_RETURN_IF_ERROR(Reg(
      registry, "FloatArrayMax", "MatMul", 2, 8000,
      [](std::span<const Value> args, UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(math::Matrix a, LoadMatrix(args[0], ctx));
        SQLARRAY_ASSIGN_OR_RETURN(math::Matrix b, LoadMatrix(args[1], ctx));
        if (a.cols() != b.rows()) {
          return Status::InvalidArgument("inner matrix dimensions disagree");
        }
        math::Matrix c(a.rows(), b.cols());
        math::Gemm(false, false, 1.0, a.view(), b.view(), 0.0, c.view());
        return StoreMatrix(c);
      }));

  return Status::OK();
}

}  // namespace sqlarray::udfs
