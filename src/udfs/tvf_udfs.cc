// Table-valued functions: exploding arrays into rows (Sec. 5.1's
// "Arrays can be converted to tables by various table-valued functions,
// e.g. ToTable, MatrixToTable etc.").
#include "core/concat.h"
#include "udfs/helpers.h"
#include "udfs/register.h"

namespace sqlarray::udfs {

namespace {

using engine::TableValuedFunction;
using engine::UdfContext;
using engine::Value;

/// Builds the ToTable-family TVF for a fixed rank: rank index columns plus
/// the value column.
TableValuedFunction MakeToTable(DType dtype, StorageClass sc, int rank,
                                const char* name) {
  TableValuedFunction tvf;
  tvf.schema = std::string(DTypeSchemaPrefix(dtype)) + "Array" +
               (sc == StorageClass::kMax ? "Max" : "");
  tvf.name = name;
  tvf.arity = 1;
  static const char* kIndexNames[] = {"ix", "iy", "iz", "iw", "iv", "iu"};
  for (int k = 0; k < rank; ++k) tvf.columns.push_back(kIndexNames[k]);
  tvf.columns.push_back("v");

  tvf.fn = [dtype, sc, rank](std::span<const Value> args,
                             UdfContext& ctx)
      -> Result<std::vector<std::vector<Value>>> {
    SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a, ArrayFromValue(args[0], ctx));
    if (a.dtype() != dtype || a.storage() != sc) {
      return Status::TypeMismatch(
          "array does not match the schema's element type / storage class");
    }
    if (a.rank() != rank) {
      return Status::InvalidArgument(
          "array rank does not match this table-valued function; use the "
          "variant for rank " + std::to_string(a.rank()));
    }
    SQLARRAY_ASSIGN_OR_RETURN(std::vector<ArrayTableRow> exploded,
                              ToTable(a.ref()));
    std::vector<std::vector<Value>> rows;
    rows.reserve(exploded.size());
    for (const ArrayTableRow& r : exploded) {
      std::vector<Value> row;
      row.reserve(rank + 1);
      for (int k = 0; k < rank; ++k) row.push_back(Value::Int(r.index[k]));
      row.push_back(Value::Double(r.value));
      rows.push_back(std::move(row));
    }
    return rows;
  };
  return tvf;
}

}  // namespace

Status RegisterTableValuedUdfs(engine::FunctionRegistry* registry) {
  for (int d = 0; d < kNumDTypes; ++d) {
    DType dtype = static_cast<DType>(d);
    if (IsComplexDType(dtype)) continue;  // ToTable explodes real values
    for (StorageClass sc : {StorageClass::kShort, StorageClass::kMax}) {
      SQLARRAY_RETURN_IF_ERROR(
          registry->RegisterTvf(MakeToTable(dtype, sc, 1, "ToTable")));
      SQLARRAY_RETURN_IF_ERROR(
          registry->RegisterTvf(MakeToTable(dtype, sc, 2, "MatrixToTable")));
      SQLARRAY_RETURN_IF_ERROR(
          registry->RegisterTvf(MakeToTable(dtype, sc, 3, "CubeToTable")));
    }
  }
  return Status::OK();
}

}  // namespace sqlarray::udfs
