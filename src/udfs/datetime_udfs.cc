// DateTime scalar helpers. The array library stores datetime elements as
// int64 microseconds since the Unix epoch (Sec. 3.4 lists datetime among
// the supported base types); these UDFs convert to and from calendar form
// so DateTimeArray columns are usable from T-SQL.
#include <cinttypes>
#include <cstdio>

#include "udfs/helpers.h"
#include "udfs/register.h"

namespace sqlarray::udfs {

namespace {

using engine::Boundary;
using engine::FunctionRegistry;
using engine::ScalarFunction;
using engine::UdfContext;
using engine::Value;

/// Days from civil date (proleptic Gregorian), Howard Hinnant's algorithm.
int64_t DaysFromCivil(int64_t y, int64_t m, int64_t d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + doe - 719468;
}

/// Inverse of DaysFromCivil.
void CivilFromDays(int64_t z, int64_t* y, int64_t* m, int64_t* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yr = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const int64_t mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = yr + (*m <= 2);
}

constexpr int64_t kMicrosPerSecond = 1000000;
constexpr int64_t kMicrosPerDay = 86400 * kMicrosPerSecond;

Result<int64_t> MicrosFromParts(int64_t y, int64_t mo, int64_t d, int64_t h,
                                int64_t mi, int64_t s) {
  if (mo < 1 || mo > 12 || d < 1 || d > 31 || h < 0 || h > 23 || mi < 0 ||
      mi > 59 || s < 0 || s > 59) {
    return Status::InvalidArgument("calendar field out of range");
  }
  return DaysFromCivil(y, mo, d) * kMicrosPerDay +
         ((h * 60 + mi) * 60 + s) * kMicrosPerSecond;
}

Status Reg(FunctionRegistry* reg, std::string name, int arity,
           engine::ScalarFn fn) {
  ScalarFunction f;
  f.schema = "DateTime";
  f.name = std::move(name);
  f.arity = arity;
  f.boundary = Boundary::kClr;
  f.managed_work_ns = 300;
  f.fn = std::move(fn);
  return reg->RegisterScalar(std::move(f));
}

}  // namespace

Status RegisterDateTimeUdfs(FunctionRegistry* registry) {
  // DateTime.FromParts(y, m, d, h, mi, s) -> BIGINT microseconds.
  SQLARRAY_RETURN_IF_ERROR(Reg(
      registry, "FromParts", 6,
      [](std::span<const Value> args, UdfContext&) -> Result<Value> {
        int64_t parts[6];
        for (int i = 0; i < 6; ++i) {
          SQLARRAY_ASSIGN_OR_RETURN(parts[i], args[i].AsInt());
        }
        SQLARRAY_ASSIGN_OR_RETURN(
            int64_t micros, MicrosFromParts(parts[0], parts[1], parts[2],
                                            parts[3], parts[4], parts[5]));
        return Value::Int(micros);
      }));

  // DateTime.FromString('YYYY-MM-DD[ HH:MM:SS]').
  SQLARRAY_RETURN_IF_ERROR(Reg(
      registry, "FromString", 1,
      [](std::span<const Value> args, UdfContext&) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(std::string text, args[0].AsString());
        int64_t y = 0, mo = 0, d = 0, h = 0, mi = 0, s = 0;
        int fields =
            std::sscanf(text.c_str(),
                        "%" SCNd64 "-%" SCNd64 "-%" SCNd64 " %" SCNd64
                        ":%" SCNd64 ":%" SCNd64,
                        &y, &mo, &d, &h, &mi, &s);
        if (fields != 3 && fields != 6) {
          return Status::InvalidArgument(
              "datetime must be 'YYYY-MM-DD' or 'YYYY-MM-DD HH:MM:SS'");
        }
        SQLARRAY_ASSIGN_OR_RETURN(int64_t micros,
                                  MicrosFromParts(y, mo, d, h, mi, s));
        return Value::Int(micros);
      }));

  // DateTime.ToString(micros) -> 'YYYY-MM-DD HH:MM:SS'.
  SQLARRAY_RETURN_IF_ERROR(Reg(
      registry, "ToString", 1,
      [](std::span<const Value> args, UdfContext&) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(int64_t micros, args[0].AsInt());
        int64_t days = micros >= 0 ? micros / kMicrosPerDay
                                   : (micros - kMicrosPerDay + 1) /
                                         kMicrosPerDay;
        int64_t rem = micros - days * kMicrosPerDay;
        int64_t y, mo, d;
        CivilFromDays(days, &y, &mo, &d);
        int64_t secs = rem / kMicrosPerSecond;
        char buf[32];
        std::snprintf(buf, sizeof(buf),
                      "%04" PRId64 "-%02" PRId64 "-%02" PRId64
                      " %02" PRId64 ":%02" PRId64 ":%02" PRId64,
                      y, mo, d, secs / 3600, (secs / 60) % 60, secs % 60);
        return Value::Str(buf);
      }));

  // Calendar field extractors.
  struct Field {
    const char* name;
    int index;  // 0 = year, 1 = month, 2 = day, 3 = hour, 4 = min, 5 = sec
  };
  for (const Field& field :
       {Field{"Year", 0}, Field{"Month", 1}, Field{"Day", 2},
        Field{"Hour", 3}, Field{"Minute", 4}, Field{"Second", 5}}) {
    int index = field.index;
    SQLARRAY_RETURN_IF_ERROR(Reg(
        registry, field.name, 1,
        [index](std::span<const Value> args, UdfContext&) -> Result<Value> {
          SQLARRAY_ASSIGN_OR_RETURN(int64_t micros, args[0].AsInt());
          int64_t days = micros >= 0 ? micros / kMicrosPerDay
                                     : (micros - kMicrosPerDay + 1) /
                                           kMicrosPerDay;
          int64_t rem = micros - days * kMicrosPerDay;
          int64_t y, mo, d;
          CivilFromDays(days, &y, &mo, &d);
          int64_t secs = rem / kMicrosPerSecond;
          int64_t out[6] = {y, mo, d, secs / 3600, (secs / 60) % 60,
                            secs % 60};
          return Value::Int(out[index]);
        }));
  }

  // DateTime.AddSeconds(micros, s): interval arithmetic.
  SQLARRAY_RETURN_IF_ERROR(Reg(
      registry, "AddSeconds", 2,
      [](std::span<const Value> args, UdfContext&) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(int64_t micros, args[0].AsInt());
        SQLARRAY_ASSIGN_OR_RETURN(double s, args[1].AsDouble());
        return Value::Int(micros +
                          static_cast<int64_t>(s * kMicrosPerSecond));
      }));
  return Status::OK();
}

}  // namespace sqlarray::udfs
