#include "core/ops.h"
#include "udfs/helpers.h"
#include "udfs/register.h"

namespace sqlarray::udfs {

namespace {

using engine::Boundary;
using engine::FunctionRegistry;
using engine::ScalarFunction;
using engine::UdfContext;
using engine::Value;

Status Reg(FunctionRegistry* reg, std::string schema, std::string name,
           int arity, double work, engine::ScalarFn fn) {
  ScalarFunction f;
  f.schema = std::move(schema);
  f.name = std::move(name);
  f.arity = arity;
  f.boundary = Boundary::kClr;
  f.managed_work_ns = work;
  f.fn = std::move(fn);
  return reg->RegisterScalar(std::move(f));
}

}  // namespace

Status RegisterGenericUdfs(FunctionRegistry* registry) {
  // Array.Item(arr, i, j, ...) — dtype-dispatched on the blob header; the
  // target of the subscript sugar @a[i, j].
  SQLARRAY_RETURN_IF_ERROR(Reg(
      registry, "Array", "Item", -1, 500,
      [](std::span<const Value> args, UdfContext& ctx) -> Result<Value> {
        if (args.size() < 2) {
          return Status::InvalidArgument("Array.Item needs indices");
        }
        SQLARRAY_ASSIGN_OR_RETURN(ArrayHeader h, HeaderFromValue(args[0], ctx));
        SQLARRAY_ASSIGN_OR_RETURN(Dims idx, IndexArgs(args, 1, args.size() - 1));
        if (IsComplexDType(h.dtype)) {
          SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a, ArrayFromValue(args[0], ctx));
          SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> v,
                                    ItemComplex(a.ref(), idx));
          return Value::Bytes(
              EncodeComplexUdt(v, h.dtype == DType::kComplex64));
        }
        SQLARRAY_ASSIGN_OR_RETURN(double v, ItemFromValue(args[0], idx, ctx));
        return Value::Double(v);
      }));

  // Array.UpdateItem(arr, i, j, ..., value) — target of SET @a[i, j] = v.
  SQLARRAY_RETURN_IF_ERROR(Reg(
      registry, "Array", "UpdateItem", -1, 800,
      [](std::span<const Value> args, UdfContext& ctx) -> Result<Value> {
        if (args.size() < 3) {
          return Status::InvalidArgument(
              "Array.UpdateItem needs indices and a value");
        }
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a, ArrayFromValue(args[0], ctx));
        SQLARRAY_ASSIGN_OR_RETURN(Dims idx, IndexArgs(args, 1, args.size() - 2));
        SQLARRAY_ASSIGN_OR_RETURN(double v, args.back().AsDouble());
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out, UpdateItem(a.ref(), idx, v));
        return ValueFromArray(std::move(out));
      }));

  // Array.Slice(arr, lo, hi, drop, lo, hi, drop, ...) — target of the range
  // sugar @a[l1:h1, i, ...]: per dimension a [lo, hi) range plus a flag that
  // drops the dimension when it came from a scalar subscript.
  SQLARRAY_RETURN_IF_ERROR(Reg(
      registry, "Array", "Slice", -1, 1200,
      [](std::span<const Value> args, UdfContext& ctx) -> Result<Value> {
        if (args.size() < 4 || (args.size() - 1) % 3 != 0) {
          return Status::InvalidArgument(
              "Array.Slice takes (lo, hi, drop) triplets per dimension");
        }
        size_t rank = (args.size() - 1) / 3;
        Dims offset(rank), sizes(rank);
        std::vector<bool> drop(rank);
        for (size_t k = 0; k < rank; ++k) {
          SQLARRAY_ASSIGN_OR_RETURN(int64_t lo, args[1 + 3 * k].AsInt());
          SQLARRAY_ASSIGN_OR_RETURN(int64_t hi, args[2 + 3 * k].AsInt());
          SQLARRAY_ASSIGN_OR_RETURN(int64_t flag, args[3 + 3 * k].AsInt());
          if (hi <= lo) {
            return Status::InvalidArgument("slice bounds must satisfy lo < hi");
          }
          offset[k] = lo;
          sizes[k] = hi - lo;
          drop[k] = flag != 0;
        }
        SQLARRAY_ASSIGN_OR_RETURN(
            OwnedArray sub,
            SubarrayFromValue(args[0], offset, sizes, /*collapse=*/false, ctx));
        // Drop the dimensions that came from scalar subscripts.
        Dims kept;
        for (size_t k = 0; k < rank; ++k) {
          if (!drop[k]) kept.push_back(sizes[k]);
        }
        if (kept.empty()) kept.push_back(1);
        if (kept == sub.dims()) return ValueFromArray(std::move(sub));
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                                  Reshape(sub.ref(), std::move(kept)));
        return ValueFromArray(std::move(out));
      }));

  // Header introspection without a typed schema.
  SQLARRAY_RETURN_IF_ERROR(Reg(
      registry, "Array", "Rank", 1, 400,
      [](std::span<const Value> args, UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(ArrayHeader h, HeaderFromValue(args[0], ctx));
        return Value::Int(h.rank());
      }));
  SQLARRAY_RETURN_IF_ERROR(Reg(
      registry, "Array", "Length", 1, 400,
      [](std::span<const Value> args, UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(ArrayHeader h, HeaderFromValue(args[0], ctx));
        return Value::Int(h.num_elements());
      }));
  SQLARRAY_RETURN_IF_ERROR(Reg(
      registry, "Array", "DimSize", 2, 400,
      [](std::span<const Value> args, UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(ArrayHeader h, HeaderFromValue(args[0], ctx));
        SQLARRAY_ASSIGN_OR_RETURN(int64_t k, args[1].AsInt());
        if (k < 0 || k >= h.rank()) {
          return Status::OutOfRange("dimension index out of range");
        }
        return Value::Int(h.dims[k]);
      }));
  SQLARRAY_RETURN_IF_ERROR(Reg(
      registry, "Array", "TypeName", 1, 400,
      [](std::span<const Value> args, UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(ArrayHeader h, HeaderFromValue(args[0], ctx));
        return Value::Str(std::string(DTypeName(h.dtype)));
      }));
  SQLARRAY_RETURN_IF_ERROR(Reg(
      registry, "Array", "ToString", 1, 1500,
      [](std::span<const Value> args, UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a, ArrayFromValue(args[0], ctx));
        return Value::Str(ToArrayString(a.ref()));
      }));
  SQLARRAY_RETURN_IF_ERROR(Reg(
      registry, "Array", "SumAll", 1, 1000,
      [](std::span<const Value> args, UdfContext& ctx) -> Result<Value> {
        SQLARRAY_ASSIGN_OR_RETURN(OwnedArray a, ArrayFromValue(args[0], ctx));
        SQLARRAY_ASSIGN_OR_RETURN(double v,
                                  AggregateAll(a.ref(), AggKind::kSum));
        return Value::Double(v);
      }));

  // dbo.EmptyFunction(v, i): does nothing — measures the pure CLR boundary
  // (Query 5 of Table 1).
  SQLARRAY_RETURN_IF_ERROR(Reg(
      registry, "dbo", "EmptyFunction", 2, 0,
      [](std::span<const Value>, UdfContext&) -> Result<Value> {
        return Value::Double(0.0);
      }));

  return Status::OK();
}

}  // namespace sqlarray::udfs
