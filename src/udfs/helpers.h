// Shared plumbing between engine values and array blobs.
//
// UDF bodies receive engine::Values that hold either inline bytes (short
// arrays, or max arrays built in expressions) or out-of-page blob references
// (max arrays read from VARBINARY(MAX) columns). The helpers here parse and
// build arrays from both, using streamed partial reads for blob-backed
// arguments whenever the operation permits.
#pragma once

#include <complex>

#include "common/dims.h"
#include "common/status.h"
#include "core/array.h"
#include "core/stream_ops.h"
#include "engine/udf.h"

namespace sqlarray::udfs {

/// Materializes an array argument (full read for blob-backed values).
Result<OwnedArray> ArrayFromValue(const engine::Value& v,
                                  engine::UdfContext& ctx);

/// Reads ONLY the header of an array argument (partial read for blobs).
Result<ArrayHeader> HeaderFromValue(const engine::Value& v,
                                    engine::UdfContext& ctx);

/// Parses an integer vector argument (the paper passes offsets/sizes as
/// IntArray vectors) into a Dims list.
Result<Dims> DimsFromValue(const engine::Value& v, engine::UdfContext& ctx);

/// Wraps an owned array into a bytes value.
engine::Value ValueFromArray(OwnedArray array);

/// Item read that touches only one element for blob-backed max arrays.
Result<double> ItemFromValue(const engine::Value& v,
                             std::span<const int64_t> index,
                             engine::UdfContext& ctx);

/// Subarray extraction using streamed partial reads for blob arguments.
Result<OwnedArray> SubarrayFromValue(const engine::Value& v,
                                     std::span<const int64_t> offset,
                                     std::span<const int64_t> sizes,
                                     bool collapse, engine::UdfContext& ctx);

/// Complex scalar UDT codec (native serialization of the paper's complex
/// UDTs): 8 bytes (two float32) for single precision, 16 (two float64) for
/// double precision.
std::vector<uint8_t> EncodeComplexUdt(std::complex<double> v, bool single);
Result<std::complex<double>> DecodeComplexUdt(std::span<const uint8_t> bytes);

/// Reads the integer arguments args[first..first+count) into a Dims list.
Result<Dims> IndexArgs(std::span<const engine::Value> args, size_t first,
                       size_t count);

}  // namespace sqlarray::udfs
