#include "net/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32c.h"
#include "obs/metrics.h"

namespace sqlarray::net {

namespace {

constexpr size_t kHeaderSize = 16;

struct WireCounters {
  obs::Counter* frames_sent;
  obs::Counter* frames_received;
  obs::Counter* bytes_sent;
  obs::Counter* bytes_received;
  obs::Counter* crc_errors;

  static WireCounters& Get() {
    static WireCounters c = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return WireCounters{reg.GetCounter("net.frames_sent"),
                          reg.GetCounter("net.frames_received"),
                          reg.GetCounter("net.bytes_sent"),
                          reg.GetCounter("net.bytes_received"),
                          reg.GetCounter("net.crc_errors")};
    }();
    return c;
  }
};

/// Writes the whole buffer, restarting on EINTR / short sends.
Status SendAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("net: send failed: ") +
                              std::strerror(errno));
    }
    if (n == 0) return Status::Internal("net: send made no progress");
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `size` bytes. `*got_any` reports whether at least one byte
/// arrived before EOF, so the caller can tell a clean close between frames
/// from a mid-frame truncation.
Status RecvAll(int fd, uint8_t* data, size_t size, bool* got_any) {
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::NotFound(std::string("net: recv failed: ") +
                              std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0 && !*got_any) {
        return Status::NotFound("connection closed by peer");
      }
      return Status::InvalidArgument("net: frame truncated by peer close");
    }
    got += static_cast<size_t>(n);
    *got_any = true;
  }
  return Status::OK();
}

void PutU32At(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

uint32_t GetU32At(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

bool IsKnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kHello) &&
         type <= static_cast<uint8_t>(FrameType::kGoodbye);
}

// ---------------------------------------------------------------------------
// PayloadWriter / PayloadReader
// ---------------------------------------------------------------------------

void PayloadWriter::PutU32(uint32_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
  buf_.push_back(static_cast<uint8_t>(v >> 16));
  buf_.push_back(static_cast<uint8_t>(v >> 24));
}

void PayloadWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void PayloadWriter::PutF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void PayloadWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void PayloadWriter::PutBytes(std::span<const uint8_t> b) {
  PutU32(static_cast<uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

Result<uint8_t> PayloadReader::GetU8() {
  if (remaining() < 1) {
    return Status::InvalidArgument("net: payload underrun (u8)");
  }
  return data_[pos_++];
}

Result<uint32_t> PayloadReader::GetU32() {
  if (remaining() < 4) {
    return Status::InvalidArgument("net: payload underrun (u32)");
  }
  uint32_t v = GetU32At(data_.data() + pos_);
  pos_ += 4;
  return v;
}

Result<int32_t> PayloadReader::GetI32() {
  SQLARRAY_ASSIGN_OR_RETURN(uint32_t v, GetU32());
  return static_cast<int32_t>(v);
}

Result<uint64_t> PayloadReader::GetU64() {
  SQLARRAY_ASSIGN_OR_RETURN(uint32_t lo, GetU32());
  SQLARRAY_ASSIGN_OR_RETURN(uint32_t hi, GetU32());
  return static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
}

Result<int64_t> PayloadReader::GetI64() {
  SQLARRAY_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<double> PayloadReader::GetF64() {
  SQLARRAY_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> PayloadReader::GetString() {
  SQLARRAY_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (remaining() < len) {
    return Status::InvalidArgument("net: payload underrun (string)");
  }
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

Result<std::vector<uint8_t>> PayloadReader::GetBytes() {
  SQLARRAY_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (remaining() < len) {
    return Status::InvalidArgument("net: payload underrun (bytes)");
  }
  std::vector<uint8_t> b(data_.begin() + static_cast<ptrdiff_t>(pos_),
                         data_.begin() + static_cast<ptrdiff_t>(pos_ + len));
  pos_ += len;
  return b;
}

// ---------------------------------------------------------------------------
// Value / stats encoding
// ---------------------------------------------------------------------------

namespace {
// Wire-stable value tags; independent of engine::Value::Kind ordering.
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt64 = 1;
constexpr uint8_t kTagFloat64 = 2;
constexpr uint8_t kTagBytes = 3;
constexpr uint8_t kTagString = 4;
}  // namespace

Status AppendValue(PayloadWriter* w, const engine::Value& v) {
  using Kind = engine::Value::Kind;
  switch (v.kind()) {
    case Kind::kNull:
      w->PutU8(kTagNull);
      return Status::OK();
    case Kind::kInt64:
      w->PutU8(kTagInt64);
      w->PutI64(v.AsInt().value());
      return Status::OK();
    case Kind::kFloat64:
      w->PutU8(kTagFloat64);
      w->PutF64(v.AsDouble().value());
      return Status::OK();
    case Kind::kString:
      w->PutU8(kTagString);
      w->PutString(v.AsString().value());
      return Status::OK();
    case Kind::kBytes:
    case Kind::kBlob: {
      // Blobs are storage references; the client gets the payload itself.
      SQLARRAY_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                                v.MaterializeBytes());
      w->PutU8(kTagBytes);
      w->PutBytes(bytes);
      return Status::OK();
    }
  }
  return Status::Internal("net: unserializable value kind");
}

Result<engine::Value> ReadValue(PayloadReader* r) {
  SQLARRAY_ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  switch (tag) {
    case kTagNull:
      return engine::Value::Null();
    case kTagInt64: {
      SQLARRAY_ASSIGN_OR_RETURN(int64_t v, r->GetI64());
      return engine::Value::Int(v);
    }
    case kTagFloat64: {
      SQLARRAY_ASSIGN_OR_RETURN(double v, r->GetF64());
      return engine::Value::Double(v);
    }
    case kTagString: {
      SQLARRAY_ASSIGN_OR_RETURN(std::string s, r->GetString());
      return engine::Value::Str(std::move(s));
    }
    case kTagBytes: {
      SQLARRAY_ASSIGN_OR_RETURN(std::vector<uint8_t> b, r->GetBytes());
      return engine::Value::Bytes(std::move(b));
    }
    default:
      return Status::InvalidArgument("net: unknown value tag " +
                                     std::to_string(tag));
  }
}

void AppendStatsTrailer(PayloadWriter* w, const engine::QueryStats& stats) {
  w->PutI64(stats.rows_scanned);
  w->PutI64(stats.rows_kept);
  w->PutI64(stats.agg_steps);
  w->PutI64(stats.udf_calls);
  w->PutI64(stats.udf_bytes_marshaled);
  w->PutF64(stats.cpu_core_seconds);
  w->PutF64(stats.wall_seconds);
}

Status ReadStatsTrailer(PayloadReader* r, engine::QueryStats* stats) {
  SQLARRAY_ASSIGN_OR_RETURN(stats->rows_scanned, r->GetI64());
  SQLARRAY_ASSIGN_OR_RETURN(stats->rows_kept, r->GetI64());
  SQLARRAY_ASSIGN_OR_RETURN(stats->agg_steps, r->GetI64());
  SQLARRAY_ASSIGN_OR_RETURN(stats->udf_calls, r->GetI64());
  SQLARRAY_ASSIGN_OR_RETURN(stats->udf_bytes_marshaled, r->GetI64());
  SQLARRAY_ASSIGN_OR_RETURN(stats->cpu_core_seconds, r->GetF64());
  SQLARRAY_ASSIGN_OR_RETURN(stats->wall_seconds, r->GetF64());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Framed I/O
// ---------------------------------------------------------------------------

Status WriteFrame(int fd, FrameType type, std::span<const uint8_t> payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("net: frame payload too large");
  }
  uint8_t header[kHeaderSize];
  PutU32At(header, kFrameMagic);
  header[4] = kProtocolVersion;
  header[5] = static_cast<uint8_t>(type);
  header[6] = 0;
  header[7] = 0;
  PutU32At(header + 8, static_cast<uint32_t>(payload.size()));
  PutU32At(header + 12,
           payload.empty() ? 0 : Crc32c(payload.data(), payload.size()));
  SQLARRAY_RETURN_IF_ERROR(SendAll(fd, header, kHeaderSize));
  if (!payload.empty()) {
    SQLARRAY_RETURN_IF_ERROR(SendAll(fd, payload.data(), payload.size()));
  }
  WireCounters& c = WireCounters::Get();
  c.frames_sent->Add(1);
  c.bytes_sent->Add(static_cast<int64_t>(kHeaderSize + payload.size()));
  return Status::OK();
}

Result<Frame> ReadFrame(int fd, uint32_t max_payload) {
  uint8_t header[kHeaderSize];
  bool got_any = false;
  SQLARRAY_RETURN_IF_ERROR(RecvAll(fd, header, kHeaderSize, &got_any));
  if (GetU32At(header) != kFrameMagic) {
    return Status::InvalidArgument("net: bad frame magic");
  }
  if (header[4] != kProtocolVersion) {
    return Status::InvalidArgument("net: unsupported protocol version " +
                                   std::to_string(header[4]));
  }
  if (!IsKnownFrameType(header[5])) {
    return Status::InvalidArgument("net: unknown frame type " +
                                   std::to_string(header[5]));
  }
  if (header[6] != 0 || header[7] != 0) {
    return Status::InvalidArgument("net: reserved frame flags set");
  }
  uint32_t len = GetU32At(header + 8);
  if (len > max_payload) {
    return Status::InvalidArgument("net: frame payload length " +
                                   std::to_string(len) + " exceeds cap " +
                                   std::to_string(max_payload));
  }
  uint32_t want_crc = GetU32At(header + 12);
  Frame frame;
  frame.type = static_cast<FrameType>(header[5]);
  frame.payload.resize(len);
  if (len > 0) {
    SQLARRAY_RETURN_IF_ERROR(
        RecvAll(fd, frame.payload.data(), len, &got_any));
  }
  uint32_t got_crc =
      len == 0 ? 0 : Crc32c(frame.payload.data(), frame.payload.size());
  if (got_crc != want_crc) {
    WireCounters::Get().crc_errors->Add(1);
    return Status::Corruption("net: frame payload CRC mismatch");
  }
  WireCounters& c = WireCounters::Get();
  c.frames_received->Add(1);
  c.bytes_received->Add(static_cast<int64_t>(kHeaderSize + len));
  return frame;
}

std::vector<uint8_t> EncodeError(const Status& st) {
  PayloadWriter w;
  w.PutI32(StatusCodeToWire(st.code()));
  w.PutI64(st.retry_after_ms());
  w.PutString(st.message());
  return w.Take();
}

Status DecodeError(std::span<const uint8_t> payload) {
  PayloadReader r(payload);
  Result<int32_t> wire_code = r.GetI32();
  Result<int64_t> retry_after_ms = r.GetI64();
  Result<std::string> message = r.GetString();
  if (!wire_code.ok() || !retry_after_ms.ok() || !message.ok()) {
    return Status::InvalidArgument("net: malformed ERROR frame");
  }
  return Status(StatusCodeFromWire(wire_code.value()),
                std::move(message).value(), retry_after_ms.value());
}

}  // namespace sqlarray::net
