#include "net/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace sqlarray::net {

namespace {

struct ServerCounters {
  obs::Counter* accepted;
  obs::Counter* rejected;
  obs::Counter* closed;
  obs::Counter* queries;
  obs::Counter* cancels;
  obs::Counter* errors_sent;
  obs::Counter* disconnect_kills;
  obs::Gauge* open;

  static ServerCounters& Get() {
    static ServerCounters c = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return ServerCounters{reg.GetCounter("net.connections_accepted"),
                            reg.GetCounter("net.connections_rejected"),
                            reg.GetCounter("net.connections_closed"),
                            reg.GetCounter("net.queries"),
                            reg.GetCounter("net.cancels"),
                            reg.GetCounter("net.errors_sent"),
                            reg.GetCounter("net.disconnect_kills"),
                            reg.GetGauge("net.connections_open")};
    }();
    return c;
  }
};

}  // namespace

NetServer::NetServer(server::ArrayServer* server, AuthManager* auth,
                     NetServerConfig config)
    : server_(server), auth_(auth), config_(std::move(config)) {}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("net: server already started");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("net: socket failed: ") +
                            std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("net: bad bind address '" +
                                   config_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal(std::string("net: bind failed: ") +
                            std::strerror(errno));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::Internal(std::string("net: listen failed: ") +
                            std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return Status::Internal(std::string("net: getsockname failed: ") +
                            std::strerror(errno));
  }
  bound_port_ = ntohs(bound.sin_port);
  listen_fd_.store(fd, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void NetServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Unblock accept() by closing the listener.
  int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // Unblock every handler's blocking recv; the handlers then run their own
  // teardown (kill in-flight statement, close session, close socket).
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, c] : connections_) conns.push_back(c);
  }
  for (auto& c : conns) {
    std::lock_guard<std::mutex> lock(c->write_mu);
    if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
  }
  std::map<uint64_t, std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    handlers = std::move(handler_threads_);
    handler_threads_.clear();
  }
  for (auto& [id, t] : handlers) {
    if (t.joinable()) t.join();
  }
}

int NetServer::open_connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(connections_.size());
}

void NetServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) break;  // retired by Stop()
    int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop()
    }
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    uint64_t id;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (static_cast<int>(connections_.size()) >= config_.max_connections) {
        ServerCounters::Get().rejected->Add(1);
        std::vector<uint8_t> payload = EncodeError(Status::ResourceExhausted(
            "server connection limit reached", /*retry_after_ms=*/50));
        (void)WriteFrame(fd, FrameType::kError, payload);
        ::close(fd);
        continue;
      }
      id = next_conn_id_++;
      connections_.emplace(id, conn);
    }
    ServerCounters::Get().accepted->Add(1);
    ServerCounters::Get().open->Set(open_connections());
    std::thread handler([this, id, conn] {
      HandleConnection(conn);
      {
        std::lock_guard<std::mutex> lock(mu_);
        connections_.erase(id);
      }
      ServerCounters::Get().closed->Add(1);
      ServerCounters::Get().open->Set(open_connections());
    });
    {
      std::lock_guard<std::mutex> lock(mu_);
      handler_threads_.emplace(id, std::move(handler));
    }
  }
}

void NetServer::HandleConnection(std::shared_ptr<Connection> conn) {
  if (Handshake(conn.get())) {
    while (running_.load(std::memory_order_acquire)) {
      Result<Frame> frame = ReadFrame(conn->fd, config_.max_frame_payload);
      if (!frame.ok()) {
        if (frame.status().code() != StatusCode::kNotFound) {
          // Malformed traffic (bad magic, oversized length, CRC damage):
          // answer with a typed ERROR so a confused-but-honest client
          // learns why, then drop the connection. The server survives.
          SendError(conn.get(), frame.status());
        } else if (conn->query_running.load(std::memory_order_acquire)) {
          // Disconnect with a statement in flight: the client is gone, so
          // nobody will consume the result. Kill it; the cooperative
          // cancellation unwinds the statement and the WAL rolls back any
          // open transaction.
          ServerCounters::Get().disconnect_kills->Add(1);
          (void)server_->KillQuery(conn->session_id);
        }
        break;
      }
      switch (frame->type) {
        case FrameType::kQuery: {
          PayloadReader r(frame->payload);
          Result<std::string> sql = r.GetString();
          if (!sql.ok()) {
            SendError(conn.get(), sql.status());
            break;
          }
          if (conn->query_running.load(std::memory_order_acquire)) {
            SendError(conn.get(),
                      Status::InvalidArgument(
                          "a statement is already in flight on this "
                          "connection"));
            break;
          }
          if (conn->query_thread.joinable()) conn->query_thread.join();
          ServerCounters::Get().queries->Add(1);
          conn->query_running.store(true, std::memory_order_release);
          Connection* raw = conn.get();
          std::string sql_text = std::move(sql).value();
          conn->query_thread = std::thread([this, raw, sql_text] {
            RunStatement(raw, sql_text);
          });
          break;
        }
        case FrameType::kCancel:
          ServerCounters::Get().cancels->Add(1);
          (void)server_->KillQuery(conn->session_id);
          break;
        case FrameType::kPing: {
          std::lock_guard<std::mutex> lock(conn->write_mu);
          if (conn->fd >= 0) {
            (void)WriteFrame(conn->fd, FrameType::kPing, frame->payload);
          }
          break;
        }
        case FrameType::kGoodbye: {
          {
            std::lock_guard<std::mutex> lock(conn->write_mu);
            if (conn->fd >= 0) {
              (void)WriteFrame(conn->fd, FrameType::kGoodbye, {});
            }
          }
          TeardownConnection(conn.get());
          return;
        }
        default:
          SendError(conn.get(),
                    Status::InvalidArgument("unexpected frame type after "
                                            "handshake"));
          break;
      }
    }
  }
  TeardownConnection(conn.get());
}

bool NetServer::Handshake(Connection* conn) {
  // HELLO first: anything else is a stray peer speaking the wrong
  // protocol, told so via a typed ERROR.
  Result<Frame> hello = ReadFrame(conn->fd, config_.max_frame_payload);
  if (!hello.ok()) {
    if (hello.status().code() != StatusCode::kNotFound) {
      SendError(conn, hello.status());
    }
    return false;
  }
  if (hello->type != FrameType::kHello) {
    SendError(conn, Status::InvalidArgument("expected HELLO"));
    return false;
  }
  {
    PayloadReader r(hello->payload);
    Result<uint32_t> version = r.GetU32();
    if (!version.ok() || version.value() != kProtocolVersion) {
      SendError(conn,
                Status::InvalidArgument("unsupported protocol version"));
      return false;
    }
    // Client name (ignored beyond validation; future: per-client obs).
    if (!r.GetString().ok()) {
      SendError(conn, Status::InvalidArgument("malformed HELLO"));
      return false;
    }
  }
  {
    PayloadWriter w;
    w.PutU32(kProtocolVersion);
    w.PutString("sqlarray");
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (!WriteFrame(conn->fd, FrameType::kHello, w.buffer()).ok()) {
      return false;
    }
  }

  // AUTH attempts until success, disconnect, or protocol abuse. The
  // AuthManager's lockout bounds guessing; the session-limit check happens
  // before the ArrayServer ever sees the user.
  while (running_.load(std::memory_order_acquire)) {
    Result<Frame> frame = ReadFrame(conn->fd, config_.max_frame_payload);
    if (!frame.ok()) {
      if (frame.status().code() != StatusCode::kNotFound) {
        SendError(conn, frame.status());
      }
      return false;
    }
    if (frame->type == FrameType::kPing) {
      std::lock_guard<std::mutex> lock(conn->write_mu);
      if (conn->fd >= 0) {
        (void)WriteFrame(conn->fd, FrameType::kPing, frame->payload);
      }
      continue;
    }
    if (frame->type == FrameType::kGoodbye) {
      std::lock_guard<std::mutex> lock(conn->write_mu);
      if (conn->fd >= 0) (void)WriteFrame(conn->fd, FrameType::kGoodbye, {});
      return false;
    }
    if (frame->type != FrameType::kAuth) {
      SendError(conn, Status::PermissionDenied(
                          "authenticate before issuing statements"));
      return false;
    }
    PayloadReader r(frame->payload);
    Result<std::string> user = r.GetString();
    Result<std::string> password = user.ok() ? r.GetString() : user;
    if (!user.ok() || !password.ok()) {
      SendError(conn, Status::InvalidArgument("malformed AUTH"));
      return false;
    }
    Status auth = auth_->Authenticate(user.value(), password.value());
    if (!auth.ok()) {
      SendError(conn, auth);
      continue;  // the client may retry with better credentials
    }
    Status lease = auth_->AcquireSession(user.value());
    if (!lease.ok()) {
      // Transient (another connection holds the slot): the ERROR carries a
      // retry-after hint, so let the client retry on this connection.
      SendError(conn, lease);
      continue;
    }
    conn->user = user.value();
    conn->session_id = server_->OpenSession();
    PayloadWriter w;
    w.PutU64(static_cast<uint64_t>(conn->session_id));
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (conn->fd < 0 ||
        !WriteFrame(conn->fd, FrameType::kAuth, w.buffer()).ok()) {
      return false;
    }
    return true;
  }
  return false;
}

void NetServer::RunStatement(Connection* conn, std::string sql) {
  server::StatementOutcome outcome = server_->Execute(conn->session_id, sql);
  // query_running flips false under the write lock, before the statement's
  // final frame (ERROR or the done-trailer ROWS chunk) hits the socket: the
  // client may legally send its next QUERY the instant it sees that frame,
  // and the handler thread must not read the stale "busy" flag.
  if (!outcome.ok()) {
    ServerCounters::Get().errors_sent->Add(1);
    std::vector<uint8_t> payload = EncodeError(outcome.status);
    std::lock_guard<std::mutex> lock(conn->write_mu);
    conn->query_running.store(false, std::memory_order_release);
    if (conn->fd >= 0) {
      (void)WriteFrame(conn->fd, FrameType::kError, payload);
    }
  } else {
    // Write failures mean the client vanished mid-stream; the handler
    // thread notices the disconnect and tears the connection down.
    (void)StreamOutcome(conn, outcome);
    conn->query_running.store(false, std::memory_order_release);
  }
}

Status NetServer::StreamOutcome(Connection* conn,
                                const server::StatementOutcome& outcome) {
  const auto& sets = outcome.result_sets;
  auto send = [&](const std::vector<uint8_t>& payload,
                  bool statement_done) -> Status {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (statement_done) {
      conn->query_running.store(false, std::memory_order_release);
    }
    if (conn->fd < 0) return Status::Internal("net: connection closed");
    return WriteFrame(conn->fd, FrameType::kRows, payload);
  };

  if (sets.empty()) {
    // DDL/DML batches produce no result sets but still need a terminator.
    PayloadWriter w;
    w.PutU32(kRowsStatementDone);
    w.PutU32(kNoResultSet);
    w.PutU32(0);   // no rows in this chunk
    w.PutBytes({});  // empty row payload
    w.PutU32(0);   // statement produced zero result sets
    AppendStatsTrailer(&w, outcome.stats);
    return send(w.buffer(), /*statement_done=*/true);
  }

  for (size_t ri = 0; ri < sets.size(); ++ri) {
    const engine::ResultSet& rs = sets[ri];
    size_t row = 0;
    bool first_chunk = true;
    do {
      // Serialize up to rows_per_chunk rows, stopping early past the soft
      // byte budget so one chunk of wide rows cannot balloon.
      PayloadWriter rows;
      uint32_t nrows = 0;
      while (row < rs.rows.size() &&
             nrows < static_cast<uint32_t>(config_.rows_per_chunk) &&
             rows.size() < static_cast<size_t>(config_.chunk_soft_bytes)) {
        for (const engine::Value& v : rs.rows[row]) {
          SQLARRAY_RETURN_IF_ERROR(AppendValue(&rows, v));
        }
        ++row;
        ++nrows;
      }
      const bool last_chunk = row == rs.rows.size();
      const bool statement_done = last_chunk && ri + 1 == sets.size();
      uint32_t flags = 0;
      if (first_chunk) flags |= kRowsFirstChunk;
      if (last_chunk) flags |= kRowsLastChunk;
      if (statement_done) flags |= kRowsStatementDone;

      PayloadWriter w;
      w.PutU32(flags);
      w.PutU32(static_cast<uint32_t>(ri));
      if (first_chunk) {
        w.PutU32(static_cast<uint32_t>(rs.columns.size()));
        for (const std::string& c : rs.columns) w.PutString(c);
      }
      w.PutU32(nrows);
      const std::vector<uint8_t>& encoded = rows.buffer();
      w.PutBytes(encoded);
      if (statement_done) {
        w.PutU32(static_cast<uint32_t>(sets.size()));
        AppendStatsTrailer(&w, outcome.stats);
      }
      SQLARRAY_RETURN_IF_ERROR(send(w.buffer(), statement_done));
      first_chunk = false;
    } while (row < rs.rows.size());
  }
  return Status::OK();
}

void NetServer::SendError(Connection* conn, const Status& st) {
  ServerCounters::Get().errors_sent->Add(1);
  std::vector<uint8_t> payload = EncodeError(st);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->fd >= 0) {
    (void)WriteFrame(conn->fd, FrameType::kError, payload);
  }
}

void NetServer::TeardownConnection(Connection* conn) {
  if (conn->query_running.load(std::memory_order_acquire)) {
    (void)server_->KillQuery(conn->session_id);
  }
  if (conn->query_thread.joinable()) conn->query_thread.join();
  if (conn->session_id >= 0) {
    // Idempotent: a GOODBYE teardown racing a disconnect teardown may pass
    // through here twice.
    (void)server_->CloseSession(conn->session_id);
    conn->session_id = -1;
    auth_->ReleaseSession(conn->user);
    conn->user.clear();
  }
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
}

}  // namespace sqlarray::net
