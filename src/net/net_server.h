// Networked front-end: a socket listener in front of server::ArrayServer.
//
// Threading model: one listener thread accepts connections; each connection
// gets a dedicated handler thread that owns the socket's read side and the
// connection state machine (HELLO → AUTH → query loop). A QUERY runs on a
// per-statement worker thread so the handler keeps reading while the
// statement executes — that is what makes CANCEL frames and client
// disconnects effective mid-query: both fire ArrayServer::KillQuery, the
// cooperative cancellation machinery unwinds the statement, and the WAL
// rolls back whatever transaction the kill left open. Socket writes are
// serialized per connection (the worker streams ROWS chunks while the
// handler may answer PING).
//
// Admission control, per-session deadlines, memory budgets, KillQuery, and
// the slow-query watchdog all apply unchanged — the NetServer adds no
// second scheduling layer, it only moves ArrayServer's caller threads to
// the other end of a socket. Overload rejections travel as typed ERROR
// frames carrying kResourceExhausted and the controller's retry-after
// hint.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "net/auth.h"
#include "net/wire.h"
#include "server/server.h"

namespace sqlarray::net {

struct NetServerConfig {
  /// Loopback by default: this is a science-cluster service, not an
  /// internet listener; binding wider is an explicit decision.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read the bound one from port().
  uint16_t port = 0;
  /// Reception cap on one frame's payload (hostile-length defense).
  uint32_t max_frame_payload = kMaxFramePayload;
  /// Row-streaming chunk bounds: a ROWS frame closes when it reaches
  /// either limit, so a huge SELECT streams in bounded frames instead of
  /// materializing a second full copy in one buffer.
  int64_t rows_per_chunk = 256;
  int64_t chunk_soft_bytes = 256 * 1024;
  /// Concurrent connections; further accepts get a typed ERROR + close.
  int max_connections = 128;
};

class NetServer {
 public:
  /// The server fronts an existing ArrayServer and AuthManager; it owns
  /// neither (tests and benches share them with in-process callers).
  NetServer(server::ArrayServer* server, AuthManager* auth,
            NetServerConfig config = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and starts the accept loop. kInternal on bind errors
  /// (port in use, bad address).
  Status Start();

  /// Stops accepting, kills in-flight statements, unblocks every handler,
  /// joins all threads, and closes all sessions. Idempotent.
  void Stop();

  /// The bound TCP port (valid after Start); 0 before.
  uint16_t port() const { return bound_port_; }

  int open_connections() const;

 private:
  struct Connection {
    int fd = -1;
    int64_t session_id = -1;
    std::string user;
    /// Serializes socket writes between the handler thread (PING echo,
    /// errors) and the statement worker (ROWS streaming).
    std::mutex write_mu;
    std::atomic<bool> query_running{false};
    std::thread query_thread;
  };

  void AcceptLoop();
  void HandleConnection(std::shared_ptr<Connection> conn);
  /// Runs the HELLO + AUTH prologue. On success the connection has an open
  /// ArrayServer session. Fails closed: any protocol violation gets a
  /// typed ERROR frame and a false return (caller drops the connection).
  bool Handshake(Connection* conn);
  /// Executes one QUERY and streams the outcome (worker thread body).
  void RunStatement(Connection* conn, std::string sql);
  Status StreamOutcome(Connection* conn,
                       const server::StatementOutcome& outcome);
  void SendError(Connection* conn, const Status& st);
  /// Kills any in-flight statement, joins the worker, closes the session
  /// (idempotent), releases the auth lease, and closes the socket.
  void TeardownConnection(Connection* conn);

  server::ArrayServer* const server_;
  AuthManager* const auth_;
  const NetServerConfig config_;

  std::atomic<bool> running_{false};
  /// Atomic: Stop() retires the fd while AcceptLoop reads it.
  std::atomic<int> listen_fd_{-1};
  uint16_t bound_port_ = 0;
  std::thread accept_thread_;

  mutable std::mutex mu_;  ///< guards connections_ and handler_threads_
  std::map<uint64_t, std::shared_ptr<Connection>> connections_;
  std::map<uint64_t, std::thread> handler_threads_;
  uint64_t next_conn_id_ = 1;
};

}  // namespace sqlarray::net
