// Length-prefixed binary wire protocol for the networked front-end.
//
// Every message on the socket is one frame: a fixed 16-byte header followed
// by a CRC32C-protected payload. The header is little-endian:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//        0     4  magic       0x53514157 ("WQSA" on disk; rejects strays)
//        4     1  version     protocol version, currently 1
//        5     1  type        FrameType
//        6     2  flags       reserved, must be 0
//        8     4  payload_len bytes following the header (bounded)
//       12     4  payload_crc CRC32C of the payload bytes (0 when empty)
//
// The CRC reuses the WAL's checksum code (common/crc32c.h), so a frame
// damaged in flight surfaces as kCorruption exactly like a torn log record.
// Frames whose header fails validation (bad magic/version/type, oversized
// length) are kInvalidArgument; a clean peer shutdown mid-header is
// kNotFound("connection closed by peer") so teardown can tell disconnects
// from protocol abuse.
//
// Conversation shape (client → server unless noted):
//   HELLO   version negotiation; server replies HELLO.
//   AUTH    user + password; server replies AUTH (session id) or ERROR.
//   QUERY   one SQL batch; server streams ROWS chunks, the last chunk
//           carrying the statement outcome trailer, or a single ERROR.
//   ROWS    (server) one chunk of a result set; see RowsChunk.
//   ERROR   (server) stable numeric StatusCode + retry-after + message.
//   CANCEL  kills the in-flight statement (server sends no direct reply;
//           the kill surfaces as an ERROR ending the QUERY stream).
//   PING    liveness probe; the receiver echoes the frame back verbatim.
//   GOODBYE clean close; server acks with GOODBYE and drops the session.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "engine/exec.h"
#include "engine/value.h"

namespace sqlarray::net {

inline constexpr uint32_t kFrameMagic = 0x53514157u;
inline constexpr uint8_t kProtocolVersion = 1;

/// Hard ceiling on one frame's payload. Large result sets stream as many
/// ROWS chunks, so a compliant peer never needs a bigger frame; anything
/// claiming one is malformed or hostile and is rejected before allocation.
inline constexpr uint32_t kMaxFramePayload = 16u * 1024 * 1024;

enum class FrameType : uint8_t {
  kHello = 1,
  kAuth = 2,
  kQuery = 3,
  kRows = 4,
  kError = 5,
  kCancel = 6,
  kPing = 7,
  kGoodbye = 8,
};

/// True for the frame types a peer may legally send (reception filter).
bool IsKnownFrameType(uint8_t type);

/// Bit flags inside a ROWS payload (not the reserved header flags).
enum RowsFlags : uint32_t {
  /// First chunk of a result set: the payload carries the column names.
  kRowsFirstChunk = 1u << 0,
  /// Last chunk of this result set.
  kRowsLastChunk = 1u << 1,
  /// Final frame of the statement: the payload ends with the outcome
  /// trailer (result-set count + execution statistics).
  kRowsStatementDone = 1u << 2,
};

/// result_index value of a statement-done frame that carries no rows
/// (DDL/DML batches produce zero result sets but still need a terminator).
inline constexpr uint32_t kNoResultSet = 0xFFFFFFFFu;

struct Frame {
  FrameType type = FrameType::kPing;
  std::vector<uint8_t> payload;
};

// ---------------------------------------------------------------------------
// Payload serialization: a bounds-checked little-endian writer/reader pair.
// ---------------------------------------------------------------------------

class PayloadWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF64(double v);
  /// u32 length + raw bytes.
  void PutString(std::string_view s);
  void PutBytes(std::span<const uint8_t> b);

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Reads the writer's encoding back; every getter fails with
/// kInvalidArgument instead of reading past the end, so a truncated or
/// hostile payload can never over-read.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const uint8_t> data) : data_(data) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<int32_t> GetI32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetF64();
  Result<std::string> GetString();
  Result<std::vector<uint8_t>> GetBytes();

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Value / result-set encoding shared by NetServer and NetClient.
// ---------------------------------------------------------------------------

/// Serializes one engine value. Kind tags are wire-stable: 0 null,
/// 1 int64, 2 float64, 3 bytes, 4 string. Blob references are materialized
/// server-side and travel as bytes — the client never sees storage ids.
Status AppendValue(PayloadWriter* w, const engine::Value& v);
Result<engine::Value> ReadValue(PayloadReader* r);

/// Execution statistics carried in the statement-done trailer.
void AppendStatsTrailer(PayloadWriter* w, const engine::QueryStats& stats);
Status ReadStatsTrailer(PayloadReader* r, engine::QueryStats* stats);

// ---------------------------------------------------------------------------
// Framed socket I/O. `fd` is a connected stream socket; both helpers handle
// partial transfers and EINTR. Writers never raise SIGPIPE.
// ---------------------------------------------------------------------------

/// Sends one frame (header + payload). Bumps net.frames_sent/net.bytes_sent.
Status WriteFrame(int fd, FrameType type, std::span<const uint8_t> payload);

/// Reads one frame. Distinguishes clean peer close before any header byte
/// (kNotFound) from truncation mid-frame (kInvalidArgument), header abuse
/// (kInvalidArgument), and payload CRC mismatch (kCorruption). Bumps
/// net.frames_received/net.bytes_received.
Result<Frame> ReadFrame(int fd, uint32_t max_payload = kMaxFramePayload);

/// Builds the ERROR payload for a status: i32 wire code, i64 retry-after
/// milliseconds, message string.
std::vector<uint8_t> EncodeError(const Status& st);
/// Decodes an ERROR payload back into a Status carrying the same stable
/// code, retry-after hint, and message. A payload that does not parse
/// decodes as kInvalidArgument("malformed ERROR frame").
Status DecodeError(std::span<const uint8_t> payload);

}  // namespace sqlarray::net
