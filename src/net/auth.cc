#include "net/auth.h"

#include <cstring>
#include <random>
#include <vector>

#include "obs/metrics.h"

namespace sqlarray::net {

namespace {

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4), self-contained: the image carries no crypto
// library, and the WAL's CRC32C is an integrity check, not a one-way
// function. Performance is irrelevant here — hashing happens once per
// authentication attempt, not on a query path.
// ---------------------------------------------------------------------------

constexpr uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

std::array<uint8_t, 32> Sha256(const uint8_t* data, size_t len) {
  uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                   0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  // Message with padding: data || 0x80 || zeros || 64-bit bit length.
  std::vector<uint8_t> msg(data, data + len);
  msg.push_back(0x80);
  while (msg.size() % 64 != 56) msg.push_back(0);
  uint64_t bits = static_cast<uint64_t>(len) * 8;
  for (int i = 7; i >= 0; --i) {
    msg.push_back(static_cast<uint8_t>(bits >> (8 * i)));
  }
  for (size_t off = 0; off < msg.size(); off += 64) {
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<uint32_t>(msg[off + 4 * i]) << 24) |
             (static_cast<uint32_t>(msg[off + 4 * i + 1]) << 16) |
             (static_cast<uint32_t>(msg[off + 4 * i + 2]) << 8) |
             static_cast<uint32_t>(msg[off + 4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
    uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
    for (int i = 0; i < 64; ++i) {
      uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
      uint32_t ch = (e & f) ^ (~e & g);
      uint32_t t1 = hh + s1 + ch + kSha256K[i] + w[i];
      uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
      uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      uint32_t t2 = s0 + maj;
      hh = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    h[0] += a; h[1] += b; h[2] += c; h[3] += d;
    h[4] += e; h[5] += f; h[6] += g; h[7] += hh;
  }
  std::array<uint8_t, 32> out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<uint8_t>(h[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(h[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(h[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(h[i]);
  }
  return out;
}

constexpr int kStretchRounds = 1024;

std::array<uint8_t, 32> HashPassword(const std::array<uint8_t, 16>& salt,
                                     const std::string& password) {
  std::vector<uint8_t> buf(salt.begin(), salt.end());
  buf.insert(buf.end(), password.begin(), password.end());
  std::array<uint8_t, 32> digest = Sha256(buf.data(), buf.size());
  // Simple stretching: re-hash salt||digest so each verification costs
  // kStretchRounds compressions, slowing offline guessing.
  for (int i = 1; i < kStretchRounds; ++i) {
    std::vector<uint8_t> round(salt.begin(), salt.end());
    round.insert(round.end(), digest.begin(), digest.end());
    digest = Sha256(round.data(), round.size());
  }
  return digest;
}

/// Constant-time digest comparison: no early exit for an attacker to time.
bool DigestEquals(const std::array<uint8_t, 32>& a,
                  const std::array<uint8_t, 32>& b) {
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace

AuthManager::AuthManager(AuthConfig config)
    : config_(config),
      auth_success_(
          obs::MetricsRegistry::Global().GetCounter("net.auth_success")),
      auth_failures_(
          obs::MetricsRegistry::Global().GetCounter("net.auth_failures")),
      auth_lockouts_(
          obs::MetricsRegistry::Global().GetCounter("net.auth_lockouts")),
      session_limit_rejects_(obs::MetricsRegistry::Global().GetCounter(
          "net.session_limit_rejects")) {}

Status AuthManager::AddUser(const std::string& user,
                            const std::string& password) {
  std::lock_guard<std::mutex> lock(mu_);
  if (users_.count(user) != 0) {
    return Status::AlreadyExists("user '" + user + "' already exists");
  }
  UserEntry entry;
  // Salts need uniqueness, not secrecy: hardware entropy mixed with a
  // monotonic sequence so two users with the same password never share a
  // hash, even if random_device is weak on this platform.
  std::random_device rd;
  uint64_t seq = ++salt_seq_;
  for (size_t i = 0; i < entry.salt.size(); i += 4) {
    uint32_t word = rd() ^ static_cast<uint32_t>(seq >> (i % 2 ? 32 : 0));
    std::memcpy(entry.salt.data() + i, &word, 4);
  }
  entry.hash = HashPassword(entry.salt, password);
  users_.emplace(user, entry);
  return Status::OK();
}

Status AuthManager::SetPassword(const std::string& user,
                                const std::string& password) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = users_.find(user);
  if (it == users_.end()) {
    return Status::NotFound("no user '" + user + "'");
  }
  it->second.hash = HashPassword(it->second.salt, password);
  it->second.consecutive_failures = 0;
  it->second.locked_until = {};
  return Status::OK();
}

Status AuthManager::RemoveUser(const std::string& user) {
  std::lock_guard<std::mutex> lock(mu_);
  if (users_.erase(user) == 0) {
    return Status::NotFound("no user '" + user + "'");
  }
  return Status::OK();
}

Status AuthManager::Authenticate(const std::string& user,
                                 const std::string& password) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = users_.find(user);
  if (it == users_.end()) {
    // Indistinguishable from a wrong password, so the wire leaks no user
    // directory.
    auth_failures_->Add(1);
    return Status::PermissionDenied("authentication failed");
  }
  UserEntry& entry = it->second;
  auto now = std::chrono::steady_clock::now();
  if (entry.locked_until > now) {
    auth_failures_->Add(1);
    int64_t remaining_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                               entry.locked_until - now)
                               .count();
    return Status(StatusCode::kPermissionDenied,
                  "account locked after repeated failures",
                  /*retry_after_ms=*/remaining_ms + 1);
  }
  if (!DigestEquals(HashPassword(entry.salt, password), entry.hash)) {
    auth_failures_->Add(1);
    if (++entry.consecutive_failures >= config_.max_failures) {
      entry.locked_until =
          now + std::chrono::milliseconds(config_.lockout_ms);
      entry.consecutive_failures = 0;
      auth_lockouts_->Add(1);
      return Status(StatusCode::kPermissionDenied,
                    "authentication failed; account locked",
                    /*retry_after_ms=*/config_.lockout_ms);
    }
    return Status::PermissionDenied("authentication failed");
  }
  entry.consecutive_failures = 0;
  auth_success_->Add(1);
  return Status::OK();
}

Status AuthManager::AcquireSession(const std::string& user) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = users_.find(user);
  if (it == users_.end()) {
    return Status::PermissionDenied("authentication failed");
  }
  if (config_.max_sessions_per_user > 0 &&
      it->second.active_sessions >= config_.max_sessions_per_user) {
    session_limit_rejects_->Add(1);
    return Status::ResourceExhausted(
        "user '" + user + "' is at its session limit (" +
            std::to_string(config_.max_sessions_per_user) + ")",
        /*retry_after_ms=*/10);
  }
  ++it->second.active_sessions;
  return Status::OK();
}

void AuthManager::ReleaseSession(const std::string& user) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = users_.find(user);
  if (it != users_.end() && it->second.active_sessions > 0) {
    --it->second.active_sessions;
  }
}

int AuthManager::active_sessions(const std::string& user) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = users_.find(user);
  return it == users_.end() ? 0 : it->second.active_sessions;
}

}  // namespace sqlarray::net
