// Per-user authentication for the networked front-end.
//
// The credential store keeps no plaintext: each user gets a random 16-byte
// salt and an iterated SHA-256 of salt||password (1024 stretching rounds),
// compared in constant time. Brute-force over the wire is throttled by a
// consecutive-failure lockout per user, and each user carries a concurrent-
// session cap checked before ArrayServer::OpenSession — a runaway script
// cannot monopolize the admission queue by opening hundreds of sessions.
//
// All operations are thread-safe; the NetServer calls Authenticate and
// Acquire/ReleaseSession from its per-connection handler threads.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

namespace sqlarray::obs {
class Counter;
}  // namespace sqlarray::obs

namespace sqlarray::net {

struct AuthConfig {
  /// Consecutive failed attempts before the account locks.
  int max_failures = 3;
  /// How long a locked account refuses even correct passwords.
  int64_t lockout_ms = 250;
  /// Concurrent sessions one user may hold; 0 disables the cap.
  int max_sessions_per_user = 8;
};

class AuthManager {
 public:
  explicit AuthManager(AuthConfig config = {});

  /// Registers a user. kAlreadyExists if the name is taken.
  Status AddUser(const std::string& user, const std::string& password);
  /// Replaces a user's password (and clears any lockout).
  Status SetPassword(const std::string& user, const std::string& password);
  Status RemoveUser(const std::string& user);

  /// Verifies credentials. Failures are kPermissionDenied; a locked-out
  /// account is kPermissionDenied with a retry-after hint and rejects even
  /// the correct password until the lockout lapses. Success clears the
  /// failure streak.
  Status Authenticate(const std::string& user, const std::string& password);

  /// Reserves a session slot for the user (kResourceExhausted over the
  /// cap). Pair with ReleaseSession on connection teardown.
  Status AcquireSession(const std::string& user);
  void ReleaseSession(const std::string& user);

  /// Sessions currently held by the user (0 for unknown users).
  int active_sessions(const std::string& user) const;

 private:
  struct UserEntry {
    std::array<uint8_t, 16> salt;
    std::array<uint8_t, 32> hash;
    int consecutive_failures = 0;
    std::chrono::steady_clock::time_point locked_until{};
    int active_sessions = 0;
  };

  const AuthConfig config_;

  mutable std::mutex mu_;
  std::map<std::string, UserEntry> users_;
  uint64_t salt_seq_ = 0;  ///< mixed into each new salt

  obs::Counter* auth_success_;
  obs::Counter* auth_failures_;
  obs::Counter* auth_lockouts_;
  obs::Counter* session_limit_rejects_;
};

}  // namespace sqlarray::net
