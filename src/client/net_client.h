// Blocking C++ client for the wire protocol (net/wire.h).
//
// The remote twin of driving server::ArrayServer in-process: Connect runs
// the HELLO handshake, Authenticate presents credentials, and Execute ships
// one SQL batch and reassembles the streamed ROWS chunks into the same
// server::StatementOutcome the in-process path returns — tests and benches
// consume both paths with identical code.
//
//   auto client = client::NetClient::Connect("127.0.0.1", port);
//   SQLARRAY_RETURN_IF_ERROR(client->Authenticate("alice", "s3cret"));
//   server::StatementOutcome out = client->Execute("SELECT SUM(v) FROM t");
//   if (!out.ok()) { /* out.status, out.error_code, out.retry_after_ms */ }
//
// Thread model: one thread drives Execute/Ping/Close; Cancel is the one
// call that is safe from another thread while Execute blocks — it only
// writes a CANCEL frame (the kill then surfaces as the Execute stream's
// ERROR). Mirrors KillQuery against an in-process ArrayServer.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/wire.h"
#include "server/server.h"

namespace sqlarray::client {

struct NetClientConfig {
  std::string client_name = "netclient";
  uint32_t max_frame_payload = net::kMaxFramePayload;
  /// When > 0, Execute transparently re-submits a SINGLE-STATEMENT batch
  /// that fails with the WRITE_CONFLICT wire code (MVCC first-updater-wins
  /// loser), sleeping the server's typed retry_after_ms hint (doubled per
  /// attempt) between tries. Multi-statement batches are never auto-
  /// retried — statements run under per-statement autocommit server-side,
  /// so re-submitting one could double-apply statements that committed
  /// before the conflicting one. 0 = conflicts surface unchanged.
  int conflict_retries = 0;
};

class NetClient {
 public:
  /// Connects and completes the HELLO exchange.
  static Result<std::unique_ptr<NetClient>> Connect(
      const std::string& host, uint16_t port, NetClientConfig config = {});

  ~NetClient() { Close(); }
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Presents credentials; on success the server opened a session for this
  /// connection. Auth failures carry the server's typed status (stable
  /// code, lockout retry-after).
  Status Authenticate(const std::string& user, const std::string& password);

  /// Runs one SQL batch and blocks until the statement outcome is
  /// complete. Never throws; transport failures surface in .status.
  /// With config.conflict_retries > 0, write conflicts are retried with
  /// backoff before the losing outcome is returned.
  server::StatementOutcome Execute(std::string_view sql);

  /// Write-conflict retries performed across this client's lifetime.
  int64_t conflict_retries_performed() const {
    return conflict_retries_performed_;
  }

  /// Fire-and-forget kill of the statement in flight (safe from another
  /// thread during Execute).
  Status Cancel();

  /// Round-trips a PING frame.
  Status Ping();

  /// Sends GOODBYE (best-effort) and closes the socket. Idempotent.
  void Close();

  /// The server-side session id (-1 before Authenticate).
  int64_t session_id() const { return session_id_; }
  bool connected() const { return fd_ >= 0; }

 private:
  NetClient(int fd, NetClientConfig config)
      : config_(std::move(config)), fd_(fd) {}

  /// One submission attempt (no conflict retry).
  server::StatementOutcome ExecuteOnce(std::string_view sql);
  Status SendFrame(net::FrameType type, std::span<const uint8_t> payload);
  /// Applies one ROWS chunk to the outcome under assembly. Sets *done when
  /// the statement trailer arrived.
  Status ApplyRowsChunk(const net::Frame& frame,
                        server::StatementOutcome* outcome, bool* done);

  const NetClientConfig config_;
  std::mutex write_mu_;  ///< serializes Cancel against Execute's writes
  int fd_ = -1;
  int64_t session_id_ = -1;
  int64_t conflict_retries_performed_ = 0;
};

}  // namespace sqlarray::client
