#include "client/net_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace sqlarray::client {

using net::Frame;
using net::FrameType;
using net::PayloadReader;
using net::PayloadWriter;

namespace {

/// True when `sql` holds at most one statement: no ';' separator (outside
/// single-quoted literals) with more SQL after it. Conflict retries are
/// restricted to such batches — statements run under per-statement
/// autocommit server-side, so re-submitting a multi-statement batch after
/// a later statement conflicts would re-execute the earlier, already
/// committed statements.
bool IsSingleStatement(std::string_view sql) {
  bool in_string = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    char c = sql[i];
    if (in_string) {
      if (c == '\'') {
        if (i + 1 < sql.size() && sql[i + 1] == '\'') {
          ++i;  // escaped quote inside the literal
          continue;
        }
        in_string = false;
      }
      continue;
    }
    if (c == '\'') {
      in_string = true;
    } else if (c == ';' &&
               sql.find_first_not_of(" \t\r\n", i + 1) !=
                   std::string_view::npos) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<NetClient>> NetClient::Connect(const std::string& host,
                                                      uint16_t port,
                                                      NetClientConfig config) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("net: socket failed: ") +
                            std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("net: bad host address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal(std::string("net: connect failed: ") +
                            std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto client =
      std::unique_ptr<NetClient>(new NetClient(fd, std::move(config)));
  PayloadWriter w;
  w.PutU32(net::kProtocolVersion);
  w.PutString(client->config_.client_name);
  SQLARRAY_RETURN_IF_ERROR(client->SendFrame(FrameType::kHello, w.buffer()));
  SQLARRAY_ASSIGN_OR_RETURN(
      Frame reply, net::ReadFrame(fd, client->config_.max_frame_payload));
  if (reply.type == FrameType::kError) {
    return net::DecodeError(reply.payload);
  }
  if (reply.type != FrameType::kHello) {
    return Status::InvalidArgument("net: expected HELLO reply");
  }
  PayloadReader r(reply.payload);
  SQLARRAY_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version != net::kProtocolVersion) {
    return Status::InvalidArgument("net: server speaks protocol version " +
                                   std::to_string(version));
  }
  return client;
}

Status NetClient::Authenticate(const std::string& user,
                               const std::string& password) {
  if (fd_ < 0) return Status::InvalidArgument("net: not connected");
  PayloadWriter w;
  w.PutString(user);
  w.PutString(password);
  SQLARRAY_RETURN_IF_ERROR(SendFrame(FrameType::kAuth, w.buffer()));
  SQLARRAY_ASSIGN_OR_RETURN(Frame reply,
                            net::ReadFrame(fd_, config_.max_frame_payload));
  if (reply.type == FrameType::kError) {
    return net::DecodeError(reply.payload);
  }
  if (reply.type != FrameType::kAuth) {
    return Status::InvalidArgument("net: expected AUTH reply");
  }
  PayloadReader r(reply.payload);
  SQLARRAY_ASSIGN_OR_RETURN(uint64_t id, r.GetU64());
  session_id_ = static_cast<int64_t>(id);
  return Status::OK();
}

server::StatementOutcome NetClient::Execute(std::string_view sql) {
  server::StatementOutcome outcome = ExecuteOnce(sql);
  if (outcome.status.code() == StatusCode::kWriteConflict &&
      config_.conflict_retries > 0 && !IsSingleStatement(sql)) {
    // Never auto-retry a multi-statement batch: earlier statements may
    // already have committed, and re-running them would double-apply.
    return outcome;
  }
  for (int attempt = 0;
       attempt < config_.conflict_retries &&
       outcome.status.code() == StatusCode::kWriteConflict;
       ++attempt) {
    // Honor the server's typed backoff hint, doubling per attempt so a hot
    // row under heavy contention spreads the retry storm out.
    int64_t wait_ms = outcome.retry_after_ms > 0 ? outcome.retry_after_ms : 1;
    wait_ms <<= std::min(attempt, 6);
    std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
    ++conflict_retries_performed_;
    outcome = ExecuteOnce(sql);
  }
  return outcome;
}

server::StatementOutcome NetClient::ExecuteOnce(std::string_view sql) {
  if (fd_ < 0) {
    return server::StatementOutcome::FromStatus(
        Status::InvalidArgument("net: not connected"));
  }
  if (session_id_ < 0) {
    return server::StatementOutcome::FromStatus(
        Status::PermissionDenied("net: authenticate first"));
  }
  PayloadWriter w;
  w.PutString(sql);
  if (Status st = SendFrame(FrameType::kQuery, w.buffer()); !st.ok()) {
    return server::StatementOutcome::FromStatus(std::move(st));
  }
  server::StatementOutcome outcome;
  bool done = false;
  while (!done) {
    Result<Frame> frame = net::ReadFrame(fd_, config_.max_frame_payload);
    if (!frame.ok()) {
      return server::StatementOutcome::FromStatus(frame.status());
    }
    switch (frame->type) {
      case FrameType::kRows: {
        Status st = ApplyRowsChunk(*frame, &outcome, &done);
        if (!st.ok()) return server::StatementOutcome::FromStatus(st);
        break;
      }
      case FrameType::kError:
        return server::StatementOutcome::FromStatus(
            net::DecodeError(frame->payload));
      case FrameType::kPing:
        // A stray echo from a concurrent Ping crossing this statement;
        // harmless, keep reading the ROWS stream.
        break;
      default:
        return server::StatementOutcome::FromStatus(Status::InvalidArgument(
            "net: unexpected frame in statement stream"));
    }
  }
  return outcome;
}

Status NetClient::ApplyRowsChunk(const Frame& frame,
                                 server::StatementOutcome* outcome,
                                 bool* done) {
  PayloadReader r(frame.payload);
  SQLARRAY_ASSIGN_OR_RETURN(uint32_t flags, r.GetU32());
  SQLARRAY_ASSIGN_OR_RETURN(uint32_t result_index, r.GetU32());
  if (result_index != net::kNoResultSet) {
    if (flags & net::kRowsFirstChunk) {
      if (result_index != outcome->result_sets.size()) {
        return Status::InvalidArgument("net: result sets out of order");
      }
      engine::ResultSet rs;
      SQLARRAY_ASSIGN_OR_RETURN(uint32_t ncols, r.GetU32());
      for (uint32_t c = 0; c < ncols; ++c) {
        SQLARRAY_ASSIGN_OR_RETURN(std::string name, r.GetString());
        rs.columns.push_back(std::move(name));
      }
      outcome->result_sets.push_back(std::move(rs));
    }
    if (outcome->result_sets.size() != result_index + 1) {
      return Status::InvalidArgument("net: chunk for unknown result set");
    }
  }
  SQLARRAY_ASSIGN_OR_RETURN(uint32_t nrows, r.GetU32());
  SQLARRAY_ASSIGN_OR_RETURN(std::vector<uint8_t> row_bytes, r.GetBytes());
  if (nrows > 0) {
    if (result_index == net::kNoResultSet) {
      return Status::InvalidArgument("net: rows without a result set");
    }
    engine::ResultSet& rs = outcome->result_sets.back();
    PayloadReader rows(row_bytes);
    for (uint32_t i = 0; i < nrows; ++i) {
      std::vector<engine::Value> row;
      row.reserve(rs.columns.size());
      for (size_t c = 0; c < rs.columns.size(); ++c) {
        SQLARRAY_ASSIGN_OR_RETURN(engine::Value v, net::ReadValue(&rows));
        row.push_back(std::move(v));
      }
      rs.rows.push_back(std::move(row));
    }
    if (!rows.exhausted()) {
      return Status::InvalidArgument("net: trailing bytes in row chunk");
    }
  }
  if (flags & net::kRowsStatementDone) {
    SQLARRAY_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
    if (count != outcome->result_sets.size()) {
      return Status::InvalidArgument("net: result-set count mismatch");
    }
    SQLARRAY_RETURN_IF_ERROR(net::ReadStatsTrailer(&r, &outcome->stats));
    *done = true;
  }
  return Status::OK();
}

Status NetClient::Cancel() {
  if (fd_ < 0) return Status::InvalidArgument("net: not connected");
  return SendFrame(FrameType::kCancel, {});
}

Status NetClient::Ping() {
  if (fd_ < 0) return Status::InvalidArgument("net: not connected");
  SQLARRAY_RETURN_IF_ERROR(SendFrame(FrameType::kPing, {}));
  SQLARRAY_ASSIGN_OR_RETURN(Frame reply,
                            net::ReadFrame(fd_, config_.max_frame_payload));
  if (reply.type == FrameType::kError) {
    return net::DecodeError(reply.payload);
  }
  if (reply.type != FrameType::kPing) {
    return Status::InvalidArgument("net: expected PING echo");
  }
  return Status::OK();
}

void NetClient::Close() {
  if (fd_ < 0) return;
  // Best-effort clean close: GOODBYE, wait briefly for the ack so the
  // server tears the session down before we vanish, then close.
  if (SendFrame(FrameType::kGoodbye, {}).ok()) {
    timeval tv{};
    tv.tv_sec = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    for (;;) {
      Result<Frame> frame = net::ReadFrame(fd_, config_.max_frame_payload);
      if (!frame.ok() || frame->type == FrameType::kGoodbye) break;
    }
  }
  ::close(fd_);
  fd_ = -1;
  session_id_ = -1;
}

Status NetClient::SendFrame(FrameType type,
                            std::span<const uint8_t> payload) {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (fd_ < 0) return Status::InvalidArgument("net: not connected");
  return net::WriteFrame(fd_, type, payload);
}

}  // namespace sqlarray::client
