#include "client/sql_array.h"

namespace sqlarray::client {

Result<std::vector<double>> ReadDoubleVector(
    std::span<const uint8_t> buffer) {
  SQLARRAY_ASSIGN_OR_RETURN(ArrayRef ref, ArrayRef::Parse(buffer));
  if (ref.rank() != 1) {
    return Status::InvalidArgument("expected a one-dimensional array");
  }
  std::vector<double> out(static_cast<size_t>(ref.num_elements()));
  for (int64_t i = 0; i < ref.num_elements(); ++i) {
    SQLARRAY_ASSIGN_OR_RETURN(out[i], ref.GetDouble(i));
  }
  return out;
}

}  // namespace sqlarray::client
