// Client-side array bridging (the Sec. 5.2 .NET interface, in C++).
//
// "On the client-side arrays are visible as binary buffers or streams
// (containing the header) which have to be converted to .NET arrays first."
// SqlArray<T> is the equivalent of the paper's SqlFloatArray family: a typed
// client value that parses server blobs and serializes back to them:
//
//   auto arr = client::SqlArray<double>::FromSqlBuffer(bytes_from_reader);
//   std::vector<double>& v = arr->values();
//   ...
//   std::vector<uint8_t> buffer = arr->ToSqlBuffer();
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/dims.h"
#include "common/status.h"
#include "core/array.h"

namespace sqlarray::client {

/// A typed, client-resident array: shape + values, convertible to and from
/// the server's blob format.
template <typename T>
class SqlArray {
 public:
  /// Parses a server blob (as read from a binary column). The blob's
  /// element type must match T exactly — the client API is strongly typed,
  /// like the paper's per-type SqlXxxArray classes.
  static Result<SqlArray> FromSqlBuffer(std::span<const uint8_t> buffer) {
    SQLARRAY_ASSIGN_OR_RETURN(ArrayRef ref, ArrayRef::Parse(buffer));
    SQLARRAY_ASSIGN_OR_RETURN(std::span<const T> data, ref.template Data<T>());
    return SqlArray(ref.dims(),
                    std::vector<T>(data.begin(), data.end()));
  }

  /// Wraps a 1-D value list (the paper's `new SqlFloatArray(v)`).
  static SqlArray FromVector(std::vector<T> values) {
    Dims dims{static_cast<int64_t>(values.size())};
    return SqlArray(std::move(dims), std::move(values));
  }

  /// Wraps an N-D value buffer in column-major order.
  static Result<SqlArray> FromValues(Dims dims, std::vector<T> values) {
    SQLARRAY_RETURN_IF_ERROR(ValidateDims(dims));
    if (ElementCount(dims) != static_cast<int64_t>(values.size())) {
      return Status::InvalidArgument(
          "value count does not match the dimension sizes");
    }
    return SqlArray(std::move(dims), std::move(values));
  }

  /// Serializes to the server blob format (`ToSqlBuffer()` in the paper).
  /// The storage class defaults to the smallest that fits.
  Result<std::vector<uint8_t>> ToSqlBuffer(
      std::optional<StorageClass> storage = std::nullopt) const {
    SQLARRAY_ASSIGN_OR_RETURN(
        OwnedArray arr,
        OwnedArray::FromValues<T>(dims_, values_, storage));
    return std::move(arr).TakeBlob();
  }

  const Dims& dims() const { return dims_; }
  int rank() const { return static_cast<int>(dims_.size()); }
  std::vector<T>& values() { return values_; }
  const std::vector<T>& values() const { return values_; }
  int64_t size() const { return static_cast<int64_t>(values_.size()); }

  /// Column-major element access.
  Result<T> At(std::span<const int64_t> index) const {
    SQLARRAY_ASSIGN_OR_RETURN(int64_t linear, LinearIndex(dims_, index));
    return values_[linear];
  }
  Status Set(std::span<const int64_t> index, T value) {
    SQLARRAY_ASSIGN_OR_RETURN(int64_t linear, LinearIndex(dims_, index));
    values_[linear] = value;
    return Status::OK();
  }

 private:
  SqlArray(Dims dims, std::vector<T> values)
      : dims_(std::move(dims)), values_(std::move(values)) {}

  Dims dims_;
  std::vector<T> values_;
};

/// Convenience aliases matching the paper's class names.
using SqlFloatArray = SqlArray<double>;
using SqlRealArray = SqlArray<float>;
using SqlIntArray = SqlArray<int32_t>;
using SqlBigIntArray = SqlArray<int64_t>;

/// Reader-style helper (the paper's `dr.SqlFloatArray(dr.GetSqlBinary(1))`):
/// pulls a typed vector straight out of a blob, converting the element type
/// if needed.
Result<std::vector<double>> ReadDoubleVector(std::span<const uint8_t> buffer);

}  // namespace sqlarray::client
