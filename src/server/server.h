// A minimal multi-session front-end over one Executor.
//
// This is the overload boundary of the engine: every statement from every
// session passes through an AdmissionController before it touches the
// executor, a per-session busy flag caps concurrency at one statement per
// session, and a watchdog thread probes active statements' deadlines so a
// query stuck between cooperative checks still dies within one scan
// interval. Sessions share the executor (worker pool, buffer pool, WAL) but
// own their variables, transactions, and governance state.
//
// Thread model: OpenSession/CloseSession/Execute/KillQuery are safe from
// any thread. Execute blocks the calling thread for the statement's
// lifetime — the server is a library front-end driven by caller threads
// (the closed-loop bench, tests), not a socket listener.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "gov/admission.h"
#include "gov/gov.h"
#include "sql/session.h"

namespace sqlarray::server {

struct ServerConfig {
  gov::AdmissionConfig admission;
  /// Watchdog scan interval. The watchdog probes every active statement's
  /// deadline, backstopping the cooperative stride checks.
  int64_t watchdog_interval_ms = 5;
  /// Server-side cap on statement runtime; the watchdog kills anything
  /// older, whatever the session's own timeout says. 0 disables it.
  int64_t slow_query_ms = 0;
};

/// The front-end: a session registry plus admission control and a
/// slow-query watchdog over a shared Executor.
class ArrayServer {
 public:
  ArrayServer(engine::Executor* executor, ServerConfig config);
  ~ArrayServer();

  ArrayServer(const ArrayServer&) = delete;
  ArrayServer& operator=(const ArrayServer&) = delete;

  /// Registers a new session and returns its id.
  int64_t OpenSession();

  /// Kills any running statement on the session, waits for it to drain,
  /// and removes it from the registry.
  Status CloseSession(int64_t id);

  /// Runs a batch on the session: admission (bounded queue, FIFO) then
  /// Session::Execute. On a cancelled/expired statement, rolls back any
  /// transaction the kill left open, so the session is immediately
  /// reusable. Rejection surfaces as kResourceExhausted with a retry-after
  /// hint; a session already mid-statement is kInvalidArgument (the
  /// per-session concurrency cap is one).
  Result<std::vector<engine::ResultSet>> Execute(int64_t id,
                                                 std::string_view sql);

  /// Cancels the statement currently running (or queued) on the session.
  Status KillQuery(int64_t id);

  /// Direct session access for setup (CREATE TABLE, SET ...) from tests
  /// and the bench — bypasses admission; do not use concurrently with
  /// Execute on the same id. Null when the id is unknown.
  sql::Session* session(int64_t id);

  gov::AdmissionController::Stats admission_stats() const {
    return admission_.stats();
  }
  int open_sessions() const;

 private:
  struct SessionEntry {
    std::unique_ptr<sql::Session> session;
    std::shared_ptr<gov::CancelSource> cancel;
    std::atomic<bool> busy{false};
    /// Steady-clock nanos when the running statement entered Execute;
    /// written before busy flips true so the watchdog never sees a stale
    /// start time on a busy session.
    std::atomic<int64_t> started_ns{0};
  };

  std::shared_ptr<SessionEntry> FindEntry(int64_t id) const;
  void WatchdogLoop();

  engine::Executor* executor_;
  const ServerConfig config_;
  gov::AdmissionController admission_;

  mutable std::mutex mu_;  ///< guards sessions_ and next_id_
  std::map<int64_t, std::shared_ptr<SessionEntry>> sessions_;
  int64_t next_id_ = 1;

  std::atomic<bool> shutdown_{false};
  std::thread watchdog_;
};

}  // namespace sqlarray::server
