// A minimal multi-session front-end over one Executor.
//
// This is the overload boundary of the engine: every statement from every
// session passes through an AdmissionController before it touches the
// executor, a per-session busy flag caps concurrency at one statement per
// session, and a watchdog thread probes active statements' deadlines so a
// query stuck between cooperative checks still dies within one scan
// interval. Sessions share the executor (worker pool, buffer pool, WAL) but
// own their variables, transactions, and governance state.
//
// Thread model: OpenSession/CloseSession/Execute/KillQuery are safe from
// any thread. Execute blocks the calling thread for the statement's
// lifetime. Callers are either in-process threads (the closed-loop bench,
// tests) or the per-connection handler threads of net::NetServer, which
// fronts this class with the length-prefixed wire protocol — admission,
// deadlines, KillQuery, and the watchdog apply identically on both paths.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "gov/admission.h"
#include "gov/gov.h"
#include "sql/session.h"

namespace sqlarray::server {

struct ServerConfig {
  gov::AdmissionConfig admission;
  /// Watchdog scan interval. The watchdog probes every active statement's
  /// deadline, backstopping the cooperative stride checks.
  int64_t watchdog_interval_ms = 5;
  /// Server-side cap on statement runtime; the watchdog kills anything
  /// older, whatever the session's own timeout says. 0 disables it.
  int64_t slow_query_ms = 0;
};

/// The uniform result of one statement batch, consumed identically by the
/// in-process path, net::NetServer (which serializes it into ROWS/ERROR
/// frames), and client::NetClient (which reassembles it on the other side
/// of the wire). Replaces the old Result<vector<ResultSet>> return whose
/// consumers had to pattern-match on status message strings: the stable
/// numeric error code and the retry-after hint are first-class fields here.
struct StatementOutcome {
  /// Overall statement status; result_sets is complete only when ok().
  Status status;
  /// Frozen wire code of `status` (StatusCodeToWire); 0 == OK. This is the
  /// value an ERROR frame carries, kept alongside the Status so callers on
  /// either side of the wire branch on the same numbers.
  int32_t error_code = 0;
  /// Typed backoff hint for admission rejections; 0 when absent.
  int64_t retry_after_ms = 0;
  /// One entry per client-visible SELECT in the batch.
  std::vector<engine::ResultSet> result_sets;
  /// Profile handle: execution statistics of the batch's last statement
  /// (rows scanned/kept, UDF boundary traffic, modeled CPU, wall time).
  engine::QueryStats stats;

  bool ok() const { return status.ok(); }

  static StatementOutcome FromStatus(Status st) {
    StatementOutcome out;
    out.error_code = StatusCodeToWire(st.code());
    out.retry_after_ms = st.retry_after_ms();
    out.status = std::move(st);
    return out;
  }
};

/// The front-end: a session registry plus admission control and a
/// slow-query watchdog over a shared Executor.
class ArrayServer {
 public:
  ArrayServer(engine::Executor* executor, ServerConfig config);
  ~ArrayServer();

  ArrayServer(const ArrayServer&) = delete;
  ArrayServer& operator=(const ArrayServer&) = delete;

  /// Registers a new session and returns its id.
  int64_t OpenSession();

  /// Kills any running statement on the session, waits for it to drain,
  /// and removes it from the registry. Idempotent: closing an id that is
  /// already closed (or never existed) is OK — the network teardown path
  /// may race a GOODBYE against a disconnect and close twice.
  Status CloseSession(int64_t id);

  /// Runs a batch on the session: admission (bounded queue, FIFO) then
  /// Session::Execute. On a cancelled/expired statement, rolls back any
  /// transaction the kill left open, so the session is immediately
  /// reusable. Rejection surfaces as kResourceExhausted with a typed
  /// retry-after hint; a session already mid-statement is kInvalidArgument
  /// (the per-session concurrency cap is one). Never throws: every failure
  /// mode is an outcome with a stable numeric error code.
  StatementOutcome Execute(int64_t id, std::string_view sql);

  /// Cancels the statement currently running (or queued) on the session.
  Status KillQuery(int64_t id);

  /// Direct session access for setup (CREATE TABLE, SET ...) from tests
  /// and the bench — bypasses admission; do not use concurrently with
  /// Execute on the same id. Null when the id is unknown.
  sql::Session* session(int64_t id);

  gov::AdmissionController::Stats admission_stats() const {
    return admission_.stats();
  }
  int open_sessions() const;

 private:
  struct SessionEntry {
    std::unique_ptr<sql::Session> session;
    std::shared_ptr<gov::CancelSource> cancel;
    std::atomic<bool> busy{false};
    /// Steady-clock nanos when the running statement entered Execute;
    /// written before busy flips true so the watchdog never sees a stale
    /// start time on a busy session.
    std::atomic<int64_t> started_ns{0};
  };

  std::shared_ptr<SessionEntry> FindEntry(int64_t id) const;
  void WatchdogLoop();

  engine::Executor* executor_;
  const ServerConfig config_;
  gov::AdmissionController admission_;

  mutable std::mutex mu_;  ///< guards sessions_ and next_id_
  std::map<int64_t, std::shared_ptr<SessionEntry>> sessions_;
  int64_t next_id_ = 1;

  std::atomic<bool> shutdown_{false};
  std::thread watchdog_;
};

}  // namespace sqlarray::server
