#include "server/server.h"

#include <utility>

namespace sqlarray::server {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool IsKillStatus(const Status& st) {
  return st.code() == StatusCode::kCancelled ||
         st.code() == StatusCode::kDeadlineExceeded ||
         st.code() == StatusCode::kResourceExhausted;
}

}  // namespace

ArrayServer::ArrayServer(engine::Executor* executor, ServerConfig config)
    : executor_(executor),
      config_(config),
      admission_(config.admission),
      watchdog_([this] { WatchdogLoop(); }) {}

ArrayServer::~ArrayServer() {
  shutdown_.store(true, std::memory_order_release);
  if (watchdog_.joinable()) watchdog_.join();
  // Fire every session's source so statements still running on caller
  // threads unwind promptly, then wait for them to drain: SessionEntry
  // lifetimes are shared_ptr-managed, but the sessions reference the
  // executor, which outlives the server only by the caller's grace.
  std::vector<std::shared_ptr<SessionEntry>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, e] : sessions_) entries.push_back(e);
  }
  for (auto& e : entries) {
    e->cancel->Cancel(gov::KillReason::kShutdown, "server shutting down");
  }
  for (auto& e : entries) {
    while (e->busy.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

int64_t ArrayServer::OpenSession() {
  auto entry = std::make_shared<SessionEntry>();
  entry->session = std::make_unique<sql::Session>(executor_);
  entry->cancel = entry->session->cancel_source();
  std::lock_guard<std::mutex> lock(mu_);
  int64_t id = next_id_++;
  sessions_.emplace(id, std::move(entry));
  return id;
}

Status ArrayServer::CloseSession(int64_t id) {
  std::shared_ptr<SessionEntry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    // Idempotent: the connection teardown path can race a client GOODBYE
    // against a socket disconnect, so a second close must be a no-op.
    if (it == sessions_.end()) return Status::OK();
    entry = it->second;
    sessions_.erase(it);
  }
  if (entry->busy.load(std::memory_order_acquire)) {
    entry->cancel->Cancel(gov::KillReason::kUser, "session closed");
    while (entry->busy.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  return Status::OK();
}

StatementOutcome ArrayServer::Execute(int64_t id, std::string_view sql) {
  std::shared_ptr<SessionEntry> entry = FindEntry(id);
  if (entry == nullptr) {
    return StatementOutcome::FromStatus(
        Status::NotFound("no session " + std::to_string(id)));
  }
  bool expected = false;
  entry->started_ns.store(NowNs(), std::memory_order_relaxed);
  if (!entry->busy.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
    return StatementOutcome::FromStatus(Status::InvalidArgument(
        "session " + std::to_string(id) +
        " already has a statement in flight"));
  }
  Result<gov::AdmissionSlot> slot = admission_.Admit(entry->cancel.get());
  if (!slot.ok()) {
    // Rejected (queue full) or killed while waiting. Nothing executed, so
    // an open explicit transaction from an earlier batch stays open; a
    // consumed kill is reset so the next attempt runs normally.
    if (entry->cancel->cancelled()) entry->cancel->Reset();
    entry->busy.store(false, std::memory_order_release);
    return StatementOutcome::FromStatus(slot.status());
  }
  entry->session->set_admission_wait(slot.value().wait_seconds());
  Result<std::vector<engine::ResultSet>> result = [&] {
    // The slot is held for the statement's whole lifetime; its destructor
    // (end of this lambda) wakes the next queued statement.
    gov::AdmissionSlot held = std::move(slot).value();
    return entry->session->Execute(sql);
  }();
  StatementOutcome outcome;
  if (result.ok()) {
    outcome.result_sets = std::move(result).value();
    outcome.stats = entry->session->last_stats();
  } else {
    outcome = StatementOutcome::FromStatus(result.status());
    if (IsKillStatus(result.status())) {
      // The kill may have struck inside an explicit transaction; roll it
      // back so the session's next statement starts clean.
      (void)entry->session->ForceRollback();
    }
  }
  entry->busy.store(false, std::memory_order_release);
  return outcome;
}

Status ArrayServer::KillQuery(int64_t id) {
  std::shared_ptr<SessionEntry> entry = FindEntry(id);
  if (entry == nullptr) {
    return Status::NotFound("no session " + std::to_string(id));
  }
  entry->cancel->Cancel(gov::KillReason::kUser,
                        "killed on session " + std::to_string(id));
  return Status::OK();
}

sql::Session* ArrayServer::session(int64_t id) {
  std::shared_ptr<SessionEntry> entry = FindEntry(id);
  return entry == nullptr ? nullptr : entry->session.get();
}

int ArrayServer::open_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(sessions_.size());
}

std::shared_ptr<ArrayServer::SessionEntry> ArrayServer::FindEntry(
    int64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

void ArrayServer::WatchdogLoop() {
  const auto interval = std::chrono::milliseconds(
      config_.watchdog_interval_ms > 0 ? config_.watchdog_interval_ms : 5);
  while (!shutdown_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(interval);
    std::vector<std::shared_ptr<SessionEntry>> entries;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& [id, e] : sessions_) {
        if (e->busy.load(std::memory_order_acquire)) entries.push_back(e);
      }
    }
    int64_t now = NowNs();
    for (auto& e : entries) {
      // Backstop for code between cooperative checks: force a wall-clock
      // comparison of the session's armed deadline.
      e->cancel->ProbeDeadline();
      if (config_.slow_query_ms > 0) {
        int64_t age_ms =
            (now - e->started_ns.load(std::memory_order_relaxed)) / 1000000;
        if (age_ms > config_.slow_query_ms) {
          e->cancel->Cancel(gov::KillReason::kDeadline,
                            "slow-query watchdog (ran " +
                                std::to_string(age_ms) + "ms, cap " +
                                std::to_string(config_.slow_query_ms) +
                                "ms)");
        }
      }
    }
  }
}

}  // namespace sqlarray::server
