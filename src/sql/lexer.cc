#include "sql/lexer.h"

#include <cctype>
#include <charconv>

namespace sqlarray::sql {

bool Token::IsKeyword(const char* kw) const {
  if (type != TokenType::kIdent) return false;
  size_t n = text.size();
  for (size_t i = 0; i < n; ++i) {
    if (kw[i] == '\0' ||
        std::toupper(static_cast<unsigned char>(text[i])) !=
            std::toupper(static_cast<unsigned char>(kw[i]))) {
      return false;
    }
  }
  return kw[n] == '\0';
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view src) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = src.size();

  auto push = [&](TokenType type, size_t at) {
    Token t;
    t.type = type;
    t.offset = at;
    out.push_back(std::move(t));
  };

  while (i < n) {
    char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && src[i + 1] == '-') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t close = src.find("*/", i + 2);
      if (close == std::string_view::npos) {
        return Status::InvalidArgument("unterminated block comment");
      }
      i = close + 2;
      continue;
    }

    size_t start = i;
    // Binary literal 0x...
    if (c == '0' && i + 1 < n && (src[i + 1] == 'x' || src[i + 1] == 'X')) {
      size_t j = i + 2;
      std::vector<uint8_t> bytes;
      while (j + 1 < n && HexValue(src[j]) >= 0 && HexValue(src[j + 1]) >= 0) {
        bytes.push_back(
            static_cast<uint8_t>(HexValue(src[j]) * 16 + HexValue(src[j + 1])));
        j += 2;
      }
      if (j < n && HexValue(src[j]) >= 0) {
        return Status::InvalidArgument(
            "binary literal must have an even number of hex digits");
      }
      Token t;
      t.type = TokenType::kBinary;
      t.offset = start;
      t.binary_value = std::move(bytes);
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
      if (j < n && src[j] == '.') {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
      }
      if (j < n && (src[j] == 'e' || src[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (src[k] == '+' || src[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(src[k]))) {
          is_float = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
        }
      }
      Token t;
      t.offset = start;
      std::string_view num = src.substr(start, j - start);
      if (is_float) {
        t.type = TokenType::kFloat;
        auto [p, ec] =
            std::from_chars(num.data(), num.data() + num.size(), t.float_value);
        if (ec != std::errc()) {
          return Status::InvalidArgument("malformed numeric literal");
        }
        (void)p;
      } else {
        t.type = TokenType::kInt;
        auto [p, ec] =
            std::from_chars(num.data(), num.data() + num.size(), t.int_value);
        if (ec != std::errc()) {
          return Status::InvalidArgument("integer literal out of range");
        }
        (void)p;
      }
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    // Strings.
    if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      while (j < n) {
        if (src[j] == '\'') {
          if (j + 1 < n && src[j + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            j += 2;
            continue;
          }
          break;
        }
        text.push_back(src[j]);
        ++j;
      }
      if (j >= n) return Status::InvalidArgument("unterminated string literal");
      Token t;
      t.type = TokenType::kString;
      t.offset = start;
      t.text = std::move(text);
      out.push_back(std::move(t));
      i = j + 1;
      continue;
    }
    // Variables.
    if (c == '@') {
      size_t j = i + 1;
      while (j < n && IsIdentChar(src[j])) ++j;
      if (j == i + 1) return Status::InvalidArgument("bare '@'");
      Token t;
      t.type = TokenType::kVariable;
      t.offset = start;
      t.text = std::string(src.substr(i + 1, j - i - 1));
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    // Identifiers / keywords.
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(src[j])) ++j;
      Token t;
      t.type = TokenType::kIdent;
      t.offset = start;
      t.text = std::string(src.substr(i, j - i));
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    // Operators and punctuation.
    switch (c) {
      case '(': push(TokenType::kLParen, start); ++i; break;
      case ')': push(TokenType::kRParen, start); ++i; break;
      case '[': push(TokenType::kLBracket, start); ++i; break;
      case ']': push(TokenType::kRBracket, start); ++i; break;
      case ',': push(TokenType::kComma, start); ++i; break;
      case '.': push(TokenType::kDot, start); ++i; break;
      case ';': push(TokenType::kSemicolon, start); ++i; break;
      case ':': push(TokenType::kColon, start); ++i; break;
      case '+': push(TokenType::kPlus, start); ++i; break;
      case '-': push(TokenType::kMinus, start); ++i; break;
      case '*': push(TokenType::kStar, start); ++i; break;
      case '/': push(TokenType::kSlash, start); ++i; break;
      case '%': push(TokenType::kPercent, start); ++i; break;
      case '=': push(TokenType::kEq, start); ++i; break;
      case '<':
        if (i + 1 < n && src[i + 1] == '=') {
          push(TokenType::kLe, start);
          i += 2;
        } else if (i + 1 < n && src[i + 1] == '>') {
          push(TokenType::kNe, start);
          i += 2;
        } else {
          push(TokenType::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && src[i + 1] == '=') {
          push(TokenType::kGe, start);
          i += 2;
        } else {
          push(TokenType::kGt, start);
          ++i;
        }
        break;
      case '!':
        if (i + 1 < n && src[i + 1] == '=') {
          push(TokenType::kNe, start);
          i += 2;
        } else {
          return Status::InvalidArgument("unexpected '!'");
        }
        break;
      default:
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' at offset " +
                                       std::to_string(start));
    }
  }
  push(TokenType::kEnd, n);
  return out;
}

}  // namespace sqlarray::sql
