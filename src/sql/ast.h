// Statement AST for the T-SQL-flavored frontend.
//
// Expressions reuse engine::Expr directly (the parser emits unbound trees;
// the session binds them per statement).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/expr.h"

namespace sqlarray::sql {

/// One SELECT-list entry: optional `@var =` assignment target, the
/// expression, and an optional AS label. Top-level aggregate calls are
/// recognized by the session, not the parser.
struct SelectListItem {
  std::string assign_var;  ///< empty when not an assignment
  engine::ExprPtr expr;
  std::string label;
};

/// SELECT [TOP n] items [FROM table [WITH (NOLOCK)]] [WHERE e]
/// [GROUP BY e, ...]
struct SelectStmt {
  int64_t top = -1;
  std::vector<SelectListItem> items;
  std::string from_table;   ///< empty for FROM-less selects
  /// Table-valued function source: FROM Schema.Func(args).
  bool from_is_tvf = false;
  std::string from_schema;  ///< TVF schema (from_table holds the name)
  std::vector<engine::ExprPtr> from_args;
  bool nolock = false;
  /// Time-travel: FROM t AS OF <lsn-expr> | AS OF CHECKPOINT reads the
  /// table as it stood at that commit LSN (requires an attached MVCC
  /// manager). Both unset = current data.
  engine::ExprPtr as_of;
  bool as_of_checkpoint = false;
  engine::ExprPtr where;
  std::vector<engine::ExprPtr> group_by;
  /// ORDER BY keys: 1-based select-list ordinals or output labels.
  struct OrderKey {
    int position = -1;   ///< 1-based ordinal, or -1 when label is used
    std::string label;
    bool descending = false;
  };
  std::vector<OrderKey> order_by;
};

/// DECLARE @name TYPE [= expr]  (the type is recorded but dynamically
/// checked; T-SQL types map onto the engine value kinds).
struct DeclareStmt {
  std::string name;
  std::string type_name;   ///< e.g. VARBINARY(MAX), FLOAT, BIGINT
  engine::ExprPtr init;    ///< optional
};

/// SET @name = expr
struct SetStmt {
  std::string name;
  engine::ExprPtr value;
};

/// SET <OPTION> = <integer>  — session options (not variables):
/// STATEMENT_TIMEOUT_MS and MEMORY_BUDGET_KB, 0 disabling the limit.
struct SetOptionStmt {
  std::string option;  ///< upper-cased option name
  int64_t value = 0;
};

/// CREATE TABLE name (col TYPE, ...)
struct CreateTableStmt {
  struct Column {
    std::string name;
    std::string type_name;
    int32_t capacity = 0;  ///< VARBINARY(n)
  };
  std::string name;
  std::vector<Column> columns;
};

/// INSERT INTO name VALUES (e, ...), ...   or   INSERT INTO name SELECT ...
struct InsertStmt {
  std::string table;
  std::vector<std::vector<engine::ExprPtr>> rows;  ///< VALUES form
  /// SELECT form (rows empty): the query whose output is inserted.
  std::unique_ptr<SelectStmt> select;
};

/// DELETE FROM name [WHERE expr]
struct DeleteStmt {
  std::string table;
  engine::ExprPtr where;  ///< null deletes every row
};

/// EXPLAIN ANALYZE select|insert|delete — executes the statement and returns
/// its operator profile tree as the result set (plain EXPLAIN without
/// execution is not supported; this engine has no standalone plan-only mode).
/// DML targets add a "wal" child node carrying the statement's log traffic.
struct ExplainStmt {
  bool analyze = false;
  enum class Target { kSelect, kInsert, kDelete };
  Target target = Target::kSelect;
  SelectStmt select;
  InsertStmt insert;
  DeleteStmt del;
};

/// A parsed statement.
struct Statement {
  enum class Kind {
    kSelect,
    kDeclare,
    kSet,
    kSetOption,   ///< SET STATEMENT_TIMEOUT_MS / MEMORY_BUDGET_KB = n
    kCreateTable,
    kInsert,
    kDelete,
    kExplain,
    kBegin,       ///< BEGIN [TRANSACTION | TRAN]
    kCommit,      ///< COMMIT [TRANSACTION | TRAN]
    kRollback,    ///< ROLLBACK [TRANSACTION | TRAN]
    kCheckpoint,  ///< CHECKPOINT
  };
  Kind kind = Kind::kSelect;
  SelectStmt select;
  DeclareStmt declare;
  SetStmt set;
  SetOptionStmt set_option;
  CreateTableStmt create_table;
  InsertStmt insert;
  DeleteStmt del;
  ExplainStmt explain;
};

/// A parsed batch of statements.
using Script = std::vector<Statement>;

}  // namespace sqlarray::sql
