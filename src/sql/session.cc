#include "sql/session.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>

#include "mvcc/mvcc.h"
#include "obs/metrics.h"
#include "sql/parser.h"
#include "wal/wal.h"

namespace sqlarray::sql {

namespace {

using engine::Expr;
using engine::ExprPtr;
using engine::SelectItem;
using engine::Value;

std::string Upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

/// Maps a T-SQL type name onto a storage column type.
Result<storage::ColumnDef> MapColumn(const CreateTableStmt::Column& col) {
  storage::ColumnDef def;
  def.name = col.name;
  std::string t = Upper(col.type_name);
  if (t == "BIGINT") {
    def.type = storage::ColumnType::kInt64;
  } else if (t == "INT" || t == "INTEGER") {
    def.type = storage::ColumnType::kInt32;
  } else if (t == "FLOAT" || t == "DOUBLE") {
    def.type = storage::ColumnType::kFloat64;
  } else if (t == "REAL") {
    def.type = storage::ColumnType::kFloat32;
  } else if (t == "VARBINARY(MAX)") {
    def.type = storage::ColumnType::kVarBinaryMax;
  } else if (t.rfind("VARBINARY(", 0) == 0) {
    def.type = storage::ColumnType::kBinary;
    def.capacity = col.capacity;
  } else {
    return Status::InvalidArgument("unsupported column type " + col.type_name);
  }
  return def;
}

/// Converts an engine value to a storage row value for a column.
Result<storage::RowValue> ToRowValue(const Value& v,
                                     const storage::ColumnDef& col) {
  switch (col.type) {
    case storage::ColumnType::kInt32: {
      SQLARRAY_ASSIGN_OR_RETURN(int64_t x, v.AsInt());
      return storage::RowValue(static_cast<int32_t>(x));
    }
    case storage::ColumnType::kInt64: {
      SQLARRAY_ASSIGN_OR_RETURN(int64_t x, v.AsInt());
      return storage::RowValue(x);
    }
    case storage::ColumnType::kFloat32: {
      SQLARRAY_ASSIGN_OR_RETURN(double x, v.AsDouble());
      return storage::RowValue(static_cast<float>(x));
    }
    case storage::ColumnType::kFloat64: {
      SQLARRAY_ASSIGN_OR_RETURN(double x, v.AsDouble());
      return storage::RowValue(x);
    }
    case storage::ColumnType::kBinary:
    case storage::ColumnType::kVarBinaryMax: {
      SQLARRAY_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                                v.MaterializeBytes());
      return storage::RowValue(std::move(bytes));
    }
  }
  return Status::Internal("unreachable column type");
}

/// Three-way comparison of result values for ORDER BY: NULL first, then by
/// kind, numerics by value, strings and binaries lexicographically.
int CompareValues(const Value& a, const Value& b) {
  auto numeric = [](const Value& v) {
    return v.kind() == Value::Kind::kInt64 ||
           v.kind() == Value::Kind::kFloat64;
  };
  if (a.is_null() || b.is_null()) {
    return (a.is_null() ? 0 : 1) - (b.is_null() ? 0 : 1);
  }
  if (numeric(a) && numeric(b)) {
    double x = a.AsDouble().value(), y = b.AsDouble().value();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.kind() != b.kind()) {
    return static_cast<int>(a.kind()) < static_cast<int>(b.kind()) ? -1 : 1;
  }
  if (a.kind() == Value::Kind::kString) {
    return a.AsString().value().compare(b.AsString().value());
  }
  if (a.kind() == Value::Kind::kBytes) {
    const auto* x = a.AsBytes().value();
    const auto* y = b.AsBytes().value();
    if (*x == *y) return 0;
    return std::lexicographical_compare(x->begin(), x->end(), y->begin(),
                                        y->end())
               ? -1
               : 1;
  }
  return 0;  // blobs: no meaningful order
}

/// Applies ORDER BY keys (already resolved to column indices) to a result.
void SortResult(engine::ResultSet* rs,
                const std::vector<std::pair<int, bool>>& keys) {
  std::stable_sort(rs->rows.begin(), rs->rows.end(),
                   [&](const std::vector<Value>& a,
                       const std::vector<Value>& b) {
                     for (const auto& [col, desc] : keys) {
                       int c = CompareValues(a[col], b[col]);
                       if (c != 0) return desc ? c > 0 : c < 0;
                     }
                     return false;
                   });
}

/// Renders a default output label for an expression.
std::string DefaultLabel(const Expr& e, size_t index) {
  switch (e.kind) {
    case Expr::Kind::kColumn:
      return e.column_name.empty() ? "col" + std::to_string(index)
                                   : e.column_name;
    case Expr::Kind::kCall:
      return e.func_name;
    default:
      return "col" + std::to_string(index);
  }
}

}  // namespace

Result<std::vector<engine::ResultSet>> Session::ExecuteScript(
    std::string_view sqltext, bool update_session_stats) {
  SQLARRAY_ASSIGN_OR_RETURN(Script script, Parse(sqltext));
  std::vector<engine::ResultSet> results;
  if (!update_session_stats) {
    // Nested script (reader-style UDF subquery): runs under the outer
    // statement's governance. It shares the ambient thread limits and must
    // never re-arm the deadline or reset the budget mid-statement.
    for (Statement& stmt : script) {
      SQLARRAY_RETURN_IF_ERROR(
          RunStatement(stmt, &results, update_session_stats));
    }
    return results;
  }
  for (Statement& stmt : script) {
    // A kill delivered before the statement starts aborts it here, with
    // zero side effects — no WAL records, no table writes, no result rows.
    // The kill is consumed either way: one kill aborts exactly one
    // statement, whether it struck mid-flight or between statements.
    Status pre = cancel_source_->StatusNow();
    if (!pre.ok()) {
      cancel_source_->Reset();
      return pre;
    }
    budget_.Reset(memory_budget_kb_ * 1024);
    if (statement_timeout_ms_ > 0) {
      cancel_source_->ArmDeadline(
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(statement_timeout_ms_));
    }
    gov::QueryLimits limits;
    limits.cancel = cancel_source_;
    limits.budget = &budget_;
    Status st;
    {
      // Ambient limits for code that cannot take a QueryLimits parameter:
      // standalone expression evaluation (DECLARE/SET/VALUES) and the core
      // kernels it reaches.
      gov::ScopedThreadLimits ambient(&limits);
      st = RunStatement(stmt, &results, update_session_stats);
    }
    cancel_source_->DisarmDeadline();
    if (st.code() == StatusCode::kCancelled ||
        st.code() == StatusCode::kDeadlineExceeded) {
      // One kill aborts exactly one statement: consume the cancellation so
      // the session stays usable.
      cancel_source_->Reset();
    }
    SQLARRAY_RETURN_IF_ERROR(st);
  }
  return results;
}

Result<engine::Value> Session::GetVariable(const std::string& name) const {
  auto it = variables_.find(name);
  if (it == variables_.end()) {
    return Status::NotFound("undeclared variable @" + name);
  }
  return it->second;
}

Status Session::RunStatement(Statement& stmt,
                             std::vector<engine::ResultSet>* results,
                             bool update_session_stats) {
  // A simulated crash kills the WAL-side transaction without telling the
  // session. Noticing here keeps the session honest: later DML autocommits
  // instead of silently writing outside any transaction, BEGIN works again,
  // and COMMIT/ROLLBACK report "no open transaction".
  if (txn_open_) {
    mvcc::MvccManager* m = mvcc_manager();
    wal::WalManager* w = wal_manager();
    bool alive = m != nullptr ? m->TxnActive(txn_id_)
                              : (w != nullptr && w->TxnActive(txn_id_));
    if (!alive) {
      txn_open_ = false;
      txn_id_ = 0;
    }
  }
  switch (stmt.kind) {
    case Statement::Kind::kDeclare: {
      Value init;
      if (stmt.declare.init != nullptr) {
        SQLARRAY_RETURN_IF_ERROR(
            engine::BindExpr(stmt.declare.init.get(), nullptr,
                             executor_->registry()));
        SQLARRAY_ASSIGN_OR_RETURN(
            init, executor_->EvalStandalone(*stmt.declare.init, &variables_));
      }
      variables_[stmt.declare.name] = std::move(init);
      return Status::OK();
    }
    case Statement::Kind::kSet: {
      SQLARRAY_RETURN_IF_ERROR(engine::BindExpr(stmt.set.value.get(), nullptr,
                                                executor_->registry()));
      engine::QueryContext qctx;
      SQLARRAY_ASSIGN_OR_RETURN(
          Value v, executor_->EvalStandalone(*stmt.set.value, &variables_,
                                             &qctx.stats));
      if (update_session_stats) last_stats_ = qctx.stats;
      if (variables_.count(stmt.set.name) == 0) {
        return Status::NotFound("undeclared variable @" + stmt.set.name);
      }
      variables_[stmt.set.name] = std::move(v);
      return Status::OK();
    }
    case Statement::Kind::kSetOption: {
      if (stmt.set_option.option == "STATEMENT_TIMEOUT_MS") {
        statement_timeout_ms_ = stmt.set_option.value;
      } else if (stmt.set_option.option == "MEMORY_BUDGET_KB") {
        memory_budget_kb_ = stmt.set_option.value;
      } else {
        return Status::InvalidArgument("unknown session option " +
                                       stmt.set_option.option);
      }
      return Status::OK();
    }
    case Statement::Kind::kSelect:
      return RunSelect(stmt.select, results, update_session_stats);
    case Statement::Kind::kCreateTable:
      if (mvcc::MvccManager* m = mvcc_manager(); m != nullptr) {
        // DDL is non-transactional under MVCC: it runs serialized under the
        // DML lock and becomes visible to snapshots taken afterwards.
        return m->RunDdl([&] { return RunCreateTable(stmt.create_table); });
      }
      return AutoCommit([&] { return RunCreateTable(stmt.create_table); });
    case Statement::Kind::kInsert:
      return AutoCommit(
          [&] { return RunInsert(stmt.insert, update_session_stats); });
    case Statement::Kind::kDelete:
      return AutoCommit(
          [&] { return RunDelete(stmt.del, update_session_stats); });
    case Statement::Kind::kExplain:
      return RunExplain(stmt.explain, results, update_session_stats);
    case Statement::Kind::kBegin: {
      wal::WalManager* w = wal_manager();
      if (w == nullptr) {
        return Status::InvalidArgument(
            "BEGIN TRANSACTION requires a write-ahead log "
            "(no WalManager attached to this database)");
      }
      if (txn_open_) {
        return Status::InvalidArgument(
            "transaction already open (nested BEGIN is not supported)");
      }
      uint64_t txn = 0;
      if (mvcc::MvccManager* m = mvcc_manager(); m != nullptr) {
        SQLARRAY_ASSIGN_OR_RETURN(txn, m->Begin());
      } else {
        SQLARRAY_ASSIGN_OR_RETURN(txn, w->Begin());
      }
      txn_open_ = true;
      txn_id_ = txn;
      return Status::OK();
    }
    case Statement::Kind::kCommit: {
      if (!txn_open_) {
        return Status::InvalidArgument("COMMIT without an open transaction");
      }
      uint64_t txn = txn_id_;
      txn_open_ = false;
      txn_id_ = 0;
      if (mvcc::MvccManager* m = mvcc_manager(); m != nullptr) {
        return m->Commit(txn);
      }
      return wal_manager()->Commit(txn);
    }
    case Statement::Kind::kRollback: {
      if (!txn_open_) {
        return Status::InvalidArgument("ROLLBACK without an open transaction");
      }
      uint64_t txn = txn_id_;
      txn_open_ = false;
      txn_id_ = 0;
      if (mvcc::MvccManager* m = mvcc_manager(); m != nullptr) {
        return m->Rollback(txn);
      }
      return wal_manager()->Rollback(txn);
    }
    case Statement::Kind::kCheckpoint: {
      wal::WalManager* w = wal_manager();
      if (w == nullptr) {
        return Status::InvalidArgument(
            "CHECKPOINT requires a write-ahead log "
            "(no WalManager attached to this database)");
      }
      if (txn_open_) {
        return Status::InvalidArgument(
            "CHECKPOINT cannot run inside an open transaction");
      }
      return w->Checkpoint();
    }
  }
  return Status::Internal("unreachable statement kind");
}

wal::WalManager* Session::wal_manager() const {
  storage::Database* db = executor_->db();
  return db == nullptr ? nullptr : db->wal();
}

mvcc::MvccManager* Session::mvcc_manager() const {
  storage::Database* db = executor_->db();
  return db == nullptr ? nullptr : db->mvcc();
}

Status Session::AutoCommit(const std::function<Status()>& body) {
  if (txn_open_) return body();
  mvcc::MvccManager* m = mvcc_manager();
  wal::WalManager* w = wal_manager();
  if (m == nullptr && w == nullptr) return body();
  uint64_t txn = 0;
  if (m != nullptr) {
    SQLARRAY_ASSIGN_OR_RETURN(txn, m->Begin());
  } else {
    SQLARRAY_ASSIGN_OR_RETURN(txn, w->Begin());
  }
  txn_open_ = true;
  txn_id_ = txn;
  Status st = body();
  txn_open_ = false;
  txn_id_ = 0;
  if (st.ok()) return m != nullptr ? m->Commit(txn) : w->Commit(txn);
  // Surface the original failure, not the rollback's status.
  Status rb = m != nullptr ? m->Rollback(txn) : w->Rollback(txn);
  (void)rb;
  return st;
}

Status Session::ForceRollback() {
  // Autocommitted statements roll back inside AutoCommit; this covers a
  // statement killed inside an explicit BEGIN, where the server must not
  // leave the transaction dangling on a session it is about to reuse.
  if (!txn_open_) return Status::OK();
  uint64_t txn = txn_id_;
  txn_open_ = false;
  txn_id_ = 0;
  if (mvcc::MvccManager* m = mvcc_manager(); m != nullptr) {
    if (!m->TxnActive(txn)) return Status::OK();
    return m->Rollback(txn);
  }
  wal::WalManager* w = wal_manager();
  if (w == nullptr || !w->TxnActive(txn)) return Status::OK();
  return w->Rollback(txn);
}

Result<engine::ResultSet> Session::ExecuteSelect(SelectStmt& sel,
                                                 engine::QueryContext* qctx) {
  engine::Query q;
  if (sel.from_is_tvf) {
    SQLARRAY_ASSIGN_OR_RETURN(
        q.tvf, executor_->registry()->ResolveTvf(sel.from_schema,
                                                 sel.from_table));
    if (static_cast<int>(sel.from_args.size()) != q.tvf->arity) {
      return Status::InvalidArgument(
          "wrong argument count for table-valued function " +
          sel.from_schema + "." + sel.from_table);
    }
    q.tvf_args = std::move(sel.from_args);
  } else if (!sel.from_table.empty()) {
    SQLARRAY_ASSIGN_OR_RETURN(q.table,
                              executor_->db()->GetTable(sel.from_table));
  }
  q.top = sel.top;

  bool has_assignment = false;
  for (size_t i = 0; i < sel.items.size(); ++i) {
    SelectListItem& src = sel.items[i];
    if (!src.assign_var.empty()) has_assignment = true;

    SelectItem item;
    item.label = !src.label.empty() ? src.label : DefaultLabel(*src.expr, i);

    // Recognize top-level aggregates: COUNT/SUM/MIN/MAX/AVG (unqualified)
    // and registered schema-qualified UDAs.
    Expr* e = src.expr.get();
    if (e->kind == Expr::Kind::kCall && e->schema_name.empty()) {
      std::string fn = Upper(e->func_name);
      if (fn == "COUNT" || fn == "SUM" || fn == "MIN" || fn == "MAX" ||
          fn == "AVG") {
        if (e->args.size() != 1) {
          return Status::InvalidArgument(fn + " takes exactly one argument");
        }
        item.agg = fn == "COUNT" ? SelectItem::AggKind::kCount
                   : fn == "SUM" ? SelectItem::AggKind::kSum
                   : fn == "MIN" ? SelectItem::AggKind::kMin
                   : fn == "MAX" ? SelectItem::AggKind::kMax
                                 : SelectItem::AggKind::kAvg;
        item.expr = std::move(e->args[0]);
        q.items.push_back(std::move(item));
        continue;
      }
    }
    if (e->kind == Expr::Kind::kCall && !e->schema_name.empty() &&
        executor_->registry()
            ->ResolveUda(e->schema_name, e->func_name)
            .ok()) {
      item.agg = SelectItem::AggKind::kUda;
      item.uda_schema = e->schema_name;
      item.uda_name = e->func_name;
      item.uda_args = std::move(e->args);
      q.items.push_back(std::move(item));
      continue;
    }

    item.expr = std::move(src.expr);
    q.items.push_back(std::move(item));
  }
  q.where = std::move(sel.where);
  q.group_by = std::move(sel.group_by);

  // Resolve the statement's read snapshot. AS OF pins an explicit commit
  // LSN (time travel); otherwise, with an MVCC manager attached, a plain
  // SELECT reads the latest committed snapshot and an in-transaction SELECT
  // reads through the transaction's own shadow view.
  if (sel.as_of != nullptr || sel.as_of_checkpoint) {
    mvcc::MvccManager* m = mvcc_manager();
    if (m == nullptr) {
      return Status::InvalidArgument(
          "AS OF requires an MVCC manager attached to this database");
    }
    if (qctx->snapshot == nullptr) {
      if (sel.as_of_checkpoint) {
        SQLARRAY_ASSIGN_OR_RETURN(qctx->snapshot, m->OpenAsOfCheckpoint());
      } else {
        SQLARRAY_RETURN_IF_ERROR(engine::BindExpr(sel.as_of.get(), nullptr,
                                                  executor_->registry()));
        SQLARRAY_ASSIGN_OR_RETURN(
            Value v, executor_->EvalStandalone(*sel.as_of, &variables_));
        SQLARRAY_ASSIGN_OR_RETURN(int64_t lsn, v.AsInt());
        SQLARRAY_ASSIGN_OR_RETURN(
            qctx->snapshot, m->OpenAsOf(static_cast<storage::Lsn>(lsn)));
      }
    }
  } else if (q.table != nullptr && qctx->snapshot == nullptr) {
    if (mvcc::MvccManager* m = mvcc_manager(); m != nullptr) {
      if (txn_open_) {
        SQLARRAY_ASSIGN_OR_RETURN(qctx->snapshot, m->TxnView(txn_id_));
      } else {
        SQLARRAY_ASSIGN_OR_RETURN(qctx->snapshot, m->AcquireSnapshot());
      }
    }
  }

  SQLARRAY_RETURN_IF_ERROR(executor_->Bind(&q));
  SQLARRAY_ASSIGN_OR_RETURN(engine::ResultSet rs,
                            executor_->Execute(q, &variables_, qctx));

  if (!sel.order_by.empty()) {
    std::vector<std::pair<int, bool>> keys;
    for (const SelectStmt::OrderKey& key : sel.order_by) {
      int col = -1;
      if (key.position > 0) {
        col = key.position - 1;
      } else {
        for (size_t c = 0; c < rs.columns.size(); ++c) {
          if (rs.columns[c] == key.label) {
            col = static_cast<int>(c);
            break;
          }
        }
      }
      if (col < 0 || col >= static_cast<int>(rs.columns.size())) {
        return Status::InvalidArgument(
            "ORDER BY key does not match a select-list column");
      }
      keys.emplace_back(col, key.descending);
    }
    SortResult(&rs, keys);
  }

  if (has_assignment) {
    // T-SQL assignment SELECT: variables take the values from the last row;
    // an empty result set is flagged by clearing the columns so the caller
    // does not forward it to the client.
    if (!rs.rows.empty()) {
      const std::vector<Value>& last = rs.rows.back();
      for (size_t i = 0; i < sel.items.size(); ++i) {
        if (sel.items[i].assign_var.empty()) continue;
        if (variables_.count(sel.items[i].assign_var) == 0) {
          return Status::NotFound("undeclared variable @" +
                                  sel.items[i].assign_var);
        }
        variables_[sel.items[i].assign_var] = last[i];
      }
    }
    rs.columns.clear();
    rs.rows.clear();
    return rs;
  }
  return rs;
}

Status Session::RunSelect(SelectStmt& sel,
                          std::vector<engine::ResultSet>* results,
                          bool update_session_stats) {
  bool has_assignment = false;
  for (const SelectListItem& item : sel.items) {
    if (!item.assign_var.empty()) has_assignment = true;
  }
  engine::QueryContext qctx;
  ApplyLimits(&qctx);
  SQLARRAY_ASSIGN_OR_RETURN(engine::ResultSet rs, ExecuteSelect(sel, &qctx));
  if (update_session_stats) last_stats_ = qctx.stats;
  if (!has_assignment) results->push_back(std::move(rs));
  return Status::OK();
}

engine::ResultSet Session::RenderProfile(const engine::QueryContext& qctx) {
  // Render the profile tree as a result set: one row per operator in
  // preorder, the stable ProfileColumns() keys, wall_ms last (the only
  // nondeterministic column).
  engine::ResultSet out;
  out.columns = obs::ProfileColumns();
  for (const obs::ProfileRow& row : obs::FlattenProfile(qctx.profile)) {
    const obs::OpCounters& c = row.counters;
    std::vector<Value> cells;
    cells.push_back(Value::Str(row.op));
    cells.push_back(Value::Str(row.detail));
    cells.push_back(Value::Int(c.rows_in));
    cells.push_back(Value::Int(c.rows_out));
    cells.push_back(Value::Int(c.pages_read));
    cells.push_back(Value::Int(c.cache_hits));
    cells.push_back(Value::Int(c.cache_misses));
    cells.push_back(Value::Int(c.udf_calls));
    cells.push_back(Value::Int(c.udf_bytes));
    cells.push_back(Value::Int(c.kernel_dispatches));
    cells.push_back(Value::Int(c.boxed_dispatches));
    cells.push_back(Value::Double(c.modeled_seconds * 1e3));
    cells.push_back(Value::Double(c.wall_seconds * 1e3));
    out.rows.push_back(std::move(cells));
  }
  out.stats = qctx.stats;
  return out;
}

Status Session::RunExplain(ExplainStmt& stmt,
                           std::vector<engine::ResultSet>* results,
                           bool update_session_stats) {
  engine::QueryContext qctx;
  qctx.collect_profile = true;
  ApplyLimits(&qctx);

  if (stmt.target == ExplainStmt::Target::kSelect) {
    SQLARRAY_RETURN_IF_ERROR(ExecuteSelect(stmt.select, &qctx).status());
    if (qctx.snapshot != nullptr) {
      // Surface the statement's snapshot LSN so a profile pins down exactly
      // which version of the data the plan read.
      qctx.profile.mutable_root()->AddChild(
          "snapshot", "lsn=" + std::to_string(qctx.snapshot->lsn()));
    }
  } else {
    // DML: execute under autocommit, attributing the statement's log
    // traffic (including the commit flush) via metric deltas. The embedded
    // query's plan — the INSERT's source SELECT or the DELETE's key scan —
    // becomes a child of the DML root; log traffic lands in a "wal" child's
    // detail string so the column shape stays identical to SELECT profiles.
    bool is_insert = stmt.target == ExplainStmt::Target::kInsert;
    obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
    engine::QueryContext inner;
    inner.collect_profile = true;
    ApplyLimits(&inner);
    int64_t affected = 0;
    SQLARRAY_RETURN_IF_ERROR(AutoCommit([&] {
      return is_insert ? RunInsert(stmt.insert, /*update_session_stats=*/false,
                                   &inner, &affected)
                       : RunDelete(stmt.del, /*update_session_stats=*/false,
                                   &inner, &affected);
    }));
    obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();

    qctx.stats = inner.stats;
    obs::ProfileNode* root = qctx.profile.mutable_root();
    root->op = is_insert ? "insert" : "delete";
    root->detail = is_insert ? stmt.insert.table : stmt.del.table;
    root->counters.rows_out = affected;
    if (!inner.profile.empty()) {
      root->children.push_back(std::move(*inner.profile.mutable_root()));
    }
    if (wal_manager() != nullptr) {
      root->AddChild(
          "wal",
          "records=" + std::to_string(after.Delta(before, "wal.records")) +
              " bytes=" + std::to_string(after.Delta(before, "wal.bytes")) +
              " flushes=" +
              std::to_string(after.Delta(before, "wal.flushes")));
    }
    if (inner.snapshot != nullptr) {
      root->AddChild("snapshot",
                     "lsn=" + std::to_string(inner.snapshot->lsn()));
    }
  }
  if (admission_wait_seconds_ >= 0.0) {
    // Surface the admission-queue wait as its own profile row so EXPLAIN
    // ANALYZE shows where a statement's latency went under load. The server
    // records the wait just before handing the statement to the session.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "wait_ms=%.3f",
                  admission_wait_seconds_ * 1e3);
    qctx.profile.mutable_root()->AddChild("admission", buf);
    admission_wait_seconds_ = -1.0;
  }
  if (update_session_stats) last_stats_ = qctx.stats;
  results->push_back(RenderProfile(qctx));
  return Status::OK();
}

Status Session::RunDelete(DeleteStmt& del, bool update_session_stats,
                          engine::QueryContext* inner_qctx,
                          int64_t* affected) {
  SQLARRAY_ASSIGN_OR_RETURN(storage::Table * table,
                            executor_->db()->GetTable(del.table));
  mvcc::MvccManager* m = mvcc_manager();
  // Under MVCC the commit-time replay notes touched tables itself.
  if (wal::WalManager* w = wal_manager();
      w != nullptr && txn_open_ && m == nullptr) {
    SQLARRAY_RETURN_IF_ERROR(w->NoteTableTouched(txn_id_, table));
  }
  // Collect matching clustered keys with a scan, then delete them — the
  // two-phase shape a real engine's DELETE plan has (no halloween problem).
  engine::Query q;
  q.table = table;
  engine::SelectItem key_item;
  key_item.expr = engine::ColIdx(0);
  key_item.label = "key";
  q.items.push_back(std::move(key_item));
  if (del.where != nullptr) {
    SQLARRAY_RETURN_IF_ERROR(engine::BindExpr(del.where.get(),
                                              &table->schema(),
                                              executor_->registry()));
    q.where = std::move(del.where);
  }
  SQLARRAY_RETURN_IF_ERROR(executor_->Bind(&q));
  engine::QueryContext local_qctx;
  engine::QueryContext* qctx =
      inner_qctx != nullptr ? inner_qctx : &local_qctx;
  ApplyLimits(qctx);
  if (m != nullptr) {
    // The key scan reads the transaction's own view: earlier writes in the
    // same transaction are visible, concurrent committers are not.
    SQLARRAY_ASSIGN_OR_RETURN(qctx->snapshot, m->TxnView(txn_id_));
  }
  SQLARRAY_ASSIGN_OR_RETURN(engine::ResultSet rs,
                            executor_->Execute(q, &variables_, qctx));
  if (update_session_stats) last_stats_ = qctx->stats;
  for (const std::vector<Value>& row : rs.rows) {
    SQLARRAY_RETURN_IF_ERROR(cancel_source_->Check());
    SQLARRAY_ASSIGN_OR_RETURN(int64_t key, row[0].AsInt());
    bool removed = false;
    if (m != nullptr) {
      SQLARRAY_ASSIGN_OR_RETURN(removed, m->ApplyDelete(txn_id_, table, key));
    } else {
      SQLARRAY_ASSIGN_OR_RETURN(removed, table->Delete(key));
    }
    if (!removed) {
      return Status::Internal("row vanished between scan and delete");
    }
  }
  if (affected != nullptr) *affected = static_cast<int64_t>(rs.rows.size());
  return Status::OK();
}

Status Session::RunCreateTable(const CreateTableStmt& ct) {
  std::vector<storage::ColumnDef> cols;
  for (const CreateTableStmt::Column& c : ct.columns) {
    SQLARRAY_ASSIGN_OR_RETURN(storage::ColumnDef def, MapColumn(c));
    cols.push_back(std::move(def));
  }
  SQLARRAY_ASSIGN_OR_RETURN(storage::Schema schema,
                            storage::Schema::Create(std::move(cols)));
  SQLARRAY_ASSIGN_OR_RETURN(
      storage::Table * table,
      executor_->db()->CreateTable(ct.name, std::move(schema)));
  if (wal::WalManager* w = wal_manager(); w != nullptr) {
    SQLARRAY_RETURN_IF_ERROR(
        w->NoteTableCreated(txn_open_ ? txn_id_ : 0, table));
  }
  return Status::OK();
}

Status Session::RunInsert(InsertStmt& ins, bool update_session_stats,
                          engine::QueryContext* inner_qctx,
                          int64_t* affected) {
  SQLARRAY_ASSIGN_OR_RETURN(storage::Table * table,
                            executor_->db()->GetTable(ins.table));
  const storage::Schema& schema = table->schema();
  mvcc::MvccManager* m = mvcc_manager();
  // Under MVCC the commit-time replay notes touched tables itself.
  if (wal::WalManager* w = wal_manager();
      w != nullptr && txn_open_ && m == nullptr) {
    SQLARRAY_RETURN_IF_ERROR(w->NoteTableTouched(txn_id_, table));
  }
  auto insert_row = [&](storage::Row row) -> Status {
    if (m != nullptr) return m->ApplyInsert(txn_id_, table, std::move(row));
    return table->Insert(std::move(row));
  };

  if (ins.select != nullptr) {
    // INSERT INTO ... SELECT: materialize the query, convert each output
    // row to the target schema.
    engine::QueryContext local_qctx;
    engine::QueryContext* qctx =
        inner_qctx != nullptr ? inner_qctx : &local_qctx;
    ApplyLimits(qctx);
    SQLARRAY_ASSIGN_OR_RETURN(engine::ResultSet rs,
                              ExecuteSelect(*ins.select, qctx));
    if (update_session_stats) last_stats_ = qctx->stats;
    if (static_cast<int>(rs.columns.size()) != schema.num_columns()) {
      return Status::InvalidArgument(
          "INSERT ... SELECT arity does not match the table schema");
    }
    for (const std::vector<Value>& values : rs.rows) {
      SQLARRAY_RETURN_IF_ERROR(cancel_source_->Check());
      storage::Row row;
      for (int i = 0; i < schema.num_columns(); ++i) {
        SQLARRAY_ASSIGN_OR_RETURN(storage::RowValue rv,
                                  ToRowValue(values[i], schema.column(i)));
        row.push_back(std::move(rv));
      }
      SQLARRAY_RETURN_IF_ERROR(insert_row(std::move(row)));
    }
    if (affected != nullptr) *affected = static_cast<int64_t>(rs.rows.size());
    return Status::OK();
  }

  for (std::vector<ExprPtr>& row_exprs : ins.rows) {
    SQLARRAY_RETURN_IF_ERROR(cancel_source_->Check());
    if (static_cast<int>(row_exprs.size()) != schema.num_columns()) {
      return Status::InvalidArgument(
          "INSERT arity does not match the table schema");
    }
    storage::Row row;
    for (int i = 0; i < schema.num_columns(); ++i) {
      SQLARRAY_RETURN_IF_ERROR(engine::BindExpr(row_exprs[i].get(), nullptr,
                                                executor_->registry()));
      SQLARRAY_ASSIGN_OR_RETURN(
          Value v, executor_->EvalStandalone(*row_exprs[i], &variables_));
      SQLARRAY_ASSIGN_OR_RETURN(storage::RowValue rv,
                                ToRowValue(v, schema.column(i)));
      row.push_back(std::move(rv));
    }
    SQLARRAY_RETURN_IF_ERROR(insert_row(std::move(row)));
  }
  if (affected != nullptr) *affected = static_cast<int64_t>(ins.rows.size());
  return Status::OK();
}

}  // namespace sqlarray::sql
