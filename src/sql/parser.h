// Recursive-descent parser for the T-SQL-flavored frontend.
#pragma once

#include <string_view>

#include "common/status.h"
#include "sql/ast.h"

namespace sqlarray::sql {

/// Parses a batch of statements (semicolons optional, as in T-SQL).
Result<Script> Parse(std::string_view source);

/// Parses a single standalone expression (used by tests and the sugar
/// translator).
Result<engine::ExprPtr> ParseExpression(std::string_view source);

}  // namespace sqlarray::sql
