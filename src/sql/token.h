// Token model for the T-SQL-flavored frontend.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sqlarray::sql {

enum class TokenType {
  kEnd,
  kIdent,      ///< identifier or keyword (case-insensitive)
  kVariable,   ///< @name
  kInt,        ///< integer literal
  kFloat,      ///< floating literal
  kString,     ///< 'text'
  kBinary,     ///< 0x... literal
  kLParen, kRParen,
  kLBracket, kRBracket,
  kComma, kDot, kSemicolon, kColon,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kEq, kNe, kLt, kLe, kGt, kGe,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;       ///< identifier / variable name (without @)
  int64_t int_value = 0;
  double float_value = 0;
  std::vector<uint8_t> binary_value;
  size_t offset = 0;      ///< byte offset in the source, for diagnostics

  /// Case-insensitive keyword test for kIdent tokens.
  bool IsKeyword(const char* kw) const;
};

}  // namespace sqlarray::sql
