#include "sql/parser.h"

#include <cctype>

#include "sql/lexer.h"

namespace sqlarray::sql {

namespace {

using engine::BinaryOp;
using engine::Expr;
using engine::ExprPtr;
using engine::UnaryOp;
using engine::Value;

/// Words that may never be parsed as bare column identifiers.
bool IsReservedWord(const Token& t) {
  static const char* kReserved[] = {
      "SELECT", "FROM",  "WHERE", "GROUP", "BY",     "TOP",    "AS",
      "DECLARE", "SET",  "INSERT", "INTO", "VALUES", "CREATE", "TABLE",
      "WITH",   "ORDER", "AND",   "OR",    "NOT",    "DELETE"};
  for (const char* kw : kReserved) {
    if (t.IsKeyword(kw)) return true;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Script> ParseScript() {
    Script script;
    while (!At(TokenType::kEnd)) {
      if (Accept(TokenType::kSemicolon)) continue;
      SQLARRAY_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
      script.push_back(std::move(stmt));
    }
    return script;
  }

  Result<ExprPtr> ParseSingleExpression() {
    SQLARRAY_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!At(TokenType::kEnd)) {
      return Status::InvalidArgument("trailing tokens after expression");
    }
    return e;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(int ahead = 1) const {
    size_t p = pos_ + ahead;
    return p < tokens_.size() ? tokens_[p] : tokens_.back();
  }
  bool At(TokenType t) const { return Cur().type == t; }
  bool AtKeyword(const char* kw) const { return Cur().IsKeyword(kw); }
  bool Accept(TokenType t) {
    if (!At(t)) return false;
    ++pos_;
    return true;
  }
  bool AcceptKeyword(const char* kw) {
    if (!AtKeyword(kw)) return false;
    ++pos_;
    return true;
  }
  Status Expect(TokenType t, const char* what) {
    if (!Accept(t)) {
      return Status::InvalidArgument(std::string("expected ") + what +
                                     " at offset " +
                                     std::to_string(Cur().offset));
    }
    return Status::OK();
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Status::InvalidArgument(std::string("expected keyword ") + kw +
                                     " at offset " +
                                     std::to_string(Cur().offset));
    }
    return Status::OK();
  }

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (AtKeyword("DECLARE")) {
      SQLARRAY_ASSIGN_OR_RETURN(stmt.declare, ParseDeclare());
      stmt.kind = Statement::Kind::kDeclare;
      return stmt;
    }
    if (AtKeyword("SET")) {
      // Session options are bare identifiers after SET; everything else is
      // the variable-assignment form.
      if (Peek().IsKeyword("STATEMENT_TIMEOUT_MS") ||
          Peek().IsKeyword("MEMORY_BUDGET_KB")) {
        SQLARRAY_ASSIGN_OR_RETURN(stmt.set_option, ParseSetOption());
        stmt.kind = Statement::Kind::kSetOption;
        return stmt;
      }
      SQLARRAY_ASSIGN_OR_RETURN(stmt.set, ParseSet());
      stmt.kind = Statement::Kind::kSet;
      return stmt;
    }
    if (AtKeyword("SELECT")) {
      SQLARRAY_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
      stmt.kind = Statement::Kind::kSelect;
      return stmt;
    }
    if (AtKeyword("CREATE")) {
      SQLARRAY_ASSIGN_OR_RETURN(stmt.create_table, ParseCreateTable());
      stmt.kind = Statement::Kind::kCreateTable;
      return stmt;
    }
    if (AtKeyword("INSERT")) {
      SQLARRAY_ASSIGN_OR_RETURN(stmt.insert, ParseInsert());
      stmt.kind = Statement::Kind::kInsert;
      return stmt;
    }
    if (AtKeyword("DELETE")) {
      SQLARRAY_ASSIGN_OR_RETURN(stmt.del, ParseDelete());
      stmt.kind = Statement::Kind::kDelete;
      return stmt;
    }
    if (AcceptKeyword("EXPLAIN")) {
      // EXPLAIN is contextual: only meaningful in statement-leading
      // position, so it stays usable as an identifier elsewhere.
      if (!AcceptKeyword("ANALYZE")) {
        return Status::InvalidArgument(
            "EXPLAIN requires ANALYZE (plan-only EXPLAIN is not supported)");
      }
      if (AtKeyword("SELECT")) {
        SQLARRAY_ASSIGN_OR_RETURN(stmt.explain.select, ParseSelect());
        stmt.explain.target = ExplainStmt::Target::kSelect;
      } else if (AtKeyword("INSERT")) {
        SQLARRAY_ASSIGN_OR_RETURN(stmt.explain.insert, ParseInsert());
        stmt.explain.target = ExplainStmt::Target::kInsert;
      } else if (AtKeyword("DELETE")) {
        SQLARRAY_ASSIGN_OR_RETURN(stmt.explain.del, ParseDelete());
        stmt.explain.target = ExplainStmt::Target::kDelete;
      } else {
        return Status::InvalidArgument(
            "EXPLAIN ANALYZE requires a SELECT, INSERT, or DELETE statement");
      }
      stmt.explain.analyze = true;
      stmt.kind = Statement::Kind::kExplain;
      return stmt;
    }
    // Transaction control. Like EXPLAIN, these are contextual keywords,
    // recognized only in statement-leading position.
    if (AcceptKeyword("BEGIN")) {
      if (!AcceptKeyword("TRANSACTION")) AcceptKeyword("TRAN");
      stmt.kind = Statement::Kind::kBegin;
      return stmt;
    }
    if (AcceptKeyword("COMMIT")) {
      if (!AcceptKeyword("TRANSACTION")) AcceptKeyword("TRAN");
      stmt.kind = Statement::Kind::kCommit;
      return stmt;
    }
    if (AcceptKeyword("ROLLBACK")) {
      if (!AcceptKeyword("TRANSACTION")) AcceptKeyword("TRAN");
      stmt.kind = Statement::Kind::kRollback;
      return stmt;
    }
    if (AcceptKeyword("CHECKPOINT")) {
      stmt.kind = Statement::Kind::kCheckpoint;
      return stmt;
    }
    return Status::InvalidArgument("unrecognized statement at offset " +
                                   std::to_string(Cur().offset));
  }

  /// Type names: IDENT possibly followed by (n) or (MAX).
  Result<std::string> ParseTypeName(int32_t* capacity) {
    if (!At(TokenType::kIdent)) {
      return Status::InvalidArgument("expected a type name");
    }
    std::string name = Cur().text;
    ++pos_;
    *capacity = 0;
    if (Accept(TokenType::kLParen)) {
      if (AcceptKeyword("MAX")) {
        name += "(MAX)";
      } else if (At(TokenType::kInt)) {
        *capacity = static_cast<int32_t>(Cur().int_value);
        name += "(" + std::to_string(Cur().int_value) + ")";
        ++pos_;
      } else {
        return Status::InvalidArgument("expected a size or MAX");
      }
      SQLARRAY_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    }
    return name;
  }

  Result<DeclareStmt> ParseDeclare() {
    SQLARRAY_RETURN_IF_ERROR(ExpectKeyword("DECLARE"));
    DeclareStmt d;
    if (!At(TokenType::kVariable)) {
      return Status::InvalidArgument("expected @variable after DECLARE");
    }
    d.name = Cur().text;
    ++pos_;
    int32_t cap = 0;
    SQLARRAY_ASSIGN_OR_RETURN(d.type_name, ParseTypeName(&cap));
    if (Accept(TokenType::kEq)) {
      SQLARRAY_ASSIGN_OR_RETURN(d.init, ParseExpr());
    }
    return d;
  }

  Result<SetStmt> ParseSet() {
    SQLARRAY_RETURN_IF_ERROR(ExpectKeyword("SET"));
    SetStmt s;
    if (!At(TokenType::kVariable)) {
      return Status::InvalidArgument("expected @variable after SET");
    }
    s.name = Cur().text;
    ++pos_;
    // Element-assignment sugar: SET @a[i, j] = v becomes
    // SET @a = Array.UpdateItem(@a, i, j, v).
    if (Accept(TokenType::kLBracket)) {
      SQLARRAY_ASSIGN_OR_RETURN(std::vector<Subscript> subs,
                                ParseSubscripts());
      SQLARRAY_RETURN_IF_ERROR(Expect(TokenType::kEq, "'='"));
      SQLARRAY_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
      std::vector<ExprPtr> args;
      args.push_back(engine::Var(s.name));
      for (Subscript& sub : subs) {
        if (sub.hi != nullptr) {
          return Status::InvalidArgument(
              "slice assignment is not supported; assign one element");
        }
        args.push_back(std::move(sub.lo));
      }
      args.push_back(std::move(value));
      s.value = engine::Call("Array", "UpdateItem", std::move(args));
      return s;
    }
    SQLARRAY_RETURN_IF_ERROR(Expect(TokenType::kEq, "'='"));
    SQLARRAY_ASSIGN_OR_RETURN(s.value, ParseExpr());
    return s;
  }

  /// SET STATEMENT_TIMEOUT_MS = <n> / SET MEMORY_BUDGET_KB = <n>. The value
  /// must be a non-negative integer literal; 0 disables the limit.
  Result<SetOptionStmt> ParseSetOption() {
    SQLARRAY_RETURN_IF_ERROR(ExpectKeyword("SET"));
    SetOptionStmt s;
    if (Cur().IsKeyword("STATEMENT_TIMEOUT_MS")) {
      s.option = "STATEMENT_TIMEOUT_MS";
    } else if (Cur().IsKeyword("MEMORY_BUDGET_KB")) {
      s.option = "MEMORY_BUDGET_KB";
    } else {
      return Status::InvalidArgument("unknown session option");
    }
    ++pos_;
    SQLARRAY_RETURN_IF_ERROR(Expect(TokenType::kEq, "'='"));
    if (Accept(TokenType::kMinus)) {
      return Status::InvalidArgument("session option " + s.option +
                                     " requires a non-negative value");
    }
    if (!At(TokenType::kInt)) {
      return Status::InvalidArgument(
          "expected an integer literal for session option " + s.option);
    }
    s.value = Cur().int_value;
    ++pos_;
    return s;
  }

  Result<SelectStmt> ParseSelect() {
    SQLARRAY_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectStmt sel;
    if (AcceptKeyword("TOP")) {
      bool paren = Accept(TokenType::kLParen);
      if (!At(TokenType::kInt)) {
        return Status::InvalidArgument("expected a row count after TOP");
      }
      sel.top = Cur().int_value;
      ++pos_;
      if (paren) SQLARRAY_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    }
    // Select list.
    while (true) {
      SelectListItem item;
      // @var = expr assignment target?
      if (At(TokenType::kVariable) && Peek().type == TokenType::kEq) {
        item.assign_var = Cur().text;
        pos_ += 2;
      }
      SQLARRAY_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("AS")) {
        if (!At(TokenType::kIdent) && !At(TokenType::kString)) {
          return Status::InvalidArgument("expected a label after AS");
        }
        item.label = Cur().text;
        ++pos_;
      }
      sel.items.push_back(std::move(item));
      if (!Accept(TokenType::kComma)) break;
    }
    // FROM: a table name, dbo.table, or a table-valued function call.
    if (AcceptKeyword("FROM")) {
      if (!At(TokenType::kIdent)) {
        return Status::InvalidArgument("expected a table name after FROM");
      }
      std::string first = Cur().text;
      sel.from_table = first;
      ++pos_;
      if (Accept(TokenType::kDot)) {
        if (!At(TokenType::kIdent)) {
          return Status::InvalidArgument("expected a name after '.'");
        }
        sel.from_table = Cur().text;
        ++pos_;
        if (Accept(TokenType::kLParen)) {
          // FROM Schema.Func(args): a table-valued function source.
          sel.from_is_tvf = true;
          sel.from_schema = first;
          SQLARRAY_ASSIGN_OR_RETURN(sel.from_args, ParseArgs());
        }
        // Otherwise 'first' was a schema prefix like dbo.; ignore it.
      }
      // Time travel: FROM t AS OF <lsn-expr> | AS OF CHECKPOINT. (Table
      // aliases don't exist in this grammar, so AS here is unambiguous.)
      if (AcceptKeyword("AS")) {
        SQLARRAY_RETURN_IF_ERROR(ExpectKeyword("OF"));
        if (AcceptKeyword("CHECKPOINT")) {
          sel.as_of_checkpoint = true;
        } else {
          SQLARRAY_ASSIGN_OR_RETURN(sel.as_of, ParseExpr());
        }
      }
      if (AcceptKeyword("WITH")) {
        SQLARRAY_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
        SQLARRAY_RETURN_IF_ERROR(ExpectKeyword("NOLOCK"));
        SQLARRAY_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        sel.nolock = true;
      }
    }
    if (AcceptKeyword("WHERE")) {
      SQLARRAY_ASSIGN_OR_RETURN(sel.where, ParseExpr());
    }
    if (AcceptKeyword("GROUP")) {
      SQLARRAY_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        SQLARRAY_ASSIGN_OR_RETURN(ExprPtr g, ParseExpr());
        sel.group_by.push_back(std::move(g));
        if (!Accept(TokenType::kComma)) break;
      }
    }
    if (AcceptKeyword("ORDER")) {
      SQLARRAY_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        SelectStmt::OrderKey key;
        if (At(TokenType::kInt)) {
          key.position = static_cast<int>(Cur().int_value);
          ++pos_;
        } else if (At(TokenType::kIdent) && !IsReservedWord(Cur())) {
          key.label = Cur().text;
          ++pos_;
        } else {
          return Status::InvalidArgument(
              "ORDER BY takes a 1-based select-list ordinal or an output "
              "column label");
        }
        if (AcceptKeyword("DESC")) {
          key.descending = true;
        } else {
          AcceptKeyword("ASC");
        }
        sel.order_by.push_back(std::move(key));
        if (!Accept(TokenType::kComma)) break;
      }
    }
    return sel;
  }

  Result<CreateTableStmt> ParseCreateTable() {
    SQLARRAY_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    SQLARRAY_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    CreateTableStmt ct;
    if (!At(TokenType::kIdent)) {
      return Status::InvalidArgument("expected a table name");
    }
    ct.name = Cur().text;
    ++pos_;
    SQLARRAY_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    while (true) {
      CreateTableStmt::Column col;
      if (!At(TokenType::kIdent)) {
        return Status::InvalidArgument("expected a column name");
      }
      col.name = Cur().text;
      ++pos_;
      SQLARRAY_ASSIGN_OR_RETURN(col.type_name, ParseTypeName(&col.capacity));
      // Accept and ignore NOT NULL / PRIMARY KEY decorations.
      while (AcceptKeyword("NOT") || AcceptKeyword("NULL") ||
             AcceptKeyword("PRIMARY") || AcceptKeyword("KEY") ||
             AcceptKeyword("CLUSTERED")) {
      }
      ct.columns.push_back(std::move(col));
      if (!Accept(TokenType::kComma)) break;
    }
    SQLARRAY_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return ct;
  }

  Result<DeleteStmt> ParseDelete() {
    SQLARRAY_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    SQLARRAY_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DeleteStmt del;
    if (!At(TokenType::kIdent)) {
      return Status::InvalidArgument("expected a table name");
    }
    del.table = Cur().text;
    ++pos_;
    if (AcceptKeyword("WHERE")) {
      SQLARRAY_ASSIGN_OR_RETURN(del.where, ParseExpr());
    }
    return del;
  }

  Result<InsertStmt> ParseInsert() {
    SQLARRAY_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    SQLARRAY_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStmt ins;
    if (!At(TokenType::kIdent)) {
      return Status::InvalidArgument("expected a table name");
    }
    ins.table = Cur().text;
    ++pos_;
    if (AtKeyword("SELECT")) {
      SQLARRAY_ASSIGN_OR_RETURN(SelectStmt sel, ParseSelect());
      ins.select = std::make_unique<SelectStmt>(std::move(sel));
      return ins;
    }
    SQLARRAY_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    while (true) {
      SQLARRAY_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
      std::vector<ExprPtr> row;
      while (true) {
        SQLARRAY_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
        if (!Accept(TokenType::kComma)) break;
      }
      SQLARRAY_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      ins.rows.push_back(std::move(row));
      if (!Accept(TokenType::kComma)) break;
    }
    return ins;
  }

  // --- expressions -------------------------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    SQLARRAY_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (AcceptKeyword("OR")) {
      SQLARRAY_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = engine::Bin(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    SQLARRAY_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (AcceptKeyword("AND")) {
      SQLARRAY_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = engine::Bin(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      SQLARRAY_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return engine::Un(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    SQLARRAY_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    BinaryOp op;
    if (Accept(TokenType::kEq)) {
      op = BinaryOp::kEq;
    } else if (Accept(TokenType::kNe)) {
      op = BinaryOp::kNe;
    } else if (Accept(TokenType::kLt)) {
      op = BinaryOp::kLt;
    } else if (Accept(TokenType::kLe)) {
      op = BinaryOp::kLe;
    } else if (Accept(TokenType::kGt)) {
      op = BinaryOp::kGt;
    } else if (Accept(TokenType::kGe)) {
      op = BinaryOp::kGe;
    } else {
      return lhs;
    }
    SQLARRAY_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return engine::Bin(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> ParseAdditive() {
    SQLARRAY_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Accept(TokenType::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (Accept(TokenType::kMinus)) {
        op = BinaryOp::kSub;
      } else {
        return lhs;
      }
      SQLARRAY_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = engine::Bin(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    SQLARRAY_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Accept(TokenType::kStar)) {
        op = BinaryOp::kMul;
      } else if (Accept(TokenType::kSlash)) {
        op = BinaryOp::kDiv;
      } else if (Accept(TokenType::kPercent)) {
        op = BinaryOp::kMod;
      } else {
        return lhs;
      }
      SQLARRAY_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = engine::Bin(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (Accept(TokenType::kMinus)) {
      SQLARRAY_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return engine::Un(UnaryOp::kNeg, std::move(operand));
    }
    if (Accept(TokenType::kPlus)) return ParseUnary();
    return ParsePostfix();
  }

  /// One subscript entry: a scalar index or a lo:hi slice.
  struct Subscript {
    ExprPtr lo;
    ExprPtr hi;  ///< null for scalar indices
  };

  Result<std::vector<Subscript>> ParseSubscripts() {
    // Already past '['.
    std::vector<Subscript> subs;
    while (true) {
      Subscript s;
      SQLARRAY_ASSIGN_OR_RETURN(s.lo, ParseExpr());
      if (Accept(TokenType::kColon)) {
        SQLARRAY_ASSIGN_OR_RETURN(s.hi, ParseExpr());
      }
      subs.push_back(std::move(s));
      if (!Accept(TokenType::kComma)) break;
    }
    SQLARRAY_RETURN_IF_ERROR(Expect(TokenType::kRBracket, "']'"));
    return subs;
  }

  /// Desugars base[subscripts] into Array.Item / Array.Slice calls — the
  /// Sec. 8 "syntactic sugar to T-SQL" the paper proposes as future work.
  static ExprPtr DesugarSubscript(ExprPtr base, std::vector<Subscript> subs) {
    bool any_slice = false;
    for (const Subscript& s : subs) {
      if (s.hi != nullptr) any_slice = true;
    }
    std::vector<ExprPtr> args;
    args.push_back(std::move(base));
    if (!any_slice) {
      for (Subscript& s : subs) args.push_back(std::move(s.lo));
      return engine::Call("Array", "Item", std::move(args));
    }
    // Slice: per dimension (lo, hi, collapse) — scalar indices become
    // (i, i+1, collapse=1) so the dimension is dropped, like a[2, 0:3].
    for (Subscript& s : subs) {
      bool scalar = s.hi == nullptr;
      ExprPtr lo = engine::CloneExpr(*s.lo);
      ExprPtr hi = scalar ? engine::Bin(BinaryOp::kAdd,
                                        engine::CloneExpr(*s.lo),
                                        engine::Lit(Value::Int(1)))
                          : std::move(s.hi);
      args.push_back(std::move(lo));
      args.push_back(std::move(hi));
      args.push_back(engine::Lit(Value::Int(scalar ? 1 : 0)));
    }
    return engine::Call("Array", "Slice", std::move(args));
  }

  Result<ExprPtr> ParsePostfix() {
    SQLARRAY_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
    while (Accept(TokenType::kLBracket)) {
      SQLARRAY_ASSIGN_OR_RETURN(std::vector<Subscript> subs,
                                ParseSubscripts());
      e = DesugarSubscript(std::move(e), std::move(subs));
    }
    return e;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Cur();
    switch (t.type) {
      case TokenType::kInt: {
        ++pos_;
        return engine::Lit(Value::Int(t.int_value));
      }
      case TokenType::kFloat: {
        ++pos_;
        return engine::Lit(Value::Double(t.float_value));
      }
      case TokenType::kString: {
        ++pos_;
        return engine::Lit(Value::Str(t.text));
      }
      case TokenType::kBinary: {
        ++pos_;
        return engine::Lit(Value::Bytes(t.binary_value));
      }
      case TokenType::kVariable: {
        ++pos_;
        return engine::Var(t.text);
      }
      case TokenType::kLParen: {
        ++pos_;
        SQLARRAY_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        SQLARRAY_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        return e;
      }
      case TokenType::kStar: {
        ++pos_;
        return engine::Star();
      }
      case TokenType::kIdent: {
        if (t.IsKeyword("NULL")) {
          ++pos_;
          return engine::Lit(Value::Null());
        }
        if (IsReservedWord(t)) {
          return Status::InvalidArgument(
              "reserved word '" + t.text + "' cannot start an expression");
        }
        // Schema.Func(args), Func(args), or a bare column name.
        std::string first = t.text;
        ++pos_;
        if (Accept(TokenType::kDot)) {
          if (!At(TokenType::kIdent)) {
            return Status::InvalidArgument("expected a name after '.'");
          }
          std::string second = Cur().text;
          ++pos_;
          SQLARRAY_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
          SQLARRAY_ASSIGN_OR_RETURN(std::vector<ExprPtr> args, ParseArgs());
          return engine::Call(first, second, std::move(args));
        }
        if (Accept(TokenType::kLParen)) {
          SQLARRAY_ASSIGN_OR_RETURN(std::vector<ExprPtr> args, ParseArgs());
          // Unqualified call: built-in aggregates and dbo functions.
          return engine::Call("", first, std::move(args));
        }
        return engine::Col(first);
      }
      default:
        return Status::InvalidArgument("unexpected token at offset " +
                                       std::to_string(t.offset));
    }
  }

  /// Args up to the closing paren (already past the opening paren).
  Result<std::vector<ExprPtr>> ParseArgs() {
    std::vector<ExprPtr> args;
    if (Accept(TokenType::kRParen)) return args;
    while (true) {
      SQLARRAY_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      args.push_back(std::move(e));
      if (!Accept(TokenType::kComma)) break;
    }
    SQLARRAY_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return args;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Script> Parse(std::string_view source) {
  SQLARRAY_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  Parser parser(std::move(tokens));
  return parser.ParseScript();
}

Result<engine::ExprPtr> ParseExpression(std::string_view source) {
  SQLARRAY_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  Parser parser(std::move(tokens));
  return parser.ParseSingleExpression();
}

}  // namespace sqlarray::sql
