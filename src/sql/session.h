// Session: executes parsed T-SQL scripts against the engine.
//
// Holds the variable environment across statements (DECLARE/SET), converts
// SELECT statements into bound engine queries (recognizing native aggregates
// and registered UDAs in the select list), and runs DDL/DML.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/exec.h"
#include "gov/gov.h"
#include "sql/ast.h"

namespace sqlarray::wal {
class WalManager;
}  // namespace sqlarray::wal

namespace sqlarray::mvcc {
class MvccManager;
}  // namespace sqlarray::mvcc

namespace sqlarray::sql {

/// An interactive session over one Executor.
class Session {
 public:
  explicit Session(engine::Executor* executor)
      : executor_(executor),
        cancel_source_(std::make_shared<gov::CancelSource>()) {
    // Wire up the subquery runner so reader-style UDFs (ConcatQuery) can
    // pull rows through this session. The RAII scope owns the runner and
    // uninstalls it when the session dies — no manual uninstall, no
    // destructor-ordering hazard. Nested statements run with
    // update_session_stats=false, so a subquery never clobbers the outer
    // statement's last_stats() (the caller merges the subquery's stats
    // into its own context explicitly).
    subquery_scope_ = executor_->InstallSubqueryRunner(
        [this](const std::string& sqltext)
            -> Result<engine::SubqueryResult> {
          SQLARRAY_ASSIGN_OR_RETURN(
              std::vector<engine::ResultSet> results,
              ExecuteScript(sqltext, /*update_session_stats=*/false));
          if (results.size() != 1) {
            return Status::InvalidArgument(
                "subquery must be a single result-producing SELECT");
          }
          engine::SubqueryResult out;
          out.rows = std::move(results[0].rows);
          out.stats = results[0].stats;
          return out;
        });
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses and executes a batch. Returns one ResultSet per SELECT that
  /// produces client-visible rows (assignment SELECTs produce none;
  /// EXPLAIN ANALYZE produces its profile tree as rows).
  Result<std::vector<engine::ResultSet>> Execute(std::string_view sql) {
    return ExecuteScript(sql, /*update_session_stats=*/true);
  }

  /// Reads a session variable (test/bench access).
  Result<engine::Value> GetVariable(const std::string& name) const;
  /// Sets a session variable directly.
  void SetVariable(const std::string& name, engine::Value v) {
    variables_[name] = std::move(v);
  }

  std::map<std::string, engine::Value>* variables() { return &variables_; }
  engine::Executor* executor() { return executor_; }

  /// Statistics of the most recent query.
  const engine::QueryStats& last_stats() const { return last_stats_; }

  /// True between BEGIN and COMMIT/ROLLBACK.
  bool in_transaction() const { return txn_open_; }

  /// The session's kill switch: a server (or another thread) cancels the
  /// currently running statement via this source. The shared_ptr stays
  /// valid even if the session is torn down mid-kill.
  const std::shared_ptr<gov::CancelSource>& cancel_source() const {
    return cancel_source_;
  }

  /// Session limits (also settable via SET STATEMENT_TIMEOUT_MS /
  /// SET MEMORY_BUDGET_KB). 0 disables the limit.
  void set_statement_timeout_ms(int64_t ms) { statement_timeout_ms_ = ms; }
  int64_t statement_timeout_ms() const { return statement_timeout_ms_; }
  void set_memory_budget_kb(int64_t kb) { memory_budget_kb_ = kb; }
  int64_t memory_budget_kb() const { return memory_budget_kb_; }

  /// Peak query-private memory charged during the last governed statement.
  int64_t last_peak_memory_bytes() const { return budget_.peak(); }

  /// Records how long the statement waited in the admission queue; surfaces
  /// as an "admission" row in the next EXPLAIN ANALYZE profile.
  void set_admission_wait(double seconds) { admission_wait_seconds_ = seconds; }

  /// Server kill path: rolls back any open transaction after a statement was
  /// cancelled mid-flight, so the session is reusable and storage is clean.
  Status ForceRollback();

 private:
  /// Statement loop. `update_session_stats` is false for nested scripts
  /// (reader-style UDF subqueries): they own their statistics and must not
  /// touch last_stats_.
  Result<std::vector<engine::ResultSet>> ExecuteScript(
      std::string_view sql, bool update_session_stats);
  Status RunStatement(Statement& stmt, std::vector<engine::ResultSet>* results,
                      bool update_session_stats);
  Status RunSelect(SelectStmt& sel, std::vector<engine::ResultSet>* results,
                   bool update_session_stats);
  /// Binds and executes one SELECT under the statement's context, applying
  /// ORDER BY and assignment semantics; assignment SELECTs return an empty
  /// result set. Statistics (and the profile, when requested) land in qctx.
  Result<engine::ResultSet> ExecuteSelect(SelectStmt& sel,
                                          engine::QueryContext* qctx);
  /// Runs the EXPLAIN ANALYZE statement and renders its profile tree.
  Status RunExplain(ExplainStmt& stmt, std::vector<engine::ResultSet>* results,
                    bool update_session_stats);
  Status RunCreateTable(const CreateTableStmt& ct);
  /// DML runners. `inner_qctx` (EXPLAIN ANALYZE) collects the profile of
  /// the embedded query (the INSERT's SELECT source / the DELETE's key
  /// scan); `affected` receives the row count.
  Status RunDelete(DeleteStmt& del, bool update_session_stats,
                   engine::QueryContext* inner_qctx = nullptr,
                   int64_t* affected = nullptr);
  Status RunInsert(InsertStmt& ins, bool update_session_stats,
                   engine::QueryContext* inner_qctx = nullptr,
                   int64_t* affected = nullptr);

  /// Fills a query context with this session's governance limits so the
  /// executor observes cancellation/deadlines and charges the budget.
  void ApplyLimits(engine::QueryContext* qctx) {
    qctx->limits.cancel = cancel_source_;
    qctx->limits.budget = &budget_;
  }

  /// The database's WAL manager, or null when running without one.
  wal::WalManager* wal_manager() const;
  /// The database's MVCC manager, or null in legacy single-version mode.
  /// When attached, transactions run as MVCC transactions (snapshot reads,
  /// shadow writes, first-updater-wins conflicts) and every SELECT reads
  /// through a consistent snapshot.
  mvcc::MvccManager* mvcc_manager() const;
  /// Wraps `body` in BEGIN/COMMIT when a WAL is attached and no explicit
  /// transaction is open (statement-level atomicity: a failing statement
  /// rolls back cleanly). Otherwise runs `body` directly.
  Status AutoCommit(const std::function<Status()>& body);
  /// Renders a profile tree into the EXPLAIN ANALYZE result-set shape.
  static engine::ResultSet RenderProfile(const engine::QueryContext& qctx);

  engine::Executor* executor_;
  std::map<std::string, engine::Value> variables_;
  engine::QueryStats last_stats_;
  engine::SubqueryScope subquery_scope_;
  bool txn_open_ = false;
  uint64_t txn_id_ = 0;

  // Governance state. The cancel source is shared with whoever might kill
  // this session's statements (the server's watchdog, a test thread); the
  // budget is private and reset per top-level statement.
  std::shared_ptr<gov::CancelSource> cancel_source_;
  gov::MemoryBudget budget_;
  int64_t statement_timeout_ms_ = 0;
  int64_t memory_budget_kb_ = 0;
  /// Negative = statement did not come through an admission controller; the
  /// server records the actual wait (possibly 0) before each statement.
  double admission_wait_seconds_ = -1.0;
};

}  // namespace sqlarray::sql
