// Session: executes parsed T-SQL scripts against the engine.
//
// Holds the variable environment across statements (DECLARE/SET), converts
// SELECT statements into bound engine queries (recognizing native aggregates
// and registered UDAs in the select list), and runs DDL/DML.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/exec.h"
#include "sql/ast.h"

namespace sqlarray::sql {

/// An interactive session over one Executor.
class Session {
 public:
  explicit Session(engine::Executor* executor) : executor_(executor) {
    // Wire up the subquery runner so reader-style UDFs (ConcatQuery) can
    // pull rows through this session.
    subquery_fn_ = [this](const std::string& sqltext)
        -> Result<engine::SubqueryResult> {
      // A nested query must not clobber the outer statement's stats (the
      // caller merges the subquery's stats into its own context).
      engine::QueryStats saved = last_stats_;
      auto results_or = Execute(sqltext);
      last_stats_ = saved;
      SQLARRAY_ASSIGN_OR_RETURN(std::vector<engine::ResultSet> results,
                                std::move(results_or));
      if (results.size() != 1) {
        return Status::InvalidArgument(
            "subquery must be a single result-producing SELECT");
      }
      engine::SubqueryResult out;
      out.rows = std::move(results[0].rows);
      out.stats = results[0].stats;
      return out;
    };
    executor_->set_subquery_runner(&subquery_fn_);
  }

  ~Session() { executor_->set_subquery_runner(nullptr); }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses and executes a batch. Returns one ResultSet per SELECT that
  /// produces client-visible rows (assignment SELECTs produce none).
  Result<std::vector<engine::ResultSet>> Execute(std::string_view sql);

  /// Reads a session variable (test/bench access).
  Result<engine::Value> GetVariable(const std::string& name) const;
  /// Sets a session variable directly.
  void SetVariable(const std::string& name, engine::Value v) {
    variables_[name] = std::move(v);
  }

  std::map<std::string, engine::Value>* variables() { return &variables_; }
  engine::Executor* executor() { return executor_; }

  /// Statistics of the most recent query.
  const engine::QueryStats& last_stats() const { return last_stats_; }

 private:
  Status RunStatement(Statement& stmt,
                      std::vector<engine::ResultSet>* results);
  Status RunSelect(SelectStmt& sel, std::vector<engine::ResultSet>* results);
  /// Binds and executes one SELECT, applying ORDER BY and assignment
  /// semantics; assignment SELECTs return an empty result set.
  Result<engine::ResultSet> ExecuteSelect(SelectStmt& sel);
  Status RunCreateTable(const CreateTableStmt& ct);
  Status RunDelete(DeleteStmt& del);
  Status RunInsert(InsertStmt& ins);

  engine::Executor* executor_;
  std::map<std::string, engine::Value> variables_;
  engine::QueryStats last_stats_;
  engine::SubqueryFn subquery_fn_;
};

}  // namespace sqlarray::sql
