// Lexer for the T-SQL-flavored query language.
#pragma once

#include <string_view>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace sqlarray::sql {

/// Tokenizes `source`. Comments (-- to end of line, /* ... */) and
/// whitespace are skipped. The trailing token is always kEnd.
Result<std::vector<Token>> Lex(std::string_view source);

}  // namespace sqlarray::sql
