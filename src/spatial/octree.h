// Bucketed point octree (Sec. 2.3).
//
// N-body snapshots are arranged "in coherent chunks organized into a spatial
// octree, not necessarily balanced", computed from a space-filling-curve
// index, with a few thousand particles per bucket. This octree subdivides
// until buckets fall below a capacity, supports box/sphere/cone retrieval,
// and can emit decimated (sub-sampled, weighted) levels for visualization.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/status.h"
#include "spatial/geometry.h"

namespace sqlarray::spatial {

/// A weighted sample from a decimated octree level.
struct DecimatedPoint {
  Vec3 position;
  double weight;  ///< number of original points it represents
};

/// Octree over 3-D points identified by dense ids [0, n).
class Octree {
 public:
  /// Builds over `points` within `bounds`, splitting nodes above
  /// `bucket_capacity` points (a few thousand in the paper's design).
  static Result<Octree> Build(std::vector<Vec3> points, Aabb bounds,
                              int64_t bucket_capacity);

  int64_t size() const { return static_cast<int64_t>(points_.size()); }
  /// Number of leaf buckets.
  int64_t bucket_count() const;
  /// Maximum depth reached.
  int max_depth() const { return max_depth_; }

  /// Collects ids of points inside the predicate (any of Aabb, Sphere, Cone
  /// — anything with Contains(Vec3) and MayIntersect(Aabb)).
  template <typename Pred>
  std::vector<int64_t> Query(const Pred& pred) const {
    std::vector<int64_t> out;
    QueryNode(0, pred, &out);
    return out;
  }

  /// Emits one representative per node at `depth` (or leaf, if shallower),
  /// weighted by its point count — the paper's decimated visualization tree.
  std::vector<DecimatedPoint> Decimate(int depth) const;

  /// Invokes `fn(node_bounds, point_ids)` for every leaf bucket.
  void ForEachBucket(
      const std::function<void(const Aabb&, std::span<const int64_t>)>& fn)
      const;

 private:
  struct Node {
    Aabb bounds;
    int64_t begin = 0, end = 0;         ///< range into order_
    int64_t children[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
    bool leaf = true;
    int depth = 0;
  };

  Octree(std::vector<Vec3> points, int64_t capacity)
      : points_(std::move(points)), capacity_(capacity) {}

  void BuildNode(int64_t node, int depth);

  template <typename Pred>
  void QueryNode(int64_t node, const Pred& pred,
                 std::vector<int64_t>* out) const {
    const Node& nd = nodes_[node];
    if (!pred.MayIntersect(nd.bounds)) return;
    if (nd.leaf) {
      for (int64_t i = nd.begin; i < nd.end; ++i) {
        if (pred.Contains(points_[order_[i]])) out->push_back(order_[i]);
      }
      return;
    }
    for (int64_t c : nd.children) {
      if (c >= 0) QueryNode(c, pred, out);
    }
  }

  std::vector<Vec3> points_;
  int64_t capacity_;
  std::vector<int64_t> order_;
  std::vector<Node> nodes_;
  int max_depth_ = 0;
  static constexpr int kMaxDepth = 21;
};

}  // namespace sqlarray::spatial
