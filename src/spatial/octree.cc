#include "spatial/octree.h"

#include <algorithm>
#include <array>
#include <numeric>
#include <span>

namespace sqlarray::spatial {

Result<Octree> Octree::Build(std::vector<Vec3> points, Aabb bounds,
                             int64_t bucket_capacity) {
  if (bucket_capacity < 1) {
    return Status::InvalidArgument("bucket capacity must be >= 1");
  }
  for (const Vec3& p : points) {
    if (!bounds.Contains(p)) {
      return Status::InvalidArgument("point outside the octree bounds");
    }
  }
  Octree tree(std::move(points), bucket_capacity);
  tree.order_.resize(tree.points_.size());
  std::iota(tree.order_.begin(), tree.order_.end(), 0);

  Node root;
  root.bounds = bounds;
  root.begin = 0;
  root.end = static_cast<int64_t>(tree.points_.size());
  tree.nodes_.push_back(root);
  tree.BuildNode(0, 0);
  return tree;
}

void Octree::BuildNode(int64_t node, int depth) {
  max_depth_ = std::max(max_depth_, depth);
  nodes_[node].depth = depth;
  int64_t count = nodes_[node].end - nodes_[node].begin;
  if (count <= capacity_ || depth >= kMaxDepth) return;

  nodes_[node].leaf = false;
  const Vec3 c = nodes_[node].bounds.Center();
  const Aabb bounds = nodes_[node].bounds;
  int64_t begin = nodes_[node].begin;
  int64_t end = nodes_[node].end;

  // Partition the id range into the 8 octants with three binary splits.
  auto octant = [&](int64_t id) {
    const Vec3& p = points_[id];
    return (p.x >= c.x ? 1 : 0) | (p.y >= c.y ? 2 : 0) | (p.z >= c.z ? 4 : 0);
  };
  // Counting sort by octant (stable, O(n)).
  std::array<int64_t, 9> counts{};
  for (int64_t i = begin; i < end; ++i) counts[octant(order_[i]) + 1]++;
  for (int k = 0; k < 8; ++k) counts[k + 1] += counts[k];
  std::vector<int64_t> tmp(end - begin);
  std::array<int64_t, 8> cursor{};
  for (int k = 0; k < 8; ++k) cursor[k] = counts[k];
  for (int64_t i = begin; i < end; ++i) {
    int o = octant(order_[i]);
    tmp[cursor[o]++] = order_[i];
  }
  std::copy(tmp.begin(), tmp.end(), order_.begin() + begin);

  for (int k = 0; k < 8; ++k) {
    int64_t cb = begin + counts[k];
    int64_t ce = begin + counts[k + 1];
    if (cb == ce) continue;
    Node child;
    child.bounds.lo = {k & 1 ? c.x : bounds.lo.x, k & 2 ? c.y : bounds.lo.y,
                       k & 4 ? c.z : bounds.lo.z};
    child.bounds.hi = {k & 1 ? bounds.hi.x : c.x, k & 2 ? bounds.hi.y : c.y,
                       k & 4 ? bounds.hi.z : c.z};
    child.begin = cb;
    child.end = ce;
    int64_t child_idx = static_cast<int64_t>(nodes_.size());
    nodes_.push_back(child);
    nodes_[node].children[k] = child_idx;
    BuildNode(child_idx, depth + 1);
  }
}

int64_t Octree::bucket_count() const {
  int64_t n = 0;
  for (const Node& nd : nodes_) n += nd.leaf ? 1 : 0;
  return n;
}

std::vector<DecimatedPoint> Octree::Decimate(int depth) const {
  std::vector<DecimatedPoint> out;
  for (const Node& nd : nodes_) {
    bool emit = (nd.depth == depth) || (nd.leaf && nd.depth < depth);
    if (!emit || nd.end == nd.begin) continue;
    // Representative: centroid of the bucket, weighted by its population —
    // "each sub-sampled particle would get a different weight according to
    // the number of original particles in its region of attraction".
    Vec3 sum;
    for (int64_t i = nd.begin; i < nd.end; ++i) {
      sum = sum + points_[order_[i]];
    }
    double w = static_cast<double>(nd.end - nd.begin);
    out.push_back({sum * (1.0 / w), w});
  }
  return out;
}

void Octree::ForEachBucket(
    const std::function<void(const Aabb&, std::span<const int64_t>)>& fn)
    const {
  for (const Node& nd : nodes_) {
    if (!nd.leaf) continue;
    fn(nd.bounds, std::span<const int64_t>(order_.data() + nd.begin,
                                           static_cast<size_t>(nd.end - nd.begin)));
  }
}

}  // namespace sqlarray::spatial
