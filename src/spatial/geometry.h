// Geometric primitives for spatial retrieval (Sec. 2.3).
//
// Light-cone construction "requires a spatial index that can retrieve points
// from within a cone or other geometric primitives"; these are the predicate
// types the octree understands.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

namespace sqlarray::spatial {

/// A 3-vector.
struct Vec3 {
  double x = 0, y = 0, z = 0;

  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  double Dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  double Norm() const { return std::sqrt(Dot(*this)); }
  Vec3 Normalized() const {
    double n = Norm();
    return n > 0 ? Vec3{x / n, y / n, z / n} : Vec3{0, 0, 0};
  }
};

/// Axis-aligned box [lo, hi).
struct Aabb {
  Vec3 lo, hi;

  bool Contains(const Vec3& p) const {
    return p.x >= lo.x && p.x < hi.x && p.y >= lo.y && p.y < hi.y &&
           p.z >= lo.z && p.z < hi.z;
  }
  Vec3 Center() const { return (lo + hi) * 0.5; }
  /// Half of the box diagonal (circumscribed sphere radius).
  double CircumRadius() const { return (hi - lo).Norm() * 0.5; }

  /// Overlap test against another box (exact for AABBs).
  bool MayIntersect(const Aabb& box) const {
    return lo.x < box.hi.x && box.lo.x < hi.x && lo.y < box.hi.y &&
           box.lo.y < hi.y && lo.z < box.hi.z && box.lo.z < hi.z;
  }
};

/// A sphere predicate.
struct Sphere {
  Vec3 center;
  double radius = 0;

  bool Contains(const Vec3& p) const {
    return (p - center).Dot(p - center) <= radius * radius;
  }
  /// Conservative test: can the sphere intersect this box?
  bool MayIntersect(const Aabb& box) const {
    Vec3 c = box.Center();
    return (c - center).Norm() <= radius + box.CircumRadius();
  }
};

/// An infinite cone predicate (apex, axis, half-angle), optionally bounded by
/// a radial shell [r_min, r_max] from the apex — the light-cone geometry: a
/// shell selects the epoch (comoving distance), the cone selects the sky area.
struct Cone {
  Vec3 apex;
  Vec3 axis;        ///< unit direction
  double cos_half_angle = 1.0;
  double r_min = 0.0;
  double r_max = std::numeric_limits<double>::infinity();

  bool Contains(const Vec3& p) const {
    Vec3 d = p - apex;
    double r = d.Norm();
    if (r < r_min || r > r_max) return false;
    if (r == 0) return r_min == 0;
    return d.Dot(axis) >= cos_half_angle * r;
  }

  /// Conservative box test via the circumscribed sphere: the box may hold
  /// cone points if its center lies within (half-angle + angular radius of
  /// the sphere) of the axis and its radial shell overlaps.
  bool MayIntersect(const Aabb& box) const {
    Vec3 c = box.Center() - apex;
    double rad = box.CircumRadius();
    double r = c.Norm();
    if (r - rad > r_max || r + rad < r_min) return false;
    if (r <= rad) return true;  // box contains the apex region
    double cos_c = c.Dot(axis) / r;
    double ang_c = std::acos(std::clamp(cos_c, -1.0, 1.0));
    double ang_half = std::acos(std::clamp(cos_half_angle, -1.0, 1.0));
    double ang_rad = std::asin(std::clamp(rad / r, 0.0, 1.0));
    return ang_c <= ang_half + ang_rad;
  }
};

}  // namespace sqlarray::spatial
