// k-d tree for nearest-neighbor search in coefficient spaces.
//
// Sec. 2.2: similar-spectrum search builds a kd-tree over PCA expansion
// coefficients and looks up nearest neighbors of a query spectrum's
// coefficient vector. The tree handles any (runtime) dimensionality.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace sqlarray::spatial {

/// A k-nearest-neighbor result: point id and squared Euclidean distance.
struct Neighbor {
  int64_t id;
  double dist_sq;
};

/// Static k-d tree over n points of dimension d. Built once, queried many
/// times; points are stored row-major (point i at data[i*d .. i*d+d)).
class KdTree {
 public:
  /// Builds a balanced tree (median splits). `points.size()` must be a
  /// multiple of `dim`.
  static Result<KdTree> Build(std::vector<double> points, int dim);

  int64_t size() const { return n_; }
  int dim() const { return dim_; }

  /// Returns the k nearest neighbors of `query`, ascending by distance.
  /// k is clamped to the point count.
  std::vector<Neighbor> Nearest(std::span<const double> query, int k) const;

  /// Returns all points within `radius` of `query`, ascending by distance.
  std::vector<Neighbor> WithinRadius(std::span<const double> query,
                                     double radius) const;

 private:
  struct Node {
    int32_t axis = -1;     ///< split axis, -1 for leaf
    double split = 0;      ///< split coordinate
    int64_t begin = 0;     ///< leaf: range into order_
    int64_t end = 0;
    int64_t left = -1;     ///< child node indices
    int64_t right = -1;
  };

  KdTree(std::vector<double> points, int dim)
      : points_(std::move(points)), dim_(dim),
        n_(static_cast<int64_t>(points_.size()) / dim) {}

  int64_t BuildNode(int64_t begin, int64_t end, int depth);
  const double* PointAt(int64_t ordered_idx) const {
    return points_.data() + order_[ordered_idx] * dim_;
  }

  template <typename Visit>
  void Search(int64_t node, std::span<const double> query,
              double& worst_sq, const Visit& visit) const;

  std::vector<double> points_;
  int dim_;
  int64_t n_;
  std::vector<int64_t> order_;  ///< permutation of point ids
  std::vector<Node> nodes_;
  static constexpr int64_t kLeafSize = 16;
};

}  // namespace sqlarray::spatial
