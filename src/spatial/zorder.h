// 3-D Morton (z-order) space-filling curve codec.
//
// The turbulence database partitions its grid along a z-index (Sec. 2.1) and
// the N-body octree buckets are computed from a space-filling curve index
// (Sec. 2.3). 21 bits per axis pack into a 63-bit code, enough for 2^21-cell
// grids per dimension.
#pragma once

#include <array>
#include <cstdint>

namespace sqlarray::spatial {

/// Maximum per-axis coordinate (21 bits).
inline constexpr uint32_t kMaxZCoord = (1u << 21) - 1;

/// Interleaves the low 21 bits of x, y, z into a Morton code
/// (x owns bits 0, 3, 6, ...).
uint64_t MortonEncode3(uint32_t x, uint32_t y, uint32_t z);

/// Inverse of MortonEncode3.
std::array<uint32_t, 3> MortonDecode3(uint64_t code);

/// Morton code of the cell containing a point in [0, box)^3 on an n^3 grid.
uint64_t MortonCellOf(double px, double py, double pz, double box, uint32_t n);

}  // namespace sqlarray::spatial
