#include "spatial/kdtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

namespace sqlarray::spatial {

Result<KdTree> KdTree::Build(std::vector<double> points, int dim) {
  if (dim < 1) {
    return Status::InvalidArgument("kd-tree dimension must be >= 1");
  }
  if (points.size() % static_cast<size_t>(dim) != 0) {
    return Status::InvalidArgument(
        "point buffer length must be a multiple of the dimension");
  }
  KdTree tree(std::move(points), dim);
  tree.order_.resize(tree.n_);
  std::iota(tree.order_.begin(), tree.order_.end(), 0);
  if (tree.n_ > 0) tree.BuildNode(0, tree.n_, 0);
  return tree;
}

int64_t KdTree::BuildNode(int64_t begin, int64_t end, int depth) {
  int64_t node_idx = static_cast<int64_t>(nodes_.size());
  nodes_.emplace_back();

  if (end - begin <= kLeafSize) {
    nodes_[node_idx].axis = -1;
    nodes_[node_idx].begin = begin;
    nodes_[node_idx].end = end;
    return node_idx;
  }

  // Split on the axis of largest spread for better balance than cycling.
  int best_axis = depth % dim_;
  double best_spread = -1;
  for (int a = 0; a < dim_; ++a) {
    double lo = points_[order_[begin] * dim_ + a];
    double hi = lo;
    for (int64_t i = begin; i < end; ++i) {
      double v = points_[order_[i] * dim_ + a];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_axis = a;
    }
  }

  int64_t mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end, [&](int64_t a, int64_t b) {
                     return points_[a * dim_ + best_axis] <
                            points_[b * dim_ + best_axis];
                   });

  nodes_[node_idx].axis = best_axis;
  nodes_[node_idx].split = points_[order_[mid] * dim_ + best_axis];
  int64_t left = BuildNode(begin, mid, depth + 1);
  int64_t right = BuildNode(mid, end, depth + 1);
  nodes_[node_idx].left = left;
  nodes_[node_idx].right = right;
  return node_idx;
}

namespace {

double DistSq(const double* a, const double* b, int dim) {
  double sum = 0;
  for (int k = 0; k < dim; ++k) {
    double d = a[k] - b[k];
    sum += d * d;
  }
  return sum;
}

}  // namespace

template <typename Visit>
void KdTree::Search(int64_t node, std::span<const double> query,
                    double& worst_sq, const Visit& visit) const {
  const Node& nd = nodes_[node];
  if (nd.axis < 0) {
    for (int64_t i = nd.begin; i < nd.end; ++i) {
      double d = DistSq(PointAt(i), query.data(), dim_);
      if (d <= worst_sq) visit(order_[i], d);
    }
    return;
  }
  double delta = query[nd.axis] - nd.split;
  int64_t near = delta <= 0 ? nd.left : nd.right;
  int64_t far = delta <= 0 ? nd.right : nd.left;
  Search(near, query, worst_sq, visit);
  if (delta * delta <= worst_sq) {
    Search(far, query, worst_sq, visit);
  }
}

std::vector<Neighbor> KdTree::Nearest(std::span<const double> query,
                                      int k) const {
  std::vector<Neighbor> out;
  if (n_ == 0 || k <= 0) return out;
  k = static_cast<int>(std::min<int64_t>(k, n_));

  // Max-heap of the best k so far; worst_sq shrinks as the heap fills.
  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.dist_sq < b.dist_sq;
  };
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(cmp)> heap(
      cmp);
  double worst_sq = std::numeric_limits<double>::infinity();

  Search(0, query, worst_sq, [&](int64_t id, double d) {
    if (static_cast<int>(heap.size()) < k) {
      heap.push({id, d});
      if (static_cast<int>(heap.size()) == k) worst_sq = heap.top().dist_sq;
    } else if (d < heap.top().dist_sq) {
      heap.pop();
      heap.push({id, d});
      worst_sq = heap.top().dist_sq;
    }
  });

  out.resize(heap.size());
  for (int64_t i = static_cast<int64_t>(out.size()) - 1; i >= 0; --i) {
    out[i] = heap.top();
    heap.pop();
  }
  return out;
}

std::vector<Neighbor> KdTree::WithinRadius(std::span<const double> query,
                                           double radius) const {
  std::vector<Neighbor> out;
  if (n_ == 0 || radius < 0) return out;
  double worst_sq = radius * radius;
  Search(0, query, worst_sq,
         [&](int64_t id, double d) { out.push_back({id, d}); });
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.dist_sq < b.dist_sq;
  });
  return out;
}

}  // namespace sqlarray::spatial
