#include "spatial/zorder.h"

#include <cmath>

namespace sqlarray::spatial {

namespace {

/// Spreads the low 21 bits of v so consecutive bits land 3 apart.
uint64_t Part1By2(uint32_t v) {
  uint64_t x = v & 0x1FFFFF;
  x = (x | x << 32) & 0x1F00000000FFFFULL;
  x = (x | x << 16) & 0x1F0000FF0000FFULL;
  x = (x | x << 8) & 0x100F00F00F00F00FULL;
  x = (x | x << 4) & 0x10C30C30C30C30C3ULL;
  x = (x | x << 2) & 0x1249249249249249ULL;
  return x;
}

/// Inverse of Part1By2.
uint32_t Compact1By2(uint64_t x) {
  x &= 0x1249249249249249ULL;
  x = (x ^ (x >> 2)) & 0x10C30C30C30C30C3ULL;
  x = (x ^ (x >> 4)) & 0x100F00F00F00F00FULL;
  x = (x ^ (x >> 8)) & 0x1F0000FF0000FFULL;
  x = (x ^ (x >> 16)) & 0x1F00000000FFFFULL;
  x = (x ^ (x >> 32)) & 0x1FFFFF;
  return static_cast<uint32_t>(x);
}

}  // namespace

uint64_t MortonEncode3(uint32_t x, uint32_t y, uint32_t z) {
  return Part1By2(x) | (Part1By2(y) << 1) | (Part1By2(z) << 2);
}

std::array<uint32_t, 3> MortonDecode3(uint64_t code) {
  return {Compact1By2(code), Compact1By2(code >> 1), Compact1By2(code >> 2)};
}

uint64_t MortonCellOf(double px, double py, double pz, double box,
                      uint32_t n) {
  auto cell = [&](double p) -> uint32_t {
    double f = p / box * static_cast<double>(n);
    int64_t c = static_cast<int64_t>(std::floor(f));
    // Periodic wrap keeps out-of-box particles addressable.
    c %= static_cast<int64_t>(n);
    if (c < 0) c += n;
    return static_cast<uint32_t>(c);
  };
  return MortonEncode3(cell(px), cell(py), cell(pz));
}

}  // namespace sqlarray::spatial
