// Discrete Fourier transforms — the FFTW substitute (Sec. 3.6 / 5.3).
//
// Supports complex transforms of any length (iterative radix-2 for powers of
// two, Bluestein's chirp-z for the rest) and multi-dimensional transforms
// over column-major arrays. Mirrors FFTW's plan model: a Plan owns aligned
// scratch buffers, and execution copies data into them — the paper notes this
// copy is required by FFTW and "usually worth the otherwise expensive
// operation"; the M1 bench measures exactly that trade.
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/dims.h"
#include "common/status.h"

namespace sqlarray::fft {

using Complex = std::complex<double>;

/// Transform direction. Inverse applies the 1/N normalization.
enum class Direction { kForward, kInverse };

/// In-place complex FFT of arbitrary length (no plan reuse; convenience
/// entry point for one-shot transforms).
Status Transform(std::span<Complex> data, Direction dir);

/// Reference O(n^2) DFT used by tests to validate the fast paths.
std::vector<Complex> NaiveDft(std::span<const Complex> data, Direction dir);

/// A reusable transform plan for a fixed shape, in the spirit of
/// fftw_plan_dft. Owns 64-byte-aligned scratch buffers plus precomputed
/// twiddle tables for each axis length.
class Plan {
 public:
  /// Creates a plan for an N-dimensional transform over column-major data of
  /// the given shape.
  static Result<std::unique_ptr<Plan>> Create(Dims dims);

  ~Plan();
  Plan(const Plan&) = delete;
  Plan& operator=(const Plan&) = delete;

  const Dims& dims() const { return dims_; }
  int64_t size() const { return n_total_; }

  /// Executes out <- FFT(in). `in` and `out` may alias. Data is copied into
  /// the plan's aligned buffer, transformed along every axis, and copied out
  /// (the FFTW calling convention the paper describes).
  Status Execute(std::span<const Complex> in, std::span<Complex> out,
                 Direction dir);

  /// Executes without using the aligned scratch buffer (operates directly on
  /// a caller buffer copy) — the ablation arm of the M1 bench.
  Status ExecuteUnaligned(std::span<const Complex> in, std::span<Complex> out,
                          Direction dir);

 private:
  explicit Plan(Dims dims);

  Status TransformAxes(Complex* data, Direction dir);

  Dims dims_;
  int64_t n_total_ = 0;
  Complex* aligned_ = nullptr;  ///< 64-byte aligned scratch, n_total_ long
  std::vector<Complex> axis_scratch_;
};

}  // namespace sqlarray::fft
