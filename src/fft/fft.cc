#include "fft/fft.h"

#include <cmath>
#include <cstdlib>
#include <numbers>

namespace sqlarray::fft {

namespace {

bool IsPowerOfTwo(int64_t n) { return n > 0 && (n & (n - 1)) == 0; }

/// Iterative radix-2 Cooley–Tukey, unnormalized. `sign` is -1 for forward,
/// +1 for inverse.
void Radix2(Complex* a, int64_t n, int sign) {
  // Bit-reversal permutation.
  for (int64_t i = 1, j = 0; i < n; ++i) {
    int64_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (int64_t len = 2; len <= n; len <<= 1) {
    double ang = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    Complex wlen(std::cos(ang), std::sin(ang));
    for (int64_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (int64_t k = 0; k < len / 2; ++k) {
        Complex u = a[i + k];
        Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

/// Bluestein chirp-z transform for arbitrary n, unnormalized.
void Bluestein(Complex* a, int64_t n, int sign) {
  int64_t m = 1;
  while (m < 2 * n - 1) m <<= 1;

  // Chirp w_k = exp(sign * i * pi * k^2 / n); computing k^2 mod 2n keeps the
  // angle argument small for large k.
  std::vector<Complex> chirp(n);
  for (int64_t k = 0; k < n; ++k) {
    int64_t k2 = (k * k) % (2 * n);
    double ang =
        sign * std::numbers::pi * static_cast<double>(k2) / static_cast<double>(n);
    chirp[k] = Complex(std::cos(ang), std::sin(ang));
  }

  std::vector<Complex> fa(m, Complex(0, 0)), fb(m, Complex(0, 0));
  for (int64_t k = 0; k < n; ++k) fa[k] = a[k] * chirp[k];
  fb[0] = std::conj(chirp[0]);
  for (int64_t k = 1; k < n; ++k) {
    fb[k] = fb[m - k] = std::conj(chirp[k]);
  }

  Radix2(fa.data(), m, -1);
  Radix2(fb.data(), m, -1);
  for (int64_t k = 0; k < m; ++k) fa[k] *= fb[k];
  Radix2(fa.data(), m, +1);
  double inv_m = 1.0 / static_cast<double>(m);
  for (int64_t k = 0; k < n; ++k) {
    a[k] = fa[k] * inv_m * chirp[k];
  }
}

/// Unnormalized transform of any length.
void RawTransform(Complex* a, int64_t n, int sign) {
  if (n <= 1) return;
  if (IsPowerOfTwo(n)) {
    Radix2(a, n, sign);
  } else {
    Bluestein(a, n, sign);
  }
}

}  // namespace

Status Transform(std::span<Complex> data, Direction dir) {
  const int64_t n = static_cast<int64_t>(data.size());
  if (n == 0) return Status::InvalidArgument("empty FFT input");
  RawTransform(data.data(), n, dir == Direction::kForward ? -1 : +1);
  if (dir == Direction::kInverse) {
    double inv = 1.0 / static_cast<double>(n);
    for (Complex& c : data) c *= inv;
  }
  return Status::OK();
}

std::vector<Complex> NaiveDft(std::span<const Complex> data, Direction dir) {
  const int64_t n = static_cast<int64_t>(data.size());
  const double sign = dir == Direction::kForward ? -1.0 : 1.0;
  std::vector<Complex> out(n, Complex(0, 0));
  for (int64_t k = 0; k < n; ++k) {
    for (int64_t j = 0; j < n; ++j) {
      double ang = sign * 2.0 * std::numbers::pi * static_cast<double>(k) *
                   static_cast<double>(j) / static_cast<double>(n);
      out[k] += data[j] * Complex(std::cos(ang), std::sin(ang));
    }
  }
  if (dir == Direction::kInverse) {
    double inv = 1.0 / static_cast<double>(n);
    for (Complex& c : out) c *= inv;
  }
  return out;
}

Plan::Plan(Dims dims) : dims_(std::move(dims)) {
  n_total_ = ElementCount(dims_);
  int64_t max_axis = 0;
  for (int64_t d : dims_) max_axis = std::max(max_axis, d);
  axis_scratch_.resize(static_cast<size_t>(max_axis));
  void* p = nullptr;
  // FFTW-style 64-byte alignment for the scratch buffer.
  if (posix_memalign(&p, 64, sizeof(Complex) * static_cast<size_t>(n_total_)) != 0) {
    p = nullptr;
  }
  aligned_ = static_cast<Complex*>(p);
}

Plan::~Plan() { std::free(aligned_); }

Result<std::unique_ptr<Plan>> Plan::Create(Dims dims) {
  SQLARRAY_RETURN_IF_ERROR(ValidateDims(dims));
  if (ElementCount(dims) == 0) {
    return Status::InvalidArgument("FFT plan requires a non-empty shape");
  }
  auto plan = std::unique_ptr<Plan>(new Plan(std::move(dims)));
  if (plan->aligned_ == nullptr) {
    return Status::ResourceExhausted("failed to allocate aligned FFT buffer");
  }
  return plan;
}

Status Plan::TransformAxes(Complex* data, Direction dir) {
  const int sign = dir == Direction::kForward ? -1 : +1;
  const int rank = static_cast<int>(dims_.size());
  const Dims strides = ColumnMajorStrides(dims_);

  for (int axis = 0; axis < rank; ++axis) {
    const int64_t len = dims_[axis];
    const int64_t stride = strides[axis];
    const int64_t lines = n_total_ / len;
    if (len <= 1) continue;

    // Enumerate all 1-D lines along `axis`: iterate the other dims.
    Dims cursor(rank, 0);
    for (int64_t line = 0; line < lines; ++line) {
      int64_t base = 0;
      for (int k = 0; k < rank; ++k) {
        if (k != axis) base += cursor[k] * strides[k];
      }
      if (stride == 1) {
        RawTransform(data + base, len, sign);
      } else {
        Complex* scratch = axis_scratch_.data();
        for (int64_t i = 0; i < len; ++i) scratch[i] = data[base + i * stride];
        RawTransform(scratch, len, sign);
        for (int64_t i = 0; i < len; ++i) data[base + i * stride] = scratch[i];
      }
      for (int k = 0; k < rank; ++k) {
        if (k == axis) continue;
        if (++cursor[k] < dims_[k]) break;
        cursor[k] = 0;
      }
    }
  }
  if (dir == Direction::kInverse) {
    double inv = 1.0 / static_cast<double>(n_total_);
    for (int64_t i = 0; i < n_total_; ++i) data[i] *= inv;
  }
  return Status::OK();
}

Status Plan::Execute(std::span<const Complex> in, std::span<Complex> out,
                     Direction dir) {
  if (static_cast<int64_t>(in.size()) != n_total_ ||
      static_cast<int64_t>(out.size()) != n_total_) {
    return Status::InvalidArgument("buffer sizes do not match the plan shape");
  }
  std::copy(in.begin(), in.end(), aligned_);
  SQLARRAY_RETURN_IF_ERROR(TransformAxes(aligned_, dir));
  std::copy(aligned_, aligned_ + n_total_, out.begin());
  return Status::OK();
}

Status Plan::ExecuteUnaligned(std::span<const Complex> in,
                              std::span<Complex> out, Direction dir) {
  if (static_cast<int64_t>(in.size()) != n_total_ ||
      static_cast<int64_t>(out.size()) != n_total_) {
    return Status::InvalidArgument("buffer sizes do not match the plan shape");
  }
  if (out.data() != in.data()) std::copy(in.begin(), in.end(), out.begin());
  return TransformAxes(out.data(), dir);
}

}  // namespace sqlarray::fft
