#include "common/crc32c.h"

#include <array>
#include <cstring>

namespace sqlarray {

namespace {

/// 8 slicing tables, generated once at first use. Table 0 is the classic
/// byte-at-a-time table; table k folds a byte k positions ahead.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (int k = 1; k < 8; ++k) {
        crc = (crc >> 8) ^ t[0][crc & 0xFF];
        t[k][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32c(std::span<const uint8_t> data, uint32_t seed) {
  const auto& t = Tables().t;
  uint32_t crc = ~seed;
  const uint8_t* p = data.data();
  size_t n = data.size();

  // Byte-align is unnecessary: we load via memcpy. Process 8 bytes a round.
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    // Little-endian fold: low 4 bytes mix with the running crc.
    crc ^= static_cast<uint32_t>(word);
    uint32_t high = static_cast<uint32_t>(word >> 32);
    crc = t[7][crc & 0xFF] ^ t[6][(crc >> 8) & 0xFF] ^
          t[5][(crc >> 16) & 0xFF] ^ t[4][crc >> 24] ^
          t[3][high & 0xFF] ^ t[2][(high >> 8) & 0xFF] ^
          t[1][(high >> 16) & 0xFF] ^ t[0][high >> 24];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p) & 0xFF];
    ++p;
    --n;
  }
  return ~crc;
}

}  // namespace sqlarray
