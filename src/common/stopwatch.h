// Wall-clock stopwatch for benchmarks and query statistics.
#pragma once

#include <chrono>

namespace sqlarray {

/// Monotonic stopwatch. Started on construction; ElapsedSeconds() may be read
/// repeatedly.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sqlarray
