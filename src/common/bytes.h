// Little-endian byte encoding helpers for the on-disk / blob formats.
//
// Array blobs and row images are defined as little-endian byte sequences (the
// paper's format targets x86 SQL Server hosts); these helpers make the codecs
// explicit and alignment-safe.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

namespace sqlarray {

/// Encodes `v` (a trivially copyable scalar) into little-endian bytes at
/// `dst`. The caller guarantees `dst` has sizeof(T) writable bytes.
template <typename T>
inline void EncodeLE(uint8_t* dst, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  // Host is little-endian on all supported platforms; memcpy keeps the
  // access alignment-safe and optimizes to a plain store.
  std::memcpy(dst, &v, sizeof(T));
}

/// Decodes a little-endian scalar from `src` (sizeof(T) readable bytes).
template <typename T>
inline T DecodeLE(const uint8_t* src) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v;
  std::memcpy(&v, src, sizeof(T));
  return v;
}

/// Appends the little-endian encoding of `v` to `out`.
template <typename T>
inline void AppendLE(std::vector<uint8_t>* out, T v) {
  size_t off = out->size();
  out->resize(off + sizeof(T));
  EncodeLE(out->data() + off, v);
}

/// Appends raw bytes to `out`.
inline void AppendBytes(std::vector<uint8_t>* out,
                        std::span<const uint8_t> bytes) {
  out->insert(out->end(), bytes.begin(), bytes.end());
}

}  // namespace sqlarray
