// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// The checksum production storage engines put on every page (SQL Server's
// PAGE_VERIFY CHECKSUM, LevelDB/RocksDB block trailers, ext4 metadata). The
// storage layer stamps each written page with a CRC32C and verifies it on
// read so torn writes and media bit rot surface as kCorruption instead of
// silently wrong query results. Implemented as slicing-by-8 so the per-page
// cost stays small next to the modeled I/O time (bench/bench_checksum
// measures it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace sqlarray {

/// CRC32C of `data`, starting from `seed` (pass a previous return value to
/// checksum a byte sequence incrementally). The seed/result are plain CRC
/// values — the pre/post inversion is handled internally.
uint32_t Crc32c(std::span<const uint8_t> data, uint32_t seed = 0);

/// Convenience overload for raw buffers.
inline uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0) {
  return Crc32c(
      std::span<const uint8_t>(static_cast<const uint8_t*>(data), size), seed);
}

}  // namespace sqlarray
