#include "common/status.h"

namespace sqlarray {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kTypeMismatch:
      return "TYPE_MISMATCH";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kWriteConflict:
      return "WRITE_CONFLICT";
  }
  return "UNKNOWN";
}

StatusCode StatusCodeFromWire(int32_t wire) {
  if (wire >= StatusCodeToWire(StatusCode::kOk) &&
      wire <= StatusCodeToWire(StatusCode::kWriteConflict)) {
    return static_cast<StatusCode>(wire);
  }
  return StatusCode::kInternal;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace sqlarray
