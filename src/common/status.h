// Status / Result error-handling primitives used across the library.
//
// Library code does not throw exceptions across module boundaries; fallible
// operations return Status (or Result<T> when they also produce a value),
// following the conventions of production storage engines.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace sqlarray {

/// Broad classification of an error. Mirrors the failure classes a database
/// extension has to distinguish: caller bugs (InvalidArgument), data
/// corruption (Corruption), resource exhaustion, and unsupported requests.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kTypeMismatch,
  kCorruption,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  kCancelled,          ///< cooperative cancellation (user kill, shutdown)
  kDeadlineExceeded,   ///< statement deadline / timeout expired
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value. The OK status carries no
/// allocation; error statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(Rep{code, std::move(message)})) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// Error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }
  /// "CODE: message" rendering for logs and test failure output.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // null == OK
};

/// A value-or-error, analogous to absl::StatusOr<T>.
template <typename T>
class Result {
 public:
  Result(T value) : var_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : var_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(var_).ok() && "OK status requires a value");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(var_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(var_));
  }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> var_;
};

// Propagates a non-OK Status out of the enclosing function.
#define SQLARRAY_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::sqlarray::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

// Evaluates a Result<T> expression, assigning the value to `lhs` or
// propagating its error status.
#define SQLARRAY_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define SQLARRAY_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  SQLARRAY_ASSIGN_OR_RETURN_IMPL(                                           \
      SQLARRAY_STATUS_CONCAT(_result_, __LINE__), lhs, rexpr)

#define SQLARRAY_STATUS_CONCAT_INNER(a, b) a##b
#define SQLARRAY_STATUS_CONCAT(a, b) SQLARRAY_STATUS_CONCAT_INNER(a, b)

}  // namespace sqlarray
