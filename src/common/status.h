// Status / Result error-handling primitives used across the library.
//
// Library code does not throw exceptions across module boundaries; fallible
// operations return Status (or Result<T> when they also produce a value),
// following the conventions of production storage engines.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace sqlarray {

/// Broad classification of an error. Mirrors the failure classes a database
/// extension has to distinguish: caller bugs (InvalidArgument), data
/// corruption (Corruption), resource exhaustion, and unsupported requests.
///
/// The numeric values are the wire-stable error codes serialized into the
/// network protocol's ERROR frames (net/wire.h) and surfaced in
/// server::StatementOutcome, so remote clients branch on the same numbers
/// as in-process callers. They are FROZEN: never renumber or reorder —
/// append new codes at the end (DESIGN.md §14 documents the table).
enum class StatusCode : int32_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kTypeMismatch = 3,
  kCorruption = 4,
  kNotFound = 5,
  kAlreadyExists = 6,
  kResourceExhausted = 7,
  kUnimplemented = 8,
  kInternal = 9,
  kCancelled = 10,          ///< cooperative cancellation (user kill, shutdown)
  kDeadlineExceeded = 11,   ///< statement deadline / timeout expired
  kPermissionDenied = 12,   ///< authentication / authorization failure
  kWriteConflict = 13,      ///< first-updater-wins MVCC conflict; retry
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// The frozen numeric value serialized into ERROR frames.
constexpr int32_t StatusCodeToWire(StatusCode code) {
  return static_cast<int32_t>(code);
}

/// Maps a wire code back to a StatusCode. Codes minted by a newer peer (or
/// garbage) decode as kInternal rather than aliasing a known class.
StatusCode StatusCodeFromWire(int32_t wire);

/// A cheap, copyable success-or-error value. The OK status carries no
/// allocation; error statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : Status(code, std::move(message), /*retry_after_ms=*/0) {}

  /// An error status carrying a typed retry-after hint (admission-control
  /// rejections): the caller should back off this many milliseconds before
  /// resubmitting. The hint survives serialization through ERROR frames.
  Status(StatusCode code, std::string message, int64_t retry_after_ms)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(
                       Rep{code, std::move(message), retry_after_ms})) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg, int64_t retry_after_ms) {
    return Status(StatusCode::kResourceExhausted, std::move(msg),
                  retry_after_ms);
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status WriteConflict(std::string msg) {
    return Status(StatusCode::kWriteConflict, std::move(msg));
  }
  static Status WriteConflict(std::string msg, int64_t retry_after_ms) {
    return Status(StatusCode::kWriteConflict, std::move(msg), retry_after_ms);
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// Error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }
  /// Typed backoff hint in milliseconds; 0 when the status carries none.
  /// Non-zero on admission-control rejections (kResourceExhausted) and
  /// MVCC first-updater-wins losses (kWriteConflict).
  int64_t retry_after_ms() const { return rep_ ? rep_->retry_after_ms : 0; }
  /// "CODE: message" rendering for logs and test failure output.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message() &&
           retry_after_ms() == other.retry_after_ms();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
    int64_t retry_after_ms = 0;
  };
  std::shared_ptr<const Rep> rep_;  // null == OK
};

/// A value-or-error, analogous to absl::StatusOr<T>.
template <typename T>
class Result {
 public:
  Result(T value) : var_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : var_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(var_).ok() && "OK status requires a value");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(var_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(var_));
  }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> var_;
};

// Propagates a non-OK Status out of the enclosing function.
#define SQLARRAY_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::sqlarray::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

// Evaluates a Result<T> expression, assigning the value to `lhs` or
// propagating its error status.
#define SQLARRAY_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define SQLARRAY_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  SQLARRAY_ASSIGN_OR_RETURN_IMPL(                                           \
      SQLARRAY_STATUS_CONCAT(_result_, __LINE__), lhs, rexpr)

#define SQLARRAY_STATUS_CONCAT_INNER(a, b) a##b
#define SQLARRAY_STATUS_CONCAT(a, b) SQLARRAY_STATUS_CONCAT_INNER(a, b)

}  // namespace sqlarray
