// Dimension lists and index arithmetic shared by the array core.
//
// Arrays are stored in COLUMN-MAJOR (FORTRAN / LAPACK) element order, the
// layout the paper adopts so that LAPACK marshaling is zero-copy. The helpers
// here implement linearization and stride math in that order: the FIRST index
// varies fastest.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace sqlarray {

/// Dimension sizes of an array. Short (on-page) arrays are limited to
/// kMaxShortRank dims with int16 sizes; max arrays allow arbitrary rank with
/// int32 sizes. Both are represented uniformly as int64 here and validated at
/// the codec boundary.
using Dims = std::vector<int64_t>;

/// Maximum rank of a short (on-page) array, per the paper's format.
inline constexpr int kMaxShortRank = 6;

/// Returns the total element count (product of sizes); 0-rank arrays have one
/// element (a scalar) by convention, but builders never produce rank 0.
int64_t ElementCount(std::span<const int64_t> dims);

/// Computes column-major strides (in elements): stride[0] = 1,
/// stride[k] = stride[k-1] * dims[k-1].
Dims ColumnMajorStrides(std::span<const int64_t> dims);

/// Linearizes a multi-index into a column-major offset. Returns OutOfRange if
/// any index is outside [0, dims[k]).
Result<int64_t> LinearIndex(std::span<const int64_t> dims,
                            std::span<const int64_t> index);

/// Inverse of LinearIndex: decomposes a column-major offset into a
/// multi-index.
Dims Unlinearize(std::span<const int64_t> dims, int64_t linear);

/// Validates that dims is a legal shape: rank >= 1 and every size >= 0, with
/// the product not overflowing int64.
Status ValidateDims(std::span<const int64_t> dims);

}  // namespace sqlarray
