// Deterministic pseudo-random number generation for synthetic workloads.
//
// All synthetic data generators (turbulence fields, spectra, N-body
// snapshots, benchmark tables) take an explicit seed so tests and benches are
// reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>

namespace sqlarray {

/// A seeded PRNG wrapper with the handful of draw shapes the generators need.
class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  /// Standard normal (mean 0, sigma 1) scaled to (mean, sigma).
  double Normal(double mean = 0.0, double sigma = 1.0) {
    return std::normal_distribution<double>(mean, sigma)(gen_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(gen_);
  }

  /// Uniform 64-bit word.
  uint64_t NextU64() { return gen_(); }

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(gen_);
  }

  std::mt19937_64& generator() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace sqlarray
