#include "common/dims.h"

#include <limits>
#include <string>

namespace sqlarray {

int64_t ElementCount(std::span<const int64_t> dims) {
  int64_t n = 1;
  for (int64_t d : dims) n *= d;
  return n;
}

Dims ColumnMajorStrides(std::span<const int64_t> dims) {
  Dims strides(dims.size());
  int64_t s = 1;
  for (size_t k = 0; k < dims.size(); ++k) {
    strides[k] = s;
    s *= dims[k];
  }
  return strides;
}

Result<int64_t> LinearIndex(std::span<const int64_t> dims,
                            std::span<const int64_t> index) {
  if (index.size() != dims.size()) {
    return Status::InvalidArgument(
        "index rank " + std::to_string(index.size()) +
        " does not match array rank " + std::to_string(dims.size()));
  }
  int64_t linear = 0;
  int64_t stride = 1;
  for (size_t k = 0; k < dims.size(); ++k) {
    if (index[k] < 0 || index[k] >= dims[k]) {
      return Status::OutOfRange("index " + std::to_string(index[k]) +
                                " out of bounds for dimension " +
                                std::to_string(k) + " of size " +
                                std::to_string(dims[k]));
    }
    linear += index[k] * stride;
    stride *= dims[k];
  }
  return linear;
}

Dims Unlinearize(std::span<const int64_t> dims, int64_t linear) {
  Dims index(dims.size());
  for (size_t k = 0; k < dims.size(); ++k) {
    if (dims[k] == 0) {
      index[k] = 0;
      continue;
    }
    index[k] = linear % dims[k];
    linear /= dims[k];
  }
  return index;
}

Status ValidateDims(std::span<const int64_t> dims) {
  if (dims.empty()) {
    return Status::InvalidArgument("array rank must be at least 1");
  }
  int64_t n = 1;
  for (size_t k = 0; k < dims.size(); ++k) {
    if (dims[k] < 0) {
      return Status::InvalidArgument("dimension " + std::to_string(k) +
                                     " has negative size " +
                                     std::to_string(dims[k]));
    }
    if (dims[k] != 0 &&
        n > std::numeric_limits<int64_t>::max() / (dims[k] == 0 ? 1 : dims[k])) {
      return Status::InvalidArgument("element count overflows int64");
    }
    n *= dims[k];
  }
  return Status::OK();
}

}  // namespace sqlarray
