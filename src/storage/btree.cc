#include "storage/btree.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/bytes.h"

namespace sqlarray::storage {

namespace {

uint32_t PageCount(const Page& p) { return DecodeLE<uint32_t>(p.data() + 4); }
void SetPageCount(Page* p, uint32_t n) { EncodeLE<uint32_t>(p->data() + 4, n); }
PageId LeafNext(const Page& p) { return DecodeLE<uint32_t>(p.data() + 8); }
void SetLeafNext(Page* p, PageId id) { EncodeLE<uint32_t>(p->data() + 8, id); }

void InitLeaf(Page* p) {
  p->Clear();
  p->data()[0] = static_cast<uint8_t>(PageType::kBTreeLeaf);
}

void InitInternal(Page* p) {
  p->Clear();
  p->data()[0] = static_cast<uint8_t>(PageType::kBTreeInternal);
}

bool IsLeaf(const Page& p) {
  return p.data()[0] == static_cast<uint8_t>(PageType::kBTreeLeaf);
}

int64_t LeafKeyAt(const Page& p, int64_t row_size, uint32_t i) {
  return DecodeLE<int64_t>(p.data() + kBTreePageHeader + i * row_size);
}

/// Internal entry accessors: (first_key, child) pairs.
int64_t InternalKeyAt(const Page& p, uint32_t i) {
  return DecodeLE<int64_t>(p.data() + kBTreePageHeader + i * 12);
}
PageId InternalChildAt(const Page& p, uint32_t i) {
  return DecodeLE<uint32_t>(p.data() + kBTreePageHeader + i * 12 + 8);
}
void SetInternalEntry(Page* p, uint32_t i, int64_t key, PageId child) {
  EncodeLE<int64_t>(p->data() + kBTreePageHeader + i * 12, key);
  EncodeLE<uint32_t>(p->data() + kBTreePageHeader + i * 12 + 8, child);
}

/// Index of the child covering `key`: the last entry whose first_key <= key
/// (entry 0 acts as -infinity).
uint32_t ChildIndexFor(const Page& p, int64_t key) {
  uint32_t n = PageCount(p);
  uint32_t lo = 0, hi = n;  // find last i with key_i <= key
  while (hi - lo > 1) {
    uint32_t mid = (lo + hi) / 2;
    if (InternalKeyAt(p, mid) <= key) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

Result<BTree> BTree::Create(BufferPool* pool, int64_t row_size) {
  if (row_size < 8) {
    return Status::InvalidArgument("row must embed at least the 8-byte key");
  }
  BTree t(pool, row_size);
  // Leaf capacity models SQL Server's page economics: a 96-byte page
  // header plus ~9 bytes of record header + slot entry per row. Rows are
  // physically packed after our own 16-byte header; the remaining space
  // models those overheads so page counts (and therefore scan I/O) match
  // the real engine's.
  t.leaf_capacity_ = (kPageSize - kSqlPageHeaderBytes) /
                     (row_size + kSqlRowOverheadBytes);
  t.internal_capacity_ = (kPageSize - kSqlPageHeaderBytes) / (12 + 9);
  if (t.leaf_capacity_ < 2) {
    return Status::InvalidArgument("row size too large for a leaf page");
  }
  t.root_ = pool->AllocatePage();
  t.first_leaf_ = t.root_;
  Page leaf;
  InitLeaf(&leaf);
  SQLARRAY_RETURN_IF_ERROR(pool->WritePage(t.root_, leaf));
  t.leaf_pages_ = 1;
  t.leaf_ids_.push_back(t.root_);
  return t;
}

Result<BTree> BTree::Attach(BufferPool* pool, int64_t row_size, PageId root) {
  if (row_size < 8) {
    return Status::InvalidArgument("row must embed at least the 8-byte key");
  }
  BTree t(pool, row_size);
  t.leaf_capacity_ = (kPageSize - kSqlPageHeaderBytes) /
                     (row_size + kSqlRowOverheadBytes);
  t.internal_capacity_ = (kPageSize - kSqlPageHeaderBytes) / (12 + 9);
  if (t.leaf_capacity_ < 2) {
    return Status::InvalidArgument("row size too large for a leaf page");
  }
  t.root_ = root;

  // Leftmost descent: height and the first leaf.
  t.height_ = 1;
  t.internal_pages_ = 0;
  PageId node = root;
  std::vector<PageId> level_heads;
  for (;;) {
    SQLARRAY_ASSIGN_OR_RETURN(PinnedPage page, pool->GetPage(node));
    if (IsLeaf(*page)) break;
    if (page->data()[0] != static_cast<uint8_t>(PageType::kBTreeInternal)) {
      return Status::Corruption("attach: page " + std::to_string(node) +
                                " is neither leaf nor internal");
    }
    if (PageCount(*page) == 0) {
      return Status::Corruption("attach: empty internal page " +
                                std::to_string(node));
    }
    level_heads.push_back(node);
    node = InternalChildAt(*page, 0);
    ++t.height_;
    if (t.height_ > 64) {
      return Status::Corruption("attach: tree height exceeds sanity bound");
    }
  }
  t.first_leaf_ = node;

  // Count internal pages level by level: walk each internal level along
  // parent fan-out (children of level k's nodes are level k+1's nodes).
  std::vector<PageId> level = level_heads.empty()
                                  ? std::vector<PageId>{}
                                  : std::vector<PageId>{root};
  while (!level.empty()) {
    t.internal_pages_ += static_cast<int64_t>(level.size());
    std::vector<PageId> next;
    bool children_are_leaves = false;
    for (PageId id : level) {
      SQLARRAY_ASSIGN_OR_RETURN(PinnedPage page, pool->GetPage(id));
      if (IsLeaf(*page)) {
        return Status::Corruption("attach: leaf on an internal level");
      }
      uint32_t n = PageCount(*page);
      for (uint32_t i = 0; i < n; ++i) {
        PageId child = InternalChildAt(*page, i);
        if (next.empty() && i == 0) {
          SQLARRAY_ASSIGN_OR_RETURN(PinnedPage cp, pool->GetPage(child));
          children_are_leaves = IsLeaf(*cp);
        }
        next.push_back(child);
      }
    }
    if (children_are_leaves) break;
    level = std::move(next);
  }

  // Walk the leaf chain: allocation map, leaf count, row count.
  t.leaf_pages_ = 0;
  t.row_count_ = 0;
  for (PageId leaf = t.first_leaf_; leaf != kNullPage;) {
    SQLARRAY_ASSIGN_OR_RETURN(PinnedPage page, pool->GetPage(leaf));
    if (!IsLeaf(*page)) {
      return Status::Corruption("attach: non-leaf page " +
                                std::to_string(leaf) + " in the leaf chain");
    }
    t.leaf_ids_.push_back(leaf);
    ++t.leaf_pages_;
    t.row_count_ += PageCount(*page);
    if (t.leaf_pages_ > static_cast<int64_t>(1) << 32) {
      return Status::Corruption("attach: leaf chain does not terminate");
    }
    leaf = LeafNext(*page);
  }
  return t;
}

Result<BTree::SplitResult> BTree::InsertRecurse(PageId node, int level,
                                                std::span<const uint8_t> row,
                                                int64_t key) {
  SQLARRAY_ASSIGN_OR_RETURN(PinnedPage loaded, GetP(node));
  Page page = *loaded;

  if (level == 0) {
    if (!IsLeaf(page)) return Status::Corruption("expected a leaf page");
    uint32_t n = PageCount(page);
    // Binary search for the insertion slot.
    uint32_t lo = 0, hi = n;
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      int64_t k = LeafKeyAt(page, row_size_, mid);
      if (k < key) {
        lo = mid + 1;
      } else if (k == key) {
        return Status::AlreadyExists("duplicate clustered key " +
                                     std::to_string(key));
      } else {
        hi = mid;
      }
    }
    uint32_t slot = lo;

    if (n < leaf_capacity_) {
      uint8_t* base = page.data() + kBTreePageHeader;
      std::memmove(base + (slot + 1) * row_size_, base + slot * row_size_,
                   (n - slot) * row_size_);
      std::memcpy(base + slot * row_size_, row.data(), row_size_);
      SetPageCount(&page, n + 1);
      SQLARRAY_RETURN_IF_ERROR(WriteP(node, page));
      return SplitResult{};
    }

    // Split. Appending workloads (slot == n) get an empty right page that
    // the new row starts, so ascending bulk loads fill pages densely.
    Page right;
    InitLeaf(&right);
    PageId right_id = AllocP();
    ++leaf_pages_;
    // Maintain the allocation map: the new leaf follows `node` in the chain.
    auto it = std::find(leaf_ids_.begin(), leaf_ids_.end(), node);
    leaf_ids_.insert(it == leaf_ids_.end() ? leaf_ids_.end() : it + 1,
                     right_id);
    uint32_t keep = (slot == n) ? n : n / 2;

    uint8_t* lbase = page.data() + kBTreePageHeader;
    uint8_t* rbase = right.data() + kBTreePageHeader;
    uint32_t moved = n - keep;
    std::memcpy(rbase, lbase + keep * row_size_, moved * row_size_);
    SetPageCount(&page, keep);
    SetPageCount(&right, moved);
    SetLeafNext(&right, LeafNext(page));
    SetLeafNext(&page, right_id);

    // Insert the new row into the proper half. On the append path keep == n,
    // so the row must start the fresh right page.
    bool into_left = keep < n && slot <= keep;
    Page* target = into_left ? &page : &right;
    uint32_t tslot = into_left ? slot : slot - keep;
    uint32_t tn = PageCount(*target);
    uint8_t* tbase = target->data() + kBTreePageHeader;
    std::memmove(tbase + (tslot + 1) * row_size_, tbase + tslot * row_size_,
                 (tn - tslot) * row_size_);
    std::memcpy(tbase + tslot * row_size_, row.data(), row_size_);
    SetPageCount(target, tn + 1);

    SQLARRAY_RETURN_IF_ERROR(WriteP(node, page));
    SQLARRAY_RETURN_IF_ERROR(WriteP(right_id, right));
    return SplitResult{true, LeafKeyAt(right, row_size_, 0), right_id};
  }

  // Internal node.
  if (IsLeaf(page)) return Status::Corruption("expected an internal page");
  uint32_t child_idx = ChildIndexFor(page, key);
  PageId child = InternalChildAt(page, child_idx);
  SQLARRAY_ASSIGN_OR_RETURN(SplitResult child_split,
                            InsertRecurse(child, level - 1, row, key));
  if (!child_split.split) return SplitResult{};

  // Re-fetch: the child insert may have evicted our copy's source, and the
  // page content itself is unchanged by descendants, so the copy is valid;
  // insert the separator for the new right sibling.
  uint32_t n = PageCount(page);
  uint32_t slot = child_idx + 1;
  if (n < internal_capacity_) {
    uint8_t* base = page.data() + kBTreePageHeader;
    std::memmove(base + (slot + 1) * 12, base + slot * 12, (n - slot) * 12);
    SetInternalEntry(&page, slot, child_split.new_first_key,
                     child_split.new_page);
    SetPageCount(&page, n + 1);
    SQLARRAY_RETURN_IF_ERROR(WriteP(node, page));
    return SplitResult{};
  }

  // Split the internal node (append-friendly like the leaf split).
  Page right;
  InitInternal(&right);
  PageId right_id = AllocP();
  ++internal_pages_;
  uint32_t keep = (slot == n) ? n : n / 2;
  uint32_t moved = n - keep;
  std::memcpy(right.data() + kBTreePageHeader,
              page.data() + kBTreePageHeader + keep * 12, moved * 12);
  SetPageCount(&page, keep);
  SetPageCount(&right, moved);

  bool into_left = keep < n && slot <= keep;
  Page* target = into_left ? &page : &right;
  uint32_t tslot = into_left ? slot : slot - keep;
  uint32_t tn = PageCount(*target);
  uint8_t* tbase = target->data() + kBTreePageHeader;
  std::memmove(tbase + (tslot + 1) * 12, tbase + tslot * 12,
               (tn - tslot) * 12);
  SetInternalEntry(target, tslot, child_split.new_first_key,
                   child_split.new_page);
  SetPageCount(target, tn + 1);

  SQLARRAY_RETURN_IF_ERROR(WriteP(node, page));
  SQLARRAY_RETURN_IF_ERROR(WriteP(right_id, right));
  return SplitResult{true, InternalKeyAt(right, 0), right_id};
}

Status BTree::Insert(std::span<const uint8_t> row) {
  if (static_cast<int64_t>(row.size()) != row_size_) {
    return Status::InvalidArgument("row size does not match the tree");
  }
  int64_t key = DecodeLE<int64_t>(row.data());
  SQLARRAY_ASSIGN_OR_RETURN(SplitResult split,
                            InsertRecurse(root_, height_ - 1, row, key));
  if (split.split) {
    // Grow a new root.
    Page new_root;
    InitInternal(&new_root);
    PageId new_root_id = AllocP();
    ++internal_pages_;
    SetInternalEntry(&new_root, 0, std::numeric_limits<int64_t>::min(),
                     root_);
    SetInternalEntry(&new_root, 1, split.new_first_key, split.new_page);
    SetPageCount(&new_root, 2);
    SQLARRAY_RETURN_IF_ERROR(WriteP(new_root_id, new_root));
    root_ = new_root_id;
    ++height_;
  }
  ++row_count_;
  return Status::OK();
}

Result<bool> BTree::Lookup(int64_t key, std::vector<uint8_t>* row_out) {
  PageId node = root_;
  for (int level = height_ - 1; level > 0; --level) {
    SQLARRAY_ASSIGN_OR_RETURN(PinnedPage page, GetP(node));
    node = InternalChildAt(*page, ChildIndexFor(*page, key));
  }
  SQLARRAY_ASSIGN_OR_RETURN(PinnedPage leaf, GetP(node));
  uint32_t n = PageCount(*leaf);
  uint32_t lo = 0, hi = n;
  while (lo < hi) {
    uint32_t mid = (lo + hi) / 2;
    int64_t k = LeafKeyAt(*leaf, row_size_, mid);
    if (k < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < n && LeafKeyAt(*leaf, row_size_, lo) == key) {
    const uint8_t* src = leaf->data() + kBTreePageHeader + lo * row_size_;
    row_out->assign(src, src + row_size_);
    return true;
  }
  return false;
}

Result<BTree::BulkLoader> BTree::StartBulkLoad() {
  if (row_count_ != 0) {
    return Status::InvalidArgument("bulk load requires an empty tree");
  }
  return BulkLoader(this);
}

BTree::BulkLoader::BulkLoader(BTree* tree) : tree_(tree) {
  InitLeaf(&leaf_);
  // Reuse the tree's pre-allocated (empty) root page as the first leaf.
  leaf_id_ = tree_->root_;
}

Status BTree::BulkLoader::FlushLeaf() {
  if (leaf_count_ == 0) return Status::OK();
  SetPageCount(&leaf_, leaf_count_);
  leaf_index_.emplace_back(LeafKeyAt(leaf_, tree_->row_size_, 0), leaf_id_);
  // Link to the next leaf lazily: allocate it now so we can point at it.
  PageId next = tree_->pool_->AllocatePage();
  SetLeafNext(&leaf_, next);
  SQLARRAY_RETURN_IF_ERROR(tree_->pool_->WritePage(leaf_id_, leaf_));
  InitLeaf(&leaf_);
  leaf_id_ = next;
  leaf_count_ = 0;
  return Status::OK();
}

Status BTree::BulkLoader::Add(std::span<const uint8_t> row) {
  if (finished_) return Status::InvalidArgument("bulk load already finished");
  if (static_cast<int64_t>(row.size()) != tree_->row_size_) {
    return Status::InvalidArgument("row size does not match the tree");
  }
  int64_t key = DecodeLE<int64_t>(row.data());
  if (any_ && key <= last_key_) {
    return Status::InvalidArgument(
        "bulk load rows must arrive in strictly ascending key order");
  }
  last_key_ = key;
  any_ = true;
  if (leaf_count_ == tree_->leaf_capacity_) {
    SQLARRAY_RETURN_IF_ERROR(FlushLeaf());
  }
  std::memcpy(leaf_.data() + kBTreePageHeader + leaf_count_ * tree_->row_size_,
              row.data(), tree_->row_size_);
  ++leaf_count_;
  ++tree_->row_count_;
  return Status::OK();
}

Status BTree::BulkLoader::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;

  if (leaf_count_ > 0 || leaf_index_.empty()) {
    // Write the tail leaf with no successor.
    SetPageCount(&leaf_, leaf_count_);
    SetLeafNext(&leaf_, kNullPage);
    leaf_index_.emplace_back(
        leaf_count_ > 0 ? LeafKeyAt(leaf_, tree_->row_size_, 0)
                        : std::numeric_limits<int64_t>::min(),
        leaf_id_);
    SQLARRAY_RETURN_IF_ERROR(tree_->pool_->WritePage(leaf_id_, leaf_));
  } else {
    // The pre-allocated tail page stays an empty leaf terminating the
    // chain; rewrite the previous leaf's next pointer to null instead of
    // leaving a dangling empty page? Simpler: write it as an empty leaf.
    Page empty;
    InitLeaf(&empty);
    SQLARRAY_RETURN_IF_ERROR(tree_->pool_->WritePage(leaf_id_, empty));
  }
  tree_->leaf_pages_ = static_cast<int64_t>(leaf_index_.size());
  tree_->first_leaf_ = leaf_index_.front().second;
  tree_->leaf_ids_.clear();
  for (const auto& [key, page] : leaf_index_) {
    (void)key;
    tree_->leaf_ids_.push_back(page);
  }

  // Build internal levels bottom-up until one node remains.
  std::vector<std::pair<int64_t, PageId>> level = std::move(leaf_index_);
  tree_->height_ = 1;
  while (level.size() > 1) {
    std::vector<std::pair<int64_t, PageId>> parents;
    for (size_t base = 0; base < level.size();
         base += tree_->internal_capacity_) {
      size_t count = std::min<size_t>(tree_->internal_capacity_,
                                      level.size() - base);
      Page node;
      InitInternal(&node);
      for (size_t k = 0; k < count; ++k) {
        // Entry 0 of every internal node acts as -infinity.
        int64_t sep = (base + k == 0)
                          ? std::numeric_limits<int64_t>::min()
                          : level[base + k].first;
        SetInternalEntry(&node, static_cast<uint32_t>(k), sep,
                         level[base + k].second);
      }
      SetPageCount(&node, static_cast<uint32_t>(count));
      PageId id = tree_->pool_->AllocatePage();
      ++tree_->internal_pages_;
      SQLARRAY_RETURN_IF_ERROR(tree_->pool_->WritePage(id, node));
      parents.emplace_back(level[base].first, id);
    }
    level = std::move(parents);
    ++tree_->height_;
  }
  tree_->root_ = level.front().second;
  return Status::OK();
}

Result<bool> BTree::Delete(int64_t key) {
  PageId node = root_;
  for (int level = height_ - 1; level > 0; --level) {
    SQLARRAY_ASSIGN_OR_RETURN(PinnedPage page, GetP(node));
    node = InternalChildAt(*page, ChildIndexFor(*page, key));
  }
  SQLARRAY_ASSIGN_OR_RETURN(PinnedPage loaded, GetP(node));
  Page leaf = *loaded;
  uint32_t n = PageCount(leaf);
  uint32_t lo = 0, hi = n;
  while (lo < hi) {
    uint32_t mid = (lo + hi) / 2;
    if (LeafKeyAt(leaf, row_size_, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo >= n || LeafKeyAt(leaf, row_size_, lo) != key) return false;

  uint8_t* base = leaf.data() + kBTreePageHeader;
  std::memmove(base + lo * row_size_, base + (lo + 1) * row_size_,
               (n - lo - 1) * row_size_);
  SetPageCount(&leaf, n - 1);
  SQLARRAY_RETURN_IF_ERROR(WriteP(node, leaf));
  --row_count_;
  return true;
}

Status BTree::Cursor::LoadLeaf(PageId id) {
  while (id != kNullPage) {
    SQLARRAY_ASSIGN_OR_RETURN(PinnedPage page,
                              fetch_ ? fetch_(id) : pool_->GetPage(id));
    page_ = *page;
    count_ = PageCount(page_);
    next_ = LeafNext(page_);
    pos_ = 0;
    if (count_ > 0) {
      valid_ = true;
      return Status::OK();
    }
    id = next_;  // skip empty leaves
  }
  valid_ = false;
  return Status::OK();
}

std::span<const uint8_t> BTree::Cursor::row() const {
  return std::span<const uint8_t>(
      page_.data() + kBTreePageHeader + pos_ * row_size_,
      static_cast<size_t>(row_size_));
}

Status BTree::Cursor::Next() {
  if (!valid_) return Status::OK();
  if (++pos_ < count_) return Status::OK();
  return LoadLeaf(next_);
}

Result<int32_t> BTree::Cursor::CopyRows(int32_t max_rows, uint8_t* out) {
  int32_t copied = 0;
  while (copied < max_rows && valid_) {
    uint32_t run = count_ - pos_;
    if (run > static_cast<uint32_t>(max_rows - copied)) {
      run = static_cast<uint32_t>(max_rows - copied);
    }
    std::memcpy(out + static_cast<size_t>(copied) * row_size_,
                page_.data() + kBTreePageHeader + pos_ * row_size_,
                static_cast<size_t>(run) * row_size_);
    copied += static_cast<int32_t>(run);
    pos_ += run;
    // Mirror Next(): consuming a page's last row loads the next page
    // immediately, so page I/O lands at the same points either way.
    if (pos_ >= count_) SQLARRAY_RETURN_IF_ERROR(LoadLeaf(next_));
  }
  return copied;
}

Status BTree::ChunkCursor::LoadNextPage() {
  while (page_idx_ < pages_.size()) {
    if (fetch_) {
      SQLARRAY_ASSIGN_OR_RETURN(PinnedPage page, fetch_(pages_[page_idx_++]));
      page_ = *page;
      count_ = PageCount(page_);
      pos_ = 0;
      if (count_ > 0) {
        valid_ = true;
        return Status::OK();
      }
      continue;
    }
    if (readahead_ > 0) {
      // Best-effort readahead: issue the upcoming reads contiguously. The
      // authoritative (error-checked, retried) read is the GetPage below.
      size_t until = page_idx_ + static_cast<size_t>(readahead_);
      if (until > pages_.size()) until = pages_.size();
      if (prefetched_until_ < page_idx_) prefetched_until_ = page_idx_;
      while (prefetched_until_ < until) {
        (void)pool_->Prefetch(pages_[prefetched_until_++]);
      }
    }
    SQLARRAY_ASSIGN_OR_RETURN(PinnedPage page,
                              pool_->GetPage(pages_[page_idx_++]));
    page_ = *page;
    count_ = PageCount(page_);
    pos_ = 0;
    if (count_ > 0) {
      valid_ = true;
      return Status::OK();
    }
  }
  valid_ = false;
  return Status::OK();
}

Status BTree::ChunkCursor::Next() {
  if (!valid_) return Status::OK();
  if (++pos_ < count_) return Status::OK();
  return LoadNextPage();
}

Result<int32_t> BTree::ChunkCursor::CopyRows(int32_t max_rows, uint8_t* out) {
  int32_t copied = 0;
  while (copied < max_rows && valid_) {
    uint32_t run = count_ - pos_;
    if (run > static_cast<uint32_t>(max_rows - copied)) {
      run = static_cast<uint32_t>(max_rows - copied);
    }
    std::memcpy(out + static_cast<size_t>(copied) * row_size_,
                page_.data() + kBTreePageHeader + pos_ * row_size_,
                static_cast<size_t>(run) * row_size_);
    copied += static_cast<int32_t>(run);
    pos_ += run;
    if (pos_ >= count_) SQLARRAY_RETURN_IF_ERROR(LoadNextPage());
  }
  return copied;
}

Result<BTree::ChunkCursor> BTree::ScanChunk(BufferPool* pool,
                                            std::vector<PageId> pages,
                                            int readahead_pages) const {
  ChunkCursor c;
  c.pool_ = pool;
  c.row_size_ = row_size_;
  c.pages_ = std::move(pages);
  c.readahead_ = readahead_pages < 0 ? 0 : readahead_pages;
  SQLARRAY_RETURN_IF_ERROR(c.LoadNextPage());
  return c;
}

Result<BTree::Cursor> BTree::ScanAll() const {
  Cursor c;
  c.pool_ = pool_;
  if (io_ != nullptr) c.fetch_ = io_->fetch;
  c.row_size_ = row_size_;
  SQLARRAY_RETURN_IF_ERROR(c.LoadLeaf(first_leaf_));
  return c;
}

namespace {

/// Leftmost descent from `root` through `fetch`: the first leaf of the tree
/// as the snapshot sees it.
Result<PageId> FirstLeafVia(const PageFetcher& fetch, PageId root) {
  PageId node = root;
  for (int depth = 0; depth < 64; ++depth) {
    SQLARRAY_ASSIGN_OR_RETURN(PinnedPage page, fetch(node));
    if (IsLeaf(*page)) return node;
    if (page->data()[0] != static_cast<uint8_t>(PageType::kBTreeInternal)) {
      return Status::Corruption("snapshot walk: page " + std::to_string(node) +
                                " is neither leaf nor internal");
    }
    if (PageCount(*page) == 0) {
      return Status::Corruption("snapshot walk: empty internal page " +
                                std::to_string(node));
    }
    node = InternalChildAt(*page, 0);
  }
  return Status::Corruption("snapshot walk: tree height exceeds sanity bound");
}

}  // namespace

Result<BTree::Cursor> BTree::ScanAllVia(PageFetcher fetch, PageId root,
                                        int64_t row_size) {
  SQLARRAY_ASSIGN_OR_RETURN(PageId first_leaf, FirstLeafVia(fetch, root));
  Cursor c;
  c.fetch_ = std::move(fetch);
  c.row_size_ = row_size;
  SQLARRAY_RETURN_IF_ERROR(c.LoadLeaf(first_leaf));
  return c;
}

Result<std::vector<PageId>> BTree::CollectLeafPagesVia(
    const PageFetcher& fetch, PageId root) {
  SQLARRAY_ASSIGN_OR_RETURN(PageId leaf, FirstLeafVia(fetch, root));
  std::vector<PageId> out;
  while (leaf != kNullPage) {
    SQLARRAY_ASSIGN_OR_RETURN(PinnedPage page, fetch(leaf));
    if (!IsLeaf(*page)) {
      return Status::Corruption("snapshot walk: non-leaf page " +
                                std::to_string(leaf) + " in the leaf chain");
    }
    out.push_back(leaf);
    if (out.size() > (static_cast<size_t>(1) << 32)) {
      return Status::Corruption("snapshot walk: leaf chain does not terminate");
    }
    leaf = LeafNext(*page);
  }
  return out;
}

Result<BTree::ChunkCursor> BTree::ScanChunkVia(PageFetcher fetch,
                                               std::vector<PageId> pages,
                                               int64_t row_size) {
  ChunkCursor c;
  c.fetch_ = std::move(fetch);
  c.row_size_ = row_size;
  c.pages_ = std::move(pages);
  SQLARRAY_RETURN_IF_ERROR(c.LoadNextPage());
  return c;
}

}  // namespace sqlarray::storage
