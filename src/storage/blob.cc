#include "storage/blob.h"

#include <algorithm>
#include <cstring>

#include "common/bytes.h"

namespace sqlarray::storage {

namespace {

Status WriteDataPage(BufferPool* pool, PageId id,
                     std::span<const uint8_t> payload) {
  Page page;
  page.data()[0] = static_cast<uint8_t>(PageType::kBlobData);
  EncodeLE<uint32_t>(page.data() + 4, static_cast<uint32_t>(payload.size()));
  std::memcpy(page.data() + 8, payload.data(), payload.size());
  return pool->WritePage(id, page);
}

Status WriteIndexPage(BufferPool* pool, PageId id, int level,
                      std::span<const PageId> children) {
  Page page;
  page.data()[0] = static_cast<uint8_t>(PageType::kBlobIndex);
  page.data()[1] = static_cast<uint8_t>(level);
  EncodeLE<uint32_t>(page.data() + 4, static_cast<uint32_t>(children.size()));
  for (size_t i = 0; i < children.size(); ++i) {
    EncodeLE<uint32_t>(page.data() + 8 + 4 * i, children[i]);
  }
  return pool->WritePage(id, page);
}

}  // namespace

PageId BlobStore::AllocOrReuse() {
  if (!free_.empty()) {
    PageId id = free_.back();
    free_.pop_back();
    obs::MetricsRegistry::Global()
        .GetCounter("storage.blob.pages_reused")
        ->Add(1);
    return id;
  }
  return pool_->AllocatePage();
}

Result<int64_t> BlobStore::Free(const BlobId& id) {
  SQLARRAY_ASSIGN_OR_RETURN(PinnedPage root, pool_->GetPage(id.root));
  if (root->data()[0] != static_cast<uint8_t>(PageType::kBlobIndex)) {
    return Status::Corruption("blob root is not an index page");
  }
  int level = root->data()[1];
  if (level != 1 && level != 2) {
    return Status::Corruption("blob index has invalid level");
  }
  std::vector<PageId> reclaimed;
  uint32_t root_count = DecodeLE<uint32_t>(root->data() + 4);
  for (uint32_t i = 0; i < root_count; ++i) {
    PageId child = DecodeLE<uint32_t>(root->data() + 8 + 4 * i);
    if (level == 1) {
      reclaimed.push_back(child);
      continue;
    }
    SQLARRAY_ASSIGN_OR_RETURN(PinnedPage l1, pool_->GetPage(child));
    if (l1->data()[0] != static_cast<uint8_t>(PageType::kBlobIndex)) {
      return Status::Corruption("blob level-1 page is not an index page");
    }
    uint32_t n = DecodeLE<uint32_t>(l1->data() + 4);
    for (uint32_t k = 0; k < n; ++k) {
      reclaimed.push_back(DecodeLE<uint32_t>(l1->data() + 8 + 4 * k));
    }
    reclaimed.push_back(child);
  }
  reclaimed.push_back(id.root);
  free_.insert(free_.end(), reclaimed.begin(), reclaimed.end());
  obs::MetricsRegistry::Global()
      .GetCounter("storage.blob.pages_freed")
      ->Add(static_cast<int64_t>(reclaimed.size()));
  return static_cast<int64_t>(reclaimed.size());
}

Result<BlobId> BlobStore::Write(std::span<const uint8_t> bytes) {
  const int64_t size = static_cast<int64_t>(bytes.size());
  const int64_t n_data =
      (size + kBlobDataCapacity - 1) / kBlobDataCapacity;

  if (n_data > kBlobIndexFanout * kBlobIndexFanout) {
    return Status::ResourceExhausted(
        "blob exceeds the two-level index capacity");
  }

  // Write data pages.
  std::vector<PageId> data_pages;
  data_pages.reserve(n_data);
  for (int64_t k = 0; k < n_data; ++k) {
    PageId id = AllocOrReuse();
    int64_t off = k * kBlobDataCapacity;
    int64_t len = std::min(kBlobDataCapacity, size - off);
    SQLARRAY_RETURN_IF_ERROR(
        WriteDataPage(pool_, id, bytes.subspan(off, len)));
    data_pages.push_back(id);
  }

  BlobId blob;
  blob.size = size;
  if (n_data <= kBlobIndexFanout) {
    blob.root = AllocOrReuse();
    SQLARRAY_RETURN_IF_ERROR(WriteIndexPage(pool_, blob.root, 1, data_pages));
  } else {
    // Two levels: group data pages into level-1 index pages, then a root.
    std::vector<PageId> level1;
    for (int64_t g = 0; g < n_data; g += kBlobIndexFanout) {
      int64_t len = std::min<int64_t>(kBlobIndexFanout, n_data - g);
      PageId id = AllocOrReuse();
      SQLARRAY_RETURN_IF_ERROR(WriteIndexPage(
          pool_, id, 1,
          std::span<const PageId>(data_pages.data() + g,
                                  static_cast<size_t>(len))));
      level1.push_back(id);
    }
    blob.root = AllocOrReuse();
    SQLARRAY_RETURN_IF_ERROR(WriteIndexPage(pool_, blob.root, 2, level1));
  }
  return blob;
}

Result<std::vector<uint8_t>> BlobStore::ReadAll(const BlobId& id) {
  SQLARRAY_ASSIGN_OR_RETURN(BlobStream stream, BlobStream::Open(pool_, id));
  std::vector<uint8_t> out(static_cast<size_t>(id.size));
  SQLARRAY_RETURN_IF_ERROR(stream.ReadAt(0, out));
  return out;
}

Result<BlobStream> BlobStream::Open(BufferPool* pool, const BlobId& id) {
  SQLARRAY_ASSIGN_OR_RETURN(PinnedPage root, pool->GetPage(id.root));
  if (root->data()[0] != static_cast<uint8_t>(PageType::kBlobIndex)) {
    return Status::Corruption("blob root is not an index page");
  }
  int level = root->data()[1];
  if (level != 1 && level != 2) {
    return Status::Corruption("blob index has invalid level");
  }
  BlobStream stream(pool, id, level);
  stream.root_cache_ = *root;
  stream.root_loaded_ = true;
  return stream;
}

Result<PageId> BlobStream::DataPageOf(int64_t k) {
  const uint8_t* root = root_cache_.data();
  uint32_t root_count = DecodeLE<uint32_t>(root + 4);
  if (level_ == 1) {
    if (k >= root_count) {
      return Status::Corruption("blob data page index out of range");
    }
    return DecodeLE<uint32_t>(root + 8 + 4 * k);
  }
  int64_t slot = k / kBlobIndexFanout;
  int64_t inner = k % kBlobIndexFanout;
  if (slot >= root_count) {
    return Status::Corruption("blob index slot out of range");
  }
  if (slot != index_cache_slot_) {
    PageId l1 = DecodeLE<uint32_t>(root + 8 + 4 * slot);
    SQLARRAY_ASSIGN_OR_RETURN(PinnedPage page, pool_->GetPage(l1));
    if (page->data()[0] != static_cast<uint8_t>(PageType::kBlobIndex)) {
      return Status::Corruption("blob level-1 page is not an index page");
    }
    index_cache_ = *page;
    index_cache_slot_ = slot;
  }
  const uint8_t* idx = index_cache_.data();
  uint32_t count = DecodeLE<uint32_t>(idx + 4);
  if (inner >= count) {
    return Status::Corruption("blob data page index out of range");
  }
  return DecodeLE<uint32_t>(idx + 8 + 4 * inner);
}

Status BlobStream::ReadAt(int64_t offset, std::span<uint8_t> out) {
  if (offset < 0 ||
      offset + static_cast<int64_t>(out.size()) > id_.size) {
    return Status::OutOfRange("blob read past end");
  }
  int64_t remaining = static_cast<int64_t>(out.size());
  int64_t pos = offset;
  uint8_t* dst = out.data();
  while (remaining > 0) {
    int64_t k = pos / kBlobDataCapacity;
    int64_t in_page = pos % kBlobDataCapacity;
    int64_t take = std::min(remaining, kBlobDataCapacity - in_page);
    SQLARRAY_ASSIGN_OR_RETURN(PageId pid, DataPageOf(k));
    SQLARRAY_ASSIGN_OR_RETURN(PinnedPage page, pool_->GetPage(pid));
    if (page->data()[0] != static_cast<uint8_t>(PageType::kBlobData)) {
      return Status::Corruption("blob data page has wrong type");
    }
    uint32_t len = DecodeLE<uint32_t>(page->data() + 4);
    if (in_page + take > len) {
      return Status::Corruption("blob data page shorter than expected");
    }
    std::memcpy(dst, page->data() + 8 + in_page, static_cast<size_t>(take));
    dst += take;
    pos += take;
    remaining -= take;
  }
  return Status::OK();
}

}  // namespace sqlarray::storage
