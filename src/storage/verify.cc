#include "storage/verify.h"

#include <limits>
#include <optional>
#include <unordered_set>

#include "common/bytes.h"
#include "storage/blob.h"

namespace sqlarray::storage {

namespace {

// Local page decoders (layouts documented in btree.h / blob.h). The verifier
// deliberately re-implements them instead of trusting the writers' helpers:
// it must stay readable against pages those writers never produced.
uint32_t PageCount(const Page& p) { return DecodeLE<uint32_t>(p.data() + 4); }
PageId LeafNext(const Page& p) { return DecodeLE<uint32_t>(p.data() + 8); }
PageType TagOf(const Page& p) { return static_cast<PageType>(p.data()[0]); }
int64_t LeafKeyAt(const Page& p, int64_t row_size, uint32_t i) {
  return DecodeLE<int64_t>(p.data() + kBTreePageHeader + i * row_size);
}
int64_t InternalKeyAt(const Page& p, uint32_t i) {
  return DecodeLE<int64_t>(p.data() + kBTreePageHeader + i * 12);
}
PageId InternalChildAt(const Page& p, uint32_t i) {
  return DecodeLE<uint32_t>(p.data() + kBTreePageHeader + i * 12 + 8);
}

struct TreeWalk {
  BufferPool* pool = nullptr;
  const BTree* tree = nullptr;
  VerifyReport* report = nullptr;
  std::unordered_set<PageId> visited;
  /// Leaves in DFS (key) order — must match the sibling chain.
  std::vector<PageId> dfs_leaves;
  int64_t rows_seen = 0;
  std::optional<int64_t> last_key;

  void Issue(PageId page, std::string what) {
    report->issues.push_back(VerifyIssue{page, std::move(what)});
  }

  /// Recursively checks the subtree at `id` on `level` (0 = leaf). Keys in
  /// the subtree must fall in [lo, hi). Returns false if the page itself
  /// was unusable (subtree skipped).
  bool Walk(PageId id, int level, std::optional<int64_t> lo,
            std::optional<int64_t> hi) {
    if (!visited.insert(id).second) {
      Issue(id, "page reached twice (pointer cycle or shared subtree)");
      return false;
    }
    auto page_or = pool->GetPage(id);
    if (!page_or.ok()) {
      Issue(id, "unreadable: " + page_or.status().ToString());
      return false;
    }
    ++report->pages_visited;
    const Page& page = *page_or.value();
    const int64_t row_size = tree->row_size();

    if (level == 0) {
      if (TagOf(page) != PageType::kBTreeLeaf) {
        Issue(id, "expected a leaf page, found type tag " +
                      std::to_string(page.data()[0]));
        return false;
      }
      uint32_t n = PageCount(page);
      if (n > tree->leaf_capacity() ||
          kBTreePageHeader + static_cast<int64_t>(n) * row_size > kPageSize) {
        Issue(id, "leaf row count " + std::to_string(n) +
                      " exceeds page capacity");
        return false;
      }
      dfs_leaves.push_back(id);
      rows_seen += n;
      for (uint32_t i = 0; i < n; ++i) {
        int64_t key = LeafKeyAt(page, row_size, i);
        if (last_key && key <= *last_key) {
          Issue(id, "key " + std::to_string(key) +
                        " out of order (follows " +
                        std::to_string(*last_key) + ")");
        }
        if (lo && key < *lo) {
          Issue(id, "key " + std::to_string(key) +
                        " below its parent separator " + std::to_string(*lo));
        }
        if (hi && key >= *hi) {
          Issue(id, "key " + std::to_string(key) +
                        " at or above the next separator " +
                        std::to_string(*hi));
        }
        last_key = key;
      }
      return true;
    }

    if (TagOf(page) != PageType::kBTreeInternal) {
      Issue(id, "expected an internal page, found type tag " +
                    std::to_string(page.data()[0]));
      return false;
    }
    uint32_t n = PageCount(page);
    if (n > tree->internal_capacity() ||
        kBTreePageHeader + static_cast<int64_t>(n) * 12 > kPageSize) {
      Issue(id, "internal entry count " + std::to_string(n) +
                    " exceeds page capacity");
      return false;
    }
    if (n == 0) {
      Issue(id, "internal page has no children");
      return false;
    }
    for (uint32_t i = 0; i + 1 < n; ++i) {
      if (InternalKeyAt(page, i) >= InternalKeyAt(page, i + 1)) {
        Issue(id, "separator keys not strictly ascending at entry " +
                      std::to_string(i));
      }
    }
    for (uint32_t i = 0; i < n; ++i) {
      // Entry 0's key is a -infinity sentinel; the child inherits the
      // parent's lower bound instead.
      std::optional<int64_t> child_lo =
          (i == 0) ? lo : std::optional<int64_t>(InternalKeyAt(page, i));
      std::optional<int64_t> child_hi =
          (i + 1 < n) ? std::optional<int64_t>(InternalKeyAt(page, i + 1))
                      : hi;
      Walk(InternalChildAt(page, i), level - 1, child_lo, child_hi);
    }
    return true;
  }
};

}  // namespace

bool VerifyReport::Mentions(PageId page) const {
  for (const VerifyIssue& issue : issues) {
    if (issue.page == page) return true;
  }
  return false;
}

std::string VerifyReport::ToString() const {
  std::string out = "verified " + std::to_string(pages_visited) + " page(s), " +
                    std::to_string(issues.size()) + " issue(s)";
  for (const VerifyIssue& issue : issues) {
    out += "\n  page " + std::to_string(issue.page) + ": " + issue.what;
  }
  return out;
}

void VerifyReport::Merge(const VerifyReport& other) {
  pages_visited += other.pages_visited;
  issues.insert(issues.end(), other.issues.begin(), other.issues.end());
}

VerifyReport VerifyBTree(BufferPool* pool, const BTree& tree) {
  VerifyReport report;
  TreeWalk walk;
  walk.pool = pool;
  walk.tree = &tree;
  walk.report = &report;
  walk.Walk(tree.root_page(), tree.height() - 1, std::nullopt, std::nullopt);

  if (walk.rows_seen != tree.row_count()) {
    report.issues.push_back(
        VerifyIssue{tree.root_page(),
                    "tree claims " + std::to_string(tree.row_count()) +
                        " row(s) but the leaves hold " +
                        std::to_string(walk.rows_seen)});
  }

  // The sibling chain must visit exactly the DFS leaves, in order. Walk it
  // independently so a broken next pointer is localized to its page.
  std::vector<PageId> chain;
  std::unordered_set<PageId> chain_seen;
  PageId id = tree.first_leaf_page();
  PageId prev = kNullPage;
  while (id != kNullPage) {
    if (!chain_seen.insert(id).second) {
      report.issues.push_back(VerifyIssue{
          prev, "sibling chain loops back to page " + std::to_string(id)});
      break;
    }
    auto page_or = pool->GetPage(id);
    if (!page_or.ok()) {
      report.issues.push_back(VerifyIssue{
          id, "sibling chain hits unreadable page: " +
                  page_or.status().ToString()});
      break;
    }
    if (TagOf(*page_or.value()) != PageType::kBTreeLeaf) {
      report.issues.push_back(VerifyIssue{
          id, "sibling chain points at a non-leaf page"});
      break;
    }
    chain.push_back(id);
    prev = id;
    id = LeafNext(*page_or.value());
  }
  if (chain != walk.dfs_leaves) {
    report.issues.push_back(VerifyIssue{
        tree.first_leaf_page(),
        "sibling chain (" + std::to_string(chain.size()) +
            " leaves) disagrees with the tree's leaf order (" +
            std::to_string(walk.dfs_leaves.size()) + " leaves)"});
  }
  auto alloc_or = tree.CollectLeafPages();
  if (alloc_or.ok() && *alloc_or != chain) {
    report.issues.push_back(VerifyIssue{
        tree.first_leaf_page(),
        "allocation map disagrees with the sibling chain"});
  }
  return report;
}

VerifyReport VerifyBlob(BufferPool* pool, const BlobId& id) {
  VerifyReport report;
  auto issue = [&report](PageId page, std::string what) {
    report.issues.push_back(VerifyIssue{page, std::move(what)});
  };

  auto root_or = pool->GetPage(id.root);
  if (!root_or.ok()) {
    issue(id.root, "blob root unreadable: " + root_or.status().ToString());
    return report;
  }
  ++report.pages_visited;
  const Page& root = *root_or.value();
  if (TagOf(root) != PageType::kBlobIndex) {
    issue(id.root, "blob root is not an index page");
    return report;
  }
  int level = root.data()[1];
  if (level != 1 && level != 2) {
    issue(id.root, "blob index level " + std::to_string(level) +
                       " is not 1 or 2");
    return report;
  }

  // Gather the data pages through the (possibly two-level) index.
  std::vector<PageId> data_pages;
  auto check_index = [&](const Page& index, PageId index_id,
                         std::vector<PageId>* out) -> bool {
    uint32_t n = PageCount(index);
    if (n > kBlobIndexFanout) {
      issue(index_id, "blob index fan-out " + std::to_string(n) +
                          " exceeds capacity " +
                          std::to_string(kBlobIndexFanout));
      return false;
    }
    for (uint32_t i = 0; i < n; ++i) {
      out->push_back(DecodeLE<uint32_t>(index.data() + 8 + 4 * i));
    }
    return true;
  };

  if (level == 1) {
    if (!check_index(root, id.root, &data_pages)) return report;
  } else {
    std::vector<PageId> level1;
    if (!check_index(root, id.root, &level1)) return report;
    for (PageId l1 : level1) {
      auto page_or = pool->GetPage(l1);
      if (!page_or.ok()) {
        issue(l1, "blob index page unreadable: " +
                      page_or.status().ToString());
        continue;
      }
      ++report.pages_visited;
      if (TagOf(*page_or.value()) != PageType::kBlobIndex ||
          page_or.value()->data()[1] != 1) {
        issue(l1, "level-2 blob child is not a level-1 index page");
        continue;
      }
      check_index(*page_or.value(), l1, &data_pages);
    }
  }

  const int64_t expect_pages =
      (id.size + kBlobDataCapacity - 1) / kBlobDataCapacity;
  if (static_cast<int64_t>(data_pages.size()) != expect_pages) {
    issue(id.root, "blob of " + std::to_string(id.size) + " byte(s) has " +
                       std::to_string(data_pages.size()) +
                       " data page(s), expected " +
                       std::to_string(expect_pages));
  }

  int64_t total = 0;
  for (size_t k = 0; k < data_pages.size(); ++k) {
    auto page_or = pool->GetPage(data_pages[k]);
    if (!page_or.ok()) {
      issue(data_pages[k],
            "blob data page unreadable: " + page_or.status().ToString());
      continue;
    }
    ++report.pages_visited;
    const Page& page = *page_or.value();
    if (TagOf(page) != PageType::kBlobData) {
      issue(data_pages[k], "blob data page has wrong type tag");
      continue;
    }
    int64_t len = DecodeLE<uint32_t>(page.data() + 4);
    if (len > kBlobDataCapacity) {
      issue(data_pages[k], "blob data page length " + std::to_string(len) +
                               " exceeds capacity");
      continue;
    }
    if (k + 1 < data_pages.size() && len != kBlobDataCapacity) {
      issue(data_pages[k],
            "non-final blob data page is not full (" + std::to_string(len) +
                " of " + std::to_string(kBlobDataCapacity) + " bytes)");
    }
    total += len;
  }
  if (total != id.size) {
    issue(id.root, "blob payload totals " + std::to_string(total) +
                       " byte(s), header promises " +
                       std::to_string(id.size));
  }
  return report;
}

VerifyReport VerifyTable(const Table& table, BufferPool* pool) {
  VerifyReport report = VerifyBTree(pool, table.clustered_index());

  // Collect and verify every out-of-page blob the rows reference.
  std::vector<int> blob_cols;
  const Schema& schema = table.schema();
  for (int i = 0; i < schema.num_columns(); ++i) {
    if (schema.column(i).type == ColumnType::kVarBinaryMax) {
      blob_cols.push_back(i);
    }
  }
  if (blob_cols.empty()) return report;

  auto cursor_or = table.Scan();
  if (!cursor_or.ok()) {
    report.issues.push_back(VerifyIssue{
        table.clustered_index().root_page(),
        "table scan failed: " + cursor_or.status().ToString()});
    return report;
  }
  BTree::Cursor cursor = std::move(cursor_or).value();
  while (cursor.valid()) {
    for (int col : blob_cols) {
      auto value_or = schema.DecodeColumn(cursor.row().data(), col);
      if (!value_or.ok()) continue;  // the tree walk already flagged the page
      const BlobId& id = std::get<BlobId>(*value_or);
      if (id.root == kNullPage && id.size == 0) continue;  // absent blob
      report.Merge(VerifyBlob(pool, id));
    }
    Status st = cursor.Next();
    if (!st.ok()) {
      report.issues.push_back(VerifyIssue{
          kNullPage, "table scan aborted: " + st.ToString()});
      break;
    }
  }
  return report;
}

VerifyReport VerifyDatabase(Database* db) {
  VerifyReport report;
  for (const std::string& name : db->TableNames()) {
    auto table_or = db->GetTable(name);
    if (!table_or.ok()) continue;
    report.Merge(VerifyTable(**table_or, db->buffer_pool()));
  }
  return report;
}

}  // namespace sqlarray::storage
