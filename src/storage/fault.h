// Deterministic storage fault injection.
//
// Production array stores treat torn writes, bit rot, and transient I/O
// errors as facts of life; this hook lets tests and benches subject the
// SimulatedDisk to the same weather, reproducibly. A FaultInjector is seeded
// and drawn from under the disk's mutex, so a given (seed, workload) pair
// injects exactly the same faults on every run.
//
// Fault classes (mirroring the failure modes a page store must survive):
//   * transient read errors — the read fails once (controller hiccup, path
//     timeout); an immediate retry sees good data. Healed by the buffer
//     pool's bounded retry.
//   * bit flips — one stored bit is inverted WITHOUT refreshing the page
//     checksum (media rot). Permanent: every later read of the page fails
//     verification, so retries exhaust and kCorruption escalates.
//   * torn writes — only a prefix of a write reaches the media while the
//     checksum of the full intended image is recorded (power cut mid-write).
//     Permanent, detected on next read.
//   * dropped writes — the write is acknowledged but never hits the media,
//     while the checksum of the intended image is recorded (lost write with
//     a lying controller). Detected on next read as a checksum mismatch.
//
// Probabilistic faults are drawn per read/write; targeted faults are armed
// per page id and fire deterministically.
#pragma once

#include <cstdint>
#include <random>
#include <unordered_map>

#include "storage/page.h"

namespace sqlarray::storage {

/// Probabilities of each fault class, drawn independently per I/O.
struct FaultConfig {
  uint64_t seed = 0x5EED;
  /// P(a read fails once with a transient error).
  double transient_read_error_rate = 0.0;
  /// P(a read first flips one stored bit of the page, permanently).
  double bit_flip_rate = 0.0;
  /// P(a write persists only a random prefix of the page).
  double torn_write_rate = 0.0;
  /// P(a write is acknowledged but dropped entirely).
  double dropped_write_rate = 0.0;
};

/// Counts of injected faults (distinct from IoStats, which counts what the
/// upper layers observed — e.g. retries and healed reads).
struct FaultStats {
  int64_t transient_read_errors = 0;
  int64_t bit_flips = 0;
  int64_t torn_writes = 0;
  int64_t dropped_writes = 0;

  int64_t total() const {
    return transient_read_errors + bit_flips + torn_writes + dropped_writes;
  }
};

/// Seeded fault decision engine. Not thread-safe by itself; the SimulatedDisk
/// calls it only under its own mutex.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config = {})
      : config_(config), rng_(config.seed) {}

  const FaultConfig& config() const { return config_; }
  const FaultStats& stats() const { return stats_; }

  /// Arms `count` deterministic transient read errors against one page: the
  /// next `count` reads of `id` fail, later ones succeed.
  void ArmTransientReadErrors(PageId id, int count) {
    targeted_transient_[id] = count;
  }

  /// Draws whether this read fails transiently (targeted faults fire first).
  bool ShouldFailRead(PageId id);

  /// Draws whether to flip a stored bit before serving this read. On true,
  /// *byte_offset / *bit name the position to flip.
  bool ShouldFlipBit(int64_t* byte_offset, int* bit);

  /// Draws whether this write tears. On true, *keep_bytes in [1, kPageSize)
  /// is the prefix that reaches the media.
  bool ShouldTearWrite(int64_t* keep_bytes);

  /// Draws whether this write is dropped entirely.
  bool ShouldDropWrite();

 private:
  bool Draw(double p) {
    return p > 0.0 && std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < p;
  }

  FaultConfig config_;
  FaultStats stats_;
  std::mt19937_64 rng_;
  /// Page id -> remaining targeted transient read errors.
  std::unordered_map<PageId, int> targeted_transient_;
};

}  // namespace sqlarray::storage
