// Tables and the catalog.
//
// A Table is a schema plus a clustered B+-tree of its rows; VARBINARY(MAX)
// column values are written through the shared BlobStore and stored as blob
// pointers. The Database owns the simulated disk, buffer pool, blob store,
// and the named tables — the whole "server instance" the benches run against.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "storage/blob.h"
#include "storage/btree.h"
#include "storage/schema.h"
#include "storage/snapshot.h"

namespace sqlarray::wal {
class WalManager;
}  // namespace sqlarray::wal

namespace sqlarray::mvcc {
class MvccManager;
}  // namespace sqlarray::mvcc

namespace sqlarray::storage {

/// A named clustered table.
class Table {
 public:
  static Result<std::unique_ptr<Table>> Create(std::string name,
                                               Schema schema,
                                               BufferPool* pool,
                                               BlobStore* blobs);

  /// Re-opens a table whose pages already exist on disk, rebuilding the
  /// B-tree metadata by walking from `root` — crash recovery's path back
  /// from a logged (name, schema, root) catalog entry to a live table.
  static Result<std::unique_ptr<Table>> Attach(std::string name,
                                               Schema schema, PageId root,
                                               BufferPool* pool,
                                               BlobStore* blobs);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  int64_t row_count() const { return tree_.row_count(); }
  /// Pages used by the clustered index (excluding out-of-page blobs).
  int64_t data_page_count() const { return tree_.total_page_count(); }
  int64_t data_bytes() const { return data_page_count() * kPageSize; }

  /// Inserts a row. A std::vector<uint8_t> value supplied for a
  /// kVarBinaryMax column is written out-of-page automatically and replaced
  /// by its BlobId.
  Status Insert(Row row);

  /// Bulk loader for ascending-key loads into an empty table; writes each
  /// data page once (the fast path benches use to build large tables).
  class BulkInserter {
   public:
    /// Adds a row (keys strictly ascending).
    Status Add(Row row);
    /// Completes the load; required before reading the table.
    Status Finish() { return loader_.Finish(); }

   private:
    friend class Table;
    BulkInserter(Table* table, BTree::BulkLoader loader)
        : table_(table), loader_(std::move(loader)),
          encoded_(static_cast<size_t>(table->schema().row_size())) {}

    Table* table_;
    BTree::BulkLoader loader_;
    std::vector<uint8_t> encoded_;
  };

  /// Starts a bulk load; the table must be empty.
  Result<BulkInserter> StartBulkLoad();

  /// Point lookup by clustered key.
  Result<std::optional<Row>> Lookup(int64_t key);

  /// Deletes the row with `key`; returns false when absent. Out-of-page
  /// blob pages referenced by the row are reclaimed onto the blob store's
  /// free-list before the row itself is removed.
  Result<bool> Delete(int64_t key);

  /// Clustered-index metadata snapshot / restore (transaction rollback).
  BTree::Meta SnapshotIndexMeta() const { return tree_.SnapshotMeta(); }
  void RestoreIndexMeta(BTree::Meta meta) {
    tree_.RestoreMeta(std::move(meta));
  }

  /// Opens a full clustered index scan.
  Result<BTree::Cursor> Scan() const { return tree_.ScanAll(); }

  /// Opens a full scan through a snapshot: the root is resolved by the
  /// snapshot (not the live tree) and every page comes from its Fetch, so
  /// the walk sees one consistent historical version. A null snapshot falls
  /// back to Scan().
  Result<BTree::Cursor> Scan(PageSource* snap) const;

  /// Leaf pages in chain order (work division for parallel scans).
  Result<std::vector<PageId>> CollectLeafPages() const {
    return tree_.CollectLeafPages();
  }

  /// Leaf pages in chain order as of `snap` — a pure function of the
  /// snapshot's page view, so morsel planning is deterministic at any
  /// worker count. Null falls back to the live allocation map.
  Result<std::vector<PageId>> CollectLeafPages(PageSource* snap) const;

  /// Opens a cursor over a slice of the leaf pages through `pool` — one
  /// morsel of a parallel scan, usually against the shared pool with a
  /// sequential readahead window.
  Result<BTree::ChunkCursor> ScanChunk(BufferPool* pool,
                                       std::vector<PageId> pages,
                                       int readahead_pages = 0) const {
    return tree_.ScanChunk(pool, std::move(pages), readahead_pages);
  }

  /// Opens a morsel cursor whose pages come from `snap` (no readahead; the
  /// snapshot owns its images). `snap` must not be null and must outlive
  /// the cursor.
  Result<BTree::ChunkCursor> ScanChunk(PageSource* snap,
                                       std::vector<PageId> pages) const;

  /// Encodes `row` for the clustered index WITHOUT spilling blob bytes:
  /// raw bytes bound for a VARBINARY(MAX) column are replaced by a
  /// placeholder BlobId {kNullPage, length}. Transaction shadow inserts use
  /// this so no shared blob pages are written before commit; the real spill
  /// happens when the operation replays at commit.
  Result<std::vector<uint8_t>> EncodeRowShadow(const Row& row) const;

  /// Opens a stream over an out-of-page blob value.
  Result<BlobStream> OpenBlob(const BlobId& id) const {
    return BlobStream::Open(blobs_->pool(), id);
  }

  /// Reads a whole out-of-page blob.
  Result<std::vector<uint8_t>> ReadBlob(const BlobId& id) const {
    return blobs_->ReadAll(id);
  }

  BlobStore* blob_store() { return blobs_; }

  /// The clustered index itself (structural-verifier access).
  const BTree& clustered_index() const { return tree_; }

 private:
  Table(std::string name, Schema schema, BTree tree, BlobStore* blobs)
      : name_(std::move(name)), schema_(std::move(schema)),
        tree_(std::move(tree)), blobs_(blobs) {}

  std::string name_;
  Schema schema_;
  BTree tree_;
  BlobStore* blobs_;
};

/// The "server": disk, cache, blob store, and named tables.
class Database {
 public:
  explicit Database(DiskConfig disk_config = {},
                    int64_t buffer_pool_pages = 8192)
      : disk_(disk_config), pool_(&disk_, buffer_pool_pages), blobs_(&pool_) {}

  /// Creates a table; fails if the name is taken.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Looks a table up by name.
  Result<Table*> GetTable(const std::string& name) const;

  /// Names of all tables, in catalog order (verifier / tooling access).
  std::vector<std::string> TableNames() const {
    std::vector<std::string> names;
    names.reserve(tables_.size());
    for (const auto& [name, table] : tables_) names.push_back(name);
    return names;
  }

  /// Adds an already-constructed table to the catalog (crash recovery's
  /// re-attach path); fails if the name is taken.
  Status AdoptTable(std::unique_ptr<Table> table);

  /// Removes a table from the catalog (its pages are not reclaimed —
  /// rollback of CREATE TABLE and recovery use this).
  Status DropTable(const std::string& name);

  /// Empties the catalog without touching any pages. Crash simulation uses
  /// this: after a "crash" only the disks survive, and recovery rebuilds
  /// the catalog from the log.
  void ClearCatalog() { tables_.clear(); }

  /// Drops all cached pages (cold-cache benchmark reset).
  void ClearCache() { pool_.ClearCache(); }

  /// Wires the write-ahead-log manager to this database. The storage layer
  /// never calls it — it is an opaque pointer the SQL layer retrieves to
  /// drive transactions; null when the database runs without a WAL.
  void AttachWal(wal::WalManager* wal) { wal_ = wal; }
  wal::WalManager* wal() const { return wal_; }

  /// Wires the MVCC manager, same opaque-pointer pattern as AttachWal.
  /// When null (the default) the database runs in legacy single-version
  /// mode and nothing in the storage layer behaves differently.
  void AttachMvcc(mvcc::MvccManager* mvcc) { mvcc_ = mvcc; }
  mvcc::MvccManager* mvcc() const { return mvcc_; }

  SimulatedDisk* disk() { return &disk_; }
  BufferPool* buffer_pool() { return &pool_; }
  BlobStore* blob_store() { return &blobs_; }

 private:
  SimulatedDisk disk_;
  BufferPool pool_;
  BlobStore blobs_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  wal::WalManager* wal_ = nullptr;
  mvcc::MvccManager* mvcc_ = nullptr;
};

}  // namespace sqlarray::storage
