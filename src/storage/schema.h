// Table schemas and the fixed-width row codec.
//
// Tables hold fixed-width rows: scalar columns, fixed-capacity binary
// columns (VARBINARY(n), n <= 8000 — where short arrays live on-page), and
// VARBINARY(MAX) columns stored as 12-byte pointers to out-of-page blob
// B-trees. This mirrors the storage split the paper's two array classes are
// built on (Sec. 3.3).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace sqlarray::storage {

/// Column types supported by the mini engine.
enum class ColumnType : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kFloat32 = 2,
  kFloat64 = 3,
  kBinary = 4,        ///< fixed-capacity VARBINARY(n), stored on-page
  kVarBinaryMax = 5,  ///< VARBINARY(MAX), stored out-of-page as a blob B-tree
};

/// Reference to an out-of-page blob: root index page + byte size.
struct BlobId {
  PageId root = kNullPage;
  int64_t size = 0;

  bool operator==(const BlobId& o) const {
    return root == o.root && size == o.size;
  }
};

/// A single column definition. `capacity` applies to kBinary only.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  int32_t capacity = 0;

  /// Serialized width of this column inside a row.
  int64_t Width() const;
};

/// One column's runtime value.
using RowValue = std::variant<int32_t, int64_t, float, double,
                              std::vector<uint8_t>, BlobId>;

/// One row's values, in schema column order.
using Row = std::vector<RowValue>;

/// An ordered list of columns with a fixed serialized row size. The first
/// column is the clustered index key and must be kInt64.
class Schema {
 public:
  static Result<Schema> Create(std::vector<ColumnDef> columns);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(int i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  /// Serialized row size in bytes.
  int64_t row_size() const { return row_size_; }
  /// Byte offset of column `i` inside a serialized row.
  int64_t column_offset(int i) const { return offsets_[i]; }
  /// Index of the named column, or NotFound.
  Result<int> ColumnIndex(std::string_view name) const;

  /// Checks that a row's value kinds match the schema (and binary payloads
  /// fit their capacity).
  Status ValidateRow(const Row& row) const;

  /// Serializes `row` into `dst` (row_size() bytes, caller-provided).
  Status EncodeRow(const Row& row, uint8_t* dst) const;

  /// Deserializes all columns.
  Result<Row> DecodeRow(const uint8_t* src) const;

  /// Deserializes a single column (projection without full row decode —
  /// the fast path for scans that touch few columns).
  Result<RowValue> DecodeColumn(const uint8_t* src, int col) const;

  /// Extracts the clustered key (column 0).
  int64_t DecodeKey(const uint8_t* src) const;

 private:
  std::vector<ColumnDef> columns_;
  std::vector<int64_t> offsets_;
  int64_t row_size_ = 0;
};

}  // namespace sqlarray::storage
