// LRU buffer pool over the simulated disk.
//
// Table 1 was measured with a cold cache ("the database server cache was
// explicitly cleared before each performance test run"); ClearCache()
// reproduces that, and hit/miss counters let benches verify their cache
// assumptions.
#pragma once

#include <list>
#include <unordered_map>

#include "common/status.h"
#include "storage/disk.h"

namespace sqlarray::storage {

/// A read-through / write-through LRU page cache.
class BufferPool {
 public:
  /// `capacity_pages` bounds resident pages (default 64 MB worth).
  explicit BufferPool(SimulatedDisk* disk, int64_t capacity_pages = 8192)
      : disk_(disk), capacity_(capacity_pages) {}

  /// Fetches a page, via cache. The returned pointer stays valid until the
  /// page is evicted; single-threaded callers should copy out or finish
  /// using it before fetching more pages than the capacity.
  Result<const Page*> GetPage(PageId id);

  /// Writes through: updates the cache entry (if resident) and the disk.
  Status WritePage(PageId id, const Page& page);

  /// Allocates a fresh page on the disk (not yet cached).
  PageId AllocatePage() { return disk_->AllocatePage(); }

  /// Drops every cached page — the cold-cache reset used before each
  /// benchmark run (DBCC DROPCLEANBUFFERS in SQL Server terms).
  void ClearCache();

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  SimulatedDisk* disk() { return disk_; }

 private:
  struct Entry {
    Page page;
    std::list<PageId>::iterator lru_it;
  };

  SimulatedDisk* disk_;
  int64_t capacity_;
  std::unordered_map<PageId, Entry> cache_;
  std::list<PageId> lru_;  // front = most recent
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace sqlarray::storage
