// Thread-safe, lock-striped LRU buffer pool over the simulated disk.
//
// Table 1 was measured with a cold cache ("the database server cache was
// explicitly cleared before each performance test run"); ClearCache()
// reproduces that, and hit/miss counters let benches verify their cache
// assumptions.
//
// Concurrency: the cache is partitioned into lock-striped shards (page id
// modulo shard count, so a sequential leaf chain stripes evenly across
// shards). Each shard has its own mutex, hash map, and LRU list; hit/miss/
// pin counters are atomics. All parallel scan workers therefore share ONE
// cache — ClearCache() means the same thing in serial and parallel runs —
// instead of the former private pool per worker that bypassed it. Small
// pools (below one reasonable shard's worth of pages) collapse to a single
// shard so exact-LRU eviction semantics are preserved for tests and
// fine-grained cache experiments.
//
// Fetches return a PinnedPage guard: the entry cannot be evicted while any
// guard on it lives, which closes the old pointer-invalidation hazard where
// a returned Page* could be evicted mid-use. Reads that fail are retried a
// bounded number of times with modeled backoff (the SQL Server read-retry
// behaviour); faults that persist past the retry budget escalate to
// kCorruption naming the page.
#pragma once

#include <atomic>
#include <cassert>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/disk.h"

namespace sqlarray::storage {

class BufferPool;

/// Log sequence number: a byte offset into the write-ahead log's record
/// stream. Defined here (not in src/wal/) so the pool can order dirty-page
/// flushes against the log without depending on the WAL library.
using Lsn = uint64_t;

/// Callbacks the WAL installs so the pool enforces write-ahead ordering.
/// Both may be empty (write-back without durability — the negative-control
/// configuration the recovery tests use to demonstrate data loss).
struct WalPageHook {
  /// Appends a full-page-image redo record for (id, image) and returns the
  /// log position that must be durable before this image may reach the data
  /// disk. Called OUTSIDE any shard lock (it may re-enter the pool to read
  /// the page's previous image for rollback).
  std::function<Result<Lsn>(PageId, const Page&)> log_page_write;
  /// Makes the log durable at least up to `lsn` — the WAL-before-data fence
  /// the pool calls before a dirty page is written to the data disk. Called
  /// under a shard lock; must not re-enter the pool.
  std::function<Status(Lsn)> flush_log_to;
};

/// Move-only RAII pin over one page image. For pool-backed pins the entry
/// stays resident (and un-evictable) until the guard dies; every pin also
/// shares ownership of the image itself, so a concurrent copy-on-write
/// replacement of the cached page can never invalidate a reader's view.
/// Ownership-only pins (no pool) carry images that live outside the cache:
/// version-chain entries, transaction overlay pages, log-replay images.
class PinnedPage {
 public:
  PinnedPage() = default;
  PinnedPage(PinnedPage&& o) noexcept { *this = std::move(o); }
  PinnedPage& operator=(PinnedPage&& o) noexcept {
    Release();
    pool_ = std::exchange(o.pool_, nullptr);
    id_ = std::exchange(o.id_, kNullPage);
    owner_ = std::move(o.owner_);
    o.owner_.reset();
    return *this;
  }
  PinnedPage(const PinnedPage&) = delete;
  PinnedPage& operator=(const PinnedPage&) = delete;
  ~PinnedPage() { Release(); }

  const Page* get() const { return owner_.get(); }
  const Page& operator*() const { return *owner_; }
  const Page* operator->() const { return owner_.get(); }
  explicit operator bool() const { return owner_ != nullptr; }
  PageId id() const { return id_; }

  /// Wraps an image that lives outside any pool (version chains, overlays).
  static PinnedPage FromImage(PageId id, std::shared_ptr<const Page> image) {
    return PinnedPage(nullptr, id, std::move(image));
  }

  /// Drops the pin early.
  void Release();

 private:
  friend class BufferPool;
  PinnedPage(BufferPool* pool, PageId id, std::shared_ptr<const Page> page)
      : pool_(pool), id_(id), owner_(std::move(page)) {}

  BufferPool* pool_ = nullptr;
  PageId id_ = kNullPage;
  std::shared_ptr<const Page> owner_;
};

/// Observes copy-on-write page replacements so an MVCC layer can chain the
/// superseded images. Called UNDER the owning shard's lock, immediately
/// before the new image is installed; implementations must not re-enter the
/// pool. `old_image` is null when the page had no prior cached image AND no
/// readable disk content (a freshly allocated page).
class VersionSink {
 public:
  virtual ~VersionSink() = default;
  virtual void OnPageWrite(PageId id, std::shared_ptr<const Page> old_image,
                           Lsn new_lsn) = 0;
};

/// A read-through / write-through sharded LRU page cache with pinning.
/// Safe for concurrent use from many threads.
class BufferPool {
 public:
  /// `capacity_pages` bounds resident pages across all shards (default
  /// 64 MB worth). Pinned pages never count as eviction victims, so the
  /// pool may transiently exceed capacity while many pins are held.
  /// `shards` of 0 picks automatically: one shard per kShardCapacityFloor
  /// pages of capacity, up to kMaxShards; tiny pools get exactly one shard
  /// (global LRU order preserved).
  explicit BufferPool(SimulatedDisk* disk, int64_t capacity_pages = 8192,
                      int shards = 0);

  /// Fetches a page via the cache and pins it. The page stays resident until
  /// the returned guard dies. Transient read faults are retried up to
  /// max_read_attempts() with modeled backoff; persistent failures escalate
  /// to kCorruption naming the page id.
  Result<PinnedPage> GetPage(PageId id);

  /// Sequential readahead hint: loads `id` into the cache UNPINNED if it is
  /// not already resident. Scan cursors prefetch a morsel's pages
  /// back-to-back before row processing starts, so the worker's disk stream
  /// stays contiguous (the seq/random classifier never sees expression or
  /// blob reads interleaved into the leaf stream). A no-op on resident
  /// pages; counts a miss (it is a real disk read) when it loads.
  Status Prefetch(PageId id);

  /// Writes a page. In the default write-through mode this updates the
  /// cache entry (if resident) and the disk. In write-back mode the image
  /// is logged via the WAL hook (when installed), cached DIRTY, and only
  /// reaches the disk at eviction, FlushPage, or FlushAllDirty — each of
  /// which first forces the log durable up to the page's last_lsn.
  Status WritePage(PageId id, const Page& page);

  /// Switches between write-through (default; every existing caller's
  /// semantics) and write-back (dirty pages buffered for the WAL).
  void SetWriteBack(bool enabled) { write_back_ = enabled; }
  bool write_back() const { return write_back_; }

  /// Installs / clears the WAL ordering callbacks (write-back mode only).
  void SetWalHook(WalPageHook hook) { wal_hook_ = std::move(hook); }

  /// Installs / clears the MVCC version sink (write-back mode only). While
  /// set, every logged page write hands the superseded image to the sink
  /// before the replacement becomes visible, so snapshot readers can keep
  /// serving the old version. Null clears.
  void SetVersionSink(VersionSink* sink) { version_sink_ = sink; }

  /// Dirty-state snapshot of one cached page (rollback bookkeeping).
  struct PageState {
    bool present = false;
    bool dirty = false;
    Lsn rec_lsn = 0;   ///< LSN that first dirtied the page
    Lsn last_lsn = 0;  ///< LSN of the latest logged image
  };
  PageState GetPageState(PageId id);

  /// Overwrites a cached page's image and dirty state WITHOUT logging —
  /// transaction rollback restoring a byte-exact before-image. Inserts the
  /// entry if absent.
  void RestorePage(PageId id, const Page& image, const PageState& state);

  /// Flushes one page if resident and dirty (log fence first). No-op
  /// otherwise.
  Status FlushPage(PageId id);

  /// Ids of all dirty resident pages, sorted (deterministic checkpoint
  /// flush order).
  std::vector<PageId> CollectDirtyPageIds();

  /// Flushes every dirty page to the data disk (checkpoint / clean
  /// shutdown). The log fence applies per page.
  Status FlushAllDirty();

  /// Drops the ENTIRE cache — including dirty pages — without writing
  /// anything back: the crash. Outstanding pins must have been released.
  void DropCacheNoFlush();

  /// Allocates a fresh page on the disk (not yet cached).
  PageId AllocatePage() { return disk_->AllocatePage(); }

  /// Drops every unpinned cached page — the cold-cache reset used before
  /// each benchmark run (DBCC DROPCLEANBUFFERS in SQL Server terms).
  void ClearCache();

  /// Bounded read retry budget (total attempts, >= 1). Default 3 mirrors
  /// the host engine's read-retry behaviour; set 1 to surface raw faults.
  void set_max_read_attempts(int attempts) {
    max_read_attempts_ = attempts < 1 ? 1 : attempts;
  }
  int max_read_attempts() const { return max_read_attempts_; }

  /// One consistent view of the pool's counters. Replaces the old
  /// hits()/misses()/pinned_pages() getter spread: callers take one
  /// snapshot and difference two snapshots for per-query attribution.
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t prefetches = 0;
    /// Currently pinned entries (a level, not a monotone counter).
    int64_t pinned_pages = 0;
    /// Currently dirty entries (write-back mode; a level).
    int64_t dirty_pages = 0;
    /// Dirty pages written to the data disk (eviction + flush fences).
    int64_t dirty_flushes = 0;
  };
  Stats Snapshot() const {
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.prefetches = prefetches_.load(std::memory_order_relaxed);
    s.pinned_pages = pinned_pages_.load(std::memory_order_relaxed);
    s.dirty_pages = dirty_pages_.load(std::memory_order_relaxed);
    s.dirty_flushes = dirty_flushes_.load(std::memory_order_relaxed);
    return s;
  }

  int shard_count() const { return static_cast<int>(shards_.size()); }
  SimulatedDisk* disk() { return disk_; }

 private:
  friend class PinnedPage;

  /// Auto-sharding knobs: a shard per this many capacity pages, capped.
  static constexpr int64_t kShardCapacityFloor = 256;
  static constexpr int kMaxShards = 16;

  struct Entry {
    /// Copy-on-write: writers install a fresh image; readers holding pins
    /// share ownership of the image they fetched, so replacement never
    /// tears a view.
    std::shared_ptr<const Page> page;
    std::list<PageId>::iterator lru_it;
    int pins = 0;
    bool dirty = false;
    Lsn rec_lsn = 0;
    Lsn last_lsn = 0;
  };

  struct Shard {
    std::mutex mu;
    std::unordered_map<PageId, Entry> cache;
    std::list<PageId> lru;  // front = most recent
  };

  Shard& ShardFor(PageId id) {
    return *shards_[static_cast<size_t>(id) % shards_.size()];
  }

  void Unpin(PageId id);
  /// Evicts least-recently-used unpinned entries of `shard` until at most
  /// `target` remain (or only pinned entries are left). Dirty victims are
  /// flushed (log fence first); a victim whose flush fails is skipped and
  /// stays resident. Caller holds the shard mutex.
  void EvictDownTo(Shard* shard, int64_t target);
  /// Flushes one dirty entry to the data disk after forcing the log to its
  /// last_lsn. Caller holds the shard mutex.
  Status FlushEntryLocked(PageId id, Entry* entry);
  /// Reads `id` from disk with bounded retry (no locks held).
  Status ReadWithRetry(PageId id, Page* image);

  SimulatedDisk* disk_;
  int64_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool write_back_ = false;
  WalPageHook wal_hook_;
  VersionSink* version_sink_ = nullptr;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> prefetches_{0};
  std::atomic<int64_t> pinned_pages_{0};
  std::atomic<int64_t> dirty_pages_{0};
  std::atomic<int64_t> dirty_flushes_{0};
  int max_read_attempts_ = 3;
  /// Global registry mirrors (resolved once; bumped beside the atomics so
  /// engine-wide dashboards see all pools without polling each one).
  obs::Counter* reg_hits_;
  obs::Counter* reg_misses_;
  obs::Counter* reg_evictions_;
};

}  // namespace sqlarray::storage
