#include "storage/disk.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace sqlarray::storage {

namespace {

/// FNV-1a over a page image.
uint64_t PageChecksum(const Page& page) {
  uint64_t h = 1469598103934665603ULL;
  for (uint8_t b : page.bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

PageId SimulatedDisk::AllocatePage() {
  std::lock_guard<std::mutex> lock(mutex_);
  pages_.push_back(std::make_unique<Page>());
  // Page ids start at 1; kNullPage (0) is reserved.
  return static_cast<PageId>(pages_.size());
}

Status SimulatedDisk::ReadPage(PageId id, Page* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == kNullPage || id > pages_.size()) {
    return Status::InvalidArgument("read of unallocated page " +
                                   std::to_string(id));
  }
  if (fault_countdown_ == 0) {
    fault_countdown_ = -1;  // one-shot fault
    return Status::Corruption("injected read fault on page " +
                              std::to_string(id));
  }
  if (fault_countdown_ > 0) --fault_countdown_;
  *out = *pages_[id - 1];
  if (checksums_enabled_) {
    auto it = checksums_.find(id);
    if (it != checksums_.end() && it->second != PageChecksum(*out)) {
      return Status::Corruption("checksum mismatch on page " +
                                std::to_string(id) +
                                " (torn or corrupted page)");
    }
  }

  stats_.pages_read++;
  stats_.bytes_read += kPageSize;
  const double transfer_s =
      static_cast<double>(kPageSize) / (config_.sequential_mb_per_s * 1e6);
  PageId& last_read = last_read_by_thread_[std::this_thread::get_id()];
  if (last_read != kNullPage && id == last_read + 1) {
    stats_.sequential_reads++;
    stats_.virtual_read_seconds += transfer_s;
  } else {
    stats_.random_reads++;
    double gap_mb =
        last_read == kNullPage
            ? 1e9  // first touch: treat as a full seek
            : std::abs(static_cast<double>(id) -
                       static_cast<double>(last_read)) *
                  kPageSize / 1e6;
    double seek_us = std::min(
        config_.random_latency_us,
        config_.min_seek_us + config_.seek_us_per_mb * gap_mb);
    stats_.virtual_read_seconds += transfer_s + seek_us * 1e-6;
  }
  last_read = id;
  return Status::OK();
}

Status SimulatedDisk::CorruptPageByte(PageId id, int64_t offset) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == kNullPage || id > pages_.size() || offset < 0 ||
      offset >= kPageSize) {
    return Status::InvalidArgument("corruption target out of range");
  }
  pages_[id - 1]->data()[offset] ^= 0xFF;
  return Status::OK();
}

Status SimulatedDisk::WritePage(PageId id, const Page& page) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == kNullPage || id > pages_.size()) {
    return Status::InvalidArgument("write of unallocated page " +
                                   std::to_string(id));
  }
  *pages_[id - 1] = page;
  if (checksums_enabled_) checksums_[id] = PageChecksum(page);
  stats_.pages_written++;
  stats_.bytes_written += kPageSize;
  stats_.virtual_write_seconds +=
      static_cast<double>(kPageSize) / (config_.write_mb_per_s * 1e6);
  return Status::OK();
}

}  // namespace sqlarray::storage
