#include "storage/disk.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "common/crc32c.h"

namespace sqlarray::storage {

namespace {

uint32_t PageChecksum(const Page& page) {
  return Crc32c(page.data(), static_cast<size_t>(kPageSize));
}

}  // namespace

PageId SimulatedDisk::AllocatePage() {
  std::lock_guard<std::mutex> lock(mutex_);
  pages_.push_back(std::make_unique<Page>());
  // Page ids start at 1; kNullPage (0) is reserved.
  return static_cast<PageId>(pages_.size());
}

void SimulatedDisk::EnsureAllocated(PageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (pages_.size() < static_cast<size_t>(id)) {
    pages_.push_back(std::make_unique<Page>());
  }
}

FaultInjector* SimulatedDisk::EnableFaults(FaultConfig config) {
  std::lock_guard<std::mutex> lock(mutex_);
  injector_ = std::make_unique<FaultInjector>(config);
  return injector_.get();
}

void SimulatedDisk::DisableFaults() {
  std::lock_guard<std::mutex> lock(mutex_);
  injector_.reset();
}

void SimulatedDisk::NoteReadRetry(int attempt) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.read_retries;
  reg_read_retries_->Add(1);
  // Exponential backoff: attempt k sleeps 2^(k-1) * retry_backoff_us of
  // modeled time.
  stats_.virtual_read_seconds +=
      config_.retry_backoff_us * std::ldexp(1.0, std::max(0, attempt - 1)) *
      1e-6;
}

void SimulatedDisk::NoteFaultHealed() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.transient_faults_healed;
}

Status SimulatedDisk::ReadPage(PageId id, Page* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == kNullPage || id > pages_.size()) {
    return Status::InvalidArgument("read of unallocated page " +
                                   std::to_string(id));
  }
  if (fault_countdown_ == 0) {
    fault_countdown_ = -1;  // one-shot fault
    ++stats_.read_errors;
    reg_read_errors_->Add(1);
    return Status::Corruption("injected read fault on page " +
                              std::to_string(id));
  }
  if (fault_countdown_ > 0) --fault_countdown_;

  if (injector_) {
    if (injector_->ShouldFailRead(id)) {
      ++stats_.read_errors;
      reg_read_errors_->Add(1);
      return Status::Internal("transient read error on page " +
                              std::to_string(id));
    }
    int64_t byte = 0;
    int bit = 0;
    if (injector_->ShouldFlipBit(&byte, &bit)) {
      // Media rot: the stored image mutates, its checksum does not.
      pages_[id - 1]->data()[byte] ^=
          static_cast<uint8_t>(1u << bit);
    }
  }

  *out = *pages_[id - 1];
  if (checksums_enabled_) {
    auto it = checksums_.find(id);
    if (it != checksums_.end() && it->second != PageChecksum(*out)) {
      ++stats_.read_errors;
      ++stats_.checksum_failures;
      reg_read_errors_->Add(1);
      reg_checksum_failures_->Add(1);
      return Status::Corruption("checksum mismatch on page " +
                                std::to_string(id) +
                                " (torn or corrupted page)");
    }
  }

  stats_.pages_read++;
  stats_.bytes_read += kPageSize;
  reg_pages_read_->Add(1);
  reg_bytes_read_->Add(kPageSize);
  const double transfer_s =
      static_cast<double>(kPageSize) / (config_.sequential_mb_per_s * 1e6);
  PageId& last_read = last_read_by_thread_[std::this_thread::get_id()];
  if (last_read != kNullPage && id == last_read + 1) {
    stats_.sequential_reads++;
    stats_.virtual_read_seconds += transfer_s;
  } else {
    stats_.random_reads++;
    double gap_mb =
        last_read == kNullPage
            ? 1e9  // first touch: treat as a full seek
            : std::abs(static_cast<double>(id) -
                       static_cast<double>(last_read)) *
                  kPageSize / 1e6;
    double seek_us = std::min(
        config_.random_latency_us,
        config_.min_seek_us + config_.seek_us_per_mb * gap_mb);
    stats_.virtual_read_seconds += transfer_s + seek_us * 1e-6;
  }
  last_read = id;
  return Status::OK();
}

Status SimulatedDisk::CorruptPageByte(PageId id, int64_t offset) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == kNullPage || id > pages_.size() || offset < 0 ||
      offset >= kPageSize) {
    return Status::InvalidArgument("corruption target out of range");
  }
  pages_[id - 1]->data()[offset] ^= 0xFF;
  return Status::OK();
}

Status SimulatedDisk::WritePage(PageId id, const Page& page) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == kNullPage || id > pages_.size()) {
    return Status::InvalidArgument("write of unallocated page " +
                                   std::to_string(id));
  }

  bool stored = true;
  if (injector_) {
    int64_t keep = 0;
    if (injector_->ShouldDropWrite()) {
      // Lost write: the media keeps the old image while the controller acks
      // the new one — the new checksum is recorded, so the next read fails
      // verification instead of silently serving stale data.
      stored = false;
    } else if (injector_->ShouldTearWrite(&keep)) {
      // Torn write: only the prefix reaches the media.
      std::memcpy(pages_[id - 1]->data(), page.data(),
                  static_cast<size_t>(keep));
      stored = false;
    }
  }
  if (stored) *pages_[id - 1] = page;

  if (checksums_enabled_) checksums_[id] = PageChecksum(page);
  stats_.pages_written++;
  stats_.bytes_written += kPageSize;
  reg_pages_written_->Add(1);
  reg_bytes_written_->Add(kPageSize);
  stats_.virtual_write_seconds +=
      static_cast<double>(kPageSize) / (config_.write_mb_per_s * 1e6);
  return Status::OK();
}

}  // namespace sqlarray::storage
