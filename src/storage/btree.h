// Clustered B+-tree over fixed-width rows, keyed by a BIGINT.
//
// Every table in the mini engine is a clustered index — the structure the
// Table 1 queries scan ("a simple clustered index scan operation reading all
// pages of the data table"). Leaves form a sibling chain so a full scan is a
// sequential page walk; lookups descend from the root.
//
// Page layouts (little-endian):
//   leaf    : [0]=kBTreeLeaf [1..3] rsvd [4..7] row count [8..11] next leaf
//             [12..15] rsvd, rows at 16..
//   internal: [0]=kBTreeInternal [1..3] rsvd [4..7] child count,
//             entries at 16.. of (int64 first_key, uint32 child) = 12 bytes
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"

namespace sqlarray::storage {

/// A pluggable page fetch: resolves a page id to a pinned image. Snapshot
/// scans and transaction shadow trees substitute their own (version chain,
/// overlay map, log-replay map) for the buffer pool's GetPage.
using PageFetcher = std::function<Result<PinnedPage>(PageId)>;

/// Redirectable page IO for transaction-private shadow trees: fetch may
/// consult an overlay map before the shared state, writes land in the
/// overlay instead of the shared pool, and alloc draws fresh page ids from
/// the shared allocator. The struct is owned by the caller and must outlive
/// every tree it is installed into (trees hold a raw pointer so copies stay
/// cheap and self-consistent).
struct PageIO {
  PageFetcher fetch;
  std::function<Status(PageId, const Page&)> write;
  std::function<PageId()> alloc;
};

/// Offset where payload begins on both page kinds.
inline constexpr int64_t kBTreePageHeader = 16;

/// Modeled SQL Server page header size (bytes reserved per page when
/// computing row capacity, so page counts match the real engine's).
inline constexpr int64_t kSqlPageHeaderBytes = 96;
/// Modeled per-row overhead (record header + slot-array entry).
inline constexpr int64_t kSqlRowOverheadBytes = 9;

/// A clustered B+-tree of fixed-size rows whose first 8 bytes are the
/// little-endian int64 key.
class BTree {
 public:
  /// Creates an empty tree. `row_size` must leave room for at least two rows
  /// per leaf.
  static Result<BTree> Create(BufferPool* pool, int64_t row_size);

  /// Attaches to an EXISTING tree rooted at `root`, rebuilding the
  /// in-memory metadata (height, first leaf, row count, allocation map) by
  /// walking the on-disk structure. This is how crash recovery re-opens
  /// tables: none of the metadata is persisted, only the pages are.
  static Result<BTree> Attach(BufferPool* pool, int64_t row_size, PageId root);

  /// Installs (or clears, with nullptr) redirected page IO. A transaction's
  /// shadow tree is a plain copy of the shared tree with an overlay-backed
  /// PageIO installed; the shared tree itself keeps io_ == nullptr and goes
  /// straight to the buffer pool.
  void SetIO(const PageIO* io) { io_ = io; }

  /// The in-memory metadata a transaction snapshots before mutating the
  /// tree, so rollback can restore it byte-exactly alongside the page
  /// before-images.
  struct Meta {
    PageId root = kNullPage;
    PageId first_leaf = kNullPage;
    int height = 1;
    int64_t row_count = 0;
    int64_t leaf_pages = 0;
    int64_t internal_pages = 0;
    std::vector<PageId> leaf_ids;
  };
  Meta SnapshotMeta() const {
    return Meta{root_,      first_leaf_,     height_,  row_count_,
                leaf_pages_, internal_pages_, leaf_ids_};
  }
  void RestoreMeta(Meta meta) {
    root_ = meta.root;
    first_leaf_ = meta.first_leaf;
    height_ = meta.height;
    row_count_ = meta.row_count;
    leaf_pages_ = meta.leaf_pages;
    internal_pages_ = meta.internal_pages;
    leaf_ids_ = std::move(meta.leaf_ids);
  }

  int64_t row_size() const { return row_size_; }
  int64_t row_count() const { return row_count_; }
  int64_t leaf_page_count() const { return leaf_pages_; }
  int64_t total_page_count() const { return leaf_pages_ + internal_pages_; }
  int height() const { return height_; }
  /// Rows per leaf page.
  int64_t leaf_capacity() const { return leaf_capacity_; }
  /// (first_key, child) entries per internal page.
  int64_t internal_capacity() const { return internal_capacity_; }
  /// Root / first-leaf page ids (structural-verifier access).
  PageId root_page() const { return root_; }
  PageId first_leaf_page() const { return first_leaf_; }

  /// Inserts a row (its embedded key must be unique). Rows arriving in
  /// ascending key order fill pages densely via a fast append path.
  Status Insert(std::span<const uint8_t> row);

  /// Point lookup; returns false when the key is absent.
  Result<bool> Lookup(int64_t key, std::vector<uint8_t>* row_out);

  /// Removes the row with `key`; returns false when absent. Leaves are not
  /// rebalanced (emptied pages stay in the chain and scans skip them) —
  /// adequate for the workloads here, like many production engines that
  /// defer reclamation to rebuilds.
  Result<bool> Delete(int64_t key);

  /// Bulk loader for ascending-key loads: fills leaves densely and builds
  /// the internal levels bottom-up, writing each page exactly once. Usable
  /// only on an EMPTY tree; Finish() must be called before any read.
  class BulkLoader {
   public:
    /// Appends a row; its key must exceed every key added so far.
    Status Add(std::span<const uint8_t> row);
    /// Flushes the tail leaf and builds the internal levels.
    Status Finish();

   private:
    friend class BTree;
    explicit BulkLoader(BTree* tree);

    Status FlushLeaf();

    BTree* tree_;
    Page leaf_;
    uint32_t leaf_count_ = 0;
    PageId leaf_id_ = kNullPage;
    int64_t last_key_ = 0;
    bool any_ = false;
    bool finished_ = false;
    /// (first_key, page) per flushed leaf, for the internal build.
    std::vector<std::pair<int64_t, PageId>> leaf_index_;
  };

  /// Starts a bulk load. The tree must be empty.
  Result<BulkLoader> StartBulkLoad();

  /// Forward cursor over the whole leaf chain (the clustered index scan).
  class Cursor {
   public:
    bool valid() const { return valid_; }
    /// Current row bytes (points into the cursor's page copy).
    std::span<const uint8_t> row() const;
    /// Advances; clears valid() at the end.
    Status Next();
    /// Copies up to `max_rows` consecutive rows into `out` (row-major,
    /// contiguous) and advances past them — one memcpy per leaf-page run
    /// instead of a row()/Next() pair per row, the batched scan's fill
    /// path. Returns the number of rows copied (0 only at end of chain);
    /// page loads happen at exactly the row positions Next() loads them.
    Result<int32_t> CopyRows(int32_t max_rows, uint8_t* out);

   private:
    friend class BTree;
    BufferPool* pool_ = nullptr;
    /// When set, pages come from here instead of pool_ (snapshot / shadow
    /// scans); prefetch is skipped since the fetcher owns its images.
    PageFetcher fetch_;
    int64_t row_size_ = 0;
    Page page_;
    uint32_t count_ = 0;
    uint32_t pos_ = 0;
    PageId next_ = kNullPage;
    bool valid_ = false;

    Status LoadLeaf(PageId id);
  };

  /// Opens a scan cursor at the first row. A tree with redirected IO scans
  /// through its fetcher (read-your-writes for shadow trees).
  Result<Cursor> ScanAll() const;

  /// Opens a full-chain cursor over the tree rooted at `root` as seen
  /// through `fetch` — the snapshot scan: the same structure walk as
  /// ScanAll but against an arbitrary consistent page view.
  static Result<Cursor> ScanAllVia(PageFetcher fetch, PageId root,
                                   int64_t row_size);

  /// Collects the leaf chain of the tree rooted at `root` as seen through
  /// `fetch`: leftmost descent, then the sibling chain. The snapshot
  /// equivalent of CollectLeafPages() — a pure function of the page view,
  /// so morsel planning is deterministic at any worker count.
  static Result<std::vector<PageId>> CollectLeafPagesVia(
      const PageFetcher& fetch, PageId root);

  /// Returns the leaf page ids in chain order from the in-memory
  /// allocation map — the work-division step of a parallel scan. (A real
  /// engine reads this from IAM/allocation pages; the map models that
  /// metadata without charging data-page I/O.)
  Result<std::vector<PageId>> CollectLeafPages() const {
    return leaf_ids_;
  }

  /// A cursor over an explicit list of leaf pages, reading through a
  /// caller-supplied buffer pool. Parallel scan workers each run one
  /// ChunkCursor per morsel (a small slice of CollectLeafPages()) against
  /// the SHARED buffer pool; a readahead window keeps each worker's disk
  /// stream sequential.
  class ChunkCursor {
   public:
    bool valid() const { return valid_; }
    std::span<const uint8_t> row() const {
      return std::span<const uint8_t>(
          page_.data() + kBTreePageHeader + pos_ * row_size_,
          static_cast<size_t>(row_size_));
    }
    Status Next();
    /// Bulk fill, identical contract to Cursor::CopyRows.
    Result<int32_t> CopyRows(int32_t max_rows, uint8_t* out);

   private:
    friend class BTree;
    Status LoadNextPage();

    BufferPool* pool_ = nullptr;
    /// Snapshot fetch; when set, pool_ and readahead are unused.
    PageFetcher fetch_;
    int64_t row_size_ = 0;
    std::vector<PageId> pages_;
    size_t page_idx_ = 0;
    /// Pages before this index have been readahead-prefetched.
    size_t prefetched_until_ = 0;
    int readahead_ = 0;
    Page page_;
    uint32_t count_ = 0;
    uint32_t pos_ = 0;
    bool valid_ = false;
  };

  /// Opens a cursor over `pages` (a slice of CollectLeafPages()).
  /// `readahead_pages` > 0 issues that many Prefetch reads ahead of the
  /// cursor position, back-to-back in page order, so the per-thread
  /// sequential classifier in the disk model is not broken by expression
  /// or blob reads interleaving into the leaf stream.
  Result<ChunkCursor> ScanChunk(BufferPool* pool, std::vector<PageId> pages,
                                int readahead_pages = 0) const;

  /// Opens a cursor over `pages` reading every page through `fetch` — the
  /// morsel-worker path of a snapshot scan. No readahead: the fetcher owns
  /// its images (chain entries, overlays, log-replay maps).
  static Result<ChunkCursor> ScanChunkVia(PageFetcher fetch,
                                          std::vector<PageId> pages,
                                          int64_t row_size);

 private:
  BTree(BufferPool* pool, int64_t row_size)
      : pool_(pool), row_size_(row_size) {}

  /// Page IO dispatch: through io_ when redirected, else the pool.
  Result<PinnedPage> GetP(PageId id) const {
    return io_ != nullptr ? io_->fetch(id) : pool_->GetPage(id);
  }
  Status WriteP(PageId id, const Page& page) {
    return io_ != nullptr ? io_->write(id, page) : pool_->WritePage(id, page);
  }
  PageId AllocP() {
    return io_ != nullptr ? io_->alloc() : pool_->AllocatePage();
  }

  struct SplitResult {
    bool split = false;
    int64_t new_first_key = 0;
    PageId new_page = kNullPage;
  };

  Result<SplitResult> InsertRecurse(PageId node, int level,
                                    std::span<const uint8_t> row,
                                    int64_t key);

  BufferPool* pool_;
  /// Redirected page IO (shadow trees); null for the shared tree.
  const PageIO* io_ = nullptr;
  int64_t row_size_;
  int64_t leaf_capacity_ = 0;
  int64_t internal_capacity_ = 0;
  PageId root_ = kNullPage;
  PageId first_leaf_ = kNullPage;
  int height_ = 1;  ///< levels including the leaf level
  int64_t row_count_ = 0;
  int64_t leaf_pages_ = 0;
  int64_t internal_pages_ = 0;
  /// Allocation map: leaf page ids in chain order (IAM-page stand-in).
  std::vector<PageId> leaf_ids_;
};

}  // namespace sqlarray::storage
