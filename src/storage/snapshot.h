// PageSource: the read surface a consistent snapshot exposes to scans.
//
// Lives in src/storage (not src/mvcc) so the engine can run snapshot-aware
// scans without linking the MVCC library: the executor only ever sees this
// interface through engine::QueryContext. Concrete implementations live in
// src/mvcc/mvcc.cc:
//   * LiveSnapshotView — the committed state as of a recent commit LSN,
//     served from the buffer pool's current images plus the in-memory
//     version chains for pages that have moved past the snapshot.
//   * LogSnapshotView  — an arbitrary historical LSN (AS OF), rebuilt from
//     the WAL's full-page-image records; survives restart and GC.
//   * TxnSnapshotView  — an open transaction's private view: its shadow
//     writes overlaid on the shared state (read-your-writes).
#pragma once

#include <memory>
#include <string>

#include "common/status.h"
#include "storage/buffer_pool.h"

namespace sqlarray::storage {

/// A consistent, immutable view of the database at one LSN. Fetch must be
/// safe to call concurrently from many scan workers; returned pins keep the
/// backing image alive (they may be ownership-only pins that never touch
/// the buffer pool).
class PageSource {
 public:
  virtual ~PageSource() = default;

  /// The snapshot's LSN (for EXPLAIN ANALYZE and diagnostics).
  virtual Lsn lsn() const = 0;

  /// Fetches page `id` as of the snapshot.
  virtual Result<PinnedPage> Fetch(PageId id) = 0;

  /// The clustered-index root of `table` as of the snapshot. Fails with
  /// kNotFound if the table did not exist at the snapshot LSN.
  virtual Result<PageId> TableRoot(const std::string& table) = 0;
};

}  // namespace sqlarray::storage
