// Out-of-page blob storage (the VARBINARY(MAX) B-tree).
//
// Blobs larger than a page are stored out-of-page as a shallow B-tree: a
// root index page pointing at data pages (1 level, ~16 MB) or at further
// index pages (2 levels, ~34 GB). Reads go through BlobStream, which
// implements the array core's ByteSource and therefore supports the partial
// range reads that make max-array subsetting cheap (Sec. 3.3: the stream
// "supports reading only parts of the binary data").
//
// Page layouts (little-endian):
//   data page : [0]=kBlobData  [1..3] rsvd  [4..7] payload len  [8..] bytes
//   index page: [0]=kBlobIndex [1]=level(1|2) [2..3] rsvd [4..7] entry count
//               [8..] 4-byte child PageIds
#pragma once

#include <vector>

#include "common/status.h"
#include "core/byte_source.h"
#include "storage/buffer_pool.h"
#include "storage/schema.h"

namespace sqlarray::storage {

/// Usable payload bytes per blob data page.
inline constexpr int64_t kBlobDataCapacity = kPageSize - 8;
/// Child pointers per blob index page.
inline constexpr int64_t kBlobIndexFanout = (kPageSize - 8) / 4;

/// Writes and deletes out-of-page blobs.
///
/// Freed pages (index and data) go on an in-memory free-list that Write
/// drains LIFO before allocating fresh pages, so Table::Delete reclaims
/// out-of-page blob space instead of leaking it. Crash durability of the
/// free-list comes from the WAL: the list rides in checkpoint and commit
/// records, and recovery restores it (frees outside a transaction are lost
/// at a crash — a bounded leak, never a dangling reference).
class BlobStore {
 public:
  explicit BlobStore(BufferPool* pool) : pool_(pool) {}

  /// Writes a blob and returns its id. Empty blobs are legal (size 0,
  /// root still allocated so the id is addressable). Reuses free-listed
  /// pages before allocating new ones.
  Result<BlobId> Write(std::span<const uint8_t> bytes);

  /// Reads a whole blob back.
  Result<std::vector<uint8_t>> ReadAll(const BlobId& id);

  /// Frees every page of a blob (data + index pages) onto the free-list.
  /// Returns the number of pages reclaimed. The blob must not be read
  /// afterwards.
  Result<int64_t> Free(const BlobId& id);

  /// Free-list state (WAL snapshot / restore and test accounting).
  const std::vector<PageId>& free_pages() const { return free_; }
  int64_t free_page_count() const {
    return static_cast<int64_t>(free_.size());
  }
  void RestoreFreeList(std::vector<PageId> pages) { free_ = std::move(pages); }

  BufferPool* pool() { return pool_; }

 private:
  /// Pops a free page or allocates a new one.
  PageId AllocOrReuse();

  BufferPool* pool_;
  std::vector<PageId> free_;  // LIFO: back is reused first
};

/// Streaming, range-addressable reader over one blob; the ByteSource the
/// array core's streamed operations consume.
class BlobStream : public ByteSource {
 public:
  /// Opens a stream; validates the root page.
  static Result<BlobStream> Open(BufferPool* pool, const BlobId& id);

  int64_t size() const override { return id_.size; }

  /// Reads an arbitrary byte range, fetching only the data pages the range
  /// covers (plus index pages, which are cached across calls).
  Status ReadAt(int64_t offset, std::span<uint8_t> out) override;

 private:
  BlobStream(BufferPool* pool, BlobId id, int level)
      : pool_(pool), id_(id), level_(level) {}

  /// Resolves the PageId of the k-th data page.
  Result<PageId> DataPageOf(int64_t k);

  BufferPool* pool_;
  BlobId id_;
  int level_;
  // One-entry caches for the root and the most recent level-2 index page.
  Page root_cache_;
  bool root_loaded_ = false;
  Page index_cache_;
  int64_t index_cache_slot_ = -1;
};

}  // namespace sqlarray::storage
