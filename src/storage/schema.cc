#include "storage/schema.h"

#include <cstring>

#include "common/bytes.h"

namespace sqlarray::storage {

int64_t ColumnDef::Width() const {
  switch (type) {
    case ColumnType::kInt32:
    case ColumnType::kFloat32:
      return 4;
    case ColumnType::kInt64:
    case ColumnType::kFloat64:
      return 8;
    case ColumnType::kBinary:
      return 2 + capacity;  // uint16 actual length + capacity payload
    case ColumnType::kVarBinaryMax:
      return 12;  // PageId root + int64 size
  }
  return 0;
}

Result<Schema> Schema::Create(std::vector<ColumnDef> columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("schema needs at least one column");
  }
  if (columns[0].type != ColumnType::kInt64) {
    return Status::InvalidArgument(
        "the first column is the clustered key and must be a BIGINT");
  }
  Schema s;
  s.columns_ = std::move(columns);
  int64_t off = 0;
  for (const ColumnDef& c : s.columns_) {
    if (c.type == ColumnType::kBinary &&
        (c.capacity < 1 || c.capacity > 8000)) {
      return Status::InvalidArgument(
          "fixed binary column capacity must be in [1, 8000]");
    }
    s.offsets_.push_back(off);
    off += c.Width();
  }
  s.row_size_ = off;
  if (s.row_size_ > kPageSize - 64) {
    return Status::InvalidArgument(
        "row size exceeds what fits a single data page");
  }
  return s;
}

Result<int> Schema::ColumnIndex(std::string_view name) const {
  for (int i = 0; i < num_columns(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named " + std::string(name));
}

Status Schema::ValidateRow(const Row& row) const {
  if (static_cast<int>(row.size()) != num_columns()) {
    return Status::InvalidArgument("row arity does not match the schema");
  }
  for (int i = 0; i < num_columns(); ++i) {
    const ColumnDef& c = columns_[i];
    bool ok = false;
    switch (c.type) {
      case ColumnType::kInt32:
        ok = std::holds_alternative<int32_t>(row[i]);
        break;
      case ColumnType::kInt64:
        ok = std::holds_alternative<int64_t>(row[i]);
        break;
      case ColumnType::kFloat32:
        ok = std::holds_alternative<float>(row[i]);
        break;
      case ColumnType::kFloat64:
        ok = std::holds_alternative<double>(row[i]);
        break;
      case ColumnType::kBinary: {
        auto* b = std::get_if<std::vector<uint8_t>>(&row[i]);
        ok = b != nullptr && static_cast<int32_t>(b->size()) <= c.capacity;
        break;
      }
      case ColumnType::kVarBinaryMax:
        ok = std::holds_alternative<BlobId>(row[i]);
        break;
    }
    if (!ok) {
      return Status::TypeMismatch("row value " + std::to_string(i) +
                                  " does not match column '" + c.name + "'");
    }
  }
  return Status::OK();
}

Status Schema::EncodeRow(const Row& row, uint8_t* dst) const {
  SQLARRAY_RETURN_IF_ERROR(ValidateRow(row));
  for (int i = 0; i < num_columns(); ++i) {
    uint8_t* p = dst + offsets_[i];
    const ColumnDef& c = columns_[i];
    switch (c.type) {
      case ColumnType::kInt32:
        EncodeLE<int32_t>(p, std::get<int32_t>(row[i]));
        break;
      case ColumnType::kInt64:
        EncodeLE<int64_t>(p, std::get<int64_t>(row[i]));
        break;
      case ColumnType::kFloat32:
        EncodeLE<float>(p, std::get<float>(row[i]));
        break;
      case ColumnType::kFloat64:
        EncodeLE<double>(p, std::get<double>(row[i]));
        break;
      case ColumnType::kBinary: {
        const auto& b = std::get<std::vector<uint8_t>>(row[i]);
        EncodeLE<uint16_t>(p, static_cast<uint16_t>(b.size()));
        std::memcpy(p + 2, b.data(), b.size());
        std::memset(p + 2 + b.size(), 0, c.capacity - b.size());
        break;
      }
      case ColumnType::kVarBinaryMax: {
        const BlobId& blob = std::get<BlobId>(row[i]);
        EncodeLE<uint32_t>(p, blob.root);
        EncodeLE<int64_t>(p + 4, blob.size);
        break;
      }
    }
  }
  return Status::OK();
}

Result<Row> Schema::DecodeRow(const uint8_t* src) const {
  Row row;
  row.reserve(num_columns());
  for (int i = 0; i < num_columns(); ++i) {
    SQLARRAY_ASSIGN_OR_RETURN(RowValue v, DecodeColumn(src, i));
    row.push_back(std::move(v));
  }
  return row;
}

Result<RowValue> Schema::DecodeColumn(const uint8_t* src, int col) const {
  if (col < 0 || col >= num_columns()) {
    return Status::InvalidArgument("column index out of range");
  }
  const uint8_t* p = src + offsets_[col];
  const ColumnDef& c = columns_[col];
  switch (c.type) {
    case ColumnType::kInt32:
      return RowValue(DecodeLE<int32_t>(p));
    case ColumnType::kInt64:
      return RowValue(DecodeLE<int64_t>(p));
    case ColumnType::kFloat32:
      return RowValue(DecodeLE<float>(p));
    case ColumnType::kFloat64:
      return RowValue(DecodeLE<double>(p));
    case ColumnType::kBinary: {
      uint16_t len = DecodeLE<uint16_t>(p);
      if (len > c.capacity) {
        return Status::Corruption("binary column length exceeds capacity");
      }
      return RowValue(std::vector<uint8_t>(p + 2, p + 2 + len));
    }
    case ColumnType::kVarBinaryMax: {
      BlobId blob;
      blob.root = DecodeLE<uint32_t>(p);
      blob.size = DecodeLE<int64_t>(p + 4);
      return RowValue(blob);
    }
  }
  return Status::Internal("unreachable column type");
}

int64_t Schema::DecodeKey(const uint8_t* src) const {
  return DecodeLE<int64_t>(src + offsets_[0]);
}

}  // namespace sqlarray::storage
