// Structural consistency checker — a miniature DBCC CHECKDB.
//
// Walks the on-disk structures (clustered B+-trees, blob index trees, page
// type tags) through the buffer pool and reports every inconsistency it can
// find, rather than stopping at the first: unreadable pages (checksum
// failures surface here with their page id), wrong page-type tags,
// out-of-order or duplicate keys, broken sibling chains, separator keys
// that disagree with child subtrees, over-full pages, blob fan-out and
// length mismatches. The report is structured so tests can pinpoint exactly
// which injected corruption was caught.
//
// The verifier never mutates anything and never fails-stop on corrupt input:
// a page that cannot be read or parsed is recorded and its subtree skipped.
#pragma once

#include <string>
#include <vector>

#include "storage/table.h"

namespace sqlarray::storage {

/// One detected inconsistency, anchored to the page where it was found.
struct VerifyIssue {
  PageId page = kNullPage;
  std::string what;
};

/// Outcome of a verification walk.
struct VerifyReport {
  int64_t pages_visited = 0;
  std::vector<VerifyIssue> issues;

  bool ok() const { return issues.empty(); }
  /// True if any recorded issue mentions `page`.
  bool Mentions(PageId page) const;
  /// Multi-line human-readable rendering ("DBCC results").
  std::string ToString() const;
  /// Appends another report's findings (for composite walks).
  void Merge(const VerifyReport& other);
};

/// Verifies one clustered B+-tree: every reachable page's type tag, key
/// ordering within and across leaves, sibling-chain integrity against the
/// allocation map, separator/child agreement, fan-out bounds, and the row
/// count.
VerifyReport VerifyBTree(BufferPool* pool, const BTree& tree);

/// Verifies one out-of-page blob: index level tags, fan-out bounds, data
/// page type tags and payload lengths, and the total size.
VerifyReport VerifyBlob(BufferPool* pool, const BlobId& id);

/// Verifies a table: its clustered index plus every out-of-page blob
/// referenced by its rows.
VerifyReport VerifyTable(const Table& table, BufferPool* pool);

/// Verifies every table in the database.
VerifyReport VerifyDatabase(Database* db);

}  // namespace sqlarray::storage
