#include "storage/table.h"

namespace sqlarray::storage {

Result<std::unique_ptr<Table>> Table::Create(std::string name, Schema schema,
                                             BufferPool* pool,
                                             BlobStore* blobs) {
  SQLARRAY_ASSIGN_OR_RETURN(BTree tree, BTree::Create(pool, schema.row_size()));
  return std::unique_ptr<Table>(
      new Table(std::move(name), std::move(schema), std::move(tree), blobs));
}

Result<std::unique_ptr<Table>> Table::Attach(std::string name, Schema schema,
                                             PageId root, BufferPool* pool,
                                             BlobStore* blobs) {
  SQLARRAY_ASSIGN_OR_RETURN(BTree tree,
                            BTree::Attach(pool, schema.row_size(), root));
  return std::unique_ptr<Table>(
      new Table(std::move(name), std::move(schema), std::move(tree), blobs));
}

Result<bool> Table::Delete(int64_t key) {
  bool has_blobs = false;
  for (int i = 0; i < schema_.num_columns(); ++i) {
    if (schema_.column(i).type == ColumnType::kVarBinaryMax) has_blobs = true;
  }
  if (!has_blobs) return tree_.Delete(key);

  // Fetch the row first so its blob pages can be reclaimed.
  std::vector<uint8_t> encoded;
  SQLARRAY_ASSIGN_OR_RETURN(bool found, tree_.Lookup(key, &encoded));
  if (!found) return false;
  SQLARRAY_ASSIGN_OR_RETURN(bool deleted, tree_.Delete(key));
  if (!deleted) return false;
  for (int i = 0; i < schema_.num_columns(); ++i) {
    if (schema_.column(i).type != ColumnType::kVarBinaryMax) continue;
    SQLARRAY_ASSIGN_OR_RETURN(RowValue v,
                              schema_.DecodeColumn(encoded.data(), i));
    if (auto* id = std::get_if<BlobId>(&v)) {
      SQLARRAY_RETURN_IF_ERROR(blobs_->Free(*id).status());
    }
  }
  return true;
}

Status Table::Insert(Row row) {
  // Spill raw bytes destined for VARBINARY(MAX) columns out-of-page first.
  for (int i = 0; i < schema_.num_columns(); ++i) {
    if (schema_.column(i).type != ColumnType::kVarBinaryMax) continue;
    if (auto* bytes = std::get_if<std::vector<uint8_t>>(&row[i])) {
      SQLARRAY_ASSIGN_OR_RETURN(BlobId id, blobs_->Write(*bytes));
      row[i] = id;
    }
  }
  std::vector<uint8_t> encoded(static_cast<size_t>(schema_.row_size()));
  SQLARRAY_RETURN_IF_ERROR(schema_.EncodeRow(row, encoded.data()));
  return tree_.Insert(encoded);
}

Result<BTree::Cursor> Table::Scan(PageSource* snap) const {
  if (snap == nullptr) return Scan();
  SQLARRAY_ASSIGN_OR_RETURN(PageId root, snap->TableRoot(name_));
  return BTree::ScanAllVia([snap](PageId id) { return snap->Fetch(id); },
                           root, schema_.row_size());
}

Result<std::vector<PageId>> Table::CollectLeafPages(PageSource* snap) const {
  if (snap == nullptr) return CollectLeafPages();
  SQLARRAY_ASSIGN_OR_RETURN(PageId root, snap->TableRoot(name_));
  return BTree::CollectLeafPagesVia(
      [snap](PageId id) { return snap->Fetch(id); }, root);
}

Result<BTree::ChunkCursor> Table::ScanChunk(PageSource* snap,
                                            std::vector<PageId> pages) const {
  return BTree::ScanChunkVia([snap](PageId id) { return snap->Fetch(id); },
                             std::move(pages), schema_.row_size());
}

Result<std::vector<uint8_t>> Table::EncodeRowShadow(const Row& row) const {
  Row adjusted = row;
  for (int i = 0; i < schema_.num_columns(); ++i) {
    if (schema_.column(i).type != ColumnType::kVarBinaryMax) continue;
    if (auto* bytes = std::get_if<std::vector<uint8_t>>(&adjusted[i])) {
      adjusted[i] =
          BlobId{kNullPage, static_cast<int64_t>(bytes->size())};
    }
  }
  std::vector<uint8_t> encoded(static_cast<size_t>(schema_.row_size()));
  SQLARRAY_RETURN_IF_ERROR(schema_.EncodeRow(adjusted, encoded.data()));
  return encoded;
}

Result<Table::BulkInserter> Table::StartBulkLoad() {
  SQLARRAY_ASSIGN_OR_RETURN(BTree::BulkLoader loader, tree_.StartBulkLoad());
  return BulkInserter(this, std::move(loader));
}

Status Table::BulkInserter::Add(Row row) {
  const Schema& schema = table_->schema();
  for (int i = 0; i < schema.num_columns(); ++i) {
    if (schema.column(i).type != ColumnType::kVarBinaryMax) continue;
    if (auto* bytes = std::get_if<std::vector<uint8_t>>(&row[i])) {
      SQLARRAY_ASSIGN_OR_RETURN(BlobId id, table_->blobs_->Write(*bytes));
      row[i] = id;
    }
  }
  SQLARRAY_RETURN_IF_ERROR(schema.EncodeRow(row, encoded_.data()));
  return loader_.Add(encoded_);
}

Result<std::optional<Row>> Table::Lookup(int64_t key) {
  std::vector<uint8_t> encoded;
  SQLARRAY_ASSIGN_OR_RETURN(bool found, tree_.Lookup(key, &encoded));
  if (!found) return std::optional<Row>();
  SQLARRAY_ASSIGN_OR_RETURN(Row row, schema_.DecodeRow(encoded.data()));
  return std::optional<Row>(std::move(row));
}

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  SQLARRAY_ASSIGN_OR_RETURN(
      std::unique_ptr<Table> table,
      Table::Create(name, std::move(schema), &pool_, &blobs_));
  Table* ptr = table.get();
  tables_[name] = std::move(table);
  return ptr;
}

Result<Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + name);
  }
  return it->second.get();
}

Status Database::AdoptTable(std::unique_ptr<Table> table) {
  if (tables_.count(table->name()) != 0) {
    return Status::AlreadyExists("table " + table->name() + " already exists");
  }
  tables_[table->name()] = std::move(table);
  return Status::OK();
}

Status Database::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no table named " + name);
  }
  return Status::OK();
}

}  // namespace sqlarray::storage
