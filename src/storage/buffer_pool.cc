#include "storage/buffer_pool.h"

namespace sqlarray::storage {

Result<const Page*> BufferPool::GetPage(PageId id) {
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    ++hits_;
    lru_.erase(it->second.lru_it);
    lru_.push_front(id);
    it->second.lru_it = lru_.begin();
    return const_cast<const Page*>(&it->second.page);
  }

  ++misses_;
  if (static_cast<int64_t>(cache_.size()) >= capacity_) {
    PageId victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
  }
  lru_.push_front(id);
  Entry entry;
  entry.lru_it = lru_.begin();
  auto [ins, ok] = cache_.emplace(id, std::move(entry));
  (void)ok;
  Status st = disk_->ReadPage(id, &ins->second.page);
  if (!st.ok()) {
    lru_.pop_front();
    cache_.erase(ins);
    return st;
  }
  return const_cast<const Page*>(&ins->second.page);
}

Status BufferPool::WritePage(PageId id, const Page& page) {
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    it->second.page = page;
  }
  return disk_->WritePage(id, page);
}

void BufferPool::ClearCache() {
  cache_.clear();
  lru_.clear();
}

}  // namespace sqlarray::storage
