#include "storage/buffer_pool.h"

#include <algorithm>
#include <string>

namespace sqlarray::storage {

BufferPool::BufferPool(SimulatedDisk* disk, int64_t capacity_pages,
                       int shards)
    : disk_(disk) {
  if (capacity_pages < 1) capacity_pages = 1;
  int n = shards;
  if (n <= 0) {
    n = static_cast<int>(capacity_pages / kShardCapacityFloor);
    if (n > kMaxShards) n = kMaxShards;
    if (n < 1) n = 1;
  }
  if (static_cast<int64_t>(n) > capacity_pages) {
    n = static_cast<int>(capacity_pages);
  }
  shard_capacity_ = capacity_pages / n;
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg_hits_ = reg.GetCounter("storage.buffer_pool.hits");
  reg_misses_ = reg.GetCounter("storage.buffer_pool.misses");
  reg_evictions_ = reg.GetCounter("storage.buffer_pool.evictions");
}

void PinnedPage::Release() {
  if (pool_ != nullptr && id_ != kNullPage) {
    pool_->Unpin(id_);
  }
  pool_ = nullptr;
  id_ = kNullPage;
  owner_.reset();
}

void BufferPool::Unpin(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.cache.find(id);
  assert(it != shard.cache.end() && "unpin of a page not in the cache");
  if (it == shard.cache.end()) return;
  assert(it->second.pins > 0 && "unpin underflow");
  if (it->second.pins > 0 && --it->second.pins == 0) {
    pinned_pages_.fetch_sub(1, std::memory_order_relaxed);
    // A pinned entry may have kept the shard over capacity; settle now.
    EvictDownTo(&shard, shard_capacity_);
  }
}

Status BufferPool::FlushEntryLocked(PageId id, Entry* entry) {
  if (!entry->dirty) return Status::OK();
  // WAL-before-data: the redo record covering this image must be durable
  // before the image reaches the data disk (otherwise a crash could leave a
  // page the log cannot explain).
  if (wal_hook_.flush_log_to) {
    SQLARRAY_RETURN_IF_ERROR(wal_hook_.flush_log_to(entry->last_lsn));
  }
  SQLARRAY_RETURN_IF_ERROR(disk_->WritePage(id, *entry->page));
  entry->dirty = false;
  entry->rec_lsn = 0;
  entry->last_lsn = 0;
  dirty_pages_.fetch_sub(1, std::memory_order_relaxed);
  dirty_flushes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void BufferPool::EvictDownTo(Shard* shard, int64_t target) {
  // Walk from the LRU end, skipping pinned entries. Dirty victims are
  // flushed first (log fence inside FlushEntryLocked); if the flush fails
  // the entry is skipped and surfaces later via FlushAllDirty/checkpoint.
  auto it = shard->lru.end();
  while (static_cast<int64_t>(shard->cache.size()) > target &&
         it != shard->lru.begin()) {
    --it;
    auto centry = shard->cache.find(*it);
    if (centry != shard->cache.end() && centry->second.pins > 0) continue;
    if (centry != shard->cache.end()) {
      if (centry->second.dirty &&
          !FlushEntryLocked(centry->first, &centry->second).ok()) {
        continue;
      }
      shard->cache.erase(centry);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      reg_evictions_->Add(1);
    }
    it = shard->lru.erase(it);  // returns the element after; loop steps back
  }
}

Status BufferPool::ReadWithRetry(PageId id, Page* image) {
  Status st = disk_->ReadPage(id, image);
  int attempt = 1;
  while (!st.ok() && st.code() != StatusCode::kInvalidArgument &&
         attempt < max_read_attempts_) {
    ++attempt;
    disk_->NoteReadRetry(attempt);
    st = disk_->ReadPage(id, image);
    if (st.ok()) disk_->NoteFaultHealed();
  }
  if (!st.ok()) {
    if (st.code() == StatusCode::kInvalidArgument) return st;
    // Retry budget exhausted: escalate to kCorruption with the page id.
    return Status::Corruption("page " + std::to_string(id) +
                              " unreadable after " + std::to_string(attempt) +
                              " attempt(s): " + st.message());
  }
  return Status::OK();
}

Result<PinnedPage> BufferPool::GetPage(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.cache.find(id);
  if (it != shard.cache.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    reg_hits_->Add(1);
    shard.lru.erase(it->second.lru_it);
    shard.lru.push_front(id);
    it->second.lru_it = shard.lru.begin();
    if (it->second.pins++ == 0) {
      pinned_pages_.fetch_add(1, std::memory_order_relaxed);
    }
    return PinnedPage(this, id, it->second.page);
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  reg_misses_->Add(1);
  // Read into a local image first: a failed read must leave no cache entry,
  // and retries must not expose a half-written one. The shard lock is held
  // across the read so concurrent misses on one page fault it in exactly
  // once (misses on other shards proceed in parallel).
  auto image = std::make_shared<Page>();
  SQLARRAY_RETURN_IF_ERROR(ReadWithRetry(id, image.get()));

  // Make room for the incoming entry (which is born pinned).
  EvictDownTo(&shard, shard_capacity_ - 1);
  shard.lru.push_front(id);
  Entry entry;
  entry.page = image;
  entry.lru_it = shard.lru.begin();
  entry.pins = 1;
  shard.cache.emplace(id, std::move(entry));
  pinned_pages_.fetch_add(1, std::memory_order_relaxed);
  return PinnedPage(this, id, std::move(image));
}

Status BufferPool::Prefetch(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.cache.find(id) != shard.cache.end()) return Status::OK();

  misses_.fetch_add(1, std::memory_order_relaxed);
  reg_misses_->Add(1);
  prefetches_.fetch_add(1, std::memory_order_relaxed);
  auto image = std::make_shared<Page>();
  SQLARRAY_RETURN_IF_ERROR(ReadWithRetry(id, image.get()));

  EvictDownTo(&shard, shard_capacity_ - 1);
  shard.lru.push_front(id);
  Entry entry;
  entry.page = std::move(image);
  entry.lru_it = shard.lru.begin();
  entry.pins = 0;
  shard.cache.emplace(id, std::move(entry));
  return Status::OK();
}

Status BufferPool::WritePage(PageId id, const Page& page) {
  if (!write_back_) {
    {
      Shard& shard = ShardFor(id);
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.cache.find(id);
      if (it != shard.cache.end()) {
        it->second.page = std::make_shared<Page>(page);
      }
    }
    return disk_->WritePage(id, page);
  }

  // Write-back: log first (outside the shard lock — the hook may re-enter
  // the pool to capture the page's before-image), then cache dirty. The
  // image reaches the data disk only at eviction or an explicit flush.
  Lsn lsn = 0;
  if (wal_hook_.log_page_write) {
    SQLARRAY_ASSIGN_OR_RETURN(lsn, wal_hook_.log_page_write(id, page));
  }
  auto image = std::make_shared<Page>(page);
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.cache.find(id);
  if (it == shard.cache.end()) {
    if (version_sink_ != nullptr) {
      // The superseded content may have been evicted to disk but can still
      // be needed by an active snapshot: recover it before it is shadowed.
      // A freshly allocated page reads back zeroed — a harmless chain entry
      // no snapshot-consistent tree walk can ever reach.
      std::shared_ptr<const Page> old_image;
      auto prior = std::make_shared<Page>();
      if (ReadWithRetry(id, prior.get()).ok()) old_image = std::move(prior);
      version_sink_->OnPageWrite(id, std::move(old_image), lsn);
    }
    EvictDownTo(&shard, shard_capacity_ - 1);
    shard.lru.push_front(id);
    Entry entry;
    entry.page = std::move(image);
    entry.lru_it = shard.lru.begin();
    entry.dirty = true;
    entry.rec_lsn = lsn;
    entry.last_lsn = lsn;
    shard.cache.emplace(id, std::move(entry));
    dirty_pages_.fetch_add(1, std::memory_order_relaxed);
  } else {
    if (version_sink_ != nullptr) {
      version_sink_->OnPageWrite(id, it->second.page, lsn);
    }
    it->second.page = std::move(image);
    if (!it->second.dirty) {
      it->second.dirty = true;
      it->second.rec_lsn = lsn;
      dirty_pages_.fetch_add(1, std::memory_order_relaxed);
    }
    it->second.last_lsn = lsn;
    shard.lru.erase(it->second.lru_it);
    shard.lru.push_front(id);
    it->second.lru_it = shard.lru.begin();
  }
  return Status::OK();
}

BufferPool::PageState BufferPool::GetPageState(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  PageState state;
  auto it = shard.cache.find(id);
  if (it == shard.cache.end()) return state;
  state.present = true;
  state.dirty = it->second.dirty;
  state.rec_lsn = it->second.rec_lsn;
  state.last_lsn = it->second.last_lsn;
  return state;
}

void BufferPool::RestorePage(PageId id, const Page& image,
                             const PageState& state) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.cache.find(id);
  if (it == shard.cache.end()) {
    shard.lru.push_front(id);
    Entry entry;
    entry.page = std::make_shared<Page>(image);
    entry.lru_it = shard.lru.begin();
    shard.cache.emplace(id, std::move(entry));
    it = shard.cache.find(id);
  } else {
    // Rollback restore: no version-sink call. The chain (if any) already
    // holds this exact pre-transaction image, and the page's version clock
    // never went backwards for readers — they only ever saw committed LSNs.
    it->second.page = std::make_shared<Page>(image);
  }
  if (it->second.dirty != state.dirty) {
    dirty_pages_.fetch_add(state.dirty ? 1 : -1, std::memory_order_relaxed);
  }
  it->second.dirty = state.dirty;
  it->second.rec_lsn = state.rec_lsn;
  it->second.last_lsn = state.last_lsn;
}

Status BufferPool::FlushPage(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.cache.find(id);
  if (it == shard.cache.end()) return Status::OK();
  return FlushEntryLocked(id, &it->second);
}

std::vector<PageId> BufferPool::CollectDirtyPageIds() {
  std::vector<PageId> ids;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [id, entry] : shard->cache) {
      if (entry.dirty) ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

Status BufferPool::FlushAllDirty() {
  for (PageId id : CollectDirtyPageIds()) {
    SQLARRAY_RETURN_IF_ERROR(FlushPage(id));
  }
  return Status::OK();
}

void BufferPool::DropCacheNoFlush() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [id, entry] : shard->cache) {
      (void)id;
      if (entry.dirty) dirty_pages_.fetch_sub(1, std::memory_order_relaxed);
      if (entry.pins > 0) {
        pinned_pages_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    shard->cache.clear();
    shard->lru.clear();
  }
}

void BufferPool::ClearCache() {
  // Pinned entries must survive (guards hold pointers into them); dirty
  // entries hold the only copy of logged-but-unflushed images, so the
  // cold-cache reset leaves them resident too.
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      auto centry = shard->cache.find(*it);
      if (centry != shard->cache.end() && centry->second.pins == 0 &&
          !centry->second.dirty) {
        shard->cache.erase(centry);
        it = shard->lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace sqlarray::storage
