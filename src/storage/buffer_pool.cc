#include "storage/buffer_pool.h"

#include <string>

namespace sqlarray::storage {

void PinnedPage::Release() {
  if (pool_ != nullptr && id_ != kNullPage) {
    pool_->Unpin(id_);
  }
  pool_ = nullptr;
  id_ = kNullPage;
  page_ = nullptr;
}

void BufferPool::Unpin(PageId id) {
  auto it = cache_.find(id);
  assert(it != cache_.end() && "unpin of a page not in the cache");
  if (it == cache_.end()) return;
  assert(it->second.pins > 0 && "unpin underflow");
  if (it->second.pins > 0 && --it->second.pins == 0) {
    --pinned_pages_;
    // A pinned entry may have kept the pool over capacity; settle now.
    EvictDownTo(capacity_);
  }
}

void BufferPool::EvictDownTo(int64_t target) {
  // Walk from the LRU end, skipping pinned entries.
  auto it = lru_.end();
  while (static_cast<int64_t>(cache_.size()) > target &&
         it != lru_.begin()) {
    --it;
    auto centry = cache_.find(*it);
    if (centry != cache_.end() && centry->second.pins > 0) continue;
    if (centry != cache_.end()) cache_.erase(centry);
    it = lru_.erase(it);  // returns the element after; loop steps back past it
  }
}

Result<PinnedPage> BufferPool::GetPage(PageId id) {
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    ++hits_;
    lru_.erase(it->second.lru_it);
    lru_.push_front(id);
    it->second.lru_it = lru_.begin();
    if (it->second.pins++ == 0) ++pinned_pages_;
    return PinnedPage(this, id, &it->second.page);
  }

  ++misses_;
  // Read into a local image first: a failed read must leave no cache entry,
  // and retries must not expose a half-written one.
  Page image;
  Status st = disk_->ReadPage(id, &image);
  int attempt = 1;
  while (!st.ok() && st.code() != StatusCode::kInvalidArgument &&
         attempt < max_read_attempts_) {
    ++attempt;
    disk_->NoteReadRetry(attempt);
    st = disk_->ReadPage(id, &image);
    if (st.ok()) disk_->NoteFaultHealed();
  }
  if (!st.ok()) {
    if (st.code() == StatusCode::kInvalidArgument) return st;
    // Retry budget exhausted: escalate to kCorruption with the page id.
    return Status::Corruption("page " + std::to_string(id) +
                              " unreadable after " + std::to_string(attempt) +
                              " attempt(s): " + st.message());
  }

  // Make room for the incoming entry (which is born pinned).
  EvictDownTo(capacity_ - 1);
  lru_.push_front(id);
  Entry entry;
  entry.page = image;
  entry.lru_it = lru_.begin();
  entry.pins = 1;
  auto [ins, ok] = cache_.emplace(id, std::move(entry));
  (void)ok;
  ++pinned_pages_;
  return PinnedPage(this, id, &ins->second.page);
}

Status BufferPool::WritePage(PageId id, const Page& page) {
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    it->second.page = page;
  }
  return disk_->WritePage(id, page);
}

void BufferPool::ClearCache() {
  // Pinned entries must survive (guards hold pointers into them).
  for (auto it = lru_.begin(); it != lru_.end();) {
    auto centry = cache_.find(*it);
    if (centry != cache_.end() && centry->second.pins == 0) {
      cache_.erase(centry);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace sqlarray::storage
