#include "storage/buffer_pool.h"

#include <string>

namespace sqlarray::storage {

BufferPool::BufferPool(SimulatedDisk* disk, int64_t capacity_pages,
                       int shards)
    : disk_(disk) {
  if (capacity_pages < 1) capacity_pages = 1;
  int n = shards;
  if (n <= 0) {
    n = static_cast<int>(capacity_pages / kShardCapacityFloor);
    if (n > kMaxShards) n = kMaxShards;
    if (n < 1) n = 1;
  }
  if (static_cast<int64_t>(n) > capacity_pages) {
    n = static_cast<int>(capacity_pages);
  }
  shard_capacity_ = capacity_pages / n;
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg_hits_ = reg.GetCounter("storage.buffer_pool.hits");
  reg_misses_ = reg.GetCounter("storage.buffer_pool.misses");
  reg_evictions_ = reg.GetCounter("storage.buffer_pool.evictions");
}

void PinnedPage::Release() {
  if (pool_ != nullptr && id_ != kNullPage) {
    pool_->Unpin(id_);
  }
  pool_ = nullptr;
  id_ = kNullPage;
  page_ = nullptr;
}

void BufferPool::Unpin(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.cache.find(id);
  assert(it != shard.cache.end() && "unpin of a page not in the cache");
  if (it == shard.cache.end()) return;
  assert(it->second.pins > 0 && "unpin underflow");
  if (it->second.pins > 0 && --it->second.pins == 0) {
    pinned_pages_.fetch_sub(1, std::memory_order_relaxed);
    // A pinned entry may have kept the shard over capacity; settle now.
    EvictDownTo(&shard, shard_capacity_);
  }
}

void BufferPool::EvictDownTo(Shard* shard, int64_t target) {
  // Walk from the LRU end, skipping pinned entries.
  auto it = shard->lru.end();
  while (static_cast<int64_t>(shard->cache.size()) > target &&
         it != shard->lru.begin()) {
    --it;
    auto centry = shard->cache.find(*it);
    if (centry != shard->cache.end() && centry->second.pins > 0) continue;
    if (centry != shard->cache.end()) {
      shard->cache.erase(centry);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      reg_evictions_->Add(1);
    }
    it = shard->lru.erase(it);  // returns the element after; loop steps back
  }
}

Status BufferPool::ReadWithRetry(PageId id, Page* image) {
  Status st = disk_->ReadPage(id, image);
  int attempt = 1;
  while (!st.ok() && st.code() != StatusCode::kInvalidArgument &&
         attempt < max_read_attempts_) {
    ++attempt;
    disk_->NoteReadRetry(attempt);
    st = disk_->ReadPage(id, image);
    if (st.ok()) disk_->NoteFaultHealed();
  }
  if (!st.ok()) {
    if (st.code() == StatusCode::kInvalidArgument) return st;
    // Retry budget exhausted: escalate to kCorruption with the page id.
    return Status::Corruption("page " + std::to_string(id) +
                              " unreadable after " + std::to_string(attempt) +
                              " attempt(s): " + st.message());
  }
  return Status::OK();
}

Result<PinnedPage> BufferPool::GetPage(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.cache.find(id);
  if (it != shard.cache.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    reg_hits_->Add(1);
    shard.lru.erase(it->second.lru_it);
    shard.lru.push_front(id);
    it->second.lru_it = shard.lru.begin();
    if (it->second.pins++ == 0) {
      pinned_pages_.fetch_add(1, std::memory_order_relaxed);
    }
    return PinnedPage(this, id, &it->second.page);
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  reg_misses_->Add(1);
  // Read into a local image first: a failed read must leave no cache entry,
  // and retries must not expose a half-written one. The shard lock is held
  // across the read so concurrent misses on one page fault it in exactly
  // once (misses on other shards proceed in parallel).
  Page image;
  SQLARRAY_RETURN_IF_ERROR(ReadWithRetry(id, &image));

  // Make room for the incoming entry (which is born pinned).
  EvictDownTo(&shard, shard_capacity_ - 1);
  shard.lru.push_front(id);
  Entry entry;
  entry.page = image;
  entry.lru_it = shard.lru.begin();
  entry.pins = 1;
  auto [ins, ok] = shard.cache.emplace(id, std::move(entry));
  (void)ok;
  pinned_pages_.fetch_add(1, std::memory_order_relaxed);
  return PinnedPage(this, id, &ins->second.page);
}

Status BufferPool::Prefetch(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.cache.find(id) != shard.cache.end()) return Status::OK();

  misses_.fetch_add(1, std::memory_order_relaxed);
  reg_misses_->Add(1);
  prefetches_.fetch_add(1, std::memory_order_relaxed);
  Page image;
  SQLARRAY_RETURN_IF_ERROR(ReadWithRetry(id, &image));

  EvictDownTo(&shard, shard_capacity_ - 1);
  shard.lru.push_front(id);
  Entry entry;
  entry.page = image;
  entry.lru_it = shard.lru.begin();
  entry.pins = 0;
  shard.cache.emplace(id, std::move(entry));
  return Status::OK();
}

Status BufferPool::WritePage(PageId id, const Page& page) {
  {
    Shard& shard = ShardFor(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.cache.find(id);
    if (it != shard.cache.end()) {
      it->second.page = page;
    }
  }
  return disk_->WritePage(id, page);
}

void BufferPool::ClearCache() {
  // Pinned entries must survive (guards hold pointers into them).
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      auto centry = shard->cache.find(*it);
      if (centry != shard->cache.end() && centry->second.pins == 0) {
        shard->cache.erase(centry);
        it = shard->lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace sqlarray::storage
