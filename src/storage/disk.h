// Simulated disk with a calibrated I/O cost model.
//
// Substitute for the paper's testbed I/O subsystem (a RAID array sustaining
// ~1150 MB/s sequential reads, Sec. 6.1). Pages live in memory; every read
// and write is accounted in IoStats, including a virtual-time model that
// distinguishes sequential from random access so benches can report
// projected full-scale timings alongside real wall-clock measurements.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace sqlarray::storage {

/// Disk performance model. Defaults are calibrated to the paper's hardware.
struct DiskConfig {
  /// Sustained sequential throughput (Sec. 6.1: "above 1 GB/s", measured
  /// 1150 MB/s in Table 1).
  double sequential_mb_per_s = 1150.0;
  /// Non-contiguous reads pay a DISTANCE-DEPENDENT seek:
  ///   min_seek_us + seek_us_per_mb * |gap in MB|, capped at
  ///   random_latency_us (a full-stroke seek + rotational settle).
  /// Short hops (neighbouring extents, as a space-filling-curve layout
  /// produces) are much cheaper than cross-table jumps.
  double random_latency_us = 400.0;
  double min_seek_us = 50.0;
  double seek_us_per_mb = 10.0;
  /// Write throughput (writes are not on the measured paths but are modeled
  /// for completeness).
  double write_mb_per_s = 800.0;
};

/// I/O accounting, including virtual (modeled) elapsed time.
struct IoStats {
  int64_t pages_read = 0;
  int64_t pages_written = 0;
  int64_t sequential_reads = 0;
  int64_t random_reads = 0;
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  double virtual_read_seconds = 0;
  double virtual_write_seconds = 0;

  IoStats operator-(const IoStats& o) const {
    return {pages_read - o.pages_read,
            pages_written - o.pages_written,
            sequential_reads - o.sequential_reads,
            random_reads - o.random_reads,
            bytes_read - o.bytes_read,
            bytes_written - o.bytes_written,
            virtual_read_seconds - o.virtual_read_seconds,
            virtual_write_seconds - o.virtual_write_seconds};
  }
};

/// An in-memory page store that models disk timing. Thread-safe: parallel
/// scan workers may read concurrently; sequential-vs-random classification
/// is tracked per thread (each worker models one read-ahead stream, as a
/// real engine's parallel scan does).
class SimulatedDisk {
 public:
  explicit SimulatedDisk(DiskConfig config = {}) : config_(config) {}

  /// Allocates a zeroed page and returns its id (never kNullPage).
  PageId AllocatePage();

  /// Number of allocated pages (excluding the reserved null page).
  int64_t page_count() const {
    return static_cast<int64_t>(pages_.size());
  }
  int64_t allocated_bytes() const { return page_count() * kPageSize; }

  /// Reads a page image, charging the I/O model.
  Status ReadPage(PageId id, Page* out);

  /// Writes a page image, charging the I/O model.
  Status WritePage(PageId id, const Page& page);

  const IoStats& stats() const { return stats_; }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = IoStats{};
    last_read_by_thread_.clear();
  }
  const DiskConfig& config() const { return config_; }

  /// Fault injection for error-path testing: after `reads` further
  /// successful reads, the next read fails with kCorruption (one-shot).
  /// Pass a negative value to disarm.
  void InjectReadFaultAfter(int64_t reads) { fault_countdown_ = reads; }

  /// Flips one byte of a stored page WITHOUT refreshing its checksum —
  /// simulates media corruption that page verification must catch.
  Status CorruptPageByte(PageId id, int64_t offset);

  /// Page checksum verification (on by default, like PAGE_VERIFY CHECKSUM).
  void set_checksums_enabled(bool enabled) { checksums_enabled_ = enabled; }

 private:
  DiskConfig config_;
  std::vector<std::unique_ptr<Page>> pages_;
  IoStats stats_;
  /// Per-thread read-ahead stream position for seq/random classification.
  std::unordered_map<std::thread::id, PageId> last_read_by_thread_;
  /// FNV-1a checksum of each written page (PAGE_VERIFY CHECKSUM stand-in).
  std::unordered_map<PageId, uint64_t> checksums_;
  bool checksums_enabled_ = true;
  int64_t fault_countdown_ = -1;
  mutable std::mutex mutex_;
};

}  // namespace sqlarray::storage
