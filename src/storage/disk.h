// Simulated disk with a calibrated I/O cost model.
//
// Substitute for the paper's testbed I/O subsystem (a RAID array sustaining
// ~1150 MB/s sequential reads, Sec. 6.1). Pages live in memory; every read
// and write is accounted in IoStats, including a virtual-time model that
// distinguishes sequential from random access so benches can report
// projected full-scale timings alongside real wall-clock measurements.
//
// Robustness: every written page is stamped with a CRC32C (the PAGE_VERIFY
// CHECKSUM stand-in) verified on read, and a seeded FaultInjector can
// subject the media to transient read errors, bit flips, torn writes, and
// dropped writes — see storage/fault.h. Transient faults are healed by the
// buffer pool's bounded retry; persistent corruption surfaces as
// kCorruption naming the offending page.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/fault.h"
#include "storage/page.h"

namespace sqlarray::storage {

/// Disk performance model. Defaults are calibrated to the paper's hardware.
struct DiskConfig {
  /// Sustained sequential throughput (Sec. 6.1: "above 1 GB/s", measured
  /// 1150 MB/s in Table 1).
  double sequential_mb_per_s = 1150.0;
  /// Non-contiguous reads pay a DISTANCE-DEPENDENT seek:
  ///   min_seek_us + seek_us_per_mb * |gap in MB|, capped at
  ///   random_latency_us (a full-stroke seek + rotational settle).
  /// Short hops (neighbouring extents, as a space-filling-curve layout
  /// produces) are much cheaper than cross-table jumps.
  double random_latency_us = 400.0;
  double min_seek_us = 50.0;
  double seek_us_per_mb = 10.0;
  /// Write throughput (writes are not on the measured paths but are modeled
  /// for completeness).
  double write_mb_per_s = 800.0;
  /// Stamp every written page with a CRC32C and verify it on read
  /// (PAGE_VERIFY CHECKSUM). Turning this off models PAGE_VERIFY NONE:
  /// corruption flows through undetected.
  bool verify_checksums = true;
  /// Virtual time charged per read retry attempt by the buffer pool
  /// (doubled each attempt — the controller's retry/backoff schedule).
  double retry_backoff_us = 100.0;
};

/// I/O accounting, including virtual (modeled) elapsed time and the
/// robustness counters the corruption-recovery tests assert on.
struct IoStats {
  int64_t pages_read = 0;
  int64_t pages_written = 0;
  int64_t sequential_reads = 0;
  int64_t random_reads = 0;
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  double virtual_read_seconds = 0;
  double virtual_write_seconds = 0;
  /// Reads that failed verification or errored (before any retry).
  int64_t read_errors = 0;
  /// Retry attempts issued by the buffer pool.
  int64_t read_retries = 0;
  /// Reads that failed at least once but succeeded on a retry.
  int64_t transient_faults_healed = 0;
  /// Reads rejected with a checksum mismatch.
  int64_t checksum_failures = 0;

  IoStats operator-(const IoStats& o) const {
    return {pages_read - o.pages_read,
            pages_written - o.pages_written,
            sequential_reads - o.sequential_reads,
            random_reads - o.random_reads,
            bytes_read - o.bytes_read,
            bytes_written - o.bytes_written,
            virtual_read_seconds - o.virtual_read_seconds,
            virtual_write_seconds - o.virtual_write_seconds,
            read_errors - o.read_errors,
            read_retries - o.read_retries,
            transient_faults_healed - o.transient_faults_healed,
            checksum_failures - o.checksum_failures};
  }
};

/// An in-memory page store that models disk timing. Thread-safe: parallel
/// scan workers may read concurrently; sequential-vs-random classification
/// is tracked per thread (each worker models one read-ahead stream, as a
/// real engine's parallel scan does).
class SimulatedDisk {
 public:
  explicit SimulatedDisk(DiskConfig config = {})
      : config_(config), checksums_enabled_(config.verify_checksums) {}

  /// Allocates a zeroed page and returns its id (never kNullPage).
  PageId AllocatePage();

  /// Grows the allocation so that page `id` exists (no-op when it already
  /// does). Recovery uses this when replaying a log that references pages
  /// beyond the current allocation frontier.
  void EnsureAllocated(PageId id);

  /// Number of allocated pages (excluding the reserved null page).
  int64_t page_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int64_t>(pages_.size());
  }
  int64_t allocated_bytes() const { return page_count() * kPageSize; }

  /// Reads a page image, charging the I/O model. Fails with kInternal for
  /// transient faults (worth retrying) and kCorruption for checksum
  /// mismatches; both name the page id.
  Status ReadPage(PageId id, Page* out);

  /// Writes a page image, charging the I/O model.
  Status WritePage(PageId id, const Page& page);

  /// Snapshot of the accumulated I/O statistics, taken under the disk lock
  /// so readers never observe a torn update from a concurrent scan worker.
  IoStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = IoStats{};
    last_read_by_thread_.clear();
  }
  const DiskConfig& config() const { return config_; }

  /// Fault injection for error-path testing: after `reads` further
  /// successful reads, the next read fails with kCorruption (one-shot).
  /// Pass a negative value to disarm.
  void InjectReadFaultAfter(int64_t reads) { fault_countdown_ = reads; }

  /// Installs a seeded fault injector (replacing any previous one); pass a
  /// default-constructed config with all rates zero to disarm. Returns the
  /// injector for targeted arming and stats access; owned by the disk.
  FaultInjector* EnableFaults(FaultConfig config);
  /// Removes the fault injector.
  void DisableFaults();
  /// The active injector, or null.
  FaultInjector* fault_injector() { return injector_.get(); }

  /// Flips one byte of a stored page WITHOUT refreshing its checksum —
  /// simulates media corruption that page verification must catch.
  Status CorruptPageByte(PageId id, int64_t offset);

  /// Page checksum verification (on by default, like PAGE_VERIFY CHECKSUM).
  void set_checksums_enabled(bool enabled) { checksums_enabled_ = enabled; }
  bool checksums_enabled() const { return checksums_enabled_; }

  /// Accounting hooks for the buffer pool's bounded retry: each retry
  /// charges backoff virtual time (doubling per attempt) and bumps
  /// read_retries; a read that eventually succeeds after failures counts as
  /// a healed transient fault.
  void NoteReadRetry(int attempt);
  void NoteFaultHealed();

 private:
  DiskConfig config_;
  std::vector<std::unique_ptr<Page>> pages_;
  IoStats stats_;
  /// Per-thread read-ahead stream position for seq/random classification.
  std::unordered_map<std::thread::id, PageId> last_read_by_thread_;
  /// CRC32C of each written page (PAGE_VERIFY CHECKSUM stand-in).
  std::unordered_map<PageId, uint32_t> checksums_;
  bool checksums_enabled_ = true;
  int64_t fault_countdown_ = -1;
  std::unique_ptr<FaultInjector> injector_;
  mutable std::mutex mutex_;

  /// Engine-wide registry mirrors of the monotone IoStats fields, resolved
  /// once at construction and bumped beside stats_ under the disk lock.
  obs::Counter* reg_pages_read_ =
      obs::MetricsRegistry::Global().GetCounter("storage.disk.pages_read");
  obs::Counter* reg_pages_written_ =
      obs::MetricsRegistry::Global().GetCounter("storage.disk.pages_written");
  obs::Counter* reg_bytes_read_ =
      obs::MetricsRegistry::Global().GetCounter("storage.disk.bytes_read");
  obs::Counter* reg_bytes_written_ =
      obs::MetricsRegistry::Global().GetCounter("storage.disk.bytes_written");
  obs::Counter* reg_read_errors_ =
      obs::MetricsRegistry::Global().GetCounter("storage.disk.read_errors");
  obs::Counter* reg_checksum_failures_ = obs::MetricsRegistry::Global()
                                             .GetCounter(
                                                 "storage.disk.checksum_failures");
  obs::Counter* reg_read_retries_ =
      obs::MetricsRegistry::Global().GetCounter("storage.disk.read_retries");
};

}  // namespace sqlarray::storage
