#include "storage/fault.h"

namespace sqlarray::storage {

bool FaultInjector::ShouldFailRead(PageId id) {
  auto it = targeted_transient_.find(id);
  if (it != targeted_transient_.end()) {
    if (it->second > 0) {
      if (--it->second == 0) targeted_transient_.erase(it);
      ++stats_.transient_read_errors;
      return true;
    }
    targeted_transient_.erase(it);
  }
  if (Draw(config_.transient_read_error_rate)) {
    ++stats_.transient_read_errors;
    return true;
  }
  return false;
}

bool FaultInjector::ShouldFlipBit(int64_t* byte_offset, int* bit) {
  if (!Draw(config_.bit_flip_rate)) return false;
  *byte_offset = static_cast<int64_t>(
      std::uniform_int_distribution<int64_t>(0, kPageSize - 1)(rng_));
  *bit = static_cast<int>(std::uniform_int_distribution<int>(0, 7)(rng_));
  ++stats_.bit_flips;
  return true;
}

bool FaultInjector::ShouldTearWrite(int64_t* keep_bytes) {
  if (!Draw(config_.torn_write_rate)) return false;
  // A torn page keeps at least one sector's worth and never the whole page.
  *keep_bytes =
      std::uniform_int_distribution<int64_t>(512, kPageSize - 512)(rng_);
  ++stats_.torn_writes;
  return true;
}

bool FaultInjector::ShouldDropWrite() {
  if (!Draw(config_.dropped_write_rate)) return false;
  ++stats_.dropped_writes;
  return true;
}

}  // namespace sqlarray::storage
