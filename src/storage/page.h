// Fixed 8 kB storage pages.
//
// SQL Server's storage engine operates on 8 kB pages; the short/max array
// split (Sec. 3.3) exists precisely because blobs at or under this size stay
// on-page. The whole storage layer below uses the same page size.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>

namespace sqlarray::storage {

/// Page size in bytes (SQL Server data page).
inline constexpr int64_t kPageSize = 8192;

/// Identifier of a page within a database file. Page 0 is reserved (never
/// allocated) so 0 can mean "null page".
using PageId = uint32_t;
inline constexpr PageId kNullPage = 0;

/// Raw page image.
struct Page {
  std::array<uint8_t, kPageSize> bytes{};

  uint8_t* data() { return bytes.data(); }
  const uint8_t* data() const { return bytes.data(); }
  void Clear() { bytes.fill(0); }
};

/// Page type tags stored in every page header's first byte.
enum class PageType : uint8_t {
  kFree = 0,
  kBTreeLeaf = 1,
  kBTreeInternal = 2,
  kBlobData = 3,
  kBlobIndex = 4,
};

}  // namespace sqlarray::storage
