// Light-cone extraction across snapshots (Sec. 2.3).
//
// "we look at the cube from a distant viewpoint and follow light rays back
// into the simulation ... as we look farther, the simulation box needs to be
// taken from an earlier time step". Each snapshot owns a comoving-distance
// shell; points inside both the observer's cone and the shell are selected
// with an octree cone query, and a radial Doppler shift is computed from the
// peculiar velocity.
#pragma once

#include <span>
#include <vector>

#include "common/status.h"
#include "sci/nbody/snapshot.h"
#include "spatial/octree.h"

namespace sqlarray::nbody {

/// One light-cone entry.
struct LightconePoint {
  int64_t particle_id = 0;
  int snapshot_step = 0;
  spatial::Vec3 position;
  double distance = 0;        ///< comoving distance from the observer
  double radial_velocity = 0; ///< line-of-sight peculiar velocity
  double doppler_z = 0;       ///< v_r / c contribution to the redshift
};

/// Light-cone geometry.
struct LightconeConfig {
  spatial::Vec3 observer{-50, 50, 50};  ///< outside the box
  spatial::Vec3 direction{1, 0, 0};     ///< cone axis (normalized inside)
  double half_angle_deg = 20.0;
  /// Comoving shell depth per snapshot: snapshot i covers
  /// [r0 + i * shell, r0 + (i + 1) * shell).
  double r0 = 0.0;
  double shell_depth = 25.0;
  double speed_of_light = 3.0e5;        ///< same units as velocities
  int64_t octree_bucket = 256;
};

/// Builds the light cone from a time-ordered snapshot list (latest epoch
/// nearest the observer, matching look-back order).
Result<std::vector<LightconePoint>> BuildLightcone(
    std::span<const Snapshot> snapshots, const LightconeConfig& config);

}  // namespace sqlarray::nbody
