#include "sci/nbody/cic.h"

#include <cmath>
#include <numbers>

#include "fft/fft.h"

namespace sqlarray::nbody {

Result<std::vector<double>> CicDensity(const Snapshot& snap, int64_t m) {
  if (m < 2) return Status::InvalidArgument("grid must be at least 2^3");
  std::vector<double> rho(m * m * m, 0.0);
  const double scale = static_cast<double>(m) / snap.box;

  for (const Particle& p : snap.particles) {
    // Cell-centered CIC: the particle's mass is split over the 8 nearest
    // cell centers with trilinear weights.
    double gx = p.position.x * scale - 0.5;
    double gy = p.position.y * scale - 0.5;
    double gz = p.position.z * scale - 0.5;
    int64_t ix = static_cast<int64_t>(std::floor(gx));
    int64_t iy = static_cast<int64_t>(std::floor(gy));
    int64_t iz = static_cast<int64_t>(std::floor(gz));
    double fx = gx - ix, fy = gy - iy, fz = gz - iz;

    for (int dz = 0; dz < 2; ++dz) {
      double wz = dz ? fz : 1 - fz;
      int64_t z = ((iz + dz) % m + m) % m;
      for (int dy = 0; dy < 2; ++dy) {
        double wy = dy ? fy : 1 - fy;
        int64_t y = ((iy + dy) % m + m) % m;
        for (int dx = 0; dx < 2; ++dx) {
          double wx = dx ? fx : 1 - fx;
          int64_t x = ((ix + dx) % m + m) % m;
          rho[x + m * (y + m * z)] += wx * wy * wz;
        }
      }
    }
  }

  const double mean =
      static_cast<double>(snap.particles.size()) / static_cast<double>(m * m * m);
  for (double& r : rho) r = r / mean - 1.0;
  return rho;
}

Result<std::vector<PowerBin>> PowerSpectrum(const std::vector<double>& delta,
                                            int64_t m, double box,
                                            int num_bins) {
  if (static_cast<int64_t>(delta.size()) != m * m * m) {
    return Status::InvalidArgument("delta size does not match the grid");
  }
  if (num_bins < 1) {
    return Status::InvalidArgument("need at least one k bin");
  }

  std::vector<fft::Complex> field(delta.size());
  for (size_t i = 0; i < delta.size(); ++i) field[i] = {delta[i], 0.0};
  SQLARRAY_ASSIGN_OR_RETURN(std::unique_ptr<fft::Plan> plan,
                            fft::Plan::Create({m, m, m}));
  SQLARRAY_RETURN_IF_ERROR(
      plan->Execute(field, field, fft::Direction::kForward));

  const double kf = 2.0 * std::numbers::pi / box;  // fundamental mode
  const double k_max = kf * static_cast<double>(m) / 2.0;
  std::vector<PowerBin> bins(num_bins);
  std::vector<double> k_sum(num_bins, 0.0);

  const double norm =
      1.0 / (static_cast<double>(m * m * m) * static_cast<double>(m * m * m));
  for (int64_t kz = 0; kz < m; ++kz) {
    int64_t wz = kz <= m / 2 ? kz : kz - m;
    for (int64_t ky = 0; ky < m; ++ky) {
      int64_t wy = ky <= m / 2 ? ky : ky - m;
      for (int64_t kx = 0; kx < m; ++kx) {
        int64_t wx = kx <= m / 2 ? kx : kx - m;
        if (wx == 0 && wy == 0 && wz == 0) continue;
        double k = kf * std::sqrt(static_cast<double>(wx * wx + wy * wy +
                                                      wz * wz));
        if (k >= k_max) continue;
        int b = static_cast<int>(k / k_max * num_bins);
        if (b >= num_bins) b = num_bins - 1;
        double p = std::norm(field[kx + m * (ky + m * kz)]) * norm;
        bins[b].power += p;
        bins[b].modes++;
        k_sum[b] += k;
      }
    }
  }
  for (int b = 0; b < num_bins; ++b) {
    if (bins[b].modes > 0) {
      bins[b].power /= static_cast<double>(bins[b].modes);
      bins[b].k = k_sum[b] / static_cast<double>(bins[b].modes);
    }
  }
  return bins;
}

}  // namespace sqlarray::nbody
