// Synthetic cosmological N-body snapshots (the Sec. 2.3 substitute).
//
// Real runs dump (ID, position, velocity) per particle per snapshot. The
// generator places halos (clustered Gaussian blobs) plus a uniform
// background in a periodic box, and can evolve the same particle set across
// snapshots (halo drift + two halo mergers) so friends-of-friends halos and
// merger-tree linking behave like the real pipeline's inputs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "spatial/geometry.h"

namespace sqlarray::nbody {

/// One particle.
struct Particle {
  int64_t id = 0;
  spatial::Vec3 position;
  spatial::Vec3 velocity;
};

/// One snapshot: all particles at a time step.
struct Snapshot {
  int step = 0;
  double box = 1.0;  ///< box edge, periodic
  std::vector<Particle> particles;
};

/// Generator parameters.
struct SnapshotConfig {
  double box = 100.0;
  int num_halos = 12;
  int particles_per_halo = 400;
  double halo_sigma = 1.2;        ///< halo radius (Gaussian sigma)
  int background_particles = 2000;
  double velocity_sigma = 50.0;
};

/// Generates snapshot 0.
Snapshot MakeInitialSnapshot(const SnapshotConfig& config, uint64_t seed);

/// Evolves a snapshot by one step: halos drift coherently, particles jitter,
/// and (on even steps) the two nearest halos move toward each other so
/// mergers appear in the tree. Particle IDs are preserved.
Snapshot EvolveSnapshot(const Snapshot& prev, const SnapshotConfig& config,
                        uint64_t seed);

}  // namespace sqlarray::nbody
