#include "sci/nbody/cosmology.h"

#include <cmath>
#include <numbers>

namespace sqlarray::nbody {

double Cosmology::E(double z) const {
  double a3 = (1 + z) * (1 + z) * (1 + z);
  return std::sqrt(omega_m * a3 + omega_l);
}

namespace {

/// Adaptive Simpson quadrature of 1/E over [a, b].
double SimpsonInvE(const Cosmology& cosmo, double a, double b, double fa,
                   double fm, double fb, double eps, int depth) {
  double m = 0.5 * (a + b);
  double lm = 0.5 * (a + m), rm = 0.5 * (m + b);
  double flm = 1.0 / cosmo.E(lm), frm = 1.0 / cosmo.E(rm);
  double whole = (b - a) / 6.0 * (fa + 4 * fm + fb);
  double left = (m - a) / 6.0 * (fa + 4 * flm + fm);
  double right = (b - m) / 6.0 * (fm + 4 * frm + fb);
  if (depth <= 0 || std::fabs(left + right - whole) < 15 * eps) {
    return left + right + (left + right - whole) / 15.0;
  }
  return SimpsonInvE(cosmo, a, m, fa, flm, fm, eps / 2, depth - 1) +
         SimpsonInvE(cosmo, m, b, fm, frm, fb, eps / 2, depth - 1);
}

}  // namespace

Result<double> ComovingDistance(const Cosmology& cosmo, double z) {
  if (z < 0) {
    return Status::InvalidArgument("redshift must be non-negative");
  }
  if (cosmo.omega_m < 0 || cosmo.omega_l < 0 || cosmo.hubble0 <= 0) {
    return Status::InvalidArgument("invalid cosmological parameters");
  }
  if (z == 0) return 0.0;
  double fa = 1.0 / cosmo.E(0);
  double fb = 1.0 / cosmo.E(z);
  double fm = 1.0 / cosmo.E(z / 2);
  double integral = SimpsonInvE(cosmo, 0, z, fa, fm, fb, 1e-12, 40);
  return cosmo.HubbleDistance() * integral;
}

Result<double> RedshiftAtComovingDistance(const Cosmology& cosmo,
                                          double d_mpc) {
  if (d_mpc < 0) {
    return Status::InvalidArgument("distance must be non-negative");
  }
  if (d_mpc == 0) return 0.0;
  // Bracket: comoving distance grows without bound in Lambda-CDM only up to
  // the horizon; cap the search at z = 1100 (last scattering).
  double lo = 0, hi = 1100;
  SQLARRAY_ASSIGN_OR_RETURN(double d_hi, ComovingDistance(cosmo, hi));
  if (d_mpc > d_hi) {
    return Status::OutOfRange("distance beyond z = 1100 horizon");
  }
  for (int iter = 0; iter < 200; ++iter) {
    double mid = 0.5 * (lo + hi);
    SQLARRAY_ASSIGN_OR_RETURN(double d_mid, ComovingDistance(cosmo, mid));
    if (d_mid < d_mpc) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-10 * (1 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

double ObservedRedshift(double z_cosmological, double v_radial_km_s) {
  return (1 + z_cosmological) *
             (1 + v_radial_km_s / Cosmology::kSpeedOfLight) -
         1;
}

Result<double> ComovingShellVolume(const Cosmology& cosmo, double z1,
                                   double z2) {
  if (z2 < z1) {
    return Status::InvalidArgument("shell needs z1 <= z2");
  }
  SQLARRAY_ASSIGN_OR_RETURN(double d1, ComovingDistance(cosmo, z1));
  SQLARRAY_ASSIGN_OR_RETURN(double d2, ComovingDistance(cosmo, z2));
  return 4.0 / 3.0 * std::numbers::pi * (d2 * d2 * d2 - d1 * d1 * d1);
}

}  // namespace sqlarray::nbody
