#include "sci/nbody/snapshot.h"

#include <cmath>

namespace sqlarray::nbody {

namespace {

double Wrap(double x, double box) {
  double w = std::fmod(x, box);
  return w < 0 ? w + box : w;
}

}  // namespace

Snapshot MakeInitialSnapshot(const SnapshotConfig& config, uint64_t seed) {
  Rng rng(seed);
  Snapshot snap;
  snap.step = 0;
  snap.box = config.box;

  int64_t next_id = 0;
  std::vector<spatial::Vec3> centers(config.num_halos);
  std::vector<spatial::Vec3> bulk(config.num_halos);
  for (int h = 0; h < config.num_halos; ++h) {
    centers[h] = {rng.Uniform(0, config.box), rng.Uniform(0, config.box),
                  rng.Uniform(0, config.box)};
    bulk[h] = {rng.Normal(0, config.velocity_sigma),
               rng.Normal(0, config.velocity_sigma),
               rng.Normal(0, config.velocity_sigma)};
  }
  // Engineer a merger: put halo 0 and halo 1 near each other with
  // approaching bulk velocities so later snapshots see them merge.
  if (config.num_halos >= 2) {
    centers[1] = {Wrap(centers[0].x + 6.0 * config.halo_sigma, config.box),
                  centers[0].y, centers[0].z};
    double v = 2.0 * config.velocity_sigma;
    bulk[0] = {v, 0, 0};
    bulk[1] = {-v, 0, 0};
  }

  for (int h = 0; h < config.num_halos; ++h) {
    for (int p = 0; p < config.particles_per_halo; ++p) {
      Particle part;
      part.id = next_id++;
      part.position = {
          Wrap(centers[h].x + rng.Normal(0, config.halo_sigma), config.box),
          Wrap(centers[h].y + rng.Normal(0, config.halo_sigma), config.box),
          Wrap(centers[h].z + rng.Normal(0, config.halo_sigma), config.box)};
      part.velocity = {
          bulk[h].x + rng.Normal(0, 0.1 * config.velocity_sigma),
          bulk[h].y + rng.Normal(0, 0.1 * config.velocity_sigma),
          bulk[h].z + rng.Normal(0, 0.1 * config.velocity_sigma)};
      snap.particles.push_back(part);
    }
  }
  for (int p = 0; p < config.background_particles; ++p) {
    Particle part;
    part.id = next_id++;
    part.position = {rng.Uniform(0, config.box), rng.Uniform(0, config.box),
                     rng.Uniform(0, config.box)};
    part.velocity = {rng.Normal(0, config.velocity_sigma),
                     rng.Normal(0, config.velocity_sigma),
                     rng.Normal(0, config.velocity_sigma)};
    snap.particles.push_back(part);
  }
  return snap;
}

Snapshot EvolveSnapshot(const Snapshot& prev, const SnapshotConfig& config,
                        uint64_t seed) {
  Rng rng(seed);
  const double dt = 0.01;
  Snapshot next;
  next.step = prev.step + 1;
  next.box = prev.box;
  next.particles.reserve(prev.particles.size());
  for (const Particle& p : prev.particles) {
    Particle q = p;
    q.position.x = Wrap(p.position.x + p.velocity.x * dt +
                            rng.Normal(0, 0.02 * config.halo_sigma),
                        prev.box);
    q.position.y = Wrap(p.position.y + p.velocity.y * dt +
                            rng.Normal(0, 0.02 * config.halo_sigma),
                        prev.box);
    q.position.z = Wrap(p.position.z + p.velocity.z * dt +
                            rng.Normal(0, 0.02 * config.halo_sigma),
                        prev.box);
    next.particles.push_back(q);
  }
  return next;
}

}  // namespace sqlarray::nbody
