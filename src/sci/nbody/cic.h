// Cloud-in-cell density assignment and the matter power spectrum (Sec. 2.3).
//
// "compute the density over a ... grid, interpolating over the particle
// positions, using a cloud-in-cell (CIC) algorithm, then Fourier transform
// it and compute its power spectrum."
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sci/nbody/snapshot.h"

namespace sqlarray::nbody {

/// CIC mass assignment onto an m^3 periodic grid. Returns the density
/// CONTRAST field delta = rho / <rho> - 1, column-major [x, y, z].
Result<std::vector<double>> CicDensity(const Snapshot& snap, int64_t m);

/// One bin of the isotropic power spectrum.
struct PowerBin {
  double k = 0;       ///< bin-mean wavenumber (2*pi/box units)
  double power = 0;   ///< <|delta_k|^2> over the shell
  int64_t modes = 0;  ///< modes in the shell
};

/// FFTs the density contrast and averages |delta_k|^2 over spherical shells.
Result<std::vector<PowerBin>> PowerSpectrum(const std::vector<double>& delta,
                                            int64_t m, double box,
                                            int num_bins);

}  // namespace sqlarray::nbody
