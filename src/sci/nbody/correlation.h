// Two-point correlation functions over point sets (Sec. 2.3).
//
// "we need to be able to compute various statistical functions like two and
// three point correlations over these point sets". The estimator is the
// natural one, xi(r) = DD(r) / RR(r) - 1, with the random-pair expectation
// computed analytically for a periodic box (exact shell volumes), so no
// random catalog is needed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sci/nbody/snapshot.h"

namespace sqlarray::nbody {

/// One radial bin of the two-point correlation function.
struct XiBin {
  double r_lo = 0, r_hi = 0;
  int64_t pairs = 0;   ///< DD pair count in the shell
  double xi = 0;       ///< DD / RR_expected - 1
};

/// Computes xi(r) in `num_bins` linear bins over [0, r_max] with periodic
/// distances and grid-hashed pair counting.
Result<std::vector<XiBin>> TwoPointCorrelation(const Snapshot& snap,
                                               double r_max, int num_bins);

/// One scale of the equilateral three-point correlation function.
struct ZetaBin {
  double r_lo = 0, r_hi = 0;
  int64_t triplets = 0;  ///< DDD triangles with all three sides in the bin
  double zeta = 0;       ///< DDD / RRR_expected - 1
};

/// Equilateral-configuration three-point correlation: counts triangles whose
/// three side lengths all fall in [r_lo, r_hi), normalized by the analytic
/// random expectation for a periodic box. `r_max` must be at most box/4 so
/// shells fit the neighbor grid.
Result<std::vector<ZetaBin>> ThreePointEquilateral(const Snapshot& snap,
                                                   double r_max,
                                                   int num_bins);

}  // namespace sqlarray::nbody
