// FLRW background cosmology (Sec. 2.3's "distances calculated in the curved
// geometry of the universe").
//
// Light-cone construction maps look-back epochs to comoving distances and
// converts peculiar velocities to observed redshifts; these helpers compute
// those mappings for a flat Lambda-CDM background by numerical quadrature.
#pragma once

#include "common/status.h"

namespace sqlarray::nbody {

/// Flat Lambda-CDM parameters (curvature is neglected: Om + Ol = 1).
struct Cosmology {
  double hubble0 = 70.0;     ///< H0, km/s/Mpc
  double omega_m = 0.3;      ///< matter density
  double omega_l = 0.7;      ///< dark energy density
  static constexpr double kSpeedOfLight = 299792.458;  ///< km/s

  /// Dimensionless expansion rate E(z) = H(z)/H0.
  double E(double z) const;

  /// Hubble distance c / H0 in Mpc.
  double HubbleDistance() const { return kSpeedOfLight / hubble0; }
};

/// Comoving distance to redshift z (Mpc): D_C = (c/H0) * int_0^z dz'/E(z').
/// Adaptive Simpson quadrature; |z| error well below 1e-8 relative.
Result<double> ComovingDistance(const Cosmology& cosmo, double z);

/// Inverse of ComovingDistance (bisection on the monotone mapping):
/// the redshift whose comoving distance is `d_mpc`.
Result<double> RedshiftAtComovingDistance(const Cosmology& cosmo,
                                          double d_mpc);

/// Observed redshift combining the cosmological expansion and a radial
/// peculiar velocity v_r (km/s): 1 + z_obs = (1 + z_cos)(1 + v_r/c).
double ObservedRedshift(double z_cosmological, double v_radial_km_s);

/// Comoving volume of a shell [z1, z2] over the full sky (Mpc^3) — the
/// normalization light-cone number counts need.
Result<double> ComovingShellVolume(const Cosmology& cosmo, double z1,
                                   double z2);

}  // namespace sqlarray::nbody
