#include "sci/nbody/bucket.h"

#include <algorithm>
#include <map>

#include "core/array.h"
#include "core/stream_ops.h"
#include "spatial/zorder.h"

namespace sqlarray::nbody {

namespace {

int64_t BucketKey(int step, uint64_t zcell) {
  return (static_cast<int64_t>(step) << 40) | static_cast<int64_t>(zcell);
}

}  // namespace

Result<storage::Table*> LoadBucketed(const Snapshot& snap,
                                     storage::Database* db,
                                     const std::string& table_name,
                                     uint32_t grid) {
  std::vector<storage::ColumnDef> cols = {
      {"key", storage::ColumnType::kInt64, 0},
      {"n", storage::ColumnType::kInt32, 0},
      {"ids", storage::ColumnType::kVarBinaryMax, 0},
      {"pos", storage::ColumnType::kVarBinaryMax, 0},
      {"vel", storage::ColumnType::kVarBinaryMax, 0},
  };
  SQLARRAY_ASSIGN_OR_RETURN(storage::Schema schema,
                            storage::Schema::Create(std::move(cols)));
  SQLARRAY_ASSIGN_OR_RETURN(storage::Table * table,
                            db->CreateTable(table_name, std::move(schema)));

  // Group particle indices by z-order cell; std::map iterates keys in
  // ascending (space-filling-curve) order for append-friendly inserts.
  std::map<uint64_t, std::vector<int64_t>> buckets;
  for (size_t i = 0; i < snap.particles.size(); ++i) {
    const spatial::Vec3& p = snap.particles[i].position;
    uint64_t cell = spatial::MortonCellOf(p.x, p.y, p.z, snap.box, grid);
    buckets[cell].push_back(static_cast<int64_t>(i));
  }

  for (const auto& [cell, members] : buckets) {
    const int64_t n = static_cast<int64_t>(members.size());
    SQLARRAY_ASSIGN_OR_RETURN(
        OwnedArray ids,
        OwnedArray::Zeros(DType::kInt64, {n}, StorageClass::kMax));
    SQLARRAY_ASSIGN_OR_RETURN(
        OwnedArray pos,
        OwnedArray::Zeros(DType::kFloat64, {3, n}, StorageClass::kMax));
    SQLARRAY_ASSIGN_OR_RETURN(
        OwnedArray vel,
        OwnedArray::Zeros(DType::kFloat64, {3, n}, StorageClass::kMax));
    auto ids_d = ids.MutableData<int64_t>().value();
    auto pos_d = pos.MutableData<double>().value();
    auto vel_d = vel.MutableData<double>().value();
    for (int64_t j = 0; j < n; ++j) {
      const Particle& p = snap.particles[members[j]];
      ids_d[j] = p.id;
      pos_d[0 + 3 * j] = p.position.x;
      pos_d[1 + 3 * j] = p.position.y;
      pos_d[2 + 3 * j] = p.position.z;
      vel_d[0 + 3 * j] = p.velocity.x;
      vel_d[1 + 3 * j] = p.velocity.y;
      vel_d[2 + 3 * j] = p.velocity.z;
    }

    storage::Row row;
    row.push_back(BucketKey(snap.step, cell));
    row.push_back(static_cast<int32_t>(n));
    row.push_back(std::move(ids).TakeBlob());
    row.push_back(std::move(pos).TakeBlob());
    row.push_back(std::move(vel).TakeBlob());
    SQLARRAY_RETURN_IF_ERROR(table->Insert(std::move(row)));
  }
  return table;
}

Result<storage::Table*> LoadPerPoint(const Snapshot& snap,
                                     storage::Database* db,
                                     const std::string& table_name) {
  std::vector<storage::ColumnDef> cols = {
      {"key", storage::ColumnType::kInt64, 0},
      {"x", storage::ColumnType::kFloat64, 0},
      {"y", storage::ColumnType::kFloat64, 0},
      {"z", storage::ColumnType::kFloat64, 0},
      {"vx", storage::ColumnType::kFloat64, 0},
      {"vy", storage::ColumnType::kFloat64, 0},
      {"vz", storage::ColumnType::kFloat64, 0},
  };
  SQLARRAY_ASSIGN_OR_RETURN(storage::Schema schema,
                            storage::Schema::Create(std::move(cols)));
  SQLARRAY_ASSIGN_OR_RETURN(storage::Table * table,
                            db->CreateTable(table_name, std::move(schema)));

  // Ascending keys (step, id) for dense append inserts.
  for (const Particle& p : snap.particles) {
    storage::Row row;
    row.push_back((static_cast<int64_t>(snap.step) << 40) | p.id);
    row.push_back(p.position.x);
    row.push_back(p.position.y);
    row.push_back(p.position.z);
    row.push_back(p.velocity.x);
    row.push_back(p.velocity.y);
    row.push_back(p.velocity.z);
    SQLARRAY_RETURN_IF_ERROR(table->Insert(std::move(row)));
  }
  return table;
}

Result<spatial::Vec3> LookupBucketedParticle(storage::Table* table,
                                             const Snapshot& snap,
                                             uint32_t grid,
                                             int64_t particle_id,
                                             const spatial::Vec3& hint) {
  uint64_t cell =
      spatial::MortonCellOf(hint.x, hint.y, hint.z, snap.box, grid);
  SQLARRAY_ASSIGN_OR_RETURN(std::optional<storage::Row> row,
                            table->Lookup(BucketKey(snap.step, cell)));
  if (!row.has_value()) {
    return Status::NotFound("bucket row missing");
  }
  SQLARRAY_ASSIGN_OR_RETURN(
      std::vector<uint8_t> ids_blob,
      table->ReadBlob(std::get<storage::BlobId>((*row)[2])));
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray ids,
                            OwnedArray::FromBlob(std::move(ids_blob)));
  auto ids_d = ids.ref().Data<int64_t>().value();
  for (size_t j = 0; j < ids_d.size(); ++j) {
    if (ids_d[j] != particle_id) continue;
    // Stream just this particle's column from the position array.
    SQLARRAY_ASSIGN_OR_RETURN(
        storage::BlobStream stream,
        table->OpenBlob(std::get<storage::BlobId>((*row)[3])));
    Dims offset{0, static_cast<int64_t>(j)};
    Dims sizes{3, 1};
    SQLARRAY_ASSIGN_OR_RETURN(
        OwnedArray col, StreamSubarray(&stream, offset, sizes, true));
    auto v = col.ref().Data<double>().value();
    return spatial::Vec3{v[0], v[1], v[2]};
  }
  return Status::NotFound("particle not in its bucket");
}

}  // namespace sqlarray::nbody
