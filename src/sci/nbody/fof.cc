#include "sci/nbody/fof.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_map>

namespace sqlarray::nbody {

namespace {

/// Union-find with path compression.
class DisjointSet {
 public:
  explicit DisjointSet(int64_t n) : parent_(n) {
    for (int64_t i = 0; i < n; ++i) parent_[i] = i;
  }
  int64_t Find(int64_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int64_t a, int64_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[a] = b;
  }

 private:
  std::vector<int64_t> parent_;
};

double PeriodicDistSq(const spatial::Vec3& a, const spatial::Vec3& b,
                      double box) {
  auto d1 = [&](double x, double y) {
    double d = std::fabs(x - y);
    return std::min(d, box - d);
  };
  double dx = d1(a.x, b.x), dy = d1(a.y, b.y), dz = d1(a.z, b.z);
  return dx * dx + dy * dy + dz * dz;
}

/// Groups a union-find labelling into the FofResult shape.
FofResult Collect(const Snapshot& snap, DisjointSet* ds, int min_members) {
  const int64_t n = static_cast<int64_t>(snap.particles.size());
  std::unordered_map<int64_t, std::vector<int64_t>> groups;
  for (int64_t i = 0; i < n; ++i) groups[ds->Find(i)].push_back(i);

  FofResult out;
  out.halo_of.assign(n, -1);
  for (auto& [root, members] : groups) {
    (void)root;
    if (static_cast<int>(members.size()) < min_members) continue;
    out.halos.push_back(std::move(members));
  }
  std::sort(out.halos.begin(), out.halos.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  for (size_t h = 0; h < out.halos.size(); ++h) {
    for (int64_t i : out.halos[h]) {
      out.halo_of[i] = static_cast<int64_t>(h);
    }
  }
  return out;
}

}  // namespace

Result<FofResult> FriendsOfFriends(const Snapshot& snap,
                                   double linking_length, int min_members) {
  if (linking_length <= 0) {
    return Status::InvalidArgument("linking length must be positive");
  }
  const int64_t n = static_cast<int64_t>(snap.particles.size());
  DisjointSet ds(n);

  // Hash particles into cells of edge = linking length; only the 27
  // neighboring cells can hold friends.
  const int64_t cells = std::max<int64_t>(
      1, static_cast<int64_t>(std::floor(snap.box / linking_length)));
  const double cell_size = snap.box / static_cast<double>(cells);
  auto cell_of = [&](const spatial::Vec3& p) {
    auto c = [&](double x) {
      int64_t i = static_cast<int64_t>(x / cell_size);
      return std::min(i, cells - 1);
    };
    return std::array<int64_t, 3>{c(p.x), c(p.y), c(p.z)};
  };
  auto key_of = [&](int64_t cx, int64_t cy, int64_t cz) {
    return (cx * cells + cy) * cells + cz;
  };

  std::unordered_map<int64_t, std::vector<int64_t>> grid;
  for (int64_t i = 0; i < n; ++i) {
    auto c = cell_of(snap.particles[i].position);
    grid[key_of(c[0], c[1], c[2])].push_back(i);
  }

  const double link_sq = linking_length * linking_length;
  for (int64_t i = 0; i < n; ++i) {
    auto c = cell_of(snap.particles[i].position);
    for (int64_t dx = -1; dx <= 1; ++dx) {
      for (int64_t dy = -1; dy <= 1; ++dy) {
        for (int64_t dz = -1; dz <= 1; ++dz) {
          int64_t cx = (c[0] + dx + cells) % cells;
          int64_t cy = (c[1] + dy + cells) % cells;
          int64_t cz = (c[2] + dz + cells) % cells;
          auto it = grid.find(key_of(cx, cy, cz));
          if (it == grid.end()) continue;
          for (int64_t j : it->second) {
            if (j <= i) continue;
            if (PeriodicDistSq(snap.particles[i].position,
                               snap.particles[j].position,
                               snap.box) <= link_sq) {
              ds.Union(i, j);
            }
          }
        }
      }
    }
  }
  return Collect(snap, &ds, min_members);
}

Result<FofResult> FriendsOfFriendsBrute(const Snapshot& snap,
                                        double linking_length,
                                        int min_members) {
  if (linking_length <= 0) {
    return Status::InvalidArgument("linking length must be positive");
  }
  const int64_t n = static_cast<int64_t>(snap.particles.size());
  DisjointSet ds(n);
  const double link_sq = linking_length * linking_length;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      if (PeriodicDistSq(snap.particles[i].position,
                         snap.particles[j].position, snap.box) <= link_sq) {
        ds.Union(i, j);
      }
    }
  }
  return Collect(snap, &ds, min_members);
}

}  // namespace sqlarray::nbody
