// Bucketed array storage of particle snapshots (Sec. 2.3).
//
// Storing every particle of every snapshot as its own row "does not seem
// feasible ... 1.6 trillion rows"; instead particles are grouped into
// spatial buckets along a space-filling curve and each bucket is one row
// holding array blobs. LoadBucketed and LoadPerPoint build both layouts so
// the C3 experiment can compare row counts, bytes, and load times, and
// bucketed rows support array-based retrieval of individual particles.
#pragma once

#include <string>

#include "common/status.h"
#include "sci/nbody/snapshot.h"
#include "storage/table.h"

namespace sqlarray::nbody {

/// Bucketed layout:
///   key BIGINT       — (step << 40) | zcell, ascending
///   n INT            — particles in the bucket
///   ids VARBINARY(MAX)  int64 [n]
///   pos VARBINARY(MAX)  float64 [3, n] column-major
///   vel VARBINARY(MAX)  float64 [3, n] column-major
/// `grid` sets the z-curve cell count per axis (buckets hold everything that
/// falls in one cell).
Result<storage::Table*> LoadBucketed(const Snapshot& snap,
                                     storage::Database* db,
                                     const std::string& table_name,
                                     uint32_t grid);

/// Point-per-row layout (the infeasible baseline):
///   key BIGINT — (step << 40) | particle id
///   x, y, z, vx, vy, vz FLOAT
Result<storage::Table*> LoadPerPoint(const Snapshot& snap,
                                     storage::Database* db,
                                     const std::string& table_name);

/// Retrieves one particle's position from the bucketed table by searching
/// its bucket's id array (the "array-based data access" the paper predicts).
Result<spatial::Vec3> LookupBucketedParticle(storage::Table* table,
                                             const Snapshot& snap,
                                             uint32_t grid,
                                             int64_t particle_id,
                                             const spatial::Vec3& hint);

}  // namespace sqlarray::nbody
