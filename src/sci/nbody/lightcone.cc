#include "sci/nbody/lightcone.h"

#include <cmath>
#include <numbers>

namespace sqlarray::nbody {

Result<std::vector<LightconePoint>> BuildLightcone(
    std::span<const Snapshot> snapshots, const LightconeConfig& config) {
  if (snapshots.empty()) {
    return Status::InvalidArgument("light cone needs at least one snapshot");
  }
  std::vector<LightconePoint> out;
  const spatial::Vec3 axis = config.direction.Normalized();
  const double cos_half =
      std::cos(config.half_angle_deg * std::numbers::pi / 180.0);

  for (size_t i = 0; i < snapshots.size(); ++i) {
    const Snapshot& snap = snapshots[i];
    // Later snapshots are closer to the observer: look-back order means the
    // most recent epoch fills the nearest shell.
    size_t shell_index = snapshots.size() - 1 - i;
    spatial::Cone cone;
    cone.apex = config.observer;
    cone.axis = axis;
    cone.cos_half_angle = cos_half;
    cone.r_min = config.r0 + shell_index * config.shell_depth;
    cone.r_max = config.r0 + (shell_index + 1) * config.shell_depth;

    // Octree over this snapshot's particles.
    std::vector<spatial::Vec3> points;
    points.reserve(snap.particles.size());
    for (const Particle& p : snap.particles) points.push_back(p.position);
    spatial::Aabb bounds{{0, 0, 0},
                         {snap.box * 1.0001, snap.box * 1.0001,
                          snap.box * 1.0001}};
    SQLARRAY_ASSIGN_OR_RETURN(
        spatial::Octree tree,
        spatial::Octree::Build(std::move(points), bounds,
                               config.octree_bucket));

    for (int64_t idx : tree.Query(cone)) {
      const Particle& p = snap.particles[idx];
      spatial::Vec3 d = p.position - config.observer;
      double r = d.Norm();
      spatial::Vec3 los = d * (1.0 / r);
      double vr = p.velocity.Dot(los);
      out.push_back({p.id, snap.step, p.position, r, vr,
                     vr / config.speed_of_light});
    }
  }
  return out;
}

}  // namespace sqlarray::nbody
