#include "sci/nbody/correlation.h"

#include "common/rng.h"

#include <array>
#include <cmath>
#include <numbers>
#include <unordered_map>

namespace sqlarray::nbody {

Result<std::vector<XiBin>> TwoPointCorrelation(const Snapshot& snap,
                                               double r_max, int num_bins) {
  if (r_max <= 0 || r_max > snap.box / 2) {
    return Status::InvalidArgument(
        "r_max must be positive and at most half the box");
  }
  if (num_bins < 1) {
    return Status::InvalidArgument("need at least one radial bin");
  }
  const int64_t n = static_cast<int64_t>(snap.particles.size());

  // Grid hash with cell edge >= r_max so only 27 neighbor cells matter.
  const int64_t cells = std::max<int64_t>(
      1, static_cast<int64_t>(std::floor(snap.box / r_max)));
  const double cell_size = snap.box / static_cast<double>(cells);
  auto cell_of = [&](const spatial::Vec3& p) {
    auto c = [&](double x) {
      int64_t i = static_cast<int64_t>(x / cell_size);
      return std::min(i, cells - 1);
    };
    return std::array<int64_t, 3>{c(p.x), c(p.y), c(p.z)};
  };
  auto key_of = [&](int64_t cx, int64_t cy, int64_t cz) {
    return (cx * cells + cy) * cells + cz;
  };
  std::unordered_map<int64_t, std::vector<int64_t>> grid;
  for (int64_t i = 0; i < n; ++i) {
    auto c = cell_of(snap.particles[i].position);
    grid[key_of(c[0], c[1], c[2])].push_back(i);
  }

  auto dist1 = [&](double x, double y) {
    double d = std::fabs(x - y);
    return std::min(d, snap.box - d);
  };

  std::vector<XiBin> bins(num_bins);
  for (int b = 0; b < num_bins; ++b) {
    bins[b].r_lo = r_max * b / num_bins;
    bins[b].r_hi = r_max * (b + 1) / num_bins;
  }

  const double r_max_sq = r_max * r_max;
  for (int64_t i = 0; i < n; ++i) {
    auto c = cell_of(snap.particles[i].position);
    for (int64_t dx = -1; dx <= 1; ++dx) {
      for (int64_t dy = -1; dy <= 1; ++dy) {
        for (int64_t dz = -1; dz <= 1; ++dz) {
          int64_t cx = (c[0] + dx + cells) % cells;
          int64_t cy = (c[1] + dy + cells) % cells;
          int64_t cz = (c[2] + dz + cells) % cells;
          auto it = grid.find(key_of(cx, cy, cz));
          if (it == grid.end()) continue;
          for (int64_t j : it->second) {
            if (j <= i) continue;
            const spatial::Vec3& a = snap.particles[i].position;
            const spatial::Vec3& bpos = snap.particles[j].position;
            double ddx = dist1(a.x, bpos.x);
            double ddy = dist1(a.y, bpos.y);
            double ddz = dist1(a.z, bpos.z);
            double d2 = ddx * ddx + ddy * ddy + ddz * ddz;
            if (d2 >= r_max_sq) continue;
            int bin = static_cast<int>(std::sqrt(d2) / r_max * num_bins);
            if (bin >= num_bins) bin = num_bins - 1;
            bins[bin].pairs++;
          }
        }
      }
    }
  }

  // Analytic RR for a periodic box: expected pairs in a shell is
  // n(n-1)/2 * V_shell / V_box.
  const double v_box = snap.box * snap.box * snap.box;
  const double pair_norm = 0.5 * static_cast<double>(n) *
                           static_cast<double>(n - 1) / v_box;
  for (XiBin& b : bins) {
    double v_shell = 4.0 / 3.0 * std::numbers::pi *
                     (b.r_hi * b.r_hi * b.r_hi - b.r_lo * b.r_lo * b.r_lo);
    double expected = pair_norm * v_shell;
    b.xi = expected > 0 ? static_cast<double>(b.pairs) / expected - 1.0 : 0.0;
  }
  return bins;
}


namespace {

/// Counts triangles whose three side lengths all fall in the same radial
/// bin, using a cell grid of edge >= r_max for neighbor candidates. Each
/// triangle is counted exactly once (i < j < k).
std::vector<int64_t> CountEquilateralTriangles(const Snapshot& snap,
                                               double r_max, int num_bins) {
  const int64_t n = static_cast<int64_t>(snap.particles.size());
  const int64_t cells = std::max<int64_t>(
      1, static_cast<int64_t>(std::floor(snap.box / r_max)));
  const double cell_size = snap.box / static_cast<double>(cells);
  auto cell_of = [&](const spatial::Vec3& p) {
    auto c = [&](double x) {
      int64_t i = static_cast<int64_t>(x / cell_size);
      return std::min(i, cells - 1);
    };
    return std::array<int64_t, 3>{c(p.x), c(p.y), c(p.z)};
  };
  auto key_of = [&](int64_t cx, int64_t cy, int64_t cz) {
    return (cx * cells + cy) * cells + cz;
  };
  std::unordered_map<int64_t, std::vector<int64_t>> grid;
  for (int64_t i = 0; i < n; ++i) {
    auto c = cell_of(snap.particles[i].position);
    grid[key_of(c[0], c[1], c[2])].push_back(i);
  }

  auto dist1 = [&](double x, double y) {
    double d = std::fabs(x - y);
    return std::min(d, snap.box - d);
  };
  auto dist = [&](int64_t a, int64_t b) {
    const spatial::Vec3& p = snap.particles[a].position;
    const spatial::Vec3& q = snap.particles[b].position;
    double dx = dist1(p.x, q.x), dy = dist1(p.y, q.y), dz = dist1(p.z, q.z);
    return std::sqrt(dx * dx + dy * dy + dz * dz);
  };
  auto bin_of = [&](double d) {
    if (d >= r_max) return -1;
    return static_cast<int>(d / r_max * num_bins);
  };

  std::vector<int64_t> counts(num_bins, 0);
  std::vector<int64_t> neighbors;
  for (int64_t i = 0; i < n; ++i) {
    // Candidates with index > i within r_max.
    neighbors.clear();
    auto c = cell_of(snap.particles[i].position);
    for (int64_t dx = -1; dx <= 1; ++dx) {
      for (int64_t dy = -1; dy <= 1; ++dy) {
        for (int64_t dz = -1; dz <= 1; ++dz) {
          int64_t cx = (c[0] + dx + cells) % cells;
          int64_t cy = (c[1] + dy + cells) % cells;
          int64_t cz = (c[2] + dz + cells) % cells;
          auto it = grid.find(key_of(cx, cy, cz));
          if (it == grid.end()) continue;
          for (int64_t j : it->second) {
            if (j > i && dist(i, j) < r_max) neighbors.push_back(j);
          }
        }
      }
    }
    for (size_t a = 0; a < neighbors.size(); ++a) {
      int bin_ij = bin_of(dist(i, neighbors[a]));
      if (bin_ij < 0) continue;
      for (size_t b = a + 1; b < neighbors.size(); ++b) {
        if (bin_of(dist(i, neighbors[b])) != bin_ij) continue;
        if (bin_of(dist(neighbors[a], neighbors[b])) != bin_ij) continue;
        counts[bin_ij]++;
      }
    }
  }
  return counts;
}

}  // namespace

Result<std::vector<ZetaBin>> ThreePointEquilateral(const Snapshot& snap,
                                                   double r_max,
                                                   int num_bins) {
  if (r_max <= 0 || r_max > snap.box / 4) {
    return Status::InvalidArgument(
        "r_max must be positive and at most a quarter of the box");
  }
  if (num_bins < 1) {
    return Status::InvalidArgument("need at least one radial bin");
  }

  std::vector<int64_t> ddd = CountEquilateralTriangles(snap, r_max, num_bins);

  // RRR expectation from a matched uniform (Poisson) catalog — the standard
  // estimator denominator, generated with a fixed seed so runs reproduce.
  Snapshot random;
  random.box = snap.box;
  random.step = snap.step;
  Rng rng(0xC0FFEE);
  random.particles.resize(snap.particles.size());
  for (size_t i = 0; i < random.particles.size(); ++i) {
    random.particles[i].id = static_cast<int64_t>(i);
    random.particles[i].position = {rng.Uniform(0, snap.box),
                                    rng.Uniform(0, snap.box),
                                    rng.Uniform(0, snap.box)};
  }
  std::vector<int64_t> rrr =
      CountEquilateralTriangles(random, r_max, num_bins);

  std::vector<ZetaBin> bins(num_bins);
  for (int b = 0; b < num_bins; ++b) {
    bins[b].r_lo = r_max * b / num_bins;
    bins[b].r_hi = r_max * (b + 1) / num_bins;
    bins[b].triplets = ddd[b];
    bins[b].zeta = rrr[b] > 0 ? static_cast<double>(ddd[b]) /
                                        static_cast<double>(rrr[b]) -
                                    1.0
                              : 0.0;
  }
  return bins;
}

}  // namespace sqlarray::nbody
