// Merger-tree linking between snapshots (Sec. 2.3).
//
// "These FOF halos need to be linked up between the different time steps to
// determine the so called merger history. This can be best done by comparing
// the particle labels in the halos at different time steps."
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sci/nbody/fof.h"

namespace sqlarray::nbody {

/// One progenitor -> descendant edge.
struct MergerLink {
  int64_t halo_prev = -1;       ///< halo id at the earlier step
  int64_t halo_next = -1;       ///< halo id at the later step
  int64_t shared_particles = 0;
  double fraction = 0;          ///< shared / size of the earlier halo
};

/// Links halos by shared particle IDs: each earlier halo points to the later
/// halo holding the largest share of its members (if the share is at least
/// `min_fraction`). Multiple earlier halos pointing at one later halo is a
/// merger.
Result<std::vector<MergerLink>> LinkHalos(const Snapshot& snap_prev,
                                          const FofResult& fof_prev,
                                          const Snapshot& snap_next,
                                          const FofResult& fof_next,
                                          double min_fraction = 0.25);

}  // namespace sqlarray::nbody
