#include "sci/nbody/merger.h"

#include <unordered_map>

namespace sqlarray::nbody {

Result<std::vector<MergerLink>> LinkHalos(const Snapshot& snap_prev,
                                          const FofResult& fof_prev,
                                          const Snapshot& snap_next,
                                          const FofResult& fof_next,
                                          double min_fraction) {
  // Particle label -> halo at the later step.
  std::unordered_map<int64_t, int64_t> next_halo_of_label;
  for (size_t i = 0; i < snap_next.particles.size(); ++i) {
    int64_t halo = fof_next.halo_of[i];
    if (halo >= 0) next_halo_of_label[snap_next.particles[i].id] = halo;
  }

  std::vector<MergerLink> links;
  for (size_t h = 0; h < fof_prev.halos.size(); ++h) {
    // Count the earlier halo's labels per later halo.
    std::unordered_map<int64_t, int64_t> shared;
    for (int64_t idx : fof_prev.halos[h]) {
      auto it = next_halo_of_label.find(snap_prev.particles[idx].id);
      if (it != next_halo_of_label.end()) shared[it->second]++;
    }
    int64_t best_halo = -1, best_count = 0;
    for (auto& [halo, count] : shared) {
      if (count > best_count) {
        best_count = count;
        best_halo = halo;
      }
    }
    double fraction = static_cast<double>(best_count) /
                      static_cast<double>(fof_prev.halos[h].size());
    if (best_halo >= 0 && fraction >= min_fraction) {
      links.push_back({static_cast<int64_t>(h), best_halo, best_count,
                       fraction});
    }
  }
  return links;
}

}  // namespace sqlarray::nbody
