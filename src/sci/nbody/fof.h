// Friends-of-friends halo finding (Sec. 2.3).
//
// "At each snapshot we need to compute the so-called halos, clusters of
// particles identified by friends of friends (FOF) algorithms within a
// certain distance." Particles closer than the linking length belong to the
// same group; groups below a minimum size are discarded (field particles).
// Neighbor search is grid-hashed (cells of one linking length), giving the
// expected O(N) behavior at fixed density. A brute-force reference is
// provided for tests.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sci/nbody/snapshot.h"

namespace sqlarray::nbody {

/// FOF output: halo id per particle (-1 for field particles) and per-halo
/// member lists, largest halo first.
struct FofResult {
  std::vector<int64_t> halo_of;             ///< particle index -> halo id
  std::vector<std::vector<int64_t>> halos;  ///< halo id -> particle indices
};

/// Grid-hashed FOF with periodic boundaries.
Result<FofResult> FriendsOfFriends(const Snapshot& snap, double linking_length,
                                   int min_members = 20);

/// O(N^2) reference implementation (tests only).
Result<FofResult> FriendsOfFriendsBrute(const Snapshot& snap,
                                        double linking_length,
                                        int min_members = 20);

}  // namespace sqlarray::nbody
