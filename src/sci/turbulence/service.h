// The particle-interpolation service (Sec. 2.1).
//
// Mirrors the public turbulence web service: callers submit particle
// positions, the service locates each particle's blob row by z-index key
// lookup, reads ONLY the stencil-sized subarray of the blob (the streamed
// partial read that motivates small / in-page blobs), and interpolates the
// velocity with the chosen scheme (nearest, Lagrange 4/6/8).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "core/array.h"
#include "math/interp.h"
#include "sci/turbulence/partition.h"

namespace sqlarray::turbulence {

/// One interpolated query result.
struct VelocitySample {
  double u = 0, v = 0, w = 0;
};

/// Per-batch service statistics.
struct ServiceStats {
  int64_t particles = 0;
  int64_t blob_bytes_read = 0;   ///< logical array bytes fetched
  int64_t io_bytes_read = 0;     ///< page bytes from the disk model
  double io_virtual_seconds = 0;
  int64_t fallback_full_reads = 0;  ///< stencils that did not fit the buffer
};

/// Interpolation service over a partitioned field table.
class InterpolationService {
 public:
  InterpolationService(storage::Database* db, storage::Table* table,
                       PartitionConfig config, int64_t field_n)
      : db_(db), table_(table), config_(config), n_(field_n) {}

  /// Interpolates the velocity at one position (grid units, periodic).
  Result<VelocitySample> Sample(double x, double y, double z,
                                math::InterpScheme scheme);

  /// Batch variant; accumulates stats().
  Result<std::vector<VelocitySample>> SampleBatch(
      std::span<const std::array<double, 3>> positions,
      math::InterpScheme scheme);

  const ServiceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ServiceStats{}; }

 private:
  /// Fetches the stencil block around (x, y, z) from the particle's blob,
  /// returning the block plus the position of its origin in grid space.
  Result<OwnedArray> FetchStencil(double x, double y, double z, int width,
                                  std::array<int64_t, 3>* origin);

  storage::Database* db_;
  storage::Table* table_;
  PartitionConfig config_;
  int64_t n_;
  ServiceStats stats_;
};

}  // namespace sqlarray::turbulence
