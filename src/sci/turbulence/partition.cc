#include "sci/turbulence/partition.h"

#include <algorithm>
#include <cmath>

#include "core/array.h"
#include "spatial/zorder.h"

namespace sqlarray::turbulence {

namespace {

/// Key of the cube at cell (cx, cy, cz) under the configured ordering.
uint64_t CubeKey(const PartitionConfig& config, int64_t cubes_per_axis,
                 uint32_t cx, uint32_t cy, uint32_t cz) {
  if (config.order == CubeOrder::kMorton) {
    return spatial::MortonEncode3(cx, cy, cz);
  }
  return static_cast<uint64_t>(cx) +
         static_cast<uint64_t>(cubes_per_axis) *
             (static_cast<uint64_t>(cy) +
              static_cast<uint64_t>(cubes_per_axis) *
                  static_cast<uint64_t>(cz));
}

/// Inverse of CubeKey.
std::array<uint32_t, 3> CubeCellOf(const PartitionConfig& config,
                                   int64_t cubes_per_axis, uint64_t key) {
  if (config.order == CubeOrder::kMorton) {
    return spatial::MortonDecode3(key);
  }
  uint64_t n = static_cast<uint64_t>(cubes_per_axis);
  return {static_cast<uint32_t>(key % n),
          static_cast<uint32_t>((key / n) % n),
          static_cast<uint32_t>(key / (n * n))};
}

}  // namespace

int64_t PartitionConfig::BlobBytes() const {
  int64_t voxels = edge() * edge() * edge() * components();
  // float32 payload + the short (24 B) or max (16 + 4*4 B) header; use the
  // larger bound for sizing decisions.
  return voxels * 4 + 32;
}

Result<storage::Table*> LoadIntoTable(const SyntheticField& field,
                                      const PartitionConfig& config,
                                      storage::Database* db,
                                      const std::string& table_name) {
  const int64_t n = field.n();
  if (config.core < 1 || n % config.core != 0) {
    return Status::InvalidArgument(
        "field resolution must be a multiple of the cube core edge");
  }
  const int64_t cubes_per_axis = n / config.core;
  const int64_t edge = config.edge();
  const int comps = config.components();

  // Choose the column type by blob size: blobs that fit a page stay on-page
  // (VARBINARY(n) / short arrays), larger ones go out-of-page.
  const bool small = config.BlobBytes() <= 8000 && edge <= 32767;
  std::vector<storage::ColumnDef> cols;
  cols.push_back({"id", storage::ColumnType::kInt64, 0});
  if (small) {
    cols.push_back({"v", storage::ColumnType::kBinary,
                    static_cast<int32_t>(config.BlobBytes())});
  } else {
    cols.push_back({"v", storage::ColumnType::kVarBinaryMax, 0});
  }
  SQLARRAY_ASSIGN_OR_RETURN(storage::Schema schema,
                            storage::Schema::Create(std::move(cols)));
  SQLARRAY_ASSIGN_OR_RETURN(storage::Table * table,
                            db->CreateTable(table_name, std::move(schema)));

  // Build cubes in Morton order so ids ascend: the clustered inserts append
  // and spatially adjacent cubes land on adjacent pages — the paper's
  // "appropriately clustered along a space filling curve".
  std::vector<uint64_t> ids;
  ids.reserve(cubes_per_axis * cubes_per_axis * cubes_per_axis);
  for (int64_t cz = 0; cz < cubes_per_axis; ++cz) {
    for (int64_t cy = 0; cy < cubes_per_axis; ++cy) {
      for (int64_t cx = 0; cx < cubes_per_axis; ++cx) {
        ids.push_back(CubeKey(config, cubes_per_axis,
                              static_cast<uint32_t>(cx),
                              static_cast<uint32_t>(cy),
                              static_cast<uint32_t>(cz)));
      }
    }
  }
  std::sort(ids.begin(), ids.end());

  for (uint64_t id : ids) {
    auto cell = CubeCellOf(config, cubes_per_axis, id);
    const int64_t x0 = cell[0] * config.core - config.overlap;
    const int64_t y0 = cell[1] * config.core - config.overlap;
    const int64_t z0 = cell[2] * config.core - config.overlap;

    SQLARRAY_ASSIGN_OR_RETURN(
        OwnedArray blob,
        OwnedArray::Zeros(DType::kFloat32, {comps, edge, edge, edge},
                          small ? StorageClass::kShort : StorageClass::kMax));
    auto data = blob.MutableData<float>().value();
    // Column-major [component, x, y, z]: component varies fastest so one
    // voxel's samples are contiguous.
    int64_t idx = 0;
    for (int64_t z = 0; z < edge; ++z) {
      for (int64_t y = 0; y < edge; ++y) {
        for (int64_t x = 0; x < edge; ++x) {
          FlowSample s = field.Evaluate(static_cast<double>(x0 + x),
                                        static_cast<double>(y0 + y),
                                        static_cast<double>(z0 + z));
          for (int c = 0; c < comps; ++c) {
            data[idx++] = static_cast<float>(s.component(c));
          }
        }
      }
    }

    storage::Row row;
    row.push_back(static_cast<int64_t>(id));
    auto bytes = blob.blob();
    row.push_back(std::vector<uint8_t>(bytes.begin(), bytes.end()));
    SQLARRAY_RETURN_IF_ERROR(table->Insert(std::move(row)));
  }
  return table;
}

uint64_t CubeIdOf(const PartitionConfig& config, int64_t n, double x,
                  double y, double z) {
  int64_t cubes = n / config.core;
  auto cube = [&](double p) -> uint32_t {
    int64_t cell = static_cast<int64_t>(std::floor(p / config.core));
    cell %= cubes;
    if (cell < 0) cell += cubes;
    return static_cast<uint32_t>(cell);
  };
  return CubeKey(config, cubes, cube(x), cube(y), cube(z));
}

std::array<int64_t, 3> CubeCellForId(const PartitionConfig& config, int64_t n,
                                     uint64_t id) {
  auto cell = CubeCellOf(config, n / config.core, id);
  return {static_cast<int64_t>(cell[0]), static_cast<int64_t>(cell[1]),
          static_cast<int64_t>(cell[2])};
}

}  // namespace sqlarray::turbulence
