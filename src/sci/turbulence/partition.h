// Blob partitioning of velocity-field snapshots (Sec. 2.1).
//
// "The data is partitioned along a space filling curve (z-index) into cubes
// of (64+8)^3. The +8 means that each cube contains an extra 8 voxel wide
// buffer so that particles on the edge of the original cube still have their
// neighbors within 4 voxels in the same blob. Each blob is ... stored in a
// separate row."
//
// PartitionConfig generalizes the cube edge and overlap so the C1 experiment
// can sweep blob sizes; LoadIntoTable materializes the blobs into a database
// table keyed by the cube's Morton (z-order) index.
#pragma once

#include <array>
#include <string>

#include "common/status.h"
#include "sci/turbulence/field.h"
#include "storage/table.h"

namespace sqlarray::turbulence {

/// Cube key orderings for the clustered index.
enum class CubeOrder {
  kMorton,    ///< z-order curve: spatially adjacent cubes get nearby keys
  kRowMajor,  ///< cx + n*(cy + n*cz): adjacent keys share only an x edge
};

/// Blob layout parameters.
struct PartitionConfig {
  int64_t core = 16;     ///< cube core edge (64 in the paper)
  int64_t overlap = 4;   ///< one-sided buffer width (8 in the paper)
  /// Store (u, v, w, p) per voxel when true, velocity only when false.
  bool with_pressure = true;
  /// Key ordering of the blob rows — the Sec. 2.1 space-filling-curve
  /// clustering is kMorton; kRowMajor is the ablation baseline.
  CubeOrder order = CubeOrder::kMorton;

  int64_t edge() const { return core + 2 * overlap; }
  int components() const { return with_pressure ? 4 : 3; }
  /// Bytes per blob (float32 voxels + max-array header).
  int64_t BlobBytes() const;
};

/// Partitions a synthetic field into blob rows:
///   id BIGINT      — Morton code of the cube
///   v  VARBINARY   — float32 array [components, edge, edge, edge],
///                    column-major, short class when it fits a page.
/// The field resolution must be a multiple of `core`.
Result<storage::Table*> LoadIntoTable(const SyntheticField& field,
                                      const PartitionConfig& config,
                                      storage::Database* db,
                                      const std::string& table_name);

/// Maps a point (grid units, periodic) to the key of the cube whose CORE
/// contains it (under the configured ordering).
uint64_t CubeIdOf(const PartitionConfig& config, int64_t n, double x,
                  double y, double z);

/// Inverse of CubeIdOf: the cube cell coordinates of a row key.
std::array<int64_t, 3> CubeCellForId(const PartitionConfig& config, int64_t n,
                                     uint64_t id);

}  // namespace sqlarray::turbulence
