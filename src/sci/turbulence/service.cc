#include "sci/turbulence/service.h"

#include <cmath>

#include "core/ops.h"
#include "core/stream_ops.h"
#include "spatial/zorder.h"
#include "storage/blob.h"

namespace sqlarray::turbulence {

namespace {

/// Wraps a real position into [0, n).
double WrapPos(double x, int64_t n) {
  double nn = static_cast<double>(n);
  double w = std::fmod(x, nn);
  return w < 0 ? w + nn : w;
}

int64_t WrapIdx(int64_t i, int64_t n) {
  int64_t m = i % n;
  return m < 0 ? m + n : m;
}

}  // namespace

Result<OwnedArray> InterpolationService::FetchStencil(
    double x, double y, double z, int width,
    std::array<int64_t, 3>* origin) {
  x = WrapPos(x, n_);
  y = WrapPos(y, n_);
  z = WrapPos(z, n_);
  const int64_t core = config_.core;
  const int64_t edge = config_.edge();
  const int comps = config_.components();
  const uint64_t id = CubeIdOf(config_, n_, x, y, z);
  auto cell = CubeCellForId(config_, n_, id);

  // Local (in-blob) coordinates; the particle lies in the cube's core so
  // each local coordinate is in [overlap, core + overlap).
  const double lx = x - static_cast<double>(cell[0]) * core + config_.overlap;
  const double ly = y - static_cast<double>(cell[1]) * core + config_.overlap;
  const double lz = z - static_cast<double>(cell[2]) * core + config_.overlap;

  const int lo = width <= 1 ? 0 : -(width / 2 - 1);
  std::array<int64_t, 3> start;
  if (width == 1) {
    start = {static_cast<int64_t>(std::llround(lx)),
             static_cast<int64_t>(std::llround(ly)),
             static_cast<int64_t>(std::llround(lz))};
  } else {
    start = {static_cast<int64_t>(std::floor(lx)) + lo,
             static_cast<int64_t>(std::floor(ly)) + lo,
             static_cast<int64_t>(std::floor(lz)) + lo};
  }

  const bool fits = start[0] >= 0 && start[1] >= 0 && start[2] >= 0 &&
                    start[0] + width <= edge && start[1] + width <= edge &&
                    start[2] + width <= edge;

  // Blob-local origin in GLOBAL grid coordinates (unwrapped).
  (*origin) = {static_cast<int64_t>(cell[0]) * core - config_.overlap +
                   start[0],
               static_cast<int64_t>(cell[1]) * core - config_.overlap +
                   start[1],
               static_cast<int64_t>(cell[2]) * core - config_.overlap +
                   start[2]};

  if (fits) {
    SQLARRAY_ASSIGN_OR_RETURN(std::optional<storage::Row> row,
                              table_->Lookup(static_cast<int64_t>(id)));
    if (!row.has_value()) {
      return Status::NotFound("blob row missing for cube " +
                              std::to_string(id));
    }
    const Dims offset{0, start[0], start[1], start[2]};
    const Dims sizes{comps, width, width, width};
    OwnedArray block;
    if (auto* blob_id = std::get_if<storage::BlobId>(&(*row)[1])) {
      // Out-of-page blob: stream exactly the stencil's byte ranges.
      SQLARRAY_ASSIGN_OR_RETURN(
          storage::BlobStream stream,
          storage::BlobStream::Open(db_->buffer_pool(), *blob_id));
      SQLARRAY_ASSIGN_OR_RETURN(
          block, StreamSubarray(&stream, offset, sizes, /*collapse=*/false));
    } else {
      // On-page blob: the whole row is already in memory; subset it.
      const auto& bytes = std::get<std::vector<uint8_t>>((*row)[1]);
      SQLARRAY_ASSIGN_OR_RETURN(ArrayRef ref, ArrayRef::Parse(bytes));
      SQLARRAY_ASSIGN_OR_RETURN(
          block, Subarray(ref, offset, sizes, /*collapse=*/false));
    }
    stats_.blob_bytes_read += block.header().blob_size();
    return block;
  }

  // Stencil escapes the buffered blob (overlap too small for the scheme):
  // assemble voxel by voxel across neighboring cubes. Correct but slow —
  // exactly the case the paper's +8 buffer is designed to avoid.
  stats_.fallback_full_reads++;
  SQLARRAY_ASSIGN_OR_RETURN(
      OwnedArray block,
      OwnedArray::Zeros(DType::kFloat32, {comps, width, width, width}));
  auto out = block.MutableData<float>().value();
  int64_t idx = 0;
  for (int64_t dz = 0; dz < width; ++dz) {
    for (int64_t dy = 0; dy < width; ++dy) {
      for (int64_t dx = 0; dx < width; ++dx) {
        int64_t gx = WrapIdx((*origin)[0] + dx, n_);
        int64_t gy = WrapIdx((*origin)[1] + dy, n_);
        int64_t gz = WrapIdx((*origin)[2] + dz, n_);
        uint64_t cid = CubeIdOf(config_, n_, static_cast<double>(gx),
                                static_cast<double>(gy),
                                static_cast<double>(gz));
        auto ccell = CubeCellForId(config_, n_, cid);
        Dims local{0, gx - static_cast<int64_t>(ccell[0]) * core +
                          config_.overlap,
                   gy - static_cast<int64_t>(ccell[1]) * core +
                       config_.overlap,
                   gz - static_cast<int64_t>(ccell[2]) * core +
                       config_.overlap};
        SQLARRAY_ASSIGN_OR_RETURN(std::optional<storage::Row> row,
                                  table_->Lookup(static_cast<int64_t>(cid)));
        if (!row.has_value()) {
          return Status::NotFound("blob row missing during fallback");
        }
        for (int c = 0; c < comps; ++c) {
          local[0] = c;
          double v;
          if (auto* blob_id = std::get_if<storage::BlobId>(&(*row)[1])) {
            SQLARRAY_ASSIGN_OR_RETURN(
                storage::BlobStream stream,
                storage::BlobStream::Open(db_->buffer_pool(), *blob_id));
            SQLARRAY_ASSIGN_OR_RETURN(v, StreamItem(&stream, local));
          } else {
            const auto& bytes = std::get<std::vector<uint8_t>>((*row)[1]);
            SQLARRAY_ASSIGN_OR_RETURN(ArrayRef ref, ArrayRef::Parse(bytes));
            SQLARRAY_ASSIGN_OR_RETURN(v, ref.GetDoubleAt(local));
          }
          out[idx * comps + c] = static_cast<float>(v);
        }
        ++idx;
      }
    }
  }
  return block;
}

Result<VelocitySample> InterpolationService::Sample(
    double x, double y, double z, math::InterpScheme scheme) {
  if (scheme == math::InterpScheme::kPchip) {
    return Status::InvalidArgument(
        "PCHIP interpolation is one-dimensional; use a Lagrangian scheme");
  }
  const int width = math::StencilWidth(scheme);
  std::array<int64_t, 3> origin;
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray block,
                            FetchStencil(x, y, z, width, &origin));
  auto data = block.ref().Data<float>().value();
  const int comps = config_.components();

  double wx[8], wy[8], wz[8];
  if (width == 1) {
    wx[0] = wy[0] = wz[0] = 1.0;
  } else {
    double fx = WrapPos(x, n_), fy = WrapPos(y, n_), fz = WrapPos(z, n_);
    SQLARRAY_RETURN_IF_ERROR(math::LagrangeWeights(
        width, fx - std::floor(fx), std::span<double>(wx, 8)));
    SQLARRAY_RETURN_IF_ERROR(math::LagrangeWeights(
        width, fy - std::floor(fy), std::span<double>(wy, 8)));
    SQLARRAY_RETURN_IF_ERROR(math::LagrangeWeights(
        width, fz - std::floor(fz), std::span<double>(wz, 8)));
  }

  VelocitySample out;
  int64_t idx = 0;
  for (int k = 0; k < width; ++k) {
    for (int j = 0; j < width; ++j) {
      double wyz = wy[j] * wz[k];
      for (int i = 0; i < width; ++i) {
        double w = wx[i] * wyz;
        out.u += w * data[idx * comps + 0];
        out.v += w * data[idx * comps + 1];
        out.w += w * data[idx * comps + 2];
        ++idx;
      }
    }
  }
  stats_.particles++;
  return out;
}

Result<std::vector<VelocitySample>> InterpolationService::SampleBatch(
    std::span<const std::array<double, 3>> positions,
    math::InterpScheme scheme) {
  storage::IoStats before = db_->disk()->stats();
  std::vector<VelocitySample> out;
  out.reserve(positions.size());
  for (const auto& p : positions) {
    SQLARRAY_ASSIGN_OR_RETURN(VelocitySample s,
                              Sample(p[0], p[1], p[2], scheme));
    out.push_back(s);
  }
  storage::IoStats delta = db_->disk()->stats() - before;
  stats_.io_bytes_read += delta.bytes_read;
  stats_.io_virtual_seconds += delta.virtual_read_seconds;
  return out;
}

}  // namespace sqlarray::turbulence
