#include "sci/turbulence/field.h"

#include <cmath>
#include <numbers>

namespace sqlarray::turbulence {

SyntheticField::SyntheticField(int64_t n, int num_modes, uint64_t seed)
    : n_(n) {
  Rng rng(seed);
  modes_.reserve(num_modes);
  const double two_pi = 2.0 * std::numbers::pi;
  for (int m = 0; m < num_modes; ++m) {
    // Integer wave vector so the field is exactly periodic on [0, n)^3.
    // Low wavenumbers dominate (energy-containing range).
    std::array<int64_t, 3> ik{};
    do {
      for (int d = 0; d < 3; ++d) ik[d] = rng.UniformInt(-6, 6);
    } while (ik[0] == 0 && ik[1] == 0 && ik[2] == 0);

    Mode mode;
    for (int d = 0; d < 3; ++d) {
      mode.k[d] = two_pi * static_cast<double>(ik[d]) / static_cast<double>(n);
    }
    double kmag = std::sqrt(static_cast<double>(
        ik[0] * ik[0] + ik[1] * ik[1] + ik[2] * ik[2]));

    // Random direction projected onto the plane normal to k => div-free.
    std::array<double, 3> raw{rng.Normal(), rng.Normal(), rng.Normal()};
    double kdotr = 0, k2 = 0;
    for (int d = 0; d < 3; ++d) {
      kdotr += mode.k[d] * raw[d];
      k2 += mode.k[d] * mode.k[d];
    }
    double norm = 0;
    for (int d = 0; d < 3; ++d) {
      mode.a[d] = raw[d] - mode.k[d] * kdotr / k2;
      norm += mode.a[d] * mode.a[d];
    }
    norm = std::sqrt(norm);
    // Kolmogorov-like amplitude: |a| ~ k^(-5/6) (E(k) ~ k^(-5/3)).
    double amp = std::pow(kmag, -5.0 / 6.0);
    if (norm > 0) {
      for (int d = 0; d < 3; ++d) mode.a[d] *= amp / norm;
    }
    mode.phase = rng.Uniform(0, two_pi);
    mode.p_amp = amp * rng.Normal(0, 0.3);
    modes_.push_back(mode);
  }
}

FlowSample SyntheticField::Evaluate(double x, double y, double z) const {
  FlowSample s;
  for (const Mode& m : modes_) {
    double arg = m.k[0] * x + m.k[1] * y + m.k[2] * z + m.phase;
    double c = std::cos(arg);
    s.u += m.a[0] * c;
    s.v += m.a[1] * c;
    s.w += m.a[2] * c;
    s.p += m.p_amp * std::sin(arg);
  }
  return s;
}

}  // namespace sqlarray::turbulence
