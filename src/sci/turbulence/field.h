// Synthetic isotropic turbulence velocity fields (the Sec. 2.1 substitute).
//
// The paper's service hosts snapshots of a 1024^3 Navier–Stokes simulation;
// we synthesize a periodic, divergence-free velocity field as a superposition
// of random solenoidal Fourier modes with a Kolmogorov-like spectrum, plus a
// pressure field. The analytic form is evaluable at ANY point, providing the
// exact ground truth against which grid interpolation error is measured.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace sqlarray::turbulence {

/// Velocity (u, v, w) and pressure at one point.
struct FlowSample {
  double u = 0, v = 0, w = 0, p = 0;

  double component(int c) const {
    switch (c) {
      case 0: return u;
      case 1: return v;
      case 2: return w;
      default: return p;
    }
  }
};

/// A periodic analytic flow field on [0, n)^3 (grid units).
class SyntheticField {
 public:
  /// `n` is the grid resolution per axis; `num_modes` random Fourier modes;
  /// mode amplitudes follow k^(-5/6) so the energy spectrum E(k) ~ k^(-5/3).
  SyntheticField(int64_t n, int num_modes, uint64_t seed);

  int64_t n() const { return n_; }

  /// Exact field value at an arbitrary (periodic) position in grid units.
  FlowSample Evaluate(double x, double y, double z) const;

  /// Field value at a grid vertex (same as Evaluate at integers).
  FlowSample GridSample(int64_t i, int64_t j, int64_t k) const {
    return Evaluate(static_cast<double>(i), static_cast<double>(j),
                    static_cast<double>(k));
  }

 private:
  struct Mode {
    std::array<double, 3> k;    ///< wave vector (radians per grid unit)
    std::array<double, 3> a;    ///< solenoidal amplitude (a . k = 0)
    double phase;
    double p_amp;               ///< pressure amplitude
  };

  int64_t n_;
  std::vector<Mode> modes_;
};

}  // namespace sqlarray::turbulence
