// Flux-conserving resampling onto a common wavelength grid (Sec. 2.2).
//
// "the resampling should be done such a way that the integrated flux in any
// wavelength range remains the same" — the resampler treats each source bin
// as carrying constant flux density between its edges and redistributes that
// density onto the target bins by exact interval overlap, so the integral
// over any union of target bins equals the integral over the same range of
// the source.
#pragma once

#include <vector>

#include "common/status.h"
#include "sci/spectrum/spectrum.h"

namespace sqlarray::spectrum {

/// Builds a log-spaced common grid of `bins` centers covering [lo, hi].
std::vector<double> MakeLogGrid(double lo, double hi, int bins);

/// Resamples `s` onto the target bin centers. Bin edges are taken midway
/// between centers (extended at the ends). Flagged source bins contribute
/// nothing; target bins with no unmasked coverage come back flagged.
/// Errors propagate in quadrature weighted by overlap.
Result<Spectrum> ResampleFluxConserving(const Spectrum& s,
                                        const std::vector<double>& grid);

}  // namespace sqlarray::spectrum
