// Astronomical spectra: the data model and a synthetic generator (Sec. 2.2).
//
// A spectrum is a set of per-bin vectors: wavelength bin edges/centers, flux,
// flux error, and integer flags masking bad measurements. Wavelength scales
// vary from observation to observation (log-linear with per-spectrum offsets
// here), so each spectrum carries its own wavelength vector, exactly as the
// paper requires.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace sqlarray::spectrum {

/// One 1-D spectrum.
struct Spectrum {
  std::vector<double> wavelength;  ///< bin centers, strictly increasing
  std::vector<double> flux;
  std::vector<double> error;
  std::vector<uint8_t> flags;      ///< non-zero = masked (bad) bin
  double redshift = 0;

  size_t size() const { return wavelength.size(); }
};

/// Parameters of the synthetic emission-line spectrum family.
struct SyntheticSpectrumConfig {
  int bins = 256;
  double lambda_min = 3800.0;   ///< rest-frame grid start (Angstrom)
  double lambda_max = 9200.0;
  double continuum_slope = -0.5;
  double noise_sigma = 0.02;
  double flagged_fraction = 0.02;
  double max_redshift = 0.3;
};

/// Draws one synthetic spectrum: a power-law continuum plus a few Gaussian
/// emission lines at rest wavelengths, redshifted, noisy, with random
/// flagged bins and a slightly jittered wavelength grid.
Spectrum MakeSyntheticSpectrum(const SyntheticSpectrumConfig& config,
                               Rng* rng);

/// Integrated flux over [lo, hi] using trapezoidal integration on the
/// spectrum's own grid, skipping flagged bins.
double IntegrateFlux(const Spectrum& s, double lo, double hi);

/// Scales the flux (and error) so the integral over [lo, hi] equals one —
/// the normalization step of the paper's processing list.
Status NormalizeFlux(Spectrum* s, double lo, double hi);

/// Multiplies flux by a wavelength-dependent correction function —
/// "corrections of physical effects require multiplying the flux vector with
/// a number that is a function of the wavelength".
void ApplyCorrection(Spectrum* s, double (*correction)(double lambda));

}  // namespace sqlarray::spectrum
