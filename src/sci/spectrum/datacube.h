// Two- and three-dimensional spectra (Sec. 2.2).
//
// "Two dimensional spectra are measured by using a slit ... Three
// dimensional spectra are measured using so called integral field
// spectrographs ... Higher dimensional spectrum processing would require
// subsetting arrays and summation over certain axes to get, for example,
// the overall spectrum of an object."
//
// A slit spectrum is a [wavelength, position] array; an IFU cube is a
// [wavelength, x, y] array. Both are plain library arrays, so subsetting is
// Subarray and collapsing is AggregateAxis — exactly the generic machinery
// the paper argues for.
#pragma once

#include "common/rng.h"
#include "common/status.h"
#include "core/array.h"
#include "sci/spectrum/spectrum.h"

namespace sqlarray::spectrum {

/// An integral-field data cube: flux[wavelength, x, y] plus a shared
/// wavelength axis (each spatial pixel sees the same grid).
struct Datacube {
  std::vector<double> wavelength;  ///< length nw
  OwnedArray flux;                 ///< float64 [nw, nx, ny], max class
};

/// Synthesizes an IFU observation of a galaxy: continuum + emission lines
/// whose strength falls off with radius from the cube center, plus noise.
Result<Datacube> MakeSyntheticCube(int nw, int nx, int ny, uint64_t seed);

/// Collapses the cube over both spatial axes — the "overall spectrum of an
/// object that was originally observed with an integral field spectrograph".
Result<Spectrum> CollapseToSpectrum(const Datacube& cube);

/// Extracts a single spatial pixel's spectrum (a Subarray + collapse).
Result<Spectrum> ExtractSpaxel(const Datacube& cube, int64_t x, int64_t y);

/// Extracts a pseudo-slit: sums over y only, giving a [wavelength, x] slit
/// spectrum as a rank-2 array.
Result<OwnedArray> ExtractSlit(const Datacube& cube);

}  // namespace sqlarray::spectrum
