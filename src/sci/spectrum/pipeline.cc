#include "sci/spectrum/pipeline.h"

#include <cmath>

#include "core/array.h"
#include "udfs/helpers.h"

namespace sqlarray::spectrum {

namespace {

using engine::Boundary;
using engine::ScalarFunction;
using engine::UdfContext;
using engine::Value;

/// Rebuilds a Spectrum from (wl, flux, flags) array arguments.
Result<Spectrum> SpectrumFromArgs(std::span<const Value> args,
                                  UdfContext& ctx) {
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray wl, udfs::ArrayFromValue(args[0], ctx));
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray flux,
                            udfs::ArrayFromValue(args[1], ctx));
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray flags,
                            udfs::ArrayFromValue(args[2], ctx));
  if (wl.rank() != 1 || flux.rank() != 1 || flags.rank() != 1 ||
      wl.num_elements() != flux.num_elements() ||
      wl.num_elements() != flags.num_elements()) {
    return Status::InvalidArgument(
        "wavelength, flux and flag vectors must share one length");
  }
  Spectrum s;
  const int64_t n = wl.num_elements();
  s.wavelength.resize(n);
  s.flux.resize(n);
  s.error.assign(n, 0.0);
  s.flags.resize(n);
  ArrayRef wr = wl.ref(), fr = flux.ref(), gr = flags.ref();
  for (int64_t i = 0; i < n; ++i) {
    SQLARRAY_ASSIGN_OR_RETURN(s.wavelength[i], wr.GetDouble(i));
    SQLARRAY_ASSIGN_OR_RETURN(s.flux[i], fr.GetDouble(i));
    SQLARRAY_ASSIGN_OR_RETURN(double g, gr.GetDouble(i));
    s.flags[i] = g != 0 ? 1 : 0;
  }
  return s;
}

Result<Value> VectorValue(std::span<const double> v) {
  SQLARRAY_ASSIGN_OR_RETURN(
      OwnedArray out,
      OwnedArray::Zeros(DType::kFloat64, {static_cast<int64_t>(v.size())},
                        StorageClass::kMax));
  auto dst = out.MutableData<double>().value();
  std::copy(v.begin(), v.end(), dst.begin());
  return udfs::ValueFromArray(std::move(out));
}

}  // namespace

Status RegisterSpectrumUdfs(engine::FunctionRegistry* registry) {
  // Spectrum.Resample(wl, flux, flags, lo, hi, bins) -> float64 vector of
  // flux on the common log grid (flagged output bins carry 0).
  ScalarFunction resample;
  resample.schema = "Spectrum";
  resample.name = "Resample";
  resample.arity = 6;
  resample.boundary = Boundary::kClr;
  resample.managed_work_ns = 5000;
  resample.fn = [](std::span<const Value> args,
                   UdfContext& ctx) -> Result<Value> {
    SQLARRAY_ASSIGN_OR_RETURN(Spectrum s, SpectrumFromArgs(args, ctx));
    SQLARRAY_ASSIGN_OR_RETURN(double lo, args[3].AsDouble());
    SQLARRAY_ASSIGN_OR_RETURN(double hi, args[4].AsDouble());
    SQLARRAY_ASSIGN_OR_RETURN(int64_t bins, args[5].AsInt());
    std::vector<double> grid = MakeLogGrid(lo, hi, static_cast<int>(bins));
    SQLARRAY_ASSIGN_OR_RETURN(Spectrum r, ResampleFluxConserving(s, grid));
    return VectorValue(r.flux);
  };
  SQLARRAY_RETURN_IF_ERROR(registry->RegisterScalar(std::move(resample)));

  // Spectrum.Integrate(wl, flux, flags, lo, hi) -> FLOAT.
  ScalarFunction integrate;
  integrate.schema = "Spectrum";
  integrate.name = "Integrate";
  integrate.arity = 5;
  integrate.boundary = Boundary::kClr;
  integrate.managed_work_ns = 3000;
  integrate.fn = [](std::span<const Value> args,
                    UdfContext& ctx) -> Result<Value> {
    SQLARRAY_ASSIGN_OR_RETURN(Spectrum s, SpectrumFromArgs(args, ctx));
    SQLARRAY_ASSIGN_OR_RETURN(double lo, args[3].AsDouble());
    SQLARRAY_ASSIGN_OR_RETURN(double hi, args[4].AsDouble());
    return Value::Double(IntegrateFlux(s, lo, hi));
  };
  SQLARRAY_RETURN_IF_ERROR(registry->RegisterScalar(std::move(integrate)));

  // Spectrum.Normalize(wl, flux, flags, lo, hi) -> normalized flux vector.
  ScalarFunction normalize;
  normalize.schema = "Spectrum";
  normalize.name = "Normalize";
  normalize.arity = 5;
  normalize.boundary = Boundary::kClr;
  normalize.managed_work_ns = 4000;
  normalize.fn = [](std::span<const Value> args,
                    UdfContext& ctx) -> Result<Value> {
    SQLARRAY_ASSIGN_OR_RETURN(Spectrum s, SpectrumFromArgs(args, ctx));
    SQLARRAY_ASSIGN_OR_RETURN(double lo, args[3].AsDouble());
    SQLARRAY_ASSIGN_OR_RETURN(double hi, args[4].AsDouble());
    SQLARRAY_RETURN_IF_ERROR(NormalizeFlux(&s, lo, hi));
    return VectorValue(s.flux);
  };
  return registry->RegisterScalar(std::move(normalize));
}

Result<storage::Table*> LoadSpectraTable(storage::Database* db,
                                         const std::string& table_name,
                                         std::span<const Spectrum> spectra,
                                         int z_bins, double max_z) {
  std::vector<storage::ColumnDef> cols = {
      {"id", storage::ColumnType::kInt64, 0},
      {"z", storage::ColumnType::kFloat64, 0},
      {"zbin", storage::ColumnType::kInt64, 0},
      {"wl", storage::ColumnType::kVarBinaryMax, 0},
      {"flux", storage::ColumnType::kVarBinaryMax, 0},
      {"err", storage::ColumnType::kVarBinaryMax, 0},
      {"flags", storage::ColumnType::kVarBinaryMax, 0},
  };
  SQLARRAY_ASSIGN_OR_RETURN(storage::Schema schema,
                            storage::Schema::Create(std::move(cols)));
  SQLARRAY_ASSIGN_OR_RETURN(storage::Table * table,
                            db->CreateTable(table_name, std::move(schema)));

  auto to_blob = [](std::span<const double> v) -> Result<std::vector<uint8_t>> {
    SQLARRAY_ASSIGN_OR_RETURN(
        OwnedArray a,
        OwnedArray::FromVector<double>(v, StorageClass::kMax));
    return std::move(a).TakeBlob();
  };

  int64_t id = 0;
  for (const Spectrum& s : spectra) {
    int64_t zbin = std::min<int64_t>(
        z_bins - 1,
        static_cast<int64_t>(s.redshift / max_z * z_bins));
    SQLARRAY_ASSIGN_OR_RETURN(std::vector<uint8_t> wl, to_blob(s.wavelength));
    SQLARRAY_ASSIGN_OR_RETURN(std::vector<uint8_t> flux, to_blob(s.flux));
    SQLARRAY_ASSIGN_OR_RETURN(std::vector<uint8_t> err, to_blob(s.error));
    SQLARRAY_ASSIGN_OR_RETURN(
        OwnedArray flag_arr,
        (OwnedArray::FromValues<int8_t>(
            {static_cast<int64_t>(s.flags.size())},
            std::span<const int8_t>(
                reinterpret_cast<const int8_t*>(s.flags.data()),
                s.flags.size()),
            StorageClass::kMax)));

    storage::Row row;
    row.push_back(id++);
    row.push_back(s.redshift);
    row.push_back(zbin);
    row.push_back(std::move(wl));
    row.push_back(std::move(flux));
    row.push_back(std::move(err));
    row.push_back(std::move(flag_arr).TakeBlob());
    SQLARRAY_RETURN_IF_ERROR(table->Insert(std::move(row)));
  }
  return table;
}

Result<std::map<int64_t, std::vector<double>>> CompositeByRedshift(
    sql::Session* session, const std::string& table_name, double grid_lo,
    double grid_hi, int grid_bins) {
  // The whole composite computation is ONE SQL statement: resample every
  // spectrum in the select list, average per redshift bin.
  std::string sqltext =
      "SELECT zbin, FloatArrayMax.AvgVector(Spectrum.Resample(wl, flux, "
      "flags, " +
      std::to_string(grid_lo) + ", " + std::to_string(grid_hi) + ", " +
      std::to_string(grid_bins) + ")) FROM " + table_name + " GROUP BY zbin";
  SQLARRAY_ASSIGN_OR_RETURN(std::vector<engine::ResultSet> results,
                            session->Execute(sqltext));
  if (results.size() != 1) {
    return Status::Internal("composite query produced no result set");
  }

  std::map<int64_t, std::vector<double>> out;
  for (const std::vector<engine::Value>& row : results[0].rows) {
    SQLARRAY_ASSIGN_OR_RETURN(int64_t zbin, row[0].AsInt());
    SQLARRAY_ASSIGN_OR_RETURN(std::vector<uint8_t> blob,
                              row[1].MaterializeBytes());
    SQLARRAY_ASSIGN_OR_RETURN(OwnedArray arr,
                              OwnedArray::FromBlob(std::move(blob)));
    SQLARRAY_ASSIGN_OR_RETURN(std::span<const double> data,
                              arr.ref().Data<double>());
    out[zbin] = std::vector<double>(data.begin(), data.end());
  }
  return out;
}

Result<std::vector<double>> SimilarityIndex::Expand(const Spectrum& s) const {
  SQLARRAY_ASSIGN_OR_RETURN(Spectrum r, ResampleFluxConserving(s, grid_));
  Spectrum norm = r;
  SQLARRAY_RETURN_IF_ERROR(
      NormalizeFlux(&norm, grid_.front(), grid_.back()));
  // Masked expansion: flagged bins get weight zero (dot products would be
  // biased by masked bins; least squares is required — Sec. 2.2).
  std::vector<double> weights(norm.size());
  for (size_t i = 0; i < norm.size(); ++i) {
    weights[i] = norm.flags[i] ? 0.0 : 1.0;
  }
  return math::PcaProjectMasked(model_, norm.flux, weights);
}

Result<SimilarityIndex> SimilarityIndex::Build(
    std::span<const Spectrum> spectra, const std::vector<double>& grid,
    int components) {
  const int64_t n = static_cast<int64_t>(spectra.size());
  const int64_t d = static_cast<int64_t>(grid.size());
  if (n < 2) {
    return Status::InvalidArgument("need at least two spectra to index");
  }

  // Resample + normalize everything onto the common grid.
  math::Matrix samples(n, d);
  std::vector<std::vector<double>> masks(n);
  for (int64_t i = 0; i < n; ++i) {
    SQLARRAY_ASSIGN_OR_RETURN(Spectrum r,
                              ResampleFluxConserving(spectra[i], grid));
    SQLARRAY_RETURN_IF_ERROR(NormalizeFlux(&r, grid.front(), grid.back()));
    masks[i].resize(d);
    for (int64_t j = 0; j < d; ++j) {
      samples.at(i, j) = r.flags[j] ? 0.0 : r.flux[j];
      masks[i][j] = r.flags[j] ? 0.0 : 1.0;
    }
  }

  SQLARRAY_ASSIGN_OR_RETURN(math::PcaModel model,
                            math::PcaFit(samples.view(), components));

  // Expand every spectrum with masked least squares.
  std::vector<double> coeffs(n * components);
  std::vector<double> sample(d);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) sample[j] = samples.at(i, j);
    SQLARRAY_ASSIGN_OR_RETURN(
        std::vector<double> c,
        math::PcaProjectMasked(model, sample, masks[i]));
    std::copy(c.begin(), c.end(), coeffs.begin() + i * components);
  }

  SQLARRAY_ASSIGN_OR_RETURN(spatial::KdTree tree,
                            spatial::KdTree::Build(coeffs, components));
  return SimilarityIndex(std::move(model), std::move(coeffs), components,
                         grid, std::move(tree));
}

Result<std::vector<int64_t>> SimilarityIndex::QuerySimilar(
    const Spectrum& query, int k) const {
  SQLARRAY_ASSIGN_OR_RETURN(std::vector<double> c, Expand(query));
  std::vector<spatial::Neighbor> nn = tree_.Nearest(c, k);
  std::vector<int64_t> ids;
  ids.reserve(nn.size());
  for (const spatial::Neighbor& n : nn) ids.push_back(n.id);
  return ids;
}

}  // namespace sqlarray::spectrum
