// Server-side spectrum processing pipeline (Sec. 2.2).
//
// Spectra live in a database table as array blobs (one row per spectrum,
// separate wavelength/flux/error/flag vectors). Processing runs inside the
// query loop: resampling and integration are UDFs, composite spectra come
// from a GROUP BY with the vector-averaging aggregate, and similar-spectrum
// search goes through a PCA basis + kd-tree over expansion coefficients.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "math/pca.h"
#include "sci/spectrum/resample.h"
#include "spatial/kdtree.h"
#include "sql/session.h"

namespace sqlarray::spectrum {

/// Registers the Spectrum.* UDF schema: Resample, Integrate, Normalize —
/// the "generic resampling and integration functions ... that could run in
/// the query processing loop".
Status RegisterSpectrumUdfs(engine::FunctionRegistry* registry);

/// Loads spectra into a table:
///   id BIGINT, z FLOAT, zbin BIGINT,
///   wl / flux / err VARBINARY(MAX) float64 arrays, flags VARBINARY(MAX)
///   int8 array.
/// `z_bins` controls the redshift binning used for composites.
Result<storage::Table*> LoadSpectraTable(storage::Database* db,
                                         const std::string& table_name,
                                         std::span<const Spectrum> spectra,
                                         int z_bins, double max_z);

/// Composite spectra by redshift bin, computed WITH SQL: resample each
/// spectrum onto a common grid in the select list and average per group
/// with the AvgVector aggregate. Returns zbin -> mean flux vector.
Result<std::map<int64_t, std::vector<double>>> CompositeByRedshift(
    sql::Session* session, const std::string& table_name, double grid_lo,
    double grid_hi, int grid_bins);

/// PCA similarity index over a spectrum set (Sec. 2.2's search recipe:
/// expand on a common basis, kd-tree over the coefficients).
class SimilarityIndex {
 public:
  /// Builds the index: resample + normalize every spectrum onto the grid,
  /// fit a k-component PCA basis, expand each spectrum with MASKED least
  /// squares, and index the coefficients.
  static Result<SimilarityIndex> Build(std::span<const Spectrum> spectra,
                                       const std::vector<double>& grid,
                                       int components);

  /// Expands a query spectrum on the fly and returns the ids of the k most
  /// similar archive spectra.
  Result<std::vector<int64_t>> QuerySimilar(const Spectrum& query,
                                            int k) const;

  /// Expansion coefficients of archive spectrum `id` (test access).
  std::span<const double> coefficients(int64_t id) const {
    return std::span<const double>(coeffs_.data() + id * k_,
                                   static_cast<size_t>(k_));
  }
  const math::PcaModel& model() const { return model_; }

 private:
  SimilarityIndex(math::PcaModel model, std::vector<double> coeffs, int k,
                  std::vector<double> grid, spatial::KdTree tree)
      : model_(std::move(model)), coeffs_(std::move(coeffs)), k_(k),
        grid_(std::move(grid)), tree_(std::move(tree)) {}

  /// Resample + normalize + masked-expand one spectrum.
  Result<std::vector<double>> Expand(const Spectrum& s) const;

  math::PcaModel model_;
  std::vector<double> coeffs_;  ///< n x k row-major
  int k_;
  std::vector<double> grid_;
  spatial::KdTree tree_;
};

}  // namespace sqlarray::spectrum
