#include "sci/spectrum/spectrum.h"

#include <cmath>

namespace sqlarray::spectrum {

namespace {

/// Rest-frame emission lines (Angstrom): roughly [OII], Hbeta, [OIII] x2,
/// Halpha — the usual strong optical lines.
constexpr double kLineCenters[] = {3727.0, 4861.0, 4959.0, 5007.0, 6563.0};
constexpr double kLineWidth = 8.0;

}  // namespace

Spectrum MakeSyntheticSpectrum(const SyntheticSpectrumConfig& config,
                               Rng* rng) {
  Spectrum s;
  s.redshift = rng->Uniform(0.0, config.max_redshift);
  const double zf = 1.0 + s.redshift;

  // Log-linear observed-frame grid with a small per-spectrum offset so no
  // two spectra share a wavelength scale.
  const double jitter = rng->Uniform(0.0, 1.0);
  const double log_lo = std::log(config.lambda_min * zf);
  const double log_hi = std::log(config.lambda_max * zf);
  const double step = (log_hi - log_lo) / config.bins;

  s.wavelength.resize(config.bins);
  s.flux.resize(config.bins);
  s.error.resize(config.bins);
  s.flags.resize(config.bins);

  double continuum_norm = rng->Uniform(0.8, 1.2);
  std::vector<double> line_amp(std::size(kLineCenters));
  for (double& a : line_amp) a = rng->Uniform(0.5, 3.0);

  for (int i = 0; i < config.bins; ++i) {
    double lambda = std::exp(log_lo + (i + jitter) * step);
    s.wavelength[i] = lambda;
    double rest = lambda / zf;
    double f = continuum_norm *
               std::pow(rest / 5000.0, config.continuum_slope);
    for (size_t l = 0; l < std::size(kLineCenters); ++l) {
      double d = (rest - kLineCenters[l]) / kLineWidth;
      f += line_amp[l] * std::exp(-0.5 * d * d);
    }
    double noise = rng->Normal(0.0, config.noise_sigma);
    s.flux[i] = f + noise;
    s.error[i] = config.noise_sigma;
    s.flags[i] = rng->Bernoulli(config.flagged_fraction) ? 1 : 0;
    if (s.flags[i]) s.flux[i] = rng->Normal(0.0, 5.0);  // corrupted bin
  }
  return s;
}

double IntegrateFlux(const Spectrum& s, double lo, double hi) {
  double total = 0;
  for (size_t i = 0; i + 1 < s.size(); ++i) {
    if (s.flags[i] || s.flags[i + 1]) continue;
    double a = std::max(lo, s.wavelength[i]);
    double b = std::min(hi, s.wavelength[i + 1]);
    if (b <= a) continue;
    // Trapezoid clipped to [lo, hi], interpolating the end fluxes.
    double w = s.wavelength[i + 1] - s.wavelength[i];
    double fa = s.flux[i] +
                (s.flux[i + 1] - s.flux[i]) * (a - s.wavelength[i]) / w;
    double fb = s.flux[i] +
                (s.flux[i + 1] - s.flux[i]) * (b - s.wavelength[i]) / w;
    total += 0.5 * (fa + fb) * (b - a);
  }
  return total;
}

Status NormalizeFlux(Spectrum* s, double lo, double hi) {
  double integral = IntegrateFlux(*s, lo, hi);
  if (integral <= 0) {
    return Status::InvalidArgument(
        "cannot normalize: non-positive integrated flux");
  }
  double scale = 1.0 / integral;
  for (size_t i = 0; i < s->size(); ++i) {
    s->flux[i] *= scale;
    s->error[i] *= scale;
  }
  return Status::OK();
}

void ApplyCorrection(Spectrum* s, double (*correction)(double lambda)) {
  for (size_t i = 0; i < s->size(); ++i) {
    double c = correction(s->wavelength[i]);
    s->flux[i] *= c;
    s->error[i] *= std::fabs(c);
  }
}

}  // namespace sqlarray::spectrum
