#include "sci/spectrum/datacube.h"

#include <cmath>

#include "core/ops.h"

namespace sqlarray::spectrum {

Result<Datacube> MakeSyntheticCube(int nw, int nx, int ny, uint64_t seed) {
  if (nw < 8 || nx < 1 || ny < 1) {
    return Status::InvalidArgument("cube must have >= 8 bins and >= 1 pixel");
  }
  Rng rng(seed);
  Datacube cube;
  cube.wavelength.resize(nw);
  const double lo = 4000, hi = 7000;
  for (int w = 0; w < nw; ++w) {
    cube.wavelength[w] = lo + (hi - lo) * (w + 0.5) / nw;
  }

  SQLARRAY_ASSIGN_OR_RETURN(
      cube.flux, OwnedArray::Zeros(DType::kFloat64, {nw, nx, ny},
                                   StorageClass::kMax));
  auto data = cube.flux.MutableData<double>().value();

  const double cx = (nx - 1) / 2.0, cy = (ny - 1) / 2.0;
  const double r0 = std::max(1.0, std::min(nx, ny) / 3.0);
  constexpr double kLines[] = {4861.0, 5007.0, 6563.0};

  int64_t idx = 0;
  // Column-major [w, x, y]: wavelength varies fastest.
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      double r = std::hypot(x - cx, y - cy);
      double brightness = std::exp(-r / r0);
      for (int w = 0; w < nw; ++w) {
        double lambda = cube.wavelength[w];
        double f = 0.3 * brightness;  // continuum
        for (double line : kLines) {
          double d = (lambda - line) / 6.0;
          f += 2.0 * brightness * std::exp(-0.5 * d * d);
        }
        data[idx++] = f + rng.Normal(0, 0.01);
      }
    }
  }
  return cube;
}

Result<Spectrum> CollapseToSpectrum(const Datacube& cube) {
  // Sum over y (axis 2), then over x (what was axis 1): two applications of
  // the generic axis aggregate.
  ArrayRef ref = cube.flux.ref();
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray no_y,
                            AggregateAxis(ref, 2, AggKind::kSum));
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray no_xy,
                            AggregateAxis(no_y.ref(), 1, AggKind::kSum));
  SQLARRAY_ASSIGN_OR_RETURN(std::span<const double> flux,
                            no_xy.ref().Data<double>());

  Spectrum out;
  out.wavelength = cube.wavelength;
  out.flux.assign(flux.begin(), flux.end());
  out.error.assign(flux.size(), 0.0);
  out.flags.assign(flux.size(), 0);
  return out;
}

Result<Spectrum> ExtractSpaxel(const Datacube& cube, int64_t x, int64_t y) {
  ArrayRef ref = cube.flux.ref();
  const Dims& dims = ref.dims();
  // A 1 x 1 spatial subset collapsed to a vector: Subarray with collapse.
  SQLARRAY_ASSIGN_OR_RETURN(
      OwnedArray vec,
      Subarray(ref, Dims{0, x, y}, Dims{dims[0], 1, 1}, /*collapse=*/true));
  SQLARRAY_ASSIGN_OR_RETURN(std::span<const double> flux,
                            vec.ref().Data<double>());
  Spectrum out;
  out.wavelength = cube.wavelength;
  out.flux.assign(flux.begin(), flux.end());
  out.error.assign(flux.size(), 0.0);
  out.flags.assign(flux.size(), 0);
  return out;
}

Result<OwnedArray> ExtractSlit(const Datacube& cube) {
  return AggregateAxis(cube.flux.ref(), 2, AggKind::kSum);
}

}  // namespace sqlarray::spectrum
