#include "sci/spectrum/resample.h"

#include <algorithm>
#include <cmath>

namespace sqlarray::spectrum {

namespace {

/// Bin edges midway between centers, end bins extended symmetrically.
std::vector<double> EdgesOf(const std::vector<double>& centers) {
  const size_t n = centers.size();
  std::vector<double> edges(n + 1);
  for (size_t i = 1; i < n; ++i) {
    edges[i] = 0.5 * (centers[i - 1] + centers[i]);
  }
  edges[0] = centers[0] - (edges[1] - centers[0]);
  edges[n] = centers[n - 1] + (centers[n - 1] - edges[n - 1]);
  return edges;
}

}  // namespace

std::vector<double> MakeLogGrid(double lo, double hi, int bins) {
  std::vector<double> grid(bins);
  double llo = std::log(lo), lhi = std::log(hi);
  for (int i = 0; i < bins; ++i) {
    grid[i] = std::exp(llo + (lhi - llo) * (i + 0.5) / bins);
  }
  return grid;
}

Result<Spectrum> ResampleFluxConserving(const Spectrum& s,
                                        const std::vector<double>& grid) {
  if (s.size() < 2) {
    return Status::InvalidArgument("source spectrum too short to resample");
  }
  if (grid.size() < 2) {
    return Status::InvalidArgument("target grid too short");
  }
  const std::vector<double> src_edges = EdgesOf(s.wavelength);
  const std::vector<double> dst_edges = EdgesOf(grid);

  Spectrum out;
  out.redshift = s.redshift;
  out.wavelength = grid;
  out.flux.assign(grid.size(), 0.0);
  out.error.assign(grid.size(), 0.0);
  out.flags.assign(grid.size(), 0);

  // Sweep source bins once (both edge lists are sorted).
  size_t j = 0;
  std::vector<double> covered(grid.size(), 0.0);
  std::vector<double> var(grid.size(), 0.0);
  for (size_t i = 0; i < s.size(); ++i) {
    if (s.flags[i]) continue;
    double a = src_edges[i], b = src_edges[i + 1];
    if (b <= dst_edges.front() || a >= dst_edges.back()) continue;
    while (j > 0 && dst_edges[j] > a) --j;
    while (j + 1 < dst_edges.size() && dst_edges[j + 1] <= a) ++j;
    for (size_t k = j; k < grid.size(); ++k) {
      double lo = std::max(a, dst_edges[k]);
      double hi = std::min(b, dst_edges[k + 1]);
      if (hi <= lo) {
        if (dst_edges[k] >= b) break;
        continue;
      }
      double overlap = hi - lo;
      out.flux[k] += s.flux[i] * overlap;    // integral contribution
      var[k] += s.error[i] * s.error[i] * overlap * overlap;
      covered[k] += overlap;
    }
  }

  for (size_t k = 0; k < grid.size(); ++k) {
    double width = dst_edges[k + 1] - dst_edges[k];
    // Require most of the bin to be covered by unmasked source data.
    if (covered[k] < 0.5 * width) {
      out.flags[k] = 1;
      out.flux[k] = 0;
      out.error[k] = 0;
      continue;
    }
    // Convert the accumulated integral back to mean flux density over the
    // covered interval — flux is conserved over covered ranges.
    out.flux[k] /= covered[k];
    out.error[k] = std::sqrt(var[k]) / covered[k];
  }
  return out;
}

}  // namespace sqlarray::spectrum
