#include "engine/exec.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/bytes.h"
#include "common/stopwatch.h"
#include "engine/batch.h"
#include "engine/vec_expr.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sqlarray::engine {

Result<Value> ResultSet::ScalarResult() const {
  if (rows.size() != 1 || rows[0].size() != 1) {
    return Status::InvalidArgument("result is not a single scalar");
  }
  return rows[0][0];
}

SubqueryScope::SubqueryScope(Executor* executor, SubqueryFn fn)
    : executor_(executor),
      fn_(std::make_unique<SubqueryFn>(std::move(fn))) {
  executor_->subquery_fn_ = fn_.get();
}

SubqueryScope& SubqueryScope::operator=(SubqueryScope&& o) noexcept {
  Release();
  executor_ = std::exchange(o.executor_, nullptr);
  fn_ = std::move(o.fn_);
  return *this;
}

bool SubqueryScope::active() const {
  return executor_ != nullptr && fn_ != nullptr &&
         executor_->subquery_fn_ == fn_.get();
}

void SubqueryScope::Release() {
  // Only uninstall if the executor still points at THIS scope's function —
  // a scope displaced by a newer install must not tear the newer one down.
  // CAS so a concurrent install from another session cannot be torn down
  // between the check and the clear.
  if (executor_ != nullptr && fn_ != nullptr) {
    const SubqueryFn* expected = fn_.get();
    executor_->subquery_fn_.compare_exchange_strong(expected, nullptr);
  }
  executor_ = nullptr;
  fn_.reset();
}

SubqueryScope Executor::InstallSubqueryRunner(SubqueryFn fn) {
  return SubqueryScope(this, std::move(fn));
}

Result<Value> Executor::EvalStandalone(const Expr& expr,
                                       std::map<std::string, Value>* variables,
                                       QueryStats* stats) {
  EvalContext ctx;
  ctx.variables = variables;
  ctx.udf.pool = db_->buffer_pool();
  ctx.udf.subquery = subquery_fn_;
  ctx.udf.stats = stats;
  ctx.udf.cost = &cost_;
  // Standalone evaluation has no QueryContext; ambient thread limits (the
  // session installs them per statement) keep UDF chains governable.
  ctx.udf.limits = gov::ThreadLimits();
  return Eval(expr, ctx);
}

Status Executor::Bind(Query* q) const {
  if (q->table != nullptr && q->tvf != nullptr) {
    return Status::InvalidArgument("query cannot have two row sources");
  }
  // TVF arguments are standalone expressions (no row context).
  for (ExprPtr& a : q->tvf_args) {
    SQLARRAY_RETURN_IF_ERROR(BindExpr(a.get(), nullptr, registry_));
  }

  auto bind = [&](Expr* e) -> Status {
    if (q->tvf != nullptr) {
      return BindExprToColumns(e, q->tvf->columns, registry_);
    }
    const storage::Schema* schema =
        q->table != nullptr ? &q->table->schema() : nullptr;
    return BindExpr(e, schema, registry_);
  };
  for (SelectItem& item : q->items) {
    if (item.expr != nullptr) {
      SQLARRAY_RETURN_IF_ERROR(bind(item.expr.get()));
    }
    for (ExprPtr& a : item.uda_args) {
      SQLARRAY_RETURN_IF_ERROR(bind(a.get()));
    }
  }
  if (q->where != nullptr) {
    SQLARRAY_RETURN_IF_ERROR(bind(q->where.get()));
  }
  for (ExprPtr& g : q->group_by) {
    SQLARRAY_RETURN_IF_ERROR(bind(g.get()));
  }
  return Status::OK();
}

Result<std::vector<std::vector<Value>>> Executor::MaterializeTvf(
    const Query& q, std::map<std::string, Value>* variables,
    QueryStats* stats) {
  std::vector<Value> args;
  for (const ExprPtr& a : q.tvf_args) {
    SQLARRAY_ASSIGN_OR_RETURN(Value v, EvalStandalone(*a, variables, stats));
    args.push_back(std::move(v));
  }
  UdfContext ctx;
  ctx.pool = db_->buffer_pool();
  ctx.stats = stats;
  ctx.cost = &cost_;
  ctx.subquery = subquery_fn_;
  ctx.limits = gov::ThreadLimits();
  if (ctx.limits != nullptr) {
    SQLARRAY_RETURN_IF_ERROR(ctx.limits->Check());
  }
  SQLARRAY_ASSIGN_OR_RETURN(std::vector<std::vector<Value>> rows,
                            q.tvf->fn(args, ctx));
  if (stats != nullptr) {
    // The hosted TVF streams every produced row across the CLR boundary.
    stats->udf_calls++;
    double charge_ns =
        cost_.clr_call_ns + cost_.tvf_row_ns * static_cast<double>(rows.size());
    stats->ChargeCpuNs(charge_ns);
    if (stats->track_udf_detail) {
      QueryStats::UdfFnStats& d =
          stats->udf_by_fn[q.tvf->schema + "." + q.tvf->name];
      d.calls++;
      d.cpu_ns += charge_ns;
    }
  }
  return rows;
}

namespace {

bool HasAggregates(const Query& q) {
  for (const SelectItem& item : q.items) {
    if (item.agg != SelectItem::AggKind::kNone) return true;
  }
  return false;
}

/// Accumulator for one aggregate within one group.
struct AggState {
  int64_t count = 0;
  double sum = 0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  bool int_only = true;
  int64_t isum = 0;
  // UDA state
  std::unique_ptr<Uda> uda;
  std::vector<uint8_t> uda_state;

  /// Combines a partial accumulator from another scan worker (native
  /// aggregate kinds only; UDAs never take the parallel path).
  void Merge(const AggState& other) {
    count += other.count;
    sum += other.sum;
    isum += other.isum;
    mn = std::min(mn, other.mn);
    mx = std::max(mx, other.mx);
    int_only = int_only && other.int_only;
  }
};

/// Folds one evaluated aggregate argument into the accumulator. Shared by
/// the serial, parallel, and batched paths so accumulation arithmetic (and
/// therefore results) is identical bit for bit across them.
Status AccumulateNative(SelectItem::AggKind agg, const Value& v,
                        AggState* st) {
  if (v.is_null()) return Status::OK();
  if (agg == SelectItem::AggKind::kCount) {
    st->count++;
    return Status::OK();
  }
  SQLARRAY_ASSIGN_OR_RETURN(double d, v.AsDouble());
  if (v.kind() == Value::Kind::kInt64) {
    st->isum += v.AsInt().value();
  } else {
    st->int_only = false;
  }
  st->count++;
  st->sum += d;
  st->mn = std::min(st->mn, d);
  st->mx = std::max(st->mx, d);
  return Status::OK();
}

/// Produces the final output value of a native aggregate. Shared by every
/// aggregation path.
Result<Value> FinishNative(SelectItem::AggKind agg, const AggState& st) {
  switch (agg) {
    case SelectItem::AggKind::kCount:
      return Value::Int(st.count);
    case SelectItem::AggKind::kSum:
      if (st.count == 0) return Value::Null();
      if (st.int_only) return Value::Int(st.isum);
      return Value::Double(st.sum);
    case SelectItem::AggKind::kMin:
      return st.count == 0 ? Value::Null() : Value::Double(st.mn);
    case SelectItem::AggKind::kMax:
      return st.count == 0 ? Value::Null() : Value::Double(st.mx);
    case SelectItem::AggKind::kAvg:
      return st.count == 0
                 ? Value::Null()
                 : Value::Double(st.sum / static_cast<double>(st.count));
    default:
      return Status::Internal("FinishNative on a non-native aggregate");
  }
}

/// True when COUNT takes the bare-increment shortcut (COUNT(*)): no
/// argument evaluation and no native_agg_step charge.
bool IsCountStar(const SelectItem& item) {
  return item.agg == SelectItem::AggKind::kCount &&
         (item.expr == nullptr || item.expr->kind == Expr::Kind::kStar);
}

/// Batch-eligibility for aggregation: table source, ungrouped, native
/// aggregates only. Grouped queries and UDAs keep the row loop (group
/// creation and UDA state marshaling are inherently per-row).
bool CanBatchAggregate(const Query& q) {
  if (q.table == nullptr || !q.group_by.empty()) return false;
  for (const SelectItem& item : q.items) {
    if (item.agg == SelectItem::AggKind::kUda) return false;
  }
  return true;
}

/// Evaluates the WHERE column for a gathered batch and fills `sel` with the
/// indices of surviving rows (SQL truthiness: NULL is false).
Status FilterBatch(const Query& q, BatchContext* bctx,
                   std::vector<Value>* keep_col, std::vector<int32_t>* sel) {
  const int32_t nrows = bctx->batch->size();
  sel->clear();
  bctx->sel = nullptr;
  if (q.where == nullptr) {
    for (int32_t i = 0; i < nrows; ++i) sel->push_back(i);
    return Status::OK();
  }
  SQLARRAY_RETURN_IF_ERROR(EvalBatch(*q.where, *bctx, keep_col));
  for (int32_t i = 0; i < nrows; ++i) {
    const Value& keep = (*keep_col)[i];
    int64_t truthy = 0;
    if (!keep.is_null()) {
      SQLARRAY_ASSIGN_OR_RETURN(truthy, keep.AsInt());
    }
    if (truthy != 0) sel->push_back(i);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Vectorized pipeline glue: per-query compiled programs, scratch registers,
// pipeline counters, and the columnar aggregate bridge.
// ---------------------------------------------------------------------------

// Counters are resolved once per process (GetCounter takes the registry
// mutex); Add is a relaxed atomic, safe from morsel workers.
obs::Counter& VecBatchesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("vec.batches");
  return *c;
}
obs::Counter& VecRowsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter("vec.rows");
  return *c;
}
obs::Counter& VecFallbackRowsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("vec.fallback_rows");
  return *c;
}

/// Per-query compiled columnar programs: one for WHERE, one per select item
/// that the columnar domain covers. Null slots fall back to EvalBatch.
/// Built once per statement and shared read-only across morsel workers
/// (Run writes only the caller's scratch).
struct VecQueryPlan {
  bool any = false;
  bool where_ok = false;
  vec::VecProgram where;
  std::vector<std::unique_ptr<vec::VecProgram>> items;
};

/// Compiles the query's expressions best-effort. In aggregate mode only
/// native aggregate arguments compile (plain items evaluate once per query,
/// COUNT(*) never evaluates); in rows mode every projection item does.
VecQueryPlan BuildVecPlan(const Query& q,
                          const std::map<std::string, Value>* variables,
                          bool rows_mode) {
  VecQueryPlan p;
  if (q.table == nullptr) return p;
  const storage::Schema& schema = q.table->schema();
  if (q.where != nullptr) {
    p.where_ok = vec::VecProgram::Compile(*q.where, schema, variables, &p.where);
    p.any = p.any || p.where_ok;
  }
  p.items.resize(q.items.size());
  for (size_t i = 0; i < q.items.size(); ++i) {
    const SelectItem& item = q.items[i];
    if (item.expr == nullptr) continue;
    const bool wanted =
        rows_mode ? item.agg == SelectItem::AggKind::kNone
                  : (item.agg != SelectItem::AggKind::kNone &&
                     item.agg != SelectItem::AggKind::kUda && !IsCountStar(item));
    if (!wanted) continue;
    auto prog = std::make_unique<vec::VecProgram>();
    if (vec::VecProgram::Compile(*item.expr, schema, variables, prog.get())) {
      p.items[i] = std::move(prog);
      p.any = true;
    }
  }
  return p;
}

/// Register-file heap footprint for budget accounting: every instruction
/// owns one value lane plus a validity bitmap at batch width.
int64_t VecPlanFootprint(const VecQueryPlan& p, int batch_rows) {
  int64_t instrs = p.where_ok ? p.where.num_instrs() : 0;
  for (const auto& prog : p.items) {
    if (prog != nullptr) instrs += prog->num_instrs();
  }
  const int64_t per_reg =
      static_cast<int64_t>(batch_rows) * 8 +
      static_cast<int64_t>(col::ValidityWords(batch_rows)) * 8;
  return instrs * per_reg;
}

/// Per-worker columnar scratch: the shared register file (sized to the
/// largest program that runs in it) and the filter truncation column.
struct VecScratch {
  std::vector<col::ColumnVec> regs;
  col::ColumnVec trunc;
};

/// Folds an evaluated columnar aggregate argument into the live AggState.
/// The fold continues the accumulator's serial chain (seed, fold, copy
/// back), so results are bit-identical to AccumulateNative row by row.
Status VecAccumulateColumn(SelectItem::AggKind agg, const col::ColumnVec& c,
                           AggState* st) {
  if (agg == SelectItem::AggKind::kCount) {
    st->count += col::CountValid(c.valid_words(), c.size());
    return Status::OK();
  }
  col::VecAggState vs;
  vs.count = st->count;
  vs.sum = st->sum;
  vs.mn = st->mn;
  vs.mx = st->mx;
  vs.int_only = st->int_only;
  vs.isum = st->isum;
  SQLARRAY_RETURN_IF_ERROR(
      c.lane() == col::Lane::kI64
          ? col::FoldI64(c.i64(), c.valid_words(), c.size(), &vs)
          : col::FoldF64(c.f64(), c.valid_words(), c.size(), &vs));
  st->count = vs.count;
  st->sum = vs.sum;
  st->mn = vs.mn;
  st->mx = vs.mx;
  st->int_only = vs.int_only;
  st->isum = vs.isum;
  return Status::OK();
}

/// Serializes a grouping key value into a byte string for hashing.
void AppendGroupKey(const Value& v, std::string* out) {
  out->push_back(static_cast<char>(v.kind()));
  switch (v.kind()) {
    case Value::Kind::kInt64: {
      int64_t x = v.AsInt().value();
      out->append(reinterpret_cast<const char*>(&x), 8);
      break;
    }
    case Value::Kind::kFloat64: {
      double x = v.AsDouble().value();
      out->append(reinterpret_cast<const char*>(&x), 8);
      break;
    }
    case Value::Kind::kString:
      out->append(v.AsString().value());
      break;
    case Value::Kind::kBytes: {
      const auto* b = v.AsBytes().value();
      out->append(reinterpret_cast<const char*>(b->data()), b->size());
      break;
    }
    default:
      break;  // NULL and blobs group as one bucket per kind
  }
  out->push_back('\x1f');
}

// ---------------------------------------------------------------------------
// Morsel-path helpers. A morsel is one contiguous leaf-page range from the
// deterministic grid (engine/parallel.h); each helper folds a morsel's rows
// into a private partial result using the same accumulation arithmetic and
// per-row cost charges as the serial loops above, so partials merged in
// morsel-index order reproduce the serial result bit for bit.

/// True if any call node in the tree binds a function matching `pred`.
template <typename Pred>
bool AnyBoundCall(const Expr* e, const Pred& pred) {
  if (e == nullptr) return false;
  if (e->kind == Expr::Kind::kCall && e->bound_fn != nullptr &&
      pred(*e->bound_fn)) {
    return true;
  }
  for (const ExprPtr& a : e->args) {
    if (AnyBoundCall(a.get(), pred)) return true;
  }
  return false;
}

template <typename Pred>
bool QueryHasBoundCall(const Query& q, const Pred& pred) {
  for (const SelectItem& item : q.items) {
    if (AnyBoundCall(item.expr.get(), pred)) return true;
    for (const ExprPtr& a : item.uda_args) {
      if (AnyBoundCall(a.get(), pred)) return true;
    }
  }
  if (AnyBoundCall(q.where.get(), pred)) return true;
  for (const ExprPtr& g : q.group_by) {
    if (AnyBoundCall(g.get(), pred)) return true;
  }
  return false;
}

/// One group's accumulators — shared by the serial GROUP BY loop and the
/// per-morsel partials so both sides use identical state.
struct GroupAcc {
  std::vector<Value> keys;         // evaluated group_by exprs
  std::vector<Value> plain_items;  // first-row values of non-agg items
  std::vector<AggState> aggs;
  bool plain_filled = false;
};

/// The morsel grid and effective worker count for one scan. The grid is a
/// pure function of the table's page count (never of the worker count) so
/// merge order — and therefore float results — cannot depend on the degree
/// of parallelism.
struct MorselPlanInfo {
  std::vector<storage::PageId> pages;
  size_t morsel_pages = 1;
  size_t n_morsels = 0;
  int workers = 1;
};

/// The statement's snapshot, when one is installed (MVCC / AS OF reads).
inline storage::PageSource* SnapOf(QueryContext* qctx) {
  return qctx != nullptr ? qctx->snapshot.get() : nullptr;
}

Result<MorselPlanInfo> PlanMorselScan(const Query& q, int requested_workers,
                                      int64_t min_pages_override,
                                      storage::PageSource* snap) {
  MorselPlanInfo plan;
  SQLARRAY_ASSIGN_OR_RETURN(plan.pages, q.table->CollectLeafPages(snap));
  const int64_t n_pages = static_cast<int64_t>(plan.pages.size());
  plan.morsel_pages = static_cast<size_t>(MorselPages(n_pages));
  plan.n_morsels =
      (plan.pages.size() + plan.morsel_pages - 1) / plan.morsel_pages;
  // A CLR call anywhere in the plan makes rows expensive enough that small
  // page ranges already amortize a worker's fixed setup.
  bool cpu_heavy = QueryHasBoundCall(
      q, [](const ScalarFunction& f) { return f.boundary == Boundary::kClr; });
  int64_t floor = min_pages_override >= 0
                      ? min_pages_override
                      : (cpu_heavy ? kClrPagesPerWorker
                                   : kNativePagesPerWorker);
  plan.workers = EffectiveWorkers(requested_workers, n_pages,
                                  static_cast<int64_t>(plan.n_morsels), floor);
  return plan;
}

/// Pages ahead of the cursor each morsel keeps resident (the ScanChunk
/// readahead hint) so a worker's disk stream stays sequential even when
/// UDFs interleave blob reads on the same thread.
constexpr int kMorselReadahead = 4;

/// Probes the statement's cancellation token (no-op when ungoverned).
inline Status GovCheck(const gov::QueryLimits* limits) {
  return limits != nullptr ? limits->Check() : Status::OK();
}

/// Charges query-private memory growth against the statement budget.
inline Status GovCharge(const gov::QueryLimits* limits, int64_t bytes) {
  return limits != nullptr ? limits->Charge(bytes) : Status::OK();
}

/// Approximate heap footprint of one materialized output row or hash-table
/// group entry (Value headers plus container overhead; blob payloads are
/// charged where they are read).
inline int64_t RowFootprint(size_t n_items) {
  return static_cast<int64_t>(n_items * sizeof(Value)) + 32;
}

void MergeStats(QueryStats* into, const QueryStats& part) {
  into->rows_scanned += part.rows_scanned;
  into->rows_kept += part.rows_kept;
  into->agg_steps += part.agg_steps;
  into->udf_calls += part.udf_calls;
  into->udf_bytes_marshaled += part.udf_bytes_marshaled;
  into->uda_state_bytes += part.uda_state_bytes;
  into->cpu_core_seconds += part.cpu_core_seconds;
  for (const auto& [fn, d] : part.udf_by_fn) {
    QueryStats::UdfFnStats& dst = into->udf_by_fn[fn];
    dst.calls += d.calls;
    dst.bytes += d.bytes;
    dst.cpu_ns += d.cpu_ns;
  }
}

/// Fills `batch` from a scan cursor via CopyRows — one memcpy per
/// leaf-page run instead of a row()/Next() round trip per row. Row bytes,
/// row order, and page-load points are identical to the per-row loop.
template <typename Cursor>
Status FillBatchFromCursor(Cursor& cursor, RowBatch* batch) {
  while (!batch->full() && cursor.valid()) {
    SQLARRAY_ASSIGN_OR_RETURN(
        int32_t got, cursor.CopyRows(batch->capacity() - batch->size(),
                                     batch->AppendSlots()));
    batch->CommitAppend(got);
  }
  return Status::OK();
}

/// Partial result of one morsel of an ungrouped aggregation.
struct AggPartial {
  std::vector<AggState> states;
  std::vector<Value> plain;  // first-surviving-row values of kNone items
  bool plain_filled = false;
  QueryStats stats;
};

/// Folds one morsel's rows into an ungrouped-aggregate partial, honoring
/// the executor's batch setting (the inner loops mirror ExecuteAggregate /
/// ExecuteAggregateBatched exactly).
Status AggregateChunk(const Query& q, const CostModel& cost,
                      std::map<std::string, Value>* variables,
                      storage::BufferPool* pool, int batch_rows,
                      bool udf_detail, const gov::QueryLimits* limits,
                      const VecQueryPlan* vplan,
                      storage::BTree::ChunkCursor cursor, AggPartial* out) {
  const size_t n_items = q.items.size();
  out->states.resize(n_items);
  out->plain.resize(n_items);
  out->stats.track_udf_detail = udf_detail;

  UdfContext udf;
  udf.pool = pool;
  udf.stats = &out->stats;
  udf.cost = &cost;
  udf.limits = limits;

  if (batch_rows > 1) {
    RowBatch batch;
    ByteBufferPool byte_pool;
    EvalArena arena;
    BatchContext bctx;
    bctx.schema = &q.table->schema();
    bctx.batch = &batch;
    bctx.variables = variables;
    bctx.udf = &udf;
    bctx.byte_pool = &byte_pool;
    bctx.arena = &arena;
    std::vector<int32_t> sel;
    std::vector<Value> keep_col, col;
    VecScratch vscratch;
    const int64_t rsz = q.table->schema().row_size();
    // The gather buffer is the batched path's private allocation; so is the
    // columnar register file when a vectorized plan runs.
    SQLARRAY_RETURN_IF_ERROR(
        GovCharge(limits, rsz * static_cast<int64_t>(batch_rows)));
    if (vplan != nullptr) {
      SQLARRAY_RETURN_IF_ERROR(
          GovCharge(limits, VecPlanFootprint(*vplan, batch_rows)));
    }
    while (true) {
      SQLARRAY_RETURN_IF_ERROR(GovCheck(limits));
      batch.Reset(rsz, batch_rows);
      SQLARRAY_RETURN_IF_ERROR(FillBatchFromCursor(cursor, &batch));
      if (batch.size() == 0) break;
      out->stats.rows_scanned += batch.size();
      for (int32_t i = 0; i < batch.size(); ++i) {
        out->stats.ChargeCpuNs(cost.row_scan_ns);
      }
      if (vplan != nullptr) {
        VecBatchesCounter().Add(1);
        VecRowsCounter().Add(batch.size());
      }
      if (vplan != nullptr && vplan->where_ok) {
        SQLARRAY_RETURN_IF_ERROR(vec::VecFilter(vplan->where, batch,
                                                &vscratch.regs, &vscratch.trunc,
                                                &sel));
        bctx.sel = nullptr;
      } else {
        SQLARRAY_RETURN_IF_ERROR(FilterBatch(q, &bctx, &keep_col, &sel));
        if (vplan != nullptr && q.where != nullptr) {
          VecFallbackRowsCounter().Add(batch.size());
        }
      }
      if (sel.empty()) continue;
      out->stats.rows_kept += static_cast<int64_t>(sel.size());
      for (size_t i = 0; i < n_items; ++i) {
        const SelectItem& item = q.items[i];
        AggState& st = out->states[i];
        if (item.agg == SelectItem::AggKind::kNone) {
          if (!out->plain_filled) {
            std::vector<int32_t> first_sel(1, sel[0]);
            bctx.sel = &first_sel;
            SQLARRAY_RETURN_IF_ERROR(EvalBatch(*item.expr, bctx, &col));
            out->plain[i] = std::move(col[0]);
          }
          continue;
        }
        if (IsCountStar(item)) {
          st.count += static_cast<int64_t>(sel.size());
          continue;
        }
        if (vplan != nullptr && vplan->items[i] != nullptr) {
          SQLARRAY_RETURN_IF_ERROR(
              vplan->items[i]->Run(batch, &sel, &vscratch.regs));
          for (size_t k = 0; k < sel.size(); ++k) {
            out->stats.agg_steps++;
            out->stats.ChargeCpuNs(cost.native_agg_step_ns);
          }
          SQLARRAY_RETURN_IF_ERROR(VecAccumulateColumn(
              item.agg, vplan->items[i]->Result(vscratch.regs), &st));
          continue;
        }
        bctx.sel = &sel;
        SQLARRAY_RETURN_IF_ERROR(EvalBatch(*item.expr, bctx, &col));
        if (vplan != nullptr) {
          VecFallbackRowsCounter().Add(static_cast<int64_t>(sel.size()));
        }
        for (const Value& v : col) {
          out->stats.agg_steps++;
          out->stats.ChargeCpuNs(cost.native_agg_step_ns);
          SQLARRAY_RETURN_IF_ERROR(AccumulateNative(item.agg, v, &st));
        }
      }
      out->plain_filled = true;
    }
    return Status::OK();
  }

  EvalContext ctx;
  ctx.schema = &q.table->schema();
  ctx.variables = variables;
  ctx.udf = udf;
  while (cursor.valid()) {
    SQLARRAY_RETURN_IF_ERROR(GovCheck(limits));
    ctx.row = cursor.row().data();
    out->stats.rows_scanned++;
    out->stats.ChargeCpuNs(cost.row_scan_ns);
    bool keep_row = true;
    if (q.where != nullptr) {
      SQLARRAY_ASSIGN_OR_RETURN(Value keep, Eval(*q.where, ctx));
      SQLARRAY_ASSIGN_OR_RETURN(int64_t truthy,
                                keep.is_null() ? Result<int64_t>(int64_t{0})
                                               : keep.AsInt());
      keep_row = truthy != 0;
    }
    if (keep_row) {
      out->stats.rows_kept++;
      for (size_t i = 0; i < n_items; ++i) {
        const SelectItem& item = q.items[i];
        AggState& st = out->states[i];
        if (item.agg == SelectItem::AggKind::kNone) {
          if (!out->plain_filled) {
            SQLARRAY_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, ctx));
            out->plain[i] = std::move(v);
          }
          continue;
        }
        if (IsCountStar(item)) {
          st.count++;
          continue;
        }
        out->stats.agg_steps++;
        out->stats.ChargeCpuNs(cost.native_agg_step_ns);
        SQLARRAY_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, ctx));
        SQLARRAY_RETURN_IF_ERROR(AccumulateNative(item.agg, v, &st));
      }
      out->plain_filled = true;
    }
    SQLARRAY_RETURN_IF_ERROR(cursor.Next());
  }
  return Status::OK();
}

/// Folds one morsel's rows into a partial GROUP BY hash table. Always
/// row-at-a-time, like the serial grouped loop (group creation is
/// inherently per-row).
Status GroupByChunk(const Query& q, const CostModel& cost,
                    std::map<std::string, Value>* variables,
                    storage::BufferPool* pool,
                    const gov::QueryLimits* limits,
                    storage::BTree::ChunkCursor cursor,
                    std::map<std::string, GroupAcc>* groups,
                    QueryStats* stats) {
  const size_t n_items = q.items.size();
  EvalContext ctx;
  ctx.schema = &q.table->schema();
  ctx.variables = variables;
  ctx.udf.pool = pool;
  ctx.udf.stats = stats;
  ctx.udf.cost = &cost;
  ctx.udf.limits = limits;

  while (cursor.valid()) {
    SQLARRAY_RETURN_IF_ERROR(GovCheck(limits));
    ctx.row = cursor.row().data();
    stats->rows_scanned++;
    stats->ChargeCpuNs(cost.row_scan_ns);

    bool keep_row = true;
    if (q.where != nullptr) {
      SQLARRAY_ASSIGN_OR_RETURN(Value keep, Eval(*q.where, ctx));
      SQLARRAY_ASSIGN_OR_RETURN(int64_t truthy,
                                keep.is_null() ? Result<int64_t>(int64_t{0})
                                               : keep.AsInt());
      keep_row = truthy != 0;
    }
    if (keep_row) {
      stats->rows_kept++;
      std::string key;
      std::vector<Value> key_vals;
      for (const ExprPtr& g : q.group_by) {
        SQLARRAY_ASSIGN_OR_RETURN(Value v, Eval(*g, ctx));
        AppendGroupKey(v, &key);
        key_vals.push_back(std::move(v));
      }
      GroupAcc& group = (*groups)[key];
      if (group.aggs.empty()) {
        // The hash table is where grouped aggregation's memory actually
        // grows: charge each fresh group's key + accumulator footprint.
        SQLARRAY_RETURN_IF_ERROR(GovCharge(
            limits, static_cast<int64_t>(key.size()) +
                        static_cast<int64_t>(n_items * sizeof(AggState)) +
                        RowFootprint(q.group_by.size())));
        group.keys = std::move(key_vals);
        group.aggs.resize(n_items);
      }
      for (size_t i = 0; i < n_items; ++i) {
        const SelectItem& item = q.items[i];
        AggState& st = group.aggs[i];
        if (item.agg == SelectItem::AggKind::kNone) {
          if (!group.plain_filled) {
            SQLARRAY_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, ctx));
            group.plain_items.resize(n_items);
            group.plain_items[i] = std::move(v);
          }
          continue;
        }
        if (IsCountStar(item)) {
          st.count++;
          continue;
        }
        stats->agg_steps++;
        stats->ChargeCpuNs(cost.native_agg_step_ns);
        SQLARRAY_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, ctx));
        SQLARRAY_RETURN_IF_ERROR(AccumulateNative(item.agg, v, &st));
      }
      group.plain_filled = true;
    }
    SQLARRAY_RETURN_IF_ERROR(cursor.Next());
  }
  return Status::OK();
}

/// Folds one morsel's rows into a row-mode result buffer. TOP caps the
/// buffer at q.top rows (no later morsel can contribute more than that to
/// the output prefix) and keeps the early-exit row loop; otherwise the
/// executor's batch setting applies, mirroring ExecuteRowsBatched.
Status RowsChunk(const Query& q, const CostModel& cost,
                 std::map<std::string, Value>* variables,
                 storage::BufferPool* pool, int batch_rows,
                 const gov::QueryLimits* limits, const VecQueryPlan* vplan,
                 storage::BTree::ChunkCursor cursor,
                 std::vector<std::vector<Value>>* rows, QueryStats* stats) {
  const size_t n_items = q.items.size();
  UdfContext udf;
  udf.pool = pool;
  udf.stats = stats;
  udf.cost = &cost;
  udf.limits = limits;

  if (q.top < 0 && batch_rows > 1) {
    RowBatch batch;
    ByteBufferPool byte_pool;
    EvalArena arena;
    BatchContext bctx;
    bctx.schema = &q.table->schema();
    bctx.batch = &batch;
    bctx.variables = variables;
    bctx.udf = &udf;
    bctx.byte_pool = &byte_pool;
    bctx.arena = &arena;
    std::vector<int32_t> sel;
    std::vector<Value> keep_col;
    VecScratch vscratch;
    const int64_t rsz = q.table->schema().row_size();
    SQLARRAY_RETURN_IF_ERROR(
        GovCharge(limits, rsz * static_cast<int64_t>(batch_rows)));
    if (vplan != nullptr) {
      SQLARRAY_RETURN_IF_ERROR(
          GovCharge(limits, VecPlanFootprint(*vplan, batch_rows)));
    }
    while (true) {
      SQLARRAY_RETURN_IF_ERROR(GovCheck(limits));
      batch.Reset(rsz, batch_rows);
      SQLARRAY_RETURN_IF_ERROR(FillBatchFromCursor(cursor, &batch));
      if (batch.size() == 0) break;
      stats->rows_scanned += batch.size();
      for (int32_t i = 0; i < batch.size(); ++i) {
        stats->ChargeCpuNs(cost.row_scan_ns);
      }
      if (vplan != nullptr) {
        VecBatchesCounter().Add(1);
        VecRowsCounter().Add(batch.size());
      }
      if (vplan != nullptr && vplan->where_ok) {
        SQLARRAY_RETURN_IF_ERROR(vec::VecFilter(vplan->where, batch,
                                                &vscratch.regs, &vscratch.trunc,
                                                &sel));
        bctx.sel = nullptr;
      } else {
        SQLARRAY_RETURN_IF_ERROR(FilterBatch(q, &bctx, &keep_col, &sel));
        if (vplan != nullptr && q.where != nullptr) {
          VecFallbackRowsCounter().Add(batch.size());
        }
      }
      if (sel.empty()) continue;
      stats->rows_kept += static_cast<int64_t>(sel.size());
      bctx.sel = &sel;
      ColumnGuard guard(&arena);
      std::vector<std::vector<Value>*> cols;
      cols.reserve(n_items);
      for (size_t i = 0; i < n_items; ++i) {
        cols.push_back(guard.Borrow());
        if (vplan != nullptr && vplan->items[i] != nullptr) {
          SQLARRAY_RETURN_IF_ERROR(
              vplan->items[i]->Run(batch, &sel, &vscratch.regs));
          vec::ColumnToValues(vplan->items[i]->Result(vscratch.regs), cols[i]);
          continue;
        }
        SQLARRAY_RETURN_IF_ERROR(EvalBatch(*q.items[i].expr, bctx, cols[i]));
        if (vplan != nullptr) {
          VecFallbackRowsCounter().Add(static_cast<int64_t>(sel.size()));
        }
      }
      SQLARRAY_RETURN_IF_ERROR(GovCharge(
          limits,
          static_cast<int64_t>(sel.size()) * RowFootprint(n_items)));
      for (size_t k = 0; k < sel.size(); ++k) {
        std::vector<Value> row;
        row.reserve(n_items);
        for (size_t i = 0; i < n_items; ++i) {
          row.push_back(std::move((*cols[i])[k]));
        }
        rows->push_back(std::move(row));
      }
    }
    return Status::OK();
  }

  EvalContext ctx;
  ctx.schema = &q.table->schema();
  ctx.variables = variables;
  ctx.udf = udf;
  while (cursor.valid()) {
    SQLARRAY_RETURN_IF_ERROR(GovCheck(limits));
    if (q.top >= 0 && static_cast<int64_t>(rows->size()) >= q.top) break;
    ctx.row = cursor.row().data();
    stats->rows_scanned++;
    stats->ChargeCpuNs(cost.row_scan_ns);

    bool keep_row = true;
    if (q.where != nullptr) {
      SQLARRAY_ASSIGN_OR_RETURN(Value keep, Eval(*q.where, ctx));
      SQLARRAY_ASSIGN_OR_RETURN(int64_t truthy,
                                keep.is_null() ? Result<int64_t>(int64_t{0})
                                               : keep.AsInt());
      keep_row = truthy != 0;
    }
    if (keep_row) {
      stats->rows_kept++;
      SQLARRAY_RETURN_IF_ERROR(GovCharge(limits, RowFootprint(n_items)));
      std::vector<Value> row;
      row.reserve(n_items);
      for (const SelectItem& item : q.items) {
        SQLARRAY_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, ctx));
        row.push_back(std::move(v));
      }
      rows->push_back(std::move(row));
    }
    SQLARRAY_RETURN_IF_ERROR(cursor.Next());
  }
  return Status::OK();
}

}  // namespace

Result<ResultSet> Executor::Execute(const Query& q,
                                    std::map<std::string, Value>* variables) {
  return Execute(q, variables, nullptr);
}

Result<ResultSet> Executor::Execute(const Query& q,
                                    std::map<std::string, Value>* variables,
                                    QueryContext* qctx) {
  if (qctx == nullptr) return ExecuteInternal(q, variables, nullptr);
  // Bind the statement's serial lane for the whole execution; morsel bodies
  // rebind their worker thread to per-morsel lanes underneath this.
  obs::ScopedTrace serial_lane(&qctx->trace, obs::kSerialLane);
  SQLARRAY_SPAN("exec.query");
  storage::BufferPool::Stats pool_before = db_->buffer_pool()->Snapshot();
  obs::MetricsSnapshot metrics_before;
  if (qctx->collect_profile) {
    metrics_before = obs::MetricsRegistry::Global().Snapshot();
  }
  SQLARRAY_ASSIGN_OR_RETURN(ResultSet rs,
                            ExecuteInternal(q, variables, qctx));
  qctx->stats = rs.stats;
  if (qctx->collect_profile) {
    BuildProfile(q, rs, pool_before, metrics_before, variables, qctx);
  }
  return rs;
}

Result<ResultSet> Executor::ExecuteInternal(
    const Query& q, std::map<std::string, Value>* variables,
    QueryContext* qctx) {
  if (q.table == nullptr && q.tvf == nullptr) {
    // FROM-less SELECT: evaluate each item once.
    ResultSet rs;
    rs.stats.track_udf_detail = qctx != nullptr && qctx->collect_profile;
    SQLARRAY_SPAN("exec.eval");
    std::vector<Value> row;
    for (const SelectItem& item : q.items) {
      if (item.agg != SelectItem::AggKind::kNone) {
        return Status::InvalidArgument("aggregate without a FROM clause");
      }
      SQLARRAY_ASSIGN_OR_RETURN(
          Value v, EvalStandalone(*item.expr, variables, &rs.stats));
      row.push_back(std::move(v));
      rs.columns.push_back(item.label);
    }
    rs.rows.push_back(std::move(row));
    return rs;
  }
  if (HasAggregates(q) || !q.group_by.empty()) {
    if (parallel_mode_ == ParallelMode::kStaticChunkLegacy) {
      // The pre-morsel plan shape: ungrouped all-native aggregates only.
      // Snapshot reads bypass it (its private per-worker pools would read
      // the live disk, not the versioned view) and fall through to the
      // serial path, which honors the snapshot.
      bool parallel_ok = scan_workers_ > 1 && q.group_by.empty() &&
                         MorselEligible(q) && SnapOf(qctx) == nullptr;
      for (const SelectItem& item : q.items) {
        parallel_ok = parallel_ok && item.agg != SelectItem::AggKind::kUda &&
                      item.agg != SelectItem::AggKind::kNone;
      }
      if (parallel_ok) return ExecuteAggregateStaticChunk(q, variables);
      return ExecuteAggregate(q, variables, qctx);
    }
    // Eligible aggregations always take the morsel plan — at 1 worker it
    // runs inline, so results are bit-identical at every worker count.
    if (MorselEligible(q)) {
      if (q.group_by.empty()) {
        return ExecuteAggregateMorsel(q, variables, qctx);
      }
      return ExecuteGroupByMorsel(q, variables, qctx);
    }
    return ExecuteAggregate(q, variables, qctx);
  }
  if (parallel_mode_ == ParallelMode::kMorsel && MorselEligible(q)) {
    return ExecuteRowsMorsel(q, variables, qctx);
  }
  return ExecuteRows(q, variables, qctx);
}

void Executor::BuildProfile(const Query& q, const ResultSet& rs,
                            const storage::BufferPool::Stats& pool_before,
                            const obs::MetricsSnapshot& metrics_before,
                            std::map<std::string, Value>* variables,
                            QueryContext* qctx) {
  const QueryStats& stats = rs.stats;
  obs::MetricsSnapshot now = obs::MetricsRegistry::Global().Snapshot();
  storage::BufferPool::Stats pool_now = db_->buffer_pool()->Snapshot();

  // The plan label is derived from the query shape alone — never from which
  // code path happened to run — so the tree is identical at every worker
  // count and batch size.
  const bool from_less = q.table == nullptr && q.tvf == nullptr;
  const bool has_agg = HasAggregates(q) || !q.group_by.empty();
  const char* plan = from_less ? "values"
                     : has_agg
                         ? (q.group_by.empty() ? "aggregate" : "group-by")
                         : "project";

  obs::ProfileNode* root = qctx->profile.mutable_root();
  root->op = "select";
  root->detail = plan;
  root->counters.rows_out = static_cast<int64_t>(rs.rows.size());
  root->counters.udf_calls = stats.udf_calls;
  root->counters.udf_bytes = stats.udf_bytes_marshaled;
  root->counters.kernel_dispatches =
      now.Delta(metrics_before, "core.dispatch.kernel");
  root->counters.boxed_dispatches =
      now.Delta(metrics_before, "core.dispatch.boxed");
  root->counters.modeled_seconds = stats.ModeledSeconds(cost_);
  root->counters.wall_seconds = stats.wall_seconds;

  // Per-operator vectorized-vs-row mode, re-derived from the dispatch rules
  // and a compile probe — a pure function of the query shape, the bound
  // variables, and executor settings, so the tree stays deterministic at
  // every worker count. An operator reads "vectorized" when the batched
  // branch runs AND its expression compiles to a columnar program.
  bool batched_eval = vectorized_ && batch_rows_ > 1 && q.table != nullptr;
  if (has_agg) {
    batched_eval = batched_eval && q.group_by.empty() && CanBatchAggregate(q);
    if (parallel_mode_ == ParallelMode::kStaticChunkLegacy) {
      // The legacy static-chunk plan captures eligible ungrouped all-native
      // aggregations ahead of the batched path and stays row-mode.
      bool legacy_ok =
          scan_workers_ > 1 && q.group_by.empty() && MorselEligible(q);
      for (const SelectItem& item : q.items) {
        legacy_ok = legacy_ok && item.agg != SelectItem::AggKind::kUda &&
                    item.agg != SelectItem::AggKind::kNone;
      }
      batched_eval = batched_eval && !legacy_ok;
    }
  } else {
    batched_eval = batched_eval && q.top < 0;
  }

  obs::ProfileNode* parent = root;
  if (!from_less) {
    if (has_agg) {
      bool vec_agg = false;
      if (batched_eval) {
        vec::VecProgram probe;
        for (const SelectItem& item : q.items) {
          if (item.agg == SelectItem::AggKind::kNone ||
              item.agg == SelectItem::AggKind::kUda || IsCountStar(item) ||
              item.expr == nullptr) {
            continue;
          }
          if (vec::VecProgram::Compile(*item.expr, q.table->schema(),
                                       variables, &probe)) {
            vec_agg = true;
            break;
          }
        }
      }
      obs::ProfileNode* agg =
          parent->AddChild(q.group_by.empty() ? "aggregate" : "group-by",
                           vec_agg ? "vectorized" : "row");
      agg->counters.rows_in = stats.rows_kept;
      agg->counters.rows_out = static_cast<int64_t>(rs.rows.size());
      agg->counters.modeled_seconds = static_cast<double>(stats.agg_steps) *
                                      cost_.native_agg_step_ns * 1e-9;
      agg->counters.wall_seconds =
          static_cast<double>(qctx->trace.TotalWallNs("exec.merge")) * 1e-9;
      parent = agg;
    }
    if (q.where != nullptr) {
      bool vec_filter = false;
      if (batched_eval) {
        vec::VecProgram probe;
        vec_filter = vec::VecProgram::Compile(*q.where, q.table->schema(),
                                              variables, &probe);
      }
      obs::ProfileNode* filter =
          parent->AddChild("filter", vec_filter ? "vectorized" : "row");
      filter->counters.rows_in = stats.rows_scanned;
      filter->counters.rows_out = stats.rows_kept;
      parent = filter;
    }
    obs::ProfileNode* scan = parent->AddChild(
        "scan", q.table != nullptr
                    ? q.table->name()
                    : "tvf " + q.tvf->schema + "." + q.tvf->name);
    scan->counters.rows_out = stats.rows_scanned;
    scan->counters.pages_read = stats.io.pages_read;
    scan->counters.cache_hits = pool_now.hits - pool_before.hits;
    scan->counters.cache_misses = pool_now.misses - pool_before.misses;
    scan->counters.modeled_seconds =
        static_cast<double>(stats.rows_scanned) * cost_.row_scan_ns * 1e-9;
    scan->counters.wall_seconds =
        static_cast<double>(qctx->trace.TotalWallNs("exec.scan") +
                            qctx->trace.TotalWallNs("exec.scan.morsel")) *
        1e-9;
  }

  // UDF boundary attribution: one child of the root per "schema.function",
  // in key order (std::map) so the shape is deterministic.
  for (const auto& [fn, d] : stats.udf_by_fn) {
    obs::ProfileNode* udf = root->AddChild("udf", fn);
    udf->counters.udf_calls = d.calls;
    udf->counters.udf_bytes = d.bytes;
    udf->counters.modeled_seconds = d.cpu_ns * 1e-9;
  }

  // Columnar-pipeline summary: one root child when any vectorized batches
  // ran during this statement (registry deltas, like the dispatch
  // counters). fallback_rows counts per-expression drops to the batched
  // row evaluator, so it can exceed rows when several items fall back.
  const int64_t vec_batches = now.Delta(metrics_before, "vec.batches");
  if (vec_batches > 0) {
    const int64_t vec_rows = now.Delta(metrics_before, "vec.rows");
    const int64_t vec_fallback = now.Delta(metrics_before, "vec.fallback_rows");
    obs::ProfileNode* vn = root->AddChild(
        "vec", "batches=" + std::to_string(vec_batches) +
                   " fallback_rows=" + std::to_string(vec_fallback));
    vn->counters.rows_in = vec_rows;
    vn->counters.rows_out = vec_rows;
  }
}

bool Executor::MorselEligible(const Query& q) const {
  if (q.table == nullptr) return false;
  for (const SelectItem& item : q.items) {
    // UDA state marshaling is inherently serial (and order-sensitive).
    if (item.agg == SelectItem::AggKind::kUda) return false;
  }
  // Reader-style UDFs re-enter the session through the subquery runner;
  // any query calling one stays on the serial path.
  return !QueryHasBoundCall(
      q, [](const ScalarFunction& f) { return f.needs_subquery; });
}

Result<ResultSet> Executor::ExecuteAggregate(
    const Query& q, std::map<std::string, Value>* variables,
    QueryContext* qctx) {
  if (batch_rows_ > 1 && CanBatchAggregate(q)) {
    return ExecuteAggregateBatched(q, variables, qctx);
  }
  ResultSet rs;
  rs.stats.track_udf_detail = qctx != nullptr && qctx->collect_profile;
  Stopwatch watch;
  SQLARRAY_SPAN("exec.scan");
  storage::IoStats io_before = db_->disk()->stats();

  // Validate: plain items must appear in GROUP BY position-wise (we accept
  // any plain expression and evaluate it per group via the first row seen).
  for (const SelectItem& item : q.items) {
    rs.columns.push_back(item.label);
  }

  const gov::QueryLimits* limits = qctx != nullptr ? &qctx->limits : nullptr;
  EvalContext ctx;
  ctx.schema = q.table != nullptr ? &q.table->schema() : nullptr;
  ctx.variables = variables;
  ctx.udf.pool = db_->buffer_pool();
  ctx.udf.subquery = subquery_fn_;
  ctx.udf.stats = &rs.stats;
  ctx.udf.cost = &cost_;
  ctx.udf.limits = limits;

  std::map<std::string, GroupAcc> groups;
  // Aggregate-free GROUP BY still needs agg slots sized to items.
  const size_t n_items = q.items.size();

  // Row source: clustered index scan or materialized TVF output.
  std::vector<std::vector<Value>> tvf_rows;
  std::optional<storage::BTree::Cursor> cursor;
  size_t tvf_pos = 0;
  bool first_row = true;
  if (q.tvf != nullptr) {
    SQLARRAY_ASSIGN_OR_RETURN(tvf_rows,
                              MaterializeTvf(q, variables, &rs.stats));
  } else {
    SQLARRAY_ASSIGN_OR_RETURN(storage::BTree::Cursor c,
                              q.table->Scan(SnapOf(qctx)));
    cursor = std::move(c);
  }
  auto next_row = [&](EvalContext* c) -> Result<bool> {
    if (q.tvf != nullptr) {
      if (tvf_pos >= tvf_rows.size()) return false;
      c->value_row = &tvf_rows[tvf_pos++];
      return true;
    }
    if (!first_row) SQLARRAY_RETURN_IF_ERROR(cursor->Next());
    first_row = false;
    if (!cursor->valid()) return false;
    c->row = cursor->row().data();
    return true;
  };

  while (true) {
    SQLARRAY_RETURN_IF_ERROR(GovCheck(limits));
    SQLARRAY_ASSIGN_OR_RETURN(bool has_row, next_row(&ctx));
    if (!has_row) break;
    rs.stats.rows_scanned++;
    rs.stats.ChargeCpuNs(cost_.row_scan_ns);

    if (q.where != nullptr) {
      SQLARRAY_ASSIGN_OR_RETURN(Value keep, Eval(*q.where, ctx));
      SQLARRAY_ASSIGN_OR_RETURN(int64_t truthy,
                                keep.is_null() ? Result<int64_t>(int64_t{0})
                                               : keep.AsInt());
      if (truthy == 0) {
        continue;
      }
    }
    rs.stats.rows_kept++;

    // Group key.
    std::string key;
    std::vector<Value> key_vals;
    for (const ExprPtr& g : q.group_by) {
      SQLARRAY_ASSIGN_OR_RETURN(Value v, Eval(*g, ctx));
      AppendGroupKey(v, &key);
      key_vals.push_back(std::move(v));
    }
    GroupAcc& group = groups[key];
    if (group.aggs.empty()) {
      SQLARRAY_RETURN_IF_ERROR(GovCharge(
          limits, static_cast<int64_t>(key.size()) +
                      static_cast<int64_t>(n_items * sizeof(AggState)) +
                      RowFootprint(q.group_by.size())));
      group.keys = std::move(key_vals);
      group.aggs.resize(n_items);
    }

    for (size_t i = 0; i < n_items; ++i) {
      const SelectItem& item = q.items[i];
      AggState& st = group.aggs[i];
      switch (item.agg) {
        case SelectItem::AggKind::kNone: {
          if (!group.plain_filled) {
            SQLARRAY_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, ctx));
            group.plain_items.resize(n_items);
            group.plain_items[i] = std::move(v);
          }
          break;
        }
        case SelectItem::AggKind::kCount: {
          // COUNT(*) is a bare increment folded into the row-scan cost;
          // COUNT(expr) pays the evaluation step.
          if (IsCountStar(item)) {
            st.count++;
            break;
          }
          [[fallthrough]];
        }
        case SelectItem::AggKind::kSum:
        case SelectItem::AggKind::kMin:
        case SelectItem::AggKind::kMax:
        case SelectItem::AggKind::kAvg: {
          rs.stats.agg_steps++;
          rs.stats.ChargeCpuNs(cost_.native_agg_step_ns);
          SQLARRAY_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, ctx));
          SQLARRAY_RETURN_IF_ERROR(AccumulateNative(item.agg, v, &st));
          break;
        }
        case SelectItem::AggKind::kUda: {
          if (st.uda == nullptr) {
            SQLARRAY_ASSIGN_OR_RETURN(
                const UdaFactory* factory,
                registry_->ResolveUda(item.uda_schema, item.uda_name));
            st.uda = (*factory)();
            std::vector<Value> init_args;
            for (const ExprPtr& a : item.uda_args) {
              SQLARRAY_ASSIGN_OR_RETURN(Value v, Eval(*a, ctx));
              init_args.push_back(std::move(v));
            }
            SQLARRAY_ASSIGN_OR_RETURN(st.uda_state,
                                      st.uda->Init(init_args, ctx.udf));
          }
          std::vector<Value> row_args;
          for (const ExprPtr& a : item.uda_args) {
            SQLARRAY_ASSIGN_OR_RETURN(Value v, Eval(*a, ctx));
            row_args.push_back(std::move(v));
          }
          // SQL Server's hosting contract: the state crosses the CLR
          // boundary (deserialize + serialize) on EVERY row (Sec. 4.2).
          int64_t state_bytes = static_cast<int64_t>(st.uda_state.size());
          rs.stats.uda_state_bytes += 2 * state_bytes;
          rs.stats.udf_calls++;
          double uda_charge_ns = cost_.clr_call_ns +
                                 2.0 * cost_.uda_state_byte_ns *
                                     static_cast<double>(state_bytes);
          rs.stats.ChargeCpuNs(uda_charge_ns);
          if (rs.stats.track_udf_detail) {
            QueryStats::UdfFnStats& d =
                rs.stats.udf_by_fn[item.uda_schema + "." + item.uda_name];
            d.calls++;
            d.bytes += 2 * state_bytes;
            d.cpu_ns += uda_charge_ns;
          }
          SQLARRAY_ASSIGN_OR_RETURN(
              st.uda_state,
              st.uda->Accumulate(st.uda_state, row_args, ctx.udf));
          break;
        }
      }
    }
    group.plain_filled = true;
  }

  // Aggregate-only queries over empty inputs still yield one row.
  if (groups.empty() && q.group_by.empty()) {
    GroupAcc g;
    g.aggs.resize(n_items);
    groups.emplace("", std::move(g));
  }

  for (auto& [key, group] : groups) {
    (void)key;
    std::vector<Value> row;
    for (size_t i = 0; i < n_items; ++i) {
      const SelectItem& item = q.items[i];
      AggState& st = group.aggs[i];
      switch (item.agg) {
        case SelectItem::AggKind::kNone:
          row.push_back(i < group.plain_items.size() ? group.plain_items[i]
                                                     : Value::Null());
          break;
        case SelectItem::AggKind::kUda: {
          if (st.uda == nullptr) {
            row.push_back(Value::Null());
            break;
          }
          SQLARRAY_ASSIGN_OR_RETURN(Value v,
                                    st.uda->Terminate(st.uda_state, ctx.udf));
          row.push_back(std::move(v));
          break;
        }
        default: {
          SQLARRAY_ASSIGN_OR_RETURN(Value v, FinishNative(item.agg, st));
          row.push_back(std::move(v));
          break;
        }
      }
    }
    rs.rows.push_back(std::move(row));
  }

  rs.stats.io = db_->disk()->stats() - io_before;
  rs.stats.wall_seconds = watch.ElapsedSeconds();
  return rs;
}


Result<ResultSet> Executor::ExecuteAggregateBatched(
    const Query& q, std::map<std::string, Value>* variables,
    QueryContext* qctx) {
  ResultSet rs;
  rs.stats.track_udf_detail = qctx != nullptr && qctx->collect_profile;
  Stopwatch watch;
  SQLARRAY_SPAN("exec.scan");
  storage::IoStats io_before = db_->disk()->stats();
  for (const SelectItem& item : q.items) rs.columns.push_back(item.label);
  const size_t n_items = q.items.size();

  const gov::QueryLimits* limits = qctx != nullptr ? &qctx->limits : nullptr;
  UdfContext udf;
  udf.pool = db_->buffer_pool();
  udf.subquery = subquery_fn_;
  udf.stats = &rs.stats;
  udf.cost = &cost_;
  udf.limits = limits;

  std::vector<AggState> states(n_items);
  std::vector<Value> plain_items(n_items);
  bool plain_filled = false;

  SQLARRAY_ASSIGN_OR_RETURN(storage::BTree::Cursor cursor,
                            q.table->Scan(SnapOf(qctx)));

  RowBatch batch;
  ByteBufferPool byte_pool;
  EvalArena arena;
  BatchContext bctx;
  bctx.schema = &q.table->schema();
  bctx.batch = &batch;
  bctx.variables = variables;
  bctx.udf = &udf;
  bctx.byte_pool = &byte_pool;
  bctx.arena = &arena;

  std::vector<int32_t> sel;
  std::vector<Value> keep_col, col;
  VecScratch vscratch;
  const int64_t rsz = q.table->schema().row_size();

  VecQueryPlan vplan_store;
  const VecQueryPlan* vplan = nullptr;
  if (vectorized_) {
    vplan_store = BuildVecPlan(q, variables, /*rows_mode=*/false);
    if (vplan_store.any) vplan = &vplan_store;
  }

  SQLARRAY_RETURN_IF_ERROR(
      GovCharge(limits, rsz * static_cast<int64_t>(batch_rows_)));
  if (vplan != nullptr) {
    SQLARRAY_RETURN_IF_ERROR(
        GovCharge(limits, VecPlanFootprint(*vplan, batch_rows_)));
  }
  while (true) {
    SQLARRAY_RETURN_IF_ERROR(GovCheck(limits));
    batch.Reset(rsz, batch_rows_);
    SQLARRAY_RETURN_IF_ERROR(FillBatchFromCursor(cursor, &batch));
    if (batch.size() == 0) break;
    rs.stats.rows_scanned += batch.size();
    for (int32_t i = 0; i < batch.size(); ++i) {
      rs.stats.ChargeCpuNs(cost_.row_scan_ns);
    }

    if (vplan != nullptr) {
      VecBatchesCounter().Add(1);
      VecRowsCounter().Add(batch.size());
    }
    if (vplan != nullptr && vplan->where_ok) {
      SQLARRAY_RETURN_IF_ERROR(vec::VecFilter(
          vplan->where, batch, &vscratch.regs, &vscratch.trunc, &sel));
      bctx.sel = nullptr;
    } else {
      SQLARRAY_RETURN_IF_ERROR(FilterBatch(q, &bctx, &keep_col, &sel));
      if (vplan != nullptr && q.where != nullptr) {
        VecFallbackRowsCounter().Add(batch.size());
      }
    }
    if (sel.empty()) continue;
    rs.stats.rows_kept += static_cast<int64_t>(sel.size());

    for (size_t i = 0; i < n_items; ++i) {
      const SelectItem& item = q.items[i];
      AggState& st = states[i];
      if (item.agg == SelectItem::AggKind::kNone) {
        // Plain items evaluate once, on the first row that survives the
        // filter — same as the row loop's first-kept-row semantics.
        if (!plain_filled) {
          std::vector<int32_t> first_sel(1, sel[0]);
          bctx.sel = &first_sel;
          SQLARRAY_RETURN_IF_ERROR(EvalBatch(*item.expr, bctx, &col));
          plain_items[i] = std::move(col[0]);
        }
        continue;
      }
      if (IsCountStar(item)) {
        st.count += static_cast<int64_t>(sel.size());
        continue;
      }
      if (vplan != nullptr && vplan->items[i] != nullptr) {
        SQLARRAY_RETURN_IF_ERROR(
            vplan->items[i]->Run(batch, &sel, &vscratch.regs));
        for (size_t k = 0; k < sel.size(); ++k) {
          rs.stats.agg_steps++;
          rs.stats.ChargeCpuNs(cost_.native_agg_step_ns);
        }
        SQLARRAY_RETURN_IF_ERROR(VecAccumulateColumn(
            item.agg, vplan->items[i]->Result(vscratch.regs), &st));
        continue;
      }
      bctx.sel = &sel;
      SQLARRAY_RETURN_IF_ERROR(EvalBatch(*item.expr, bctx, &col));
      if (vplan != nullptr) {
        VecFallbackRowsCounter().Add(static_cast<int64_t>(sel.size()));
      }
      for (const Value& v : col) {
        rs.stats.agg_steps++;
        rs.stats.ChargeCpuNs(cost_.native_agg_step_ns);
        SQLARRAY_RETURN_IF_ERROR(AccumulateNative(item.agg, v, &st));
      }
    }
    plain_filled = true;
  }

  std::vector<Value> row;
  for (size_t i = 0; i < n_items; ++i) {
    const SelectItem& item = q.items[i];
    if (item.agg == SelectItem::AggKind::kNone) {
      row.push_back(plain_filled ? plain_items[i] : Value::Null());
      continue;
    }
    SQLARRAY_ASSIGN_OR_RETURN(Value v, FinishNative(item.agg, states[i]));
    row.push_back(std::move(v));
  }
  rs.rows.push_back(std::move(row));

  rs.stats.io = db_->disk()->stats() - io_before;
  rs.stats.wall_seconds = watch.ElapsedSeconds();
  return rs;
}

// Retained only as ParallelMode::kStaticChunkLegacy, the bench baseline the
// morsel scheduler is measured against: fresh threads per query, one static
// leaf-chain chunk per worker, private per-worker buffer pools.
Result<ResultSet> Executor::ExecuteAggregateStaticChunk(
    const Query& q, std::map<std::string, Value>* variables) {
  ResultSet rs;
  Stopwatch watch;
  storage::IoStats io_before = db_->disk()->stats();
  for (const SelectItem& item : q.items) rs.columns.push_back(item.label);
  const size_t n_items = q.items.size();

  SQLARRAY_ASSIGN_OR_RETURN(std::vector<storage::PageId> pages,
                            q.table->CollectLeafPages());
  const int workers = std::max(
      1, std::min<int>(scan_workers_, static_cast<int>(pages.size())));

  struct WorkerResult {
    std::vector<AggState> states;
    QueryStats stats;
    Status status;
  };
  std::vector<WorkerResult> results(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers);

  for (int w = 0; w < workers; ++w) {
    // Contiguous chunk of the leaf chain for this worker.
    size_t begin = pages.size() * w / workers;
    size_t end = pages.size() * (w + 1) / workers;
    std::vector<storage::PageId> chunk(pages.begin() + begin,
                                       pages.begin() + end);
    threads.emplace_back([this, &q, variables, &results, w,
                          chunk = std::move(chunk), n_items]() mutable {
      WorkerResult& out = results[w];
      out.states.resize(n_items);
      // One read-ahead stream per worker: a private buffer pool over the
      // shared (thread-safe) disk.
      storage::BufferPool pool(db_->disk(), 1024);

      EvalContext ctx;
      ctx.schema = &q.table->schema();
      ctx.variables = variables;
      ctx.udf.pool = &pool;
      ctx.udf.stats = &out.stats;
      ctx.udf.cost = &cost_;
      ctx.udf.subquery = nullptr;  // reader UDFs are not parallel-eligible

      auto cursor_or = q.table->ScanChunk(&pool, std::move(chunk));
      if (!cursor_or.ok()) {
        out.status = cursor_or.status();
        return;
      }
      storage::BTree::ChunkCursor cursor = std::move(cursor_or).value();

      if (batch_rows_ > 1) {
        // Batched worker: gather a block of rows, filter it, then fold each
        // aggregate column-wise (same accumulation order as the row loop).
        RowBatch batch;
        ByteBufferPool byte_pool;
        EvalArena arena;
        BatchContext bctx;
        bctx.schema = &q.table->schema();
        bctx.batch = &batch;
        bctx.variables = variables;
        bctx.udf = &ctx.udf;
        bctx.byte_pool = &byte_pool;
        bctx.arena = &arena;
        std::vector<int32_t> sel;
        std::vector<Value> keep_col, col;
        const int64_t rsz = q.table->schema().row_size();
        while (true) {
          batch.Reset(rsz, batch_rows_);
          Status fill = FillBatchFromCursor(cursor, &batch);
          if (!fill.ok()) {
            out.status = fill;
            return;
          }
          if (batch.size() == 0) break;
          out.stats.rows_scanned += batch.size();
          for (int32_t i = 0; i < batch.size(); ++i) {
            out.stats.ChargeCpuNs(cost_.row_scan_ns);
          }
          Status fst = FilterBatch(q, &bctx, &keep_col, &sel);
          if (!fst.ok()) {
            out.status = fst;
            return;
          }
          if (sel.empty()) continue;
          bctx.sel = &sel;
          for (size_t i = 0; i < n_items; ++i) {
            const SelectItem& item = q.items[i];
            AggState& st = out.states[i];
            if (IsCountStar(item)) {
              st.count += static_cast<int64_t>(sel.size());
              continue;
            }
            Status est = EvalBatch(*item.expr, bctx, &col);
            if (!est.ok()) {
              out.status = est;
              return;
            }
            for (const Value& v : col) {
              out.stats.ChargeCpuNs(cost_.native_agg_step_ns);
              Status ast = AccumulateNative(item.agg, v, &st);
              if (!ast.ok()) {
                out.status = ast;
                return;
              }
            }
          }
        }
        return;
      }

      while (cursor.valid()) {
        ctx.row = cursor.row().data();
        out.stats.rows_scanned++;
        out.stats.ChargeCpuNs(cost_.row_scan_ns);

        bool keep_row = true;
        if (q.where != nullptr) {
          auto keep = Eval(*q.where, ctx);
          if (!keep.ok()) {
            out.status = keep.status();
            return;
          }
          auto truthy = keep->is_null() ? Result<int64_t>(int64_t{0})
                                        : keep->AsInt();
          if (!truthy.ok()) {
            out.status = truthy.status();
            return;
          }
          keep_row = *truthy != 0;
        }
        if (keep_row) {
          for (size_t i = 0; i < n_items; ++i) {
            const SelectItem& item = q.items[i];
            AggState& st = out.states[i];
            if (IsCountStar(item)) {
              st.count++;
              continue;
            }
            out.stats.ChargeCpuNs(cost_.native_agg_step_ns);
            auto v = Eval(*item.expr, ctx);
            if (!v.ok()) {
              out.status = v.status();
              return;
            }
            Status ast = AccumulateNative(item.agg, *v, &st);
            if (!ast.ok()) {
              out.status = ast;
              return;
            }
          }
        }
        Status st = cursor.Next();
        if (!st.ok()) {
          out.status = st;
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Merge partials (and surface the first worker error).
  std::vector<AggState> merged(n_items);
  for (WorkerResult& wr : results) {
    SQLARRAY_RETURN_IF_ERROR(wr.status);
    for (size_t i = 0; i < n_items; ++i) merged[i].Merge(wr.states[i]);
    rs.stats.rows_scanned += wr.stats.rows_scanned;
    rs.stats.udf_calls += wr.stats.udf_calls;
    rs.stats.udf_bytes_marshaled += wr.stats.udf_bytes_marshaled;
    rs.stats.cpu_core_seconds += wr.stats.cpu_core_seconds;
  }

  std::vector<Value> row;
  for (size_t i = 0; i < n_items; ++i) {
    const SelectItem& item = q.items[i];
    SQLARRAY_ASSIGN_OR_RETURN(Value v, FinishNative(item.agg, merged[i]));
    row.push_back(std::move(v));
  }
  rs.rows.push_back(std::move(row));

  rs.stats.io = db_->disk()->stats() - io_before;
  rs.stats.wall_seconds = watch.ElapsedSeconds();
  return rs;
}

void Executor::RunOnWorkers(int workers, const std::function<void(int)>& fn) {
  if (workers <= 1) {
    // Inline execution: no thread dispatch, but the identical morsel grid
    // and merge order, so the result is the parallel result.
    fn(0);
    return;
  }
  // The pool accepts one job at a time; concurrent sessions' parallel scans
  // queue here rather than corrupting the pool's job state.
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (worker_pool_ == nullptr) worker_pool_ = std::make_unique<WorkerPool>();
  worker_pool_->Run(workers, fn);
}

Status Executor::RunMorselScan(
    size_t n_pages, size_t morsel_pages, int workers, QueryContext* qctx,
    const std::function<Status(const Morsel&)>& body) {
  MorselQueue queue(n_pages, morsel_pages, workers);
  if (queue.morsel_count() == 0) return Status::OK();
  std::vector<Status> morsel_status(queue.morsel_count());
  std::atomic<bool> abort{false};
  obs::TraceSink* trace = qctx != nullptr ? &qctx->trace : nullptr;
  const gov::QueryLimits* limits =
      qctx != nullptr && qctx->limits.governed() ? &qctx->limits : nullptr;
  RunOnWorkers(workers, [&](int w) {
    // Pool workers inherit the statement's governance for the scan so deep
    // kernels (CheckThreadCancel) see it without parameter plumbing.
    gov::ScopedThreadLimits thread_limits(limits);
    Morsel m;
    while (queue.Next(w, &m)) {
      if (abort.load(std::memory_order_relaxed)) break;
      if (limits != nullptr) {
        Status st = limits->Check();
        if (!st.ok()) {
          morsel_status[m.index] = std::move(st);
          abort.store(true, std::memory_order_relaxed);
          break;
        }
      }
      // Each morsel's spans land on a lane equal to its morsel index, so
      // the stitched trace is a pure function of the grid — not of which
      // worker (or how many) ran it.
      obs::ScopedTrace lane(trace, static_cast<int64_t>(m.index));
      SQLARRAY_SPAN("exec.scan.morsel");
      Status st = body(m);
      if (!st.ok()) {
        // Each morsel index is handed out once, so this write is unshared.
        morsel_status[m.index] = std::move(st);
        abort.store(true, std::memory_order_relaxed);
      }
    }
  });
  // Surface the first failure in morsel order (== scan order at 1 worker).
  for (Status& st : morsel_status) {
    SQLARRAY_RETURN_IF_ERROR(st);
  }
  return Status::OK();
}

Result<ResultSet> Executor::ExecuteAggregateMorsel(
    const Query& q, std::map<std::string, Value>* variables,
    QueryContext* qctx) {
  ResultSet rs;
  rs.stats.track_udf_detail = qctx != nullptr && qctx->collect_profile;
  Stopwatch watch;
  storage::IoStats io_before = db_->disk()->stats();
  for (const SelectItem& item : q.items) rs.columns.push_back(item.label);
  const size_t n_items = q.items.size();
  const bool udf_detail = rs.stats.track_udf_detail;

  SQLARRAY_ASSIGN_OR_RETURN(
      MorselPlanInfo plan,
      PlanMorselScan(q, scan_workers_, min_pages_per_worker_, SnapOf(qctx)));
  std::vector<AggPartial> partials(plan.n_morsels);

  // One compiled columnar plan per statement, shared read-only by every
  // morsel worker (each worker owns its register scratch).
  VecQueryPlan vplan_store;
  const VecQueryPlan* vplan = nullptr;
  if (vectorized_ && batch_rows_ > 1) {
    vplan_store = BuildVecPlan(q, variables, /*rows_mode=*/false);
    if (vplan_store.any) vplan = &vplan_store;
  }

  SQLARRAY_RETURN_IF_ERROR(RunMorselScan(
      plan.pages.size(), plan.morsel_pages, plan.workers, qctx,
      [&](const Morsel& m) -> Status {
        std::vector<storage::PageId> chunk(plan.pages.begin() + m.page_begin,
                                           plan.pages.begin() + m.page_end);
        SQLARRAY_ASSIGN_OR_RETURN(
            storage::BTree::ChunkCursor cursor,
            SnapOf(qctx) != nullptr
                ? q.table->ScanChunk(SnapOf(qctx), std::move(chunk))
                : q.table->ScanChunk(db_->buffer_pool(), std::move(chunk),
                                     kMorselReadahead));
        return AggregateChunk(q, cost_, variables, db_->buffer_pool(),
                              batch_rows_, udf_detail,
                              qctx != nullptr ? &qctx->limits : nullptr, vplan,
                              std::move(cursor), &partials[m.index]);
      }));

  // Fold partials in morsel-index order — the deterministic merge that
  // makes results (float sums included) independent of the worker count.
  SQLARRAY_SPAN("exec.merge");
  std::vector<AggState> merged(n_items);
  std::vector<Value> plain(n_items);
  bool plain_filled = false;
  for (AggPartial& p : partials) {
    if (p.states.size() == n_items) {
      for (size_t i = 0; i < n_items; ++i) merged[i].Merge(p.states[i]);
    }
    if (!plain_filled && p.plain_filled) {
      plain = std::move(p.plain);
      plain_filled = true;
    }
    MergeStats(&rs.stats, p.stats);
  }

  std::vector<Value> row;
  for (size_t i = 0; i < n_items; ++i) {
    const SelectItem& item = q.items[i];
    if (item.agg == SelectItem::AggKind::kNone) {
      row.push_back(plain_filled ? std::move(plain[i]) : Value::Null());
      continue;
    }
    SQLARRAY_ASSIGN_OR_RETURN(Value v, FinishNative(item.agg, merged[i]));
    row.push_back(std::move(v));
  }
  rs.rows.push_back(std::move(row));

  rs.stats.io = db_->disk()->stats() - io_before;
  rs.stats.wall_seconds = watch.ElapsedSeconds();
  return rs;
}

Result<ResultSet> Executor::ExecuteGroupByMorsel(
    const Query& q, std::map<std::string, Value>* variables,
    QueryContext* qctx) {
  ResultSet rs;
  rs.stats.track_udf_detail = qctx != nullptr && qctx->collect_profile;
  Stopwatch watch;
  storage::IoStats io_before = db_->disk()->stats();
  for (const SelectItem& item : q.items) rs.columns.push_back(item.label);
  const size_t n_items = q.items.size();

  SQLARRAY_ASSIGN_OR_RETURN(
      MorselPlanInfo plan,
      PlanMorselScan(q, scan_workers_, min_pages_per_worker_, SnapOf(qctx)));
  struct GroupPartial {
    std::map<std::string, GroupAcc> groups;
    QueryStats stats;
  };
  std::vector<GroupPartial> partials(plan.n_morsels);
  for (GroupPartial& p : partials) {
    p.stats.track_udf_detail = rs.stats.track_udf_detail;
  }

  SQLARRAY_RETURN_IF_ERROR(RunMorselScan(
      plan.pages.size(), plan.morsel_pages, plan.workers, qctx,
      [&](const Morsel& m) -> Status {
        std::vector<storage::PageId> chunk(plan.pages.begin() + m.page_begin,
                                           plan.pages.begin() + m.page_end);
        SQLARRAY_ASSIGN_OR_RETURN(
            storage::BTree::ChunkCursor cursor,
            SnapOf(qctx) != nullptr
                ? q.table->ScanChunk(SnapOf(qctx), std::move(chunk))
                : q.table->ScanChunk(db_->buffer_pool(), std::move(chunk),
                                     kMorselReadahead));
        return GroupByChunk(q, cost_, variables, db_->buffer_pool(),
                            qctx != nullptr ? &qctx->limits : nullptr,
                            std::move(cursor), &partials[m.index].groups,
                            &partials[m.index].stats);
      }));

  // Merge the per-morsel partial hash tables in morsel-index order. The
  // final std::map iterates groups in serialized-key order — exactly the
  // serial path's output order.
  SQLARRAY_SPAN("exec.merge");
  std::map<std::string, GroupAcc> groups;
  for (GroupPartial& p : partials) {
    for (auto& [key, g] : p.groups) {
      auto it = groups.find(key);
      if (it == groups.end()) {
        groups.emplace(key, std::move(g));
        continue;
      }
      for (size_t i = 0; i < n_items; ++i) {
        it->second.aggs[i].Merge(g.aggs[i]);
      }
      // Plain items keep the lowest-morsel (earliest-row) values.
    }
    MergeStats(&rs.stats, p.stats);
  }

  for (auto& [key, group] : groups) {
    (void)key;
    std::vector<Value> row;
    for (size_t i = 0; i < n_items; ++i) {
      const SelectItem& item = q.items[i];
      if (item.agg == SelectItem::AggKind::kNone) {
        row.push_back(i < group.plain_items.size()
                          ? std::move(group.plain_items[i])
                          : Value::Null());
        continue;
      }
      SQLARRAY_ASSIGN_OR_RETURN(Value v, FinishNative(item.agg, group.aggs[i]));
      row.push_back(std::move(v));
    }
    rs.rows.push_back(std::move(row));
  }

  rs.stats.io = db_->disk()->stats() - io_before;
  rs.stats.wall_seconds = watch.ElapsedSeconds();
  return rs;
}

Result<ResultSet> Executor::ExecuteRowsMorsel(
    const Query& q, std::map<std::string, Value>* variables,
    QueryContext* qctx) {
  ResultSet rs;
  rs.stats.track_udf_detail = qctx != nullptr && qctx->collect_profile;
  Stopwatch watch;
  storage::IoStats io_before = db_->disk()->stats();
  for (const SelectItem& item : q.items) rs.columns.push_back(item.label);

  SQLARRAY_ASSIGN_OR_RETURN(
      MorselPlanInfo plan,
      PlanMorselScan(q, scan_workers_, min_pages_per_worker_, SnapOf(qctx)));
  struct RowsPartial {
    std::vector<std::vector<Value>> rows;
    QueryStats stats;
  };
  std::vector<RowsPartial> partials(plan.n_morsels);
  for (RowsPartial& p : partials) {
    p.stats.track_udf_detail = rs.stats.track_udf_detail;
  }

  // TOP queries stay on the early-exit row loop, so the columnar plan only
  // builds when the batched branch of RowsChunk can actually run.
  VecQueryPlan vplan_store;
  const VecQueryPlan* vplan = nullptr;
  if (vectorized_ && batch_rows_ > 1 && q.top < 0) {
    vplan_store = BuildVecPlan(q, variables, /*rows_mode=*/true);
    if (vplan_store.any) vplan = &vplan_store;
  }

  // TOP short-circuit token: `frontier` counts consecutive completed
  // morsels from 0 and `prefix_rows` their surviving rows. A worker may
  // skip an UNSTARTED morsel m once prefix_rows >= top: the frontier
  // f <= m then, so the first `top` output rows all come from morsels
  // before m and m's buffer can never reach the output.
  std::mutex top_mu;
  std::vector<int64_t> morsel_rows(plan.n_morsels, -1);
  size_t frontier = 0;
  std::atomic<int64_t> prefix_rows{0};
  auto mark_done = [&](size_t index, int64_t rows) {
    if (q.top < 0) return;
    std::lock_guard<std::mutex> lock(top_mu);
    morsel_rows[index] = rows;
    while (frontier < plan.n_morsels && morsel_rows[frontier] >= 0) {
      prefix_rows.fetch_add(morsel_rows[frontier], std::memory_order_relaxed);
      ++frontier;
    }
  };

  SQLARRAY_RETURN_IF_ERROR(RunMorselScan(
      plan.pages.size(), plan.morsel_pages, plan.workers, qctx,
      [&](const Morsel& m) -> Status {
        RowsPartial& out = partials[m.index];
        if (q.top >= 0 &&
            prefix_rows.load(std::memory_order_relaxed) >= q.top) {
          mark_done(m.index, 0);  // skipped: cannot reach the output prefix
          return Status::OK();
        }
        std::vector<storage::PageId> chunk(plan.pages.begin() + m.page_begin,
                                           plan.pages.begin() + m.page_end);
        SQLARRAY_ASSIGN_OR_RETURN(
            storage::BTree::ChunkCursor cursor,
            SnapOf(qctx) != nullptr
                ? q.table->ScanChunk(SnapOf(qctx), std::move(chunk))
                : q.table->ScanChunk(db_->buffer_pool(), std::move(chunk),
                                     kMorselReadahead));
        Status st = RowsChunk(q, cost_, variables, db_->buffer_pool(),
                              batch_rows_,
                              qctx != nullptr ? &qctx->limits : nullptr, vplan,
                              std::move(cursor), &out.rows, &out.stats);
        if (st.ok()) {
          mark_done(m.index, static_cast<int64_t>(out.rows.size()));
        }
        return st;
      }));

  // Gather per-morsel buffers in page order, truncated at TOP.
  SQLARRAY_SPAN("exec.merge");
  for (RowsPartial& p : partials) {
    for (std::vector<Value>& row : p.rows) {
      if (q.top >= 0 && static_cast<int64_t>(rs.rows.size()) >= q.top) break;
      rs.rows.push_back(std::move(row));
    }
    MergeStats(&rs.stats, p.stats);
  }

  rs.stats.io = db_->disk()->stats() - io_before;
  rs.stats.wall_seconds = watch.ElapsedSeconds();
  return rs;
}

Result<ResultSet> Executor::ExecuteRows(const Query& q,
                                        std::map<std::string, Value>* variables,
                                        QueryContext* qctx) {
  // TOP queries stay row-at-a-time: gathering a whole batch past the limit
  // would inflate rows_scanned relative to the early-exit row loop.
  if (batch_rows_ > 1 && q.table != nullptr && q.top < 0) {
    return ExecuteRowsBatched(q, variables, qctx);
  }
  ResultSet rs;
  rs.stats.track_udf_detail = qctx != nullptr && qctx->collect_profile;
  Stopwatch watch;
  SQLARRAY_SPAN("exec.scan");
  storage::IoStats io_before = db_->disk()->stats();

  for (const SelectItem& item : q.items) rs.columns.push_back(item.label);

  const gov::QueryLimits* limits = qctx != nullptr ? &qctx->limits : nullptr;
  EvalContext ctx;
  ctx.schema = q.table != nullptr ? &q.table->schema() : nullptr;
  ctx.variables = variables;
  ctx.udf.pool = db_->buffer_pool();
  ctx.udf.subquery = subquery_fn_;
  ctx.udf.stats = &rs.stats;
  ctx.udf.cost = &cost_;
  ctx.udf.limits = limits;

  std::vector<std::vector<Value>> tvf_rows;
  std::optional<storage::BTree::Cursor> cursor;
  size_t tvf_pos = 0;
  bool first_row = true;
  if (q.tvf != nullptr) {
    SQLARRAY_ASSIGN_OR_RETURN(tvf_rows,
                              MaterializeTvf(q, variables, &rs.stats));
  } else {
    SQLARRAY_ASSIGN_OR_RETURN(storage::BTree::Cursor c,
                              q.table->Scan(SnapOf(qctx)));
    cursor = std::move(c);
  }
  auto next_row = [&](EvalContext* c) -> Result<bool> {
    if (q.tvf != nullptr) {
      if (tvf_pos >= tvf_rows.size()) return false;
      c->value_row = &tvf_rows[tvf_pos++];
      return true;
    }
    if (!first_row) SQLARRAY_RETURN_IF_ERROR(cursor->Next());
    first_row = false;
    if (!cursor->valid()) return false;
    c->row = cursor->row().data();
    return true;
  };

  while (true) {
    SQLARRAY_RETURN_IF_ERROR(GovCheck(limits));
    if (q.top >= 0 && static_cast<int64_t>(rs.rows.size()) >= q.top) break;
    SQLARRAY_ASSIGN_OR_RETURN(bool has_row, next_row(&ctx));
    if (!has_row) break;
    rs.stats.rows_scanned++;
    rs.stats.ChargeCpuNs(cost_.row_scan_ns);

    if (q.where != nullptr) {
      SQLARRAY_ASSIGN_OR_RETURN(Value keep, Eval(*q.where, ctx));
      SQLARRAY_ASSIGN_OR_RETURN(int64_t truthy,
                                keep.is_null() ? Result<int64_t>(int64_t{0})
                                               : keep.AsInt());
      if (truthy == 0) {
        continue;
      }
    }
    rs.stats.rows_kept++;
    SQLARRAY_RETURN_IF_ERROR(GovCharge(limits, RowFootprint(q.items.size())));

    std::vector<Value> row;
    row.reserve(q.items.size());
    for (const SelectItem& item : q.items) {
      SQLARRAY_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, ctx));
      row.push_back(std::move(v));
    }
    rs.rows.push_back(std::move(row));
  }

  rs.stats.io = db_->disk()->stats() - io_before;
  rs.stats.wall_seconds = watch.ElapsedSeconds();
  return rs;
}

Result<ResultSet> Executor::ExecuteRowsBatched(
    const Query& q, std::map<std::string, Value>* variables,
    QueryContext* qctx) {
  ResultSet rs;
  rs.stats.track_udf_detail = qctx != nullptr && qctx->collect_profile;
  Stopwatch watch;
  SQLARRAY_SPAN("exec.scan");
  storage::IoStats io_before = db_->disk()->stats();
  for (const SelectItem& item : q.items) rs.columns.push_back(item.label);
  const size_t n_items = q.items.size();

  const gov::QueryLimits* limits = qctx != nullptr ? &qctx->limits : nullptr;
  UdfContext udf;
  udf.pool = db_->buffer_pool();
  udf.subquery = subquery_fn_;
  udf.stats = &rs.stats;
  udf.cost = &cost_;
  udf.limits = limits;

  SQLARRAY_ASSIGN_OR_RETURN(storage::BTree::Cursor cursor,
                            q.table->Scan(SnapOf(qctx)));

  RowBatch batch;
  ByteBufferPool byte_pool;
  EvalArena arena;
  BatchContext bctx;
  bctx.schema = &q.table->schema();
  bctx.batch = &batch;
  bctx.variables = variables;
  bctx.udf = &udf;
  bctx.byte_pool = &byte_pool;
  bctx.arena = &arena;

  std::vector<int32_t> sel;
  std::vector<Value> keep_col;
  VecScratch vscratch;
  const int64_t rsz = q.table->schema().row_size();

  VecQueryPlan vplan_store;
  const VecQueryPlan* vplan = nullptr;
  if (vectorized_) {
    vplan_store = BuildVecPlan(q, variables, /*rows_mode=*/true);
    if (vplan_store.any) vplan = &vplan_store;
  }

  SQLARRAY_RETURN_IF_ERROR(
      GovCharge(limits, rsz * static_cast<int64_t>(batch_rows_)));
  if (vplan != nullptr) {
    SQLARRAY_RETURN_IF_ERROR(
        GovCharge(limits, VecPlanFootprint(*vplan, batch_rows_)));
  }
  while (true) {
    SQLARRAY_RETURN_IF_ERROR(GovCheck(limits));
    batch.Reset(rsz, batch_rows_);
    SQLARRAY_RETURN_IF_ERROR(FillBatchFromCursor(cursor, &batch));
    if (batch.size() == 0) break;
    rs.stats.rows_scanned += batch.size();
    for (int32_t i = 0; i < batch.size(); ++i) {
      rs.stats.ChargeCpuNs(cost_.row_scan_ns);
    }

    if (vplan != nullptr) {
      VecBatchesCounter().Add(1);
      VecRowsCounter().Add(batch.size());
    }
    if (vplan != nullptr && vplan->where_ok) {
      SQLARRAY_RETURN_IF_ERROR(vec::VecFilter(
          vplan->where, batch, &vscratch.regs, &vscratch.trunc, &sel));
      bctx.sel = nullptr;
    } else {
      SQLARRAY_RETURN_IF_ERROR(FilterBatch(q, &bctx, &keep_col, &sel));
      if (vplan != nullptr && q.where != nullptr) {
        VecFallbackRowsCounter().Add(batch.size());
      }
    }
    if (sel.empty()) continue;
    rs.stats.rows_kept += static_cast<int64_t>(sel.size());
    SQLARRAY_RETURN_IF_ERROR(GovCharge(
        limits, static_cast<int64_t>(sel.size()) * RowFootprint(n_items)));
    bctx.sel = &sel;

    // Evaluate every item column, then stitch output rows together.
    ColumnGuard guard(&arena);
    std::vector<std::vector<Value>*> cols;
    cols.reserve(n_items);
    for (size_t i = 0; i < n_items; ++i) {
      cols.push_back(guard.Borrow());
      if (vplan != nullptr && vplan->items[i] != nullptr) {
        SQLARRAY_RETURN_IF_ERROR(
            vplan->items[i]->Run(batch, &sel, &vscratch.regs));
        vec::ColumnToValues(vplan->items[i]->Result(vscratch.regs), cols[i]);
        continue;
      }
      SQLARRAY_RETURN_IF_ERROR(EvalBatch(*q.items[i].expr, bctx, cols[i]));
      if (vplan != nullptr) {
        VecFallbackRowsCounter().Add(static_cast<int64_t>(sel.size()));
      }
    }
    for (size_t k = 0; k < sel.size(); ++k) {
      std::vector<Value> row;
      row.reserve(n_items);
      for (size_t i = 0; i < n_items; ++i) {
        row.push_back(std::move((*cols[i])[k]));
      }
      rs.rows.push_back(std::move(row));
    }
  }

  rs.stats.io = db_->disk()->stats() - io_before;
  rs.stats.wall_seconds = watch.ElapsedSeconds();
  return rs;
}

}  // namespace sqlarray::engine
