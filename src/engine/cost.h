// Execution cost model and per-query statistics.
//
// Substitute for the paper's SQL Server + .NET CLR host: queries execute for
// real (all results are computed natively), while a calibrated virtual-time
// model accounts what the same work costs on the paper's testbed. The CLR
// constants are taken from the paper's own measurements (Sec. 7.1): ~2 us
// per CLR UDF call, with marshaling proportional to argument bytes, and UDA
// state (de)serialization on every row (Sec. 4.2). The scan/aggregate
// constants are back-solved from Table 1's Q1/Q3 CPU utilizations.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "storage/disk.h"

namespace sqlarray::engine {

/// Virtual CPU cost constants (nanoseconds) and machine shape.
struct CostModel {
  /// Per-row tuple processing during a clustered index scan
  /// (Q1: 45% CPU x 8 cores x 18 s / 357M rows ~ 181 ns).
  double row_scan_ns = 180.0;
  /// Per-row native aggregate update (Q3 minus Q1: ~182 ns).
  double native_agg_step_ns = 180.0;
  /// Flat cost of crossing into a CLR UDF (Sec. 7.1: ~2 us/call).
  double clr_call_ns = 2000.0;
  /// Marshaling cost per argument/result byte crossing the CLR boundary.
  double clr_byte_ns = 0.5;
  /// Managed-code work inside a real (non-empty) UDF body, per call
  /// (Q4 minus Q5: the paper's "+22% above the empty function call").
  double clr_item_work_ns = 500.0;
  /// Per-row cost of streaming a table-valued function's output across the
  /// hosting boundary (IEnumerable iteration in SQL CLR).
  double tvf_row_ns = 300.0;
  /// UDA state serialize + deserialize cost per byte, charged every row
  /// (Sec. 4.2: "the state of aggregation had to be serialized via a binary
  /// stream interface for each row").
  double uda_state_byte_ns = 1.0;
  /// Worker parallelism of the modeled host (two quad-core Xeons).
  int num_cores = 8;
};

/// Statistics for one executed query.
struct QueryStats {
  int64_t rows_scanned = 0;
  /// Rows surviving the WHERE filter (== rows_scanned when there is none).
  int64_t rows_kept = 0;
  /// Native aggregate accumulation steps (the native_agg_step_ns charges).
  int64_t agg_steps = 0;
  int64_t udf_calls = 0;
  int64_t udf_bytes_marshaled = 0;
  int64_t uda_state_bytes = 0;
  /// Boundary-cost attribution for one "schema.function".
  struct UdfFnStats {
    int64_t calls = 0;
    int64_t bytes = 0;
    double cpu_ns = 0;
  };
  /// Per-function attribution, keyed by "schema.function" (lower-cased as
  /// registered). Populated only when track_udf_detail is set — profiled
  /// runs — so the per-call hot path stays one branch otherwise.
  std::map<std::string, UdfFnStats> udf_by_fn;
  bool track_udf_detail = false;
  /// Modeled CPU work in core-seconds (sum across all workers).
  double cpu_core_seconds = 0;
  /// I/O deltas attributed to this query.
  storage::IoStats io;
  /// Real (measured) wall-clock seconds of the native execution.
  double wall_seconds = 0;

  void ChargeCpuNs(double ns) { cpu_core_seconds += ns * 1e-9; }

  /// Modeled elapsed time: the query is either I/O-bound or CPU-bound
  /// (perfect overlap of the scan pipeline, as in Table 1's analysis).
  double ModeledSeconds(const CostModel& cost) const {
    double cpu_elapsed = cpu_core_seconds / cost.num_cores;
    return cpu_elapsed > io.virtual_read_seconds ? cpu_elapsed
                                                 : io.virtual_read_seconds;
  }
  /// Modeled CPU utilization percentage across all cores.
  double ModeledCpuPct(const CostModel& cost) const {
    double t = ModeledSeconds(cost);
    return t > 0 ? 100.0 * cpu_core_seconds / (t * cost.num_cores) : 0;
  }
  /// Modeled I/O rate in MB/s.
  double ModeledIoMBps(const CostModel& cost) const {
    double t = ModeledSeconds(cost);
    return t > 0 ? static_cast<double>(io.bytes_read) / 1e6 / t : 0;
  }
};

}  // namespace sqlarray::engine
