// Expression trees evaluated per row (or standalone).
//
// Shared between the T-SQL frontend (which builds them by parsing + binding)
// and direct C++ callers (benches build them with the helper constructors).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/udf.h"
#include "storage/schema.h"

namespace sqlarray::engine {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Binary operator kinds (arithmetic, comparison, logical).
enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

/// Unary operator kinds.
enum class UnaryOp { kNeg, kNot };

/// An expression node.
struct Expr {
  enum class Kind {
    kLiteral,    ///< constant value
    kColumn,     ///< table column (resolved to an index by the binder)
    kVariable,   ///< T-SQL @variable
    kUnary,
    kBinary,
    kCall,       ///< schema-qualified scalar function call
    kStar,       ///< '*' inside COUNT(*)
  };

  Kind kind = Kind::kLiteral;
  Value literal;

  // kColumn
  std::string column_name;  ///< as written; resolved by the binder
  int column_index = -1;

  // kVariable
  std::string var_name;

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;

  // kCall
  std::string schema_name;
  std::string func_name;
  const ScalarFunction* bound_fn = nullptr;  ///< set by the binder

  std::vector<ExprPtr> args;  ///< operands / call arguments
};

/// Helper constructors for building trees directly from C++.
ExprPtr Lit(Value v);
ExprPtr Col(std::string name);
ExprPtr ColIdx(int index);
ExprPtr Var(std::string name);
ExprPtr Un(UnaryOp op, ExprPtr operand);
ExprPtr Bin(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Call(std::string schema, std::string name, std::vector<ExprPtr> args);
ExprPtr Star();

/// Deep copy (the SQL layer reuses parsed trees across statements).
ExprPtr CloneExpr(const Expr& e);

/// Evaluation environment for one row.
struct EvalContext {
  /// Row access (null for standalone expressions).
  const storage::Schema* schema = nullptr;
  const uint8_t* row = nullptr;
  /// Alternative row source: already-materialized values (TVF output rows).
  /// Takes precedence over schema/row when set.
  const std::vector<Value>* value_row = nullptr;
  /// T-SQL variables (may be null).
  std::map<std::string, Value>* variables = nullptr;
  /// UDF invocation context (pool + stats + cost model).
  UdfContext udf;
};

/// Evaluates an expression. Column references require a bound column_index
/// and a row in the context.
Result<Value> Eval(const Expr& expr, EvalContext& ctx);

/// Value-level operator semantics shared by row-at-a-time Eval and the
/// batched evaluator (engine/batch.h). NULL operands yield NULL.
Result<Value> EvalBinaryOp(BinaryOp op, const Value& l, const Value& r);
Result<Value> EvalUnaryOp(UnaryOp op, const Value& v);

/// Decodes one column of a serialized row into a Value (binary columns are
/// copied into fresh buffers; VARBINARY(MAX) columns become blob refs using
/// the context's buffer pool).
Result<Value> ReadRowColumn(const storage::Schema& schema, const uint8_t* row,
                            int col, UdfContext& udf);

/// Resolves column names to indices against a schema and function calls
/// against a registry, in place. Standalone (row-free) expressions pass a
/// null schema; unresolved columns then fail.
Status BindExpr(Expr* expr, const storage::Schema* schema,
                const FunctionRegistry* registry);

/// BindExpr variant for value-row sources (TVF output): columns resolve
/// against a flat name list instead of a table schema.
Status BindExprToColumns(Expr* expr,
                         const std::vector<std::string>& columns,
                         const FunctionRegistry* registry);

/// True if the tree contains any kColumn/kStar node (i.e. needs a row).
bool NeedsRow(const Expr& expr);

}  // namespace sqlarray::engine
