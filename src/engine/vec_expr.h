// Fused columnar expression evaluation.
//
// VecProgram compiles an Expr tree into a flat sequence of column-kernel
// calls (core/vec_kernels.h) over one register file of ColumnVecs — one
// register per instruction, reused across batches so a query allocates its
// registers once. Column loads gather straight out of the row-major
// RowBatch (or alias leaf bytes zero-copy when the batch row IS the lane
// value: a single 8-byte-column table scanned densely); every downstream op
// runs over dense int64/float64 lanes with a validity bitmap.
//
// Compilation is best-effort: Compile returns false for any tree the
// columnar domain does not cover (UDF calls, COUNT(*) stars, binary /
// VARBINARY(MAX) columns, non-numeric literals or variables), and the
// executor falls back to the batched row evaluator (engine/batch.h) for
// that expression — per query, per select item.
//
// Semantics contract: Run produces, for every selected row, exactly the
// Value the row-at-a-time evaluator produces (see the numeric contracts in
// core/vec_kernels.h). Lane inference mirrors Value coercion statically:
// the engine's numeric kinds are fixed per leaf (column types, literal and
// variable kinds), so "both operands are BIGINT" is a compile-time fact
// here, not a per-row test. NULL never arises from storage rows — only
// from NULL literals and variables — so nullability flows from kConstNull
// leaves through validity-bitmap intersection; division/modulo kernels take
// the intersected result validity as their error mask, which reproduces the
// row path's "NULL before the zero check" ordering. Like the batched row
// evaluator, instruction-major order may surface a different failing row's
// error than row-major order — outcome and success results are identical.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/column.h"
#include "core/vec_kernels.h"
#include "engine/batch.h"
#include "engine/expr.h"

namespace sqlarray::engine::vec {

/// One compiled expression over a table schema.
class VecProgram {
 public:
  /// Compiles `expr` (bound against `schema`) into `out`. Returns false if
  /// any node falls outside the columnar domain; `out` is then unusable and
  /// the caller must evaluate that expression via EvalBatch. Variables are
  /// baked in as constants (they cannot change mid-statement).
  static bool Compile(const Expr& expr, const storage::Schema& schema,
                      const std::map<std::string, Value>* variables,
                      VecProgram* out);

  /// Evaluates over `batch` rows (restricted to `sel` when non-null, one
  /// output lane per selected row, in selection order). `regs` is the
  /// caller-owned register file, resized to num_instrs(); the result is
  /// regs->back().
  Status Run(const RowBatch& batch, const std::vector<int32_t>* sel,
             std::vector<col::ColumnVec>* regs) const;

  col::Lane result_lane() const { return lanes_.empty() ? col::Lane::kI64 : lanes_.back(); }
  int32_t num_instrs() const { return static_cast<int32_t>(instrs_.size()); }

  /// This program's result register. `regs` may be larger than
  /// num_instrs() when several programs share one register file.
  const col::ColumnVec& Result(const std::vector<col::ColumnVec>& regs) const {
    return regs[instrs_.size() - 1];
  }

 private:
  enum class Op : uint8_t {
    kConstI, kConstF, kConstNull,
    kLoadI32, kLoadI64, kLoadF32, kLoadF64,
    kAddI, kSubI, kMulI, kDivI, kModI,
    kAddF, kSubF, kMulF, kDivF,
    kCmp,
    kAndI, kOrI,
    kNegI, kNegF, kNotI,
    kI2F, kF2I,
  };

  struct Instr {
    Op op = Op::kConstI;
    col::CmpOp cmp = col::CmpOp::kEq;
    int32_t a = -1;        ///< operand register indices
    int32_t b = -1;
    int64_t offset = 0;    ///< column byte offset within the row (loads)
    int64_t icon = 0;      ///< integer immediate (kConstI)
    double fcon = 0;       ///< float immediate (kConstF)
  };

  /// Emits one instruction; its output register index is its position.
  int32_t Emit(const Instr& in, col::Lane lane);
  /// Lane coercions (no-ops when already in the target lane).
  int32_t ToF64(int32_t r);
  int32_t ToI64(int32_t r);
  /// Recursive tree walk; returns the result register or -1 (unsupported).
  int32_t CompileNode(const Expr& e, const storage::Schema& schema,
                      const std::map<std::string, Value>* variables);

  std::vector<Instr> instrs_;
  std::vector<col::Lane> lanes_;  ///< output lane per register
  int64_t row_size_ = 0;
};

/// Runs a compiled WHERE program densely over the batch and builds the
/// surviving selection (cleared first) with the row path's truthiness:
/// NULL is false, float keep values truncate through int64. `trunc` is
/// caller-owned scratch for that truncation.
Status VecFilter(const VecProgram& prog, const RowBatch& batch,
                 std::vector<col::ColumnVec>* regs, col::ColumnVec* trunc,
                 std::vector<int32_t>* sel);

/// Materializes a column back into engine Values (Int / Double / Null) —
/// the bridge for consumers that still stitch Value rows.
void ColumnToValues(const col::ColumnVec& c, std::vector<Value>* out);

}  // namespace sqlarray::engine::vec
