#include "engine/udf.h"

#include <algorithm>

namespace sqlarray::engine {

namespace {

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

std::string FunctionRegistry::Key(const std::string& schema,
                                  const std::string& name, int arity) {
  return Lower(schema) + "." + Lower(name) + "/" + std::to_string(arity);
}

Status FunctionRegistry::RegisterScalar(ScalarFunction fn) {
  std::string key = Key(fn.schema, fn.name, fn.arity);
  if (scalars_.count(key) != 0) {
    return Status::AlreadyExists("function already registered: " + key);
  }
  scalars_.emplace(std::move(key), std::move(fn));
  return Status::OK();
}

Status FunctionRegistry::RegisterUda(const std::string& schema,
                                     const std::string& name,
                                     UdaFactory factory) {
  std::string key = Lower(schema) + "." + Lower(name);
  if (udas_.count(key) != 0) {
    return Status::AlreadyExists("aggregate already registered: " + key);
  }
  udas_.emplace(std::move(key), std::move(factory));
  return Status::OK();
}

Result<const ScalarFunction*> FunctionRegistry::Resolve(
    const std::string& schema, const std::string& name, int arity) const {
  auto it = scalars_.find(Key(schema, name, arity));
  if (it == scalars_.end()) {
    it = scalars_.find(Key(schema, name, -1));  // variadic fallback
  }
  if (it == scalars_.end()) {
    return Status::NotFound("no function " + schema + "." + name + " with " +
                            std::to_string(arity) + " arguments");
  }
  return &it->second;
}

Status FunctionRegistry::RegisterTvf(TableValuedFunction tvf) {
  std::string key = Lower(tvf.schema) + "." + Lower(tvf.name);
  if (tvfs_.count(key) != 0) {
    return Status::AlreadyExists("table-valued function already registered: " +
                                 key);
  }
  tvfs_.emplace(std::move(key), std::move(tvf));
  return Status::OK();
}

Result<const TableValuedFunction*> FunctionRegistry::ResolveTvf(
    const std::string& schema, const std::string& name) const {
  auto it = tvfs_.find(Lower(schema) + "." + Lower(name));
  if (it == tvfs_.end()) {
    return Status::NotFound("no table-valued function " + schema + "." +
                            name);
  }
  return &it->second;
}

Result<const UdaFactory*> FunctionRegistry::ResolveUda(
    const std::string& schema, const std::string& name) const {
  auto it = udas_.find(Lower(schema) + "." + Lower(name));
  if (it == udas_.end()) {
    return Status::NotFound("no aggregate " + schema + "." + name);
  }
  return &it->second;
}

bool FunctionRegistry::HasScalar(const std::string& schema,
                                 const std::string& name) const {
  // Arity-insensitive probe used by the binder to classify identifiers.
  std::string prefix = Lower(schema) + "." + Lower(name) + "/";
  auto it = scalars_.lower_bound(prefix);
  return it != scalars_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
}

Result<Value> FunctionRegistry::Invoke(const ScalarFunction& fn,
                                       std::span<const Value> args,
                                       UdfContext& ctx) {
  // UDF boundary crossings are a cancellation point: a query spending its
  // time inside hosted calls still notices a kill between invocations.
  if (ctx.limits != nullptr) {
    SQLARRAY_RETURN_IF_ERROR(ctx.limits->Check());
  }
  if (fn.boundary == Boundary::kClr && ctx.stats != nullptr &&
      ctx.cost != nullptr) {
    // Charge the CLR boundary: flat call cost, per-byte argument
    // marshaling, and the function's declared managed work.
    int64_t arg_bytes = 0;
    for (const Value& v : args) arg_bytes += v.ByteSize();
    ctx.stats->udf_calls++;
    ctx.stats->udf_bytes_marshaled += arg_bytes;
    double charge_ns = ctx.cost->clr_call_ns +
                       ctx.cost->clr_byte_ns * static_cast<double>(arg_bytes) +
                       fn.managed_work_ns;
    ctx.stats->ChargeCpuNs(charge_ns);
    if (ctx.stats->track_udf_detail) {
      QueryStats::UdfFnStats& d =
          ctx.stats->udf_by_fn[fn.schema + "." + fn.name];
      d.calls++;
      d.bytes += arg_bytes;
      d.cpu_ns += charge_ns;
    }
  }
  SQLARRAY_ASSIGN_OR_RETURN(Value out, fn.fn(args, ctx));
  if (fn.boundary == Boundary::kClr && ctx.stats != nullptr &&
      ctx.cost != nullptr) {
    // Result marshaling back across the boundary.
    int64_t out_bytes = out.ByteSize();
    ctx.stats->udf_bytes_marshaled += out_bytes;
    double charge_ns = ctx.cost->clr_byte_ns * static_cast<double>(out_bytes);
    ctx.stats->ChargeCpuNs(charge_ns);
    if (ctx.stats->track_udf_detail) {
      QueryStats::UdfFnStats& d =
          ctx.stats->udf_by_fn[fn.schema + "." + fn.name];
      d.bytes += out_bytes;
      d.cpu_ns += charge_ns;
    }
  }
  return out;
}

}  // namespace sqlarray::engine
