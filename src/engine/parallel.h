// Morsel-driven parallel execution primitives.
//
// The executor parallelizes scans NUMA-style (Leis et al.'s morsel model,
// the single-node analogue of Graywulf's partitioned execution): the leaf
// chain is cut into a deterministic grid of small page ranges (morsels), a
// persistent worker pool picks morsels from a work-stealing queue, and
// per-morsel partial results are merged in morsel-index order.
//
// Determinism contract: the morsel grid depends only on the table's page
// count — never on the worker count or on which thread ran which morsel —
// and every merge folds partials in ascending morsel index. Float
// aggregation therefore produces byte-identical results at any worker
// count and across repeated runs, even though work stealing assigns
// morsels to threads nondeterministically.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sqlarray::engine {

/// A persistent pool of worker threads, created once (grown on demand) and
/// reused across queries — replacing the former spawn-and-join of fresh
/// threads per query, whose startup cost dominated small scans. Run()
/// dispatches one job to `workers` threads and blocks until all return.
class WorkerPool {
 public:
  WorkerPool() = default;
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs fn(worker_index) for worker_index in [0, workers) on pool
  /// threads, blocking until every invocation returns. Grows the pool to
  /// `workers` threads on first need. One job at a time (the executor runs
  /// one parallel pipeline per query).
  void Run(int workers, const std::function<void(int)>& fn);

  /// Threads currently alive (test/introspection access).
  int thread_count() const;

 private:
  void ThreadMain(int slot);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  const std::function<void(int)>* job_ = nullptr;
  uint64_t job_seq_ = 0;   ///< bumped per Run; threads track what they saw
  int job_workers_ = 0;    ///< threads with slot < this participate
  int job_remaining_ = 0;  ///< participants still running
  bool shutdown_ = false;
};

/// One morsel: a half-open range over the leaf-page vector plus its index
/// in the deterministic grid (the merge key).
struct Morsel {
  size_t index = 0;
  size_t page_begin = 0;
  size_t page_end = 0;
};

/// Deterministic morsel size for a table of `leaf_pages` pages — a pure
/// function of the table (NOT of the worker count), so result-merge order
/// is stable. Small tables get the floor so tiny scans stay one or two
/// morsels; large tables scale up so per-morsel scheduling overhead stays
/// amortized and GROUP BY merge fan-in stays bounded.
int64_t MorselPages(int64_t leaf_pages);

/// Caps the worker count for a scan so fixed per-worker setup (thread
/// dispatch, one modeled full seek to open each worker's read stream)
/// amortizes: every worker must have at least `min_pages_per_worker` pages
/// of real work, and never more workers than morsels. Returns at least 1;
/// a result of 1 means "run inline on the calling thread".
int EffectiveWorkers(int requested, int64_t leaf_pages, int64_t n_morsels,
                     int64_t min_pages_per_worker);

/// Default amortization floors for EffectiveWorkers. Native scans are
/// I/O-bound under the disk model: each extra worker stream costs one full
/// seek (~400 us, the read time of ~56 sequential pages), so a worker only
/// pays for itself with a couple thousand pages of stream — the
/// EXPERIMENTS.md small-table regression was exactly 8 such seeks priced
/// into a 1/1000-scale scan, which this floor caps back to serial. A CLR
/// call in the plan makes rows ~10x more expensive and CPU-bound, so small
/// ranges already benefit.
inline constexpr int64_t kNativePagesPerWorker = 2048;
inline constexpr int64_t kClrPagesPerWorker = 4;

/// Work-stealing morsel queue. Morsel indices are partitioned into
/// contiguous per-worker ranges (so an uncontended worker walks
/// consecutive pages — a sequential disk stream); a worker that drains its
/// own partition steals from the back of the most-loaded victim.
class MorselQueue {
 public:
  /// Builds the grid over `n_pages` pages with `morsel_pages` per morsel,
  /// partitioned across `workers` slots.
  MorselQueue(size_t n_pages, size_t morsel_pages, int workers);

  size_t morsel_count() const { return n_morsels_; }

  /// Pops the next morsel for `worker` (own partition front first, then
  /// steal). Returns false when no work remains anywhere.
  bool Next(int worker, Morsel* out);

 private:
  struct Slot {
    std::mutex mu;
    std::deque<size_t> morsels;  // morsel indices, front = next own work
  };

  Morsel MakeMorsel(size_t index) const;

  size_t n_pages_ = 0;
  size_t morsel_pages_ = 1;
  size_t n_morsels_ = 0;
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace sqlarray::engine
