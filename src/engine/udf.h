// User-defined function registry and the CLR boundary.
//
// The paper's library surfaces as schema-qualified scalar UDFs
// (FloatArray.Item_1, FloatArrayMax.Subarray, ...) plus user-defined
// aggregates. Each registered function carries a boundary kind: kNative
// (built into the server, e.g. SUM) or kClr (hosted — every invocation pays
// the flat call overhead and per-byte marshaling the paper measures in
// Sec. 7.1, plus any declared managed-work cost).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/cost.h"
#include "engine/value.h"
#include "gov/gov.h"

namespace sqlarray::engine {

/// Where a function executes; determines boundary-cost accounting.
enum class Boundary { kNative, kClr };

/// Rows plus execution statistics of a nested query.
struct SubqueryResult {
  std::vector<std::vector<Value>> rows;
  QueryStats stats;
};

/// Runs a SQL text subquery and returns its rows — how reader-style UDFs
/// (the paper's Concat-from-query replacement for slow UDAs, Sec. 4.2)
/// pull data without being aggregates themselves. Wired up by the session.
using SubqueryFn = std::function<Result<SubqueryResult>(const std::string&)>;

/// Per-invocation execution context handed to UDF bodies.
struct UdfContext {
  storage::BufferPool* pool = nullptr;  ///< for opening blob streams
  QueryStats* stats = nullptr;          ///< may be null outside queries
  const CostModel* cost = nullptr;
  const SubqueryFn* subquery = nullptr;  ///< null outside a session
  /// Statement governance, probed at every UDF boundary crossing so a long
  /// chain of hosted calls stays cancellable. Null when ungoverned.
  const gov::QueryLimits* limits = nullptr;
};

/// A scalar function implementation.
using ScalarFn =
    std::function<Result<Value>(std::span<const Value>, UdfContext&)>;

/// A registered scalar function.
struct ScalarFunction {
  std::string schema;
  std::string name;
  int arity = 0;  ///< -1 for variadic
  Boundary boundary = Boundary::kClr;
  /// Modeled managed-work nanoseconds per call (0 for the empty function).
  double managed_work_ns = 0;
  /// Reader-style UDFs re-enter the session through ctx.subquery; they are
  /// not safe on parallel scan workers, so the planner keeps any query
  /// calling one on the serial path.
  bool needs_subquery = false;
  ScalarFn fn;
};

/// A user-defined aggregate. The engine emulates SQL Server's hosting
/// contract: the accumulator state is serialized and deserialized across
/// every row (the Sec. 4.2 bottleneck), which the cost model charges.
class Uda {
 public:
  virtual ~Uda() = default;
  /// Fresh serialized state.
  virtual Result<std::vector<uint8_t>> Init(std::span<const Value> args,
                                            UdfContext& ctx) = 0;
  /// Consumes one row, returning the new serialized state.
  virtual Result<std::vector<uint8_t>> Accumulate(
      std::span<const uint8_t> state, std::span<const Value> row_args,
      UdfContext& ctx) = 0;
  /// Produces the final value from the last state.
  virtual Result<Value> Terminate(std::span<const uint8_t> state,
                                  UdfContext& ctx) = 0;
};

/// Factory so each query gets a fresh aggregate instance.
using UdaFactory = std::function<std::unique_ptr<Uda>()>;

/// A table-valued function: called with scalar arguments, produces rows
/// (the paper's ToTable / MatrixToTable surface, Sec. 5.1). Hosted like any
/// CLR function; each produced row streams across the boundary.
struct TableValuedFunction {
  std::string schema;
  std::string name;
  int arity = 0;
  std::vector<std::string> columns;  ///< output column names
  std::function<Result<std::vector<std::vector<Value>>>(
      std::span<const Value>, UdfContext&)>
      fn;
};

/// Registry of schema-qualified functions.
class FunctionRegistry {
 public:
  Status RegisterScalar(ScalarFunction fn);
  Status RegisterUda(const std::string& schema, const std::string& name,
                     UdaFactory factory);
  Status RegisterTvf(TableValuedFunction tvf);

  /// Resolves "Schema.Name" with the given argument count (exact-arity
  /// match first, then a variadic registration).
  Result<const ScalarFunction*> Resolve(const std::string& schema,
                                        const std::string& name,
                                        int arity) const;
  Result<const UdaFactory*> ResolveUda(const std::string& schema,
                                       const std::string& name) const;
  Result<const TableValuedFunction*> ResolveTvf(const std::string& schema,
                                                const std::string& name) const;

  bool HasScalar(const std::string& schema, const std::string& name) const;

  /// Number of registered scalar functions (catalog introspection).
  int64_t scalar_count() const { return static_cast<int64_t>(scalars_.size()); }

  /// Invokes a resolved function, charging boundary costs to ctx.stats.
  static Result<Value> Invoke(const ScalarFunction& fn,
                              std::span<const Value> args, UdfContext& ctx);

 private:
  static std::string Key(const std::string& schema, const std::string& name,
                         int arity);
  std::map<std::string, ScalarFunction> scalars_;
  std::map<std::string, UdaFactory> udas_;
  std::map<std::string, TableValuedFunction> tvfs_;
};

}  // namespace sqlarray::engine
