#include "engine/value.h"

#include <cstdio>

namespace sqlarray::engine {

Result<int64_t> Value::AsInt() const {
  switch (kind_) {
    case Kind::kInt64:
      return int_;
    case Kind::kFloat64:
      return static_cast<int64_t>(dbl_);
    default:
      return Status::TypeMismatch("value is not numeric");
  }
}

Result<double> Value::AsDouble() const {
  switch (kind_) {
    case Kind::kInt64:
      return static_cast<double>(int_);
    case Kind::kFloat64:
      return dbl_;
    default:
      return Status::TypeMismatch("value is not numeric");
  }
}

Result<std::string> Value::AsString() const {
  if (kind_ != Kind::kString) {
    return Status::TypeMismatch("value is not a string");
  }
  return *str_;
}

Result<const std::vector<uint8_t>*> Value::AsBytes() const {
  if (kind_ != Kind::kBytes) {
    return Status::TypeMismatch("value is not an inline binary");
  }
  return bytes_.get();
}

Result<BlobRef> Value::AsBlob() const {
  if (kind_ != Kind::kBlob) {
    return Status::TypeMismatch("value is not an out-of-page blob");
  }
  return blob_;
}

Result<std::vector<uint8_t>> Value::MaterializeBytes() const {
  if (kind_ == Kind::kBytes) return *bytes_;
  if (kind_ == Kind::kBlob) {
    SQLARRAY_ASSIGN_OR_RETURN(storage::BlobStream stream,
                              storage::BlobStream::Open(blob_.pool, blob_.id));
    std::vector<uint8_t> out(static_cast<size_t>(blob_.id.size));
    SQLARRAY_RETURN_IF_ERROR(stream.ReadAt(0, out));
    return out;
  }
  return Status::TypeMismatch("value has no binary payload");
}

int64_t Value::ByteSize() const {
  switch (kind_) {
    case Kind::kNull:
      return 0;
    case Kind::kInt64:
    case Kind::kFloat64:
      return 8;
    case Kind::kBytes:
      return static_cast<int64_t>(bytes_->size());
    case Kind::kString:
      return static_cast<int64_t>(str_->size());
    case Kind::kBlob:
      return blob_.id.size;
  }
  return 0;
}

std::string Value::ToDisplayString() const {
  switch (kind_) {
    case Kind::kNull:
      return "NULL";
    case Kind::kInt64:
      return std::to_string(int_);
    case Kind::kFloat64: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.10g", dbl_);
      return buf;
    }
    case Kind::kBytes: {
      std::string out = "0x";
      size_t n = std::min<size_t>(bytes_->size(), 16);
      static const char* hex = "0123456789ABCDEF";
      for (size_t i = 0; i < n; ++i) {
        out += hex[(*bytes_)[i] >> 4];
        out += hex[(*bytes_)[i] & 0xF];
      }
      if (bytes_->size() > n) out += "...";
      out += " (" + std::to_string(bytes_->size()) + " bytes)";
      return out;
    }
    case Kind::kString:
      return "'" + *str_ + "'";
    case Kind::kBlob:
      return "<blob " + std::to_string(blob_.id.size) + " bytes>";
  }
  return "?";
}

}  // namespace sqlarray::engine
