// Batched expression evaluation for scan loops.
//
// Row-at-a-time execution pays a fresh heap allocation per row for every
// binary-column decode (Item_N's array argument is an 8 KB copy), plus a
// per-row argument vector for every UDF call. The batch evaluator gathers a
// block of rows (Executor::set_batch_rows, default 1024), then walks each
// expression tree ONCE per batch, evaluating node-by-node over Value
// columns drawn from a reusable arena:
//
//   * ByteBufferPool recycles the byte buffers behind kBinary column
//     Values: a buffer whose refcount has dropped back to 1 (the pool's
//     own reference) is reused for the next decode instead of reallocated.
//   * EvalArena recycles the per-node Value columns and the per-row UDF
//     argument scratch across batches.
//
// Contract: for any expression and row set, EvalBatch produces exactly the
// Values row-at-a-time Eval produces (it reuses EvalBinaryOp/EvalUnaryOp
// and the same column decode and UDF invocation), and evaluates rows of a
// column in batch order, so order-sensitive consumers (aggregate
// accumulation) see the same sequence. Only the order in which *different
// subexpressions* run changes (column-wise instead of row-wise), so a
// failing query may surface a different row's error than the row-at-a-time
// loop — the success/failure outcome and all success results are
// identical. Cost accounting: per-row charges still run per row, so charge
// totals match row-at-a-time execution exactly for native queries; when UDF
// boundary charges interleave differently (they are charged per column
// instead of per row), the double-summed total can reassociate by ulps.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "engine/expr.h"

namespace sqlarray::engine {

/// Recycles the heap buffers behind inline-bytes Values. Get() hands out a
/// buffer with no other owners; once the Value(s) holding it are dropped,
/// the buffer becomes reusable again (use_count back to 1).
class ByteBufferPool {
 public:
  std::shared_ptr<std::vector<uint8_t>> Get();

 private:
  /// Bounded probe per Get: keeps Get O(1) even when every tracked buffer
  /// escaped into long-lived results.
  static constexpr size_t kMaxProbe = 8;
  /// Tracking cap; beyond it Get falls back to untracked allocations.
  static constexpr size_t kMaxTracked = 4096;

  std::vector<std::shared_ptr<std::vector<uint8_t>>> slots_;
  size_t cursor_ = 0;
};

/// Recycles Value column vectors (one per live expression node) and the
/// per-row UDF argument scratch across batches.
class EvalArena {
 public:
  std::vector<Value>* Borrow();
  void Return(std::vector<Value>* col);
  std::vector<Value>* arg_scratch() { return &arg_scratch_; }

 private:
  std::vector<std::unique_ptr<std::vector<Value>>> owned_;
  std::vector<std::vector<Value>*> free_;
  std::vector<Value> arg_scratch_;
};

/// Scope guard that returns every column it lends to the arena, so early
/// error returns don't strand borrowed columns.
class ColumnGuard {
 public:
  explicit ColumnGuard(EvalArena* arena) : arena_(arena) {}
  ~ColumnGuard() {
    for (std::vector<Value>* col : cols_) arena_->Return(col);
  }
  ColumnGuard(const ColumnGuard&) = delete;
  ColumnGuard& operator=(const ColumnGuard&) = delete;

  std::vector<Value>* Borrow() {
    cols_.push_back(arena_->Borrow());
    return cols_.back();
  }

 private:
  EvalArena* arena_;
  std::vector<std::vector<Value>*> cols_;
};

/// A gathered block of fixed-width rows. Rows are copied out of the cursor
/// (cursor row pointers die on Next), so the batch stays valid while the
/// scan advances.
class RowBatch {
 public:
  /// Clears the batch and (re)shapes it for `capacity` rows of
  /// `row_size` bytes. The backing store is allocated once.
  void Reset(int64_t row_size, int32_t capacity);
  bool full() const { return n_ == cap_; }
  int32_t size() const { return n_; }
  int32_t capacity() const { return cap_; }
  void Push(const uint8_t* row);
  /// Bulk append: writable space for the next capacity() - size() rows;
  /// after filling the first `n` of them, CommitAppend(n) makes them part
  /// of the batch. The cursor CopyRows fill path (one memcpy per leaf-page
  /// run) goes through this instead of a Push per row.
  uint8_t* AppendSlots() {
    return data_.data() + static_cast<size_t>(n_) * row_size_;
  }
  void CommitAppend(int32_t n) { n_ += n; }
  const uint8_t* row(int32_t i) const {
    return data_.data() + static_cast<size_t>(i) * row_size_;
  }

 private:
  int64_t row_size_ = 0;
  int32_t n_ = 0;
  int32_t cap_ = 0;
  std::vector<uint8_t> data_;
};

/// Evaluation environment for one batch. `sel` restricts evaluation to a
/// subset of batch rows (post-WHERE); null means every row.
struct BatchContext {
  const storage::Schema* schema = nullptr;
  const RowBatch* batch = nullptr;
  const std::vector<int32_t>* sel = nullptr;
  std::map<std::string, Value>* variables = nullptr;
  UdfContext* udf = nullptr;
  ByteBufferPool* byte_pool = nullptr;
  EvalArena* arena = nullptr;

  int32_t NumRows() const {
    return sel != nullptr ? static_cast<int32_t>(sel->size())
                          : batch->size();
  }
  int32_t RowAt(int32_t k) const { return sel != nullptr ? (*sel)[k] : k; }
};

/// Evaluates `expr` once per (selected) row into `out` (resized to
/// NumRows()). out[k] corresponds to batch row RowAt(k).
Status EvalBatch(const Expr& expr, BatchContext& ctx,
                 std::vector<Value>* out);

}  // namespace sqlarray::engine
