#include "engine/expr.h"

#include <cmath>

namespace sqlarray::engine {

ExprPtr Lit(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Col(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kColumn;
  e->column_name = std::move(name);
  return e;
}

ExprPtr ColIdx(int index) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kColumn;
  e->column_index = index;
  return e;
}

ExprPtr Var(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kVariable;
  e->var_name = std::move(name);
  return e;
}

ExprPtr Un(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kUnary;
  e->unary_op = op;
  e->args.push_back(std::move(operand));
  return e;
}

ExprPtr Bin(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kBinary;
  e->binary_op = op;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ExprPtr Call(std::string schema, std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kCall;
  e->schema_name = std::move(schema);
  e->func_name = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr Star() {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kStar;
  return e;
}

ExprPtr CloneExpr(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->literal = e.literal;
  out->column_name = e.column_name;
  out->column_index = e.column_index;
  out->var_name = e.var_name;
  out->unary_op = e.unary_op;
  out->binary_op = e.binary_op;
  out->schema_name = e.schema_name;
  out->func_name = e.func_name;
  out->bound_fn = e.bound_fn;
  for (const ExprPtr& a : e.args) out->args.push_back(CloneExpr(*a));
  return out;
}

Result<Value> ReadRowColumn(const storage::Schema& schema, const uint8_t* row,
                            int col, UdfContext& udf) {
  auto rv_or = schema.DecodeColumn(row, col);
  if (!rv_or.ok()) return rv_or.status();
  storage::RowValue& rv = rv_or.value();
  switch (schema.column(col).type) {
    case storage::ColumnType::kInt32:
      return Value::Int(std::get<int32_t>(rv));
    case storage::ColumnType::kInt64:
      return Value::Int(std::get<int64_t>(rv));
    case storage::ColumnType::kFloat32:
      return Value::Double(std::get<float>(rv));
    case storage::ColumnType::kFloat64:
      return Value::Double(std::get<double>(rv));
    case storage::ColumnType::kBinary: {
      std::vector<uint8_t> bytes = std::get<std::vector<uint8_t>>(std::move(rv));
      return Value::Bytes(std::move(bytes));
    }
    case storage::ColumnType::kVarBinaryMax:
      return Value::Blob(BlobRef{std::get<storage::BlobId>(rv), udf.pool});
  }
  return Status::Internal("unreachable column type");
}

Result<Value> EvalBinaryOp(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();

  auto numeric = [&](auto f) -> Result<Value> {
    SQLARRAY_ASSIGN_OR_RETURN(double a, l.AsDouble());
    SQLARRAY_ASSIGN_OR_RETURN(double b, r.AsDouble());
    return f(a, b);
  };
  const bool both_int =
      l.kind() == Value::Kind::kInt64 && r.kind() == Value::Kind::kInt64;

  switch (op) {
    case BinaryOp::kAdd:
      if (both_int) return Value::Int(l.AsInt().value() + r.AsInt().value());
      return numeric([](double a, double b) { return Value::Double(a + b); });
    case BinaryOp::kSub:
      if (both_int) return Value::Int(l.AsInt().value() - r.AsInt().value());
      return numeric([](double a, double b) { return Value::Double(a - b); });
    case BinaryOp::kMul:
      if (both_int) return Value::Int(l.AsInt().value() * r.AsInt().value());
      return numeric([](double a, double b) { return Value::Double(a * b); });
    case BinaryOp::kDiv:
      if (both_int) {
        int64_t b = r.AsInt().value();
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value::Int(l.AsInt().value() / b);
      }
      return numeric([](double a, double b) -> Result<Value> {
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value::Double(a / b);
      });
    case BinaryOp::kMod: {
      SQLARRAY_ASSIGN_OR_RETURN(int64_t a, l.AsInt());
      SQLARRAY_ASSIGN_OR_RETURN(int64_t b, r.AsInt());
      if (b == 0) return Status::InvalidArgument("modulo by zero");
      return Value::Int(a % b);
    }
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      SQLARRAY_ASSIGN_OR_RETURN(double a, l.AsDouble());
      SQLARRAY_ASSIGN_OR_RETURN(double b, r.AsDouble());
      bool v = false;
      switch (op) {
        case BinaryOp::kEq: v = a == b; break;
        case BinaryOp::kNe: v = a != b; break;
        case BinaryOp::kLt: v = a < b; break;
        case BinaryOp::kLe: v = a <= b; break;
        case BinaryOp::kGt: v = a > b; break;
        default: v = a >= b; break;
      }
      return Value::Int(v ? 1 : 0);
    }
    case BinaryOp::kAnd: {
      SQLARRAY_ASSIGN_OR_RETURN(int64_t a, l.AsInt());
      SQLARRAY_ASSIGN_OR_RETURN(int64_t b, r.AsInt());
      return Value::Int((a != 0 && b != 0) ? 1 : 0);
    }
    case BinaryOp::kOr: {
      SQLARRAY_ASSIGN_OR_RETURN(int64_t a, l.AsInt());
      SQLARRAY_ASSIGN_OR_RETURN(int64_t b, r.AsInt());
      return Value::Int((a != 0 || b != 0) ? 1 : 0);
    }
  }
  return Status::Internal("unreachable binary op");
}

Result<Value> EvalUnaryOp(UnaryOp op, const Value& v) {
  if (v.is_null()) return Value::Null();
  if (op == UnaryOp::kNeg) {
    if (v.kind() == Value::Kind::kInt64) {
      return Value::Int(-v.AsInt().value());
    }
    SQLARRAY_ASSIGN_OR_RETURN(double d, v.AsDouble());
    return Value::Double(-d);
  }
  SQLARRAY_ASSIGN_OR_RETURN(int64_t b, v.AsInt());
  return Value::Int(b == 0 ? 1 : 0);
}

Result<Value> Eval(const Expr& expr, EvalContext& ctx) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kStar:
      return Value::Int(1);
    case Expr::Kind::kColumn: {
      if (expr.column_index < 0) {
        return Status::Internal("unbound column reference: " +
                                expr.column_name);
      }
      if (ctx.value_row != nullptr) {
        if (expr.column_index >= static_cast<int>(ctx.value_row->size())) {
          return Status::Internal("column index out of range for value row");
        }
        return (*ctx.value_row)[expr.column_index];
      }
      if (ctx.schema == nullptr || ctx.row == nullptr) {
        return Status::InvalidArgument(
            "column reference outside a row context");
      }
      return ReadRowColumn(*ctx.schema, ctx.row, expr.column_index, ctx.udf);
    }
    case Expr::Kind::kVariable: {
      if (ctx.variables == nullptr) {
        return Status::InvalidArgument("variables are not available here");
      }
      auto it = ctx.variables->find(expr.var_name);
      if (it == ctx.variables->end()) {
        return Status::NotFound("undeclared variable @" + expr.var_name);
      }
      return it->second;
    }
    case Expr::Kind::kUnary: {
      SQLARRAY_ASSIGN_OR_RETURN(Value v, Eval(*expr.args[0], ctx));
      return EvalUnaryOp(expr.unary_op, v);
    }
    case Expr::Kind::kBinary: {
      SQLARRAY_ASSIGN_OR_RETURN(Value l, Eval(*expr.args[0], ctx));
      SQLARRAY_ASSIGN_OR_RETURN(Value r, Eval(*expr.args[1], ctx));
      return EvalBinaryOp(expr.binary_op, l, r);
    }
    case Expr::Kind::kCall: {
      if (expr.bound_fn == nullptr) {
        return Status::Internal("unbound function call: " + expr.schema_name +
                                "." + expr.func_name);
      }
      std::vector<Value> args;
      args.reserve(expr.args.size());
      for (const ExprPtr& a : expr.args) {
        SQLARRAY_ASSIGN_OR_RETURN(Value v, Eval(*a, ctx));
        args.push_back(std::move(v));
      }
      return FunctionRegistry::Invoke(*expr.bound_fn, args, ctx.udf);
    }
  }
  return Status::Internal("unreachable expr kind");
}

Status BindExpr(Expr* expr, const storage::Schema* schema,
                const FunctionRegistry* registry) {
  switch (expr->kind) {
    case Expr::Kind::kColumn:
      if (expr->column_index < 0) {
        if (schema == nullptr) {
          return Status::InvalidArgument("column '" + expr->column_name +
                                         "' referenced without a table");
        }
        SQLARRAY_ASSIGN_OR_RETURN(int idx,
                                  schema->ColumnIndex(expr->column_name));
        expr->column_index = idx;
      }
      return Status::OK();
    case Expr::Kind::kCall: {
      for (ExprPtr& a : expr->args) {
        SQLARRAY_RETURN_IF_ERROR(BindExpr(a.get(), schema, registry));
      }
      if (expr->bound_fn == nullptr) {
        if (registry == nullptr) {
          return Status::InvalidArgument("no function registry available");
        }
        SQLARRAY_ASSIGN_OR_RETURN(
            const ScalarFunction* fn,
            registry->Resolve(expr->schema_name, expr->func_name,
                              static_cast<int>(expr->args.size())));
        expr->bound_fn = fn;
      }
      return Status::OK();
    }
    default:
      for (ExprPtr& a : expr->args) {
        SQLARRAY_RETURN_IF_ERROR(BindExpr(a.get(), schema, registry));
      }
      return Status::OK();
  }
}

Status BindExprToColumns(Expr* expr,
                         const std::vector<std::string>& columns,
                         const FunctionRegistry* registry) {
  if (expr->kind == Expr::Kind::kColumn && expr->column_index < 0) {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == expr->column_name) {
        expr->column_index = static_cast<int>(i);
        return Status::OK();
      }
    }
    return Status::NotFound("no column named " + expr->column_name);
  }
  if (expr->kind == Expr::Kind::kCall) {
    for (ExprPtr& a : expr->args) {
      SQLARRAY_RETURN_IF_ERROR(BindExprToColumns(a.get(), columns, registry));
    }
    if (expr->bound_fn == nullptr) {
      if (registry == nullptr) {
        return Status::InvalidArgument("no function registry available");
      }
      SQLARRAY_ASSIGN_OR_RETURN(
          const ScalarFunction* fn,
          registry->Resolve(expr->schema_name, expr->func_name,
                            static_cast<int>(expr->args.size())));
      expr->bound_fn = fn;
    }
    return Status::OK();
  }
  for (ExprPtr& a : expr->args) {
    SQLARRAY_RETURN_IF_ERROR(BindExprToColumns(a.get(), columns, registry));
  }
  return Status::OK();
}

bool NeedsRow(const Expr& expr) {
  if (expr.kind == Expr::Kind::kColumn || expr.kind == Expr::Kind::kStar) {
    return true;
  }
  for (const ExprPtr& a : expr.args) {
    if (NeedsRow(*a)) return true;
  }
  return false;
}

}  // namespace sqlarray::engine
