// Per-statement execution context: stats + profile + trace in one owner.
//
// The redesign seam of ISSUE 4: instead of threading a bare QueryStats
// pointer through ad-hoc APIs (and saving/restoring Session::last_stats_
// around nested subqueries), every statement owns one QueryContext for its
// lifetime. The executor fills stats, records trace spans into the sink,
// and — when collect_profile is set — builds the operator profile tree that
// EXPLAIN ANALYZE renders as a result set. Nested work (reader-style UDF
// subqueries) runs under its own context and is merged into the enclosing
// one explicitly by the caller, never by mutating shared session state.
#pragma once

#include <memory>

#include "engine/cost.h"
#include "gov/gov.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "storage/snapshot.h"

namespace sqlarray::engine {

struct QueryContext {
  QueryStats stats;
  obs::QueryProfile profile;
  obs::TraceSink trace;
  /// Build the operator profile tree (EXPLAIN ANALYZE). Also switches on
  /// per-function UDF boundary attribution in the stats.
  bool collect_profile = false;
  /// Governance bundle for the statement: cancellation token and memory
  /// budget, both optional. The executor probes the token in every scan
  /// loop and charges the budget where query-private memory grows.
  gov::QueryLimits limits;
  /// When set, every table scan in the statement reads through this
  /// consistent snapshot (MVCC / AS OF) instead of the live tree — serial,
  /// morsel-parallel, and vectorized paths alike, so one statement sees
  /// exactly one version of the world. Null = live reads (legacy).
  std::shared_ptr<storage::PageSource> snapshot;
};

}  // namespace sqlarray::engine
