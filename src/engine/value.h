// Runtime values flowing through expressions and UDFs.
//
// The engine's value domain mirrors what T-SQL expressions over our tables
// produce: NULL, BIGINT, FLOAT, VARBINARY (inline bytes), strings, and
// out-of-page blob references (VARBINARY(MAX) columns, carried by reference
// so UDFs can stream them instead of materializing).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/blob.h"

namespace sqlarray::engine {

/// A reference to an out-of-page blob plus the pool needed to read it.
struct BlobRef {
  storage::BlobId id;
  storage::BufferPool* pool = nullptr;
};

/// A runtime value. Bytes are shared so copies are cheap (SQL value
/// semantics without defensive copying).
class Value {
 public:
  enum class Kind { kNull, kInt64, kFloat64, kBytes, kString, kBlob };

  Value() : kind_(Kind::kNull) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value x;
    x.kind_ = Kind::kInt64;
    x.int_ = v;
    return x;
  }
  static Value Double(double v) {
    Value x;
    x.kind_ = Kind::kFloat64;
    x.dbl_ = v;
    return x;
  }
  static Value Bytes(std::vector<uint8_t> bytes) {
    Value x;
    x.kind_ = Kind::kBytes;
    x.bytes_ = std::make_shared<std::vector<uint8_t>>(std::move(bytes));
    return x;
  }
  static Value SharedBytes(std::shared_ptr<std::vector<uint8_t>> bytes) {
    Value x;
    x.kind_ = Kind::kBytes;
    x.bytes_ = std::move(bytes);
    return x;
  }
  static Value Str(std::string s) {
    Value x;
    x.kind_ = Kind::kString;
    x.str_ = std::make_shared<std::string>(std::move(s));
    return x;
  }
  static Value Blob(BlobRef ref) {
    Value x;
    x.kind_ = Kind::kBlob;
    x.blob_ = ref;
    return x;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Numeric accessors with SQL-style coercion (int <-> float widen).
  Result<int64_t> AsInt() const;
  Result<double> AsDouble() const;
  Result<std::string> AsString() const;

  /// Inline bytes; fails for blob refs (use Materialize / AsBlob).
  Result<const std::vector<uint8_t>*> AsBytes() const;
  Result<BlobRef> AsBlob() const;

  /// Returns the value's bytes, reading an out-of-page blob if needed.
  Result<std::vector<uint8_t>> MaterializeBytes() const;

  /// Logical payload size in bytes (for marshaling cost accounting).
  int64_t ByteSize() const;

  /// Debug / result rendering.
  std::string ToDisplayString() const;

 private:
  Kind kind_;
  int64_t int_ = 0;
  double dbl_ = 0;
  std::shared_ptr<std::vector<uint8_t>> bytes_;
  std::shared_ptr<std::string> str_;
  BlobRef blob_;
};

}  // namespace sqlarray::engine
