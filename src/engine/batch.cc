#include "engine/batch.h"

#include <cstring>

#include "common/bytes.h"

namespace sqlarray::engine {

std::shared_ptr<std::vector<uint8_t>> ByteBufferPool::Get() {
  const size_t n = slots_.size();
  const size_t probes = n < kMaxProbe ? n : kMaxProbe;
  for (size_t i = 0; i < probes; ++i) {
    std::shared_ptr<std::vector<uint8_t>>& slot =
        slots_[(cursor_ + i) % n];
    if (slot.use_count() == 1) {
      cursor_ = (cursor_ + i + 1) % n;
      return slot;
    }
  }
  auto buf = std::make_shared<std::vector<uint8_t>>();
  if (n < kMaxTracked) {
    slots_.push_back(buf);
    cursor_ = 0;
  }
  return buf;
}

std::vector<Value>* EvalArena::Borrow() {
  if (!free_.empty()) {
    std::vector<Value>* col = free_.back();
    free_.pop_back();
    return col;
  }
  owned_.push_back(std::make_unique<std::vector<Value>>());
  return owned_.back().get();
}

void EvalArena::Return(std::vector<Value>* col) {
  col->clear();
  free_.push_back(col);
}

void RowBatch::Reset(int64_t row_size, int32_t capacity) {
  row_size_ = row_size;
  cap_ = capacity;
  n_ = 0;
  data_.resize(static_cast<size_t>(row_size) * capacity);
}

void RowBatch::Push(const uint8_t* row) {
  std::memcpy(data_.data() + static_cast<size_t>(n_) * row_size_, row,
              static_cast<size_t>(row_size_));
  ++n_;
}

namespace {

/// kBinary column decode into a pooled buffer — the batch-mode replacement
/// for DecodeColumn's fresh std::vector per row. Mirrors its validation.
Status DecodeBinaryPooled(const storage::ColumnDef& col, const uint8_t* p,
                          ByteBufferPool* pool, Value* out) {
  uint16_t len = DecodeLE<uint16_t>(p);
  if (len > col.capacity) {
    return Status::Corruption("binary column length exceeds capacity");
  }
  std::shared_ptr<std::vector<uint8_t>> buf = pool->Get();
  buf->assign(p + 2, p + 2 + len);
  *out = Value::SharedBytes(std::move(buf));
  return Status::OK();
}

Status EvalColumnRef(const Expr& expr, BatchContext& ctx,
                     std::vector<Value>* out) {
  if (expr.column_index < 0) {
    return Status::Internal("unbound column reference: " + expr.column_name);
  }
  if (ctx.schema == nullptr || ctx.batch == nullptr) {
    return Status::InvalidArgument("column reference outside a row context");
  }
  const int32_t n = ctx.NumRows();
  const storage::ColumnDef& col = ctx.schema->column(expr.column_index);
  const int64_t offset = ctx.schema->column_offset(expr.column_index);
  if (col.type == storage::ColumnType::kBinary && ctx.byte_pool != nullptr) {
    for (int32_t k = 0; k < n; ++k) {
      const uint8_t* row = ctx.batch->row(ctx.RowAt(k));
      SQLARRAY_RETURN_IF_ERROR(
          DecodeBinaryPooled(col, row + offset, ctx.byte_pool, &(*out)[k]));
    }
    return Status::OK();
  }
  for (int32_t k = 0; k < n; ++k) {
    const uint8_t* row = ctx.batch->row(ctx.RowAt(k));
    auto v = ReadRowColumn(*ctx.schema, row, expr.column_index, *ctx.udf);
    if (!v.ok()) return v.status();
    (*out)[k] = std::move(v).value();
  }
  return Status::OK();
}

}  // namespace

Status EvalBatch(const Expr& expr, BatchContext& ctx,
                 std::vector<Value>* out) {
  const int32_t n = ctx.NumRows();
  out->resize(n);
  switch (expr.kind) {
    case Expr::Kind::kLiteral: {
      for (int32_t k = 0; k < n; ++k) (*out)[k] = expr.literal;
      return Status::OK();
    }
    case Expr::Kind::kStar: {
      for (int32_t k = 0; k < n; ++k) (*out)[k] = Value::Int(1);
      return Status::OK();
    }
    case Expr::Kind::kVariable: {
      if (ctx.variables == nullptr) {
        return Status::InvalidArgument("variables are not available here");
      }
      auto it = ctx.variables->find(expr.var_name);
      if (it == ctx.variables->end()) {
        return Status::NotFound("undeclared variable @" + expr.var_name);
      }
      for (int32_t k = 0; k < n; ++k) (*out)[k] = it->second;
      return Status::OK();
    }
    case Expr::Kind::kColumn:
      return EvalColumnRef(expr, ctx, out);
    case Expr::Kind::kUnary: {
      ColumnGuard guard(ctx.arena);
      std::vector<Value>* operand = guard.Borrow();
      SQLARRAY_RETURN_IF_ERROR(EvalBatch(*expr.args[0], ctx, operand));
      for (int32_t k = 0; k < n; ++k) {
        auto v = EvalUnaryOp(expr.unary_op, (*operand)[k]);
        if (!v.ok()) return v.status();
        (*out)[k] = std::move(v).value();
      }
      return Status::OK();
    }
    case Expr::Kind::kBinary: {
      ColumnGuard guard(ctx.arena);
      std::vector<Value>* lhs = guard.Borrow();
      std::vector<Value>* rhs = guard.Borrow();
      SQLARRAY_RETURN_IF_ERROR(EvalBatch(*expr.args[0], ctx, lhs));
      SQLARRAY_RETURN_IF_ERROR(EvalBatch(*expr.args[1], ctx, rhs));
      for (int32_t k = 0; k < n; ++k) {
        auto v = EvalBinaryOp(expr.binary_op, (*lhs)[k], (*rhs)[k]);
        if (!v.ok()) return v.status();
        (*out)[k] = std::move(v).value();
      }
      return Status::OK();
    }
    case Expr::Kind::kCall: {
      if (expr.bound_fn == nullptr) {
        return Status::Internal("unbound function call: " + expr.schema_name +
                                "." + expr.func_name);
      }
      const size_t n_args = expr.args.size();
      ColumnGuard guard(ctx.arena);
      std::vector<std::vector<Value>*> arg_cols;
      arg_cols.reserve(n_args);
      for (size_t a = 0; a < n_args; ++a) {
        arg_cols.push_back(guard.Borrow());
        SQLARRAY_RETURN_IF_ERROR(EvalBatch(*expr.args[a], ctx, arg_cols[a]));
      }
      std::vector<Value>& args = *ctx.arena->arg_scratch();
      for (int32_t k = 0; k < n; ++k) {
        args.clear();
        for (size_t a = 0; a < n_args; ++a) {
          args.push_back((*arg_cols[a])[k]);
        }
        auto v = FunctionRegistry::Invoke(*expr.bound_fn, args, *ctx.udf);
        if (!v.ok()) return v.status();
        (*out)[k] = std::move(v).value();
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable expr kind");
}

}  // namespace sqlarray::engine
