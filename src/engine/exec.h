// Query executor: clustered index scans with filters, projections,
// aggregates (native and user-defined), and GROUP BY.
//
// Execution is real (results are actually computed); virtual time is
// accounted against the CostModel so benches can report the modeled testbed
// numbers next to measured wall time. Eligible scans run morsel-driven
// parallel plans over a persistent worker pool (engine/parallel.h), with
// partial results merged in deterministic morsel-index order so any worker
// count produces bit-identical results.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/cost.h"
#include "engine/expr.h"
#include "engine/parallel.h"
#include "engine/query_context.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"

namespace sqlarray::engine {

class Executor;

/// RAII installation of the session's subquery runner (how reader-style
/// UDFs pull rows). The scope OWNS the function; the executor only points
/// at it while the scope (or the scope it was moved into) is alive, and the
/// destructor uninstalls it — replacing the old raw-pointer
/// install/uninstall pairing whose Session-destructor ordering was a
/// use-after-free hazard. Move-only; a later install displaces an earlier
/// one (the displaced scope's destructor then does nothing).
class SubqueryScope {
 public:
  SubqueryScope() = default;
  SubqueryScope(SubqueryScope&& o) noexcept { *this = std::move(o); }
  SubqueryScope& operator=(SubqueryScope&& o) noexcept;
  SubqueryScope(const SubqueryScope&) = delete;
  SubqueryScope& operator=(const SubqueryScope&) = delete;
  ~SubqueryScope() { Release(); }

  /// True while this scope's runner is (still) installed.
  bool active() const;
  /// Uninstalls early (no-op if displaced or never installed).
  void Release();

 private:
  friend class Executor;
  SubqueryScope(Executor* executor, SubqueryFn fn);

  Executor* executor_ = nullptr;
  /// Heap-allocated so moving the scope never invalidates the executor's
  /// pointer to the function.
  std::unique_ptr<SubqueryFn> fn_;
};

/// One SELECT-list item: either a plain expression (a group key or a
/// row-mode projection) or a single aggregate over an argument expression.
struct SelectItem {
  enum class AggKind { kNone, kCount, kSum, kMin, kMax, kAvg, kUda };

  AggKind agg = AggKind::kNone;
  /// Projection / aggregate argument (null for COUNT(*)).
  ExprPtr expr;
  /// UDA identification and arguments (agg == kUda).
  std::string uda_schema;
  std::string uda_name;
  std::vector<ExprPtr> uda_args;
  /// Output column label.
  std::string label;
};

/// A bound single-source query. The source is a table, a table-valued
/// function, or nothing (FROM-less SELECT).
struct Query {
  storage::Table* table = nullptr;  ///< null unless selecting from a table
  /// Table-valued function source (e.g. FloatArray.ToTable(@a)).
  const TableValuedFunction* tvf = nullptr;
  std::vector<ExprPtr> tvf_args;
  std::vector<SelectItem> items;
  ExprPtr where;                    ///< optional filter
  std::vector<ExprPtr> group_by;    ///< optional grouping keys
  int64_t top = -1;                 ///< row limit, -1 = unlimited
};

/// Materialized query result plus its statistics.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;
  QueryStats stats;

  /// Convenience for single-cell results.
  Result<Value> ScalarResult() const;
};

/// How eligible scans are divided across workers.
enum class ParallelMode {
  /// Morsel-driven (default): a work-stealing queue of small leaf-page
  /// ranges served by the persistent worker pool, all sharing the
  /// database's buffer pool; partial results merge in morsel-index order.
  kMorsel,
  /// The pre-morsel scheme, kept for bench comparison: fresh threads per
  /// query, one static leaf-chain chunk and a private buffer pool per
  /// worker, ungrouped native aggregates only.
  kStaticChunkLegacy,
};

/// Executes bound queries against a Database.
class Executor {
 public:
  Executor(storage::Database* db, FunctionRegistry* registry,
           CostModel cost = {})
      : db_(db), registry_(registry), cost_(cost) {}

  storage::Database* db() { return db_; }
  FunctionRegistry* registry() { return registry_; }
  const CostModel& cost_model() const { return cost_; }
  CostModel* mutable_cost_model() { return &cost_; }

  /// Installs the session's subquery runner so reader-style UDFs can pull
  /// rows, for exactly the lifetime of the returned scope. Only one runner
  /// is active at a time; installing another displaces the previous scope.
  [[nodiscard]] SubqueryScope InstallSubqueryRunner(SubqueryFn fn);

  /// Degree of parallelism for eligible scans (table source, no UDA, no
  /// reader-style UDF): ungrouped aggregates, GROUP BY, and row-mode
  /// filters/TOP. The effective worker count is additionally capped by the
  /// table's page count so tiny scans skip the fixed per-worker setup.
  /// Results are bit-identical at any worker count: eligible queries run
  /// the morsel plan even at 1 worker (inline, no thread dispatch), and
  /// partials always merge in morsel-index order.
  void set_scan_workers(int workers) { scan_workers_ = workers; }
  int scan_workers() const { return scan_workers_; }

  /// Selects the parallel scheduling scheme (bench comparison hook).
  void set_parallel_mode(ParallelMode mode) { parallel_mode_ = mode; }
  ParallelMode parallel_mode() const { return parallel_mode_; }

  /// Overrides the leaf-pages-per-worker amortization floor (tests force
  /// real multi-threading on tiny tables with 0); negative restores the
  /// cost-model heuristic.
  void set_min_pages_per_worker(int64_t pages) {
    min_pages_per_worker_ = pages;
  }

  /// The persistent scan worker pool (created on first parallel query and
  /// reused after that; test/introspection access).
  WorkerPool* worker_pool() { return worker_pool_.get(); }

  /// Rows gathered per evaluation batch on eligible scans (table source, no
  /// GROUP BY, no UDA, no TOP). Values <= 1 force row-at-a-time execution;
  /// results are identical either way (engine/batch.h documents the
  /// contract), which tests/test_engine.cc exercises differentially.
  void set_batch_rows(int rows) { batch_rows_ = rows; }
  int batch_rows() const { return batch_rows_; }

  /// Toggles the fused columnar pipeline (engine/vec_expr.h) inside the
  /// batched paths. On (the default), WHERE and eligible select items
  /// compile to column-kernel programs; expressions outside the columnar
  /// domain fall back to the batched row evaluator per item. Off forces
  /// every batched evaluation through EvalBatch. Results are bit-identical
  /// either way at any batch size and worker count
  /// (tests/test_vec.cc exercises this differentially).
  void set_vectorized(bool on) { vectorized_ = on; }
  bool vectorized() const { return vectorized_; }

  /// Evaluates a standalone (FROM-less) expression. When `stats` is given,
  /// UDF boundary costs (and any nested-subquery work merged by reader-style
  /// UDFs) are accounted there.
  Result<Value> EvalStandalone(const Expr& expr,
                               std::map<std::string, Value>* variables,
                               QueryStats* stats = nullptr);

  /// Binds the query's expressions against the table schema + registry.
  Status Bind(Query* q) const;

  /// Runs a bound query.
  Result<ResultSet> Execute(const Query& q,
                            std::map<std::string, Value>* variables);

  /// Runs a bound query under a statement context: stats are copied into
  /// qctx->stats, trace spans are recorded into qctx->trace (with morsel
  /// work on per-morsel lanes), and — when qctx->collect_profile is set —
  /// the operator profile tree is built into qctx->profile. Null qctx is
  /// equivalent to the two-argument overload.
  Result<ResultSet> Execute(const Query& q,
                            std::map<std::string, Value>* variables,
                            QueryContext* qctx);

 private:
  friend class SubqueryScope;

  /// The Execute dispatch (plan selection); qctx may be null.
  Result<ResultSet> ExecuteInternal(const Query& q,
                                    std::map<std::string, Value>* variables,
                                    QueryContext* qctx);
  /// Builds qctx->profile from the executed query, the result's stats, the
  /// buffer-pool and registry deltas spanning the execution, and the trace.
  void BuildProfile(const Query& q, const ResultSet& rs,
                    const storage::BufferPool::Stats& pool_before,
                    const obs::MetricsSnapshot& metrics_before,
                    std::map<std::string, Value>* variables,
                    QueryContext* qctx);
  Result<ResultSet> ExecuteAggregate(const Query& q,
                                     std::map<std::string, Value>* variables,
                                     QueryContext* qctx);
  /// Batched ungrouped aggregation (no UDAs): gathers row blocks and
  /// evaluates WHERE / aggregate arguments column-wise.
  Result<ResultSet> ExecuteAggregateBatched(
      const Query& q, std::map<std::string, Value>* variables,
      QueryContext* qctx);
  Result<ResultSet> ExecuteRows(const Query& q,
                                std::map<std::string, Value>* variables,
                                QueryContext* qctx);
  /// Batched row-mode scan (no TOP limit).
  Result<ResultSet> ExecuteRowsBatched(
      const Query& q, std::map<std::string, Value>* variables,
      QueryContext* qctx);
  /// Evaluates a TVF source's arguments and materializes its rows, charging
  /// the boundary costs.
  Result<std::vector<std::vector<Value>>> MaterializeTvf(
      const Query& q, std::map<std::string, Value>* variables,
      QueryStats* stats);

  /// True when the query can take a morsel-driven plan: table source, no
  /// UDA items, no reader-style (subquery-reentrant) UDF anywhere.
  bool MorselEligible(const Query& q) const;
  /// Morsel-driven ungrouped native aggregation (plain items allowed,
  /// first-surviving-row semantics).
  Result<ResultSet> ExecuteAggregateMorsel(
      const Query& q, std::map<std::string, Value>* variables,
      QueryContext* qctx);
  /// Morsel-driven GROUP BY: per-morsel partial hash aggregation merged in
  /// morsel-index order.
  Result<ResultSet> ExecuteGroupByMorsel(
      const Query& q, std::map<std::string, Value>* variables,
      QueryContext* qctx);
  /// Morsel-driven row-mode scan: per-morsel result buffers gathered in
  /// page order; TOP short-circuits through a shared row-count token.
  Result<ResultSet> ExecuteRowsMorsel(const Query& q,
                                      std::map<std::string, Value>* variables,
                                      QueryContext* qctx);
  /// Runs `body` over every morsel of the grid on `workers` pool threads
  /// (inline when workers == 1); returns the first failure in morsel order.
  /// Each body invocation runs under a trace lane equal to its morsel index
  /// when qctx is given, so spans stitch deterministically.
  Status RunMorselScan(size_t n_pages, size_t morsel_pages, int workers,
                       QueryContext* qctx,
                       const std::function<Status(const Morsel&)>& body);
  /// Dispatches fn to the persistent pool (inline at 1 worker).
  void RunOnWorkers(int workers, const std::function<void(int)>& fn);
  /// Legacy static-chunk ungrouped aggregation (ParallelMode comparison).
  Result<ResultSet> ExecuteAggregateStaticChunk(
      const Query& q, std::map<std::string, Value>* variables);

  storage::Database* db_;
  FunctionRegistry* registry_;
  CostModel cost_;
  /// Atomic because concurrent sessions sharing one executor install their
  /// runners at construction while other sessions' queries read the pointer
  /// (last install wins; scopes keep the functions alive).
  std::atomic<const SubqueryFn*> subquery_fn_{nullptr};
  int scan_workers_ = 1;
  int batch_rows_ = 1024;
  bool vectorized_ = true;
  ParallelMode parallel_mode_ = ParallelMode::kMorsel;
  int64_t min_pages_per_worker_ = -1;
  /// Serializes pool creation and Run: the WorkerPool accepts one job at a
  /// time, and the multi-session front-end can race parallel scans.
  std::mutex pool_mu_;
  std::unique_ptr<WorkerPool> worker_pool_;
};

}  // namespace sqlarray::engine
