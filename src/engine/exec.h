// Query executor: clustered index scans with filters, projections,
// aggregates (native and user-defined), and GROUP BY.
//
// Execution is single-threaded and real (results are actually computed);
// virtual time is accounted against the CostModel so benches can report the
// modeled testbed numbers next to measured wall time.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/cost.h"
#include "engine/expr.h"
#include "storage/table.h"

namespace sqlarray::engine {

/// One SELECT-list item: either a plain expression (a group key or a
/// row-mode projection) or a single aggregate over an argument expression.
struct SelectItem {
  enum class AggKind { kNone, kCount, kSum, kMin, kMax, kAvg, kUda };

  AggKind agg = AggKind::kNone;
  /// Projection / aggregate argument (null for COUNT(*)).
  ExprPtr expr;
  /// UDA identification and arguments (agg == kUda).
  std::string uda_schema;
  std::string uda_name;
  std::vector<ExprPtr> uda_args;
  /// Output column label.
  std::string label;
};

/// A bound single-source query. The source is a table, a table-valued
/// function, or nothing (FROM-less SELECT).
struct Query {
  storage::Table* table = nullptr;  ///< null unless selecting from a table
  /// Table-valued function source (e.g. FloatArray.ToTable(@a)).
  const TableValuedFunction* tvf = nullptr;
  std::vector<ExprPtr> tvf_args;
  std::vector<SelectItem> items;
  ExprPtr where;                    ///< optional filter
  std::vector<ExprPtr> group_by;    ///< optional grouping keys
  int64_t top = -1;                 ///< row limit, -1 = unlimited
};

/// Materialized query result plus its statistics.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;
  QueryStats stats;

  /// Convenience for single-cell results.
  Result<Value> ScalarResult() const;
};

/// Executes bound queries against a Database.
class Executor {
 public:
  Executor(storage::Database* db, FunctionRegistry* registry,
           CostModel cost = {})
      : db_(db), registry_(registry), cost_(cost) {}

  storage::Database* db() { return db_; }
  FunctionRegistry* registry() { return registry_; }
  const CostModel& cost_model() const { return cost_; }
  CostModel* mutable_cost_model() { return &cost_; }

  /// Installs the session's subquery runner so reader-style UDFs can pull
  /// rows (null to clear).
  void set_subquery_runner(const SubqueryFn* fn) { subquery_fn_ = fn; }

  /// Degree of parallelism for eligible aggregate scans (ungrouped, no
  /// UDAs). 1 = serial. Workers each scan a disjoint leaf-page range with
  /// their own buffer pool and merge partial aggregates, like the host
  /// engine's parallel query plans.
  void set_scan_workers(int workers) { scan_workers_ = workers; }
  int scan_workers() const { return scan_workers_; }

  /// Rows gathered per evaluation batch on eligible scans (table source, no
  /// GROUP BY, no UDA, no TOP). Values <= 1 force row-at-a-time execution;
  /// results are identical either way (engine/batch.h documents the
  /// contract), which tests/test_engine.cc exercises differentially.
  void set_batch_rows(int rows) { batch_rows_ = rows; }
  int batch_rows() const { return batch_rows_; }

  /// Evaluates a standalone (FROM-less) expression. When `stats` is given,
  /// UDF boundary costs (and any nested-subquery work merged by reader-style
  /// UDFs) are accounted there.
  Result<Value> EvalStandalone(const Expr& expr,
                               std::map<std::string, Value>* variables,
                               QueryStats* stats = nullptr);

  /// Binds the query's expressions against the table schema + registry.
  Status Bind(Query* q) const;

  /// Runs a bound query.
  Result<ResultSet> Execute(const Query& q,
                            std::map<std::string, Value>* variables);

 private:
  Result<ResultSet> ExecuteAggregate(const Query& q,
                                     std::map<std::string, Value>* variables);
  /// Batched ungrouped aggregation (no UDAs): gathers row blocks and
  /// evaluates WHERE / aggregate arguments column-wise.
  Result<ResultSet> ExecuteAggregateBatched(
      const Query& q, std::map<std::string, Value>* variables);
  Result<ResultSet> ExecuteRows(const Query& q,
                                std::map<std::string, Value>* variables);
  /// Batched row-mode scan (no TOP limit).
  Result<ResultSet> ExecuteRowsBatched(
      const Query& q, std::map<std::string, Value>* variables);
  /// Evaluates a TVF source's arguments and materializes its rows, charging
  /// the boundary costs.
  Result<std::vector<std::vector<Value>>> MaterializeTvf(
      const Query& q, std::map<std::string, Value>* variables,
      QueryStats* stats);
  /// Multithreaded ungrouped aggregation over disjoint leaf-page chunks.
  Result<ResultSet> ExecuteAggregateParallel(
      const Query& q, std::map<std::string, Value>* variables);

  storage::Database* db_;
  FunctionRegistry* registry_;
  CostModel cost_;
  const SubqueryFn* subquery_fn_ = nullptr;
  int scan_workers_ = 1;
  int batch_rows_ = 1024;
};

}  // namespace sqlarray::engine
