#include "engine/parallel.h"

#include <algorithm>

#include "obs/metrics.h"

namespace sqlarray::engine {

// ---------------------------------------------------------------------------
// WorkerPool

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int WorkerPool::thread_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

void WorkerPool::Run(int workers, const std::function<void(int)>& fn) {
  if (workers <= 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  while (static_cast<int>(threads_.size()) < workers) {
    int slot = static_cast<int>(threads_.size());
    threads_.emplace_back([this, slot] { ThreadMain(slot); });
  }
  job_ = &fn;
  job_workers_ = workers;
  job_remaining_ = workers;
  ++job_seq_;
  work_cv_.notify_all();
  uint64_t seq = job_seq_;
  done_cv_.wait(lock, [this, seq] {
    return job_seq_ == seq && job_remaining_ == 0;
  });
  job_ = nullptr;
}

void WorkerPool::ThreadMain(int slot) {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this, &seen, slot] {
      return shutdown_ || (job_seq_ != seen && slot < job_workers_);
    });
    if (shutdown_) return;
    seen = job_seq_;
    const std::function<void(int)>* job = job_;
    lock.unlock();
    (*job)(slot);
    lock.lock();
    if (--job_remaining_ == 0) done_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Morsel sizing / worker capping

int64_t MorselPages(int64_t leaf_pages) {
  if (leaf_pages <= 0) return 1;
  // ~256 morsels per table keeps stealing granular while bounding the merge
  // fan-in; floor of 16 pages so a morsel is a meaningful sequential read.
  return std::clamp<int64_t>(leaf_pages / 256, 16, 512);
}

int EffectiveWorkers(int requested, int64_t leaf_pages, int64_t n_morsels,
                     int64_t min_pages_per_worker) {
  if (requested <= 1 || leaf_pages <= 0 || n_morsels <= 0) return 1;
  int64_t by_pages =
      min_pages_per_worker <= 0
          ? static_cast<int64_t>(requested)
          : std::max<int64_t>(1, leaf_pages / min_pages_per_worker);
  // Never more workers than morsels — surplus threads would only steal.
  int64_t cap = std::min<int64_t>(by_pages, n_morsels);
  return static_cast<int>(std::min<int64_t>(requested, cap));
}

// ---------------------------------------------------------------------------
// MorselQueue

MorselQueue::MorselQueue(size_t n_pages, size_t morsel_pages, int workers)
    : n_pages_(n_pages),
      morsel_pages_(morsel_pages == 0 ? 1 : morsel_pages) {
  n_morsels_ = (n_pages_ + morsel_pages_ - 1) / morsel_pages_;
  if (workers < 1) workers = 1;
  slots_.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    slots_.push_back(std::make_unique<Slot>());
  }
  // Contiguous partitions: worker w owns morsels [w*per, ...), so an
  // uncontended worker reads consecutive pages — one sequential stream.
  size_t per = n_morsels_ / static_cast<size_t>(workers);
  size_t extra = n_morsels_ % static_cast<size_t>(workers);
  size_t next = 0;
  for (int w = 0; w < workers; ++w) {
    size_t take = per + (static_cast<size_t>(w) < extra ? 1 : 0);
    for (size_t i = 0; i < take; ++i) {
      slots_[static_cast<size_t>(w)]->morsels.push_back(next++);
    }
  }
}

Morsel MorselQueue::MakeMorsel(size_t index) const {
  Morsel m;
  m.index = index;
  m.page_begin = index * morsel_pages_;
  m.page_end = std::min(n_pages_, m.page_begin + morsel_pages_);
  return m;
}

bool MorselQueue::Next(int worker, Morsel* out) {
  size_t self = static_cast<size_t>(worker) % slots_.size();
  {
    Slot& slot = *slots_[self];
    std::lock_guard<std::mutex> lock(slot.mu);
    if (!slot.morsels.empty()) {
      *out = MakeMorsel(slot.morsels.front());
      slot.morsels.pop_front();
      return true;
    }
  }
  // Steal from the back of the most-loaded victim, so the owner keeps its
  // sequential front and the thief takes the far end of the range.
  for (;;) {
    size_t victim = slots_.size();
    size_t best = 0;
    for (size_t v = 0; v < slots_.size(); ++v) {
      if (v == self) continue;
      Slot& s = *slots_[v];
      std::lock_guard<std::mutex> lock(s.mu);
      if (s.morsels.size() > best) {
        best = s.morsels.size();
        victim = v;
      }
    }
    if (victim == slots_.size()) return false;
    Slot& s = *slots_[victim];
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.morsels.empty()) continue;  // raced; rescan victims
    *out = MakeMorsel(s.morsels.back());
    s.morsels.pop_back();
    static obs::Counter* steals =
        obs::MetricsRegistry::Global().GetCounter("exec.morsel.steals");
    steals->Add(1);
    return true;
  }
}

}  // namespace sqlarray::engine
