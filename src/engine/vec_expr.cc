#include "engine/vec_expr.h"

#include <cstdint>

namespace sqlarray::engine::vec {

using col::ColumnVec;
using col::Lane;

int32_t VecProgram::Emit(const Instr& in, Lane lane) {
  instrs_.push_back(in);
  lanes_.push_back(lane);
  return static_cast<int32_t>(instrs_.size()) - 1;
}

int32_t VecProgram::ToF64(int32_t r) {
  if (lanes_[r] == Lane::kF64) return r;
  Instr in;
  in.op = Op::kI2F;
  in.a = r;
  return Emit(in, Lane::kF64);
}

int32_t VecProgram::ToI64(int32_t r) {
  if (lanes_[r] == Lane::kI64) return r;
  Instr in;
  in.op = Op::kF2I;
  in.a = r;
  return Emit(in, Lane::kI64);
}

bool VecProgram::Compile(const Expr& expr, const storage::Schema& schema,
                         const std::map<std::string, Value>* variables,
                         VecProgram* out) {
  out->instrs_.clear();
  out->lanes_.clear();
  out->row_size_ = schema.row_size();
  return out->CompileNode(expr, schema, variables) >= 0;
}

int32_t VecProgram::CompileNode(const Expr& e, const storage::Schema& schema,
                                const std::map<std::string, Value>* variables) {
  switch (e.kind) {
    case Expr::Kind::kLiteral: {
      const Value& v = e.literal;
      Instr in;
      if (v.kind() == Value::Kind::kInt64) {
        in.op = Op::kConstI;
        in.icon = v.AsInt().value();
        return Emit(in, Lane::kI64);
      }
      if (v.kind() == Value::Kind::kFloat64) {
        in.op = Op::kConstF;
        in.fcon = v.AsDouble().value();
        return Emit(in, Lane::kF64);
      }
      if (v.kind() == Value::Kind::kNull) {
        in.op = Op::kConstNull;
        return Emit(in, Lane::kI64);
      }
      return -1;  // bytes/string/blob literals stay on the row path
    }

    case Expr::Kind::kVariable: {
      // Variables are statement constants: bake the value in. An undeclared
      // variable falls back so EvalBatch raises the row path's NotFound.
      if (variables == nullptr) return -1;
      auto it = variables->find(e.var_name);
      if (it == variables->end()) return -1;
      const Value& v = it->second;
      Instr in;
      if (v.kind() == Value::Kind::kInt64) {
        in.op = Op::kConstI;
        in.icon = v.AsInt().value();
        return Emit(in, Lane::kI64);
      }
      if (v.kind() == Value::Kind::kFloat64) {
        in.op = Op::kConstF;
        in.fcon = v.AsDouble().value();
        return Emit(in, Lane::kF64);
      }
      if (v.kind() == Value::Kind::kNull) {
        in.op = Op::kConstNull;
        return Emit(in, Lane::kI64);
      }
      return -1;
    }

    case Expr::Kind::kColumn: {
      if (e.column_index < 0) return -1;
      const storage::ColumnDef& def = schema.column(e.column_index);
      Instr in;
      in.offset = schema.column_offset(e.column_index);
      switch (def.type) {
        case storage::ColumnType::kInt32:
          in.op = Op::kLoadI32;
          return Emit(in, Lane::kI64);
        case storage::ColumnType::kInt64:
          in.op = Op::kLoadI64;
          return Emit(in, Lane::kI64);
        case storage::ColumnType::kFloat32:
          in.op = Op::kLoadF32;
          return Emit(in, Lane::kF64);
        case storage::ColumnType::kFloat64:
          in.op = Op::kLoadF64;
          return Emit(in, Lane::kF64);
        default:
          return -1;  // binary / VARBINARY(MAX) columns are not lane types
      }
    }

    case Expr::Kind::kUnary: {
      if (e.args.size() != 1 || e.args[0] == nullptr) return -1;
      int32_t a = CompileNode(*e.args[0], schema, variables);
      if (a < 0) return -1;
      Instr in;
      if (e.unary_op == UnaryOp::kNeg) {
        // Row path: kInt64 stays integer, everything else negates the
        // AsDouble coercion.
        if (lanes_[a] == Lane::kI64) {
          in.op = Op::kNegI;
          in.a = a;
          return Emit(in, Lane::kI64);
        }
        in.op = Op::kNegF;
        in.a = a;
        return Emit(in, Lane::kF64);
      }
      in.op = Op::kNotI;
      in.a = ToI64(a);  // NOT truthiness is int64 (doubles truncate)
      return Emit(in, Lane::kI64);
    }

    case Expr::Kind::kBinary: {
      if (e.args.size() != 2 || e.args[0] == nullptr || e.args[1] == nullptr) {
        return -1;
      }
      int32_t a = CompileNode(*e.args[0], schema, variables);
      if (a < 0) return -1;
      int32_t b = CompileNode(*e.args[1], schema, variables);
      if (b < 0) return -1;
      const bool both_int = lanes_[a] == Lane::kI64 && lanes_[b] == Lane::kI64;
      Instr in;
      switch (e.binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul: {
          if (both_int) {
            in.op = e.binary_op == BinaryOp::kAdd   ? Op::kAddI
                    : e.binary_op == BinaryOp::kSub ? Op::kSubI
                                                    : Op::kMulI;
            in.a = a;
            in.b = b;
            return Emit(in, Lane::kI64);
          }
          in.op = e.binary_op == BinaryOp::kAdd   ? Op::kAddF
                  : e.binary_op == BinaryOp::kSub ? Op::kSubF
                                                  : Op::kMulF;
          in.a = ToF64(a);
          in.b = ToF64(b);
          return Emit(in, Lane::kF64);
        }
        case BinaryOp::kDiv: {
          if (both_int) {
            in.op = Op::kDivI;
            in.a = a;
            in.b = b;
            return Emit(in, Lane::kI64);
          }
          in.op = Op::kDivF;
          in.a = ToF64(a);
          in.b = ToF64(b);
          return Emit(in, Lane::kF64);
        }
        case BinaryOp::kMod: {
          // Row path coerces BOTH operands through AsInt (truncation).
          in.op = Op::kModI;
          in.a = ToI64(a);
          in.b = ToI64(b);
          return Emit(in, Lane::kI64);
        }
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          // Comparisons always run in the double domain (even int/int:
          // AsDouble coercion, lossy past 2^53 — part of the contract).
          in.op = Op::kCmp;
          switch (e.binary_op) {
            case BinaryOp::kEq: in.cmp = col::CmpOp::kEq; break;
            case BinaryOp::kNe: in.cmp = col::CmpOp::kNe; break;
            case BinaryOp::kLt: in.cmp = col::CmpOp::kLt; break;
            case BinaryOp::kLe: in.cmp = col::CmpOp::kLe; break;
            case BinaryOp::kGt: in.cmp = col::CmpOp::kGt; break;
            default:            in.cmp = col::CmpOp::kGe; break;
          }
          in.a = ToF64(a);
          in.b = ToF64(b);
          return Emit(in, Lane::kI64);
        }
        case BinaryOp::kAnd:
        case BinaryOp::kOr: {
          in.op = e.binary_op == BinaryOp::kAnd ? Op::kAndI : Op::kOrI;
          in.a = ToI64(a);
          in.b = ToI64(b);
          return Emit(in, Lane::kI64);
        }
      }
      return -1;
    }

    case Expr::Kind::kCall:
    case Expr::Kind::kStar:
      return -1;
  }
  return -1;
}

Status VecProgram::Run(const RowBatch& batch, const std::vector<int32_t>* sel,
                       std::vector<ColumnVec>* regs) const {
  const int32_t n =
      sel != nullptr ? static_cast<int32_t>(sel->size()) : batch.size();
  if (regs->size() < instrs_.size()) regs->resize(instrs_.size());
  const int32_t* selp = sel != nullptr ? sel->data() : nullptr;
  const uint8_t* base = batch.size() > 0 ? batch.row(0) : nullptr;

  for (size_t i = 0; i < instrs_.size(); ++i) {
    const Instr& in = instrs_[i];
    ColumnVec& ro = (*regs)[i];
    const ColumnVec* ra = in.a >= 0 ? &(*regs)[in.a] : nullptr;
    const ColumnVec* rb = in.b >= 0 ? &(*regs)[in.b] : nullptr;
    switch (in.op) {
      case Op::kConstI:
        col::FillI64(in.icon, n, ro.MutableI64(n));
        ro.SetAllValid();
        break;
      case Op::kConstF:
        col::FillF64(in.fcon, n, ro.MutableF64(n));
        ro.SetAllValid();
        break;
      case Op::kConstNull:
        col::FillI64(0, n, ro.MutableI64(n));
        ro.SetAllNull();
        break;

      case Op::kLoadI32: {
        int64_t* o = ro.MutableI64(n);
        if (n > 0) col::GatherI64FromI32(base + in.offset, row_size_, selp, n, o);
        ro.SetAllValid();
        break;
      }
      case Op::kLoadI64: {
        // Dense scan of a batch whose whole row IS the value: alias the
        // batch bytes instead of copying.
        if (selp == nullptr && row_size_ == 8 && in.offset == 0 && n > 0 &&
            (reinterpret_cast<uintptr_t>(base) & 7) == 0) {
          ro.ViewI64(reinterpret_cast<const int64_t*>(base), n);
          break;
        }
        int64_t* o = ro.MutableI64(n);
        if (n > 0) col::GatherI64FromI64(base + in.offset, row_size_, selp, n, o);
        ro.SetAllValid();
        break;
      }
      case Op::kLoadF32: {
        double* o = ro.MutableF64(n);
        if (n > 0) col::GatherF64FromF32(base + in.offset, row_size_, selp, n, o);
        ro.SetAllValid();
        break;
      }
      case Op::kLoadF64: {
        if (selp == nullptr && row_size_ == 8 && in.offset == 0 && n > 0 &&
            (reinterpret_cast<uintptr_t>(base) & 7) == 0) {
          ro.ViewF64(reinterpret_cast<const double*>(base), n);
          break;
        }
        double* o = ro.MutableF64(n);
        if (n > 0) col::GatherF64FromF64(base + in.offset, row_size_, selp, n, o);
        ro.SetAllValid();
        break;
      }

      case Op::kAddI:
        SQLARRAY_RETURN_IF_ERROR(col::AddI64(ra->i64(), rb->i64(), n, ro.MutableI64(n)));
        ro.IntersectValidity(*ra, *rb);
        break;
      case Op::kSubI:
        SQLARRAY_RETURN_IF_ERROR(col::SubI64(ra->i64(), rb->i64(), n, ro.MutableI64(n)));
        ro.IntersectValidity(*ra, *rb);
        break;
      case Op::kMulI:
        SQLARRAY_RETURN_IF_ERROR(col::MulI64(ra->i64(), rb->i64(), n, ro.MutableI64(n)));
        ro.IntersectValidity(*ra, *rb);
        break;
      case Op::kDivI: {
        // Validity first: the kernel skips its zero check at NULL lanes.
        int64_t* o = ro.MutableI64(n);
        ro.IntersectValidity(*ra, *rb);
        SQLARRAY_RETURN_IF_ERROR(
            col::DivI64(ra->i64(), rb->i64(), ro.valid_words(), n, o));
        break;
      }
      case Op::kModI: {
        int64_t* o = ro.MutableI64(n);
        ro.IntersectValidity(*ra, *rb);
        SQLARRAY_RETURN_IF_ERROR(
            col::ModI64(ra->i64(), rb->i64(), ro.valid_words(), n, o));
        break;
      }

      case Op::kAddF:
        SQLARRAY_RETURN_IF_ERROR(col::AddF64(ra->f64(), rb->f64(), n, ro.MutableF64(n)));
        ro.IntersectValidity(*ra, *rb);
        break;
      case Op::kSubF:
        SQLARRAY_RETURN_IF_ERROR(col::SubF64(ra->f64(), rb->f64(), n, ro.MutableF64(n)));
        ro.IntersectValidity(*ra, *rb);
        break;
      case Op::kMulF:
        SQLARRAY_RETURN_IF_ERROR(col::MulF64(ra->f64(), rb->f64(), n, ro.MutableF64(n)));
        ro.IntersectValidity(*ra, *rb);
        break;
      case Op::kDivF: {
        double* o = ro.MutableF64(n);
        ro.IntersectValidity(*ra, *rb);
        SQLARRAY_RETURN_IF_ERROR(
            col::DivF64(ra->f64(), rb->f64(), ro.valid_words(), n, o));
        break;
      }

      case Op::kCmp:
        SQLARRAY_RETURN_IF_ERROR(
            col::CmpF64(in.cmp, ra->f64(), rb->f64(), n, ro.MutableI64(n)));
        ro.IntersectValidity(*ra, *rb);
        break;

      case Op::kAndI:
        SQLARRAY_RETURN_IF_ERROR(col::AndI64(ra->i64(), rb->i64(), n, ro.MutableI64(n)));
        ro.IntersectValidity(*ra, *rb);
        break;
      case Op::kOrI:
        SQLARRAY_RETURN_IF_ERROR(col::OrI64(ra->i64(), rb->i64(), n, ro.MutableI64(n)));
        ro.IntersectValidity(*ra, *rb);
        break;

      case Op::kNegI:
        SQLARRAY_RETURN_IF_ERROR(col::NegI64(ra->i64(), n, ro.MutableI64(n)));
        ro.CopyValidity(*ra);
        break;
      case Op::kNegF:
        SQLARRAY_RETURN_IF_ERROR(col::NegF64(ra->f64(), n, ro.MutableF64(n)));
        ro.CopyValidity(*ra);
        break;
      case Op::kNotI:
        SQLARRAY_RETURN_IF_ERROR(col::NotI64(ra->i64(), n, ro.MutableI64(n)));
        ro.CopyValidity(*ra);
        break;

      case Op::kI2F:
        SQLARRAY_RETURN_IF_ERROR(col::I64ToF64(ra->i64(), n, ro.MutableF64(n)));
        ro.CopyValidity(*ra);
        break;
      case Op::kF2I:
        SQLARRAY_RETURN_IF_ERROR(col::F64ToI64(ra->f64(), n, ro.MutableI64(n)));
        ro.CopyValidity(*ra);
        break;
    }
  }
  return Status::OK();
}

Status VecFilter(const VecProgram& prog, const RowBatch& batch,
                 std::vector<ColumnVec>* regs, ColumnVec* trunc,
                 std::vector<int32_t>* sel) {
  SQLARRAY_RETURN_IF_ERROR(prog.Run(batch, nullptr, regs));
  const ColumnVec& keep = prog.Result(*regs);
  const int32_t n = batch.size();
  const int64_t* v;
  if (keep.lane() == Lane::kF64) {
    // FilterBatch truthiness goes through Value::AsInt: doubles truncate.
    int64_t* t = trunc->MutableI64(n);
    SQLARRAY_RETURN_IF_ERROR(col::F64ToI64(keep.f64(), n, t));
    v = t;
  } else {
    v = keep.i64();
  }
  sel->clear();
  col::BuildSel(v, keep.valid_words(), n, sel);
  return Status::OK();
}

void ColumnToValues(const ColumnVec& c, std::vector<Value>* out) {
  const int32_t n = c.size();
  out->resize(n);
  if (c.lane() == Lane::kI64) {
    const int64_t* v = c.i64();
    for (int32_t k = 0; k < n; ++k) {
      (*out)[k] = c.ValidAt(k) ? Value::Int(v[k]) : Value::Null();
    }
    return;
  }
  const double* v = c.f64();
  for (int32_t k = 0; k < n; ++k) {
    (*out)[k] = c.ValidAt(k) ? Value::Double(v[k]) : Value::Null();
  }
}

}  // namespace sqlarray::engine::vec
