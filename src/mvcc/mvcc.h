// MVCC: snapshot isolation and time-travel reads over the WAL.
//
// The manager layers multi-versioning ON TOP of the existing single-writer
// redo-only WAL without changing the disk format, the log record codec, or
// recovery. The trick is WHERE writes live before commit:
//
//   * An MVCC transaction never touches shared state. Its inserts/deletes
//     go to a private SHADOW B-tree — a copy of the shared tree with
//     overlay-backed page IO — which gives read-your-writes and duplicate-
//     key detection, and to an ordered logical op list.
//   * At commit the op list REPLAYS through the plain Table::Insert/Delete
//     path under the WAL's existing DML lock (AcquireApply), so the bytes
//     that reach the log and the data disk are exactly what a legacy
//     serialized execution would have produced. Recovery is unchanged.
//   * The buffer pool is copy-on-write: every page replacement hands the
//     superseded immutable image to the manager (VersionSink), which chains
//     it under the LSN interval it was current for. Snapshot readers serve
//     pages from the current pool when unchanged since their LSN, else
//     from the chain — readers never block writers and vice versa.
//
// Write conflicts are first-updater-wins: claiming a (table, key) that a
// live transaction owns, or that committed past the claimant's begin LSN,
// fails with kWriteConflict carrying retry_after_ms. Version GC is keyed
// off the oldest active snapshot. AS OF <lsn> reads rebuild an arbitrary
// historical view from the log's full-page images, so they survive both
// restart and chain GC.
//
// The manager is strictly opt-in: without AttachMvcc the database behaves
// byte-identically to the legacy engine. Legacy Begin() transactions and
// MVCC transactions must not be mixed in one process.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/snapshot.h"
#include "storage/table.h"
#include "wal/wal.h"

namespace sqlarray::mvcc {

struct MvccConfig {
  /// Version-chain memory budget. When retained history exceeds this, new
  /// snapshot acquisition fails with kResourceExhausted (backpressure:
  /// long-lived snapshots are what pins history).
  int64_t history_budget_bytes = 256ll << 20;
  /// retry_after_ms handed to first-updater-wins losers.
  int64_t conflict_retry_ms = 5;
};

/// MVCC runtime statistics (mirrors the obs registry, test-friendly).
struct MvccStats {
  int64_t snapshots_active = 0;
  int64_t versions_created = 0;
  int64_t versions_gc = 0;
  int64_t write_conflicts = 0;
  int64_t history_bytes = 0;
  storage::Lsn oldest_snapshot_lsn = 0;
  storage::Lsn visible_lsn = 0;
};

class MvccManager : public storage::VersionSink {
 public:
  /// Attaches to a WAL-managed database: installs the buffer pool's
  /// version sink, the WAL crash/recovery observer, and registers itself
  /// via Database::AttachMvcc. `db` and `wal` must outlive the manager.
  MvccManager(storage::Database* db, wal::WalManager* wal,
              MvccConfig config = {});
  ~MvccManager() override;

  MvccManager(const MvccManager&) = delete;
  MvccManager& operator=(const MvccManager&) = delete;

  // --- Transactions -------------------------------------------------------

  /// Starts an MVCC transaction (no locks held; many may be open at once).
  Result<uint64_t> Begin();

  /// Buffers an insert: claims the row key (first-updater-wins), applies it
  /// to the transaction's shadow tree (duplicate detection, read-your-
  /// writes), and queues the op for commit replay. Blob bytes are NOT
  /// spilled until commit.
  Status ApplyInsert(uint64_t txn, storage::Table* table, storage::Row row);

  /// Buffers a delete; returns false when the key is absent from the
  /// transaction's view of the table.
  Result<bool> ApplyDelete(uint64_t txn, storage::Table* table, int64_t key);

  /// Replays the transaction's ops through the legacy write path under the
  /// WAL's DML lock, logs the commit, stamps the claims and version
  /// horizon with the commit LSN, and GCs history. `commit_lsn_out`
  /// (optional) receives the commit LSN. An empty transaction commits
  /// without logging anything.
  Status Commit(uint64_t txn, storage::Lsn* commit_lsn_out = nullptr);

  /// Discards the transaction: shadow state and claims evaporate. Nothing
  /// shared was touched, so there is nothing to undo.
  Status Rollback(uint64_t txn);

  bool TxnActive(uint64_t txn) const;

  // --- Snapshots ----------------------------------------------------------

  /// A consistent read view at the current visibility horizon. The view
  /// registers as an active snapshot (pinning history) until destroyed;
  /// it must not outlive the manager. Fails with kResourceExhausted when
  /// retained history exceeds the configured budget.
  Result<std::shared_ptr<storage::PageSource>> AcquireSnapshot();

  /// A historical view AS OF `lsn`, rebuilt from the log's full-page
  /// images — independent of the version chains, so it works across
  /// restart/recovery and after GC. Pages never logged (written before the
  /// WAL attached) fall back to the data disk, and roots of tables with no
  /// logged catalog entry fall back to the in-memory root history.
  Result<std::shared_ptr<storage::PageSource>> OpenAsOf(storage::Lsn lsn);

  /// AS OF CHECKPOINT: resolves the last durable checkpoint's LSN.
  Result<std::shared_ptr<storage::PageSource>> OpenAsOfCheckpoint();

  /// An open transaction's private view: overlay pages first (its shadow
  /// writes), then chain visibility at the view's LSN. Statements inside
  /// the transaction scan through this (read-your-writes). Registers as an
  /// active snapshot (pinning history) until destroyed.
  Result<std::shared_ptr<storage::PageSource>> TxnView(uint64_t txn);

  // --- DDL / maintenance --------------------------------------------------

  /// Runs `fn` (typically CREATE TABLE + NoteTableCreated) serialized
  /// against commit replay under the WAL's DML lock. MVCC DDL is
  /// non-transactional: it is visible immediately on return.
  Status RunDdl(const std::function<Status()>& fn);

  /// Re-snapshots every table root and advances the visibility horizon to
  /// the WAL's quiescent LSN. Call after non-transactional bulk loads.
  Status RefreshVisible();

  /// Current visibility horizon (the LSN a fresh snapshot would get).
  storage::Lsn visible_lsn() const {
    return visible_.load(std::memory_order_acquire);
  }

  MvccStats Stats() const;

  /// Arms a simulated crash inside the NEXT Commit() call:
  ///   1 = before the replay starts (nothing shared touched)
  ///   2 = after the first op replays (mid-apply, WAL txn open)
  ///   3 = all ops replayed, commit record not yet written
  /// The failed Commit returns kInternal with the WAL transaction left
  /// open; drive WalManager::SimulateCrash()/Recover() from this thread.
  void set_commit_crash_step(int step) { commit_crash_step_ = step; }

  // VersionSink: called by the buffer pool (under its shard lock) with the
  // immutable image a page replacement superseded.
  void OnPageWrite(storage::PageId id,
                   std::shared_ptr<const storage::Page> old_image,
                   storage::Lsn new_lsn) override;

 private:
  friend class LiveSnapshotView;
  friend class TxnSnapshotView;

  struct TxnState {
    uint64_t id = 0;
    storage::Lsn begin_lsn = 0;
    /// Shadow-written pages (page id -> private image). Reads check here
    /// before the shared pool.
    std::unordered_map<storage::PageId, std::shared_ptr<const storage::Page>>
        overlay;
    storage::PageIO io;
    /// Per-table shadow trees (copies of the shared tree with `io`).
    std::map<std::string, storage::BTree> shadows;
    struct Op {
      bool is_insert = false;
      std::string table;
      storage::Row row;  ///< insert: the ORIGINAL row (blobs unspilled)
      int64_t key = 0;   ///< delete
    };
    std::vector<Op> ops;
    std::vector<std::pair<std::string, int64_t>> claims;
  };

  struct Claim {
    uint64_t owner = 0;            ///< live claimant txn id; 0 = none
    storage::Lsn committed_lsn = 0;  ///< last commit that wrote this key
  };

  struct Version {
    storage::Lsn written_lsn = 0;  ///< LSN at which this image became current
    std::shared_ptr<const storage::Page> image;
  };

  /// Looks a live transaction up (mu_ taken inside). The returned pointer
  /// stays valid while the owning session thread keeps the txn open.
  Result<TxnState*> FindTxn(uint64_t txn) const;

  /// First-updater-wins claim; records the key in `t->claims` on success.
  Status ClaimKey(TxnState* t, const std::string& table, int64_t key);

  /// Returns the shadow tree for `table`, copying the shared tree on first
  /// touch.
  Result<storage::BTree*> ShadowFor(TxnState* t, storage::Table* table);

  /// Serves page `id` as of snapshot `lsn`: the pool's current image when
  /// the page has not moved past the snapshot, else the right chain entry.
  Result<storage::PinnedPage> FetchAt(storage::PageId id, storage::Lsn lsn);

  /// Newest root of `table` at or below `lsn` (mu_ held by caller).
  Result<storage::PageId> RootAtLocked(const std::string& table,
                                       storage::Lsn lsn) const;

  /// Drops chain entries no active snapshot can reach (mu_ held).
  void RunGcLocked();

  /// Removes committed claim entries no possible claimant can conflict
  /// with (mu_ held).
  void PruneClaimsLocked();

  /// Registers visible_ as an active snapshot (pinning history) and
  /// returns it (mu_ held).
  storage::Lsn RegisterSnapshotLocked();

  /// Releases a dead transaction's key claims and erases its state; used
  /// by Rollback and by Commit's failure paths, where leaking an owned
  /// claim would wedge its keys in WRITE_CONFLICT forever.
  void AbandonTxn(uint64_t txn);
  void AbandonTxnLocked(
      std::map<uint64_t, std::unique_ptr<TxnState>>::iterator it);

  void ReleaseSnapshot(storage::Lsn lsn);

  void OnWalCrash();
  void OnWalRecovered(storage::Lsn resume_lsn);

  /// Re-seeds root history from the live catalog at `lsn` (mu_ held).
  void SeedRootsLocked(storage::Lsn lsn);

  storage::Database* db_;
  wal::WalManager* wal_;
  storage::BufferPool* pool_;
  MvccConfig config_;

  /// Leaf lock: taken under the pool's shard lock (OnPageWrite) and the
  /// WAL's DML lock; never take pool or WAL locks while holding it.
  mutable std::mutex mu_;
  std::unordered_map<storage::PageId, std::vector<Version>> chains_;
  /// Last write LSN per page; SURVIVES eviction (the pool's entry does
  /// not), which is what makes the visibility check sound.
  std::unordered_map<storage::PageId, storage::Lsn> latest_lsn_;
  std::multiset<storage::Lsn> snapshots_;
  std::map<std::string, std::vector<std::pair<storage::Lsn, storage::PageId>>>
      root_history_;
  std::map<std::pair<std::string, int64_t>, Claim> claims_;
  std::map<uint64_t, std::unique_ptr<TxnState>> txns_;
  int64_t history_bytes_ = 0;

  std::atomic<storage::Lsn> visible_{0};
  // Atomic: concurrent committers race to consume an armed step, and the
  // test harness arms it from a thread that is not the committer.
  std::atomic<int> commit_crash_step_{0};

  obs::Counter* reg_versions_created_;
  obs::Counter* reg_versions_gc_;
  obs::Counter* reg_write_conflicts_;
  obs::Gauge* reg_snapshots_active_;
  obs::Gauge* reg_oldest_snapshot_;
  obs::Gauge* reg_history_bytes_;
};

}  // namespace sqlarray::mvcc
