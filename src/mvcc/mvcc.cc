#include "mvcc/mvcc.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <variant>

#include "wal/log.h"
#include "wal/record.h"

namespace sqlarray::mvcc {

namespace {

using storage::Lsn;
using storage::Page;
using storage::PageId;
using storage::PinnedPage;

constexpr Lsn kNoSnapshot = std::numeric_limits<Lsn>::max();

/// Clustered key of a row: the first column, which every table here keys on.
Result<int64_t> RowKey(const storage::Row& row) {
  if (row.empty() || !std::holds_alternative<int64_t>(row[0])) {
    return Status::InvalidArgument("row key (first column) must be BIGINT");
  }
  return std::get<int64_t>(row[0]);
}

}  // namespace

// ---------------------------------------------------------------------------
// Snapshot views
// ---------------------------------------------------------------------------

/// The committed state at one LSN, served from the pool + version chains.
class LiveSnapshotView : public storage::PageSource {
 public:
  LiveSnapshotView(MvccManager* mgr, Lsn lsn) : mgr_(mgr), lsn_(lsn) {}
  ~LiveSnapshotView() override { mgr_->ReleaseSnapshot(lsn_); }

  Lsn lsn() const override { return lsn_; }

  Result<PinnedPage> Fetch(PageId id) override {
    return mgr_->FetchAt(id, lsn_);
  }

  Result<PageId> TableRoot(const std::string& table) override {
    std::lock_guard<std::mutex> lock(mgr_->mu_);
    return mgr_->RootAtLocked(table, lsn_);
  }

 private:
  MvccManager* mgr_;
  Lsn lsn_;
};

/// An open transaction's read-your-writes view: overlay pages first, the
/// shared state second. All non-overlay pages resolve through chain
/// visibility at the view's LSN (the view registers as an active snapshot,
/// pinning that history), so scans of tables the transaction has NOT
/// shadowed see a consistent committed snapshot even when a concurrent
/// commit restructures the tree mid-statement. Shadowed tables walk from
/// the shadow root copied at the transaction's first write to that table;
/// a foreign commit into the same table between that copy and this view's
/// creation can still mix tree structure from copy time with pages at the
/// view's LSN (the documented residual anomaly of in-transaction scans).
class TxnSnapshotView : public storage::PageSource {
 public:
  TxnSnapshotView(MvccManager* mgr, MvccManager::TxnState* txn, Lsn lsn)
      : mgr_(mgr), txn_(txn), lsn_(lsn) {}
  ~TxnSnapshotView() override { mgr_->ReleaseSnapshot(lsn_); }

  Lsn lsn() const override { return lsn_; }

  Result<PinnedPage> Fetch(PageId id) override {
    // The overlay is only mutated by the owning session's DML calls, which
    // never overlap its statement scans, so lock-free reads are safe here.
    auto it = txn_->overlay.find(id);
    if (it != txn_->overlay.end()) {
      return PinnedPage::FromImage(id, it->second);
    }
    return mgr_->FetchAt(id, lsn_);
  }

  Result<PageId> TableRoot(const std::string& table) override {
    auto it = txn_->shadows.find(table);
    if (it != txn_->shadows.end()) return it->second.root_page();
    std::lock_guard<std::mutex> lock(mgr_->mu_);
    return mgr_->RootAtLocked(table, lsn_);
  }

 private:
  MvccManager* mgr_;
  MvccManager::TxnState* txn_;
  Lsn lsn_;
};

namespace {

/// An arbitrary historical LSN, rebuilt from the log's full-page images.
/// Immutable after construction, so concurrent worker fetches are free.
class LogSnapshotView : public storage::PageSource {
 public:
  LogSnapshotView(Lsn lsn,
                  std::unordered_map<PageId, std::shared_ptr<const Page>> pages,
                  std::map<std::string, PageId> roots,
                  storage::SimulatedDisk* disk)
      : lsn_(lsn), pages_(std::move(pages)), roots_(std::move(roots)),
        disk_(disk) {}

  Lsn lsn() const override { return lsn_; }

  Result<PinnedPage> Fetch(PageId id) override {
    auto it = pages_.find(id);
    if (it != pages_.end()) return PinnedPage::FromImage(id, it->second);
    // Never logged at or before the snapshot LSN: the page predates the
    // WAL (bulk data loaded before the manager attached). The data disk
    // holds its only image.
    auto image = std::make_shared<Page>();
    SQLARRAY_RETURN_IF_ERROR(disk_->ReadPage(id, image.get()));
    return PinnedPage::FromImage(id, std::move(image));
  }

  Result<PageId> TableRoot(const std::string& table) override {
    auto it = roots_.find(table);
    if (it == roots_.end()) {
      return Status::NotFound("table " + table +
                              " did not exist at lsn " + std::to_string(lsn_));
    }
    return it->second;
  }

 private:
  Lsn lsn_;
  std::unordered_map<PageId, std::shared_ptr<const Page>> pages_;
  std::map<std::string, PageId> roots_;
  storage::SimulatedDisk* disk_;
};

}  // namespace

// ---------------------------------------------------------------------------
// MvccManager
// ---------------------------------------------------------------------------

MvccManager::MvccManager(storage::Database* db, wal::WalManager* wal,
                         MvccConfig config)
    : db_(db),
      wal_(wal),
      pool_(db->buffer_pool()),
      config_(config),
      reg_versions_created_(obs::MetricsRegistry::Global().GetCounter(
          "mvcc.versions_created")),
      reg_versions_gc_(
          obs::MetricsRegistry::Global().GetCounter("mvcc.versions_gc")),
      reg_write_conflicts_(
          obs::MetricsRegistry::Global().GetCounter("mvcc.write_conflicts")),
      reg_snapshots_active_(
          obs::MetricsRegistry::Global().GetGauge("mvcc.snapshots_active")),
      reg_oldest_snapshot_(
          obs::MetricsRegistry::Global().GetGauge("mvcc.oldest_snapshot_lsn")),
      reg_history_bytes_(
          obs::MetricsRegistry::Global().GetGauge("mvcc.history_bytes")) {
  Lsn now = 0;
  if (Result<Lsn> q = wal_->QuiescentLsn(); q.ok()) now = *q;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SeedRootsLocked(0);
  }
  visible_.store(now, std::memory_order_release);
  pool_->SetVersionSink(this);
  wal::WalObserver obs;
  obs.on_crash = [this] { OnWalCrash(); };
  obs.on_recovered = [this](Lsn resume) { OnWalRecovered(resume); };
  wal_->SetObserver(std::move(obs));
  db_->AttachMvcc(this);
}

MvccManager::~MvccManager() {
  pool_->SetVersionSink(nullptr);
  wal_->SetObserver({});
  db_->AttachMvcc(nullptr);
}

void MvccManager::SeedRootsLocked(Lsn lsn) {
  for (const std::string& name : db_->TableNames()) {
    Result<storage::Table*> table = db_->GetTable(name);
    if (!table.ok()) continue;
    PageId root = (*table)->clustered_index().root_page();
    auto& hist = root_history_[name];
    if (hist.empty() || hist.back().second != root) {
      hist.emplace_back(lsn, root);
    }
  }
}

void MvccManager::OnWalCrash() {
  std::lock_guard<std::mutex> lock(mu_);
  chains_.clear();
  latest_lsn_.clear();
  root_history_.clear();
  claims_.clear();
  txns_.clear();
  snapshots_.clear();
  history_bytes_ = 0;
  visible_.store(0, std::memory_order_release);
  reg_snapshots_active_->Set(0);
  reg_oldest_snapshot_->Set(0);
  reg_history_bytes_->Set(0);
}

void MvccManager::OnWalRecovered(Lsn resume_lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  // History did not survive the crash; the recovered state IS the world at
  // resume_lsn. AS OF still reaches further back via the log itself.
  chains_.clear();
  latest_lsn_.clear();
  root_history_.clear();
  history_bytes_ = 0;
  SeedRootsLocked(0);
  visible_.store(resume_lsn, std::memory_order_release);
  reg_history_bytes_->Set(0);
}

// --- VersionSink -----------------------------------------------------------

void MvccManager::OnPageWrite(PageId id,
                              std::shared_ptr<const Page> old_image,
                              Lsn new_lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  Lsn prev = 0;
  if (auto it = latest_lsn_.find(id); it != latest_lsn_.end()) {
    prev = it->second;
  }
  latest_lsn_[id] = new_lsn;
  if (old_image == nullptr) return;  // prior image unrecoverable (fresh page)
  auto& chain = chains_[id];
  chain.insert(chain.begin(), Version{prev, std::move(old_image)});
  history_bytes_ += storage::kPageSize;
  reg_versions_created_->Add(1);
  reg_history_bytes_->Set(history_bytes_);
}

Result<PinnedPage> MvccManager::FetchAt(PageId id, Lsn lsn) {
  // Pin the current image FIRST: a concurrent overwrite after the check
  // below would otherwise race the chain push. Pinning before reading
  // latest_lsn_ means either (a) the page hasn't moved past `lsn` and the
  // pin is the right image, or (b) it has, and the chain (whose entries
  // are pushed before the pool swaps images) has the one we need.
  SQLARRAY_ASSIGN_OR_RETURN(PinnedPage current, pool_->GetPage(id));
  std::lock_guard<std::mutex> lock(mu_);
  Lsn latest = 0;
  if (auto it = latest_lsn_.find(id); it != latest_lsn_.end()) {
    latest = it->second;
  }
  if (latest <= lsn) return current;
  if (auto it = chains_.find(id); it != chains_.end()) {
    for (const Version& v : it->second) {  // newest first
      if (v.written_lsn <= lsn) return PinnedPage::FromImage(id, v.image);
    }
  }
  return Status::Internal("snapshot version of page " + std::to_string(id) +
                          " at lsn " + std::to_string(lsn) +
                          " is no longer retained");
}

Result<PageId> MvccManager::RootAtLocked(const std::string& table,
                                         Lsn lsn) const {
  auto it = root_history_.find(table);
  if (it == root_history_.end()) {
    return Status::NotFound("table " + table + " did not exist at lsn " +
                            std::to_string(lsn));
  }
  PageId root = storage::kNullPage;
  bool any = false;
  for (const auto& [at, r] : it->second) {  // ascending append order
    if (at <= lsn) {
      root = r;
      any = true;
    }
  }
  if (!any) {
    return Status::NotFound("table " + table + " did not exist at lsn " +
                            std::to_string(lsn));
  }
  return root;
}

// --- Transactions ----------------------------------------------------------

Result<uint64_t> MvccManager::Begin() {
  SQLARRAY_ASSIGN_OR_RETURN(uint64_t id, wal_->BeginDeferred());
  auto txn = std::make_unique<TxnState>();
  TxnState* t = txn.get();
  t->id = id;
  storage::BufferPool* pool = pool_;
  t->io.fetch = [t, pool](PageId pid) -> Result<PinnedPage> {
    auto it = t->overlay.find(pid);
    if (it != t->overlay.end()) return PinnedPage::FromImage(pid, it->second);
    return pool->GetPage(pid);
  };
  t->io.write = [t](PageId pid, const Page& page) -> Status {
    t->overlay[pid] = std::make_shared<Page>(page);
    return Status::OK();
  };
  t->io.alloc = [pool]() -> PageId { return pool->AllocatePage(); };
  std::lock_guard<std::mutex> lock(mu_);
  // begin_lsn is sampled and the txn registered under ONE critical
  // section. Sampling outside it would open a window where a concurrent
  // Commit/Rollback's PruneClaimsLocked sees no open transactions and
  // erases a committed claim this txn must still conflict with — a lost
  // update past first-updater-wins.
  t->begin_lsn = visible_.load(std::memory_order_acquire);
  txns_[id] = std::move(txn);
  return id;
}

Result<MvccManager::TxnState*> MvccManager::FindTxn(uint64_t txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    return Status::InvalidArgument("no such open mvcc transaction");
  }
  return it->second.get();
}

bool MvccManager::TxnActive(uint64_t txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  return txns_.count(txn) != 0;
}

Status MvccManager::ClaimKey(TxnState* t, const std::string& table,
                             int64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = claims_.try_emplace({table, key});
  Claim& c = it->second;
  if (!inserted) {
    if (c.owner != 0 && c.owner != t->id) {
      reg_write_conflicts_->Add(1);
      return Status::WriteConflict(
          "row " + std::to_string(key) + " of " + table +
              " is being written by transaction " + std::to_string(c.owner),
          config_.conflict_retry_ms);
    }
    if (c.owner == 0 && c.committed_lsn > t->begin_lsn) {
      reg_write_conflicts_->Add(1);
      return Status::WriteConflict(
          "row " + std::to_string(key) + " of " + table +
              " committed at lsn " + std::to_string(c.committed_lsn) +
              ", past this transaction's begin",
          config_.conflict_retry_ms);
    }
    if (c.owner == t->id) return Status::OK();  // already ours
  }
  c.owner = t->id;
  t->claims.emplace_back(table, key);
  return Status::OK();
}

Result<storage::BTree*> MvccManager::ShadowFor(TxnState* t,
                                               storage::Table* table) {
  auto it = t->shadows.find(table->name());
  if (it == t->shadows.end()) {
    // Copy the shared tree's metadata and redirect its page IO into the
    // transaction's overlay. The copy's unmodified subtrees keep reading
    // the shared pages; every page the shadow writes lands privately. The
    // copy itself runs under the DML lock: a concurrent commit replay
    // mutates the shared tree's root/height/allocation map under that
    // lock, and a torn copy would wire the shadow to a half-updated tree.
    std::optional<storage::BTree> shadow;
    SQLARRAY_RETURN_IF_ERROR(wal_->WithDmlLock([&] {
      shadow.emplace(table->clustered_index());
      return Status::OK();
    }));
    shadow->SetIO(&t->io);
    it = t->shadows.emplace(table->name(), std::move(*shadow)).first;
  }
  return &it->second;
}

Status MvccManager::ApplyInsert(uint64_t txn, storage::Table* table,
                                storage::Row row) {
  SQLARRAY_ASSIGN_OR_RETURN(TxnState * t, FindTxn(txn));
  SQLARRAY_ASSIGN_OR_RETURN(int64_t key, RowKey(row));
  SQLARRAY_RETURN_IF_ERROR(ClaimKey(t, table->name(), key));
  SQLARRAY_ASSIGN_OR_RETURN(storage::BTree * shadow, ShadowFor(t, table));
  // The shadow insert encodes blob columns as size-only placeholders: no
  // shared blob page may be written before commit. In-transaction reads of
  // an uncommitted blob's CONTENT are therefore unsupported.
  SQLARRAY_ASSIGN_OR_RETURN(std::vector<uint8_t> encoded,
                            table->EncodeRowShadow(row));
  SQLARRAY_RETURN_IF_ERROR(shadow->Insert(encoded));
  TxnState::Op op;
  op.is_insert = true;
  op.table = table->name();
  op.row = std::move(row);
  t->ops.push_back(std::move(op));
  return Status::OK();
}

Result<bool> MvccManager::ApplyDelete(uint64_t txn, storage::Table* table,
                                      int64_t key) {
  SQLARRAY_ASSIGN_OR_RETURN(TxnState * t, FindTxn(txn));
  SQLARRAY_RETURN_IF_ERROR(ClaimKey(t, table->name(), key));
  SQLARRAY_ASSIGN_OR_RETURN(storage::BTree * shadow, ShadowFor(t, table));
  SQLARRAY_ASSIGN_OR_RETURN(bool found, shadow->Delete(key));
  if (!found) return false;
  TxnState::Op op;
  op.table = table->name();
  op.key = key;
  t->ops.push_back(std::move(op));
  return true;
}

Status MvccManager::Commit(uint64_t txn, Lsn* commit_lsn_out) {
  SQLARRAY_ASSIGN_OR_RETURN(TxnState * t, FindTxn(txn));
  int crash_step = commit_crash_step_.exchange(0, std::memory_order_relaxed);

  if (t->ops.empty()) {
    // Read-only (or fully no-op): nothing to log, nothing becomes visible.
    return Rollback(txn);
  }
  if (crash_step == 1) {
    return Status::Internal("simulated crash: before mvcc commit replay");
  }

  // Replay the buffered ops through the legacy serialized write path. From
  // here until the WAL commit returns, this thread holds the DML lock and
  // every page it writes is logged under `txn` with its before-image
  // pinned — exactly as if the whole transaction had run under Begin().
  SQLARRAY_RETURN_IF_ERROR(wal_->AcquireApply(txn));
  std::set<std::string> touched;
  bool first_op = true;
  for (const TxnState::Op& op : t->ops) {
    Result<storage::Table*> table = db_->GetTable(op.table);
    if (!table.ok()) {
      (void)wal_->Rollback(txn);
      // Build the message BEFORE AbandonTxn frees the op list `op` lives in.
      Status st =
          Status::Internal("mvcc commit: table " + op.table + " vanished");
      AbandonTxn(txn);
      return st;
    }
    if (touched.insert(op.table).second) {
      SQLARRAY_RETURN_IF_ERROR(wal_->NoteTableTouched(txn, *table));
    }
    Status applied;
    if (op.is_insert) {
      applied = (*table)->Insert(op.row);
    } else {
      Result<bool> deleted = (*table)->Delete(op.key);
      applied = deleted.status();
      if (applied.ok() && !*deleted) {
        applied = Status::Internal("mvcc commit: row " +
                                   std::to_string(op.key) + " vanished");
      }
    }
    if (!applied.ok()) {
      // The claim protocol makes this unreachable short of corruption;
      // legacy rollback restores every touched page byte-exactly.
      (void)wal_->Rollback(txn);
      AbandonTxn(txn);
      return applied;
    }
    if (first_op && crash_step == 2) {
      return Status::Internal("simulated crash: mid mvcc commit replay");
    }
    first_op = false;
  }
  if (crash_step == 3) {
    return Status::Internal("simulated crash: mvcc replay done, no commit");
  }

  Lsn commit_lsn = 0;
  if (Status st = wal_->Commit(txn, &commit_lsn); !st.ok()) {
    // A failed WAL commit (log append/flush error, or an armed WAL-level
    // crash step) must not leave the txn's claims owned forever: nothing
    // will ever Rollback this txn once Commit has been called, and owned
    // claims are never pruned — every future write to those keys would be
    // a permanent WRITE_CONFLICT. The WAL side has already closed the
    // transaction (or, for a simulated crash, the harness's
    // SimulateCrash/Recover wipes all MVCC state anyway), so releasing
    // the claims and dropping the TxnState is all that is left.
    AbandonTxn(txn);
    return st;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [tname, key] : t->claims) {
      auto it = claims_.find({tname, key});
      if (it != claims_.end() && it->second.owner == t->id) {
        it->second.owner = 0;
        it->second.committed_lsn = commit_lsn;
      }
    }
    for (const std::string& tname : touched) {
      Result<storage::Table*> table = db_->GetTable(tname);
      if (!table.ok()) continue;
      PageId root = (*table)->clustered_index().root_page();
      auto& hist = root_history_[tname];
      if (hist.empty() || hist.back().second != root) {
        hist.emplace_back(commit_lsn, root);
      }
    }
    Lsn cur = visible_.load(std::memory_order_relaxed);
    while (cur < commit_lsn &&
           !visible_.compare_exchange_weak(cur, commit_lsn)) {
    }
    txns_.erase(txn);
    PruneClaimsLocked();
    RunGcLocked();
  }
  if (commit_lsn_out != nullptr) *commit_lsn_out = commit_lsn;
  return Status::OK();
}

Status MvccManager::Rollback(uint64_t txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    return Status::InvalidArgument("no such open mvcc transaction");
  }
  // Nothing shared was touched: releasing the claims and dropping the
  // shadow state IS the rollback. (The overlay's allocated page ids are a
  // bounded leak, like blob frees outside a transaction.)
  AbandonTxnLocked(it);
  return Status::OK();
}

void MvccManager::AbandonTxn(uint64_t txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txns_.find(txn);
  if (it != txns_.end()) AbandonTxnLocked(it);
}

void MvccManager::AbandonTxnLocked(
    std::map<uint64_t, std::unique_ptr<TxnState>>::iterator it) {
  for (const auto& [tname, key] : it->second->claims) {
    auto cit = claims_.find({tname, key});
    if (cit != claims_.end() && cit->second.owner == it->second->id) {
      cit->second.owner = 0;
    }
  }
  txns_.erase(it);
  PruneClaimsLocked();
  RunGcLocked();
}

void MvccManager::PruneClaimsLocked() {
  // A committed claim matters only while some live transaction could have
  // begun before it committed. With no transactions open, any future
  // claimant begins at or past the visibility horizon, which every
  // committed LSN is at or below — so everything unowned can go.
  Lsn min_begin = kNoSnapshot;
  for (const auto& [id, t] : txns_) {
    min_begin = std::min(min_begin, t->begin_lsn);
  }
  for (auto it = claims_.begin(); it != claims_.end();) {
    if (it->second.owner == 0 && it->second.committed_lsn <= min_begin) {
      it = claims_.erase(it);
    } else {
      ++it;
    }
  }
}

// --- Snapshots --------------------------------------------------------------

Result<std::shared_ptr<storage::PageSource>> MvccManager::AcquireSnapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  if (history_bytes_ > config_.history_budget_bytes) {
    return Status::ResourceExhausted(
        "version history (" + std::to_string(history_bytes_) +
            " bytes) exceeds the snapshot budget",
        config_.conflict_retry_ms);
  }
  Lsn s = RegisterSnapshotLocked();
  return std::shared_ptr<storage::PageSource>(new LiveSnapshotView(this, s));
}

storage::Lsn MvccManager::RegisterSnapshotLocked() {
  Lsn s = visible_.load(std::memory_order_acquire);
  snapshots_.insert(s);
  reg_snapshots_active_->Set(static_cast<int64_t>(snapshots_.size()));
  reg_oldest_snapshot_->Set(static_cast<int64_t>(*snapshots_.begin()));
  return s;
}

void MvccManager::ReleaseSnapshot(Lsn lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = snapshots_.find(lsn);
  if (it != snapshots_.end()) snapshots_.erase(it);
  reg_snapshots_active_->Set(static_cast<int64_t>(snapshots_.size()));
  reg_oldest_snapshot_->Set(
      snapshots_.empty() ? 0 : static_cast<int64_t>(*snapshots_.begin()));
  RunGcLocked();
}

Result<std::shared_ptr<storage::PageSource>> MvccManager::TxnView(
    uint64_t txn) {
  SQLARRAY_ASSIGN_OR_RETURN(TxnState * t, FindTxn(txn));
  // The view reads non-overlay pages through chain visibility at its LSN,
  // so it must pin that history like any other snapshot. No budget check:
  // a statement inside an already-open transaction must not start failing
  // on snapshot backpressure (the txn can always roll back), and the view
  // lives only for the one statement.
  std::lock_guard<std::mutex> lock(mu_);
  Lsn s = RegisterSnapshotLocked();
  return std::shared_ptr<storage::PageSource>(new TxnSnapshotView(this, t, s));
}

void MvccManager::RunGcLocked() {
  Lsn oldest = snapshots_.empty() ? kNoSnapshot : *snapshots_.begin();
  // The horizon is clamped to the visibility LSN even with no snapshot
  // active: a commit replay in flight has already pushed pre-images for
  // pages whose latest write is past visible_, and a snapshot acquired at
  // visible_ at any moment needs the newest entry at or below it. Once
  // that commit lands, visible_ advances past its writes and the
  // latest <= oldest branch below drains the chain.
  oldest = std::min(oldest, visible_.load(std::memory_order_relaxed));
  int64_t dropped = 0;
  {
    for (auto it = chains_.begin(); it != chains_.end();) {
      Lsn latest = 0;
      if (auto lit = latest_lsn_.find(it->first); lit != latest_lsn_.end()) {
        latest = lit->second;
      }
      if (latest <= oldest) {
        // Every active snapshot already sees the current image.
        dropped += static_cast<int64_t>(it->second.size());
        history_bytes_ -=
            static_cast<int64_t>(it->second.size()) * storage::kPageSize;
        it = chains_.erase(it);
        continue;
      }
      // Keep entries newer than the horizon plus the one that serves it
      // (the newest with written_lsn <= oldest); drop everything older.
      auto& chain = it->second;  // newest first
      size_t keep = chain.size();
      for (size_t i = 0; i < chain.size(); ++i) {
        if (chain[i].written_lsn <= oldest) {
          keep = i + 1;
          break;
        }
      }
      if (keep < chain.size()) {
        dropped += static_cast<int64_t>(chain.size() - keep);
        history_bytes_ -=
            static_cast<int64_t>(chain.size() - keep) * storage::kPageSize;
        chain.resize(keep);
      }
      ++it;
    }
  }
  if (dropped > 0) reg_versions_gc_->Add(dropped);
  reg_history_bytes_->Set(history_bytes_);
}

// --- AS OF ------------------------------------------------------------------

Result<std::shared_ptr<storage::PageSource>> MvccManager::OpenAsOf(Lsn lsn) {
  // The view is a pure function of the log prefix [0, lsn]. Log pages are
  // sealed once flushed, so scanning while writers append is safe; flush
  // first so everything at or below the horizon is on the log disk.
  SQLARRAY_RETURN_IF_ERROR(wal_->log_writer()->FlushAll());
  SQLARRAY_ASSIGN_OR_RETURN(wal::LogScan scan,
                            ScanLog(wal_->log_device(), 0));
  if (scan.resume_lsn < lsn) {
    // A racing append may have straddled the flush; one more pass covers it.
    SQLARRAY_RETURN_IF_ERROR(wal_->log_writer()->FlushAll());
    SQLARRAY_ASSIGN_OR_RETURN(scan, ScanLog(wal_->log_device(), 0));
    if (scan.resume_lsn < lsn) {
      return Status::InvalidArgument(
          "AS OF lsn " + std::to_string(lsn) + " is beyond the log end (" +
          std::to_string(scan.resume_lsn) + ")");
    }
  }

  // Pass 1: commit horizon per transaction — a txn's effects exist at the
  // snapshot iff its COMMIT record is wholly at or below the horizon.
  std::unordered_map<uint64_t, Lsn> commit_end;
  for (const wal::WalRecord& rec : scan.records) {
    if (rec.type == wal::RecordType::kCommit) {
      commit_end[rec.txn] = rec.end_lsn;
    }
  }
  auto visible_at = [&](const wal::WalRecord& rec) {
    if (rec.txn == wal::kSystemTxn) return rec.end_lsn <= lsn;
    auto it = commit_end.find(rec.txn);
    return it != commit_end.end() && it->second <= lsn;
  };

  // Pass 2: replay page images and catalog changes in LSN order, exactly
  // like recovery but stopping the world at the horizon.
  std::unordered_map<PageId, std::shared_ptr<const Page>> pages;
  std::map<std::string, PageId> roots;
  {
    // Tables created before the WAL attached have no kCreateTable record;
    // seed their roots from the in-memory root history at the horizon —
    // the catalog analogue of Fetch's pre-WAL disk fallback. Logged
    // catalog records at or below the horizon override these below (a
    // checkpoint legitimately replaces the whole set: its catalog is
    // complete, pre-WAL tables included).
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, hist] : root_history_) {
      if (Result<PageId> r = RootAtLocked(name, lsn); r.ok()) {
        roots[name] = *r;
      }
    }
  }
  for (const wal::WalRecord& rec : scan.records) {
    switch (rec.type) {
      case wal::RecordType::kPageWrite:
        if (!visible_at(rec)) break;
        pages[rec.page_id] = std::make_shared<Page>(rec.page_image);
        break;
      case wal::RecordType::kCreateTable:
        if (!visible_at(rec)) break;
        roots[rec.catalog.front().name] = rec.catalog.front().root;
        break;
      case wal::RecordType::kCommit:
        if (rec.end_lsn > lsn) break;
        for (const wal::CatalogEntry& entry : rec.catalog) {
          // Unconditional insert: a pre-WAL table's first logged root
          // arrives via a commit's catalog, never a kCreateTable record.
          roots[entry.name] = entry.root;
        }
        break;
      case wal::RecordType::kCheckpoint:
        if (rec.end_lsn > lsn) break;
        roots.clear();
        for (const wal::CatalogEntry& entry : rec.catalog) {
          roots[entry.name] = entry.root;
        }
        break;
      case wal::RecordType::kBegin:
      case wal::RecordType::kAbort:
        break;
    }
  }
  return std::shared_ptr<storage::PageSource>(new LogSnapshotView(
      lsn, std::move(pages), std::move(roots), db_->disk()));
}

Result<std::shared_ptr<storage::PageSource>>
MvccManager::OpenAsOfCheckpoint() {
  SQLARRAY_ASSIGN_OR_RETURN(wal::LogHeader header,
                            wal_->log_device()->ReadHeader());
  if (!header.has_checkpoint) {
    return Status::NotFound("no checkpoint has been taken");
  }
  return OpenAsOf(header.checkpoint_lsn);
}

// --- DDL / maintenance ------------------------------------------------------

Status MvccManager::RunDdl(const std::function<Status()>& fn) {
  // DDL writes pages under txn 0 and must not interleave with a commit
  // replay (whose page writes would capture them as before-images), so it
  // runs under the same DML lock. Visible immediately; not transactional.
  SQLARRAY_RETURN_IF_ERROR(wal_->WithDmlLock(fn));
  return RefreshVisible();
}

Status MvccManager::RefreshVisible() {
  SQLARRAY_ASSIGN_OR_RETURN(Lsn q, wal_->QuiescentLsn());
  std::lock_guard<std::mutex> lock(mu_);
  SeedRootsLocked(q);
  Lsn cur = visible_.load(std::memory_order_relaxed);
  while (cur < q && !visible_.compare_exchange_weak(cur, q)) {
  }
  return Status::OK();
}

MvccStats MvccManager::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  MvccStats s;
  s.snapshots_active = static_cast<int64_t>(snapshots_.size());
  s.versions_created = reg_versions_created_->value();
  s.versions_gc = reg_versions_gc_->value();
  s.write_conflicts = reg_write_conflicts_->value();
  s.history_bytes = history_bytes_;
  s.oldest_snapshot_lsn = snapshots_.empty() ? 0 : *snapshots_.begin();
  s.visible_lsn = visible_.load(std::memory_order_acquire);
  return s;
}

}  // namespace sqlarray::mvcc
