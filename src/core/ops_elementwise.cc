#include <cmath>

#include "core/kernels.h"
#include "core/ops.h"
#include "gov/gov.h"

namespace sqlarray {

namespace {

/// Elements between cooperative cancellation probes in boxed loops.
constexpr int64_t kCancelMask = 8191;

/// Rank of a dtype in the promotion lattice.
int PromoRank(DType t) {
  switch (t) {
    case DType::kInt8:
      return 0;
    case DType::kInt16:
      return 1;
    case DType::kInt32:
      return 2;
    case DType::kInt64:
    case DType::kDateTime:
      return 3;
    case DType::kFloat32:
      return 4;
    case DType::kFloat64:
      return 5;
    case DType::kComplex64:
      return 6;
    case DType::kComplex128:
      return 7;
  }
  return 7;
}

Result<std::complex<double>> ApplyOpComplex(std::complex<double> x,
                                            std::complex<double> y, BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return x + y;
    case BinOp::kSub:
      return x - y;
    case BinOp::kMul:
      return x * y;
    case BinOp::kDiv:
      if (y == std::complex<double>(0, 0)) {
        return Status::InvalidArgument("element-wise division by zero");
      }
      return x / y;
  }
  return Status::Internal("unreachable binop");
}

/// Real-operand scalar op in plain double arithmetic. Unlike the complex
/// form, inf/NaN operands behave per IEEE (complex multiplication produces
/// NaN imaginary parts for them, which a real output then rejects).
Result<double> ApplyOpReal(double x, double y, BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return x + y;
    case BinOp::kSub:
      return x - y;
    case BinOp::kMul:
      return x * y;
    case BinOp::kDiv:
      if (y == 0.0) {
        return Status::InvalidArgument("element-wise division by zero");
      }
      return x / y;
  }
  return Status::Internal("unreachable binop");
}

Status CheckSameShape(const ArrayRef& lhs, const ArrayRef& rhs) {
  if (lhs.dims() != rhs.dims()) {
    return Status::InvalidArgument(
        "element-wise operation requires identical shapes");
  }
  return Status::OK();
}

}  // namespace

DType PromoteDType(DType a, DType b) {
  DType wider = PromoRank(a) >= PromoRank(b) ? a : b;
  // Complex64 paired with float64/int64 must widen to complex128 to avoid
  // losing precision of the real partner.
  if (wider == DType::kComplex64 &&
      (PromoRank(a) == 5 || PromoRank(b) == 5 || PromoRank(a) == 3 ||
       PromoRank(b) == 3)) {
    return DType::kComplex128;
  }
  // Integer arithmetic promotes to the wider integer; datetime arithmetic
  // degrades to int64 semantics.
  if (wider == DType::kDateTime) return DType::kInt64;
  return wider;
}

Result<OwnedArray> ElementwiseBinaryBoxed(const ArrayRef& lhs,
                                          const ArrayRef& rhs, BinOp op) {
  SQLARRAY_RETURN_IF_ERROR(CheckSameShape(lhs, rhs));
  DType out_dtype = kernels::BinaryOutDType(op, lhs.dtype(), rhs.dtype());
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                            OwnedArray::Zeros(out_dtype, lhs.dims()));
  const int64_t n = lhs.num_elements();
  uint8_t* dst = out.mutable_payload().data();
  const int dsize = DTypeSize(out_dtype);
  if (IsComplexDType(lhs.dtype()) || IsComplexDType(rhs.dtype())) {
    for (int64_t i = 0; i < n; ++i) {
      if ((i & kCancelMask) == 0) {
        SQLARRAY_RETURN_IF_ERROR(gov::CheckThreadCancel());
      }
      SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> x, lhs.GetComplex(i));
      SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> y, rhs.GetComplex(i));
      SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> v,
                                ApplyOpComplex(x, y, op));
      SQLARRAY_RETURN_IF_ERROR(
          WriteScalarFromComplex(out_dtype, dst + i * dsize, v));
    }
  } else {
    for (int64_t i = 0; i < n; ++i) {
      if ((i & kCancelMask) == 0) {
        SQLARRAY_RETURN_IF_ERROR(gov::CheckThreadCancel());
      }
      SQLARRAY_ASSIGN_OR_RETURN(double x, lhs.GetDouble(i));
      SQLARRAY_ASSIGN_OR_RETURN(double y, rhs.GetDouble(i));
      SQLARRAY_ASSIGN_OR_RETURN(double v, ApplyOpReal(x, y, op));
      SQLARRAY_RETURN_IF_ERROR(
          WriteScalarFromDouble(out_dtype, dst + i * dsize, v));
    }
  }
  return out;
}

Result<OwnedArray> ElementwiseBinary(const ArrayRef& lhs, const ArrayRef& rhs,
                                     BinOp op) {
  SQLARRAY_RETURN_IF_ERROR(CheckSameShape(lhs, rhs));
  kernels::BinaryKernelFn fn =
      kernels::LookupBinary(op, lhs.dtype(), rhs.dtype());
  if (fn == nullptr) {
    kernels::CountBoxedDispatch();
    return ElementwiseBinaryBoxed(lhs, rhs, op);
  }
  kernels::CountKernelDispatch();
  DType out_dtype = kernels::BinaryOutDType(op, lhs.dtype(), rhs.dtype());
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                            OwnedArray::Zeros(out_dtype, lhs.dims()));
  SQLARRAY_RETURN_IF_ERROR(fn(lhs.payload().data(), rhs.payload().data(),
                              out.mutable_payload().data(),
                              lhs.num_elements()));
  return out;
}

Result<OwnedArray> ElementwiseScalarBoxed(const ArrayRef& a, double scalar,
                                          BinOp op) {
  DType out_dtype = PromoteDType(a.dtype(), DType::kFloat64);
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                            OwnedArray::Zeros(out_dtype, a.dims()));
  const int64_t n = a.num_elements();
  uint8_t* dst = out.mutable_payload().data();
  const int dsize = DTypeSize(out_dtype);
  if (IsComplexDType(a.dtype())) {
    for (int64_t i = 0; i < n; ++i) {
      if ((i & kCancelMask) == 0) {
        SQLARRAY_RETURN_IF_ERROR(gov::CheckThreadCancel());
      }
      SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> x, a.GetComplex(i));
      SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> v,
                                ApplyOpComplex(x, {scalar, 0.0}, op));
      SQLARRAY_RETURN_IF_ERROR(
          WriteScalarFromComplex(out_dtype, dst + i * dsize, v));
    }
  } else {
    for (int64_t i = 0; i < n; ++i) {
      if ((i & kCancelMask) == 0) {
        SQLARRAY_RETURN_IF_ERROR(gov::CheckThreadCancel());
      }
      SQLARRAY_ASSIGN_OR_RETURN(double x, a.GetDouble(i));
      SQLARRAY_ASSIGN_OR_RETURN(double v, ApplyOpReal(x, scalar, op));
      SQLARRAY_RETURN_IF_ERROR(
          WriteScalarFromDouble(out_dtype, dst + i * dsize, v));
    }
  }
  return out;
}

Result<OwnedArray> ElementwiseScalar(const ArrayRef& a, double scalar,
                                     BinOp op) {
  kernels::ScalarKernelFn fn = kernels::LookupScalar(op, a.dtype());
  if (fn == nullptr) {
    kernels::CountBoxedDispatch();
    return ElementwiseScalarBoxed(a, scalar, op);
  }
  kernels::CountKernelDispatch();
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                            OwnedArray::Zeros(DType::kFloat64, a.dims()));
  SQLARRAY_RETURN_IF_ERROR(fn(a.payload().data(), scalar,
                              out.mutable_payload().data(),
                              a.num_elements()));
  return out;
}

namespace {

Status CheckDotShapes(const ArrayRef& a, const ArrayRef& b) {
  if (a.rank() != 1 || b.rank() != 1) {
    return Status::InvalidArgument("dot product requires rank-1 arrays");
  }
  if (a.num_elements() != b.num_elements()) {
    return Status::InvalidArgument("dot product requires equal lengths");
  }
  return Status::OK();
}

}  // namespace

Result<std::complex<double>> DotBoxed(const ArrayRef& a, const ArrayRef& b) {
  SQLARRAY_RETURN_IF_ERROR(CheckDotShapes(a, b));
  std::complex<double> sum = 0;
  const int64_t n = a.num_elements();
  for (int64_t i = 0; i < n; ++i) {
    if ((i & kCancelMask) == 0) {
      SQLARRAY_RETURN_IF_ERROR(gov::CheckThreadCancel());
    }
    SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> x, a.GetComplex(i));
    SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> y, b.GetComplex(i));
    sum += x * y;
  }
  return sum;
}

Result<std::complex<double>> Dot(const ArrayRef& a, const ArrayRef& b) {
  SQLARRAY_RETURN_IF_ERROR(CheckDotShapes(a, b));
  // Kernel tier covers all four float32/float64 pairings (the old fast path
  // only handled float64 x float64).
  kernels::DotKernelFn fn = kernels::LookupDot(a.dtype(), b.dtype());
  if (fn == nullptr) {
    kernels::CountBoxedDispatch();
    return DotBoxed(a, b);
  }
  kernels::CountKernelDispatch();
  return std::complex<double>(
      fn(a.payload().data(), b.payload().data(), a.num_elements()), 0);
}

Result<double> Norm2Boxed(const ArrayRef& a) {
  double sum = 0;
  const int64_t n = a.num_elements();
  for (int64_t i = 0; i < n; ++i) {
    SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> x, a.GetComplex(i));
    sum += std::norm(x);
  }
  return std::sqrt(sum);
}

Result<double> Norm2(const ArrayRef& a) {
  kernels::SumSqKernelFn fn = kernels::LookupSumSq(a.dtype());
  if (fn == nullptr) {
    kernels::CountBoxedDispatch();
    return Norm2Boxed(a);
  }
  kernels::CountKernelDispatch();
  return std::sqrt(fn(a.payload().data(), a.num_elements()));
}

}  // namespace sqlarray
