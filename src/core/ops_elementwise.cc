#include "core/ops.h"

#include <cmath>

namespace sqlarray {

namespace {

/// Rank of a dtype in the promotion lattice.
int PromoRank(DType t) {
  switch (t) {
    case DType::kInt8:
      return 0;
    case DType::kInt16:
      return 1;
    case DType::kInt32:
      return 2;
    case DType::kInt64:
    case DType::kDateTime:
      return 3;
    case DType::kFloat32:
      return 4;
    case DType::kFloat64:
      return 5;
    case DType::kComplex64:
      return 6;
    case DType::kComplex128:
      return 7;
  }
  return 7;
}

Result<std::complex<double>> ApplyOp(std::complex<double> x,
                                     std::complex<double> y, BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return x + y;
    case BinOp::kSub:
      return x - y;
    case BinOp::kMul:
      return x * y;
    case BinOp::kDiv:
      if (y == std::complex<double>(0, 0)) {
        return Status::InvalidArgument("element-wise division by zero");
      }
      return x / y;
  }
  return Status::Internal("unreachable binop");
}

}  // namespace

DType PromoteDType(DType a, DType b) {
  DType wider = PromoRank(a) >= PromoRank(b) ? a : b;
  // Complex64 paired with float64/int64 must widen to complex128 to avoid
  // losing precision of the real partner.
  if (wider == DType::kComplex64 &&
      (PromoRank(a) == 5 || PromoRank(b) == 5 || PromoRank(a) == 3 ||
       PromoRank(b) == 3)) {
    return DType::kComplex128;
  }
  // Integer arithmetic promotes to the wider integer; datetime arithmetic
  // degrades to int64 semantics.
  if (wider == DType::kDateTime) return DType::kInt64;
  return wider;
}

Result<OwnedArray> ElementwiseBinary(const ArrayRef& lhs, const ArrayRef& rhs,
                                     BinOp op) {
  if (lhs.dims() != rhs.dims()) {
    return Status::InvalidArgument(
        "element-wise operation requires identical shapes");
  }
  DType out_dtype = PromoteDType(lhs.dtype(), rhs.dtype());
  // Integer division would truncate surprisingly; match SQL float semantics.
  if (op == BinOp::kDiv && IsIntegerDType(out_dtype)) {
    out_dtype = DType::kFloat64;
  }
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                            OwnedArray::Zeros(out_dtype, lhs.dims()));
  const int64_t n = lhs.num_elements();
  uint8_t* dst = out.mutable_payload().data();
  const int dsize = DTypeSize(out_dtype);
  for (int64_t i = 0; i < n; ++i) {
    SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> x, lhs.GetComplex(i));
    SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> y, rhs.GetComplex(i));
    SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> v, ApplyOp(x, y, op));
    SQLARRAY_RETURN_IF_ERROR(
        WriteScalarFromComplex(out_dtype, dst + i * dsize, v));
  }
  return out;
}

Result<OwnedArray> ElementwiseScalar(const ArrayRef& a, double scalar,
                                     BinOp op) {
  DType out_dtype = PromoteDType(a.dtype(), DType::kFloat64);
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                            OwnedArray::Zeros(out_dtype, a.dims()));
  const int64_t n = a.num_elements();
  uint8_t* dst = out.mutable_payload().data();
  const int dsize = DTypeSize(out_dtype);
  for (int64_t i = 0; i < n; ++i) {
    SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> x, a.GetComplex(i));
    SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> v,
                              ApplyOp(x, {scalar, 0.0}, op));
    SQLARRAY_RETURN_IF_ERROR(
        WriteScalarFromComplex(out_dtype, dst + i * dsize, v));
  }
  return out;
}

Result<std::complex<double>> Dot(const ArrayRef& a, const ArrayRef& b) {
  if (a.rank() != 1 || b.rank() != 1) {
    return Status::InvalidArgument("dot product requires rank-1 arrays");
  }
  if (a.num_elements() != b.num_elements()) {
    return Status::InvalidArgument("dot product requires equal lengths");
  }
  // Fast path for the dominant float64 case.
  if (a.dtype() == DType::kFloat64 && b.dtype() == DType::kFloat64) {
    auto xs = a.Data<double>().value();
    auto ys = b.Data<double>().value();
    double sum = 0;
    for (size_t i = 0; i < xs.size(); ++i) sum += xs[i] * ys[i];
    return std::complex<double>(sum, 0);
  }
  std::complex<double> sum = 0;
  const int64_t n = a.num_elements();
  for (int64_t i = 0; i < n; ++i) {
    SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> x, a.GetComplex(i));
    SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> y, b.GetComplex(i));
    sum += x * y;
  }
  return sum;
}

Result<double> Norm2(const ArrayRef& a) {
  double sum = 0;
  const int64_t n = a.num_elements();
  for (int64_t i = 0; i < n; ++i) {
    SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> x, a.GetComplex(i));
    sum += std::norm(x);
  }
  return std::sqrt(sum);
}

}  // namespace sqlarray
