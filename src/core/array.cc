#include "core/array.h"

#include <cmath>
#include <limits>
#include <string>

#include "common/bytes.h"

namespace sqlarray {

Result<double> ReadScalarAsDouble(DType t, const uint8_t* p) {
  switch (t) {
    case DType::kInt8:
      return static_cast<double>(DecodeLE<int8_t>(p));
    case DType::kInt16:
      return static_cast<double>(DecodeLE<int16_t>(p));
    case DType::kInt32:
      return static_cast<double>(DecodeLE<int32_t>(p));
    case DType::kInt64:
    case DType::kDateTime:
      return static_cast<double>(DecodeLE<int64_t>(p));
    case DType::kFloat32:
      return static_cast<double>(DecodeLE<float>(p));
    case DType::kFloat64:
      return DecodeLE<double>(p);
    case DType::kComplex64:
    case DType::kComplex128:
      return Status::TypeMismatch(
          "complex element cannot be read as a real scalar");
  }
  return Status::Internal("unreachable dtype");
}

Result<std::complex<double>> ReadScalarAsComplex(DType t, const uint8_t* p) {
  switch (t) {
    case DType::kComplex64:
      return std::complex<double>(DecodeLE<float>(p), DecodeLE<float>(p + 4));
    case DType::kComplex128:
      return std::complex<double>(DecodeLE<double>(p),
                                  DecodeLE<double>(p + 8));
    default: {
      SQLARRAY_ASSIGN_OR_RETURN(double re, ReadScalarAsDouble(t, p));
      return std::complex<double>(re, 0.0);
    }
  }
}

namespace {

template <typename I>
Status WriteRoundedInt(uint8_t* p, double v) {
  double r = std::nearbyint(v);
  // Half-open range check with exact bounds: +-2^(bits-1) are both exactly
  // representable as doubles, whereas (double)max() rounds UP to 2^63 for
  // int64 and would admit the out-of-range value 2^63 (UB on the cast).
  const int bits = 8 * static_cast<int>(sizeof(I));
  const double lo = -std::ldexp(1.0, bits - 1);
  const double hi = std::ldexp(1.0, bits - 1);
  if (!(r >= lo && r < hi)) {  // negated form also rejects NaN
    return Status::OutOfRange("value " + std::to_string(v) +
                              " does not fit the integer element type");
  }
  EncodeLE<I>(p, static_cast<I>(r));
  return Status::OK();
}

}  // namespace

Status WriteScalarFromDouble(DType t, uint8_t* p, double v) {
  switch (t) {
    case DType::kInt8:
      return WriteRoundedInt<int8_t>(p, v);
    case DType::kInt16:
      return WriteRoundedInt<int16_t>(p, v);
    case DType::kInt32:
      return WriteRoundedInt<int32_t>(p, v);
    case DType::kInt64:
    case DType::kDateTime:
      return WriteRoundedInt<int64_t>(p, v);
    case DType::kFloat32:
      EncodeLE<float>(p, static_cast<float>(v));
      return Status::OK();
    case DType::kFloat64:
      EncodeLE<double>(p, v);
      return Status::OK();
    case DType::kComplex64:
      EncodeLE<float>(p, static_cast<float>(v));
      EncodeLE<float>(p + 4, 0.0f);
      return Status::OK();
    case DType::kComplex128:
      EncodeLE<double>(p, v);
      EncodeLE<double>(p + 8, 0.0);
      return Status::OK();
  }
  return Status::Internal("unreachable dtype");
}

Status WriteScalarFromComplex(DType t, uint8_t* p, std::complex<double> v) {
  switch (t) {
    case DType::kComplex64:
      EncodeLE<float>(p, static_cast<float>(v.real()));
      EncodeLE<float>(p + 4, static_cast<float>(v.imag()));
      return Status::OK();
    case DType::kComplex128:
      EncodeLE<double>(p, v.real());
      EncodeLE<double>(p + 8, v.imag());
      return Status::OK();
    default:
      if (v.imag() != 0.0) {
        return Status::TypeMismatch(
            "cannot store a complex value with non-zero imaginary part in a "
            "real element type");
      }
      return WriteScalarFromDouble(t, p, v.real());
  }
}

Result<ArrayRef> ArrayRef::Parse(std::span<const uint8_t> blob) {
  SQLARRAY_ASSIGN_OR_RETURN(ArrayHeader h, DecodeHeader(blob));
  if (blob.size() < static_cast<size_t>(h.blob_size())) {
    return Status::Corruption("array blob shorter than header promises");
  }
  ArrayRef ref;
  ref.header_ = std::move(h);
  ref.blob_ = blob.first(static_cast<size_t>(ref.header_.blob_size()));
  return ref;
}

Result<double> ArrayRef::GetDouble(int64_t linear) const {
  if (linear < 0 || linear >= num_elements()) {
    return Status::OutOfRange("element offset " + std::to_string(linear) +
                              " out of range");
  }
  return ReadScalarAsDouble(dtype(),
                            payload().data() + linear * elem_size());
}

Result<std::complex<double>> ArrayRef::GetComplex(int64_t linear) const {
  if (linear < 0 || linear >= num_elements()) {
    return Status::OutOfRange("element offset " + std::to_string(linear) +
                              " out of range");
  }
  return ReadScalarAsComplex(dtype(),
                             payload().data() + linear * elem_size());
}

Result<double> ArrayRef::GetDoubleAt(std::span<const int64_t> index) const {
  SQLARRAY_ASSIGN_OR_RETURN(int64_t linear, LinearIndex(dims(), index));
  return GetDouble(linear);
}

Result<std::complex<double>> ArrayRef::GetComplexAt(
    std::span<const int64_t> index) const {
  SQLARRAY_ASSIGN_OR_RETURN(int64_t linear, LinearIndex(dims(), index));
  return GetComplex(linear);
}

Result<OwnedArray> OwnedArray::Zeros(DType dtype, Dims dims,
                                     std::optional<StorageClass> storage) {
  StorageClass sc =
      storage.value_or(ChooseStorageClass(dtype, dims));
  ArrayHeader h{dtype, sc, std::move(dims)};
  std::vector<uint8_t> blob;
  blob.reserve(static_cast<size_t>(h.blob_size()));
  SQLARRAY_RETURN_IF_ERROR(AppendHeader(h, &blob));
  blob.resize(static_cast<size_t>(h.blob_size()), 0);
  return OwnedArray(std::move(h), std::move(blob));
}

Result<OwnedArray> OwnedArray::FromBlob(std::vector<uint8_t> blob) {
  SQLARRAY_ASSIGN_OR_RETURN(ArrayHeader h, DecodeHeader(blob));
  if (blob.size() < static_cast<size_t>(h.blob_size())) {
    return Status::Corruption("array blob shorter than header promises");
  }
  blob.resize(static_cast<size_t>(h.blob_size()));
  return OwnedArray(std::move(h), std::move(blob));
}

Result<OwnedArray> OwnedArray::CopyOf(const ArrayRef& ref) {
  std::vector<uint8_t> blob(ref.blob().begin(), ref.blob().end());
  return OwnedArray(ref.header(), std::move(blob));
}

ArrayRef OwnedArray::ref() const {
  // The blob was validated at construction; re-parsing cannot fail.
  auto r = ArrayRef::Parse(blob_);
  return r.value();
}

Status OwnedArray::SetDouble(int64_t linear, double v) {
  if (linear < 0 || linear >= num_elements()) {
    return Status::OutOfRange("element offset " + std::to_string(linear) +
                              " out of range");
  }
  return WriteScalarFromDouble(
      dtype(), mutable_payload().data() + linear * DTypeSize(dtype()), v);
}

Status OwnedArray::SetComplex(int64_t linear, std::complex<double> v) {
  if (linear < 0 || linear >= num_elements()) {
    return Status::OutOfRange("element offset " + std::to_string(linear) +
                              " out of range");
  }
  return WriteScalarFromComplex(
      dtype(), mutable_payload().data() + linear * DTypeSize(dtype()), v);
}

Status OwnedArray::SetDoubleAt(std::span<const int64_t> index, double v) {
  SQLARRAY_ASSIGN_OR_RETURN(int64_t linear, LinearIndex(dims(), index));
  return SetDouble(linear, v);
}

}  // namespace sqlarray
