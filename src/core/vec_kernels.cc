#include "core/vec_kernels.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>

#include "gov/gov.h"

// The AVX2 variants are compiled whenever the target is x86-64 (function-
// level target attributes, so the baseline ISA build still carries them) and
// the scalar-only build flag is off. SQLARRAY_FORCE_SCALAR_KERNELS removes
// them at compile time — the vec_scalar_suite ctest tree — while
// SetForceScalar(true) disables them at runtime in a normal build.
#if defined(__x86_64__) && !defined(SQLARRAY_FORCE_SCALAR_KERNELS)
#define SQLARRAY_HAVE_AVX2_VARIANTS 1
#include <immintrin.h>
#else
#define SQLARRAY_HAVE_AVX2_VARIANTS 0
#endif

namespace sqlarray::col {
namespace {

std::atomic<bool> g_force_scalar{false};

inline bool BitAt(const uint64_t* words, int32_t i) {
  return (words[i >> 6] >> (static_cast<uint32_t>(i) & 63)) & 1;
}

// Signed wrap-around arithmetic without UB: the row path's int64 +,-,*
// wrap on this target, and the unsigned round-trip produces the same bits.
inline int64_t WrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}
inline int64_t WrapSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) -
                              static_cast<uint64_t>(b));
}
inline int64_t WrapMul(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) *
                              static_cast<uint64_t>(b));
}
inline int64_t WrapNeg(int64_t a) {
  return static_cast<int64_t>(uint64_t{0} - static_cast<uint64_t>(a));
}

/// Runs `fn(offset, len)` over n elements in kCancelBlock chunks with a
/// cancellation probe before each chunk.
template <typename Fn>
Status RunBlocked(int32_t n, Fn fn) {
  for (int32_t off = 0; off < n; off += kCancelBlock) {
    SQLARRAY_RETURN_IF_ERROR(gov::CheckThreadCancel());
    fn(off, std::min(kCancelBlock, n - off));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Scalar reference loops. These are the semantics; the AVX2 variants below
// must match them bit for bit (per-lane IEEE ops and int wrap do).
// ---------------------------------------------------------------------------

void AddI64Scalar(const int64_t* a, const int64_t* b, int32_t n,
                  int64_t* out) {
  for (int32_t i = 0; i < n; ++i) out[i] = WrapAdd(a[i], b[i]);
}
void SubI64Scalar(const int64_t* a, const int64_t* b, int32_t n,
                  int64_t* out) {
  for (int32_t i = 0; i < n; ++i) out[i] = WrapSub(a[i], b[i]);
}
void MulI64Scalar(const int64_t* a, const int64_t* b, int32_t n,
                  int64_t* out) {
  for (int32_t i = 0; i < n; ++i) out[i] = WrapMul(a[i], b[i]);
}
void AddF64Scalar(const double* a, const double* b, int32_t n, double* out) {
  for (int32_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}
void SubF64Scalar(const double* a, const double* b, int32_t n, double* out) {
  for (int32_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}
void MulF64Scalar(const double* a, const double* b, int32_t n, double* out) {
  for (int32_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}
void AndI64Scalar(const int64_t* a, const int64_t* b, int32_t n,
                  int64_t* out) {
  for (int32_t i = 0; i < n; ++i) out[i] = (a[i] != 0 && b[i] != 0) ? 1 : 0;
}
void OrI64Scalar(const int64_t* a, const int64_t* b, int32_t n,
                 int64_t* out) {
  for (int32_t i = 0; i < n; ++i) out[i] = (a[i] != 0 || b[i] != 0) ? 1 : 0;
}
void NotI64Scalar(const int64_t* a, int32_t n, int64_t* out) {
  for (int32_t i = 0; i < n; ++i) out[i] = (a[i] == 0) ? 1 : 0;
}
void NegI64Scalar(const int64_t* a, int32_t n, int64_t* out) {
  for (int32_t i = 0; i < n; ++i) out[i] = WrapNeg(a[i]);
}
void NegF64Scalar(const double* a, int32_t n, double* out) {
  for (int32_t i = 0; i < n; ++i) out[i] = -a[i];
}

#define SQLARRAY_CMP_SCALAR(NAME, OP)                                      \
  void NAME(const double* a, const double* b, int32_t n, int64_t* out) {   \
    for (int32_t i = 0; i < n; ++i) out[i] = (a[i] OP b[i]) ? 1 : 0;       \
  }
SQLARRAY_CMP_SCALAR(CmpEqScalar, ==)
SQLARRAY_CMP_SCALAR(CmpNeScalar, !=)
SQLARRAY_CMP_SCALAR(CmpLtScalar, <)
SQLARRAY_CMP_SCALAR(CmpLeScalar, <=)
SQLARRAY_CMP_SCALAR(CmpGtScalar, >)
SQLARRAY_CMP_SCALAR(CmpGeScalar, >=)
#undef SQLARRAY_CMP_SCALAR

// ---------------------------------------------------------------------------
// AVX2 variants (x86-64 only). Tails fall back to the same scalar
// expressions, so mixed execution stays bit-identical.
// ---------------------------------------------------------------------------

#if SQLARRAY_HAVE_AVX2_VARIANTS

__attribute__((target("avx2"))) void AddI64Avx2(const int64_t* a,
                                                const int64_t* b, int32_t n,
                                                int64_t* out) {
  int32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_add_epi64(va, vb));
  }
  for (; i < n; ++i) out[i] = WrapAdd(a[i], b[i]);
}

__attribute__((target("avx2"))) void SubI64Avx2(const int64_t* a,
                                                const int64_t* b, int32_t n,
                                                int64_t* out) {
  int32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_sub_epi64(va, vb));
  }
  for (; i < n; ++i) out[i] = WrapSub(a[i], b[i]);
}

__attribute__((target("avx2"))) void AddF64Avx2(const double* a,
                                                const double* b, int32_t n,
                                                double* out) {
  int32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     _mm256_add_pd(_mm256_loadu_pd(a + i),
                                   _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

__attribute__((target("avx2"))) void SubF64Avx2(const double* a,
                                                const double* b, int32_t n,
                                                double* out) {
  int32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                   _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

__attribute__((target("avx2"))) void MulF64Avx2(const double* a,
                                                const double* b, int32_t n,
                                                double* out) {
  int32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                   _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

// Comparison masks are all-ones/all-zero lanes; AND with 1 yields the row
// path's int64 0/1 encoding. The predicate constants match C++ comparison
// semantics: ordered for ==,<,<=,>,>= (NaN -> false) and unordered-true
// for != (NaN -> true).
#define SQLARRAY_CMP_AVX2(NAME, IMM, OP)                                   \
  __attribute__((target("avx2"))) void NAME(                               \
      const double* a, const double* b, int32_t n, int64_t* out) {         \
    const __m256i one = _mm256_set1_epi64x(1);                             \
    int32_t i = 0;                                                         \
    for (; i + 4 <= n; i += 4) {                                           \
      __m256i m = _mm256_castpd_si256(_mm256_cmp_pd(                       \
          _mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), IMM));           \
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),             \
                          _mm256_and_si256(m, one));                       \
    }                                                                      \
    for (; i < n; ++i) out[i] = (a[i] OP b[i]) ? 1 : 0;                    \
  }
SQLARRAY_CMP_AVX2(CmpEqAvx2, _CMP_EQ_OQ, ==)
SQLARRAY_CMP_AVX2(CmpNeAvx2, _CMP_NEQ_UQ, !=)
SQLARRAY_CMP_AVX2(CmpLtAvx2, _CMP_LT_OQ, <)
SQLARRAY_CMP_AVX2(CmpLeAvx2, _CMP_LE_OQ, <=)
SQLARRAY_CMP_AVX2(CmpGtAvx2, _CMP_GT_OQ, >)
SQLARRAY_CMP_AVX2(CmpGeAvx2, _CMP_GE_OQ, >=)
#undef SQLARRAY_CMP_AVX2

// Truthiness combine: cmpeq-against-zero gives an all-ones mask where the
// lane is zero (falsy); andnot folds the De Morgan complement in one op.
__attribute__((target("avx2"))) void AndI64Avx2(const int64_t* a,
                                                const int64_t* b, int32_t n,
                                                int64_t* out) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi64x(1);
  int32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i za = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)), zero);
    __m256i zb = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)), zero);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_andnot_si256(_mm256_or_si256(za, zb), one));
  }
  for (; i < n; ++i) out[i] = (a[i] != 0 && b[i] != 0) ? 1 : 0;
}

__attribute__((target("avx2"))) void OrI64Avx2(const int64_t* a,
                                               const int64_t* b, int32_t n,
                                               int64_t* out) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi64x(1);
  int32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i za = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)), zero);
    __m256i zb = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)), zero);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_andnot_si256(_mm256_and_si256(za, zb), one));
  }
  for (; i < n; ++i) out[i] = (a[i] != 0 || b[i] != 0) ? 1 : 0;
}

__attribute__((target("avx2"))) void NotI64Avx2(const int64_t* a, int32_t n,
                                                int64_t* out) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi64x(1);
  int32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i za = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)), zero);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_and_si256(za, one));
  }
  for (; i < n; ++i) out[i] = (a[i] == 0) ? 1 : 0;
}

__attribute__((target("avx2"))) void NegI64Avx2(const int64_t* a, int32_t n,
                                                int64_t* out) {
  const __m256i zero = _mm256_setzero_si256();
  int32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_sub_epi64(zero, _mm256_loadu_si256(
                                   reinterpret_cast<const __m256i*>(a + i))));
  }
  for (; i < n; ++i) out[i] = WrapNeg(a[i]);
}

// -x flips only the sign bit (also on NaN), exactly what xor with -0.0 does.
__attribute__((target("avx2"))) void NegF64Avx2(const double* a, int32_t n,
                                                double* out) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  int32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_xor_pd(_mm256_loadu_pd(a + i), sign));
  }
  for (; i < n; ++i) out[i] = -a[i];
}

#endif  // SQLARRAY_HAVE_AVX2_VARIANTS

inline bool UseSimd() {
#if SQLARRAY_HAVE_AVX2_VARIANTS
  return SimdAvailable() && !g_force_scalar.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

}  // namespace

void SetForceScalar(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}
bool ForceScalarActive() {
  return g_force_scalar.load(std::memory_order_relaxed);
}

bool SimdAvailable() {
#if SQLARRAY_HAVE_AVX2_VARIANTS
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
#else
  return false;
#endif
}

// ---------------------------------------------------------------------------
// Gathers
// ---------------------------------------------------------------------------

void GatherI64FromI32(const uint8_t* base, int64_t stride, const int32_t* sel,
                      int32_t n, int64_t* out) {
  for (int32_t i = 0; i < n; ++i) {
    const uint8_t* p = base + (sel != nullptr ? sel[i] : i) * stride;
    int32_t v;
    std::memcpy(&v, p, sizeof(v));
    out[i] = v;  // sign-extends, matching ReadRowColumn on kInt32
  }
}

void GatherI64FromI64(const uint8_t* base, int64_t stride, const int32_t* sel,
                      int32_t n, int64_t* out) {
  for (int32_t i = 0; i < n; ++i) {
    const uint8_t* p = base + (sel != nullptr ? sel[i] : i) * stride;
    std::memcpy(&out[i], p, sizeof(int64_t));
  }
}

void GatherF64FromF32(const uint8_t* base, int64_t stride, const int32_t* sel,
                      int32_t n, double* out) {
  for (int32_t i = 0; i < n; ++i) {
    const uint8_t* p = base + (sel != nullptr ? sel[i] : i) * stride;
    float v;
    std::memcpy(&v, p, sizeof(v));
    out[i] = v;  // float -> double widening is exact
  }
}

void GatherF64FromF64(const uint8_t* base, int64_t stride, const int32_t* sel,
                      int32_t n, double* out) {
  for (int32_t i = 0; i < n; ++i) {
    const uint8_t* p = base + (sel != nullptr ? sel[i] : i) * stride;
    std::memcpy(&out[i], p, sizeof(double));
  }
}

// ---------------------------------------------------------------------------
// Elementwise dispatch
// ---------------------------------------------------------------------------

Status AddI64(const int64_t* a, const int64_t* b, int32_t n, int64_t* out) {
  const bool simd = UseSimd();
  return RunBlocked(n, [&](int32_t off, int32_t len) {
#if SQLARRAY_HAVE_AVX2_VARIANTS
    if (simd) return AddI64Avx2(a + off, b + off, len, out + off);
#else
    (void)simd;
#endif
    AddI64Scalar(a + off, b + off, len, out + off);
  });
}

Status SubI64(const int64_t* a, const int64_t* b, int32_t n, int64_t* out) {
  const bool simd = UseSimd();
  return RunBlocked(n, [&](int32_t off, int32_t len) {
#if SQLARRAY_HAVE_AVX2_VARIANTS
    if (simd) return SubI64Avx2(a + off, b + off, len, out + off);
#else
    (void)simd;
#endif
    SubI64Scalar(a + off, b + off, len, out + off);
  });
}

// No 64-bit lane multiply below AVX-512; the scalar loop is the only
// variant (still auto-vectorizable at -O3 via 32x32 splitting).
Status MulI64(const int64_t* a, const int64_t* b, int32_t n, int64_t* out) {
  return RunBlocked(n, [&](int32_t off, int32_t len) {
    MulI64Scalar(a + off, b + off, len, out + off);
  });
}

Status AddF64(const double* a, const double* b, int32_t n, double* out) {
  const bool simd = UseSimd();
  return RunBlocked(n, [&](int32_t off, int32_t len) {
#if SQLARRAY_HAVE_AVX2_VARIANTS
    if (simd) return AddF64Avx2(a + off, b + off, len, out + off);
#else
    (void)simd;
#endif
    AddF64Scalar(a + off, b + off, len, out + off);
  });
}

Status SubF64(const double* a, const double* b, int32_t n, double* out) {
  const bool simd = UseSimd();
  return RunBlocked(n, [&](int32_t off, int32_t len) {
#if SQLARRAY_HAVE_AVX2_VARIANTS
    if (simd) return SubF64Avx2(a + off, b + off, len, out + off);
#else
    (void)simd;
#endif
    SubF64Scalar(a + off, b + off, len, out + off);
  });
}

Status MulF64(const double* a, const double* b, int32_t n, double* out) {
  const bool simd = UseSimd();
  return RunBlocked(n, [&](int32_t off, int32_t len) {
#if SQLARRAY_HAVE_AVX2_VARIANTS
    if (simd) return MulF64Avx2(a + off, b + off, len, out + off);
#else
    (void)simd;
#endif
    MulF64Scalar(a + off, b + off, len, out + off);
  });
}

Status DivI64(const int64_t* a, const int64_t* b, const uint64_t* valid,
              int32_t n, int64_t* out) {
  for (int32_t off = 0; off < n; off += kCancelBlock) {
    SQLARRAY_RETURN_IF_ERROR(gov::CheckThreadCancel());
    const int32_t end = std::min(n, off + kCancelBlock);
    for (int32_t i = off; i < end; ++i) {
      if (valid != nullptr && !BitAt(valid, i)) {
        out[i] = 0;  // NULL lane: deterministic filler, no error check
        continue;
      }
      if (b[i] == 0) return Status::InvalidArgument("division by zero");
      out[i] = a[i] / b[i];
    }
  }
  return Status::OK();
}

Status ModI64(const int64_t* a, const int64_t* b, const uint64_t* valid,
              int32_t n, int64_t* out) {
  for (int32_t off = 0; off < n; off += kCancelBlock) {
    SQLARRAY_RETURN_IF_ERROR(gov::CheckThreadCancel());
    const int32_t end = std::min(n, off + kCancelBlock);
    for (int32_t i = off; i < end; ++i) {
      if (valid != nullptr && !BitAt(valid, i)) {
        out[i] = 0;
        continue;
      }
      if (b[i] == 0) return Status::InvalidArgument("modulo by zero");
      out[i] = a[i] % b[i];
    }
  }
  return Status::OK();
}

Status DivF64(const double* a, const double* b, const uint64_t* valid,
              int32_t n, double* out) {
  for (int32_t off = 0; off < n; off += kCancelBlock) {
    SQLARRAY_RETURN_IF_ERROR(gov::CheckThreadCancel());
    const int32_t end = std::min(n, off + kCancelBlock);
    for (int32_t i = off; i < end; ++i) {
      if (valid != nullptr && !BitAt(valid, i)) {
        out[i] = 0;
        continue;
      }
      // The row path rejects a zero divisor (either sign) before dividing,
      // so the columnar path never produces inf/NaN from x/0 either.
      if (b[i] == 0.0) return Status::InvalidArgument("division by zero");
      out[i] = a[i] / b[i];
    }
  }
  return Status::OK();
}

Status CmpF64(CmpOp op, const double* a, const double* b, int32_t n,
              int64_t* out) {
  using CmpFn = void (*)(const double*, const double*, int32_t, int64_t*);
  CmpFn fn = nullptr;
#if SQLARRAY_HAVE_AVX2_VARIANTS
  if (UseSimd()) {
    switch (op) {
      case CmpOp::kEq: fn = CmpEqAvx2; break;
      case CmpOp::kNe: fn = CmpNeAvx2; break;
      case CmpOp::kLt: fn = CmpLtAvx2; break;
      case CmpOp::kLe: fn = CmpLeAvx2; break;
      case CmpOp::kGt: fn = CmpGtAvx2; break;
      case CmpOp::kGe: fn = CmpGeAvx2; break;
    }
  }
#endif
  if (fn == nullptr) {
    switch (op) {
      case CmpOp::kEq: fn = CmpEqScalar; break;
      case CmpOp::kNe: fn = CmpNeScalar; break;
      case CmpOp::kLt: fn = CmpLtScalar; break;
      case CmpOp::kLe: fn = CmpLeScalar; break;
      case CmpOp::kGt: fn = CmpGtScalar; break;
      case CmpOp::kGe: fn = CmpGeScalar; break;
    }
  }
  return RunBlocked(n, [&](int32_t off, int32_t len) {
    fn(a + off, b + off, len, out + off);
  });
}

Status AndI64(const int64_t* a, const int64_t* b, int32_t n, int64_t* out) {
  const bool simd = UseSimd();
  return RunBlocked(n, [&](int32_t off, int32_t len) {
#if SQLARRAY_HAVE_AVX2_VARIANTS
    if (simd) return AndI64Avx2(a + off, b + off, len, out + off);
#else
    (void)simd;
#endif
    AndI64Scalar(a + off, b + off, len, out + off);
  });
}

Status OrI64(const int64_t* a, const int64_t* b, int32_t n, int64_t* out) {
  const bool simd = UseSimd();
  return RunBlocked(n, [&](int32_t off, int32_t len) {
#if SQLARRAY_HAVE_AVX2_VARIANTS
    if (simd) return OrI64Avx2(a + off, b + off, len, out + off);
#else
    (void)simd;
#endif
    OrI64Scalar(a + off, b + off, len, out + off);
  });
}

Status NotI64(const int64_t* a, int32_t n, int64_t* out) {
  const bool simd = UseSimd();
  return RunBlocked(n, [&](int32_t off, int32_t len) {
#if SQLARRAY_HAVE_AVX2_VARIANTS
    if (simd) return NotI64Avx2(a + off, len, out + off);
#else
    (void)simd;
#endif
    NotI64Scalar(a + off, len, out + off);
  });
}

Status NegI64(const int64_t* a, int32_t n, int64_t* out) {
  const bool simd = UseSimd();
  return RunBlocked(n, [&](int32_t off, int32_t len) {
#if SQLARRAY_HAVE_AVX2_VARIANTS
    if (simd) return NegI64Avx2(a + off, len, out + off);
#else
    (void)simd;
#endif
    NegI64Scalar(a + off, len, out + off);
  });
}

Status NegF64(const double* a, int32_t n, double* out) {
  const bool simd = UseSimd();
  return RunBlocked(n, [&](int32_t off, int32_t len) {
#if SQLARRAY_HAVE_AVX2_VARIANTS
    if (simd) return NegF64Avx2(a + off, len, out + off);
#else
    (void)simd;
#endif
    NegF64Scalar(a + off, len, out + off);
  });
}

Status I64ToF64(const int64_t* a, int32_t n, double* out) {
  return RunBlocked(n, [&](int32_t off, int32_t len) {
    for (int32_t i = off; i < off + len; ++i) {
      out[i] = static_cast<double>(a[i]);
    }
  });
}

Status F64ToI64(const double* a, int32_t n, int64_t* out) {
  return RunBlocked(n, [&](int32_t off, int32_t len) {
    for (int32_t i = off; i < off + len; ++i) {
      out[i] = static_cast<int64_t>(a[i]);
    }
  });
}

void FillI64(int64_t v, int32_t n, int64_t* out) { std::fill_n(out, n, v); }
void FillF64(double v, int32_t n, double* out) { std::fill_n(out, n, v); }

// ---------------------------------------------------------------------------
// Filter / aggregate consumers
// ---------------------------------------------------------------------------

void BuildSel(const int64_t* v, const uint64_t* valid, int32_t n,
              std::vector<int32_t>* sel) {
  if (valid == nullptr) {
    for (int32_t i = 0; i < n; ++i) {
      if (v[i] != 0) sel->push_back(i);
    }
    return;
  }
  for (int32_t i = 0; i < n; ++i) {
    if (BitAt(valid, i) && v[i] != 0) sel->push_back(i);
  }
}

int64_t CountValid(const uint64_t* valid, int32_t n) {
  if (valid == nullptr) return n;
  int64_t count = 0;
  const int32_t words = ValidityWords(n);
  for (int32_t w = 0; w < words; ++w) {
    count += std::popcount(valid[w]);  // tail bits are zero by contract
  }
  return count;
}

Status FoldI64(const int64_t* a, const uint64_t* valid, int32_t n,
               VecAggState* st) {
  for (int32_t off = 0; off < n; off += kCancelBlock) {
    SQLARRAY_RETURN_IF_ERROR(gov::CheckThreadCancel());
    const int32_t end = std::min(n, off + kCancelBlock);
    for (int32_t i = off; i < end; ++i) {
      if (valid != nullptr && !BitAt(valid, i)) continue;
      const int64_t v = a[i];
      const double d = static_cast<double>(v);
      st->isum = WrapAdd(st->isum, v);
      st->count++;
      st->sum += d;
      st->mn = std::min(st->mn, d);
      st->mx = std::max(st->mx, d);
    }
  }
  return Status::OK();
}

Status FoldF64(const double* a, const uint64_t* valid, int32_t n,
               VecAggState* st) {
  for (int32_t off = 0; off < n; off += kCancelBlock) {
    SQLARRAY_RETURN_IF_ERROR(gov::CheckThreadCancel());
    const int32_t end = std::min(n, off + kCancelBlock);
    for (int32_t i = off; i < end; ++i) {
      if (valid != nullptr && !BitAt(valid, i)) continue;
      const double d = a[i];
      st->int_only = false;
      st->count++;
      st->sum += d;
      st->mn = std::min(st->mn, d);
      st->mx = std::max(st->mx, d);
    }
  }
  return Status::OK();
}

}  // namespace sqlarray::col
