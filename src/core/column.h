// Columnar vectors for the batched expression pipeline.
//
// A ColumnVec is one expression operand or result over a batch of rows:
// contiguous typed values in one of two lanes (int64 / float64 — the
// engine's numeric value domain), an optional validity bitmap (absent
// bitmap = every row valid), and, at the consumer side, a selection vector
// of surviving row indices. Columns either own their storage (reused across
// batches, so a register file allocates once per query) or are zero-copy
// views over external memory — a B-tree leaf row run or a bench buffer —
// when the source layout is already a contiguous array of the lane type.
//
// Validity convention: an empty bitmap means all rows are valid. A
// materialized bitmap has (n+63)/64 words, bit i of word i/64 set when row
// i is valid, and the tail bits of the last word ZERO, so whole-word
// popcounts and word-wise ANDs need no tail masking.
//
// Invalid rows carry deterministic but meaningless values (kernels write 0
// where they skip); consumers must never read a value whose validity bit is
// clear.
#pragma once

#include <cstdint>
#include <vector>

namespace sqlarray::col {

/// The two value lanes of the expression domain (engine Values are BIGINT
/// or FLOAT once coerced; see engine/value.h).
enum class Lane : uint8_t { kI64, kF64 };

/// Words needed for an n-row validity bitmap.
inline int32_t ValidityWords(int32_t n) { return (n + 63) / 64; }

class ColumnVec {
 public:
  Lane lane() const { return lane_; }
  int32_t size() const { return n_; }
  bool is_view() const { return view_ != nullptr; }

  /// Dense value access. i64()/f64() are valid only for the matching lane.
  const int64_t* i64() const {
    return view_ != nullptr ? static_cast<const int64_t*>(view_) : i64_.data();
  }
  const double* f64() const {
    return view_ != nullptr ? static_cast<const double*>(view_) : f64_.data();
  }

  /// Switches to owned storage of the given lane and size; returns the
  /// mutable payload. Previously grown capacity is reused, never shrunk.
  int64_t* MutableI64(int32_t n) {
    lane_ = Lane::kI64;
    n_ = n;
    view_ = nullptr;
    if (static_cast<int32_t>(i64_.size()) < n) i64_.resize(n);
    return i64_.data();
  }
  double* MutableF64(int32_t n) {
    lane_ = Lane::kF64;
    n_ = n;
    view_ = nullptr;
    if (static_cast<int32_t>(f64_.size()) < n) f64_.resize(n);
    return f64_.data();
  }

  /// Zero-copy views over external contiguous data (a leaf-page row run of
  /// a single-int64-column table, a bench buffer). The data must stay alive
  /// and 8-byte aligned for the view's lifetime; validity resets to
  /// all-valid.
  void ViewI64(const int64_t* data, int32_t n) {
    lane_ = Lane::kI64;
    n_ = n;
    view_ = data;
    valid_.clear();
  }
  void ViewF64(const double* data, int32_t n) {
    lane_ = Lane::kF64;
    n_ = n;
    view_ = data;
    valid_.clear();
  }

  // -- validity ------------------------------------------------------------

  bool all_valid() const { return valid_.empty(); }
  /// Null when every row is valid.
  const uint64_t* valid_words() const {
    return valid_.empty() ? nullptr : valid_.data();
  }
  /// Materializes the bitmap (initialized all-valid, tail bits zero) and
  /// returns it for editing.
  uint64_t* MutableValidity();
  void SetAllValid() { valid_.clear(); }
  /// Marks every row null (materialized zero words).
  void SetAllNull();
  bool ValidAt(int32_t i) const {
    return valid_.empty() ||
           (valid_[i >> 6] >> (static_cast<uint32_t>(i) & 63)) & 1;
  }
  void SetNullAt(int32_t i) {
    MutableValidity()[i >> 6] &= ~(uint64_t{1} << (static_cast<uint32_t>(i) & 63));
  }

  /// Result-validity helper: this row count, validity = AND of the operand
  /// bitmaps (either may be all-valid). Call after Mutable*().
  void IntersectValidity(const ColumnVec& a, const ColumnVec& b);
  /// Copies `a`'s validity (unary ops and lane converts preserve nulls).
  void CopyValidity(const ColumnVec& a);

  /// Owned heap footprint in bytes (budget accounting; views are free).
  int64_t capacity_bytes() const {
    return static_cast<int64_t>(i64_.capacity()) * 8 +
           static_cast<int64_t>(f64_.capacity()) * 8 +
           static_cast<int64_t>(valid_.capacity()) * 8;
  }

 private:
  Lane lane_ = Lane::kI64;
  int32_t n_ = 0;
  const void* view_ = nullptr;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<uint64_t> valid_;
};

}  // namespace sqlarray::col
