// Axis permutation and concatenation.
#include <cstring>
#include <numeric>

#include "core/ops.h"

namespace sqlarray {

Result<OwnedArray> PermuteAxes(const ArrayRef& a, std::span<const int> perm) {
  const int rank = a.rank();
  if (static_cast<int>(perm.size()) != rank) {
    return Status::InvalidArgument("permutation length must equal the rank");
  }
  std::vector<bool> seen(rank, false);
  for (int p : perm) {
    if (p < 0 || p >= rank || seen[p]) {
      return Status::InvalidArgument(
          "axis permutation must mention each axis exactly once");
    }
    seen[p] = true;
  }

  Dims out_dims(rank);
  for (int k = 0; k < rank; ++k) out_dims[k] = a.dims()[perm[k]];
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                            OwnedArray::Zeros(a.dtype(), out_dims));

  const Dims src_strides = ColumnMajorStrides(a.dims());
  const int esize = a.elem_size();
  const auto src = a.payload();
  auto dst = out.mutable_payload();

  // Walk the OUTPUT in column-major order; compute the source offset from
  // the permuted index. The output writes sequentially, the source gathers.
  Dims cursor(rank, 0);
  const int64_t n = out.num_elements();
  for (int64_t o = 0; o < n; ++o) {
    int64_t src_linear = 0;
    for (int k = 0; k < rank; ++k) {
      src_linear += cursor[k] * src_strides[perm[k]];
    }
    std::memcpy(dst.data() + o * esize, src.data() + src_linear * esize,
                static_cast<size_t>(esize));
    for (int k = 0; k < rank; ++k) {
      if (++cursor[k] < out_dims[k]) break;
      cursor[k] = 0;
    }
  }
  return out;
}

Result<OwnedArray> Transpose(const ArrayRef& a) {
  std::vector<int> perm(a.rank());
  std::iota(perm.begin(), perm.end(), 0);
  std::reverse(perm.begin(), perm.end());
  return PermuteAxes(a, perm);
}

Result<OwnedArray> ConcatAxis(const ArrayRef& a, const ArrayRef& b,
                              int axis) {
  if (a.rank() != b.rank()) {
    return Status::InvalidArgument(
        "concatenation requires arrays of equal rank");
  }
  const int rank = a.rank();
  if (axis < 0 || axis >= rank) {
    return Status::InvalidArgument("concatenation axis out of range");
  }
  for (int k = 0; k < rank; ++k) {
    if (k != axis && a.dims()[k] != b.dims()[k]) {
      return Status::InvalidArgument(
          "non-concatenated dimensions must match");
    }
  }

  DType out_dtype = PromoteDType(a.dtype(), b.dtype());
  Dims out_dims = a.dims();
  out_dims[axis] += b.dims()[axis];
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                            OwnedArray::Zeros(out_dtype, out_dims));

  // Generic element-wise copy through the promoted type: simple and correct
  // for every dtype pairing (the hot paths copy same-dtype payloads, which
  // the promotion makes a widening no-op).
  const int64_t n = out.num_elements();
  for (int64_t o = 0; o < n; ++o) {
    Dims idx = Unlinearize(out_dims, o);
    const ArrayRef* src = &a;
    if (idx[axis] >= a.dims()[axis]) {
      idx[axis] -= a.dims()[axis];
      src = &b;
    }
    if (IsComplexDType(out_dtype)) {
      SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> v,
                                src->GetComplexAt(idx));
      SQLARRAY_RETURN_IF_ERROR(out.SetComplex(o, v));
    } else {
      SQLARRAY_ASSIGN_OR_RETURN(double v, src->GetDoubleAt(idx));
      SQLARRAY_RETURN_IF_ERROR(out.SetDouble(o, v));
    }
  }
  return out;
}

}  // namespace sqlarray
