// Monomorphized batch kernels for the hot array path.
//
// The generic element accessors (GetDouble/GetComplex) pay a dtype switch, a
// complex<double> box, and a Status check on EVERY element. The kernels here
// hoist the dtype dispatch out of the loop: Lookup* resolves one function
// pointer per (op, dtype...) combination, and that function runs a tight
// contiguous loop over the raw payload that the compiler can auto-vectorize
// (see the SQLARRAY_NATIVE_ARCH cmake option for -march=native builds).
//
// Dispatch tiers (see DESIGN.md "Kernel dispatch tiers"):
//   1. kernel  — the 6 real dtypes (int8/16/32/64, float32/64); Lookup*
//                returns a non-null pointer and the caller loops once.
//   2. boxed   — complex and datetime operands; Lookup* returns nullptr and
//                the caller falls back to the generic GetComplex path, which
//                doubles as the differential-test oracle (tests/test_ops.cc).
//
// Element access inside the kernels goes through DecodeLE/EncodeLE (memcpy)
// because max-array payloads start at header offset 16 + 4*rank, which is not
// 8-aligned for odd ranks; the memcpy form is alignment-safe and still
// compiles to plain (unaligned) vector loads.
//
// Numeric contracts:
//   * Float-valued results are computed in double and narrowed once, which
//     matches the boxed oracle bit for bit (double rounding is exact for
//     +,-,*,/ when the intermediate precision is >= 2p+2).
//   * Integer x integer ops are computed EXACTLY in the promoted integer
//     type with overflow detection (OutOfRange on overflow) instead of
//     round-tripping through double, which silently corrupted Int64 values
//     above 2^53.
//   * Division by zero is an error (InvalidArgument), matching SQL-side
//     semantics of the boxed path, for both integer and float operands.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "core/dtype.h"
#include "core/ops.h"

namespace sqlarray::kernels {

/// True for the dtypes the kernel tier covers (the six real types).
/// Complex and datetime always take the boxed fallback.
bool IsKernelDType(DType t);

/// Dispatch-tier accounting: each Lookup* caller reports which tier the
/// batch op actually took, bumping the engine-wide "core.dispatch.kernel" /
/// "core.dispatch.boxed" counters (one relaxed increment per BATCH, not per
/// element). EXPLAIN ANALYZE reconciles these against registry deltas.
void CountKernelDispatch();
void CountBoxedDispatch();

/// Result dtype of an element-wise binary op after promotion (integer
/// division promotes to float64, like the boxed path).
DType BinaryOutDType(BinOp op, DType lhs, DType rhs);

// ---------------------------------------------------------------------------
// Element-wise kernels
// ---------------------------------------------------------------------------

/// Contiguous binary element-wise loop: lhs/rhs payloads of the given
/// dtypes, out payload of BinaryOutDType(op, lhs, rhs) elements.
using BinaryKernelFn = Status (*)(const uint8_t* lhs, const uint8_t* rhs,
                                  uint8_t* out, int64_t n);

/// Resolves the kernel for (op, lhs, rhs); nullptr when either operand is
/// complex or datetime (use the boxed path).
BinaryKernelFn LookupBinary(BinOp op, DType lhs, DType rhs);

/// Scalar-broadcast loop: `a op scalar` with a float64 output payload
/// (promotion with a double scalar always yields float64 for real dtypes).
using ScalarKernelFn = Status (*)(const uint8_t* a, double scalar,
                                  uint8_t* out, int64_t n);
ScalarKernelFn LookupScalar(BinOp op, DType a);

// ---------------------------------------------------------------------------
// Cast kernels
// ---------------------------------------------------------------------------

/// Contiguous dtype-conversion loop. Integer -> integer converts exactly
/// (range-checked in the integer domain); float -> integer rounds to
/// nearest (ties to even) and range-checks; anything that does not fit is
/// OutOfRange, matching WriteScalarFromDouble.
using CastKernelFn = Status (*)(const uint8_t* src, uint8_t* dst, int64_t n);

/// nullptr when either side is complex/datetime or src == dst (callers
/// memcpy identity conversions).
CastKernelFn LookupCast(DType src, DType dst);

// ---------------------------------------------------------------------------
// Reduction kernels
// ---------------------------------------------------------------------------

/// Whole-span sum, widened to double. Uses four independent accumulators
/// (the result can differ from a strictly sequential sum in the last ulp).
using SumKernelFn = double (*)(const uint8_t* a, int64_t n);
SumKernelFn LookupSum(DType t);

/// Whole-span sum of squares (for Norm2), widened to double.
using SumSqKernelFn = double (*)(const uint8_t* a, int64_t n);
SumSqKernelFn LookupSumSq(DType t);

/// Full reduction statistics for min/max/mean/std aggregates.
struct ReduceStats {
  double sum = 0;
  double sumsq = 0;
  double mn = 0;   ///< undefined when n == 0
  double mx = 0;   ///< undefined when n == 0
  int64_t n = 0;
};

using ReduceKernelFn = void (*)(const uint8_t* a, int64_t n, ReduceStats* out);
ReduceKernelFn LookupReduce(DType t);

/// Dot-product loop over two equal-length spans, accumulated in double.
/// Covers the four float32/float64 pairings; nullptr otherwise.
using DotKernelFn = double (*)(const uint8_t* a, const uint8_t* b, int64_t n);
DotKernelFn LookupDot(DType a, DType b);

}  // namespace sqlarray::kernels
