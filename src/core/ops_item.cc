#include "core/ops.h"

namespace sqlarray {

Result<double> Item(const ArrayRef& a, std::span<const int64_t> index) {
  return a.GetDoubleAt(index);
}

Result<std::complex<double>> ItemComplex(const ArrayRef& a,
                                         std::span<const int64_t> index) {
  return a.GetComplexAt(index);
}

Result<OwnedArray> UpdateItem(const ArrayRef& a,
                              std::span<const int64_t> index, double v) {
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out, OwnedArray::CopyOf(a));
  SQLARRAY_RETURN_IF_ERROR(out.SetDoubleAt(index, v));
  return out;
}

Result<OwnedArray> UpdateItemComplex(const ArrayRef& a,
                                     std::span<const int64_t> index,
                                     std::complex<double> v) {
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out, OwnedArray::CopyOf(a));
  SQLARRAY_ASSIGN_OR_RETURN(int64_t linear, LinearIndex(out.dims(), index));
  SQLARRAY_RETURN_IF_ERROR(out.SetComplex(linear, v));
  return out;
}

}  // namespace sqlarray
