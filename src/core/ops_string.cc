#include "core/ops.h"

#include <charconv>
#include <cstdio>
#include <sstream>

namespace sqlarray {

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[40];
  // %.17g round-trips IEEE doubles exactly.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

/// Skips ASCII whitespace.
void SkipSpace(std::string_view* s) {
  while (!s->empty() && (s->front() == ' ' || s->front() == '\t')) {
    s->remove_prefix(1);
  }
}

Result<double> ParseDouble(std::string_view* s) {
  SkipSpace(s);
  // std::from_chars(double) is available with GCC >= 11.
  double v = 0;
  const char* begin = s->data();
  const char* end = s->data() + s->size();
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc()) {
    return Status::InvalidArgument("malformed number in array string");
  }
  s->remove_prefix(ptr - begin);
  return v;
}

}  // namespace

std::string ToArrayString(const ArrayRef& a) {
  std::string out(DTypeName(a.dtype()));
  out += '[';
  for (int k = 0; k < a.rank(); ++k) {
    if (k) out += ',';
    out += std::to_string(a.dims()[k]);
  }
  out += "]{";
  const int64_t n = a.num_elements();
  const bool cpx = IsComplexDType(a.dtype());
  for (int64_t i = 0; i < n; ++i) {
    if (i) out += ' ';
    if (cpx) {
      std::complex<double> v = a.GetComplex(i).value();
      AppendDouble(&out, v.real());
      if (v.imag() >= 0 || std::isnan(v.imag())) out += '+';
      AppendDouble(&out, v.imag());
      out += 'i';
    } else {
      AppendDouble(&out, a.GetDouble(i).value());
    }
  }
  out += '}';
  return out;
}

Result<OwnedArray> FromArrayString(std::string_view text) {
  // Grammar: dtype '[' dim (',' dim)* ']' '{' value (' ' value)* '}'
  size_t lb = text.find('[');
  if (lb == std::string_view::npos) {
    return Status::InvalidArgument("array string missing '['");
  }
  SQLARRAY_ASSIGN_OR_RETURN(DType dtype, DTypeFromName(text.substr(0, lb)));

  size_t rb = text.find(']', lb);
  if (rb == std::string_view::npos) {
    return Status::InvalidArgument("array string missing ']'");
  }
  Dims dims;
  {
    std::string_view ds = text.substr(lb + 1, rb - lb - 1);
    while (!ds.empty()) {
      size_t comma = ds.find(',');
      std::string_view tok = ds.substr(0, comma);
      int64_t d = 0;
      auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
      if (ec != std::errc() || ptr != tok.data() + tok.size()) {
        return Status::InvalidArgument("malformed dimension in array string");
      }
      dims.push_back(d);
      if (comma == std::string_view::npos) break;
      ds.remove_prefix(comma + 1);
    }
  }

  size_t lc = text.find('{', rb);
  size_t rc = text.rfind('}');
  if (lc == std::string_view::npos || rc == std::string_view::npos ||
      rc < lc) {
    return Status::InvalidArgument("array string missing value braces");
  }
  std::string_view vs = text.substr(lc + 1, rc - lc - 1);

  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out, OwnedArray::Zeros(dtype, dims));
  const int64_t n = out.num_elements();
  const bool cpx = IsComplexDType(dtype);
  for (int64_t i = 0; i < n; ++i) {
    if (cpx) {
      SQLARRAY_ASSIGN_OR_RETURN(double re, ParseDouble(&vs));
      SkipSpace(&vs);
      // std::from_chars rejects a leading '+', so consume the sign of the
      // imaginary part explicitly.
      if (!vs.empty() && vs.front() == '+') vs.remove_prefix(1);
      SQLARRAY_ASSIGN_OR_RETURN(double im, ParseDouble(&vs));
      SkipSpace(&vs);
      if (vs.empty() || vs.front() != 'i') {
        return Status::InvalidArgument(
            "complex element missing 'i' suffix in array string");
      }
      vs.remove_prefix(1);
      SQLARRAY_RETURN_IF_ERROR(out.SetComplex(i, {re, im}));
    } else {
      SQLARRAY_ASSIGN_OR_RETURN(double v, ParseDouble(&vs));
      SQLARRAY_RETURN_IF_ERROR(out.SetDouble(i, v));
    }
  }
  SkipSpace(&vs);
  if (!vs.empty()) {
    return Status::InvalidArgument("trailing values in array string");
  }
  return out;
}

}  // namespace sqlarray
