#include <cstring>

#include "core/kernels.h"
#include "core/ops.h"

namespace sqlarray {

Result<OwnedArray> CastFromRaw(DType dtype, Dims dims,
                               std::span<const uint8_t> raw) {
  SQLARRAY_RETURN_IF_ERROR(ValidateDims(dims));
  int64_t expected = ElementCount(dims) * DTypeSize(dtype);
  if (static_cast<int64_t>(raw.size()) != expected) {
    return Status::InvalidArgument(
        "raw byte count " + std::to_string(raw.size()) +
        " does not match " + std::to_string(expected) +
        " bytes implied by the shape and element type");
  }
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                            OwnedArray::Zeros(dtype, std::move(dims)));
  std::memcpy(out.mutable_payload().data(), raw.data(), raw.size());
  return out;
}

Result<std::vector<uint8_t>> Raw(const ArrayRef& a) {
  auto pl = a.payload();
  return std::vector<uint8_t>(pl.begin(), pl.end());
}

Result<OwnedArray> ConvertDTypeBoxed(const ArrayRef& a, DType target) {
  if (target == a.dtype()) return OwnedArray::CopyOf(a);
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                            OwnedArray::Zeros(target, a.dims()));
  const int64_t n = a.num_elements();
  uint8_t* dst = out.mutable_payload().data();
  const int dsize = DTypeSize(target);
  if (IsComplexDType(a.dtype())) {
    for (int64_t i = 0; i < n; ++i) {
      SQLARRAY_ASSIGN_OR_RETURN(std::complex<double> v, a.GetComplex(i));
      SQLARRAY_RETURN_IF_ERROR(
          WriteScalarFromComplex(target, dst + i * dsize, v));
    }
  } else {
    for (int64_t i = 0; i < n; ++i) {
      SQLARRAY_ASSIGN_OR_RETURN(double v, a.GetDouble(i));
      SQLARRAY_RETURN_IF_ERROR(
          WriteScalarFromDouble(target, dst + i * dsize, v));
    }
  }
  return out;
}

Result<OwnedArray> ConvertDType(const ArrayRef& a, DType target) {
  if (target == a.dtype()) return OwnedArray::CopyOf(a);
  kernels::CastKernelFn fn = kernels::LookupCast(a.dtype(), target);
  if (fn == nullptr) {
    kernels::CountBoxedDispatch();
    return ConvertDTypeBoxed(a, target);
  }
  kernels::CountKernelDispatch();
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                            OwnedArray::Zeros(target, a.dims()));
  SQLARRAY_RETURN_IF_ERROR(
      fn(a.payload().data(), out.mutable_payload().data(), a.num_elements()));
  return out;
}

Result<OwnedArray> ConvertStorage(const ArrayRef& a, StorageClass target) {
  SQLARRAY_RETURN_IF_ERROR(ValidateHeader(a.dtype(), a.dims(), target));
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                            OwnedArray::Zeros(a.dtype(), a.dims(), target));
  auto src = a.payload();
  std::memcpy(out.mutable_payload().data(), src.data(), src.size());
  return out;
}

}  // namespace sqlarray
