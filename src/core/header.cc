#include "core/header.h"

#include <limits>
#include <string>

#include "common/bytes.h"

namespace sqlarray {

namespace {

/// Guards dims decoded from untrusted bytes: ValidateDims rejects negative
/// sizes and element-count overflow, and the payload size must also fit
/// int64 together with the header. Every failure is kCorruption — the bytes
/// claim a shape no writer can produce.
Status ValidateDecodedShape(const ArrayHeader& h) {
  Status dims_ok = ValidateDims(h.dims);
  if (!dims_ok.ok()) {
    return Status::Corruption("array header has invalid dimensions: " +
                              dims_ok.message());
  }
  const int64_t elem = DTypeSize(h.dtype);
  const int64_t limit =
      (std::numeric_limits<int64_t>::max() - h.header_size()) / elem;
  if (h.num_elements() > limit) {
    return Status::Corruption("array payload size overflows int64");
  }
  return Status::OK();
}

}  // namespace

Status ValidateHeader(DType dtype, std::span<const int64_t> dims,
                      StorageClass storage) {
  SQLARRAY_RETURN_IF_ERROR(ValidateDims(dims));
  if (storage == StorageClass::kShort) {
    if (dims.size() > kMaxShortRank) {
      return Status::InvalidArgument(
          "short arrays support at most 6 dimensions, got " +
          std::to_string(dims.size()));
    }
    for (int64_t d : dims) {
      if (d > kMaxShortDimSize) {
        return Status::InvalidArgument(
            "short array dimension size " + std::to_string(d) +
            " exceeds int16 limit");
      }
    }
    int64_t blob =
        kShortHeaderSize + ElementCount(dims) * DTypeSize(dtype);
    if (blob > kMaxShortBlobBytes) {
      return Status::InvalidArgument(
          "short array blob of " + std::to_string(blob) +
          " bytes exceeds the VARBINARY(8000) on-page limit");
    }
  } else {
    for (int64_t d : dims) {
      if (d > kMaxMaxDimSize) {
        return Status::InvalidArgument(
            "max array dimension size " + std::to_string(d) +
            " exceeds int32 limit");
      }
    }
    // ValidateDims bounds the element count; the byte size must fit too.
    const int64_t header =
        kMaxHeaderPrefixSize + 4 * static_cast<int64_t>(dims.size());
    const int64_t limit =
        (std::numeric_limits<int64_t>::max() - header) / DTypeSize(dtype);
    if (ElementCount(dims) > limit) {
      return Status::InvalidArgument("array payload size overflows int64");
    }
  }
  return Status::OK();
}

StorageClass ChooseStorageClass(DType dtype, std::span<const int64_t> dims) {
  if (ValidateHeader(dtype, dims, StorageClass::kShort).ok()) {
    return StorageClass::kShort;
  }
  return StorageClass::kMax;
}

Status AppendHeader(const ArrayHeader& header, std::vector<uint8_t>* out) {
  SQLARRAY_RETURN_IF_ERROR(
      ValidateHeader(header.dtype, header.dims, header.storage));
  if (header.storage == StorageClass::kShort) {
    size_t base = out->size();
    out->resize(base + kShortHeaderSize, 0);
    uint8_t* p = out->data() + base;
    p[0] = kArrayMagic;
    p[1] = 0;  // flags: short
    p[2] = static_cast<uint8_t>(header.dtype);
    p[3] = static_cast<uint8_t>(header.rank());
    EncodeLE<uint32_t>(p + 4, static_cast<uint32_t>(header.num_elements()));
    for (int k = 0; k < header.rank(); ++k) {
      EncodeLE<int16_t>(p + 8 + 2 * k, static_cast<int16_t>(header.dims[k]));
    }
    // bytes 20..23 reserved (already zero)
  } else {
    size_t base = out->size();
    out->resize(base + kMaxHeaderPrefixSize + 4 * header.dims.size(), 0);
    uint8_t* p = out->data() + base;
    p[0] = kArrayMagic;
    p[1] = 1;  // flags: max
    p[2] = static_cast<uint8_t>(header.dtype);
    p[3] = 0;
    EncodeLE<uint32_t>(p + 4, static_cast<uint32_t>(header.rank()));
    EncodeLE<int64_t>(p + 8, header.num_elements());
    for (int k = 0; k < header.rank(); ++k) {
      EncodeLE<int32_t>(p + kMaxHeaderPrefixSize + 4 * k,
                        static_cast<int32_t>(header.dims[k]));
    }
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> EncodeHeader(const ArrayHeader& header) {
  std::vector<uint8_t> out;
  SQLARRAY_RETURN_IF_ERROR(AppendHeader(header, &out));
  return out;
}

Result<ArrayHeader> DecodeHeader(std::span<const uint8_t> blob) {
  if (blob.size() < 4) {
    return Status::Corruption("array blob shorter than minimal header");
  }
  if (blob[0] != kArrayMagic) {
    return Status::Corruption("array blob has bad magic byte " +
                              std::to_string(blob[0]));
  }
  uint8_t flags = blob[1];
  if (flags > 1) {
    return Status::Corruption("array blob has unknown flags " +
                              std::to_string(flags));
  }
  SQLARRAY_ASSIGN_OR_RETURN(DType dtype, DTypeFromByte(blob[2]));

  ArrayHeader h;
  h.dtype = dtype;
  if (flags == 0) {
    h.storage = StorageClass::kShort;
    if (blob.size() < kShortHeaderSize) {
      return Status::Corruption("short array blob truncated in header");
    }
    int rank = blob[3];
    if (rank < 1 || rank > kMaxShortRank) {
      return Status::Corruption("short array has invalid rank " +
                                std::to_string(rank));
    }
    uint32_t count = DecodeLE<uint32_t>(blob.data() + 4);
    h.dims.resize(rank);
    for (int k = 0; k < rank; ++k) {
      int16_t d = DecodeLE<int16_t>(blob.data() + 8 + 2 * k);
      if (d < 0) {
        return Status::Corruption("short array has negative dimension size");
      }
      h.dims[k] = d;
    }
    SQLARRAY_RETURN_IF_ERROR(ValidateDecodedShape(h));
    if (h.num_elements() != static_cast<int64_t>(count)) {
      return Status::Corruption(
          "short array element count does not match dimension sizes");
    }
  } else {
    h.storage = StorageClass::kMax;
    if (blob.size() < kMaxHeaderPrefixSize) {
      return Status::Corruption("max array blob truncated in header prefix");
    }
    uint32_t rank = DecodeLE<uint32_t>(blob.data() + 4);
    if (rank < 1 || rank > (1u << 20)) {
      return Status::Corruption("max array has implausible rank " +
                                std::to_string(rank));
    }
    int64_t count = DecodeLE<int64_t>(blob.data() + 8);
    if (blob.size() <
        static_cast<size_t>(kMaxHeaderPrefixSize) + 4 * rank) {
      return Status::Corruption("max array blob truncated in dim sizes");
    }
    h.dims.resize(rank);
    for (uint32_t k = 0; k < rank; ++k) {
      int32_t d = DecodeLE<int32_t>(blob.data() + kMaxHeaderPrefixSize + 4 * k);
      if (d < 0) {
        return Status::Corruption("max array has negative dimension size");
      }
      h.dims[k] = d;
    }
    SQLARRAY_RETURN_IF_ERROR(ValidateDecodedShape(h));
    if (count < 0 || h.num_elements() != count) {
      return Status::Corruption(
          "max array element count does not match dimension sizes");
    }
  }

  // When the payload is present, make sure it is not truncated. (Longer is
  // allowed: fixed-width binary columns pad short-array blobs.)
  if (blob.size() > static_cast<size_t>(h.header_size()) &&
      blob.size() < static_cast<size_t>(h.blob_size())) {
    return Status::Corruption("array blob payload truncated: have " +
                              std::to_string(blob.size()) + " bytes, need " +
                              std::to_string(h.blob_size()));
  }
  return h;
}

Result<int64_t> PeekHeaderSize(std::span<const uint8_t> prefix) {
  if (prefix.size() < 8) {
    return Status::InvalidArgument("need at least 8 bytes to peek a header");
  }
  if (prefix[0] != kArrayMagic) {
    return Status::Corruption("array blob has bad magic byte");
  }
  if (prefix[1] > 1) {
    return Status::Corruption("array blob has unknown flags " +
                              std::to_string(prefix[1]));
  }
  if (prefix[1] == 0) return static_cast<int64_t>(kShortHeaderSize);
  uint32_t rank = DecodeLE<uint32_t>(prefix.data() + 4);
  if (rank < 1 || rank > (1u << 20)) {
    return Status::Corruption("max array has implausible rank " +
                              std::to_string(rank));
  }
  return static_cast<int64_t>(kMaxHeaderPrefixSize) + 4 * rank;
}

}  // namespace sqlarray
