#include "core/ops.h"

#include <cstring>

namespace sqlarray {

namespace {

/// Validates a subarray request against the source shape.
Status ValidateSubarray(std::span<const int64_t> dims,
                        std::span<const int64_t> offset,
                        std::span<const int64_t> sizes) {
  if (offset.size() != dims.size() || sizes.size() != dims.size()) {
    return Status::InvalidArgument(
        "subarray offset/size rank must match the array rank");
  }
  for (size_t k = 0; k < dims.size(); ++k) {
    if (offset[k] < 0 || sizes[k] < 1 || offset[k] + sizes[k] > dims[k]) {
      return Status::OutOfRange(
          "subarray range [" + std::to_string(offset[k]) + ", " +
          std::to_string(offset[k] + sizes[k]) + ") out of bounds for " +
          "dimension " + std::to_string(k) + " of size " +
          std::to_string(dims[k]));
    }
  }
  return Status::OK();
}

/// Drops length-1 dimensions, keeping at least one dimension.
Dims CollapseDims(std::span<const int64_t> sizes) {
  Dims out;
  for (int64_t s : sizes) {
    if (s != 1) out.push_back(s);
  }
  if (out.empty()) out.push_back(1);
  return out;
}

}  // namespace

Result<OwnedArray> Subarray(const ArrayRef& a, std::span<const int64_t> offset,
                            std::span<const int64_t> sizes, bool collapse) {
  SQLARRAY_RETURN_IF_ERROR(ValidateSubarray(a.dims(), offset, sizes));

  Dims out_dims = collapse ? CollapseDims(sizes)
                           : Dims(sizes.begin(), sizes.end());
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                            OwnedArray::Zeros(a.dtype(), out_dims));

  const int esize = a.elem_size();
  const auto src = a.payload();
  auto dst = out.mutable_payload();
  const Dims strides = ColumnMajorStrides(a.dims());
  const int rank = a.rank();

  // Copy runs of sizes[0] consecutive elements; iterate the outer index
  // space in column-major order so the destination is written sequentially.
  const int64_t run_bytes = sizes[0] * esize;
  int64_t outer = 1;
  for (int k = 1; k < rank; ++k) outer *= sizes[k];

  Dims cursor(rank, 0);  // index within the subarray, dims 1..rank-1 used
  uint8_t* d = dst.data();
  for (int64_t block = 0; block < outer; ++block) {
    int64_t src_linear = offset[0];
    for (int k = 1; k < rank; ++k) {
      src_linear += (offset[k] + cursor[k]) * strides[k];
    }
    std::memcpy(d, src.data() + src_linear * esize,
                static_cast<size_t>(run_bytes));
    d += run_bytes;
    // Column-major increment of the outer cursor.
    for (int k = 1; k < rank; ++k) {
      if (++cursor[k] < sizes[k]) break;
      cursor[k] = 0;
    }
  }
  return out;
}

Result<OwnedArray> Reshape(const ArrayRef& a, Dims new_dims) {
  SQLARRAY_RETURN_IF_ERROR(ValidateDims(new_dims));
  if (ElementCount(new_dims) != a.num_elements()) {
    return Status::InvalidArgument(
        "reshape must keep the element count fixed: have " +
        std::to_string(a.num_elements()) + ", requested " +
        std::to_string(ElementCount(new_dims)));
  }
  SQLARRAY_ASSIGN_OR_RETURN(OwnedArray out,
                            OwnedArray::Zeros(a.dtype(), std::move(new_dims)));
  auto src = a.payload();
  auto dst = out.mutable_payload();
  std::memcpy(dst.data(), src.data(), src.size());
  return out;
}

}  // namespace sqlarray
