#include "core/kernels.h"

#include <cmath>
#include <limits>
#include <type_traits>

#include "common/bytes.h"
#include "obs/metrics.h"

namespace sqlarray::kernels {

void CountKernelDispatch() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("core.dispatch.kernel");
  c->Add(1);
}

void CountBoxedDispatch() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("core.dispatch.boxed");
  c->Add(1);
}

namespace {

/// Promotion rank mirroring PromoteDType for the six kernel dtypes.
template <typename T>
constexpr int RankOf() {
  if constexpr (std::is_same_v<T, int8_t>) return 0;
  if constexpr (std::is_same_v<T, int16_t>) return 1;
  if constexpr (std::is_same_v<T, int32_t>) return 2;
  if constexpr (std::is_same_v<T, int64_t>) return 3;
  if constexpr (std::is_same_v<T, float>) return 4;
  return 5;  // double
}

/// The wider of two kernel element types under the promotion lattice.
template <typename L, typename R>
using PromoteT = std::conditional_t<(RankOf<L>() >= RankOf<R>()), L, R>;

template <typename T>
inline T Load(const uint8_t* p, int64_t i) {
  return DecodeLE<T>(p + i * static_cast<int64_t>(sizeof(T)));
}

template <typename T>
inline void Store(uint8_t* p, int64_t i, T v) {
  EncodeLE<T>(p + i * static_cast<int64_t>(sizeof(T)), v);
}

Status DivByZero() {
  return Status::InvalidArgument("element-wise division by zero");
}

Status IntOverflow() {
  return Status::OutOfRange(
      "integer element-wise result does not fit the promoted element type");
}

// ---------------------------------------------------------------------------
// Binary element-wise loops
// ---------------------------------------------------------------------------

/// Float-output loop: widen both operands to double, apply, narrow once.
/// Division flags zero divisors and reports after the loop (the output is
/// discarded on error, so computing past a zero is harmless).
template <typename L, typename R, typename O, BinOp op>
Status FloatBinaryLoop(const uint8_t* lp, const uint8_t* rp, uint8_t* out,
                       int64_t n) {
  int bad = 0;
  for (int64_t i = 0; i < n; ++i) {
    double x = static_cast<double>(Load<L>(lp, i));
    double y = static_cast<double>(Load<R>(rp, i));
    double v;
    if constexpr (op == BinOp::kAdd) v = x + y;
    if constexpr (op == BinOp::kSub) v = x - y;
    if constexpr (op == BinOp::kMul) v = x * y;
    if constexpr (op == BinOp::kDiv) {
      bad |= (y == 0.0);
      v = x / y;
    }
    Store<O>(out, i, static_cast<O>(v));
  }
  if (bad) return DivByZero();
  return Status::OK();
}

/// Integer-output loop for promoted types up to 32 bits: compute exactly in
/// int64 (no intermediate overflow possible) and range-check the result.
template <typename L, typename R, typename O, BinOp op>
Status NarrowIntBinaryLoop(const uint8_t* lp, const uint8_t* rp, uint8_t* out,
                           int64_t n) {
  constexpr int64_t kMin = std::numeric_limits<O>::min();
  constexpr int64_t kMax = std::numeric_limits<O>::max();
  int bad = 0;
  for (int64_t i = 0; i < n; ++i) {
    int64_t x = static_cast<int64_t>(Load<L>(lp, i));
    int64_t y = static_cast<int64_t>(Load<R>(rp, i));
    int64_t v;
    if constexpr (op == BinOp::kAdd) v = x + y;
    if constexpr (op == BinOp::kSub) v = x - y;
    if constexpr (op == BinOp::kMul) v = x * y;
    bad |= (v < kMin) | (v > kMax);
    Store<O>(out, i, static_cast<O>(v));
  }
  if (bad) return IntOverflow();
  return Status::OK();
}

/// Integer-output loop for int64: exact with hardware overflow detection.
template <typename L, typename R, BinOp op>
Status Int64BinaryLoop(const uint8_t* lp, const uint8_t* rp, uint8_t* out,
                       int64_t n) {
  int bad = 0;
  for (int64_t i = 0; i < n; ++i) {
    int64_t x = static_cast<int64_t>(Load<L>(lp, i));
    int64_t y = static_cast<int64_t>(Load<R>(rp, i));
    int64_t v = 0;
    if constexpr (op == BinOp::kAdd) bad |= __builtin_add_overflow(x, y, &v);
    if constexpr (op == BinOp::kSub) bad |= __builtin_sub_overflow(x, y, &v);
    if constexpr (op == BinOp::kMul) bad |= __builtin_mul_overflow(x, y, &v);
    Store<int64_t>(out, i, v);
  }
  if (bad) return IntOverflow();
  return Status::OK();
}

template <typename L, typename R, BinOp op>
constexpr BinaryKernelFn SelectBinary() {
  using O = PromoteT<L, R>;
  if constexpr (std::is_integral_v<O>) {
    // Integer division promotes the output to float64 (BinaryOutDType).
    if constexpr (op == BinOp::kDiv) {
      return &FloatBinaryLoop<L, R, double, op>;
    } else if constexpr (std::is_same_v<O, int64_t>) {
      return &Int64BinaryLoop<L, R, op>;
    } else {
      return &NarrowIntBinaryLoop<L, R, O, op>;
    }
  } else {
    return &FloatBinaryLoop<L, R, O, op>;
  }
}

template <typename L, typename R>
BinaryKernelFn SelectBinaryOp(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return SelectBinary<L, R, BinOp::kAdd>();
    case BinOp::kSub:
      return SelectBinary<L, R, BinOp::kSub>();
    case BinOp::kMul:
      return SelectBinary<L, R, BinOp::kMul>();
    case BinOp::kDiv:
      return SelectBinary<L, R, BinOp::kDiv>();
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Scalar-broadcast loops (float64 output)
// ---------------------------------------------------------------------------

template <typename T, BinOp op>
Status ScalarLoop(const uint8_t* ap, double scalar, uint8_t* out, int64_t n) {
  if constexpr (op == BinOp::kDiv) {
    if (n > 0 && scalar == 0.0) return DivByZero();
  }
  for (int64_t i = 0; i < n; ++i) {
    double x = static_cast<double>(Load<T>(ap, i));
    double v;
    if constexpr (op == BinOp::kAdd) v = x + scalar;
    if constexpr (op == BinOp::kSub) v = x - scalar;
    if constexpr (op == BinOp::kMul) v = x * scalar;
    if constexpr (op == BinOp::kDiv) v = x / scalar;
    Store<double>(out, i, v);
  }
  return Status::OK();
}

template <typename T>
ScalarKernelFn SelectScalarOp(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return &ScalarLoop<T, BinOp::kAdd>;
    case BinOp::kSub:
      return &ScalarLoop<T, BinOp::kSub>;
    case BinOp::kMul:
      return &ScalarLoop<T, BinOp::kMul>;
    case BinOp::kDiv:
      return &ScalarLoop<T, BinOp::kDiv>;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Cast loops
// ---------------------------------------------------------------------------

Status CastOverflow() {
  return Status::OutOfRange(
      "converted value does not fit the target element type");
}

/// Exact bounds of integer type D as doubles: [-2^(bits-1), 2^(bits-1)).
/// Both endpoints are exactly representable, so an integral-valued double r
/// fits D iff lo <= r < hi — this is boundary-exact even for int64, where
/// the naive `r > (double)INT64_MAX` check admits 2^63 itself.
template <typename D>
double IntLowerBound() {
  return -std::ldexp(1.0, 8 * static_cast<int>(sizeof(D)) - 1);
}
template <typename D>
double IntUpperBound() {
  return std::ldexp(1.0, 8 * static_cast<int>(sizeof(D)) - 1);
}

template <typename S, typename D>
Status CastLoop(const uint8_t* sp, uint8_t* dp, int64_t n) {
  int bad = 0;
  for (int64_t i = 0; i < n; ++i) {
    S x = Load<S>(sp, i);
    if constexpr (std::is_integral_v<D> && std::is_integral_v<S>) {
      // Exact integer conversion with a range check in the integer domain.
      if constexpr (sizeof(S) > sizeof(D)) {
        bad |= (x < static_cast<S>(std::numeric_limits<D>::min())) |
               (x > static_cast<S>(std::numeric_limits<D>::max()));
      }
      Store<D>(dp, i, static_cast<D>(x));
    } else if constexpr (std::is_integral_v<D>) {
      // Float -> integer: round to nearest (ties to even, matching
      // WriteScalarFromDouble) and range-check. NaN fails the range test.
      double r = std::nearbyint(static_cast<double>(x));
      bool fits = r >= IntLowerBound<D>() && r < IntUpperBound<D>();
      bad |= !fits;
      Store<D>(dp, i, fits ? static_cast<D>(r) : D{0});
    } else {
      // Widen through double to match the boxed GetDouble ->
      // WriteScalarFromDouble path bit for bit (a direct int64 -> float32
      // cast rounds once and can differ from the double-rounded result).
      Store<D>(dp, i, static_cast<D>(static_cast<double>(x)));
    }
  }
  if (bad) return CastOverflow();
  return Status::OK();
}

template <typename S>
CastKernelFn SelectCastDst(DType dst) {
  switch (dst) {
    case DType::kInt8:
      return &CastLoop<S, int8_t>;
    case DType::kInt16:
      return &CastLoop<S, int16_t>;
    case DType::kInt32:
      return &CastLoop<S, int32_t>;
    case DType::kInt64:
      return &CastLoop<S, int64_t>;
    case DType::kFloat32:
      return &CastLoop<S, float>;
    case DType::kFloat64:
      return &CastLoop<S, double>;
    default:
      return nullptr;
  }
}

// ---------------------------------------------------------------------------
// Reduction loops
// ---------------------------------------------------------------------------

/// Four independent accumulator chains: breaks the serial add-latency chain
/// and lets integer/float32 lanes vectorize the widening step.
template <typename T>
double SumLoop(const uint8_t* ap, int64_t n) {
  double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += static_cast<double>(Load<T>(ap, i));
    s1 += static_cast<double>(Load<T>(ap, i + 1));
    s2 += static_cast<double>(Load<T>(ap, i + 2));
    s3 += static_cast<double>(Load<T>(ap, i + 3));
  }
  for (; i < n; ++i) s0 += static_cast<double>(Load<T>(ap, i));
  return (s0 + s1) + (s2 + s3);
}

template <typename T>
double SumSqLoop(const uint8_t* ap, int64_t n) {
  double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    double a = static_cast<double>(Load<T>(ap, i));
    double b = static_cast<double>(Load<T>(ap, i + 1));
    double c = static_cast<double>(Load<T>(ap, i + 2));
    double d = static_cast<double>(Load<T>(ap, i + 3));
    s0 += a * a;
    s1 += b * b;
    s2 += c * c;
    s3 += d * d;
  }
  for (; i < n; ++i) {
    double a = static_cast<double>(Load<T>(ap, i));
    s0 += a * a;
  }
  return (s0 + s1) + (s2 + s3);
}

/// Min/max use the std::min/std::max expression shape of the boxed
/// RealAccum so NaN handling is identical (NaN operands are ignored).
template <typename T>
void ReduceLoop(const uint8_t* ap, int64_t n, ReduceStats* out) {
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  double sum = 0, sumsq = 0;
  for (int64_t i = 0; i < n; ++i) {
    double v = static_cast<double>(Load<T>(ap, i));
    sum += v;
    sumsq += v * v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  out->sum = sum;
  out->sumsq = sumsq;
  out->mn = mn;
  out->mx = mx;
  out->n = n;
}

template <typename A, typename B>
double DotLoop(const uint8_t* ap, const uint8_t* bp, int64_t n) {
  double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += static_cast<double>(Load<A>(ap, i)) *
          static_cast<double>(Load<B>(bp, i));
    s1 += static_cast<double>(Load<A>(ap, i + 1)) *
          static_cast<double>(Load<B>(bp, i + 1));
    s2 += static_cast<double>(Load<A>(ap, i + 2)) *
          static_cast<double>(Load<B>(bp, i + 2));
    s3 += static_cast<double>(Load<A>(ap, i + 3)) *
          static_cast<double>(Load<B>(bp, i + 3));
  }
  for (; i < n; ++i) {
    s0 += static_cast<double>(Load<A>(ap, i)) *
          static_cast<double>(Load<B>(bp, i));
  }
  return (s0 + s1) + (s2 + s3);
}

/// Invokes f(TypeTag<T>{}) for kernel dtypes only; the default value for
/// complex/datetime. Unlike DispatchDType, datetime is NOT mapped to int64 —
/// it stays on the boxed tier.
template <typename R, typename F>
R DispatchKernelDType(DType t, F&& f, R fallback) {
  switch (t) {
    case DType::kInt8:
      return f(TypeTag<int8_t>{});
    case DType::kInt16:
      return f(TypeTag<int16_t>{});
    case DType::kInt32:
      return f(TypeTag<int32_t>{});
    case DType::kInt64:
      return f(TypeTag<int64_t>{});
    case DType::kFloat32:
      return f(TypeTag<float>{});
    case DType::kFloat64:
      return f(TypeTag<double>{});
    default:
      return fallback;
  }
}

}  // namespace

bool IsKernelDType(DType t) {
  switch (t) {
    case DType::kInt8:
    case DType::kInt16:
    case DType::kInt32:
    case DType::kInt64:
    case DType::kFloat32:
    case DType::kFloat64:
      return true;
    default:
      return false;
  }
}

DType BinaryOutDType(BinOp op, DType lhs, DType rhs) {
  DType out = PromoteDType(lhs, rhs);
  if (op == BinOp::kDiv && IsIntegerDType(out)) out = DType::kFloat64;
  return out;
}

BinaryKernelFn LookupBinary(BinOp op, DType lhs, DType rhs) {
  if (!IsKernelDType(lhs) || !IsKernelDType(rhs)) return nullptr;
  return DispatchKernelDType<BinaryKernelFn>(
      lhs,
      [&](auto lt) {
        using L = typename decltype(lt)::type;
        return DispatchKernelDType<BinaryKernelFn>(
            rhs,
            [&](auto rt) {
              using R = typename decltype(rt)::type;
              return SelectBinaryOp<L, R>(op);
            },
            nullptr);
      },
      nullptr);
}

ScalarKernelFn LookupScalar(BinOp op, DType a) {
  if (!IsKernelDType(a)) return nullptr;
  return DispatchKernelDType<ScalarKernelFn>(
      a,
      [&](auto t) {
        using T = typename decltype(t)::type;
        return SelectScalarOp<T>(op);
      },
      nullptr);
}

CastKernelFn LookupCast(DType src, DType dst) {
  if (!IsKernelDType(src) || !IsKernelDType(dst) || src == dst) {
    return nullptr;
  }
  return DispatchKernelDType<CastKernelFn>(
      src,
      [&](auto t) {
        using S = typename decltype(t)::type;
        return SelectCastDst<S>(dst);
      },
      nullptr);
}

SumKernelFn LookupSum(DType t) {
  return DispatchKernelDType<SumKernelFn>(
      t,
      [](auto tag) -> SumKernelFn {
        using T = typename decltype(tag)::type;
        return &SumLoop<T>;
      },
      nullptr);
}

SumSqKernelFn LookupSumSq(DType t) {
  return DispatchKernelDType<SumSqKernelFn>(
      t,
      [](auto tag) -> SumSqKernelFn {
        using T = typename decltype(tag)::type;
        return &SumSqLoop<T>;
      },
      nullptr);
}

ReduceKernelFn LookupReduce(DType t) {
  return DispatchKernelDType<ReduceKernelFn>(
      t,
      [](auto tag) -> ReduceKernelFn {
        using T = typename decltype(tag)::type;
        return &ReduceLoop<T>;
      },
      nullptr);
}

DotKernelFn LookupDot(DType a, DType b) {
  if (!IsRealDType(a) || !IsRealDType(b)) return nullptr;
  if (a == DType::kFloat64) {
    return b == DType::kFloat64 ? &DotLoop<double, double>
                                : &DotLoop<double, float>;
  }
  return b == DType::kFloat64 ? &DotLoop<float, double>
                              : &DotLoop<float, float>;
}

}  // namespace sqlarray::kernels
