// Array manipulation operations (the paper's T-SQL function surface).
//
// Every operation has SQL value semantics: inputs are immutable blobs, and
// mutating operations (UpdateItem) return a new blob. The functions here are
// the typed backbone behind the per-schema UDFs registered in src/udfs.
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "common/dims.h"
#include "common/status.h"
#include "core/array.h"

namespace sqlarray {

// ---------------------------------------------------------------------------
// Item access
// ---------------------------------------------------------------------------

/// Returns the element at `index` widened to double (Item_N in T-SQL).
Result<double> Item(const ArrayRef& a, std::span<const int64_t> index);

/// Returns the element at `index` as complex (for complex arrays).
Result<std::complex<double>> ItemComplex(const ArrayRef& a,
                                         std::span<const int64_t> index);

/// Returns a copy of `a` with the element at `index` replaced by `v`
/// (UpdateItem_N in T-SQL).
Result<OwnedArray> UpdateItem(const ArrayRef& a,
                              std::span<const int64_t> index, double v);

/// Complex-valued UpdateItem.
Result<OwnedArray> UpdateItemComplex(const ArrayRef& a,
                                     std::span<const int64_t> index,
                                     std::complex<double> v);

// ---------------------------------------------------------------------------
// Subsetting and reshaping
// ---------------------------------------------------------------------------

/// Extracts the contiguous block starting at `offset` with shape `sizes`
/// (Subarray in T-SQL). Only contiguous (hyper-rectangular) subsets are
/// supported, as in the paper. When `collapse` is true, dimensions of
/// length 1 in the result are dropped (e.g. a matrix column becomes a
/// vector); a result that would collapse to rank 0 keeps one dimension.
/// The result's storage class is chosen automatically (a small subset of a
/// max array becomes a short array).
Result<OwnedArray> Subarray(const ArrayRef& a, std::span<const int64_t> offset,
                            std::span<const int64_t> sizes, bool collapse);

/// Reinterprets the array with new dimension sizes without reordering the
/// elements (Reshape in T-SQL). The element counts must match.
Result<OwnedArray> Reshape(const ArrayRef& a, Dims new_dims);

/// Permutes the axes: result dimension k has size dims[perm[k]], and
/// result[i_0, ..] = a[i_{perm^-1(0)}, ..]. perm must be a permutation of
/// 0..rank-1. Transpose of a matrix is PermuteAxes(a, {1, 0}).
Result<OwnedArray> PermuteAxes(const ArrayRef& a, std::span<const int> perm);

/// Matrix transpose / general axis reversal: PermuteAxes with the reversed
/// axis order.
Result<OwnedArray> Transpose(const ArrayRef& a);

/// Concatenates two arrays along `axis`; every other dimension must match.
/// The result dtype is the promotion of the inputs'.
Result<OwnedArray> ConcatAxis(const ArrayRef& a, const ArrayRef& b, int axis);

// ---------------------------------------------------------------------------
// Raw binary bridging
// ---------------------------------------------------------------------------

/// Prefixes raw consecutive element bytes with an array header (Cast in
/// T-SQL). `raw.size()` must equal ElementCount(dims) * DTypeSize(dtype).
Result<OwnedArray> CastFromRaw(DType dtype, Dims dims,
                               std::span<const uint8_t> raw);

/// Strips the header and returns the raw element bytes (Raw in T-SQL).
Result<std::vector<uint8_t>> Raw(const ArrayRef& a);

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

/// Converts the element type, value by value. Narrowing integer conversions
/// that overflow fail; real→complex widens with im = 0; complex→real requires
/// zero imaginary parts.
Result<OwnedArray> ConvertDType(const ArrayRef& a, DType target);

/// Converts the storage class, keeping dtype and shape. Fails when the array
/// does not satisfy the target class's constraints.
Result<OwnedArray> ConvertStorage(const ArrayRef& a, StorageClass target);

/// Renders the array as a string: "float64[2,3]{1 2 3 4 5 6}" with elements
/// in column-major order; complex elements render as "a+bi".
std::string ToArrayString(const ArrayRef& a);

/// Parses the ToArrayString format back into an array.
Result<OwnedArray> FromArrayString(std::string_view text);

// ---------------------------------------------------------------------------
// Aggregates
// ---------------------------------------------------------------------------

/// Aggregation kinds over array elements.
enum class AggKind { kSum, kMin, kMax, kMean, kStd, kCount };

/// Aggregates all elements into a scalar. kMin/kMax/kStd reject complex
/// arrays; kSum/kMean of a complex array return its real part only through
/// this interface (use AggregateAllComplex for the full value).
Result<double> AggregateAll(const ArrayRef& a, AggKind kind);

/// Complex-aware whole-array sum/mean.
Result<std::complex<double>> AggregateAllComplex(const ArrayRef& a,
                                                 AggKind kind);

/// Reduces over one axis, returning an array of rank-1 lower (or rank 1 when
/// the input is rank 1: a single-element array). E.g. summing axis 0 of a
/// [3,4] matrix yields a [4] vector. The result dtype is float64 for real
/// inputs and complex128 for complex inputs.
Result<OwnedArray> AggregateAxis(const ArrayRef& a, int axis, AggKind kind);

// ---------------------------------------------------------------------------
// Element-wise arithmetic
// ---------------------------------------------------------------------------

/// Binary element-wise operations with dtype promotion.
enum class BinOp { kAdd, kSub, kMul, kDiv };

/// Returns the common promoted dtype of two element types (integer < float32
/// < float64 < complex128, with complex64 promoting real partners to
/// complex64 or above).
DType PromoteDType(DType a, DType b);

/// Element-wise `lhs op rhs`. Shapes must match exactly.
Result<OwnedArray> ElementwiseBinary(const ArrayRef& lhs, const ArrayRef& rhs,
                                     BinOp op);

/// Element-wise `a op scalar` (scalar broadcast).
Result<OwnedArray> ElementwiseScalar(const ArrayRef& a, double scalar,
                                     BinOp op);

/// Dot product of two equal-length rank-1 arrays (complex inputs use the
/// unconjugated product, matching LAPACK's *dotu convention).
Result<std::complex<double>> Dot(const ArrayRef& a, const ArrayRef& b);

/// Euclidean norm of all elements.
Result<double> Norm2(const ArrayRef& a);

// ---------------------------------------------------------------------------
// Boxed reference implementations (differential-test oracles)
// ---------------------------------------------------------------------------
//
// The entry points above dispatch to the monomorphized kernels in
// src/core/kernels.h whenever every operand has a real dtype. The *Boxed
// variants always take the generic per-element GetDouble/GetComplex path;
// tests/test_ops.cc compares the two across the dtype promotion matrix.
// Results are bit-identical for element-wise ops and casts; reductions may
// differ in the final ulp (kernel sums use independent accumulator chains).

Result<OwnedArray> ElementwiseBinaryBoxed(const ArrayRef& lhs,
                                          const ArrayRef& rhs, BinOp op);
Result<OwnedArray> ElementwiseScalarBoxed(const ArrayRef& a, double scalar,
                                          BinOp op);
Result<std::complex<double>> DotBoxed(const ArrayRef& a, const ArrayRef& b);
Result<double> Norm2Boxed(const ArrayRef& a);
Result<double> AggregateAllBoxed(const ArrayRef& a, AggKind kind);
Result<OwnedArray> ConvertDTypeBoxed(const ArrayRef& a, DType target);

}  // namespace sqlarray
