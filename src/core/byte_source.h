// Abstract random-access byte source for streamed (out-of-page) blobs.
//
// Max arrays live out-of-page as B-trees; reading them goes through a stream
// wrapper that supports partial range reads (Sec. 3.3). The array core only
// depends on this interface; src/storage provides the B-tree-backed
// implementation and accounts I/O against it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace sqlarray {

/// Random-access read interface over a blob's bytes.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// Total size of the blob in bytes.
  virtual int64_t size() const = 0;

  /// Reads out.size() bytes starting at `offset`. Fails with OutOfRange when
  /// the range extends past the end.
  virtual Status ReadAt(int64_t offset, std::span<uint8_t> out) = 0;
};

/// A ByteSource over an in-memory buffer (used for tests and for blobs that
/// are already materialized).
class MemoryByteSource : public ByteSource {
 public:
  explicit MemoryByteSource(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  int64_t size() const override {
    return static_cast<int64_t>(bytes_.size());
  }

  Status ReadAt(int64_t offset, std::span<uint8_t> out) override {
    if (offset < 0 ||
        offset + static_cast<int64_t>(out.size()) > size()) {
      return Status::OutOfRange("read past end of byte source");
    }
    std::copy(bytes_.begin() + offset,
              bytes_.begin() + offset + static_cast<int64_t>(out.size()),
              out.begin());
    return Status::OK();
  }

 private:
  std::span<const uint8_t> bytes_;
};

}  // namespace sqlarray
